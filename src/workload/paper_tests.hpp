// The four 80-minute controller benchmarks of Section V.
//
//   Test-1: staircase ramp 0 % -> 100 % -> 0 % (gradual changes).
//   Test-2: high/low alternation with 5, 10 and 15 minute periods
//           (sudden changes).
//   Test-3: a new utilization level every 5 minutes (sudden and frequent
//           changes).
//   Test-4: Poisson arrivals with exponential service times emulating a
//           shell workload (Meisner & Wenisch style stochastic queueing).
//
// Every test follows the paper's experimental protocol: the machine idles
// for the first 5 minutes (temperature stabilization after the cold start)
// and the last 10 minutes (cool-down), leaving a 65-minute active body.
#pragma once

#include <vector>

#include "workload/profile.hpp"

namespace ltsc::workload {

/// Identifier of a paper test.
enum class paper_test { test1_ramp = 1, test2_periods = 2, test3_frequent = 3, test4_poisson = 4 };

/// Total duration of every paper test (80 minutes).
[[nodiscard]] util::seconds_t paper_test_duration();

/// Builds the full 80-minute profile of the given test, idle head/tail
/// included.  `seed` only affects Test-4 (the stochastic workload).
[[nodiscard]] utilization_profile make_paper_test(paper_test test, std::uint64_t seed = 0x7331);

/// All four tests in order.
[[nodiscard]] std::vector<utilization_profile> all_paper_tests(std::uint64_t seed = 0x7331);

/// Human-readable name ("Test-1", ...).
[[nodiscard]] const char* paper_test_name(paper_test test);

}  // namespace ltsc::workload
