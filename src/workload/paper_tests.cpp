#include "workload/paper_tests.hpp"

#include "util/error.hpp"
#include "workload/queueing.hpp"

namespace ltsc::workload {

namespace {

using util::literals::operator""_min;
using util::literals::operator""_s;

constexpr double head_idle_s = 5.0 * 60.0;
constexpr double body_s = 65.0 * 60.0;
constexpr double tail_idle_s = 10.0 * 60.0;

utilization_profile test1_ramp() {
    utilization_profile p("Test-1");
    p.idle(util::seconds_t{head_idle_s});
    // Staircase up to 100 % and back down; the same levels the paper's
    // characterization sweeps use.
    const std::vector<double> levels = {0,  10, 25, 40, 50, 60, 75, 90, 100,
                                        90, 75, 60, 50, 40, 25, 10, 0};
    const double dwell = body_s / static_cast<double>(levels.size());
    for (double level : levels) {
        p.constant(level, util::seconds_t{dwell});
    }
    p.idle(util::seconds_t{tail_idle_s});
    return p;
}

utilization_profile test2_periods() {
    utilization_profile p("Test-2");
    p.idle(util::seconds_t{head_idle_s});
    // High/low alternation with growing periods: 5, 10, 15 minutes, plus a
    // final short 2.5-minute burst pair to fill the 65-minute body.
    const double high = 100.0;
    const double low = 10.0;
    p.constant(high, 5.0_min).constant(low, 5.0_min);
    p.constant(high, 10.0_min).constant(low, 10.0_min);
    p.constant(high, 15.0_min).constant(low, 15.0_min);
    p.constant(high, 2.5_min).constant(low, 2.5_min);
    p.idle(util::seconds_t{tail_idle_s});
    return p;
}

utilization_profile test3_frequent() {
    utilization_profile p("Test-3");
    p.idle(util::seconds_t{head_idle_s});
    // A new level every 5 minutes, alternating low levels with high bursts;
    // back-to-back high segments (85 -> 100, 70 -> 90) heat the sinks long
    // enough to exercise the reactive controllers' threshold crossings, as
    // in Fig. 3 of the paper.
    const std::vector<double> levels = {10, 55, 15, 85, 100, 25, 10, 70, 90, 20, 15, 50, 15};
    for (double level : levels) {
        p.constant(level, 5.0_min);
    }
    p.idle(util::seconds_t{tail_idle_s});
    return p;
}

utilization_profile test4_poisson(std::uint64_t seed) {
    // Shell workload emulation: M/M/64 with 20 s mean service time.
    // Interactive shell activity is bursty, so the Poisson stream is
    // Markov-modulated: calm stretches near 18 % load are interrupted by
    // ~100 s flurries near 95 % load.  The blend lands the full-test
    // average utilization near the paper's implied ~27 % while producing
    // the occasional thermal spikes the reactive controllers must handle.
    mmc_config cfg;
    cfg.servers = 64;
    cfg.service_rate_hz = 1.0 / 20.0;
    cfg.arrival_rate_hz = 0.13 * 64.0 * cfg.service_rate_hz;
    cfg.modulation.enabled = true;
    cfg.modulation.burst_arrival_rate_hz = 64.0 * cfg.service_rate_hz;
    cfg.modulation.mean_calm_dwell_s = 800.0;
    cfg.modulation.mean_burst_dwell_s = 240.0;
    cfg.seed = seed;
    const utilization_profile body =
        mmc_profile("Test-4-body", cfg, util::seconds_t{body_s});

    utilization_profile p("Test-4");
    p.idle(util::seconds_t{head_idle_s});
    const util::time_series samples = body.sampled(util::seconds_t{5.0});
    for (std::size_t i = 0; i + 1 < samples.size(); ++i) {
        const auto& a = samples.at(i);
        const auto& b = samples.at(i + 1);
        p.ramp(a.v, b.v, util::seconds_t{b.t - a.t});
    }
    p.idle(util::seconds_t{tail_idle_s});
    return p;
}

}  // namespace

util::seconds_t paper_test_duration() { return util::seconds_t{head_idle_s + body_s + tail_idle_s}; }

utilization_profile make_paper_test(paper_test test, std::uint64_t seed) {
    switch (test) {
        case paper_test::test1_ramp: return test1_ramp();
        case paper_test::test2_periods: return test2_periods();
        case paper_test::test3_frequent: return test3_frequent();
        case paper_test::test4_poisson: return test4_poisson(seed);
    }
    throw util::precondition_error("make_paper_test: unknown test id");
}

std::vector<utilization_profile> all_paper_tests(std::uint64_t seed) {
    return {make_paper_test(paper_test::test1_ramp, seed),
            make_paper_test(paper_test::test2_periods, seed),
            make_paper_test(paper_test::test3_frequent, seed),
            make_paper_test(paper_test::test4_poisson, seed)};
}

const char* paper_test_name(paper_test test) {
    switch (test) {
        case paper_test::test1_ramp: return "Test-1";
        case paper_test::test2_periods: return "Test-2";
        case paper_test::test3_frequent: return "Test-3";
        case paper_test::test4_poisson: return "Test-4";
    }
    return "?";
}

}  // namespace ltsc::workload
