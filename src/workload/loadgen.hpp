// LoadGen: dynamic load synthesis by PWM duty-cycling.
//
// The paper's LoadGen tool (Section III) achieves any target utilization by
// duty-cycling the CPUs between a maximal-switching stress kernel (100 %)
// and idle.  The PWM period is coarse enough (tens of seconds) that the
// duty cycling is visible as thermal oscillation — the fast 5-8 degC
// transients of Fig. 1(b) — while the *average* utilization matches the
// target.  This class converts a target profile into the instantaneous
// load the plant sees, and emulates the `sar`/`mpstat` utilization
// measurement the controllers poll.
#pragma once

#include <mutex>

#include "util/time_series.hpp"
#include "util/units.hpp"
#include "workload/profile.hpp"

namespace ltsc::workload {

/// Configuration of the load synthesizer.
struct loadgen_config {
    /// Full PWM period of the duty cycle.  The default reproduces the
    /// minute-scale thermal oscillations visible in Fig. 1(b): the busy
    /// window is long enough for the heatsink (not just the die) to ride
    /// up and down with the duty cycle.
    util::seconds_t pwm_period{240.0};
    double stress_intensity = 1.0;  ///< Switching intensity of the busy phase
                                    ///< (1.0 = maximal pipe stuffing).
};

/// Synthesizes instantaneous CPU load from a target utilization profile.
class loadgen {
public:
    /// Binds the generator to a profile.  The profile is copied.
    loadgen(utilization_profile profile, const loadgen_config& config = {});

    // Copy/move transfer the binding, not the memo: the cache is a
    // per-instance performance detail, and starting it cold keeps the
    // mutex non-copyable problem out of the special members.
    loadgen(const loadgen& other);
    loadgen(loadgen&& other) noexcept;
    loadgen& operator=(const loadgen& other);
    loadgen& operator=(loadgen&& other) noexcept;

    /// Instantaneous utilization in [0, 100] at time `t`: during the busy
    /// fraction of each PWM period the CPUs run the stress kernel at
    /// `stress_intensity`, otherwise they idle.  Targets of exactly 0 or
    /// 100 bypass the PWM.
    [[nodiscard]] double instantaneous_utilization(util::seconds_t t) const;

    /// Target (commanded) utilization at `t` — what `sar` would report as
    /// the average over a window much longer than the PWM period.
    [[nodiscard]] double target_utilization(util::seconds_t t) const;

    /// Utilization as measured by the monitoring utilities: the mean
    /// instantaneous utilization over the window [t - window, t].
    /// Deterministic in (t, window); the last result is memoized because
    /// the controller runtime asks for the same instant several times per
    /// decision (system plus per-socket views).  Thread-safe: one
    /// loadgen is shared by every rollout lane (bind_workload copies
    /// nothing), so the memo mutates under `const` from concurrent
    /// evaluations — the cache is mutex-guarded, and a racing miss at
    /// worst recomputes the same deterministic value.
    ///
    /// Evaluation is analytic — O(profile segments) counting of busy
    /// duty slots, not a sweep of the window — and *bitwise equal* to
    /// the reference Riemann sum below: every sample of that sum is
    /// either 0 or the stress peak, adding 0.0 is exact, and on the
    /// dyadic quarter-second grid the sample positions, the duty-edge
    /// comparisons, and the accumulated sum are all reproduced exactly
    /// (pinned by the loadgen equivalence suite).  Configurations off
    /// that grid (PWM period < 16 s or a window edge not on a multiple
    /// of 0.25 s) fall back to the reference sum itself.
    [[nodiscard]] double measured_utilization(util::seconds_t t, util::seconds_t window) const;

    /// Reference implementation of measured_utilization: the original
    /// sampled Riemann sum over the window.  Public so equivalence
    /// tests can pin the analytic path against it; not memoized.
    [[nodiscard]] double measured_utilization_sampled(util::seconds_t t,
                                                      util::seconds_t window) const;

    [[nodiscard]] const utilization_profile& profile() const { return profile_; }
    [[nodiscard]] const loadgen_config& config() const { return config_; }

private:
    /// Analytic fast path: counts busy duty slots in closed form and
    /// reconstructs the reference sum's exact value.  Returns false
    /// (leaving `out` untouched) when the configuration is off the
    /// dyadic grid the exactness argument needs.
    [[nodiscard]] bool measured_analytic(double t0, double t1, double& out) const;

    utilization_profile profile_;
    loadgen_config config_;

    // One-entry memo for measured_utilization (see above), guarded by
    // its mutex because a shared loadgen is read from many threads.
    mutable std::mutex measured_cache_mutex_;
    mutable bool measured_cache_valid_ = false;
    mutable double measured_cache_t_ = 0.0;
    mutable double measured_cache_window_ = 0.0;
    mutable double measured_cache_value_ = 0.0;
};

}  // namespace ltsc::workload
