#include "workload/queueing.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/error.hpp"

namespace ltsc::workload {

namespace {

/// Pending future event in the DES.
struct des_event {
    double time = 0.0;
    enum class kind : std::uint8_t { arrival, departure } type = kind::arrival;

    friend bool operator>(const des_event& a, const des_event& b) { return a.time > b.time; }
};

}  // namespace

mmc_result simulate_mmc(const mmc_config& config, util::seconds_t horizon,
                        util::seconds_t sample_dt) {
    util::ensure(config.arrival_rate_hz > 0.0, "simulate_mmc: non-positive arrival rate");
    util::ensure(config.service_rate_hz > 0.0, "simulate_mmc: non-positive service rate");
    util::ensure(config.servers >= 1, "simulate_mmc: need at least one server");
    util::ensure(horizon.value() > 0.0, "simulate_mmc: non-positive horizon");
    util::ensure(sample_dt.value() > 0.0, "simulate_mmc: non-positive sample step");

    if (config.modulation.enabled) {
        util::ensure(config.modulation.burst_arrival_rate_hz > 0.0,
                     "simulate_mmc: non-positive burst arrival rate");
        util::ensure(config.modulation.mean_calm_dwell_s > 0.0 &&
                         config.modulation.mean_burst_dwell_s > 0.0,
                     "simulate_mmc: non-positive modulation dwell time");
    }

    util::pcg32 rng(config.seed, 0x9e3779b97f4a7c15ULL);
    std::priority_queue<des_event, std::vector<des_event>, std::greater<>> events;
    // FIFO of arrival times of jobs waiting for a context.
    std::queue<double> waiting;

    // Arrival-rate modulation via Lewis-Shedler thinning: candidates fire
    // at the maximum rate and are accepted with probability
    // lambda(t) / lambda_max, which is exact for any piecewise rate.
    bool bursting = false;
    double mode_switch_at = config.modulation.enabled
                                ? rng.exponential(1.0 / config.modulation.mean_calm_dwell_s)
                                : 1e300;
    const double lambda_max = config.modulation.enabled
                                  ? std::max(config.arrival_rate_hz,
                                             config.modulation.burst_arrival_rate_hz)
                                  : config.arrival_rate_hz;
    const auto current_lambda = [&](double t) {
        while (config.modulation.enabled && t >= mode_switch_at) {
            bursting = !bursting;
            const double dwell = bursting ? config.modulation.mean_burst_dwell_s
                                          : config.modulation.mean_calm_dwell_s;
            mode_switch_at += rng.exponential(1.0 / dwell);
        }
        return bursting ? config.modulation.burst_arrival_rate_hz : config.arrival_rate_hz;
    };

    const double end = horizon.value();
    std::uint32_t busy = 0;
    double now = 0.0;
    double last_event_time = 0.0;
    double busy_time_integral = 0.0;   // busy-servers * seconds
    double queue_time_integral = 0.0;  // waiting-jobs * seconds
    double total_response_time = 0.0;
    std::uint64_t completed = 0;

    // In-service jobs are anonymous (exponential service is memoryless);
    // response-time accounting tracks the arrival stamps of jobs entering
    // service through a second FIFO.
    std::queue<double> in_service_arrivals;

    events.push(des_event{rng.exponential(lambda_max), des_event::kind::arrival});

    mmc_result out;
    double next_sample = 0.0;

    const auto record_until = [&](double t) {
        busy_time_integral += busy * (t - last_event_time);
        queue_time_integral += static_cast<double>(waiting.size()) * (t - last_event_time);
        last_event_time = t;
    };

    const auto sample_up_to = [&](double t) {
        while (next_sample <= t && next_sample <= end) {
            out.utilization.push_back(
                next_sample, 100.0 * static_cast<double>(busy) / static_cast<double>(config.servers));
            next_sample += sample_dt.value();
        }
    };

    while (!events.empty()) {
        const des_event ev = events.top();
        if (ev.time > end) {
            break;
        }
        events.pop();
        sample_up_to(ev.time);
        record_until(ev.time);
        now = ev.time;

        if (ev.type == des_event::kind::arrival) {
            // Schedule the next candidate of the (possibly modulated)
            // Poisson stream, then thin the current one.
            events.push(des_event{now + rng.exponential(lambda_max), des_event::kind::arrival});
            if (config.modulation.enabled &&
                rng.next_double() * lambda_max > current_lambda(now)) {
                continue;  // thinned out: no job arrives
            }
            if (busy < config.servers) {
                ++busy;
                in_service_arrivals.push(now);
                events.push(des_event{now + rng.exponential(config.service_rate_hz),
                                      des_event::kind::departure});
            } else {
                waiting.push(now);
            }
        } else {
            // A context frees up; the job's total response time is its
            // sojourn from arrival to departure.
            util::ensure(busy > 0, "simulate_mmc: departure with no busy server");
            util::ensure(!in_service_arrivals.empty(), "simulate_mmc: accounting underflow");
            total_response_time += now - in_service_arrivals.front();
            in_service_arrivals.pop();
            ++completed;
            if (!waiting.empty()) {
                in_service_arrivals.push(waiting.front());
                waiting.pop();
                events.push(des_event{now + rng.exponential(config.service_rate_hz),
                                      des_event::kind::departure});
            } else {
                --busy;
            }
        }
    }
    sample_up_to(end);
    record_until(end);

    out.stats.mean_utilization_pct =
        100.0 * busy_time_integral / (end * static_cast<double>(config.servers));
    out.stats.mean_queue_length = queue_time_integral / end;
    out.stats.mean_response_time_s =
        completed > 0 ? total_response_time / static_cast<double>(completed) : 0.0;
    out.stats.completed_jobs = completed;
    return out;
}

double erlang_c(std::uint32_t servers, double offered_erlangs) {
    util::ensure(servers >= 1, "erlang_c: need at least one server");
    util::ensure(offered_erlangs >= 0.0, "erlang_c: negative offered load");
    util::ensure(offered_erlangs < static_cast<double>(servers), "erlang_c: unstable system");
    // Iterative Erlang-B, then convert to Erlang-C.
    double b = 1.0;
    for (std::uint32_t k = 1; k <= servers; ++k) {
        b = offered_erlangs * b / (static_cast<double>(k) + offered_erlangs * b);
    }
    const double rho = offered_erlangs / static_cast<double>(servers);
    return b / (1.0 - rho + rho * b);
}

utilization_profile mmc_profile(std::string name, const mmc_config& config,
                                util::seconds_t horizon) {
    const mmc_result r = simulate_mmc(config, horizon);
    return profile_from_trace(std::move(name), r.utilization);
}

}  // namespace ltsc::workload
