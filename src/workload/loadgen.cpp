#include "workload/loadgen.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ltsc::workload {

loadgen::loadgen(utilization_profile profile, const loadgen_config& config)
    : profile_(std::move(profile)), config_(config) {
    util::ensure(config.pwm_period.value() > 0.0, "loadgen: non-positive PWM period");
    util::ensure(config.stress_intensity > 0.0 && config.stress_intensity <= 1.0,
                 "loadgen: stress intensity out of (0, 1]");
}

loadgen::loadgen(const loadgen& other) : profile_(other.profile_), config_(other.config_) {}

loadgen::loadgen(loadgen&& other) noexcept
    : profile_(std::move(other.profile_)), config_(other.config_) {}

loadgen& loadgen::operator=(const loadgen& other) {
    if (this != &other) {
        profile_ = other.profile_;
        config_ = other.config_;
        const std::lock_guard<std::mutex> lock(measured_cache_mutex_);
        measured_cache_valid_ = false;
    }
    return *this;
}

loadgen& loadgen::operator=(loadgen&& other) noexcept {
    if (this != &other) {
        profile_ = std::move(other.profile_);
        config_ = other.config_;
        const std::lock_guard<std::mutex> lock(measured_cache_mutex_);
        measured_cache_valid_ = false;
    }
    return *this;
}

double loadgen::target_utilization(util::seconds_t t) const {
    return profile_.utilization_at(t);
}

double loadgen::instantaneous_utilization(util::seconds_t t) const {
    const double target = profile_.utilization_at(t);
    const double peak = 100.0 * config_.stress_intensity;
    if (target <= 0.0) {
        return 0.0;
    }
    if (target >= peak) {
        return peak;
    }
    const double duty = target / peak;
    const double period = config_.pwm_period.value();
    const double phase = std::fmod(t.value(), period) / period;
    return phase < duty ? peak : 0.0;
}

double loadgen::measured_utilization(util::seconds_t t, util::seconds_t window) const {
    util::ensure(window.value() > 0.0, "loadgen::measured_utilization: non-positive window");
    {
        const std::lock_guard<std::mutex> lock(measured_cache_mutex_);
        if (measured_cache_valid_ && measured_cache_t_ == t.value() &&
            measured_cache_window_ == window.value()) {
            return measured_cache_value_;
        }
    }
    // Integrate the instantaneous load over the window with a step well
    // below the PWM period so duty edges are resolved.  Computed outside
    // the lock: concurrent misses at most duplicate work, and the result
    // is a pure function of (t, window) so last-writer-wins is harmless.
    const double t1 = t.value();
    const double t0 = std::max(0.0, t1 - window.value());
    if (t1 <= t0) {
        return instantaneous_utilization(t);
    }
    const double step = std::min(0.25, config_.pwm_period.value() / 64.0);
    double acc = 0.0;
    int n = 0;
    for (double x = t0; x < t1; x += step) {
        acc += instantaneous_utilization(util::seconds_t{x});
        ++n;
    }
    const double value = n > 0 ? acc / n : instantaneous_utilization(t);
    const std::lock_guard<std::mutex> lock(measured_cache_mutex_);
    measured_cache_t_ = t.value();
    measured_cache_window_ = window.value();
    measured_cache_value_ = value;
    measured_cache_valid_ = true;
    return value;
}

}  // namespace ltsc::workload
