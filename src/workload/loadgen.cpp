#include "workload/loadgen.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ltsc::workload {

loadgen::loadgen(utilization_profile profile, const loadgen_config& config)
    : profile_(std::move(profile)), config_(config) {
    util::ensure(config.pwm_period.value() > 0.0, "loadgen: non-positive PWM period");
    util::ensure(config.stress_intensity > 0.0 && config.stress_intensity <= 1.0,
                 "loadgen: stress intensity out of (0, 1]");
}

loadgen::loadgen(const loadgen& other) : profile_(other.profile_), config_(other.config_) {}

loadgen::loadgen(loadgen&& other) noexcept
    : profile_(std::move(other.profile_)), config_(other.config_) {}

loadgen& loadgen::operator=(const loadgen& other) {
    if (this != &other) {
        profile_ = other.profile_;
        config_ = other.config_;
        const std::lock_guard<std::mutex> lock(measured_cache_mutex_);
        measured_cache_valid_ = false;
    }
    return *this;
}

loadgen& loadgen::operator=(loadgen&& other) noexcept {
    if (this != &other) {
        profile_ = std::move(other.profile_);
        config_ = other.config_;
        const std::lock_guard<std::mutex> lock(measured_cache_mutex_);
        measured_cache_valid_ = false;
    }
    return *this;
}

double loadgen::target_utilization(util::seconds_t t) const {
    return profile_.utilization_at(t);
}

double loadgen::instantaneous_utilization(util::seconds_t t) const {
    const double target = profile_.utilization_at(t);
    const double peak = 100.0 * config_.stress_intensity;
    if (target <= 0.0) {
        return 0.0;
    }
    if (target >= peak) {
        return peak;
    }
    const double duty = target / peak;
    const double period = config_.pwm_period.value();
    const double phase = std::fmod(t.value(), period) / period;
    return phase < duty ? peak : 0.0;
}

double loadgen::measured_utilization_sampled(util::seconds_t t, util::seconds_t window) const {
    util::ensure(window.value() > 0.0,
                 "loadgen::measured_utilization_sampled: non-positive window");
    // Integrate the instantaneous load over the window with a step well
    // below the PWM period so duty edges are resolved.
    const double t1 = t.value();
    const double t0 = std::max(0.0, t1 - window.value());
    if (t1 <= t0) {
        return instantaneous_utilization(t);
    }
    const double step = std::min(0.25, config_.pwm_period.value() / 64.0);
    double acc = 0.0;
    int n = 0;
    for (double x = t0; x < t1; x += step) {
        acc += instantaneous_utilization(util::seconds_t{x});
        ++n;
    }
    return n > 0 ? acc / n : instantaneous_utilization(t);
}

namespace {

/// The odd part of a finite positive double's integer significand.  A
/// k-fold running sum of `v` is exact iff k * odd_significand(v) still
/// fits in the 53-bit mantissa.
long long odd_significand(double v) {
    int e = 0;
    const double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
    auto sig = static_cast<long long>(std::ldexp(m, 53));
    while (sig % 2 == 0) {
        sig /= 2;
    }
    return sig;
}

/// Busy quarter-second slots among slot indices [0, i): slots whose
/// residue mod `q4` (the PWM period in slots) is below `r_star`.
long long busy_below(long long i, long long q4, long long r_star) {
    return (i / q4) * r_star + std::min(i % q4, r_star);
}

}  // namespace

bool loadgen::measured_analytic(double t0, double t1, double& out) const {
    const double period = config_.pwm_period.value();
    // Eligibility: the reference sum's step must be exactly 0.25 s
    // (period >= 16 s), the window start must sit on the quarter-second
    // grid so every sample position t0 + 0.25*k is an exact double, and
    // all slot indices must stay well inside exact-integer range.
    if (period < 16.0) {
        return false;
    }
    const double i0d = t0 * 4.0;  // exact: multiplication by 4
    const double i1d = t1 * 4.0;
    const double end4 = profile_.duration().value() * 4.0;
    if (!(i1d < 9.0e15) || !(end4 < 9.0e15) || i0d != std::floor(i0d)) {
        return false;
    }
    const auto i0 = static_cast<long long>(i0d);
    const auto i1 = static_cast<long long>(std::ceil(i1d));  // count of slots < 4*t1
    const long long n = i1 - i0;
    if (n <= 0 || n > 2000000000LL) {  // the reference loop counts in int
        return false;
    }
    const double peak = 100.0 * config_.stress_intensity;
    // Closed-form phase counting needs the period on the slot grid too;
    // ramps and off-grid periods are counted slot by slot instead.
    const double q4d = period * 4.0;
    const bool dyadic_period = q4d == std::floor(q4d) && q4d < 9.0e15;
    const auto q4 = static_cast<long long>(dyadic_period ? q4d : 0.0);

    const auto count_by_sampling = [&](long long lo, long long hi) {
        long long busy = 0;
        for (long long i = lo; i < hi; ++i) {
            busy += instantaneous_utilization(util::seconds_t{0.25 * static_cast<double>(i)}) > 0.0;
        }
        return busy;
    };

    long long busy = 0;
    for (const utilization_profile::segment& s : profile_.segments()) {
        // Slot range of this segment clipped to the window: a sample
        // x = i/4 lands in [s.t0, s.t1) iff 4*s.t0 <= i < 4*s.t1, and
        // both products are exact.
        const long long lo = std::max(i0, static_cast<long long>(std::ceil(s.t0 * 4.0)));
        const long long hi = std::min(i1, static_cast<long long>(std::ceil(s.t1 * 4.0)));
        if (hi <= lo) {
            continue;
        }
        if (s.u0 != s.u1) {  // ramp: the duty threshold moves per sample
            busy += count_by_sampling(lo, hi);
            continue;
        }
        const double u = s.u0;
        if (u <= 0.0) {
            continue;  // idle segment
        }
        if (u >= peak) {
            busy += hi - lo;  // saturated: every slot is busy
            continue;
        }
        if (!dyadic_period) {
            busy += count_by_sampling(lo, hi);
            continue;
        }
        // A slot with residue r (mod q4) samples phase fl((0.25*r)/period)
        // — fmod is exact on the slot grid — and is busy iff that rounded
        // quotient is < duty.  The quotient is monotone in r, so the busy
        // residues are exactly a prefix [0, r_star); find the threshold
        // by bisection on the *rounded* comparison the reference makes.
        const double duty = u / peak;
        long long lo_r = 0;   // phase(0) = 0 < duty (duty > 0)
        long long hi_r = q4;  // phase(q4) = 1 >= duty
        while (hi_r - lo_r > 1) {
            const long long mid = lo_r + (hi_r - lo_r) / 2;
            if (0.25 * static_cast<double>(mid) / period < duty) {
                lo_r = mid;
            } else {
                hi_r = mid;
            }
        }
        const long long r_star = hi_r;
        busy += busy_below(hi, q4, r_star) - busy_below(lo, q4, r_star);
    }
    // Slots past the profile end are idle (utilization_at returns 0)
    // and contribute nothing; nothing to add for them.

    // The reference accumulator is `busy` sequential additions of
    // `peak` (the 0.0 samples add exactly).  When every partial sum
    // k*peak is representable the whole chain is exact and collapses to
    // one multiplication; otherwise replay the cheap addition chain.
    double acc = 0.0;
    if (busy > 0) {
        const bool exact_chain = odd_significand(peak) <= (1LL << 53) / busy;
        if (exact_chain) {
            acc = peak * static_cast<double>(busy);
        } else {
            for (long long k = 0; k < busy; ++k) {
                acc += peak;
            }
        }
    }
    out = acc / static_cast<double>(n);
    return true;
}

double loadgen::measured_utilization(util::seconds_t t, util::seconds_t window) const {
    util::ensure(window.value() > 0.0, "loadgen::measured_utilization: non-positive window");
    {
        const std::lock_guard<std::mutex> lock(measured_cache_mutex_);
        if (measured_cache_valid_ && measured_cache_t_ == t.value() &&
            measured_cache_window_ == window.value()) {
            return measured_cache_value_;
        }
    }
    // Computed outside the lock: concurrent misses at most duplicate
    // work, and the result is a pure function of (t, window) so
    // last-writer-wins is harmless.
    const double t1 = t.value();
    const double t0 = std::max(0.0, t1 - window.value());
    if (t1 <= t0) {
        return instantaneous_utilization(t);
    }
    double value = 0.0;
    if (!measured_analytic(t0, t1, value)) {
        value = measured_utilization_sampled(t, window);
    }
    const std::lock_guard<std::mutex> lock(measured_cache_mutex_);
    measured_cache_t_ = t.value();
    measured_cache_window_ = window.value();
    measured_cache_value_ = value;
    measured_cache_valid_ = true;
    return value;
}

}  // namespace ltsc::workload
