// Target-utilization profiles.
//
// A profile is a piecewise-linear function of time mapping to a CPU
// utilization target in [0, 100] %.  Profiles describe *what the operator
// asks LoadGen to do*; LoadGen (loadgen.hpp) turns the target into the
// duty-cycled instantaneous load the CPUs actually see.
#pragma once

#include <string>
#include <vector>

#include "util/time_series.hpp"
#include "util/units.hpp"

namespace ltsc::workload {

/// Piecewise-linear utilization target over time.  Outside the profile's
/// span the utilization is 0 (idle).
class utilization_profile {
public:
    utilization_profile() = default;
    explicit utilization_profile(std::string name) : name_(std::move(name)) {}

    /// Appends a constant segment at `level_pct` for `duration`.
    utilization_profile& constant(double level_pct, util::seconds_t duration);

    /// Appends a linear ramp from `from_pct` to `to_pct` over `duration`.
    utilization_profile& ramp(double from_pct, double to_pct, util::seconds_t duration);

    /// Appends a square wave alternating `high_pct` / `low_pct`, starting
    /// high, with the given half-period, for `cycles` full cycles.
    utilization_profile& square(double high_pct, double low_pct, util::seconds_t half_period,
                                int cycles);

    /// Appends an idle segment.
    utilization_profile& idle(util::seconds_t duration) { return constant(0.0, duration); }

    /// Target utilization at time `t` seconds from profile start.
    [[nodiscard]] double utilization_at(util::seconds_t t) const;

    /// Total profile span.
    [[nodiscard]] util::seconds_t duration() const { return util::seconds_t{end_}; }

    /// Time-average utilization over the profile span.
    [[nodiscard]] double average_utilization() const;

    /// Number of segments appended.
    [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }

    [[nodiscard]] const std::string& name() const { return name_; }

    /// Samples the profile on a uniform grid (for CSV export / plotting).
    [[nodiscard]] util::time_series sampled(util::seconds_t dt) const;

    /// One piecewise-linear piece: target ramps u0 -> u1 over [t0, t1).
    /// Segments are contiguous (t0 of segment k+1 equals t1 of segment
    /// k) and constant iff u0 == u1.
    struct segment {
        double t0 = 0.0;
        double t1 = 0.0;
        double u0 = 0.0;
        double u1 = 0.0;
    };

    /// Read-only segment list, in time order (loadgen's analytic
    /// utilization measurement integrates the duty cycle per segment).
    [[nodiscard]] const std::vector<segment>& segments() const { return segments_; }

private:
    void append(double u0, double u1, double duration_s);

    std::string name_;
    std::vector<segment> segments_;
    double end_ = 0.0;
};

/// A profile built from recorded utilization samples (trace replay).
[[nodiscard]] utilization_profile profile_from_trace(std::string name,
                                                     const util::time_series& trace);

}  // namespace ltsc::workload
