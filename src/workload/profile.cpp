#include "workload/profile.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ltsc::workload {

void utilization_profile::append(double u0, double u1, double duration_s) {
    util::ensure(duration_s > 0.0, "utilization_profile: non-positive segment duration");
    util::ensure(u0 >= 0.0 && u0 <= 100.0 && u1 >= 0.0 && u1 <= 100.0,
                 "utilization_profile: utilization out of [0, 100]");
    segments_.push_back(segment{end_, end_ + duration_s, u0, u1});
    end_ += duration_s;
}

utilization_profile& utilization_profile::constant(double level_pct, util::seconds_t duration) {
    append(level_pct, level_pct, duration.value());
    return *this;
}

utilization_profile& utilization_profile::ramp(double from_pct, double to_pct,
                                               util::seconds_t duration) {
    append(from_pct, to_pct, duration.value());
    return *this;
}

utilization_profile& utilization_profile::square(double high_pct, double low_pct,
                                                 util::seconds_t half_period, int cycles) {
    util::ensure(cycles >= 1, "utilization_profile::square: need >= 1 cycle");
    for (int i = 0; i < cycles; ++i) {
        constant(high_pct, half_period);
        constant(low_pct, half_period);
    }
    return *this;
}

double utilization_profile::utilization_at(util::seconds_t t) const {
    const double ts = t.value();
    if (segments_.empty() || ts < segments_.front().t0 || ts >= end_) {
        return 0.0;
    }
    // Binary search for the containing segment.
    const auto it = std::upper_bound(segments_.begin(), segments_.end(), ts,
                                     [](double lhs, const segment& s) { return lhs < s.t1; });
    if (it == segments_.end()) {
        return 0.0;
    }
    const segment& s = *it;
    if (s.t1 == s.t0) {
        return s.u1;
    }
    const double alpha = (ts - s.t0) / (s.t1 - s.t0);
    return s.u0 + alpha * (s.u1 - s.u0);
}

double utilization_profile::average_utilization() const {
    if (segments_.empty()) {
        return 0.0;
    }
    double integral = 0.0;
    for (const segment& s : segments_) {
        integral += 0.5 * (s.u0 + s.u1) * (s.t1 - s.t0);
    }
    return integral / end_;
}

util::time_series utilization_profile::sampled(util::seconds_t dt) const {
    util::ensure(dt.value() > 0.0, "utilization_profile::sampled: non-positive step");
    util::time_series out;
    for (double t = 0.0; t <= end_ + 1e-9; t += dt.value()) {
        out.push_back(t, utilization_at(util::seconds_t{t}));
    }
    return out;
}

utilization_profile profile_from_trace(std::string name, const util::time_series& trace) {
    util::ensure(trace.size() >= 2, "profile_from_trace: need >= 2 samples");
    utilization_profile p(std::move(name));
    for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
        const auto& a = trace.at(i);
        const auto& b = trace.at(i + 1);
        if (b.t > a.t) {
            p.ramp(std::clamp(a.v, 0.0, 100.0), std::clamp(b.v, 0.0, 100.0),
                   util::seconds_t{b.t - a.t});
        }
    }
    return p;
}

}  // namespace ltsc::workload
