// Discrete-event M/M/c queueing simulation.
//
// Test-4 of the paper emulates a shell workload with Poisson arrival times
// and exponential service times, following Meisner & Wenisch's stochastic
// queuing simulation approach.  This module implements the M/M/c system as
// a proper discrete-event simulation: jobs arrive in a Poisson stream, wait
// FIFO for one of `c` hardware contexts, and hold it for an exponential
// service time.  CPU utilization at any instant is busy_contexts / c.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/time_series.hpp"
#include "util/units.hpp"
#include "workload/profile.hpp"

namespace ltsc::workload {

/// Optional Markov-modulated arrival bursts (MMPP(2)): the arrival rate
/// alternates between a calm and a burst level with exponentially
/// distributed dwell times.  Interactive shell workloads are bursty —
/// stretches of near-idle interrupted by flurries of command activity —
/// and a homogeneous Poisson stream cannot reproduce the resulting
/// temperature spikes.
struct mmc_burst_modulation {
    bool enabled = false;
    double burst_arrival_rate_hz = 0.0;  ///< Lambda during bursts.
    double mean_calm_dwell_s = 420.0;    ///< Mean time between bursts.
    double mean_burst_dwell_s = 100.0;   ///< Mean burst length.
};

/// Parameters of the M/M/c workload generator.
struct mmc_config {
    double arrival_rate_hz = 1.0;       ///< Poisson arrival rate lambda [jobs/s]
                                        ///< (the calm rate when modulation is on).
    double service_rate_hz = 0.05;      ///< Per-server service rate mu [1/s].
    std::uint32_t servers = 64;         ///< Number of service contexts c.
    std::uint64_t seed = 0x7331;        ///< RNG seed (deterministic traces).
    mmc_burst_modulation modulation{};  ///< Optional burstiness.

    /// Offered utilization rho = lambda / (c * mu) in [0, 1] (calm rate).
    [[nodiscard]] double offered_load() const {
        return arrival_rate_hz / (static_cast<double>(servers) * service_rate_hz);
    }
};

/// Summary statistics of a queueing run (validated against M/M/c theory in
/// the test suite).
struct mmc_stats {
    double mean_utilization_pct = 0.0;  ///< Time-average busy fraction * 100.
    double mean_queue_length = 0.0;     ///< Time-average jobs waiting (not in service).
    double mean_response_time_s = 0.0;  ///< Mean sojourn time per completed job.
    std::uint64_t completed_jobs = 0;   ///< Jobs finished within the horizon.
};

/// Result of a simulation: the utilization trace plus summary stats.
struct mmc_result {
    util::time_series utilization;  ///< Sampled busy fraction [%] at 1 s cadence.
    mmc_stats stats;
};

/// Runs the discrete-event simulation for `horizon` seconds, sampling the
/// utilization every `sample_dt` seconds.
[[nodiscard]] mmc_result simulate_mmc(const mmc_config& config, util::seconds_t horizon,
                                      util::seconds_t sample_dt = util::seconds_t{1.0});

/// Analytic Erlang-C probability that an arriving job must wait, for
/// validating the simulation (throws when rho >= 1).
[[nodiscard]] double erlang_c(std::uint32_t servers, double offered_erlangs);

/// Convenience: converts an M/M/c run into a utilization profile for the
/// server simulator.
[[nodiscard]] utilization_profile mmc_profile(std::string name, const mmc_config& config,
                                              util::seconds_t horizon);

}  // namespace ltsc::workload
