// Columnar trace storage: one shared time axis, N named value columns.
//
// A `frame` is the storage layer under every per-step recording in the
// library.  Where a bundle of `time_series` would duplicate the
// timestamp per channel and validate monotonicity N times per step, a
// frame holds one monotonic time column plus one contiguous value column
// per channel: an append is one timestamp check and one row write, and
// channels can never drift out of step with each other.  Reads go
// through `column_view`, which exposes the full `time_series` read API
// over the shared time column.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/time_series.hpp"

namespace ltsc::util {

/// One time column + N named contiguous value columns.
class frame {
public:
    frame() = default;

    /// Registers a value column and returns its index.  Channel names
    /// must be unique; columns can only be added while the frame holds
    /// no rows.
    std::size_t add_channel(std::string name);

    [[nodiscard]] std::size_t channel_count() const { return columns_.size(); }

    /// Number of rows (samples per channel).
    [[nodiscard]] std::size_t size() const { return time_.size(); }
    [[nodiscard]] bool empty() const { return time_.empty(); }

    /// Pre-allocates storage for `rows` rows in every column.
    void reserve(std::size_t rows);

    /// Appends one row: a shared timestamp plus one value per channel
    /// (`count` must equal `channel_count()`).  Throws precondition_error
    /// when `t` is older than the last row or any value is non-finite.
    void append(double t, const double* values, std::size_t count);

    /// Drops all rows; the channel set is preserved.
    void clear();

    [[nodiscard]] const std::vector<double>& time() const { return time_; }
    [[nodiscard]] const std::vector<double>& values(std::size_t channel) const;

    /// Channel lookup.  The index overload is bounds-checked; the name
    /// overload throws on an unknown channel.
    [[nodiscard]] column_view column(std::size_t channel) const;
    [[nodiscard]] column_view column(const std::string& name) const;

    [[nodiscard]] std::size_t channel_index(const std::string& name) const;
    [[nodiscard]] bool has_channel(const std::string& name) const;
    [[nodiscard]] const std::string& channel_name(std::size_t channel) const;

private:
    std::vector<std::string> names_;
    std::vector<double> time_;
    std::vector<std::vector<double>> columns_;
};

}  // namespace ltsc::util
