// Lock-free single-producer/single-consumer ring of reusable slots.
//
// The telemetry ingestion path publishes one row-group per fleet-shard
// step; the aggregator drains them on its own thread.  Neither side may
// block or allocate on the hot path, so the ring hands out *slots* to
// in-place fill/drain callbacks instead of moving values through the
// API: slot payloads (vectors sized on first use) keep their capacity
// across laps and a steady-state push copies straight into warm memory.
//
// Concurrency contract: at most one thread pushes and at most one
// thread pops at any moment.  The producer role may migrate between
// threads (fleet shards are stepped by whichever pool thread picks the
// index up) as long as successive pushes are ordered by an external
// happens-before edge — the thread pool's batch barrier provides it.
// `try_push` fails (returns false) on a full ring instead of waiting:
// back-pressure policy (count-and-drop, for the telemetry service)
// belongs to the caller.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace ltsc::util {

template <typename T>
class spsc_ring {
public:
    /// Ring with at least `min_slots` slots (rounded up to a power of
    /// two so index masking replaces modulo).  Slots are
    /// default-constructed once and reused for the ring's lifetime.
    explicit spsc_ring(std::size_t min_slots) {
        ensure(min_slots > 0, "spsc_ring: need at least one slot");
        std::size_t cap = 1;
        while (cap < min_slots) {
            cap <<= 1;
        }
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    spsc_ring(const spsc_ring&) = delete;
    spsc_ring& operator=(const spsc_ring&) = delete;

    [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

    /// Occupied slots at some recent instant (exact only when the other
    /// side is quiescent); for stats and tests, not for flow control.
    [[nodiscard]] std::size_t size() const {
        const std::uint64_t tail = tail_.load(std::memory_order_acquire);
        const std::uint64_t head = head_.load(std::memory_order_acquire);
        return static_cast<std::size_t>(tail - head);
    }

    [[nodiscard]] bool empty() const { return size() == 0; }

    /// Producer side: invokes `fill(slot)` on the next free slot and
    /// publishes it.  Returns false (without calling `fill`) when the
    /// ring is full.
    template <typename Fill>
    bool try_push(Fill&& fill) {
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        const std::uint64_t head = head_.load(std::memory_order_acquire);
        if (tail - head == slots_.size()) {
            return false;
        }
        fill(slots_[static_cast<std::size_t>(tail) & mask_]);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /// Consumer side: invokes `drain(slot)` on the oldest occupied slot
    /// and retires it.  Returns false (without calling `drain`) when the
    /// ring is empty.
    template <typename Drain>
    bool try_pop(Drain&& drain) {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        const std::uint64_t tail = tail_.load(std::memory_order_acquire);
        if (head == tail) {
            return false;
        }
        drain(slots_[static_cast<std::size_t>(head) & mask_]);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

private:
    std::vector<T> slots_;
    std::size_t mask_ = 0;
    // Head and tail live on separate cache lines so the producer's tail
    // stores never invalidate the consumer's head line and vice versa.
    alignas(64) std::atomic<std::uint64_t> head_{0};  ///< Next slot to pop.
    alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< Next slot to push.
};

}  // namespace ltsc::util
