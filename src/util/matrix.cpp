#include "util/matrix.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ltsc::util {

matrix::matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    ensure(rows > 0 && cols > 0, "matrix: zero-sized dimension");
}

matrix matrix::identity(std::size_t n) {
    matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = 1.0;
    }
    return m;
}

double& matrix::operator()(std::size_t r, std::size_t c) {
    ensure(r < rows_ && c < cols_, "matrix: index out of range");
    return data_[r * cols_ + c];
}

double matrix::operator()(std::size_t r, std::size_t c) const {
    ensure(r < rows_ && c < cols_, "matrix: index out of range");
    return data_[r * cols_ + c];
}

matrix matrix::operator+(const matrix& rhs) const {
    ensure(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix+: dimension mismatch");
    matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) {
        out.data_[i] = data_[i] + rhs.data_[i];
    }
    return out;
}

matrix matrix::operator-(const matrix& rhs) const {
    ensure(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix-: dimension mismatch");
    matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) {
        out.data_[i] = data_[i] - rhs.data_[i];
    }
    return out;
}

matrix matrix::operator*(const matrix& rhs) const {
    ensure(cols_ == rhs.rows_, "matrix*: inner dimension mismatch");
    matrix out(rows_, rhs.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = data_[r * cols_ + k];
            if (a == 0.0) {
                continue;
            }
            for (std::size_t c = 0; c < rhs.cols_; ++c) {
                out.data_[r * rhs.cols_ + c] += a * rhs.data_[k * rhs.cols_ + c];
            }
        }
    }
    return out;
}

matrix matrix::operator*(double s) const {
    matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) {
        out.data_[i] = data_[i] * s;
    }
    return out;
}

std::vector<double> matrix::operator*(const std::vector<double>& v) const {
    ensure(v.size() == cols_, "matrix*vector: dimension mismatch");
    std::vector<double> out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < cols_; ++c) {
            acc += data_[r * cols_ + c] * v[c];
        }
        out[r] = acc;
    }
    return out;
}

matrix matrix::transposed() const {
    matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            out(c, r) = (*this)(r, c);
        }
    }
    return out;
}

double matrix::max_abs() const {
    double best = 0.0;
    for (double v : data_) {
        best = std::max(best, std::fabs(v));
    }
    return best;
}

lu_decomposition::lu_decomposition(const matrix& a) : lu_(a), perm_(a.rows()) {
    ensure(a.rows() == a.cols(), "lu_decomposition: matrix not square");
    const std::size_t n = a.rows();
    for (std::size_t i = 0; i < n; ++i) {
        perm_[i] = i;
    }
    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting: bring the largest remaining entry to the diagonal.
        std::size_t pivot = col;
        double best = std::fabs(lu_(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::fabs(lu_(r, col)) > best) {
                best = std::fabs(lu_(r, col));
                pivot = r;
            }
        }
        ensure_numeric(best > 1e-14, "lu_decomposition: singular matrix");
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c) {
                std::swap(lu_(pivot, c), lu_(col, c));
            }
            std::swap(perm_[pivot], perm_[col]);
            sign_ = -sign_;
        }
        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = lu_(r, col) / lu_(col, col);
            lu_(r, col) = f;
            for (std::size_t c = col + 1; c < n; ++c) {
                lu_(r, c) -= f * lu_(col, c);
            }
        }
    }
}

std::vector<double> lu_decomposition::solve(const std::vector<double>& b) const {
    std::vector<double> x;
    solve_into(b, x);
    return x;
}

void lu_decomposition::solve_into(const std::vector<double>& b, std::vector<double>& x) const {
    const std::size_t n = lu_.rows();
    ensure(b.size() == n, "lu_decomposition::solve: dimension mismatch");
    ensure(&b != &x, "lu_decomposition::solve_into: aliased vectors");
    x.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = b[perm_[i]];
    }
    // Forward substitution (L has unit diagonal).
    for (std::size_t i = 1; i < n; ++i) {
        double acc = x[i];
        for (std::size_t j = 0; j < i; ++j) {
            acc -= lu_(i, j) * x[j];
        }
        x[i] = acc;
    }
    // Backward substitution.
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = x[ii];
        for (std::size_t j = ii + 1; j < n; ++j) {
            acc -= lu_(ii, j) * x[j];
        }
        x[ii] = acc / lu_(ii, ii);
    }
}

double lu_decomposition::determinant() const {
    double det = static_cast<double>(sign_);
    for (std::size_t i = 0; i < lu_.rows(); ++i) {
        det *= lu_(i, i);
    }
    return det;
}

std::vector<double> solve(const matrix& a, const std::vector<double>& b) {
    return lu_decomposition(a).solve(b);
}

}  // namespace ltsc::util
