// Portable SIMD pack abstraction for the relaxed-tier batch kernels.
//
// A pack<W> is W doubles processed with one instruction stream.  The
// width is selected at compile time per translation unit from the
// target ISA (AVX-512 -> 8, AVX -> 4, SSE2 -> 2, otherwise scalar), so
// a kernel TU compiled with wider arch flags than the rest of the build
// picks the wide pack while the interface stays plain `double*`.
//
// Determinism contract (what makes relaxed-tier results shard- and
// packing-invariant): every pack operation is lane-elementwise and
// IEEE-754 correctly rounded, and `madd` is *fused* exactly when
// `fused_madd` is true — in the vector packs via the FMA intrinsic and
// in pack<1> via std::fma — so a value computed in a vector body is
// bitwise-identical to the same value computed in the scalar tail.
// Kernel TUs must therefore be compiled with -ffp-contract=off: the
// only fused operations allowed are the explicit `madd` calls,
// otherwise the compiler could contract a scalar-tail mul+add that the
// intrinsic body keeps separate (or vice versa) and tail lanes would
// diverge from body lanes.
#pragma once

#include <cmath>
#include <cstddef>

#if defined(__SSE2__)
#include <immintrin.h>
#endif

namespace ltsc::util::simd {

#if defined(LTSC_SIMD_WIDTH)
inline constexpr std::size_t native_width = LTSC_SIMD_WIDTH;
#elif defined(__AVX512F__)
inline constexpr std::size_t native_width = 8;
#elif defined(__AVX__)
inline constexpr std::size_t native_width = 4;
#elif defined(__SSE2__)
inline constexpr std::size_t native_width = 2;
#else
inline constexpr std::size_t native_width = 1;
#endif

/// Whether madd() fuses (single rounding).  AVX-512 implies FMA.
#if defined(__FMA__) || defined(__AVX512F__)
inline constexpr bool fused_madd = true;
#else
inline constexpr bool fused_madd = false;
#endif

template <std::size_t W>
struct pack;

/// Scalar fallback and tail pack.  Mirrors the vector packs operation
/// for operation (see the determinism contract above).
template <>
struct pack<1> {
    static constexpr std::size_t width = 1;
    double v;

    static pack load(const double* p) { return {*p}; }
    void store(double* p) const { *p = v; }
    static pack broadcast(double x) { return {x}; }

    friend pack operator+(pack a, pack b) { return {a.v + b.v}; }
    friend pack operator-(pack a, pack b) { return {a.v - b.v}; }
    friend pack operator*(pack a, pack b) { return {a.v * b.v}; }

    /// a*b + c, fused iff fused_madd.
    static pack madd(pack a, pack b, pack c) {
        if constexpr (fused_madd) {
            return {std::fma(a.v, b.v, c.v)};
        } else {
            return {a.v * b.v + c.v};
        }
    }

    using mask = bool;
    static mask less(pack a, pack b) { return a.v < b.v; }
    /// a where m, else b.
    static pack select(mask m, pack a, pack b) { return m ? a : b; }
};

#if defined(__SSE2__)
template <>
struct pack<2> {
    static constexpr std::size_t width = 2;
    __m128d v;

    static pack load(const double* p) { return {_mm_loadu_pd(p)}; }
    void store(double* p) const { _mm_storeu_pd(p, v); }
    static pack broadcast(double x) { return {_mm_set1_pd(x)}; }

    friend pack operator+(pack a, pack b) { return {_mm_add_pd(a.v, b.v)}; }
    friend pack operator-(pack a, pack b) { return {_mm_sub_pd(a.v, b.v)}; }
    friend pack operator*(pack a, pack b) { return {_mm_mul_pd(a.v, b.v)}; }

    static pack madd(pack a, pack b, pack c) {
#if defined(__FMA__)
        return {_mm_fmadd_pd(a.v, b.v, c.v)};
#else
        return {_mm_add_pd(_mm_mul_pd(a.v, b.v), c.v)};
#endif
    }

    using mask = __m128d;
    static mask less(pack a, pack b) { return _mm_cmplt_pd(a.v, b.v); }
    static pack select(mask m, pack a, pack b) {
#if defined(__SSE4_1__)
        return {_mm_blendv_pd(b.v, a.v, m)};
#else
        return {_mm_or_pd(_mm_and_pd(m, a.v), _mm_andnot_pd(m, b.v))};
#endif
    }
};
#endif  // __SSE2__

#if defined(__AVX__)
template <>
struct pack<4> {
    static constexpr std::size_t width = 4;
    __m256d v;

    static pack load(const double* p) { return {_mm256_loadu_pd(p)}; }
    void store(double* p) const { _mm256_storeu_pd(p, v); }
    static pack broadcast(double x) { return {_mm256_set1_pd(x)}; }

    friend pack operator+(pack a, pack b) { return {_mm256_add_pd(a.v, b.v)}; }
    friend pack operator-(pack a, pack b) { return {_mm256_sub_pd(a.v, b.v)}; }
    friend pack operator*(pack a, pack b) { return {_mm256_mul_pd(a.v, b.v)}; }

    static pack madd(pack a, pack b, pack c) {
#if defined(__FMA__)
        return {_mm256_fmadd_pd(a.v, b.v, c.v)};
#else
        return {_mm256_add_pd(_mm256_mul_pd(a.v, b.v), c.v)};
#endif
    }

    using mask = __m256d;
    static mask less(pack a, pack b) { return _mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ); }
    static pack select(mask m, pack a, pack b) { return {_mm256_blendv_pd(b.v, a.v, m)}; }
};
#endif  // __AVX__

#if defined(__AVX512F__)
template <>
struct pack<8> {
    static constexpr std::size_t width = 8;
    __m512d v;

    static pack load(const double* p) { return {_mm512_loadu_pd(p)}; }
    void store(double* p) const { _mm512_storeu_pd(p, v); }
    static pack broadcast(double x) { return {_mm512_set1_pd(x)}; }

    friend pack operator+(pack a, pack b) { return {_mm512_add_pd(a.v, b.v)}; }
    friend pack operator-(pack a, pack b) { return {_mm512_sub_pd(a.v, b.v)}; }
    friend pack operator*(pack a, pack b) { return {_mm512_mul_pd(a.v, b.v)}; }

    static pack madd(pack a, pack b, pack c) { return {_mm512_fmadd_pd(a.v, b.v, c.v)}; }

    using mask = __mmask8;
    static mask less(pack a, pack b) { return _mm512_cmp_pd_mask(a.v, b.v, _CMP_LT_OQ); }
    static pack select(mask m, pack a, pack b) { return {_mm512_mask_blend_pd(m, b.v, a.v)}; }
};
#endif  // __AVX512F__

using native_pack = pack<native_width>;

}  // namespace ltsc::util::simd
