// Error handling primitives shared across all ltsc modules.
//
// The library reports contract violations and unrecoverable conditions via
// exceptions (C++ Core Guidelines E.2).  `ensure` guards preconditions on
// public API boundaries; internal invariants use `ensure` as well so that a
// corrupted simulation never silently produces wrong physics.
#pragma once

#include <stdexcept>
#include <string>

namespace ltsc::util {

/// Base class for all exceptions thrown by the ltsc library.
class ltsc_error : public std::runtime_error {
public:
    explicit ltsc_error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class precondition_error : public ltsc_error {
public:
    explicit precondition_error(const std::string& what) : ltsc_error(what) {}
};

/// Thrown when a numerical routine fails to converge or produces
/// non-finite values.
class numeric_error : public ltsc_error {
public:
    explicit numeric_error(const std::string& what) : ltsc_error(what) {}
};

/// Thrown when externally supplied data (CSV traces, config files) is
/// malformed: ragged rows, missing columns, unparseable cells.
class parse_error : public ltsc_error {
public:
    explicit parse_error(const std::string& what) : ltsc_error(what) {}
};

/// Throws precondition_error with `msg` when `condition` is false.
///
/// The message is taken as a C string so the (overwhelmingly common)
/// passing case never materializes a std::string: guards sit on hot
/// per-substep paths, and a by-value std::string parameter would heap
/// allocate on every call.
inline void ensure(bool condition, const char* msg) {
    if (!condition) {
        throw precondition_error(msg);
    }
}

/// Overload for call sites that assemble a dynamic message.
inline void ensure(bool condition, const std::string& msg) {
    if (!condition) {
        throw precondition_error(msg);
    }
}

/// Throws numeric_error with `msg` when `condition` is false.
inline void ensure_numeric(bool condition, const char* msg) {
    if (!condition) {
        throw numeric_error(msg);
    }
}

/// Overload for call sites that assemble a dynamic message.
inline void ensure_numeric(bool condition, const std::string& msg) {
    if (!condition) {
        throw numeric_error(msg);
    }
}

}  // namespace ltsc::util
