// Leveled logging with a process-global threshold.
//
// Benchmarks run with logging at `warn` so their stdout stays parseable;
// examples raise it to `info` to narrate what the pipeline does.
#pragma once

#include <sstream>
#include <string>

namespace ltsc::util {

/// Log severity, ordered.
enum class log_level { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

/// Sets the process-global logging threshold.
void set_log_level(log_level level);

/// Current process-global logging threshold.
[[nodiscard]] log_level get_log_level();

/// Human-readable name of a level ("info", "warn", ...).
[[nodiscard]] const char* to_string(log_level level);

/// Emits `message` to stderr when `level` passes the global threshold.
void log(log_level level, const std::string& message);

/// Composable log statement: log_info() << "x = " << x; emits on
/// destruction when the level passes the threshold.
class log_stream {
public:
    explicit log_stream(log_level level) : level_(level) {}
    log_stream(const log_stream&) = delete;
    log_stream& operator=(const log_stream&) = delete;
    ~log_stream() { log(level_, buf_.str()); }

    template <class T>
    log_stream& operator<<(const T& v) {
        buf_ << v;
        return *this;
    }

private:
    log_level level_;
    std::ostringstream buf_;
};

inline log_stream log_trace() { return log_stream(log_level::trace); }
inline log_stream log_debug() { return log_stream(log_level::debug); }
inline log_stream log_info() { return log_stream(log_level::info); }
inline log_stream log_warn() { return log_stream(log_level::warn); }
inline log_stream log_error() { return log_stream(log_level::error); }

}  // namespace ltsc::util
