#include "util/histogram.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ltsc::util {

fixed_histogram::fixed_histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
    ensure(std::isfinite(lo) && std::isfinite(hi) && lo < hi,
           "fixed_histogram: need a finite lo < hi range");
    ensure(bins > 0, "fixed_histogram: need at least one bin");
    inv_width_ = static_cast<double>(bins) / (hi - lo);
}

void fixed_histogram::add(double v) {
    ensure(!counts_.empty(), "fixed_histogram::add: default-constructed histogram");
    ensure(std::isfinite(v), "fixed_histogram::add: non-finite value");
    std::size_t bin = 0;
    if (v < lo_) {
        ++clamped_low_;
    } else if (v >= hi_) {
        bin = counts_.size() - 1;
        ++clamped_high_;
    } else {
        bin = static_cast<std::size_t>((v - lo_) * inv_width_);
        // Rounding at the upper edge of the last in-range interval can
        // land one past the end; clamp.
        if (bin >= counts_.size()) {
            bin = counts_.size() - 1;
        }
    }
    ++counts_[bin];
    ++total_;
}

void fixed_histogram::merge(const fixed_histogram& other) {
    ensure(lo_ == other.lo_ && hi_ == other.hi_ && counts_.size() == other.counts_.size(),
           "fixed_histogram::merge: grid mismatch");
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
    clamped_low_ += other.clamped_low_;
    clamped_high_ += other.clamped_high_;
}

void fixed_histogram::clear() {
    for (auto& c : counts_) {
        c = 0;
    }
    total_ = 0;
    clamped_low_ = 0;
    clamped_high_ = 0;
}

double fixed_histogram::quantile(double q) const {
    ensure(total_ > 0, "fixed_histogram::quantile: empty histogram");
    ensure(q >= 0.0 && q <= 1.0, "fixed_histogram::quantile: q outside [0, 1]");
    // Rank of the q-th observation (1-based), clamped into [1, total].
    const double want = q * static_cast<double>(total_);
    std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(want));
    if (rank == 0) {
        rank = 1;
    }
    std::uint64_t cum = 0;
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0) {
            continue;
        }
        if (cum + counts_[i] >= rank) {
            const double frac = static_cast<double>(rank - cum) / static_cast<double>(counts_[i]);
            return lo_ + (static_cast<double>(i) + frac) * width;
        }
        cum += counts_[i];
    }
    return hi_;  // Unreachable when counts are consistent with total_.
}

}  // namespace ltsc::util
