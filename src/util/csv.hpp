// Minimal CSV reading/writing for trace export and benchmark output.
//
// The benchmark harnesses dump every figure's series as CSV so the plots
// can be regenerated with any plotting tool; the reader exists mainly so
// tests can round-trip what the writer produced.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "util/time_series.hpp"

namespace ltsc::util {

/// Streaming CSV writer.  Quotes cells containing separators/quotes per
/// RFC 4180; numeric cells are written with enough digits to round-trip.
class csv_writer {
public:
    /// Wraps an output stream; the stream must outlive the writer.
    explicit csv_writer(std::ostream& os);

    /// Writes a header row of column names.
    void write_header(const std::vector<std::string>& columns);

    /// Writes a row of string cells.
    void write_row(const std::vector<std::string>& cells);

    /// Writes a row of numeric cells.
    void write_row(const std::vector<double>& cells);

    /// Number of rows written so far (header included).
    [[nodiscard]] std::size_t rows_written() const { return rows_; }

private:
    std::ostream& os_;
    std::size_t rows_ = 0;
};

/// Parsed CSV document: a header plus rows of string cells.
struct csv_document {
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text (first row treated as header).  Handles quoted cells and
/// embedded separators; throws on unterminated quotes.
[[nodiscard]] csv_document parse_csv(const std::string& text);

/// Throws parse_error when any row has a different cell count than the
/// header (a malformed / ragged row).
void ensure_rectangular(const csv_document& doc);

/// Index of `name` in the document's header; throws parse_error when the
/// column is absent.
[[nodiscard]] std::size_t column_index(const csv_document& doc, const std::string& name);

/// Writes a set of named series that share no time base as long-format CSV
/// with columns: series, time_s, value, unit.
void write_series_csv(std::ostream& os, const std::vector<named_series>& series);

/// Formats a double with round-trip precision, trimming trailing zeros.
[[nodiscard]] std::string format_number(double v);

}  // namespace ltsc::util
