#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ltsc::util {

pcg32::pcg32(std::uint64_t seed, std::uint64_t seq) {
    state_ = 0U;
    inc_ = (seq << 1U) | 1U;
    next_u32();
    state_ += seed;
    next_u32();
}

std::uint32_t pcg32::next_u32() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    const auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
}

double pcg32::next_double() {
    return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
}

double pcg32::uniform(double lo, double hi) {
    ensure(lo <= hi, "pcg32::uniform: inverted range");
    return lo + (hi - lo) * next_double();
}

double pcg32::normal() {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller transform; reject u1 == 0 to avoid log(0).
    double u1 = 0.0;
    do {
        u1 = next_double();
    } while (u1 <= 0.0);
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double pcg32::normal(double mean, double stddev) {
    ensure(stddev >= 0.0, "pcg32::normal: negative stddev");
    return mean + stddev * normal();
}

double pcg32::exponential(double rate) {
    ensure(rate > 0.0, "pcg32::exponential: non-positive rate");
    double u = 0.0;
    do {
        u = next_double();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

std::uint32_t pcg32::poisson(double mean) {
    ensure(mean >= 0.0, "pcg32::poisson: negative mean");
    if (mean == 0.0) {
        return 0;
    }
    if (mean < 30.0) {
        // Knuth: multiply uniforms until the product drops below e^-mean.
        const double limit = std::exp(-mean);
        double prod = 1.0;
        std::uint32_t k = 0;
        do {
            ++k;
            prod *= next_double();
        } while (prod > limit);
        return k - 1;
    }
    // Normal approximation with continuity correction for large means.
    const double x = normal(mean, std::sqrt(mean));
    return x <= 0.0 ? 0U : static_cast<std::uint32_t>(x + 0.5);
}

}  // namespace ltsc::util
