#include "util/csv.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace ltsc::util {

namespace {

bool needs_quoting(const std::string& cell) {
    return cell.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& cell) {
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"') {
            out += "\"\"";
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

}  // namespace

std::string format_number(double v) {
    if (!std::isfinite(v)) {
        return v > 0 ? "inf" : (v < 0 ? "-inf" : "nan");
    }
    char buf[64];
    // %.12g round-trips the values this library produces while staying
    // readable; exact binary round-trip is not required for trace export.
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

csv_writer::csv_writer(std::ostream& os) : os_(os) {}

void csv_writer::write_header(const std::vector<std::string>& columns) { write_row(columns); }

void csv_writer::write_row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) {
            os_ << ',';
        }
        os_ << (needs_quoting(cells[i]) ? quote(cells[i]) : cells[i]);
    }
    os_ << '\n';
    ++rows_;
}

void csv_writer::write_row(const std::vector<double>& cells) {
    std::vector<std::string> formatted;
    formatted.reserve(cells.size());
    for (double v : cells) {
        formatted.push_back(format_number(v));
    }
    write_row(formatted);
}

csv_document parse_csv(const std::string& text) {
    csv_document doc;
    std::vector<std::string> row;
    std::string cell;
    bool in_quotes = false;
    bool row_has_content = false;

    const auto end_cell = [&] {
        row.push_back(cell);
        cell.clear();
    };
    const auto end_row = [&] {
        end_cell();
        if (doc.header.empty() && doc.rows.empty()) {
            doc.header = row;
        } else {
            doc.rows.push_back(row);
        }
        row.clear();
        row_has_content = false;
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    cell += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                cell += c;
            }
            continue;
        }
        switch (c) {
            case '"':
                in_quotes = true;
                row_has_content = true;
                break;
            case ',':
                end_cell();
                row_has_content = true;
                break;
            case '\r':
                break;
            case '\n':
                if (row_has_content || !cell.empty() || !row.empty()) {
                    end_row();
                }
                break;
            default:
                cell += c;
                row_has_content = true;
                break;
        }
    }
    ensure(!in_quotes, "parse_csv: unterminated quoted cell");
    if (row_has_content || !cell.empty() || !row.empty()) {
        end_row();
    }
    return doc;
}

void ensure_rectangular(const csv_document& doc) {
    for (std::size_t i = 0; i < doc.rows.size(); ++i) {
        if (doc.rows[i].size() != doc.header.size()) {
            throw parse_error("csv: row " + std::to_string(i + 1) + " has " +
                              std::to_string(doc.rows[i].size()) + " cells, header has " +
                              std::to_string(doc.header.size()));
        }
    }
}

std::size_t column_index(const csv_document& doc, const std::string& name) {
    for (std::size_t i = 0; i < doc.header.size(); ++i) {
        if (doc.header[i] == name) {
            return i;
        }
    }
    throw parse_error("csv: missing column '" + name + "'");
}

void write_series_csv(std::ostream& os, const std::vector<named_series>& series) {
    csv_writer w(os);
    w.write_header({"series", "time_s", "value", "unit"});
    for (const named_series& s : series) {
        for (const sample& smp : s.data.samples()) {
            w.write_row({s.name, format_number(smp.t), format_number(smp.v), s.unit});
        }
    }
}

}  // namespace ltsc::util
