// Shared read algorithms over any (time, value) series representation.
//
// `time_series` (array-of-structs samples) and `column_view` (strided
// columnar storage) expose the same read API — interpolation, windowed
// statistics, trapezoidal integration.  Both forward to these templates,
// so the arithmetic is literally the same instruction sequence over
// either layout and the columnar swap cannot perturb a single bit of any
// derived statistic.  The `Series` parameter must provide
// `std::size_t size()`, `double t(std::size_t)` and `double v(std::size_t)`;
// callers guarantee non-emptiness and window ordering (each facade keeps
// its own `ensure` messages).
#pragma once

#include <algorithm>
#include <cstddef>

namespace ltsc::util::detail {

/// First index whose time stamp is strictly greater than `x`
/// (`std::upper_bound` over the time column).
template <typename Series>
[[nodiscard]] std::size_t upper_bound_time(const Series& s, double x) {
    std::size_t lo = 0;
    std::size_t hi = s.size();
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (x < s.t(mid)) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    return lo;
}

template <typename Series>
[[nodiscard]] std::size_t index_at_or_before(const Series& s, double t) {
    const std::size_t ub = upper_bound_time(s, t);
    return ub == 0 ? 0 : ub - 1;
}

template <typename Series>
[[nodiscard]] double duration(const Series& s) {
    if (s.size() < 2) {
        return 0.0;
    }
    return s.t(s.size() - 1) - s.t(0);
}

template <typename Series>
[[nodiscard]] double value_at(const Series& s, double t) {
    if (t <= s.t(0)) {
        return s.v(0);
    }
    const std::size_t last = s.size() - 1;
    if (t >= s.t(last)) {
        return s.v(last);
    }
    const std::size_t hi = upper_bound_time(s, t);
    const double hi_t = s.t(hi);
    const double hi_v = s.v(hi);
    const double lo_t = s.t(hi - 1);
    const double lo_v = s.v(hi - 1);
    if (hi_t == lo_t) {
        return hi_v;
    }
    const double alpha = (t - lo_t) / (hi_t - lo_t);
    return lo_v + alpha * (hi_v - lo_v);
}

template <typename Series>
[[nodiscard]] double min_over(const Series& s, double t0, double t1) {
    double best = value_at(s, t0);
    best = std::min(best, value_at(s, t1));
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s.t(i) >= t0 && s.t(i) <= t1) {
            best = std::min(best, s.v(i));
        }
    }
    return best;
}

template <typename Series>
[[nodiscard]] double max_over(const Series& s, double t0, double t1) {
    double best = value_at(s, t0);
    best = std::max(best, value_at(s, t1));
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s.t(i) >= t0 && s.t(i) <= t1) {
            best = std::max(best, s.v(i));
        }
    }
    return best;
}

template <typename Series>
[[nodiscard]] double integrate(const Series& s, double t0, double t1) {
    const double lo = std::max(t0, s.t(0));
    const double hi = std::min(t1, s.t(s.size() - 1));
    if (hi <= lo || s.size() < 2) {
        return 0.0;
    }
    double acc = 0.0;
    double prev_t = lo;
    double prev_v = value_at(s, lo);
    const std::size_t first = index_at_or_before(s, lo) + 1;
    for (std::size_t i = first; i < s.size() && s.t(i) <= hi; ++i) {
        acc += 0.5 * (prev_v + s.v(i)) * (s.t(i) - prev_t);
        prev_t = s.t(i);
        prev_v = s.v(i);
    }
    if (prev_t < hi) {
        const double end_v = value_at(s, hi);
        acc += 0.5 * (prev_v + end_v) * (hi - prev_t);
    }
    return acc;
}

/// Uniform-grid resampling: emits (t, value_at(t)) from the first sample
/// time in steps of `dt` (callers guarantee non-emptiness and dt > 0;
/// `emit` owns the output representation).
template <typename Series, typename Emit>
void resample(const Series& s, double dt, Emit&& emit) {
    const double t0 = s.t(0);
    const double t1 = s.t(s.size() - 1);
    for (double t = t0; t <= t1 + 1e-12; t += dt) {
        emit(t, value_at(s, t));
    }
}

template <typename Series>
[[nodiscard]] double mean_over(const Series& s, double t0, double t1) {
    const double lo = std::max(t0, s.t(0));
    const double hi = std::min(t1, s.t(s.size() - 1));
    if (hi <= lo) {
        return value_at(s, lo);
    }
    return integrate(s, lo, hi) / (hi - lo);
}

}  // namespace ltsc::util::detail
