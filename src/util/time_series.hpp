// Time-stamped scalar series: the fundamental trace containers.
//
// Two representations share one read API (interpolation, windowed
// statistics, trapezoidal integration):
//
//  * `time_series` — an owning, array-of-structs (t, v) container, used
//    where a channel genuinely has its own time axis (workload profiles,
//    materialized exports).
//  * `column_view` — a non-owning, possibly strided view over separate
//    time/value storage, used by the columnar trace store (`util::frame`,
//    `sim::simulation_trace`, `sim::batch_trace`) where many channels
//    share one time column.
//
// Both forward to the same templated algorithms (util/series_algo.hpp),
// so statistics computed through a view are bitwise-identical to the
// same data held in a `time_series`.
#pragma once

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace ltsc::util {

/// One sample of a time series.
struct sample {
    double t = 0.0;  ///< Time in seconds since trace start.
    double v = 0.0;  ///< Value in the channel's unit.

    friend bool operator==(const sample& a, const sample& b) { return a.t == b.t && a.v == b.v; }
    friend bool operator!=(const sample& a, const sample& b) { return !(a == b); }
};

class column_view;

/// Monotonically ordered (time, value) trace with interpolation, windowed
/// statistics and integration.  Time stamps must be non-decreasing; values
/// must be finite.
class time_series {
public:
    time_series() = default;

    /// Appends a sample.  Throws precondition_error when `t` is older than
    /// the last sample or when either argument is non-finite.  Inline: the
    /// simulator appends to a dozen series every step.
    void push_back(double t, double v) {
        ensure(std::isfinite(t) && std::isfinite(v), "time_series::push_back: non-finite sample");
        if (!samples_.empty()) {
            ensure(t >= samples_.back().t, "time_series::push_back: non-monotonic time stamp");
        }
        samples_.push_back(sample{t, v});
    }

    /// Number of samples.
    [[nodiscard]] std::size_t size() const { return samples_.size(); }
    [[nodiscard]] bool empty() const { return samples_.empty(); }

    /// Sample access (bounds-checked).
    [[nodiscard]] const sample& at(std::size_t i) const;
    [[nodiscard]] const sample& front() const;
    [[nodiscard]] const sample& back() const;

    [[nodiscard]] const std::vector<sample>& samples() const { return samples_; }

    /// Non-owning view of this series (valid until the next mutation).
    [[nodiscard]] column_view view() const;

    /// Trace duration in seconds (0 when fewer than 2 samples).
    [[nodiscard]] double duration() const;

    /// Linearly interpolated value at time `t`; clamps to the first/last
    /// sample outside the recorded range.  Throws on an empty series.
    [[nodiscard]] double value_at(double t) const;

    /// Minimum value over [t0, t1] (samples only, inclusive).  Defaults to
    /// the whole trace.  Throws on an empty series or empty window.
    [[nodiscard]] double min(double t0, double t1) const;
    [[nodiscard]] double min() const;

    /// Maximum value over [t0, t1]; see `min`.
    [[nodiscard]] double max(double t0, double t1) const;
    [[nodiscard]] double max() const;

    /// Time-weighted mean over [t0, t1] using trapezoidal weighting; for a
    /// window shorter than one inter-sample gap this degenerates to linear
    /// interpolation.  Throws on an empty series.
    [[nodiscard]] double mean(double t0, double t1) const;
    [[nodiscard]] double mean() const;

    /// Trapezoidal integral of the value over [t0, t1], in value-seconds
    /// (e.g. Watts in -> Joules out).  The window is clamped to the trace.
    [[nodiscard]] double integrate(double t0, double t1) const;
    [[nodiscard]] double integrate() const;

    /// Returns a copy resampled on a uniform grid with step `dt` starting at
    /// the first sample time, using linear interpolation.
    [[nodiscard]] time_series resample(double dt) const;

    /// Index of the last sample with time <= t, or 0 when t precedes the
    /// trace.  Throws on an empty series.
    [[nodiscard]] std::size_t index_at_or_before(double t) const;

private:
    std::vector<sample> samples_;
};

/// Read-only view of one channel of a columnar store: a shared time
/// column plus this channel's values, addressed with a common byte
/// stride so it can walk contiguous columns (stride 8), array-of-structs
/// samples (stride 16), or lane-major fleet arenas (stride lanes*rows).
/// Exposes the `time_series` read API; views are invalidated by any
/// mutation of the underlying store.
class column_view {
public:
    column_view() = default;

    /// View over two contiguous double arrays sharing index i.
    column_view(const double* t, const double* v, std::size_t n)
        : column_view(t, v, n, sizeof(double)) {}

    /// View with an explicit byte stride between consecutive elements
    /// (the same stride applies to the time and value pointers).
    column_view(const double* t, const double* v, std::size_t n, std::size_t stride_bytes)
        : t_(reinterpret_cast<const char*>(t)),
          v_(reinterpret_cast<const char*>(v)),
          n_(n),
          stride_(stride_bytes) {}

    [[nodiscard]] std::size_t size() const { return n_; }
    [[nodiscard]] bool empty() const { return n_ == 0; }

    /// Element access used by the shared series algorithms.
    [[nodiscard]] double t(std::size_t i) const {
        return *reinterpret_cast<const double*>(t_ + i * stride_);
    }
    [[nodiscard]] double v(std::size_t i) const {
        return *reinterpret_cast<const double*>(v_ + i * stride_);
    }

    /// Sample access (bounds-checked, by value).
    [[nodiscard]] sample at(std::size_t i) const;
    [[nodiscard]] sample front() const;
    [[nodiscard]] sample back() const;

    /// Materialized oldest-to-newest copy of the viewed samples.
    [[nodiscard]] std::vector<sample> samples() const;

    /// Owning copy of the viewed data (for storing past the view's
    /// lifetime, e.g. snapshotting a fleet lane before the next run).
    [[nodiscard]] time_series to_series() const;

    // Read API, mirroring time_series (same algorithms, same bits).
    [[nodiscard]] double duration() const;
    [[nodiscard]] double value_at(double t) const;
    [[nodiscard]] double min(double t0, double t1) const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max(double t0, double t1) const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double mean(double t0, double t1) const;
    [[nodiscard]] double mean() const;
    [[nodiscard]] double integrate(double t0, double t1) const;
    [[nodiscard]] double integrate() const;
    [[nodiscard]] time_series resample(double dt) const;
    [[nodiscard]] std::size_t index_at_or_before(double t) const;

private:
    const char* t_ = nullptr;
    const char* v_ = nullptr;
    std::size_t n_ = 0;
    std::size_t stride_ = sizeof(double);
};

/// A named time series with a unit label, as exported by the telemetry
/// harness and the benchmark CSV dumps.
struct named_series {
    std::string name;   ///< Channel name, e.g. "cpu0_temp".
    std::string unit;   ///< Unit label, e.g. "degC".
    time_series data;   ///< The recorded samples.
};

}  // namespace ltsc::util
