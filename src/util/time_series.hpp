// Time-stamped scalar series: the fundamental trace container.
//
// Every sensor channel, power trace and utilization profile recording in the
// library is a `time_series`: a monotonically time-ordered sequence of
// (seconds, value) samples with interpolation, windowed statistics and
// trapezoidal integration (power -> energy).
#pragma once

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace ltsc::util {

/// One sample of a time series.
struct sample {
    double t = 0.0;  ///< Time in seconds since trace start.
    double v = 0.0;  ///< Value in the channel's unit.

    friend bool operator==(const sample& a, const sample& b) { return a.t == b.t && a.v == b.v; }
    friend bool operator!=(const sample& a, const sample& b) { return !(a == b); }
};

/// Monotonically ordered (time, value) trace with interpolation, windowed
/// statistics and integration.  Time stamps must be non-decreasing; values
/// must be finite.
class time_series {
public:
    time_series() = default;

    /// Appends a sample.  Throws precondition_error when `t` is older than
    /// the last sample or when either argument is non-finite.  Inline: the
    /// simulator appends to a dozen series every step.
    void push_back(double t, double v) {
        ensure(std::isfinite(t) && std::isfinite(v), "time_series::push_back: non-finite sample");
        if (!samples_.empty()) {
            ensure(t >= samples_.back().t, "time_series::push_back: non-monotonic time stamp");
        }
        samples_.push_back(sample{t, v});
    }

    /// Number of samples.
    [[nodiscard]] std::size_t size() const { return samples_.size(); }
    [[nodiscard]] bool empty() const { return samples_.empty(); }

    /// Sample access (bounds-checked).
    [[nodiscard]] const sample& at(std::size_t i) const;
    [[nodiscard]] const sample& front() const;
    [[nodiscard]] const sample& back() const;

    [[nodiscard]] const std::vector<sample>& samples() const { return samples_; }

    /// Trace duration in seconds (0 when fewer than 2 samples).
    [[nodiscard]] double duration() const;

    /// Linearly interpolated value at time `t`; clamps to the first/last
    /// sample outside the recorded range.  Throws on an empty series.
    [[nodiscard]] double value_at(double t) const;

    /// Minimum value over [t0, t1] (samples only, inclusive).  Defaults to
    /// the whole trace.  Throws on an empty series or empty window.
    [[nodiscard]] double min(double t0, double t1) const;
    [[nodiscard]] double min() const;

    /// Maximum value over [t0, t1]; see `min`.
    [[nodiscard]] double max(double t0, double t1) const;
    [[nodiscard]] double max() const;

    /// Time-weighted mean over [t0, t1] using trapezoidal weighting; for a
    /// window shorter than one inter-sample gap this degenerates to linear
    /// interpolation.  Throws on an empty series.
    [[nodiscard]] double mean(double t0, double t1) const;
    [[nodiscard]] double mean() const;

    /// Trapezoidal integral of the value over [t0, t1], in value-seconds
    /// (e.g. Watts in -> Joules out).  The window is clamped to the trace.
    [[nodiscard]] double integrate(double t0, double t1) const;
    [[nodiscard]] double integrate() const;

    /// Returns a copy resampled on a uniform grid with step `dt` starting at
    /// the first sample time, using linear interpolation.
    [[nodiscard]] time_series resample(double dt) const;

    /// Index of the last sample with time <= t, or 0 when t precedes the
    /// trace.  Throws on an empty series.
    [[nodiscard]] std::size_t index_at_or_before(double t) const;

private:
    std::vector<sample> samples_;
};

/// A named time series with a unit label, as exported by the telemetry
/// harness and the benchmark CSV dumps.
struct named_series {
    std::string name;   ///< Channel name, e.g. "cpu0_temp".
    std::string unit;   ///< Unit label, e.g. "degC".
    time_series data;   ///< The recorded samples.
};

}  // namespace ltsc::util
