// Small dense matrix algebra for the thermal solvers and model fitting.
//
// The library's linear-algebra needs are modest (RC networks with tens of
// nodes, Jacobians with a handful of parameters), so a row-major dense
// matrix with LU decomposition is the right tool — no external dependency.
#pragma once

#include <cstddef>
#include <vector>

namespace ltsc::util {

/// Row-major dense matrix of doubles.
class matrix {
public:
    matrix() = default;

    /// Creates an `rows` x `cols` matrix filled with `fill`.
    matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /// Identity matrix of size n.
    static matrix identity(std::size_t n);

    [[nodiscard]] std::size_t rows() const { return rows_; }
    [[nodiscard]] std::size_t cols() const { return cols_; }

    /// Element access (bounds-checked in debug via vector::at semantics of
    /// ensure()).
    double& operator()(std::size_t r, std::size_t c);
    double operator()(std::size_t r, std::size_t c) const;

    /// Matrix sum; dimensions must match.
    [[nodiscard]] matrix operator+(const matrix& rhs) const;
    /// Matrix difference; dimensions must match.
    [[nodiscard]] matrix operator-(const matrix& rhs) const;
    /// Matrix product; inner dimensions must match.
    [[nodiscard]] matrix operator*(const matrix& rhs) const;
    /// Scales every element.
    [[nodiscard]] matrix operator*(double s) const;

    /// Matrix-vector product; `v.size()` must equal `cols()`.
    [[nodiscard]] std::vector<double> operator*(const std::vector<double>& v) const;

    /// Transposed copy.
    [[nodiscard]] matrix transposed() const;

    /// Maximum absolute element (infinity norm of the flattened matrix).
    [[nodiscard]] double max_abs() const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// LU decomposition with partial pivoting of a square matrix, reusable for
/// multiple right-hand sides (the implicit thermal solver factors once per
/// fan-speed change and back-substitutes every step).
class lu_decomposition {
public:
    /// Factors `a`; throws numeric_error when `a` is singular to working
    /// precision or not square.
    explicit lu_decomposition(const matrix& a);

    /// Solves A x = b for one right-hand side.
    [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const;

    /// Allocation-free variant: solves A x = b into `x` (resized to fit).
    /// `b` and `x` must be distinct vectors.
    void solve_into(const std::vector<double>& b, std::vector<double>& x) const;

    /// Determinant of the factored matrix.
    [[nodiscard]] double determinant() const;

private:
    matrix lu_;
    std::vector<std::size_t> perm_;
    int sign_ = 1;
};

/// Convenience one-shot solve of A x = b.
[[nodiscard]] std::vector<double> solve(const matrix& a, const std::vector<double>& b);

}  // namespace ltsc::util
