#include "util/time_series.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ltsc::util {

const sample& time_series::at(std::size_t i) const {
    ensure(i < samples_.size(), "time_series::at: index out of range");
    return samples_[i];
}

const sample& time_series::front() const {
    ensure(!samples_.empty(), "time_series::front: empty series");
    return samples_.front();
}

const sample& time_series::back() const {
    ensure(!samples_.empty(), "time_series::back: empty series");
    return samples_.back();
}

double time_series::duration() const {
    if (samples_.size() < 2) {
        return 0.0;
    }
    return samples_.back().t - samples_.front().t;
}

double time_series::value_at(double t) const {
    ensure(!samples_.empty(), "time_series::value_at: empty series");
    if (t <= samples_.front().t) {
        return samples_.front().v;
    }
    if (t >= samples_.back().t) {
        return samples_.back().v;
    }
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), t,
                                     [](double lhs, const sample& s) { return lhs < s.t; });
    const sample& hi = *it;
    const sample& lo = *std::prev(it);
    if (hi.t == lo.t) {
        return hi.v;
    }
    const double alpha = (t - lo.t) / (hi.t - lo.t);
    return lo.v + alpha * (hi.v - lo.v);
}

std::size_t time_series::index_at_or_before(double t) const {
    ensure(!samples_.empty(), "time_series::index_at_or_before: empty series");
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), t,
                                     [](double lhs, const sample& s) { return lhs < s.t; });
    if (it == samples_.begin()) {
        return 0;
    }
    return static_cast<std::size_t>(std::distance(samples_.begin(), std::prev(it)));
}

double time_series::min(double t0, double t1) const {
    ensure(!samples_.empty(), "time_series::min: empty series");
    ensure(t0 <= t1, "time_series::min: inverted window");
    double best = value_at(t0);
    best = std::min(best, value_at(t1));
    for (const sample& s : samples_) {
        if (s.t >= t0 && s.t <= t1) {
            best = std::min(best, s.v);
        }
    }
    return best;
}

double time_series::min() const { return min(front().t, back().t); }

double time_series::max(double t0, double t1) const {
    ensure(!samples_.empty(), "time_series::max: empty series");
    ensure(t0 <= t1, "time_series::max: inverted window");
    double best = value_at(t0);
    best = std::max(best, value_at(t1));
    for (const sample& s : samples_) {
        if (s.t >= t0 && s.t <= t1) {
            best = std::max(best, s.v);
        }
    }
    return best;
}

double time_series::max() const { return max(front().t, back().t); }

double time_series::integrate(double t0, double t1) const {
    ensure(!samples_.empty(), "time_series::integrate: empty series");
    ensure(t0 <= t1, "time_series::integrate: inverted window");
    const double lo = std::max(t0, samples_.front().t);
    const double hi = std::min(t1, samples_.back().t);
    if (hi <= lo || samples_.size() < 2) {
        return 0.0;
    }
    double acc = 0.0;
    double prev_t = lo;
    double prev_v = value_at(lo);
    const std::size_t first = index_at_or_before(lo) + 1;
    for (std::size_t i = first; i < samples_.size() && samples_[i].t <= hi; ++i) {
        acc += 0.5 * (prev_v + samples_[i].v) * (samples_[i].t - prev_t);
        prev_t = samples_[i].t;
        prev_v = samples_[i].v;
    }
    if (prev_t < hi) {
        const double end_v = value_at(hi);
        acc += 0.5 * (prev_v + end_v) * (hi - prev_t);
    }
    return acc;
}

double time_series::integrate() const {
    if (samples_.size() < 2) {
        return 0.0;
    }
    return integrate(front().t, back().t);
}

double time_series::mean(double t0, double t1) const {
    ensure(!samples_.empty(), "time_series::mean: empty series");
    ensure(t0 <= t1, "time_series::mean: inverted window");
    const double lo = std::max(t0, samples_.front().t);
    const double hi = std::min(t1, samples_.back().t);
    if (hi <= lo) {
        return value_at(lo);
    }
    return integrate(lo, hi) / (hi - lo);
}

double time_series::mean() const {
    if (samples_.size() < 2) {
        return samples_.empty() ? 0.0 : samples_.front().v;
    }
    return mean(front().t, back().t);
}

time_series time_series::resample(double dt) const {
    ensure(dt > 0.0, "time_series::resample: non-positive step");
    time_series out;
    if (samples_.empty()) {
        return out;
    }
    const double t0 = samples_.front().t;
    const double t1 = samples_.back().t;
    for (double t = t0; t <= t1 + 1e-12; t += dt) {
        out.push_back(t, value_at(t));
    }
    return out;
}

}  // namespace ltsc::util
