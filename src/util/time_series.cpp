#include "util/time_series.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/series_algo.hpp"

namespace ltsc::util {

namespace {

/// Adapter giving the shared algorithms index access into the
/// array-of-structs sample storage.
struct aos_adapter {
    const std::vector<sample>& s;

    [[nodiscard]] std::size_t size() const { return s.size(); }
    [[nodiscard]] double t(std::size_t i) const { return s[i].t; }
    [[nodiscard]] double v(std::size_t i) const { return s[i].v; }
};

}  // namespace

const sample& time_series::at(std::size_t i) const {
    ensure(i < samples_.size(), "time_series::at: index out of range");
    return samples_[i];
}

const sample& time_series::front() const {
    ensure(!samples_.empty(), "time_series::front: empty series");
    return samples_.front();
}

const sample& time_series::back() const {
    ensure(!samples_.empty(), "time_series::back: empty series");
    return samples_.back();
}

column_view time_series::view() const {
    if (samples_.empty()) {
        return {};
    }
    return column_view(&samples_.front().t, &samples_.front().v, samples_.size(), sizeof(sample));
}

double time_series::duration() const { return detail::duration(aos_adapter{samples_}); }

double time_series::value_at(double t) const {
    ensure(!samples_.empty(), "time_series::value_at: empty series");
    return detail::value_at(aos_adapter{samples_}, t);
}

std::size_t time_series::index_at_or_before(double t) const {
    ensure(!samples_.empty(), "time_series::index_at_or_before: empty series");
    return detail::index_at_or_before(aos_adapter{samples_}, t);
}

double time_series::min(double t0, double t1) const {
    ensure(!samples_.empty(), "time_series::min: empty series");
    ensure(t0 <= t1, "time_series::min: inverted window");
    return detail::min_over(aos_adapter{samples_}, t0, t1);
}

double time_series::min() const { return min(front().t, back().t); }

double time_series::max(double t0, double t1) const {
    ensure(!samples_.empty(), "time_series::max: empty series");
    ensure(t0 <= t1, "time_series::max: inverted window");
    return detail::max_over(aos_adapter{samples_}, t0, t1);
}

double time_series::max() const { return max(front().t, back().t); }

double time_series::integrate(double t0, double t1) const {
    ensure(!samples_.empty(), "time_series::integrate: empty series");
    ensure(t0 <= t1, "time_series::integrate: inverted window");
    return detail::integrate(aos_adapter{samples_}, t0, t1);
}

double time_series::integrate() const {
    if (samples_.size() < 2) {
        return 0.0;
    }
    return integrate(front().t, back().t);
}

double time_series::mean(double t0, double t1) const {
    ensure(!samples_.empty(), "time_series::mean: empty series");
    ensure(t0 <= t1, "time_series::mean: inverted window");
    return detail::mean_over(aos_adapter{samples_}, t0, t1);
}

double time_series::mean() const {
    if (samples_.size() < 2) {
        return samples_.empty() ? 0.0 : samples_.front().v;
    }
    return mean(front().t, back().t);
}

time_series time_series::resample(double dt) const {
    ensure(dt > 0.0, "time_series::resample: non-positive step");
    time_series out;
    if (samples_.empty()) {
        return out;
    }
    detail::resample(aos_adapter{samples_}, dt, [&out](double t, double v) { out.push_back(t, v); });
    return out;
}

sample column_view::at(std::size_t i) const {
    ensure(i < n_, "column_view::at: index out of range");
    return sample{t(i), v(i)};
}

sample column_view::front() const {
    ensure(n_ > 0, "column_view::front: empty series");
    return sample{t(0), v(0)};
}

sample column_view::back() const {
    ensure(n_ > 0, "column_view::back: empty series");
    return sample{t(n_ - 1), v(n_ - 1)};
}

std::vector<sample> column_view::samples() const {
    std::vector<sample> out;
    out.reserve(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        out.push_back(sample{t(i), v(i)});
    }
    return out;
}

time_series column_view::to_series() const {
    time_series out;
    for (std::size_t i = 0; i < n_; ++i) {
        out.push_back(t(i), v(i));
    }
    return out;
}

double column_view::duration() const { return detail::duration(*this); }

double column_view::value_at(double at_t) const {
    ensure(n_ > 0, "column_view::value_at: empty series");
    return detail::value_at(*this, at_t);
}

std::size_t column_view::index_at_or_before(double at_t) const {
    ensure(n_ > 0, "column_view::index_at_or_before: empty series");
    return detail::index_at_or_before(*this, at_t);
}

double column_view::min(double t0, double t1) const {
    ensure(n_ > 0, "column_view::min: empty series");
    ensure(t0 <= t1, "column_view::min: inverted window");
    return detail::min_over(*this, t0, t1);
}

double column_view::min() const {
    ensure(n_ > 0, "column_view::min: empty series");
    return min(t(0), t(n_ - 1));
}

double column_view::max(double t0, double t1) const {
    ensure(n_ > 0, "column_view::max: empty series");
    ensure(t0 <= t1, "column_view::max: inverted window");
    return detail::max_over(*this, t0, t1);
}

double column_view::max() const {
    ensure(n_ > 0, "column_view::max: empty series");
    return max(t(0), t(n_ - 1));
}

double column_view::integrate(double t0, double t1) const {
    ensure(n_ > 0, "column_view::integrate: empty series");
    ensure(t0 <= t1, "column_view::integrate: inverted window");
    return detail::integrate(*this, t0, t1);
}

double column_view::integrate() const {
    if (n_ < 2) {
        return 0.0;
    }
    return integrate(t(0), t(n_ - 1));
}

double column_view::mean(double t0, double t1) const {
    ensure(n_ > 0, "column_view::mean: empty series");
    ensure(t0 <= t1, "column_view::mean: inverted window");
    return detail::mean_over(*this, t0, t1);
}

double column_view::mean() const {
    if (n_ < 2) {
        return n_ == 0 ? 0.0 : v(0);
    }
    return mean(t(0), t(n_ - 1));
}

time_series column_view::resample(double dt) const {
    ensure(dt > 0.0, "column_view::resample: non-positive step");
    time_series out;
    if (n_ == 0) {
        return out;
    }
    detail::resample(*this, dt, [&out](double at, double v) { out.push_back(at, v); });
    return out;
}

}  // namespace ltsc::util
