// Fixed-bin histogram for streaming quantiles.
//
// The online telemetry engine needs thermal-margin percentiles over an
// unbounded stream of rows without keeping the rows: a histogram with a
// fixed, pre-declared bin grid gives O(1) inserts, O(bins) quantile
// queries, and exact mergeability across lanes/shards (bin-wise count
// addition), at the cost of quantile resolution no finer than one bin
// width.  Out-of-range values clamp into the edge bins (and are counted
// separately) so the total never silently diverges from the row count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ltsc::util {

class fixed_histogram {
public:
    /// Empty, unusable histogram (for containers); assign a real one
    /// before adding.
    fixed_histogram() = default;

    /// Histogram over [lo, hi) split into `bins` equal-width bins.
    fixed_histogram(double lo, double hi, std::size_t bins);

    /// Adds one (finite) observation; values below `lo` land in bin 0,
    /// values at or above `hi` in the last bin, both tallied in the
    /// clamp counters.
    void add(double v);

    /// Bin-wise accumulation of another histogram with the identical
    /// grid (throws on mismatch).
    void merge(const fixed_histogram& other);

    void clear();

    [[nodiscard]] std::uint64_t total() const { return total_; }
    [[nodiscard]] std::uint64_t clamped_low() const { return clamped_low_; }
    [[nodiscard]] std::uint64_t clamped_high() const { return clamped_high_; }
    [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
    [[nodiscard]] double lo() const { return lo_; }
    [[nodiscard]] double hi() const { return hi_; }
    [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }

    /// Quantile `q` in [0, 1]: the value below which a fraction `q` of
    /// the observations fall, linearly interpolated inside the owning
    /// bin.  Monotone in q.  Throws on an empty histogram.
    [[nodiscard]] double quantile(double q) const;

private:
    double lo_ = 0.0;
    double hi_ = 0.0;
    double inv_width_ = 0.0;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t clamped_low_ = 0;
    std::uint64_t clamped_high_ = 0;
};

}  // namespace ltsc::util
