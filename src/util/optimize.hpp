// Scalar optimization and root finding.
//
// The controller characterization pipeline minimizes the convex
// fan-power-plus-leakage curve over fan speed (Section IV of the paper);
// golden-section search handles that robustly without derivatives.  Brent's
// root finder supports the steady-state temperature fixed point.
#pragma once

#include <functional>
#include <vector>

namespace ltsc::util {

/// Result of a scalar minimization.
struct minimize_result {
    double x = 0.0;        ///< Argument of the minimum.
    double value = 0.0;    ///< Function value at the minimum.
    int evaluations = 0;   ///< Number of function evaluations used.
};

/// Golden-section search for the minimum of a unimodal function on [a, b].
/// Tolerance is on the argument.  Throws precondition_error when a >= b or
/// tol <= 0.
[[nodiscard]] minimize_result golden_section_minimize(const std::function<double(double)>& f,
                                                      double a, double b, double tol = 1e-6);

/// Minimizes over a discrete candidate set by exhaustive evaluation;
/// returns the best candidate (first one in case of ties).  Throws on an
/// empty candidate list.
[[nodiscard]] minimize_result minimize_over(const std::function<double(double)>& f,
                                            const std::vector<double>& candidates);

/// Result of a root search.
struct root_result {
    double x = 0.0;        ///< Approximate root.
    double residual = 0.0; ///< f(x) at the returned point.
    int iterations = 0;    ///< Iterations used.
    bool converged = false;
};

/// Brent's method for f(x) = 0 on a bracketing interval [a, b] with
/// f(a) * f(b) <= 0.  Throws precondition_error when the bracket is invalid.
[[nodiscard]] root_result brent_root(const std::function<double(double)>& f, double a, double b,
                                     double tol = 1e-9, int max_iter = 200);

/// Damped fixed-point iteration x <- (1-damping)*x + damping*g(x), used for
/// the leakage/temperature self-consistency loop.  Converges when
/// |g(x) - x| < tol.
[[nodiscard]] root_result fixed_point(const std::function<double(double)>& g, double x0,
                                      double damping = 1.0, double tol = 1e-9, int max_iter = 500);

}  // namespace ltsc::util
