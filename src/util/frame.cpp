#include "util/frame.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ltsc::util {

std::size_t frame::add_channel(std::string name) {
    ensure(!name.empty(), "frame::add_channel: empty channel name");
    ensure(time_.empty(), "frame::add_channel: cannot add channels to a non-empty frame");
    for (const auto& existing : names_) {
        ensure(existing != name, "frame::add_channel: duplicate channel name " + name);
    }
    names_.push_back(std::move(name));
    columns_.emplace_back();
    return columns_.size() - 1;
}

void frame::reserve(std::size_t rows) {
    time_.reserve(rows);
    for (auto& col : columns_) {
        col.reserve(rows);
    }
}

void frame::append(double t, const double* values, std::size_t count) {
    ensure(count == columns_.size(), "frame::append: value count != channel count");
    ensure(std::isfinite(t), "frame::append: non-finite time stamp");
    if (!time_.empty()) {
        ensure(t >= time_.back(), "frame::append: non-monotonic time stamp");
    }
    for (std::size_t c = 0; c < count; ++c) {
        ensure(std::isfinite(values[c]), "frame::append: non-finite value");
    }
    time_.push_back(t);
    for (std::size_t c = 0; c < count; ++c) {
        columns_[c].push_back(values[c]);
    }
}

void frame::clear() {
    time_.clear();
    for (auto& col : columns_) {
        col.clear();
    }
}

const std::vector<double>& frame::values(std::size_t channel) const {
    ensure(channel < columns_.size(), "frame::values: channel out of range");
    return columns_[channel];
}

column_view frame::column(std::size_t channel) const {
    ensure(channel < columns_.size(), "frame::column: channel out of range");
    if (time_.empty()) {
        return {};
    }
    return column_view(time_.data(), columns_[channel].data(), time_.size());
}

column_view frame::column(const std::string& name) const { return column(channel_index(name)); }

std::size_t frame::channel_index(const std::string& name) const {
    for (std::size_t c = 0; c < names_.size(); ++c) {
        if (names_[c] == name) {
            return c;
        }
    }
    throw precondition_error("frame::channel_index: unknown channel " + name);
}

bool frame::has_channel(const std::string& name) const {
    for (const auto& existing : names_) {
        if (existing == name) {
            return true;
        }
    }
    return false;
}

const std::string& frame::channel_name(std::size_t channel) const {
    ensure(channel < names_.size(), "frame::channel_name: channel out of range");
    return names_[channel];
}

}  // namespace ltsc::util
