// Fixed-size worker pool for independent, index-addressed jobs.
//
// The pool exists for scenario-level parallelism: dozens of independent
// simulations that each take milliseconds to minutes.  Work is handed out
// as the half-open index range [0, job_count) through an atomic counter,
// so results keyed by index are deterministic regardless of thread count
// or scheduling; the caller's thread participates in the work, and a pool
// constructed with one thread degrades to a plain serial loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ltsc::util {

class thread_pool {
public:
    /// Creates a pool that executes jobs on `thread_count` threads in
    /// total (including the calling thread).  0 means "one per hardware
    /// thread".
    explicit thread_pool(std::size_t thread_count = 0);

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    ~thread_pool();

    /// Total execution width, including the calling thread.
    [[nodiscard]] std::size_t thread_count() const { return workers_.size() + 1; }

    /// Runs `job(i)` for every i in [0, job_count), distributing indices
    /// across the pool, and returns when all jobs finished.  The first
    /// exception thrown by any job is rethrown here (remaining indices
    /// are abandoned).  Not reentrant: one run at a time per pool.
    void run_indexed(std::size_t job_count, const std::function<void(std::size_t)>& job);

private:
    void worker_loop();
    void work_through();

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable batch_done_;
    const std::function<void(std::size_t)>* job_ = nullptr;
    std::size_t job_count_ = 0;
    std::atomic<std::size_t> next_index_{0};
    std::size_t busy_workers_ = 0;
    std::uint64_t generation_ = 0;
    bool stopping_ = false;
    std::exception_ptr first_error_;
};

}  // namespace ltsc::util
