#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ltsc::util {

double mean(const std::vector<double>& xs) {
    ensure(!xs.empty(), "mean: empty input");
    double acc = 0.0;
    for (double x : xs) {
        acc += x;
    }
    return acc / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
    ensure(xs.size() >= 2, "variance: need at least 2 samples");
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) {
        acc += (x - m) * (x - m);
    }
    return acc / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double rmse(const std::vector<double>& actual, const std::vector<double>& predicted) {
    ensure(actual.size() == predicted.size() && !actual.empty(), "rmse: size mismatch or empty");
    double acc = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        const double e = actual[i] - predicted[i];
        acc += e * e;
    }
    return std::sqrt(acc / static_cast<double>(actual.size()));
}

double mae(const std::vector<double>& actual, const std::vector<double>& predicted) {
    ensure(actual.size() == predicted.size() && !actual.empty(), "mae: size mismatch or empty");
    double acc = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        acc += std::fabs(actual[i] - predicted[i]);
    }
    return acc / static_cast<double>(actual.size());
}

double r_squared(const std::vector<double>& actual, const std::vector<double>& predicted) {
    ensure(actual.size() == predicted.size() && !actual.empty(), "r_squared: size mismatch or empty");
    const double m = mean(actual);
    double ss_tot = 0.0;
    double ss_res = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        ss_tot += (actual[i] - m) * (actual[i] - m);
        ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    }
    ensure(ss_tot > 0.0, "r_squared: actual values are constant");
    return 1.0 - ss_res / ss_tot;
}

double percentile(std::vector<double> xs, double p) {
    ensure(!xs.empty(), "percentile: empty input");
    ensure(p >= 0.0 && p <= 100.0, "percentile: p out of range");
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1) {
        return xs.front();
    }
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

}  // namespace ltsc::util
