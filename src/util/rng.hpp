// Deterministic pseudo-random number generation.
//
// Every stochastic element of the reproduction (Test-4 Poisson arrivals,
// sensor noise, random-walk profiles) draws from a seeded PCG32 so that
// benchmark tables are bit-reproducible across runs and platforms —
// std::mt19937 distributions are not portable across standard libraries,
// so the distributions are implemented here too.
#pragma once

#include <cstdint>

namespace ltsc::util {

/// PCG32 (O'Neill, pcg-random.org): small, fast, statistically excellent,
/// and fully specified so streams are identical on every platform.
class pcg32 {
public:
    /// Seeds the generator; `seq` selects an independent stream.
    explicit pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL, std::uint64_t seq = 0xda3e39cb94b95bdbULL);

    /// Next uniformly distributed 32-bit value.
    std::uint32_t next_u32();

    /// Uniform double in [0, 1).
    double next_double();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Standard normal deviate (Box-Muller, cached pair).
    double normal();

    /// Normal deviate with the given mean and standard deviation.
    double normal(double mean, double stddev);

    /// Exponentially distributed deviate with the given rate (1/mean).
    double exponential(double rate);

    /// Poisson-distributed count with the given mean (Knuth's method below
    /// mean 30, normal approximation above).
    std::uint32_t poisson(double mean);

private:
    std::uint64_t state_;
    std::uint64_t inc_;
    bool has_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

}  // namespace ltsc::util
