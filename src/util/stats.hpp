// Descriptive statistics over plain vectors.
//
// Used by the fitting module for goodness-of-fit metrics and by the
// benchmark harness for summarizing traces.
#pragma once

#include <vector>

namespace ltsc::util {

/// Arithmetic mean; throws on an empty input.
[[nodiscard]] double mean(const std::vector<double>& xs);

/// Unbiased sample variance (n-1 denominator); throws when n < 2.
[[nodiscard]] double variance(const std::vector<double>& xs);

/// Sample standard deviation; throws when n < 2.
[[nodiscard]] double stddev(const std::vector<double>& xs);

/// Root-mean-square error between two equally sized vectors.
[[nodiscard]] double rmse(const std::vector<double>& actual, const std::vector<double>& predicted);

/// Mean absolute error between two equally sized vectors.
[[nodiscard]] double mae(const std::vector<double>& actual, const std::vector<double>& predicted);

/// Coefficient of determination R^2 of `predicted` against `actual`.
/// Returns 1.0 for a perfect fit; can be negative for fits worse than the
/// mean.  Throws when sizes differ, inputs are empty, or actual is constant.
[[nodiscard]] double r_squared(const std::vector<double>& actual, const std::vector<double>& predicted);

/// Linearly interpolated p-th percentile (p in [0, 100]); throws on empty
/// input or out-of-range p.  The input is copied and sorted internally.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

}  // namespace ltsc::util
