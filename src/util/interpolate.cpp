#include "util/interpolate.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ltsc::util {

namespace {

void check_knots(const std::vector<double>& x, const std::vector<double>& y, std::size_t min_knots,
                 const char* who) {
    ensure(x.size() == y.size(), std::string(who) + ": size mismatch");
    ensure(x.size() >= min_knots, std::string(who) + ": too few knots");
    for (std::size_t i = 1; i < x.size(); ++i) {
        ensure(x[i] > x[i - 1], std::string(who) + ": knots not strictly increasing");
    }
}

/// Index of the interval [x[i], x[i+1]] containing q (clamped).
std::size_t interval_of(const std::vector<double>& x, double q) {
    const auto it = std::upper_bound(x.begin(), x.end(), q);
    if (it == x.begin()) {
        return 0;
    }
    const auto idx = static_cast<std::size_t>(std::distance(x.begin(), it)) - 1;
    return std::min(idx, x.size() - 2);
}

}  // namespace

linear_interpolator::linear_interpolator(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
    check_knots(x_, y_, 1, "linear_interpolator");
}

double linear_interpolator::operator()(double q) const {
    ensure(!x_.empty(), "linear_interpolator: empty");
    if (x_.size() == 1 || q <= x_.front()) {
        return y_.front();
    }
    if (q >= x_.back()) {
        return y_.back();
    }
    const std::size_t i = interval_of(x_, q);
    const double alpha = (q - x_[i]) / (x_[i + 1] - x_[i]);
    return y_[i] + alpha * (y_[i + 1] - y_[i]);
}

pchip_interpolator::pchip_interpolator(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
    check_knots(x_, y_, 2, "pchip_interpolator");
    const std::size_t n = x_.size();
    std::vector<double> h(n - 1);
    std::vector<double> delta(n - 1);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        h[i] = x_[i + 1] - x_[i];
        delta[i] = (y_[i + 1] - y_[i]) / h[i];
    }
    slope_.assign(n, 0.0);
    if (n == 2) {
        slope_[0] = slope_[1] = delta[0];
        return;
    }
    // Interior slopes: weighted harmonic mean when the secants agree in
    // sign, zero at local extrema (Fritsch-Carlson condition).
    for (std::size_t i = 1; i + 1 < n; ++i) {
        if (delta[i - 1] * delta[i] <= 0.0) {
            slope_[i] = 0.0;
        } else {
            const double w1 = 2.0 * h[i] + h[i - 1];
            const double w2 = h[i] + 2.0 * h[i - 1];
            slope_[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
        }
    }
    // One-sided three-point end slopes, clipped to preserve monotonicity.
    const auto end_slope = [](double h0, double h1, double d0, double d1) {
        double s = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
        if (s * d0 <= 0.0) {
            s = 0.0;
        } else if (d0 * d1 <= 0.0 && std::fabs(s) > 3.0 * std::fabs(d0)) {
            s = 3.0 * d0;
        }
        return s;
    };
    slope_[0] = end_slope(h[0], h[1], delta[0], delta[1]);
    slope_[n - 1] = end_slope(h[n - 2], h[n - 3], delta[n - 2], delta[n - 3]);
}

double pchip_interpolator::operator()(double q) const {
    ensure(x_.size() >= 2, "pchip_interpolator: not built");
    if (q <= x_.front()) {
        return y_.front();
    }
    if (q >= x_.back()) {
        return y_.back();
    }
    const std::size_t i = interval_of(x_, q);
    const double h = x_[i + 1] - x_[i];
    const double t = (q - x_[i]) / h;
    const double t2 = t * t;
    const double t3 = t2 * t;
    const double h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
    const double h10 = t3 - 2.0 * t2 + t;
    const double h01 = -2.0 * t3 + 3.0 * t2;
    const double h11 = t3 - t2;
    return h00 * y_[i] + h10 * h * slope_[i] + h01 * y_[i + 1] + h11 * h * slope_[i + 1];
}

}  // namespace ltsc::util
