#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ltsc::util {

namespace {

std::size_t resolve_thread_count(std::size_t requested) {
    if (requested != 0) {
        return requested;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return std::max<std::size_t>(1, hw);
}

}  // namespace

thread_pool::thread_pool(std::size_t thread_count) {
    const std::size_t total = resolve_thread_count(thread_count);
    workers_.reserve(total - 1);
    for (std::size_t i = 0; i + 1 < total; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

thread_pool::~thread_pool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& w : workers_) {
        w.join();
    }
}

void thread_pool::work_through() {
    // Claim indices until the range is exhausted.  On an exception,
    // record the first one and drain the remaining indices so the batch
    // still terminates promptly.
    while (true) {
        const std::size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
        if (i >= job_count_) {
            return;
        }
        try {
            (*job_)(i);
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (!first_error_) {
                first_error_ = std::current_exception();
            }
            next_index_.store(job_count_, std::memory_order_relaxed);
            return;
        }
    }
}

void thread_pool::worker_loop() {
    std::uint64_t seen_generation = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_ready_.wait(lock, [&] { return stopping_ || generation_ != seen_generation; });
            if (stopping_) {
                return;
            }
            seen_generation = generation_;
        }
        work_through();
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            --busy_workers_;
        }
        batch_done_.notify_one();
    }
}

void thread_pool::run_indexed(std::size_t job_count,
                              const std::function<void(std::size_t)>& job) {
    ensure(job != nullptr, "thread_pool::run_indexed: null job");
    if (job_count == 0) {
        return;
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ensure(job_ == nullptr, "thread_pool::run_indexed: pool already running a batch");
        job_ = &job;
        job_count_ = job_count;
        next_index_.store(0, std::memory_order_relaxed);
        busy_workers_ = workers_.size();
        first_error_ = nullptr;
        ++generation_;
    }
    work_ready_.notify_all();

    // The calling thread is a full member of the pool.
    work_through();

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        batch_done_.wait(lock, [&] { return busy_workers_ == 0; });
        job_ = nullptr;
        error = first_error_;
        first_error_ = nullptr;
    }
    if (error) {
        std::rethrow_exception(error);
    }
}

}  // namespace ltsc::util
