#include "util/optimize.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ltsc::util {

minimize_result golden_section_minimize(const std::function<double(double)>& f, double a, double b,
                                        double tol) {
    ensure(a < b, "golden_section_minimize: invalid interval");
    ensure(tol > 0.0, "golden_section_minimize: non-positive tolerance");
    constexpr double inv_phi = 0.6180339887498949;  // 1/phi
    double x1 = b - inv_phi * (b - a);
    double x2 = a + inv_phi * (b - a);
    double f1 = f(x1);
    double f2 = f(x2);
    int evals = 2;
    while (b - a > tol) {
        if (f1 <= f2) {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - inv_phi * (b - a);
            f1 = f(x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + inv_phi * (b - a);
            f2 = f(x2);
        }
        ++evals;
    }
    const double xm = 0.5 * (a + b);
    return minimize_result{xm, f(xm), evals + 1};
}

minimize_result minimize_over(const std::function<double(double)>& f,
                              const std::vector<double>& candidates) {
    ensure(!candidates.empty(), "minimize_over: empty candidate set");
    minimize_result best{candidates.front(), f(candidates.front()), 1};
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        const double v = f(candidates[i]);
        ++best.evaluations;
        if (v < best.value) {
            best.x = candidates[i];
            best.value = v;
        }
    }
    return best;
}

root_result brent_root(const std::function<double(double)>& f, double a, double b, double tol,
                       int max_iter) {
    double fa = f(a);
    double fb = f(b);
    ensure(fa * fb <= 0.0, "brent_root: interval does not bracket a root");
    if (std::fabs(fa) < std::fabs(fb)) {
        std::swap(a, b);
        std::swap(fa, fb);
    }
    double c = a;
    double fc = fa;
    double d = b - a;
    bool mflag = true;
    root_result out;
    for (int iter = 0; iter < max_iter; ++iter) {
        if (fb == 0.0 || std::fabs(b - a) < tol) {
            out.x = b;
            out.residual = fb;
            out.iterations = iter;
            out.converged = true;
            return out;
        }
        double s = 0.0;
        if (fa != fc && fb != fc) {
            // Inverse quadratic interpolation.
            s = a * fb * fc / ((fa - fb) * (fa - fc)) + b * fa * fc / ((fb - fa) * (fb - fc)) +
                c * fa * fb / ((fc - fa) * (fc - fb));
        } else {
            // Secant.
            s = b - fb * (b - a) / (fb - fa);
        }
        const double lo = (3.0 * a + b) / 4.0;
        const bool out_of_range = (s < std::min(lo, b) || s > std::max(lo, b));
        const bool slow_bisect = mflag ? std::fabs(s - b) >= std::fabs(b - c) / 2.0
                                       : std::fabs(s - b) >= std::fabs(c - d) / 2.0;
        if (out_of_range || slow_bisect) {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        const double fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if (fa * fs < 0.0) {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if (std::fabs(fa) < std::fabs(fb)) {
            std::swap(a, b);
            std::swap(fa, fb);
        }
    }
    out.x = b;
    out.residual = fb;
    out.iterations = max_iter;
    out.converged = false;
    return out;
}

root_result fixed_point(const std::function<double(double)>& g, double x0, double damping,
                        double tol, int max_iter) {
    ensure(damping > 0.0 && damping <= 1.0, "fixed_point: damping must be in (0, 1]");
    double x = x0;
    root_result out;
    for (int iter = 0; iter < max_iter; ++iter) {
        const double gx = g(x);
        ensure_numeric(std::isfinite(gx), "fixed_point: non-finite iterate");
        const double next = (1.0 - damping) * x + damping * gx;
        if (std::fabs(next - x) < tol) {
            out.x = next;
            out.residual = next - x;
            out.iterations = iter + 1;
            out.converged = true;
            return out;
        }
        x = next;
    }
    out.x = x;
    out.residual = g(x) - x;
    out.iterations = max_iter;
    out.converged = false;
    return out;
}

}  // namespace ltsc::util
