#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace ltsc::util {

namespace {

std::atomic<log_level> g_level{log_level::warn};
std::mutex g_mutex;

}  // namespace

void set_log_level(log_level level) { g_level.store(level, std::memory_order_relaxed); }

log_level get_log_level() { return g_level.load(std::memory_order_relaxed); }

const char* to_string(log_level level) {
    switch (level) {
        case log_level::trace: return "trace";
        case log_level::debug: return "debug";
        case log_level::info: return "info";
        case log_level::warn: return "warn";
        case log_level::error: return "error";
        case log_level::off: return "off";
    }
    return "?";
}

void log(log_level level, const std::string& message) {
    if (level < g_level.load(std::memory_order_relaxed) || message.empty()) {
        return;
    }
    const std::lock_guard<std::mutex> lock(g_mutex);
    std::cerr << "[ltsc:" << to_string(level) << "] " << message << '\n';
}

}  // namespace ltsc::util
