// 1-D interpolation over tabulated data.
//
// Fan power curves, RPM->airflow maps and the controller LUT are all
// tabulated functions; this header provides a clamped linear interpolator
// and a monotone cubic (Fritsch-Carlson PCHIP) interpolator for smooth
// physical curves that must not overshoot their data.
#pragma once

#include <cstddef>
#include <vector>

namespace ltsc::util {

/// Piecewise-linear interpolation over strictly increasing knots, clamped
/// to the end values outside the knot range.
class linear_interpolator {
public:
    linear_interpolator() = default;

    /// Builds the interpolator; `x` must be strictly increasing and the
    /// vectors equally sized with at least one knot.
    linear_interpolator(std::vector<double> x, std::vector<double> y);

    /// Interpolated value at `q` (clamped outside the knot range).
    [[nodiscard]] double operator()(double q) const;

    [[nodiscard]] std::size_t size() const { return x_.size(); }
    [[nodiscard]] const std::vector<double>& knots() const { return x_; }
    [[nodiscard]] const std::vector<double>& values() const { return y_; }

private:
    std::vector<double> x_;
    std::vector<double> y_;
};

/// Monotone cubic Hermite interpolation (Fritsch-Carlson).  Preserves the
/// monotonicity of the data — essential for physical curves such as fan
/// power vs. RPM where a plain cubic spline could oscillate.
class pchip_interpolator {
public:
    pchip_interpolator() = default;

    /// Builds the interpolator; `x` must be strictly increasing with at
    /// least two knots.
    pchip_interpolator(std::vector<double> x, std::vector<double> y);

    /// Interpolated value at `q` (clamped outside the knot range).
    [[nodiscard]] double operator()(double q) const;

    [[nodiscard]] std::size_t size() const { return x_.size(); }

private:
    std::vector<double> x_;
    std::vector<double> y_;
    std::vector<double> slope_;  ///< Hermite end-point derivatives.
};

}  // namespace ltsc::util
