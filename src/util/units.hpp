// Strong unit types for the physical quantities the library manipulates.
//
// Mixing up Watts, RPM and degrees Celsius is the classic failure mode of
// thermal-management code, so the domain quantities are wrapped in a thin
// tagged `quantity` template (zero run-time cost).  Arithmetic is only
// defined where it is physically meaningful; anything else requires an
// explicit `.value()` escape hatch, which keeps unit mistakes visible in
// review.
#pragma once

#include <cmath>
#include <ostream>

namespace ltsc::util {

/// A value tagged with a physical unit.  `Tag` is an empty struct naming
/// the unit; all operations preserve the tag.
template <class Tag>
class quantity {
public:
    constexpr quantity() = default;
    constexpr explicit quantity(double v) : value_(v) {}

    /// Raw numeric value in the unit's canonical scale.
    [[nodiscard]] constexpr double value() const { return value_; }

    constexpr quantity& operator+=(quantity rhs) {
        value_ += rhs.value_;
        return *this;
    }
    constexpr quantity& operator-=(quantity rhs) {
        value_ -= rhs.value_;
        return *this;
    }
    constexpr quantity& operator*=(double s) {
        value_ *= s;
        return *this;
    }
    constexpr quantity& operator/=(double s) {
        value_ /= s;
        return *this;
    }

    friend constexpr quantity operator+(quantity a, quantity b) { return quantity{a.value_ + b.value_}; }
    friend constexpr quantity operator-(quantity a, quantity b) { return quantity{a.value_ - b.value_}; }
    friend constexpr quantity operator-(quantity a) { return quantity{-a.value_}; }
    friend constexpr quantity operator*(quantity a, double s) { return quantity{a.value_ * s}; }
    friend constexpr quantity operator*(double s, quantity a) { return quantity{a.value_ * s}; }
    friend constexpr quantity operator/(quantity a, double s) { return quantity{a.value_ / s}; }
    /// Ratio of two like quantities is a dimensionless double.
    friend constexpr double operator/(quantity a, quantity b) { return a.value_ / b.value_; }

    friend constexpr bool operator==(quantity a, quantity b) { return a.value_ == b.value_; }
    friend constexpr bool operator!=(quantity a, quantity b) { return a.value_ != b.value_; }
    friend constexpr bool operator<(quantity a, quantity b) { return a.value_ < b.value_; }
    friend constexpr bool operator<=(quantity a, quantity b) { return a.value_ <= b.value_; }
    friend constexpr bool operator>(quantity a, quantity b) { return a.value_ > b.value_; }
    friend constexpr bool operator>=(quantity a, quantity b) { return a.value_ >= b.value_; }

    friend std::ostream& operator<<(std::ostream& os, quantity q) { return os << q.value_; }

private:
    double value_ = 0.0;
};

struct celsius_tag {};
struct watts_tag {};
struct joules_tag {};
struct rpm_tag {};
struct cfm_tag {};
struct seconds_tag {};

/// Temperature in degrees Celsius.
using celsius_t = quantity<celsius_tag>;
/// Power in Watts.
using watts_t = quantity<watts_tag>;
/// Energy in Joules.
using joules_t = quantity<joules_tag>;
/// Fan rotational speed in revolutions per minute.
using rpm_t = quantity<rpm_tag>;
/// Volumetric airflow in cubic feet per minute.
using cfm_t = quantity<cfm_tag>;
/// Simulation time / durations in seconds.
using seconds_t = quantity<seconds_tag>;

/// Power integrated over time yields energy.
constexpr joules_t operator*(watts_t p, seconds_t t) { return joules_t{p.value() * t.value()}; }
constexpr joules_t operator*(seconds_t t, watts_t p) { return p * t; }
/// Energy over time yields average power.
constexpr watts_t operator/(joules_t e, seconds_t t) { return watts_t{e.value() / t.value()}; }

/// Converts Joules to kilowatt-hours (the unit Table I reports).
constexpr double to_kwh(joules_t e) { return e.value() / 3.6e6; }
/// Converts kilowatt-hours to Joules.
constexpr joules_t from_kwh(double kwh) { return joules_t{kwh * 3.6e6}; }

/// Absolute difference between two temperatures, in Celsius degrees.
inline celsius_t abs_diff(celsius_t a, celsius_t b) { return celsius_t{std::fabs(a.value() - b.value())}; }

inline namespace literals {

constexpr celsius_t operator""_degC(long double v) { return celsius_t{static_cast<double>(v)}; }
constexpr celsius_t operator""_degC(unsigned long long v) { return celsius_t{static_cast<double>(v)}; }
constexpr watts_t operator""_W(long double v) { return watts_t{static_cast<double>(v)}; }
constexpr watts_t operator""_W(unsigned long long v) { return watts_t{static_cast<double>(v)}; }
constexpr joules_t operator""_J(long double v) { return joules_t{static_cast<double>(v)}; }
constexpr joules_t operator""_J(unsigned long long v) { return joules_t{static_cast<double>(v)}; }
constexpr rpm_t operator""_rpm(long double v) { return rpm_t{static_cast<double>(v)}; }
constexpr rpm_t operator""_rpm(unsigned long long v) { return rpm_t{static_cast<double>(v)}; }
constexpr seconds_t operator""_s(long double v) { return seconds_t{static_cast<double>(v)}; }
constexpr seconds_t operator""_s(unsigned long long v) { return seconds_t{static_cast<double>(v)}; }
constexpr seconds_t operator""_min(long double v) { return seconds_t{static_cast<double>(v) * 60.0}; }
constexpr seconds_t operator""_min(unsigned long long v) { return seconds_t{static_cast<double>(v) * 60.0}; }

}  // namespace literals

}  // namespace ltsc::util
