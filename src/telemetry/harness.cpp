#include "telemetry/harness.hpp"

#include <ostream>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace ltsc::telemetry {

harness::harness(util::seconds_t period) : period_(period) {
    util::ensure(period.value() > 0.0, "harness: non-positive polling period");
}

std::size_t harness::add_channel(std::string name, std::string unit,
                                 std::function<double()> source, std::size_t ring_capacity,
                                 bool record_history) {
    for (const auto& ch : channels_) {
        util::ensure(ch->name() != name, "harness::add_channel: duplicate channel name " + name);
    }
    util::ensure(!record_history || history_.empty(),
                 "harness::add_channel: cannot add a recorded channel after polling started");
    channels_.push_back(std::make_unique<channel>(std::move(name), std::move(unit),
                                                  std::move(source), ring_capacity, record_history));
    channel& ch = *channels_.back();
    if (record_history) {
        ch.history_frame_ = &history_;
        ch.history_column_ = history_.add_channel(ch.name());
    }
    return channels_.size() - 1;
}

bool harness::poll_due(util::seconds_t now) {
    if (suppressed_) {
        return false;
    }
    if (polled_once_ && now.value() - last_poll_ < period_.value() - 1e-9) {
        return false;
    }
    poll_now(now);
    return true;
}

void harness::poll_now(util::seconds_t now) {
    // Channels are sampled in registration order (sources may share
    // side-effecting state, e.g. one RNG stream); history values land in
    // one shared frame row.
    poll_scratch_.resize(history_.channel_count());
    for (const auto& ch : channels_) {
        const double v = ch->poll(now.value());
        if (ch->records_history()) {
            poll_scratch_[ch->history_column_] = v;
        }
    }
    if (history_.channel_count() > 0) {
        history_.append(now.value(), poll_scratch_.data(), poll_scratch_.size());
    }
    last_poll_ = now.value();
    polled_once_ = true;
}

void harness::reset() {
    for (const auto& ch : channels_) {
        ch->clear();
    }
    history_.clear();
    last_poll_ = -1.0;
    polled_once_ = false;
    suppressed_ = false;
}

void harness::restore_poll_clock(double last_poll_s, bool ever_polled) {
    last_poll_ = last_poll_s;
    polled_once_ = ever_polled;
}

const channel& harness::by_name(const std::string& name) const {
    for (const auto& ch : channels_) {
        if (ch->name() == name) {
            return *ch;
        }
    }
    throw util::precondition_error("harness::by_name: unknown channel " + name);
}

const channel& harness::by_index(std::size_t i) const {
    util::ensure(i < channels_.size(), "harness::by_index: index out of range");
    return *channels_[i];
}

double harness::latest(const std::string& name) const {
    const auto sample = by_name(name).latest();
    util::ensure(sample.has_value(), "harness::latest: channel never polled: " + name);
    return sample->v;
}

std::vector<util::named_series> harness::export_series() const {
    std::vector<util::named_series> out;
    out.reserve(channels_.size());
    for (const auto& ch : channels_) {
        out.push_back(ch->to_named_series());
    }
    return out;
}

void harness::write_csv(std::ostream& os) const { util::write_series_csv(os, export_series()); }

}  // namespace ltsc::telemetry
