// A telemetry channel: one named, unit-tagged sensor stream.
//
// Channels hold a bounded ring buffer of recent samples for runtime
// consumers (controllers, alarms).  Full histories are no longer owned
// per channel: the harness polls every channel at one shared timestamp
// and records the values as columns of a single `util::frame`, so a
// channel's history is a `column_view` into that columnar store —
// mirroring how the Continuous System Telemetry Harness
// [Gross et al., MFPT'06] archives signals.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/frame.hpp"
#include "util/time_series.hpp"

namespace ltsc::telemetry {

/// Bounded ring buffer of (time, value) samples.
class sample_ring {
public:
    /// Creates a ring holding up to `capacity` samples (>= 1).
    explicit sample_ring(std::size_t capacity);

    void push(double t, double v);

    /// Discards all samples.
    void clear();

    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] std::size_t capacity() const { return buffer_.size(); }
    [[nodiscard]] bool empty() const { return size_ == 0; }

    /// i-th most recent sample (0 = newest).  Throws when out of range.
    [[nodiscard]] util::sample recent(std::size_t i) const;

    /// Oldest-to-newest copy of the buffered samples.
    [[nodiscard]] std::vector<util::sample> snapshot() const;

private:
    std::vector<util::sample> buffer_;
    std::size_t head_ = 0;  ///< Next write position.
    std::size_t size_ = 0;
};

/// One registered telemetry signal.
class channel {
public:
    /// `source` is sampled at poll time.  When `record_history` is set
    /// every sample is archived in addition to the ring: a
    /// harness-owned channel records into the harness's shared frame
    /// (one row per poll across all channels), a standalone channel
    /// into its own time/value columns.
    channel(std::string name, std::string unit, std::function<double()> source,
            std::size_t ring_capacity = 512, bool record_history = true);

    /// Samples the source at time `t`, stores it in the ring (plus the
    /// standalone history when no harness owns this channel), and
    /// returns the value (a harness archives it in its shared frame).
    double poll(double t);

    /// Discards the ring and any standalone history (the harness clears
    /// its shared frame).
    void clear();

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const std::string& unit() const { return unit_; }

    /// Most recent sample, if any.
    [[nodiscard]] std::optional<util::sample> latest() const;

    [[nodiscard]] const sample_ring& ring() const { return ring_; }

    [[nodiscard]] bool records_history() const { return record_history_; }

    /// View of the recorded history: the channel's column of the owning
    /// harness's frame, or the standalone store.  Empty when
    /// `record_history = false` or before the first poll.  Invalidated
    /// by the next poll/reset.
    [[nodiscard]] util::column_view history() const;

    /// Materializes the history as a named series.
    [[nodiscard]] util::named_series to_named_series() const;

private:
    friend class harness;  // binds the shared history column

    std::string name_;
    std::string unit_;
    std::function<double()> source_;
    sample_ring ring_;
    bool record_history_;

    // Shared columnar history (owned by the harness), bound at
    // registration time; standalone recording channels archive into
    // their own columns instead.
    const util::frame* history_frame_ = nullptr;
    std::size_t history_column_ = 0;
    std::vector<double> own_time_;
    std::vector<double> own_values_;
};

}  // namespace ltsc::telemetry
