// A telemetry channel: one named, unit-tagged sensor stream.
//
// Channels hold a bounded ring buffer of recent samples for runtime
// consumers (controllers, alarms) and optionally a full history for
// offline analysis and CSV export — mirroring how the Continuous System
// Telemetry Harness [Gross et al., MFPT'06] archives signals.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/time_series.hpp"

namespace ltsc::telemetry {

/// Bounded ring buffer of (time, value) samples.
class sample_ring {
public:
    /// Creates a ring holding up to `capacity` samples (>= 1).
    explicit sample_ring(std::size_t capacity);

    void push(double t, double v);

    /// Discards all samples.
    void clear();

    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] std::size_t capacity() const { return buffer_.size(); }
    [[nodiscard]] bool empty() const { return size_ == 0; }

    /// i-th most recent sample (0 = newest).  Throws when out of range.
    [[nodiscard]] util::sample recent(std::size_t i) const;

    /// Oldest-to-newest copy of the buffered samples.
    [[nodiscard]] std::vector<util::sample> snapshot() const;

private:
    std::vector<util::sample> buffer_;
    std::size_t head_ = 0;  ///< Next write position.
    std::size_t size_ = 0;
};

/// One registered telemetry signal.
class channel {
public:
    /// `source` is sampled at poll time.  When `record_history` is set the
    /// channel keeps every sample (for export), otherwise only the ring.
    channel(std::string name, std::string unit, std::function<double()> source,
            std::size_t ring_capacity = 512, bool record_history = true);

    /// Samples the source at time `t` and stores the value.
    void poll(double t);

    /// Discards all stored samples (ring and history); the channel can
    /// then record a fresh run starting from t = 0.
    void clear();

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const std::string& unit() const { return unit_; }

    /// Most recent sample, if any.
    [[nodiscard]] std::optional<util::sample> latest() const;

    [[nodiscard]] const sample_ring& ring() const { return ring_; }

    /// Full recorded history (empty when record_history was false).
    [[nodiscard]] const util::time_series& history() const { return history_; }

    /// Exports the history as a named series.
    [[nodiscard]] util::named_series to_named_series() const;

private:
    std::string name_;
    std::string unit_;
    std::function<double()> source_;
    sample_ring ring_;
    bool record_history_;
    util::time_series history_;
};

}  // namespace ltsc::telemetry
