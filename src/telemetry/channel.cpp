#include "telemetry/channel.hpp"

#include "util/error.hpp"

namespace ltsc::telemetry {

sample_ring::sample_ring(std::size_t capacity) : buffer_(capacity) {
    util::ensure(capacity >= 1, "sample_ring: zero capacity");
}

void sample_ring::push(double t, double v) {
    buffer_[head_] = util::sample{t, v};
    head_ = (head_ + 1) % buffer_.size();
    if (size_ < buffer_.size()) {
        ++size_;
    }
}

void sample_ring::clear() {
    head_ = 0;
    size_ = 0;
}

util::sample sample_ring::recent(std::size_t i) const {
    util::ensure(i < size_, "sample_ring::recent: index out of range");
    const std::size_t pos = (head_ + buffer_.size() - 1 - i) % buffer_.size();
    return buffer_[pos];
}

std::vector<util::sample> sample_ring::snapshot() const {
    std::vector<util::sample> out;
    out.reserve(size_);
    for (std::size_t i = size_; i-- > 0;) {
        out.push_back(recent(i));
    }
    return out;
}

channel::channel(std::string name, std::string unit, std::function<double()> source,
                 std::size_t ring_capacity, bool record_history)
    : name_(std::move(name)),
      unit_(std::move(unit)),
      source_(std::move(source)),
      ring_(ring_capacity),
      record_history_(record_history) {
    util::ensure(static_cast<bool>(source_), "channel: null source");
    util::ensure(!name_.empty(), "channel: empty name");
}

double channel::poll(double t) {
    const double v = source_();
    ring_.push(t, v);
    if (record_history_ && history_frame_ == nullptr) {
        util::ensure(own_time_.empty() || t >= own_time_.back(),
                     "channel::poll: non-monotonic time stamp");
        own_time_.push_back(t);
        own_values_.push_back(v);
    }
    return v;
}

void channel::clear() {
    ring_.clear();
    own_time_.clear();
    own_values_.clear();
}

std::optional<util::sample> channel::latest() const {
    if (ring_.empty()) {
        return std::nullopt;
    }
    return ring_.recent(0);
}

util::column_view channel::history() const {
    if (!record_history_) {
        return {};
    }
    if (history_frame_ != nullptr) {
        return history_frame_->column(history_column_);
    }
    if (own_time_.empty()) {
        return {};
    }
    return util::column_view(own_time_.data(), own_values_.data(), own_time_.size());
}

util::named_series channel::to_named_series() const {
    return util::named_series{name_, unit_, history().to_series()};
}

}  // namespace ltsc::telemetry
