#include "telemetry/analytics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ltsc::telemetry {

ewma_filter::ewma_filter(double alpha) : alpha_(alpha) {
    util::ensure(alpha > 0.0 && alpha <= 1.0, "ewma_filter: alpha out of (0, 1]");
}

double ewma_filter::update(double v) {
    if (!value_.has_value()) {
        value_ = v;
    } else {
        value_ = alpha_ * v + (1.0 - alpha_) * *value_;
    }
    return *value_;
}

void ewma_filter::reset() { value_.reset(); }

rolling_window::rolling_window(double window_seconds) : window_(window_seconds) {
    util::ensure(window_seconds > 0.0, "rolling_window: non-positive window");
}

void rolling_window::push(double t, double v) {
    if (!samples_.empty()) {
        util::ensure(t >= samples_.back().first, "rolling_window: non-monotonic time");
    }
    samples_.emplace_back(t, v);
    sum_ += v;
    evict(t);
}

void rolling_window::evict(double now) {
    while (!samples_.empty() && samples_.front().first < now - window_) {
        sum_ -= samples_.front().second;
        samples_.pop_front();
    }
}

double rolling_window::mean() const {
    util::ensure(!samples_.empty(), "rolling_window::mean: empty window");
    return sum_ / static_cast<double>(samples_.size());
}

double rolling_window::min() const {
    util::ensure(!samples_.empty(), "rolling_window::min: empty window");
    double best = samples_.front().second;
    for (const auto& [t, v] : samples_) {
        best = std::min(best, v);
    }
    return best;
}

double rolling_window::max() const {
    util::ensure(!samples_.empty(), "rolling_window::max: empty window");
    double best = samples_.front().second;
    for (const auto& [t, v] : samples_) {
        best = std::max(best, v);
    }
    return best;
}

threshold_alarm::threshold_alarm(double set_point, double clear_point)
    : set_point_(set_point), clear_point_(clear_point) {
    util::ensure(clear_point <= set_point, "threshold_alarm: clear point above set point");
}

bool threshold_alarm::update(double v) {
    if (!active_ && v > set_point_) {
        active_ = true;
        ++trips_;
    } else if (active_ && v < clear_point_) {
        active_ = false;
    }
    return active_;
}

zscore_detector::zscore_detector(double alpha, double z_threshold, std::size_t warmup)
    : level_(alpha), deviation_(alpha), z_(z_threshold), warmup_(warmup) {
    util::ensure(z_threshold > 0.0, "zscore_detector: non-positive threshold");
}

bool zscore_detector::update(double v) {
    ++seen_;
    if (!level_.value().has_value()) {
        level_.update(v);
        deviation_.update(0.0);
        return false;
    }
    const double residual = v - *level_.value();
    if (seen_ <= warmup_) {
        // Still learning the scale: train, never flag.
        level_.update(v);
        deviation_.update(std::fabs(residual));
        return false;
    }
    const double scale = std::max(1e-9, deviation_.value().value_or(0.0));
    const bool anomalous = std::fabs(residual) > z_ * scale;
    if (anomalous) {
        ++anomalies_;
        // Anomalous samples do not update the baseline; this keeps a stuck
        // or spiking sensor from dragging the estimate with it.
        return true;
    }
    level_.update(v);
    deviation_.update(std::fabs(residual));
    return false;
}

}  // namespace ltsc::telemetry
