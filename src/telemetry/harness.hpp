// Continuous System Telemetry Harness (CSTH) substrate.
//
// The paper polls CPU/DIMM temperatures, per-core voltage/current and
// whole-system power through CSTH every 10 seconds.  This harness plays
// that role for the simulated server: channels register a source lambda,
// `poll_due(t)` samples every channel at the configured cadence, and the
// recorded histories export to CSV for the figure benches.
//
// Histories are columnar: every poll samples all channels at one shared
// timestamp, so the harness archives them as one `util::frame` (one time
// column + one value column per history-recording channel) instead of
// per-channel series that each duplicate the poll clock.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/channel.hpp"
#include "util/frame.hpp"
#include "util/units.hpp"

namespace ltsc::telemetry {

/// Polling telemetry harness over a set of channels.
class harness {
public:
    /// `period` is the sampling cadence (the paper uses 10 s).
    explicit harness(util::seconds_t period = util::seconds_t{10.0});

    // Channels hold views into the harness's history frame; the harness
    // is pinned in memory once channels are registered.
    harness(const harness&) = delete;
    harness& operator=(const harness&) = delete;
    harness(harness&&) = delete;
    harness& operator=(harness&&) = delete;

    /// Registers a channel; names must be unique.  Returns its index.
    std::size_t add_channel(std::string name, std::string unit, std::function<double()> source,
                            std::size_t ring_capacity = 512, bool record_history = true);

    /// Samples all channels if at least one period elapsed since the last
    /// poll (or if never polled).  Returns true when a poll happened.
    bool poll_due(util::seconds_t now);

    /// Unconditionally samples all channels at time `now`.
    void poll_now(util::seconds_t now);

    /// Clears every channel's stored samples and the poll clock, so the
    /// harness can record a fresh run starting from t = 0.
    void reset();

    // --- poll-clock save/restore -------------------------------------------
    // Cloning a live plant (rollout snapshots) must reproduce *when* the
    // next telemetry poll fires, because polling reads the sensors and
    // advances their RNG stream.  The clock is exposed as (last poll
    // time, ever-polled) so a restored plant polls on the same schedule
    // as the original; histories are not part of the dynamic state.
    [[nodiscard]] double last_poll_time() const { return last_poll_; }
    [[nodiscard]] bool ever_polled() const { return polled_once_; }

    /// Overwrites the poll clock without sampling or touching histories
    /// (callers wanting a clean recording call reset() first).
    void restore_poll_clock(double last_poll_s, bool ever_polled);

    // --- poll suppression (fault injection) ---------------------------------
    /// While suppressed, poll_due() drops every due poll: no channel is
    /// sampled and the poll clock does not advance, so observers keep
    /// seeing the last delivered values ageing — exactly what a crashed
    /// CSTH poller looks like.  poll_now() stays unconditional (it models
    /// a local read, not the poller).  Suppression is runtime plant
    /// state, not part of the harness clock: plants re-derive it from
    /// their fault_state every step, so it needs no snapshot handling.
    void set_poll_suppressed(bool suppressed) { suppressed_ = suppressed; }
    [[nodiscard]] bool poll_suppressed() const { return suppressed_; }

    [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }
    [[nodiscard]] util::seconds_t period() const { return period_; }

    /// Channel lookup by name; throws when absent.
    [[nodiscard]] const channel& by_name(const std::string& name) const;
    [[nodiscard]] const channel& by_index(std::size_t i) const;

    /// Latest value of a channel; throws when the channel is absent or has
    /// never been polled.
    [[nodiscard]] double latest(const std::string& name) const;

    /// Exports every recorded history as named series.
    [[nodiscard]] std::vector<util::named_series> export_series() const;

    /// Writes all histories as long-format CSV.
    void write_csv(std::ostream& os) const;

    /// The shared columnar history store (one column per
    /// history-recording channel).
    [[nodiscard]] const util::frame& history() const { return history_; }

private:
    util::seconds_t period_;
    double last_poll_ = -1.0;
    bool polled_once_ = false;
    bool suppressed_ = false;
    std::vector<std::unique_ptr<channel>> channels_;
    util::frame history_;
    std::vector<double> poll_scratch_;  ///< One history row, reused per poll.
};

}  // namespace ltsc::telemetry
