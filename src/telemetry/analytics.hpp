// Online signal analytics in the spirit of CSTH's prognostics layer.
//
// CSTH feeds its archived signals into similarity-based anomaly detection;
// this module provides the streaming building blocks the reproduction
// needs: EWMA smoothing, rolling-window statistics, hysteresis threshold
// alarms, and a z-score residual detector that flags sensor readings far
// from their smoothed estimate (used for failure-injection tests).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

namespace ltsc::telemetry {

/// Exponentially weighted moving average.
class ewma_filter {
public:
    /// `alpha` in (0, 1]: weight of the newest sample.
    explicit ewma_filter(double alpha);

    /// Feeds a sample; returns the updated estimate.
    double update(double v);

    /// Current estimate (std::nullopt before the first sample).
    [[nodiscard]] std::optional<double> value() const { return value_; }

    void reset();

private:
    double alpha_;
    std::optional<double> value_;
};

/// Rolling time-window statistics over a scalar stream.
class rolling_window {
public:
    /// Keeps samples no older than `window_seconds` behind the newest.
    explicit rolling_window(double window_seconds);

    void push(double t, double v);

    [[nodiscard]] std::size_t size() const { return samples_.size(); }
    [[nodiscard]] bool empty() const { return samples_.empty(); }
    [[nodiscard]] double mean() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;

private:
    void evict(double now);

    double window_;
    std::deque<std::pair<double, double>> samples_;
    double sum_ = 0.0;
};

/// Two-threshold alarm with hysteresis: asserts when the signal rises
/// above `set_point`, clears only when it falls below `clear_point`.
class threshold_alarm {
public:
    threshold_alarm(double set_point, double clear_point);

    /// Feeds a sample; returns the (possibly updated) alarm state.
    bool update(double v);

    [[nodiscard]] bool active() const { return active_; }
    /// Number of rising edges seen so far.
    [[nodiscard]] std::size_t trip_count() const { return trips_; }

private:
    double set_point_;
    double clear_point_;
    bool active_ = false;
    std::size_t trips_ = 0;
};

/// Flags samples whose deviation from an EWMA estimate exceeds `z` times
/// the EWMA of the absolute deviation (a robust streaming z-score).  The
/// first `warmup` samples only train the baseline — the deviation scale
/// needs a few samples before a z-score means anything.
class zscore_detector {
public:
    zscore_detector(double alpha, double z_threshold, std::size_t warmup = 10);

    /// Feeds a sample; returns true when the sample is anomalous.
    bool update(double v);

    [[nodiscard]] std::size_t anomaly_count() const { return anomalies_; }

private:
    ewma_filter level_;
    ewma_filter deviation_;
    double z_;
    std::size_t warmup_;
    std::size_t seen_ = 0;
    std::size_t anomalies_ = 0;
};

}  // namespace ltsc::telemetry
