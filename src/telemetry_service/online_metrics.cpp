#include "telemetry_service/online_metrics.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/units.hpp"

namespace ltsc::telemetry_service {

namespace {

[[nodiscard]] constexpr std::size_t ch(sim::trace_channel c) {
    return static_cast<std::size_t>(c);
}

}  // namespace

void window_accumulator::add(double t, const double* channels) {
    const double power = channels[ch(sim::trace_channel::total_power)];
    const double rpm = channels[ch(sim::trace_channel::avg_fan_rpm)];
    const double cpu = channels[ch(sim::trace_channel::avg_cpu_temp)];
    const double max_sensor = channels[ch(sim::trace_channel::max_sensor_temp)];
    if (rows_ == 0) {
        t_first_ = t;
        first_rpm_ = rpm;
        first_cpu_ = cpu;
        peak_power_ = power;
        max_temp_ = max_sensor;
    } else {
        util::ensure(t >= t_last_, "window_accumulator::add: non-monotonic timestamp");
        // The exact trapezoid sequence detail::integrate walks, one
        // segment at a time: identical operands, identical order.
        energy_j_ += 0.5 * (prev_power_ + power) * (t - t_last_);
        rpm_integral_ += 0.5 * (prev_rpm_ + rpm) * (t - t_last_);
        cpu_integral_ += 0.5 * (prev_cpu_ + cpu) * (t - t_last_);
        peak_power_ = std::max(peak_power_, power);
        max_temp_ = std::max(max_temp_, max_sensor);
    }
    if (max_sensor >= guard_temp_c_) {
        ++guard_trips_;
    }
    t_last_ = t;
    prev_power_ = power;
    prev_rpm_ = rpm;
    prev_cpu_ = cpu;
    ++rows_;
}

sim::run_metrics window_accumulator::close(std::string test_name, std::string controller_name) {
    util::ensure(rows_ >= 2, "window_accumulator::close: window too short");
    sim::run_metrics m;
    m.test_name = std::move(test_name);
    m.controller_name = std::move(controller_name);
    m.duration_s = t_last_ - t_first_;
    m.energy_kwh = util::to_kwh(util::joules_t{energy_j_});
    m.peak_power_w = peak_power_;
    m.max_temp_c = max_temp_;
    m.fan_changes = 0;
    // mean_over degenerates to the first value when the window spans no
    // time; otherwise it divides the same integral by the same width.
    if (t_last_ <= t_first_) {
        m.avg_rpm = first_rpm_;
        m.avg_cpu_temp_c = first_cpu_;
    } else {
        m.avg_rpm = rpm_integral_ / (t_last_ - t_first_);
        m.avg_cpu_temp_c = cpu_integral_ / (t_last_ - t_first_);
    }
    rows_ = 0;
    energy_j_ = 0.0;
    rpm_integral_ = 0.0;
    cpu_integral_ = 0.0;
    guard_trips_ = 0;
    return m;
}

online_state::online_state(std::size_t lanes, online_config cfg)
    : cfg_(cfg),
      margins_(cfg.margin_lo_c, cfg.margin_hi_c, cfg.margin_bins) {
    util::ensure(lanes > 0, "online_state: need at least one lane");
    util::ensure(cfg.window_rows >= 2, "online_state: window_rows must be >= 2");
    lanes_.reserve(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
        lanes_.emplace_back(cfg.guard_temp_c);
    }
}

void online_state::apply_group(const row_group& g, std::size_t lane_offset) {
    util::ensure(lane_offset + g.lanes <= lanes_.size(),
                 "online_state::apply_group: lane range out of bounds");
    for (std::size_t l = 0; l < g.lanes; ++l) {
        if (!g.lane_valid(l)) {
            continue;
        }
        const double* slot = g.lane_data(l);
        apply_row(lane_offset + l, slot[0], slot + 1);
    }
    ++row_groups_;
}

void online_state::apply_row(std::size_t lane, double t, const double* channels) {
    util::ensure(lane < lanes_.size(), "online_state::apply_row: lane out of range");
    lane_state& ln = lanes_[lane];
    ln.acc.add(t, channels);

    const double max_sensor = channels[ch(sim::trace_channel::max_sensor_temp)];
    max_temp_c_ = std::max(max_temp_c_, max_sensor);
    margins_.add(cfg_.guard_temp_c - max_sensor);
    if (max_sensor >= cfg_.guard_temp_c) {
        ++guard_trip_rows_;
    }
    if (channels[ch(sim::trace_channel::monitor_sensor_health)] >= 1.0) {
        ++sensor_alarm_rows_;
    }
    if (channels[ch(sim::trace_channel::monitor_fan_health)] >= 1.0) {
        ++fan_alarm_rows_;
    }
    ++rows_;
    ++ln.window.rows;
    ln.window.open_rows = ln.acc.rows();

    if (ln.acc.rows() == cfg_.window_rows) {
        ln.window.guard_trip_rows = ln.acc.guard_trip_rows();
        ln.window.metrics = ln.acc.close("window", "online");
        ln.window.valid = true;
        ++ln.window.closed;
        ln.window.open_rows = 0;
        ++closed_windows_;
        closed_energy_kwh_ += ln.window.metrics.energy_kwh;
    }
}

const lane_window& online_state::lane(std::size_t lane) const {
    util::ensure(lane < lanes_.size(), "online_state::lane: lane out of range");
    return lanes_[lane].window;
}

}  // namespace ltsc::telemetry_service
