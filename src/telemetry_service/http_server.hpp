// Minimal HTTP/1.1 query endpoint for the telemetry service.
//
// Scope: GET-only, JSON-out, loopback-oriented.  One acceptor thread
// distributes connections round-robin to a small pool of poll()-based
// event-loop workers, so thousands of concurrent keep-alive pollers are
// served by a handful of threads (the soak gate drives >= 1k).  This is
// deliberately not a general web server: no TLS, no chunked bodies, no
// request bodies, bounded request heads; a stalled peer can delay its
// worker's write at worst one response.  Handlers run on worker
// threads and must be thread-safe.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace ltsc::telemetry_service {

/// Maps a request path to a response body (already serialized JSON).
/// Returns false for "no such resource" (served as 404).
using http_handler = std::function<bool(const std::string& path, std::string& body)>;

class http_server {
public:
    /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()),
    /// spawns `worker_threads` event loops plus one acceptor, and
    /// serves until destruction.  Throws util::ltsc_error when the
    /// socket cannot be created or bound.
    http_server(std::uint16_t port, std::size_t worker_threads, http_handler handler);
    ~http_server();

    http_server(const http_server&) = delete;
    http_server& operator=(const http_server&) = delete;

    /// The bound TCP port.
    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// Requests answered (any status) since construction.
    [[nodiscard]] std::uint64_t requests_served() const {
        return requests_.load(std::memory_order_relaxed);
    }

private:
    struct worker;

    void accept_loop();
    void worker_loop(worker* w);
    /// Parses and answers every complete request buffered on one
    /// connection.  Returns false when the connection should close.
    bool serve_buffered(int fd, std::string& inbuf);

    http_handler handler_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> requests_{0};
    std::vector<std::unique_ptr<worker>> workers_;
    std::thread acceptor_;
};

}  // namespace ltsc::telemetry_service
