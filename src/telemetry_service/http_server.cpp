#include "telemetry_service/http_server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <utility>

#include "util/error.hpp"

namespace ltsc::telemetry_service {

namespace {

constexpr std::size_t k_max_request_bytes = 16 * 1024;

void set_nonblocking(int fd) {
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) {
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    }
}

/// Sends the whole buffer, polling for writability on EAGAIN.  Returns
/// false when the peer is gone.
bool send_all(int fd, const char* data, std::size_t len) {
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            struct pollfd pfd = {fd, POLLOUT, 0};
            ::poll(&pfd, 1, 100);
            continue;
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        return false;
    }
    return true;
}

}  // namespace

struct http_server::worker {
    struct connection {
        int fd = -1;
        std::string inbuf;
    };

    std::thread thread;
    int wake_pipe[2] = {-1, -1};
    std::mutex inbox_mutex;
    std::vector<int> inbox;
    std::vector<connection> conns;

    void push(int fd) {
        {
            std::lock_guard<std::mutex> lk(inbox_mutex);
            inbox.push_back(fd);
        }
        const char b = 1;
        [[maybe_unused]] const ssize_t n = ::write(wake_pipe[1], &b, 1);
    }
};

http_server::http_server(std::uint16_t port, std::size_t worker_threads, http_handler handler)
    : handler_(std::move(handler)) {
    util::ensure(worker_threads > 0, "http_server: need at least one worker thread");
    util::ensure(static_cast<bool>(handler_), "http_server: null handler");

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        throw util::ltsc_error("http_server: socket() failed");
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 1024) != 0) {
        ::close(listen_fd_);
        throw util::ltsc_error("http_server: bind/listen failed");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    set_nonblocking(listen_fd_);

    workers_.reserve(worker_threads);
    for (std::size_t w = 0; w < worker_threads; ++w) {
        auto wk = std::make_unique<worker>();
        if (::pipe(wk->wake_pipe) != 0) {
            ::close(listen_fd_);
            throw util::ltsc_error("http_server: pipe() failed");
        }
        set_nonblocking(wk->wake_pipe[0]);
        workers_.push_back(std::move(wk));
    }
    for (auto& wk : workers_) {
        worker* raw = wk.get();
        raw->thread = std::thread([this, raw] { worker_loop(raw); });
    }
    acceptor_ = std::thread([this] { accept_loop(); });
}

http_server::~http_server() {
    stop_.store(true, std::memory_order_release);
    for (auto& wk : workers_) {
        const char b = 1;
        [[maybe_unused]] const ssize_t n = ::write(wk->wake_pipe[1], &b, 1);
    }
    acceptor_.join();
    for (auto& wk : workers_) {
        wk->thread.join();
        for (auto& c : wk->conns) {
            ::close(c.fd);
        }
        for (int fd : wk->inbox) {
            ::close(fd);
        }
        ::close(wk->wake_pipe[0]);
        ::close(wk->wake_pipe[1]);
    }
    ::close(listen_fd_);
}

void http_server::accept_loop() {
    std::size_t next = 0;
    while (!stop_.load(std::memory_order_acquire)) {
        struct pollfd pfd = {listen_fd_, POLLIN, 0};
        const int r = ::poll(&pfd, 1, 50);
        if (r <= 0) {
            continue;
        }
        for (;;) {
            const int fd = ::accept(listen_fd_, nullptr, nullptr);
            if (fd < 0) {
                break;
            }
            set_nonblocking(fd);
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            workers_[next]->push(fd);
            next = (next + 1) % workers_.size();
        }
    }
}

void http_server::worker_loop(worker* w) {
    std::vector<struct pollfd> pfds;
    while (!stop_.load(std::memory_order_acquire)) {
        pfds.clear();
        pfds.push_back({w->wake_pipe[0], POLLIN, 0});
        for (const auto& c : w->conns) {
            pfds.push_back({c.fd, POLLIN, 0});
        }
        const int r = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 50);
        if (stop_.load(std::memory_order_acquire)) {
            return;
        }
        if (r <= 0) {
            continue;
        }
        if ((pfds[0].revents & POLLIN) != 0) {
            char buf[64];
            while (::read(w->wake_pipe[0], buf, sizeof(buf)) > 0) {
            }
            std::lock_guard<std::mutex> lk(w->inbox_mutex);
            for (int fd : w->inbox) {
                w->conns.push_back({fd, std::string()});
            }
            w->inbox.clear();
        }
        // Walk connections back-to-front so erasing is O(1)-ish and the
        // pollfd indices (offset by the wake pipe) stay aligned.
        for (std::size_t i = w->conns.size(); i-- > 0;) {
            if (i + 1 >= pfds.size()) {
                continue;  // Connection added this round; poll it next time.
            }
            const short revents = pfds[i + 1].revents;
            if (revents == 0) {
                continue;
            }
            auto& conn = w->conns[i];
            bool keep = (revents & (POLLERR | POLLHUP | POLLNVAL)) == 0;
            while (keep) {
                char buf[4096];
                const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
                if (n > 0) {
                    conn.inbuf.append(buf, static_cast<std::size_t>(n));
                    if (conn.inbuf.size() > k_max_request_bytes) {
                        keep = false;
                    }
                    continue;
                }
                if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                    break;
                }
                if (n < 0 && errno == EINTR) {
                    continue;
                }
                keep = false;  // Peer closed or hard error.
            }
            if (keep) {
                keep = serve_buffered(conn.fd, conn.inbuf);
            }
            if (!keep) {
                ::close(conn.fd);
                w->conns.erase(w->conns.begin() + static_cast<std::ptrdiff_t>(i));
            }
        }
    }
}

bool http_server::serve_buffered(int fd, std::string& inbuf) {
    for (;;) {
        const std::size_t head_end = inbuf.find("\r\n\r\n");
        if (head_end == std::string::npos) {
            return true;  // Request incomplete; keep buffering.
        }
        const std::string head = inbuf.substr(0, head_end);
        inbuf.erase(0, head_end + 4);

        const std::size_t sp1 = head.find(' ');
        const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                         : head.find(' ', sp1 + 1);
        std::string method = sp1 == std::string::npos ? std::string() : head.substr(0, sp1);
        std::string path = sp2 == std::string::npos
                               ? std::string()
                               : head.substr(sp1 + 1, sp2 - sp1 - 1);
        // Keep-alive unless the client opted out (HTTP/1.1 default).
        bool close_after = false;
        for (std::size_t pos = head.find("\r\n"); pos != std::string::npos;
             pos = head.find("\r\n", pos + 2)) {
            const std::size_t line = pos + 2;
            if (head.compare(line, 11, "Connection:") == 0 ||
                head.compare(line, 11, "connection:") == 0) {
                close_after = head.find("close", line) != std::string::npos;
            }
        }

        std::string body;
        const char* status = "200 OK";
        if (method != "GET" || path.empty()) {
            status = "400 Bad Request";
            body = "{\"error\":\"bad request\"}";
        } else if (!handler_(path, body)) {
            status = "404 Not Found";
            body = "{\"error\":\"not found\"}";
        }
        std::string response;
        response.reserve(body.size() + 128);
        response += "HTTP/1.1 ";
        response += status;
        response += "\r\nContent-Type: application/json\r\nContent-Length: ";
        response += std::to_string(body.size());
        response += close_after ? "\r\nConnection: close\r\n\r\n"
                                : "\r\nConnection: keep-alive\r\n\r\n";
        response += body;
        requests_.fetch_add(1, std::memory_order_relaxed);
        if (!send_all(fd, response.data(), response.size())) {
            return false;
        }
        if (close_after) {
            return false;
        }
    }
}

}  // namespace ltsc::telemetry_service
