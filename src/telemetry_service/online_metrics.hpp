// Incremental windowed metrics over streaming trace rows.
//
// The post-hoc pipeline computes `sim::compute_metrics` over a finished
// trace with the shared series algorithms (util/series_algo.hpp):
// sequential trapezoids for integrals and time-weighted means, running
// extrema for peaks.  Rows arrive here in exactly that iteration order
// (per-lane time order), so the accumulator performs the *same
// floating-point operations in the same order* as the post-hoc reader
// and a closed window's metrics are bitwise-equal to
// `compute_metrics` over the same rows — not approximately, bit for
// bit (pinned by OnlineMetrics.*; fan_changes is a plant counter that
// does not ride the trace, so windows report 0 there and the post-hoc
// comparison passes 0 too).
//
// On top of the per-lane windows the engine keeps fleet-wide rollups no
// post-hoc pass could serve live: guard-trip row counts, monitor-health
// alarm rows, and thermal-margin percentiles from a fixed-bin
// histogram.  Nothing here is thread-safe; the telemetry service
// serializes writers and snapshots readers around it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "telemetry_service/row_group.hpp"
#include "util/histogram.hpp"

namespace ltsc::telemetry_service {

/// Online-engine knobs.
struct online_config {
    /// Rows per closed window (>= 2: compute_metrics needs two samples).
    std::size_t window_rows = 60;
    /// Guard line: a row whose max sensor reading is at or above this
    /// counts as a guard-trip row, and thermal margin is measured
    /// against it.
    double guard_temp_c = 101.0;
    /// Thermal-margin histogram grid (margin = guard - max sensor).
    double margin_lo_c = -25.0;
    double margin_hi_c = 100.0;
    std::size_t margin_bins = 500;
};

/// Streaming accumulator for one lane's current window.
class window_accumulator {
public:
    explicit window_accumulator(double guard_temp_c = 101.0) : guard_temp_c_(guard_temp_c) {}

    /// Folds in one row: `channels` are the 16 values in trace_channel
    /// order (one lane block of a row-group, past the timestamp).
    /// Timestamps must be non-decreasing within a window.
    void add(double t, const double* channels);

    [[nodiscard]] std::size_t rows() const { return rows_; }
    [[nodiscard]] std::uint64_t guard_trip_rows() const { return guard_trips_; }

    /// Energy integral accumulated so far this window [J].
    [[nodiscard]] double open_energy_j() const { return energy_j_; }

    /// Closes the window: returns metrics bitwise-equal to
    /// sim::compute_metrics over the same rows (with fan_changes = 0)
    /// and resets the accumulator.  Throws with fewer than 2 rows.
    [[nodiscard]] sim::run_metrics close(std::string test_name, std::string controller_name);

private:
    double guard_temp_c_;
    std::size_t rows_ = 0;
    double t_first_ = 0.0;
    double t_last_ = 0.0;
    // Previous row's integrand values (trapezoid partners).
    double prev_power_ = 0.0;
    double prev_rpm_ = 0.0;
    double prev_cpu_ = 0.0;
    // First row's values (the degenerate zero-duration mean).
    double first_rpm_ = 0.0;
    double first_cpu_ = 0.0;
    // Running reductions, in post-hoc iteration order.
    double energy_j_ = 0.0;
    double rpm_integral_ = 0.0;
    double cpu_integral_ = 0.0;
    double peak_power_ = 0.0;
    double max_temp_ = 0.0;
    std::uint64_t guard_trips_ = 0;
};

/// Published per-lane state: the last closed window plus progress
/// counters.
struct lane_window {
    std::uint64_t closed = 0;           ///< Windows closed so far.
    bool valid = false;                 ///< True once a window has closed.
    sim::run_metrics metrics;           ///< Metrics of the last closed window.
    std::uint64_t guard_trip_rows = 0;  ///< Guard trips inside that window.
    std::size_t open_rows = 0;          ///< Rows in the accumulating window.
    std::uint64_t rows = 0;             ///< Lifetime rows ingested.
};

/// The whole fleet's online metrics: per-lane windows + global rollups.
class online_state {
public:
    online_state(std::size_t lanes, online_config cfg = {});

    [[nodiscard]] std::size_t lane_count() const { return lanes_.size(); }
    [[nodiscard]] const online_config& config() const { return cfg_; }

    /// Applies one published row-group; `lane_offset` maps the group's
    /// shard-local lanes onto global lane indices.
    void apply_group(const row_group& g, std::size_t lane_offset);

    /// Applies one row to one global lane (the group apply unrolled;
    /// exposed for tests and the ingest micro-benchmark).
    void apply_row(std::size_t lane, double t, const double* channels);

    [[nodiscard]] const lane_window& lane(std::size_t lane) const;

    // --- fleet rollups ------------------------------------------------------
    [[nodiscard]] std::uint64_t rows() const { return rows_; }
    [[nodiscard]] std::uint64_t row_groups() const { return row_groups_; }
    [[nodiscard]] std::uint64_t closed_windows() const { return closed_windows_; }
    /// Sum of closed-window energies over every lane [kWh].
    [[nodiscard]] double closed_energy_kwh() const { return closed_energy_kwh_; }
    /// Max sensor temperature over every row ingested (NaN-free; 0 when
    /// no rows yet — check rows()).
    [[nodiscard]] double max_temp_c() const { return max_temp_c_; }
    [[nodiscard]] std::uint64_t guard_trip_rows() const { return guard_trip_rows_; }
    [[nodiscard]] std::uint64_t sensor_alarm_rows() const { return sensor_alarm_rows_; }
    [[nodiscard]] std::uint64_t fan_alarm_rows() const { return fan_alarm_rows_; }
    /// Thermal margins (guard - max sensor) of every row ingested.
    [[nodiscard]] const util::fixed_histogram& margin_histogram() const { return margins_; }

private:
    struct lane_state {
        explicit lane_state(double guard) : acc(guard) {}
        window_accumulator acc;
        lane_window window;
    };

    online_config cfg_;
    std::vector<lane_state> lanes_;
    util::fixed_histogram margins_;
    std::uint64_t rows_ = 0;
    std::uint64_t row_groups_ = 0;
    std::uint64_t closed_windows_ = 0;
    double closed_energy_kwh_ = 0.0;
    double max_temp_c_ = 0.0;
    std::uint64_t guard_trip_rows_ = 0;
    std::uint64_t sensor_alarm_rows_ = 0;
    std::uint64_t fan_alarm_rows_ = 0;
};

}  // namespace ltsc::telemetry_service
