// Streaming telemetry service: the columnar store goes online.
//
// Attaching a `service` to a `sim::fleet` turns the simulator into a
// system under observation while it runs:
//
//   fleet shards ──publish──▶ per-shard SPSC rings ──drain──▶ aggregator
//                                                                 │
//              HTTP pollers ◀──serve── snapshot reads ◀── online state
//
//  * Ingestion: each shard step publishes its freshly appended
//    lane-major row-group (epoch-stamped, validity-masked) into a
//    lock-free ring on the stepping thread; a full ring counts a drop
//    instead of ever stalling the plant.  A fleet with no sink attached
//    is bitwise-identical to one that never had a service (pinned by
//    TelemetryService.AttachedFleetTracesBitwiseIdentical).
//  * Aggregation: one thread drains the rings and folds whole
//    row-groups into the online state atomically, tracking the newest
//    epoch applied per shard.  `complete_epoch` (the min across
//    shards) names the newest fleet step every shard has reached — the
//    snapshot-consistency watermark.
//  * Queries: snapshot reads copy the state under a reader lock, so a
//    response never shows a torn fleet step; serialized JSON carries an
//    FNV-1a checksum over the body prefix that clients (and the soak
//    gate) re-verify end to end.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/fleet.hpp"
#include "telemetry_service/http_server.hpp"
#include "telemetry_service/online_metrics.hpp"
#include "telemetry_service/row_group.hpp"
#include "util/spsc_ring.hpp"

namespace ltsc::telemetry_service {

struct service_config {
    online_config online;         ///< Window size, guard line, margin grid.
    std::size_t ring_slots = 64;  ///< Row-group slots per shard ring.
    std::size_t http_threads = 2;
    std::uint16_t port = 0;       ///< 0 picks an ephemeral port.
    bool enable_http = true;      ///< False: ingest/aggregate only.
};

/// Ingestion counters (monotone; readable any time).
struct ingest_stats {
    std::uint64_t published_groups = 0;  ///< Row-groups accepted by rings.
    std::uint64_t dropped_groups = 0;    ///< Row-groups lost to full rings.
    std::uint64_t applied_groups = 0;    ///< Row-groups folded into state.
    std::uint64_t rows = 0;              ///< Lane-rows folded into state.
};

/// One consistent view of the fleet's online metrics.
struct fleet_snapshot {
    std::size_t lanes = 0;
    std::size_t shards = 0;
    std::uint64_t complete_epoch = 0;  ///< Newest step every shard reached.
    std::vector<std::uint64_t> shard_epochs;
    std::uint64_t rows = 0;
    std::uint64_t row_groups = 0;
    std::uint64_t dropped_groups = 0;
    std::uint64_t closed_windows = 0;
    std::uint64_t guard_trip_rows = 0;
    std::uint64_t sensor_alarm_rows = 0;
    std::uint64_t fan_alarm_rows = 0;
    double closed_energy_kwh = 0.0;
    double max_temp_c = 0.0;   ///< 0 until the first row arrives.
    double margin_p01_c = 0.0; ///< Thermal margin percentiles (0 until rows).
    double margin_p50_c = 0.0;
    double margin_p99_c = 0.0;
};

class service final : public sim::fleet_sink {
public:
    /// Attaches to `fleet` (which must have no sink) and starts the
    /// aggregator and, per config, the HTTP endpoint.  The fleet must
    /// outlive the service; attach and destroy only while the fleet is
    /// quiescent.
    explicit service(sim::fleet& fleet, service_config cfg = {});
    ~service() override;

    service(const service&) = delete;
    service& operator=(const service&) = delete;

    /// Publication hook (fleet_sink); runs on fleet pool threads.
    void on_shard_step(std::size_t shard, std::uint64_t epoch,
                       const sim::server_batch& batch) override;

    // --- snapshot reads (thread-safe) ---------------------------------------
    [[nodiscard]] fleet_snapshot metrics() const;
    [[nodiscard]] lane_window lane_window_snapshot(std::size_t lane) const;
    [[nodiscard]] ingest_stats stats() const;

    /// JSON bodies of the HTTP endpoints (exposed so tests and the
    /// ingest bench can bypass sockets).
    [[nodiscard]] std::string metrics_json() const;
    [[nodiscard]] std::string health_json() const;
    [[nodiscard]] std::string lane_window_json(std::size_t lane) const;

    [[nodiscard]] std::uint16_t http_port() const;
    [[nodiscard]] std::uint64_t requests_served() const;

    /// Blocks until every row-group published so far has been applied
    /// (call with the fleet quiescent: the deterministic-read hook for
    /// tests and benches).
    void drain() const;

    /// FNV-1a 64 over `s` (the JSON body checksum clients re-verify).
    [[nodiscard]] static std::uint64_t fnv1a(const std::string& s);

private:
    void aggregator_loop();
    bool handle(const std::string& path, std::string& body);

    sim::fleet& fleet_;
    service_config cfg_;

    // Producer side (fleet pool threads, serialized per shard by the
    // pool barrier).
    std::vector<std::unique_ptr<util::spsc_ring<row_group>>> rings_;
    std::vector<std::uint64_t> last_appended_;  ///< Per-shard arena watermark.
    std::unique_ptr<std::atomic<std::uint64_t>[]> dropped_;  ///< Per shard.
    std::atomic<std::uint64_t> published_{0};
    std::atomic<std::uint64_t> applied_{0};

    // Aggregated state (aggregator writes, queries read).
    mutable std::shared_mutex state_mutex_;
    online_state state_;
    std::vector<std::uint64_t> shard_epochs_;

    std::atomic<bool> stop_{false};
    std::thread aggregator_;
    std::unique_ptr<http_server> http_;
};

}  // namespace ltsc::telemetry_service
