#include "telemetry_service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/error.hpp"

namespace ltsc::telemetry_service {

namespace {

/// Appends a double as shortest round-trippable decimal (JSON number).
void append_double(std::string& out, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

void append_field(std::string& out, const char* key, double v) {
    out += '"';
    out += key;
    out += "\":";
    append_double(out, v);
}

void append_field(std::string& out, const char* key, std::uint64_t v) {
    out += '"';
    out += key;
    out += "\":";
    out += std::to_string(v);
}

/// Seals a JSON body whose opening brace is written but whose closing
/// brace is not: appends the checksum of everything so far as the final
/// field.  Clients re-verify by hashing the body up to `,"checksum"`.
void seal(std::string& out) {
    const std::uint64_t sum = service::fnv1a(out);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(sum));
    out += ",\"checksum\":\"";
    out += buf;
    out += "\"}";
}

}  // namespace

std::uint64_t service::fnv1a(const std::string& s) {
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

service::service(sim::fleet& fleet, service_config cfg)
    : fleet_(fleet),
      cfg_(cfg),
      state_(fleet.lane_count(), cfg.online),
      shard_epochs_(fleet.shard_count(), 0) {
    util::ensure(fleet_.sink() == nullptr, "service: fleet already has a sink");
    const std::size_t shards = fleet_.shard_count();
    rings_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        rings_.push_back(std::make_unique<util::spsc_ring<row_group>>(cfg_.ring_slots));
    }
    last_appended_.assign(shards, 0);
    dropped_.reset(new std::atomic<std::uint64_t>[shards]);
    for (std::size_t s = 0; s < shards; ++s) {
        dropped_[s].store(0, std::memory_order_relaxed);
    }
    aggregator_ = std::thread([this] { aggregator_loop(); });
    if (cfg_.enable_http) {
        http_ = std::make_unique<http_server>(
            cfg_.port, cfg_.http_threads,
            [this](const std::string& path, std::string& body) { return handle(path, body); });
    }
    fleet_.attach_sink(this);
}

service::~service() {
    fleet_.attach_sink(nullptr);
    http_.reset();  // Stop serving before the state stops advancing.
    stop_.store(true, std::memory_order_release);
    aggregator_.join();
}

void service::on_shard_step(std::size_t shard, std::uint64_t epoch,
                            const sim::server_batch& batch) {
    const sim::batch_trace& tr = batch.traces();
    const std::uint64_t appended = tr.appended_groups();
    if (appended == last_appended_[shard]) {
        return;  // All lanes inert: the step recorded nothing.
    }
    last_appended_[shard] = appended;
    const std::size_t group = tr.group_count() - 1;
    const std::size_t lanes = batch.lane_count();
    const bool pushed = rings_[shard]->try_push([&](row_group& g) {
        g.epoch = epoch;
        g.shard = static_cast<std::uint32_t>(shard);
        g.lanes = static_cast<std::uint32_t>(lanes);
        g.active.assign((lanes + 63) / 64, 0);
        for (std::size_t l = 0; l < lanes; ++l) {
            if (tr.lane_in_group(l, group)) {
                g.active[l / 64] |= 1ULL << (l % 64);
            }
        }
        const double* src = tr.group_data(group);
        g.data.assign(src, src + lanes * sim::batch_trace::slot_doubles);
    });
    if (pushed) {
        published_.fetch_add(1, std::memory_order_release);
    } else {
        dropped_[shard].fetch_add(1, std::memory_order_relaxed);
    }
}

void service::aggregator_loop() {
    row_group scratch;
    for (;;) {
        bool idle = true;
        for (std::size_t s = 0; s < rings_.size(); ++s) {
            while (rings_[s]->try_pop([&](row_group& g) { scratch = std::move(g); })) {
                idle = false;
                {
                    std::unique_lock<std::shared_mutex> lock(state_mutex_);
                    state_.apply_group(scratch, fleet_.shard_offset(s));
                    shard_epochs_[s] = std::max(shard_epochs_[s], scratch.epoch);
                }
                applied_.fetch_add(1, std::memory_order_release);
            }
        }
        if (idle) {
            if (stop_.load(std::memory_order_acquire)) {
                return;  // Stopped and every ring is dry.
            }
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    }
}

void service::drain() const {
    while (applied_.load(std::memory_order_acquire) <
           published_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
}

fleet_snapshot service::metrics() const {
    fleet_snapshot snap;
    snap.lanes = fleet_.lane_count();
    snap.shards = fleet_.shard_count();
    std::uint64_t dropped = 0;
    for (std::size_t s = 0; s < snap.shards; ++s) {
        dropped += dropped_[s].load(std::memory_order_relaxed);
    }
    snap.dropped_groups = dropped;

    std::shared_lock<std::shared_mutex> lock(state_mutex_);
    snap.shard_epochs = shard_epochs_;
    snap.complete_epoch =
        *std::min_element(shard_epochs_.begin(), shard_epochs_.end());
    snap.rows = state_.rows();
    snap.row_groups = state_.row_groups();
    snap.closed_windows = state_.closed_windows();
    snap.guard_trip_rows = state_.guard_trip_rows();
    snap.sensor_alarm_rows = state_.sensor_alarm_rows();
    snap.fan_alarm_rows = state_.fan_alarm_rows();
    snap.closed_energy_kwh = state_.closed_energy_kwh();
    snap.max_temp_c = state_.max_temp_c();
    if (state_.rows() > 0) {
        const util::fixed_histogram& h = state_.margin_histogram();
        snap.margin_p01_c = h.quantile(0.01);
        snap.margin_p50_c = h.quantile(0.50);
        snap.margin_p99_c = h.quantile(0.99);
    }
    return snap;
}

lane_window service::lane_window_snapshot(std::size_t lane) const {
    std::shared_lock<std::shared_mutex> lock(state_mutex_);
    return state_.lane(lane);
}

ingest_stats service::stats() const {
    ingest_stats st;
    st.published_groups = published_.load(std::memory_order_acquire);
    st.applied_groups = applied_.load(std::memory_order_acquire);
    for (std::size_t s = 0; s < fleet_.shard_count(); ++s) {
        st.dropped_groups += dropped_[s].load(std::memory_order_relaxed);
    }
    std::shared_lock<std::shared_mutex> lock(state_mutex_);
    st.rows = state_.rows();
    return st;
}

std::string service::metrics_json() const {
    const fleet_snapshot snap = metrics();
    std::string out;
    out.reserve(512 + 24 * snap.shard_epochs.size());
    out += '{';
    append_field(out, "lanes", static_cast<std::uint64_t>(snap.lanes));
    out += ',';
    append_field(out, "shards", static_cast<std::uint64_t>(snap.shards));
    out += ',';
    append_field(out, "complete_epoch", snap.complete_epoch);
    out += ",\"shard_epochs\":[";
    for (std::size_t s = 0; s < snap.shard_epochs.size(); ++s) {
        if (s != 0) {
            out += ',';
        }
        out += std::to_string(snap.shard_epochs[s]);
    }
    out += "],";
    append_field(out, "rows", snap.rows);
    out += ',';
    append_field(out, "row_groups", snap.row_groups);
    out += ',';
    append_field(out, "dropped_groups", snap.dropped_groups);
    out += ',';
    append_field(out, "closed_windows", snap.closed_windows);
    out += ',';
    append_field(out, "guard_trip_rows", snap.guard_trip_rows);
    out += ',';
    append_field(out, "sensor_alarm_rows", snap.sensor_alarm_rows);
    out += ',';
    append_field(out, "fan_alarm_rows", snap.fan_alarm_rows);
    out += ',';
    append_field(out, "closed_energy_kwh", snap.closed_energy_kwh);
    out += ',';
    append_field(out, "max_temp_c", snap.max_temp_c);
    out += ',';
    append_field(out, "margin_p01_c", snap.margin_p01_c);
    out += ',';
    append_field(out, "margin_p50_c", snap.margin_p50_c);
    out += ',';
    append_field(out, "margin_p99_c", snap.margin_p99_c);
    seal(out);
    return out;
}

std::string service::health_json() const {
    const ingest_stats st = stats();
    std::uint64_t complete = 0;
    {
        std::shared_lock<std::shared_mutex> lock(state_mutex_);
        complete = *std::min_element(shard_epochs_.begin(), shard_epochs_.end());
    }
    std::string out;
    out.reserve(256);
    out += "{\"status\":\"";
    out += st.dropped_groups == 0 ? "ok" : "degraded";
    out += "\",";
    append_field(out, "lanes", static_cast<std::uint64_t>(fleet_.lane_count()));
    out += ',';
    append_field(out, "shards", static_cast<std::uint64_t>(fleet_.shard_count()));
    out += ',';
    append_field(out, "complete_epoch", complete);
    out += ',';
    append_field(out, "published_groups", st.published_groups);
    out += ',';
    append_field(out, "applied_groups", st.applied_groups);
    out += ',';
    append_field(out, "dropped_groups", st.dropped_groups);
    out += ',';
    append_field(out, "requests_served",
                 http_ ? http_->requests_served() : std::uint64_t{0});
    seal(out);
    return out;
}

std::string service::lane_window_json(std::size_t lane) const {
    const lane_window w = lane_window_snapshot(lane);
    std::string out;
    out.reserve(512);
    out += '{';
    append_field(out, "lane", static_cast<std::uint64_t>(lane));
    out += ',';
    append_field(out, "rows", w.rows);
    out += ',';
    append_field(out, "open_rows", static_cast<std::uint64_t>(w.open_rows));
    out += ',';
    append_field(out, "closed_windows", w.closed);
    out += ",\"window\":";
    if (!w.valid) {
        out += "null";
    } else {
        out += '{';
        append_field(out, "duration_s", w.metrics.duration_s);
        out += ',';
        append_field(out, "energy_kwh", w.metrics.energy_kwh);
        out += ',';
        append_field(out, "peak_power_w", w.metrics.peak_power_w);
        out += ',';
        append_field(out, "avg_rpm", w.metrics.avg_rpm);
        out += ',';
        append_field(out, "avg_cpu_temp_c", w.metrics.avg_cpu_temp_c);
        out += ',';
        append_field(out, "max_temp_c", w.metrics.max_temp_c);
        out += ',';
        append_field(out, "guard_trip_rows", w.guard_trip_rows);
        out += '}';
    }
    seal(out);
    return out;
}

std::uint16_t service::http_port() const {
    util::ensure(http_ != nullptr, "service: HTTP endpoint disabled");
    return http_->port();
}

std::uint64_t service::requests_served() const {
    return http_ ? http_->requests_served() : 0;
}

bool service::handle(const std::string& path, std::string& body) {
    // Strip any query string; the endpoints take none.
    std::string p = path;
    if (const std::size_t q = p.find('?'); q != std::string::npos) {
        p.resize(q);
    }
    if (p == "/metrics") {
        body = metrics_json();
        return true;
    }
    if (p == "/health") {
        body = health_json();
        return true;
    }
    constexpr const char* prefix = "/lanes/";
    constexpr const char* suffix = "/window";
    if (p.rfind(prefix, 0) == 0 && p.size() > 7 + 7 &&
        p.compare(p.size() - 7, 7, suffix) == 0) {
        const std::string digits = p.substr(7, p.size() - 14);
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos) {
            return false;
        }
        std::size_t lane = 0;
        for (const char c : digits) {
            if (lane > fleet_.lane_count()) {
                return false;  // Overflow guard; already out of range.
            }
            lane = lane * 10 + static_cast<std::size_t>(c - '0');
        }
        if (lane >= fleet_.lane_count()) {
            return false;
        }
        body = lane_window_json(lane);
        return true;
    }
    return false;
}

}  // namespace ltsc::telemetry_service
