// The unit of telemetry ingestion: one shard's rows for one fleet step.
//
// When a `sim::fleet` shard finishes a step it has appended exactly one
// lane-major row-group to its `batch_trace` arena.  The publisher copies
// that contiguous span — `lanes * (1 + trace_channel_count)` doubles —
// into a ring slot together with the fleet step epoch and a validity
// bitmask (ragged fleets: inert lanes leave their slot stale).  The
// epoch stamp is what makes snapshot-consistent reads possible
// downstream: the aggregator applies whole groups atomically and tracks
// the newest epoch applied per shard, so a reader can always tell which
// complete fleet step its answer reflects.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/simulation_trace.hpp"

namespace ltsc::telemetry_service {

struct row_group {
    std::uint64_t epoch = 0;   ///< Fleet step that produced the group.
    std::uint32_t shard = 0;   ///< Producing shard index.
    std::uint32_t lanes = 0;   ///< Lanes in the producing shard.
    /// Validity bitmask, one bit per shard-local lane: set when the lane
    /// recorded a row in this group.
    std::vector<std::uint64_t> active;
    /// Lane-major payload: `lanes` blocks of [t, 16 channels] doubles,
    /// a bitwise copy of the shard's arena row-group.
    std::vector<double> data;

    /// Doubles per lane block.
    static constexpr std::size_t lane_doubles = 1 + sim::trace_channel_count;

    [[nodiscard]] bool lane_valid(std::size_t lane) const {
        return (active[lane / 64] >> (lane % 64) & 1ULL) != 0;
    }

    [[nodiscard]] const double* lane_data(std::size_t lane) const {
        return data.data() + lane * lane_doubles;
    }
};

}  // namespace ltsc::telemetry_service
