// Structure-of-arrays lane state over a shared rc_network topology.
//
// An rc_batch steps N independent thermal "lanes" (servers) through one
// instruction stream: temperatures, powers, capacities, ambients, and
// edge conductances are stored lane-contiguous per node/edge, and the
// RK4 / forward-Euler substep loops run the rc_network batch kernels
// across all lanes at once.  Every lane follows the exact floating-point
// operation sequence of a scalar rc_network + transient_solver driven
// through the same schedule, so lanes are bitwise-identical to their
// scalar twins (the batch-equivalence suite pins this contract).
//
// Lanes may differ in conductances (per-server fan speeds), powers,
// capacities, and ambient temperature — only the topology (node/edge
// structure and flattened edge order) is shared.
#pragma once

#include <cstddef>
#include <vector>

#include "thermal/numerics.hpp"
#include "thermal/rc_network.hpp"
#include "thermal/transient_solver.hpp"
#include "util/matrix.hpp"
#include "util/units.hpp"

namespace ltsc::thermal {

/// N thermal lanes over one topology, stepped together.
class rc_batch {
public:
    /// Copies `topology`'s structure and seeds every lane with its
    /// current conductances, ambient, and all-ambient temperatures.
    /// Powers start at zero; capacities at the topology's values.
    /// `tier` picks the stepping numerics (thermal/numerics.hpp): the
    /// bitwise default keeps the scalar-twin contract above; relaxed
    /// steps through the vectorized kernels (rc_batch_kernels.hpp),
    /// which are deterministic and packing-invariant but only
    /// tolerance-equal to the scalar plant.  Everything except step()
    /// (settle, diagonals, save/restore) is tier-independent.
    rc_batch(const rc_network& topology, std::size_t lanes,
             integration_scheme scheme = integration_scheme::rk4,
             numerics_tier tier = numerics_tier::bitwise);

    [[nodiscard]] std::size_t lane_count() const { return lanes_; }
    [[nodiscard]] std::size_t node_count() const { return nodes_; }
    [[nodiscard]] const rc_network& topology() const { return topo_; }
    [[nodiscard]] integration_scheme scheme() const { return scheme_; }
    [[nodiscard]] numerics_tier tier() const { return tier_; }

    // --- per-lane state ----------------------------------------------------
    void set_power(node_id n, std::size_t lane, util::watts_t power) {
        util::ensure(n.index < nodes_ && lane < lanes_, "rc_batch::set_power: out of range");
        util::ensure(std::isfinite(power.value()), "rc_batch::set_power: non-finite power");
        powers_[n.index * lanes_ + lane] = power.value();
    }
    [[nodiscard]] util::watts_t power(node_id n, std::size_t lane) const {
        util::ensure(n.index < nodes_ && lane < lanes_, "rc_batch::power: out of range");
        return util::watts_t{powers_[n.index * lanes_ + lane]};
    }

    void set_temperature(node_id n, std::size_t lane, util::celsius_t t);
    [[nodiscard]] util::celsius_t temperature(node_id n, std::size_t lane) const {
        util::ensure(n.index < nodes_ && lane < lanes_, "rc_batch::temperature: out of range");
        return util::celsius_t{temps_[n.index * lanes_ + lane]};
    }

    void set_heat_capacity(node_id n, std::size_t lane, double c);
    [[nodiscard]] double heat_capacity(node_id n, std::size_t lane) const;

    void set_ambient(std::size_t lane, util::celsius_t t);
    [[nodiscard]] util::celsius_t ambient(std::size_t lane) const;

    /// Updates one lane's conductance of edge `e` (insertion-order id).
    /// Invalidates the lane's cached diagonal/stable-dt only when the
    /// value actually changes, mirroring rc_network::set_conductance.
    void set_conductance(edge_id e, std::size_t lane, double conductance_w_per_k);
    [[nodiscard]] double conductance(edge_id e, std::size_t lane) const;

    /// Conductance-matrix diagonal entry of node `n` in lane `lane`
    /// (bitwise-identical to cached_conductance_matrix()(n, n) of the
    /// lane's scalar twin).
    [[nodiscard]] double diagonal(node_id n, std::size_t lane) const;

    /// Largest stable forward-Euler substep of one lane (matches
    /// rc_network::stable_explicit_dt of the scalar twin).
    [[nodiscard]] double stable_dt(std::size_t lane) const;

    // --- stepping ----------------------------------------------------------
    /// Advances every lane by `dt` with the configured scheme.  Per lane
    /// this is bitwise-identical to transient_solver::step on the scalar
    /// twin; lanes with different stable substeps are masked out of the
    /// shared substep loop once their own substeps are done.
    ///
    /// `active` optionally masks whole lanes (ragged fleets): a lane with
    /// `active[l] == 0` takes zero substeps, so its state is left
    /// bitwise-untouched while the remaining lanes integrate exactly as
    /// they would without it.  `nullptr` (the default) steps every lane.
    void step(util::seconds_t dt, const unsigned char* active = nullptr);

    /// Solves one lane's steady state L T = P + G_amb T_amb and adopts it
    /// (bitwise-identical to thermal::settle on the scalar twin).  Throws
    /// numeric_error for singular systems.
    void settle_lane(std::size_t lane);

    /// Per-step finite-state scan (on by default in Debug builds, like
    /// transient_solver).
    void set_validate_steps(bool on) { validate_ = on; }
    [[nodiscard]] bool validate_steps() const { return validate_; }

    // --- lane state save/restore -------------------------------------------
    /// Writes one lane's complete dynamic state into `out` (same layout
    /// as rc_network::save_state over the shared topology), overwriting
    /// its contents.
    void save_lane_state(std::size_t lane, rc_state& out) const;

    /// Restores a state (saved from any lane of a same-topology batch,
    /// or from a scalar rc_network) into one lane.  Only conductances
    /// and capacities that actually change dirty the lane's cached
    /// diagonal/stable-dt, so reloading a lane at its current operating
    /// point is cache-neutral.
    void load_lane_state(std::size_t lane, const rc_state& state);

private:
    static constexpr bool default_validate() {
#ifdef NDEBUG
        return false;
#else
        return true;
#endif
    }

    void refresh_lane_cache(std::size_t lane) const;
    /// Fills the per-lane substep plan (count + substep size) for one
    /// macro step; masked lanes get zero substeps.  Returns the largest
    /// substep count and whether every stepped lane shares it.
    struct substep_plan {
        int max_sub = 0;
        bool uniform = true;
    };
    substep_plan plan_substeps(double dt, const unsigned char* active);
    void step_rk4(double dt, const unsigned char* active);
    void step_explicit(double dt, const unsigned char* active);
    void step_relaxed(bool rk4);

    rc_network topo_;
    std::size_t lanes_ = 0;
    std::size_t nodes_ = 0;
    integration_scheme scheme_;
    numerics_tier tier_ = numerics_tier::bitwise;
    bool validate_ = default_validate();

    // Lane-contiguous state: value(node i, lane l) = buf[i * lanes_ + l],
    // conductance(edge e, lane l) = edge_g_[e * lanes_ + l].
    std::vector<double> temps_;
    std::vector<double> powers_;
    std::vector<double> capacities_;
    std::vector<double> inv_caps_;  ///< 1/C, maintained for the relaxed kernels.
    std::vector<double> ambient_;   ///< [lane]
    std::vector<double> edge_g_;

    // Per-lane derived quantities (conductance diagonal, stable substep),
    // refreshed lazily when a lane's conductances or capacities change.
    mutable std::vector<double> diag_;       ///< [node][lane] layout.
    mutable std::vector<double> stable_dt_;  ///< [lane]
    mutable std::vector<char> lane_dirty_;   ///< [lane]

    // Persistent stepping scratch (node*lane each) so step() never
    // allocates after the first call.
    struct scratch {
        std::vector<double> t0;
        std::vector<double> tmp;
        std::vector<double> k1;
        std::vector<double> k2;
        std::vector<double> k3;
        std::vector<double> k4;
        std::vector<int> substeps;  ///< [lane]
        std::vector<double> h;      ///< [lane]
        std::vector<double> rhs;      ///< settle_lane right-hand side.
        util::matrix cond;            ///< settle_lane lane matrix.
        std::vector<double> relaxed;  ///< Relaxed-kernel block working set.
    };
    mutable scratch scratch_;
};

}  // namespace ltsc::thermal
