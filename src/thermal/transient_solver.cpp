#include "thermal/transient_solver.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ltsc::thermal {

transient_solver::transient_solver(integration_scheme scheme) : scheme_(scheme) {}

double transient_solver::stable_explicit_step(const rc_network& net) {
    return net.stable_explicit_dt();
}

void transient_solver::step(rc_network& net, util::seconds_t dt) {
    util::ensure(dt.value() > 0.0, "transient_solver::step: non-positive dt");
    switch (scheme_) {
        case integration_scheme::explicit_euler:
            step_explicit(net, dt.value());
            break;
        case integration_scheme::rk4:
            step_rk4(net, dt.value());
            break;
        case integration_scheme::implicit_euler:
            step_implicit(net, dt.value());
            break;
    }
    if (validate_) {
        for (double t : net.temperatures()) {
            util::ensure_numeric(std::isfinite(t),
                                 "transient_solver::step: non-finite temperature");
        }
    }
}

void transient_solver::advance(rc_network& net, util::seconds_t duration, util::seconds_t max_dt) {
    util::ensure(duration.value() >= 0.0, "transient_solver::advance: negative duration");
    util::ensure(max_dt.value() > 0.0, "transient_solver::advance: non-positive max_dt");
    double remaining = duration.value();
    while (remaining > 1e-12) {
        const double dt = std::min(remaining, max_dt.value());
        step(net, util::seconds_t{dt});
        remaining -= dt;
    }
}

void transient_solver::step_explicit(rc_network& net, double dt) {
    const double stable = net.stable_explicit_dt();
    const int substeps = std::max(1, static_cast<int>(std::ceil(dt / stable)));
    const double h = dt / substeps;
    std::vector<double>& temps = scratch_.t;
    temps = net.temperatures();
    std::vector<double>& dTdt = scratch_.k1;
    for (int s = 0; s < substeps; ++s) {
        net.derivatives_into(temps, dTdt);
        for (std::size_t i = 0; i < temps.size(); ++i) {
            temps[i] += h * dTdt[i];
        }
    }
    net.adopt_temperatures(temps);
}

void transient_solver::step_rk4(rc_network& net, double dt) {
    // Sub-step so the explicit scheme stays inside its stability region
    // even for stiff networks (RK4's real-axis stability limit is ~2.78
    // times Euler's; reusing the Euler bound is conservative).
    const double stable = net.stable_explicit_dt();
    const int substeps = std::max(1, static_cast<int>(std::ceil(dt / stable)));
    const double h = dt / substeps;
    std::vector<double>& t0 = scratch_.t;
    t0 = net.temperatures();
    const std::size_t n = t0.size();
    std::vector<double>& tmp = scratch_.tmp;
    std::vector<double>& k1 = scratch_.k1;
    std::vector<double>& k2 = scratch_.k2;
    std::vector<double>& k3 = scratch_.k3;
    std::vector<double>& k4 = scratch_.k4;
    tmp.resize(n);
    for (int s = 0; s < substeps; ++s) {
        net.derivatives_into(t0, k1);
        for (std::size_t i = 0; i < n; ++i) {
            tmp[i] = t0[i] + 0.5 * h * k1[i];
        }
        net.derivatives_into(tmp, k2);
        for (std::size_t i = 0; i < n; ++i) {
            tmp[i] = t0[i] + 0.5 * h * k2[i];
        }
        net.derivatives_into(tmp, k3);
        for (std::size_t i = 0; i < n; ++i) {
            tmp[i] = t0[i] + h * k3[i];
        }
        net.derivatives_into(tmp, k4);
        for (std::size_t i = 0; i < n; ++i) {
            t0[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }
    net.adopt_temperatures(t0);
}

void transient_solver::step_implicit(rc_network& net, double dt) {
    // (C/dt + L) T_new = C/dt * T_old + P + G_amb * T_amb
    const std::size_t n = net.node_count();
    if (!cache_.lu || cache_.revision != net.structure_revision() || cache_.dt != dt) {
        util::matrix a = net.cached_conductance_matrix();
        for (std::size_t i = 0; i < n; ++i) {
            a(i, i) += net.heat_capacity(node_id{i}) / dt;
        }
        cache_.lu = std::make_unique<util::lu_decomposition>(a);
        cache_.revision = net.structure_revision();
        cache_.dt = dt;
    }
    std::vector<double>& rhs = scratch_.rhs;
    net.source_vector_into(rhs);
    const std::vector<double>& temps = net.temperatures();
    for (std::size_t i = 0; i < n; ++i) {
        rhs[i] += net.heat_capacity(node_id{i}) / dt * temps[i];
    }
    cache_.lu->solve_into(rhs, scratch_.t);
    net.adopt_temperatures(scratch_.t);
}

}  // namespace ltsc::thermal
