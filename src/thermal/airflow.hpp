// Airflow bookkeeping: unit conversions and the thermal capacity of the
// air stream moving through the chassis.
//
// The server's airflow path is front-to-back: fans -> DIMM field -> CPU
// heatsinks -> exhaust.  Heat picked up by the air upstream raises the
// effective inlet temperature of downstream components ("preheat"), which
// is how a 350 W memory/CPU load couples DIMM and CPU temperatures.
#pragma once

#include "util/units.hpp"

namespace ltsc::thermal {

/// Cubic feet per minute -> cubic metres per second.
[[nodiscard]] double cfm_to_m3s(util::cfm_t q);

/// Thermal capacity rate (mass flow times specific heat) of an air stream,
/// in W/K.  Uses rho * cp of air at ~35 degC (1180 J/(m^3 K)).
[[nodiscard]] double stream_capacity_w_per_k(util::cfm_t q);

/// Temperature rise of an air stream that absorbs `heat` at flow `q`.
/// Throws when the flow is non-positive.
[[nodiscard]] util::celsius_t stream_temperature_rise(util::watts_t heat, util::cfm_t q);

}  // namespace ltsc::thermal
