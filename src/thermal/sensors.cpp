#include "thermal/sensors.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ltsc::thermal {

temperature_sensor::temperature_sensor(std::string name, std::function<util::celsius_t()> source,
                                       util::celsius_t bias, double noise_sigma, double quantum,
                                       util::pcg32& rng)
    : name_(std::move(name)),
      source_(std::move(source)),
      bias_c_(bias.value()),
      noise_sigma_(noise_sigma),
      quantum_(quantum),
      rng_(&rng) {
    util::ensure(static_cast<bool>(source_), "temperature_sensor: null source");
    util::ensure(noise_sigma >= 0.0, "temperature_sensor: negative noise");
    util::ensure(quantum >= 0.0, "temperature_sensor: negative quantum");
}

util::celsius_t temperature_sensor::read() {
    double v = source_().value() + bias_c_;
    if (noise_sigma_ > 0.0) {
        v += rng_->normal(0.0, noise_sigma_);
    }
    if (quantum_ > 0.0) {
        v = std::round(v / quantum_) * quantum_;
    }
    return util::celsius_t{v};
}

server_sensor_suite make_server_sensors(
    const std::function<util::celsius_t(std::size_t)>& cpu_temp,
    const std::function<util::celsius_t()>& dimm_temp, std::size_t dimm_count, util::pcg32& rng,
    double noise_sigma, double quantum) {
    util::ensure(static_cast<bool>(cpu_temp) && static_cast<bool>(dimm_temp),
                 "make_server_sensors: null source");
    server_sensor_suite suite;
    for (std::size_t s = 0; s < 2; ++s) {
        for (std::size_t k = 0; k < 2; ++k) {
            const double bias = (k == 0) ? -0.8 : 0.8;  // placement spread across the die
            const std::string name =
                "cpu" + std::to_string(s) + "_temp_" + (k == 0 ? "a" : "b");
            suite.cpu.emplace_back(
                name, [cpu_temp, s] { return cpu_temp(s); }, util::celsius_t{bias}, noise_sigma,
                quantum, rng);
        }
    }
    for (std::size_t d = 0; d < dimm_count; ++d) {
        // Positional gradient: modules deeper in the airflow run warmer.
        const double frac = dimm_count > 1
                                ? static_cast<double>(d) / static_cast<double>(dimm_count - 1)
                                : 0.0;
        const double bias = -1.5 + 3.0 * frac;
        suite.dimm.emplace_back(
            "dimm" + std::to_string(d) + "_temp", dimm_temp, util::celsius_t{bias}, noise_sigma,
            quantum, rng);
    }
    return suite;
}

}  // namespace ltsc::thermal
