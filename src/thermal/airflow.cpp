#include "thermal/airflow.hpp"

#include "util/error.hpp"

namespace ltsc::thermal {

namespace {
constexpr double m3s_per_cfm = 4.719474e-4;
constexpr double rho_cp_air = 1180.0;  // J/(m^3 K) at ~35 degC
}  // namespace

double cfm_to_m3s(util::cfm_t q) { return q.value() * m3s_per_cfm; }

double stream_capacity_w_per_k(util::cfm_t q) { return cfm_to_m3s(q) * rho_cp_air; }

util::celsius_t stream_temperature_rise(util::watts_t heat, util::cfm_t q) {
    util::ensure(q.value() > 0.0, "stream_temperature_rise: non-positive airflow");
    return util::celsius_t{heat.value() / stream_capacity_w_per_k(q)};
}

}  // namespace ltsc::thermal
