#include "thermal/server_thermal_model.hpp"

#include <cmath>

#include "thermal/airflow.hpp"
#include "thermal/steady_state.hpp"
#include "util/error.hpp"

namespace ltsc::thermal {

server_thermal_model::server_thermal_model(const server_thermal_config& config,
                                           integration_scheme scheme)
    : config_(config), net_(util::celsius_t{config.ambient_c}), solver_(scheme) {
    util::ensure(config.fan_zones >= 1, "server_thermal_model: need at least one fan zone");
    util::ensure(config.r_junction_sink > 0.0, "server_thermal_model: bad junction resistance");
    util::ensure(config.zone_mixing >= 0.0 && config.zone_mixing <= 1.0,
                 "server_thermal_model: zone_mixing out of [0, 1]");
    util::ensure(config.ref_airflow_cfm > 0.0, "server_thermal_model: bad reference airflow");

    for (std::size_t s = 0; s < socket_count(); ++s) {
        die_[s] = net_.add_node("cpu" + std::to_string(s) + "_die", config.c_die);
        sink_[s] = net_.add_node("cpu" + std::to_string(s) + "_sink", config.c_sink);
        die_sink_edge_[s] = net_.add_edge(die_[s], sink_[s], 1.0 / config.r_junction_sink);
        sink_amb_edge_[s] = net_.add_ambient_edge(sink_[s], config.g_sink_ref);
    }
    dimm_ = net_.add_node("dimm_bank", config.c_dimm);
    dimm_amb_edge_ = net_.add_ambient_edge(dimm_, config.g_dimm_ref);

    // Until told otherwise, assume the reference airflow split evenly.
    zone_airflow_cfm_.assign(config.fan_zones, config.ref_airflow_cfm / config.fan_zones);
    update_conductances();
    update_preheat();
}

double server_thermal_model::total_airflow_cfm() const {
    double acc = 0.0;
    for (double q : zone_airflow_cfm_) {
        acc += q;
    }
    return acc;
}

double server_thermal_model::effective_airflow_cfm(std::size_t component_zone) const {
    // A component in zone z sees mostly its own zone's flow plus a mixed
    // share of the whole plenum.  With equal zone flows this reduces to the
    // total airflow, which is what the calibration anchors use.
    const double total = total_airflow_cfm();
    const double zones = static_cast<double>(zone_airflow_cfm_.size());
    if (component_zone >= zone_airflow_cfm_.size()) {
        return total;
    }
    const double own = zone_airflow_cfm_[component_zone] * zones;
    return (1.0 - config_.zone_mixing) * own + config_.zone_mixing * total;
}

void server_thermal_model::update_conductances() {
    const double q_ref = config_.ref_airflow_cfm;
    for (std::size_t s = 0; s < socket_count(); ++s) {
        const double q = effective_airflow_cfm(s);
        const double scale = std::pow(q / q_ref, config_.airflow_exponent);
        sink_g_w_per_k_[s] = config_.g_sink_ref * scale;
        net_.set_conductance(sink_amb_edge_[s], sink_g_w_per_k_[s]);
    }
    const double q_dimm = total_airflow_cfm();
    const double scale = std::pow(q_dimm / q_ref, config_.airflow_exponent);
    net_.set_conductance(dimm_amb_edge_, config_.g_dimm_ref * scale);
    stream_capacity_w_per_k_ =
        q_dimm > 0.0 ? stream_capacity_w_per_k(util::cfm_t{q_dimm}) : 0.0;
}

void server_thermal_model::update_preheat() {
    // Heat the air picks up from the DIMM field raises the effective inlet
    // temperature of the CPU heatsinks.  An edge to ambient at conductance
    // G with inlet offset dT is equivalent to the plain ambient edge plus a
    // power injection of G * dT at the node.  The sink conductances and the
    // airstream capacity only change with the airflow, so this per-step
    // update reads the values cached by update_conductances().
    const double q_total = total_airflow_cfm();
    double preheat_c = 0.0;
    if (q_total > 0.0) {
        const double dimm_to_air =
            net_.cached_conductance_matrix()(dimm_.index, dimm_.index) *
            (net_.temperature(dimm_).value() - net_.ambient().value());
        const double picked_up = std::max(0.0, dimm_to_air);
        preheat_c = picked_up / stream_capacity_w_per_k_;
    }
    for (std::size_t s = 0; s < socket_count(); ++s) {
        net_.set_power(sink_[s], util::watts_t{sink_g_w_per_k_[s] * preheat_c});
        net_.set_power(die_[s], util::watts_t{cpu_heat_w_[s]});
    }
    net_.set_power(dimm_, util::watts_t{dimm_heat_w_});
}

void server_thermal_model::set_zone_airflow(const std::vector<util::cfm_t>& per_zone) {
    util::ensure(per_zone.size() == zone_airflow_cfm_.size(),
                 "server_thermal_model::set_zone_airflow: zone count mismatch");
    for (std::size_t i = 0; i < per_zone.size(); ++i) {
        util::ensure(per_zone[i].value() >= 0.0,
                     "server_thermal_model::set_zone_airflow: negative airflow");
        zone_airflow_cfm_[i] = per_zone[i].value();
    }
    util::ensure(total_airflow_cfm() > 0.0,
                 "server_thermal_model::set_zone_airflow: zero total airflow");
    update_conductances();
}

void server_thermal_model::set_cpu_heat(std::size_t s, util::watts_t w) {
    util::ensure(s < socket_count(), "server_thermal_model::set_cpu_heat: bad socket");
    util::ensure(w.value() >= 0.0, "server_thermal_model::set_cpu_heat: negative heat");
    cpu_heat_w_[s] = w.value();
}

void server_thermal_model::set_dimm_heat(util::watts_t w) {
    util::ensure(w.value() >= 0.0, "server_thermal_model::set_dimm_heat: negative heat");
    dimm_heat_w_ = w.value();
}

void server_thermal_model::set_other_heat(util::watts_t w) {
    util::ensure(w.value() >= 0.0, "server_thermal_model::set_other_heat: negative heat");
    other_heat_w_ = w.value();
}

void server_thermal_model::set_ambient(util::celsius_t t) { net_.set_ambient(t); }

void server_thermal_model::step(util::seconds_t dt) {
    update_preheat();
    solver_.step(net_, dt);
}

void server_thermal_model::settle_to_steady_state() {
    // Preheat depends on the DIMM temperature, which the steady solve
    // changes; iterate the (fast-converging) fixed point a few times.
    for (int i = 0; i < 8; ++i) {
        update_preheat();
        settle(net_);
    }
}

void server_thermal_model::reset() {
    net_.reset_temperatures();
    update_preheat();
}

util::celsius_t server_thermal_model::cpu_inlet_temp() const {
    const double q_total = total_airflow_cfm();
    if (q_total <= 0.0) {
        return net_.ambient();
    }
    const double dimm_to_air = config_.g_dimm_ref *
                               std::pow(q_total / config_.ref_airflow_cfm, config_.airflow_exponent) *
                               std::max(0.0, dimm_temp().value() - net_.ambient().value());
    return util::celsius_t{net_.ambient().value() +
                           dimm_to_air / stream_capacity_w_per_k(util::cfm_t{q_total})};
}

util::celsius_t server_thermal_model::exhaust_temp() const {
    const double q_total = total_airflow_cfm();
    if (q_total <= 0.0) {
        return net_.ambient();
    }
    // All heat convected off the monitored components plus the downstream
    // "other" dissipation ends up in the exhaust stream.
    double into_air = other_heat_w_;
    into_air += config_.g_dimm_ref *
                std::pow(q_total / config_.ref_airflow_cfm, config_.airflow_exponent) *
                std::max(0.0, dimm_temp().value() - net_.ambient().value());
    for (std::size_t s = 0; s < socket_count(); ++s) {
        const double g = config_.g_sink_ref *
                         std::pow(effective_airflow_cfm(s) / config_.ref_airflow_cfm,
                                  config_.airflow_exponent);
        into_air += g * std::max(0.0, cpu_sink_temp(s).value() - cpu_inlet_temp().value());
    }
    return util::celsius_t{net_.ambient().value() +
                           into_air / stream_capacity_w_per_k(util::cfm_t{q_total})};
}

}  // namespace ltsc::thermal
