#include "thermal/rc_batch.hpp"

#include <algorithm>
#include <cmath>

#include "thermal/rc_batch_kernels.hpp"
#include "util/error.hpp"

namespace ltsc::thermal {

rc_batch::rc_batch(const rc_network& topology, std::size_t lanes, integration_scheme scheme,
                   numerics_tier tier)
    : topo_(topology), lanes_(lanes), nodes_(topology.node_count()), scheme_(scheme),
      tier_(tier) {
    util::ensure(lanes_ > 0, "rc_batch: need at least one lane");
    util::ensure(nodes_ > 0, "rc_batch: empty topology");
    util::ensure(scheme_ != integration_scheme::implicit_euler,
                 "rc_batch: implicit scheme not supported (per-lane factorizations)");
    temps_.resize(nodes_ * lanes_);
    powers_.assign(nodes_ * lanes_, 0.0);
    capacities_.resize(nodes_ * lanes_);
    inv_caps_.resize(nodes_ * lanes_);
    ambient_.assign(lanes_, topology.ambient().value());
    for (std::size_t i = 0; i < nodes_; ++i) {
        const double t = topology.temperature(node_id{i}).value();
        const double c = topology.heat_capacity(node_id{i});
        for (std::size_t l = 0; l < lanes_; ++l) {
            temps_[i * lanes_ + l] = t;
            capacities_[i * lanes_ + l] = c;
            inv_caps_[i * lanes_ + l] = 1.0 / c;
        }
    }
    edge_g_.resize(topology.edge_count() * lanes_);
    for (std::size_t e = 0; e < topology.edge_count(); ++e) {
        const double g = topology.conductance(edge_id{e});
        for (std::size_t l = 0; l < lanes_; ++l) {
            edge_g_[e * lanes_ + l] = g;
        }
    }
    diag_.assign(nodes_ * lanes_, 0.0);
    stable_dt_.assign(lanes_, 0.0);
    lane_dirty_.assign(lanes_, 1);
}

void rc_batch::set_temperature(node_id n, std::size_t lane, util::celsius_t t) {
    util::ensure(n.index < nodes_ && lane < lanes_, "rc_batch::set_temperature: out of range");
    util::ensure(std::isfinite(t.value()), "rc_batch::set_temperature: non-finite temperature");
    temps_[n.index * lanes_ + lane] = t.value();
}

void rc_batch::set_heat_capacity(node_id n, std::size_t lane, double c) {
    util::ensure(n.index < nodes_ && lane < lanes_, "rc_batch::set_heat_capacity: out of range");
    util::ensure(c > 0.0, "rc_batch::set_heat_capacity: non-positive heat capacity");
    if (capacities_[n.index * lanes_ + lane] != c) {
        capacities_[n.index * lanes_ + lane] = c;
        inv_caps_[n.index * lanes_ + lane] = 1.0 / c;
        lane_dirty_[lane] = 1;
    }
}

double rc_batch::heat_capacity(node_id n, std::size_t lane) const {
    util::ensure(n.index < nodes_ && lane < lanes_, "rc_batch::heat_capacity: out of range");
    return capacities_[n.index * lanes_ + lane];
}

void rc_batch::set_ambient(std::size_t lane, util::celsius_t t) {
    util::ensure(lane < lanes_, "rc_batch::set_ambient: lane out of range");
    util::ensure(std::isfinite(t.value()), "rc_batch::set_ambient: non-finite ambient");
    ambient_[lane] = t.value();
}

util::celsius_t rc_batch::ambient(std::size_t lane) const {
    util::ensure(lane < lanes_, "rc_batch::ambient: lane out of range");
    return util::celsius_t{ambient_[lane]};
}

void rc_batch::set_conductance(edge_id e, std::size_t lane, double conductance_w_per_k) {
    util::ensure(e.index < topo_.edge_count() && lane < lanes_,
                 "rc_batch::set_conductance: out of range");
    util::ensure(conductance_w_per_k >= 0.0, "rc_batch::set_conductance: negative conductance");
    if (edge_g_[e.index * lanes_ + lane] != conductance_w_per_k) {
        edge_g_[e.index * lanes_ + lane] = conductance_w_per_k;
        lane_dirty_[lane] = 1;
    }
}

double rc_batch::conductance(edge_id e, std::size_t lane) const {
    util::ensure(e.index < topo_.edge_count() && lane < lanes_,
                 "rc_batch::conductance: out of range");
    return edge_g_[e.index * lanes_ + lane];
}

void rc_batch::save_lane_state(std::size_t lane, rc_state& out) const {
    util::ensure(lane < lanes_, "rc_batch::save_lane_state: lane out of range");
    out.temps.resize(nodes_);
    out.powers.resize(nodes_);
    for (std::size_t i = 0; i < nodes_; ++i) {
        out.temps[i] = temps_[i * lanes_ + lane];
        out.powers[i] = powers_[i * lanes_ + lane];
    }
    const std::size_t edges = topo_.edge_count();
    out.edge_g.resize(edges);
    for (std::size_t e = 0; e < edges; ++e) {
        out.edge_g[e] = edge_g_[e * lanes_ + lane];
    }
    out.ambient_c = ambient_[lane];
}

void rc_batch::load_lane_state(std::size_t lane, const rc_state& state) {
    util::ensure(lane < lanes_, "rc_batch::load_lane_state: lane out of range");
    util::ensure(state.temps.size() == nodes_ && state.powers.size() == nodes_ &&
                     state.edge_g.size() == topo_.edge_count(),
                 "rc_batch::load_lane_state: state does not match topology");
    for (std::size_t i = 0; i < nodes_; ++i) {
        set_temperature(node_id{i}, lane, util::celsius_t{state.temps[i]});
        set_power(node_id{i}, lane, util::watts_t{state.powers[i]});
    }
    for (std::size_t e = 0; e < state.edge_g.size(); ++e) {
        set_conductance(edge_id{e}, lane, state.edge_g[e]);
    }
    set_ambient(lane, util::celsius_t{state.ambient_c});
}

void rc_batch::refresh_lane_cache(std::size_t lane) const {
    if (!lane_dirty_[lane]) {
        return;
    }
    scratch_.rhs.resize(nodes_);
    topo_.lane_diagonal_into(lanes_, lane, edge_g_.data(), scratch_.rhs.data());
    for (std::size_t i = 0; i < nodes_; ++i) {
        diag_[i * lanes_ + lane] = scratch_.rhs[i];
    }
    // Same stability bound as rc_network::assembled(): 0.9 * 2 * min C/L_ii.
    double min_ratio = 1e30;
    for (std::size_t i = 0; i < nodes_; ++i) {
        const double g = scratch_.rhs[i];
        if (g > 0.0) {
            min_ratio = std::min(min_ratio, capacities_[i * lanes_ + lane] / g);
        }
    }
    stable_dt_[lane] = 0.9 * 2.0 * min_ratio;
    lane_dirty_[lane] = 0;
}

double rc_batch::diagonal(node_id n, std::size_t lane) const {
    util::ensure(n.index < nodes_ && lane < lanes_, "rc_batch::diagonal: out of range");
    refresh_lane_cache(lane);
    return diag_[n.index * lanes_ + lane];
}

double rc_batch::stable_dt(std::size_t lane) const {
    util::ensure(lane < lanes_, "rc_batch::stable_dt: lane out of range");
    refresh_lane_cache(lane);
    return stable_dt_[lane];
}

void rc_batch::step(util::seconds_t dt, const unsigned char* active) {
    util::ensure(dt.value() > 0.0, "rc_batch::step: non-positive dt");
    switch (scheme_) {
        case integration_scheme::explicit_euler:
            step_explicit(dt.value(), active);
            break;
        case integration_scheme::rk4:
            step_rk4(dt.value(), active);
            break;
        case integration_scheme::implicit_euler:
            util::ensure(false, "rc_batch::step: implicit scheme not supported");
            break;
    }
    if (validate_) {
        for (double t : temps_) {
            util::ensure_numeric(std::isfinite(t), "rc_batch::step: non-finite temperature");
        }
    }
}

rc_batch::substep_plan rc_batch::plan_substeps(double dt, const unsigned char* active) {
    // Per-lane substep counts replicate transient_solver::step_rk4: each
    // lane sub-steps against its own stability bound, so a lane's update
    // sequence is bitwise-identical to its scalar twin.  Lanes with fewer
    // substeps — and masked-out lanes, which take zero — are skipped in
    // the tail of the shared loop.
    scratch_.substeps.resize(lanes_);
    scratch_.h.resize(lanes_);
    substep_plan plan;
    int ref_sub = -1;
    for (std::size_t l = 0; l < lanes_; ++l) {
        if (active != nullptr && active[l] == 0) {
            scratch_.substeps[l] = 0;
            scratch_.h[l] = 0.0;
            plan.uniform = false;
            continue;
        }
        refresh_lane_cache(l);
        const int sub = std::max(1, static_cast<int>(std::ceil(dt / stable_dt_[l])));
        scratch_.substeps[l] = sub;
        scratch_.h[l] = dt / sub;
        plan.max_sub = std::max(plan.max_sub, sub);
        if (ref_sub < 0) {
            ref_sub = sub;
        }
        plan.uniform = plan.uniform && sub == ref_sub;
    }
    return plan;
}

void rc_batch::step_relaxed(bool rk4) {
    // plan_substeps already filled scratch_.substeps / scratch_.h; the
    // relaxed kernels derive block-level masking from the counts.
    relaxed::step_args a;
    a.topo = &topo_;
    a.lanes = lanes_;
    a.nodes = nodes_;
    a.temps = temps_.data();
    a.powers = powers_.data();
    a.inv_caps = inv_caps_.data();
    a.ambient = ambient_.data();
    a.edge_g = edge_g_.data();
    a.h = scratch_.h.data();
    a.substeps = scratch_.substeps.data();
    scratch_.relaxed.resize(relaxed::scratch_doubles(nodes_, topo_.flat_internal_edges().size(),
                                                     topo_.flat_ambient_edges().size()));
    a.scratch = scratch_.relaxed.data();
    if (rk4) {
        relaxed::step_rk4(a);
    } else {
        relaxed::step_euler(a);
    }
}

void rc_batch::step_rk4(double dt, const unsigned char* active) {
    const substep_plan plan = plan_substeps(dt, active);
    if (tier_ == numerics_tier::relaxed) {
        step_relaxed(true);
        return;
    }
    const int max_sub = plan.max_sub;
    const bool uniform = plan.uniform;
    const std::size_t total = nodes_ * lanes_;
    std::vector<double>& t0 = scratch_.t0;
    t0 = temps_;
    scratch_.tmp.resize(total);
    scratch_.k1.resize(total);
    scratch_.k2.resize(total);
    scratch_.k3.resize(total);
    scratch_.k4.resize(total);
    double* tmp = scratch_.tmp.data();
    double* k1 = scratch_.k1.data();
    double* k2 = scratch_.k2.data();
    double* k3 = scratch_.k3.data();
    double* k4 = scratch_.k4.data();
    const double* h = scratch_.h.data();
    const int* sub = scratch_.substeps.data();

    const auto derivs = [&](const double* at, double* out) {
        topo_.batch_derivatives_into(lanes_, at, powers_.data(), capacities_.data(),
                                     ambient_.data(), edge_g_.data(), out);
    };
    // In the common case every lane takes the same substep count and the
    // mask is compiled away; heterogeneous lanes branch per element, which
    // only skips lanes whose own substeps are already done.
    for (int s = 0; s < max_sub; ++s) {
        const auto stage = [&](const double* k, double factor) {
            for (std::size_t i = 0; i < nodes_; ++i) {
                const std::size_t base = i * lanes_;
                for (std::size_t l = 0; l < lanes_; ++l) {
                    if (uniform || s < sub[l]) {
                        tmp[base + l] = t0[base + l] + factor * h[l] * k[base + l];
                    }
                }
            }
        };
        derivs(t0.data(), k1);
        stage(k1, 0.5);
        derivs(tmp, k2);
        stage(k2, 0.5);
        derivs(tmp, k3);
        stage(k3, 1.0);
        derivs(tmp, k4);
        for (std::size_t i = 0; i < nodes_; ++i) {
            const std::size_t base = i * lanes_;
            for (std::size_t l = 0; l < lanes_; ++l) {
                if (uniform || s < sub[l]) {
                    t0[base + l] += h[l] / 6.0 *
                                    (k1[base + l] + 2.0 * k2[base + l] + 2.0 * k3[base + l] +
                                     k4[base + l]);
                }
            }
        }
    }
    temps_.swap(t0);
}

void rc_batch::step_explicit(double dt, const unsigned char* active) {
    const substep_plan plan = plan_substeps(dt, active);
    if (tier_ == numerics_tier::relaxed) {
        step_relaxed(false);
        return;
    }
    const int max_sub = plan.max_sub;
    const bool uniform = plan.uniform;
    const std::size_t total = nodes_ * lanes_;
    std::vector<double>& t = scratch_.t0;
    t = temps_;
    scratch_.k1.resize(total);
    double* dTdt = scratch_.k1.data();
    const double* h = scratch_.h.data();
    const int* sub = scratch_.substeps.data();
    for (int s = 0; s < max_sub; ++s) {
        topo_.batch_derivatives_into(lanes_, t.data(), powers_.data(), capacities_.data(),
                                     ambient_.data(), edge_g_.data(), dTdt);
        if (uniform) {
            for (std::size_t i = 0; i < nodes_; ++i) {
                const std::size_t base = i * lanes_;
                for (std::size_t l = 0; l < lanes_; ++l) {
                    t[base + l] += h[l] * dTdt[base + l];
                }
            }
        } else {
            for (std::size_t i = 0; i < nodes_; ++i) {
                const std::size_t base = i * lanes_;
                for (std::size_t l = 0; l < lanes_; ++l) {
                    if (s < sub[l]) {
                        t[base + l] += h[l] * dTdt[base + l];
                    }
                }
            }
        }
    }
    temps_.swap(t);
}

void rc_batch::settle_lane(std::size_t lane) {
    util::ensure(lane < lanes_, "rc_batch::settle_lane: lane out of range");
    topo_.lane_conductance_matrix_into(lanes_, lane, edge_g_.data(), scratch_.cond);
    const util::lu_decomposition lu(scratch_.cond);
    topo_.lane_source_vector_into(lanes_, lane, powers_.data(), ambient_[lane], edge_g_.data(),
                                  scratch_.rhs);
    const std::vector<double> x = lu.solve(scratch_.rhs);
    for (std::size_t i = 0; i < nodes_; ++i) {
        util::ensure(std::isfinite(x[i]), "rc_batch::settle_lane: non-finite temperature");
        temps_[i * lanes_ + lane] = x[i];
    }
}

}  // namespace ltsc::thermal
