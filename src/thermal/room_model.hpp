// Machine-room cooling model (CRAC) — the facility-level context of the
// paper's introduction, where server heat must be removed by room air
// conditioning whose efficiency depends on the supply temperature.
//
// The chiller efficiency follows the widely used HP Labs water-chilled
// CRAC characterization (Moore et al., "Making Scheduling 'Cool'",
// USENIX'05):
//
//   COP(T_supply) = 0.0068 T^2 + 0.0008 T + 0.458     (T in degC)
//
// Raising the supply temperature improves the CRAC's COP but raises every
// server's ambient — and with it, leakage and fan effort.  Combining this
// model with the server simulator exposes exactly the facility-level
// tradeoff the paper's leakage analysis feeds into.
#pragma once

#include "util/units.hpp"

namespace ltsc::thermal {

/// Quadratic COP curve, COP(T) = a T^2 + b T + c.
struct cop_curve {
    double a = 0.0068;
    double b = 0.0008;
    double c = 0.458;

    /// The HP Labs water-chilled CRAC characterization.
    static cop_curve hp_labs() { return cop_curve{}; }
};

/// Facility power accounting for one CRAC-cooled machine room.
struct facility_power {
    util::watts_t it{0.0};       ///< IT equipment draw (= heat to remove).
    util::watts_t cooling{0.0};  ///< CRAC compressor power.
    util::watts_t total{0.0};    ///< IT + cooling.
    double pue = 1.0;            ///< total / IT (cooling-only PUE).
};

/// Steady-state CRAC model.
class crac_model {
public:
    crac_model() : crac_model(cop_curve::hp_labs()) {}
    explicit crac_model(const cop_curve& curve);

    /// Coefficient of performance at the given supply temperature.  Throws
    /// when the curve evaluates non-positive (physically meaningless).
    [[nodiscard]] double cop(util::celsius_t supply) const;

    /// Compressor power needed to remove `it_heat` at the given supply
    /// temperature: P_cool = Q / COP(T).
    [[nodiscard]] util::watts_t cooling_power(util::watts_t it_heat,
                                              util::celsius_t supply) const;

    /// Full accounting for a room drawing `it_power` with supply at
    /// `supply` (all IT power becomes heat).
    [[nodiscard]] facility_power facility(util::watts_t it_power, util::celsius_t supply) const;

    [[nodiscard]] const cop_curve& curve() const { return curve_; }

private:
    cop_curve curve_;
};

}  // namespace ltsc::thermal
