// Relaxed-tier batch integration kernels (see thermal/numerics.hpp).
//
// These step N lanes through the RK4 / forward-Euler substep loops with
// explicit SIMD widths over lanes.  The implementation lives in its own
// translation unit (rc_batch_simd.cpp) so the build can hand that one
// file wider arch flags (-march=native) than the rest of the library
// while the interface stays plain `double*`.
//
// Numerics: lane arithmetic is elementwise (no cross-lane reductions),
// every operation is IEEE correctly rounded, and the scalar tail uses
// the exact same op sequence as the vector body (util/simd.hpp pack
// contract), so results are deterministic for a given build and
// invariant under lane packing, batch size, shard assignment, and
// thread count.  They are NOT bitwise-equal to the bitwise tier:
// the kernels use reciprocal-multiply instead of per-node division,
// fused multiply-adds where the ISA has them, and fused stage updates.
#pragma once

#include <cstddef>

namespace ltsc::thermal {

class rc_network;

namespace relaxed {

/// Native vector width (doubles per pack) the kernel TU was built with.
[[nodiscard]] std::size_t simd_width();

/// Whether the kernel TU fuses multiply-adds (single rounding).
[[nodiscard]] bool fused_madd();

/// Scratch doubles step_rk4/step_euler need for a topology of
/// `nodes` nodes and the given flattened edge counts.
[[nodiscard]] std::size_t scratch_doubles(std::size_t nodes, std::size_t internal_edges,
                                          std::size_t ambient_edges);

/// Lane-contiguous batch state, rc_batch layout: value of node i,
/// lane l at `buf[i * lanes + l]`; conductance of insertion-order edge
/// e at `edge_g[e * lanes + l]`.
struct step_args {
    const rc_network* topo = nullptr;  ///< Shared topology (flattened edges).
    std::size_t lanes = 0;
    std::size_t nodes = 0;
    double* temps = nullptr;           ///< [node][lane], updated in place.
    const double* powers = nullptr;    ///< [node][lane]
    const double* inv_caps = nullptr;  ///< [node][lane] reciprocal heat capacities.
    const double* ambient = nullptr;   ///< [lane]
    const double* edge_g = nullptr;    ///< [edge][lane]
    const double* h = nullptr;         ///< [lane] substep size.
    const int* substeps = nullptr;     ///< [lane] substep count; 0 = masked lane.
    double* scratch = nullptr;         ///< >= scratch_doubles(...) doubles.
};

/// RK4 substep loop; a lane with substeps[l] == 0 is left untouched.
void step_rk4(const step_args& a);

/// Forward-Euler substep loop; same masking contract.
void step_euler(const step_args& a);

}  // namespace relaxed
}  // namespace ltsc::thermal
