#include "thermal/room_model.hpp"

#include "util/error.hpp"

namespace ltsc::thermal {

crac_model::crac_model(const cop_curve& curve) : curve_(curve) {}

double crac_model::cop(util::celsius_t supply) const {
    const double t = supply.value();
    const double value = curve_.a * t * t + curve_.b * t + curve_.c;
    util::ensure_numeric(value > 0.0, "crac_model: non-positive COP at this supply temperature");
    return value;
}

util::watts_t crac_model::cooling_power(util::watts_t it_heat, util::celsius_t supply) const {
    util::ensure(it_heat.value() >= 0.0, "crac_model: negative heat load");
    return util::watts_t{it_heat.value() / cop(supply)};
}

facility_power crac_model::facility(util::watts_t it_power, util::celsius_t supply) const {
    util::ensure(it_power.value() >= 0.0, "crac_model: negative IT power");
    facility_power out;
    out.it = it_power;
    out.cooling = cooling_power(it_power, supply);
    out.total = out.it + out.cooling;
    out.pue = it_power.value() > 0.0 ? out.total.value() / it_power.value() : 1.0;
    return out;
}

}  // namespace ltsc::thermal
