// Lumped RC thermal network (HotSpot-style compact model).
//
// Nodes carry a heat capacity and a temperature state; edges carry thermal
// conductance between nodes or from a node to the fixed-temperature ambient.
// Power sources inject heat at nodes.  The network evolves by
//
//   C_i dT_i/dt = sum_j G_ij (T_j - T_i) + G_amb_i (T_amb - T_i) + P_i
//
// Conductances may vary at run time (fan-speed-dependent convection), which
// is the mechanism behind the paper's fan-speed-dependent time constants.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/matrix.hpp"
#include "util/units.hpp"

namespace ltsc::thermal {

/// Opaque node handle.
struct node_id {
    std::size_t index = 0;
    friend bool operator==(node_id a, node_id b) { return a.index == b.index; }
    friend bool operator!=(node_id a, node_id b) { return !(a == b); }
};

/// Opaque edge handle (also used for node-to-ambient couplings).
struct edge_id {
    std::size_t index = 0;
    friend bool operator==(edge_id a, edge_id b) { return a.index == b.index; }
    friend bool operator!=(edge_id a, edge_id b) { return !(a == b); }
};

/// Lumped thermal network with mutable conductances and power injections.
class rc_network {
public:
    /// Creates an empty network with the given ambient temperature.
    explicit rc_network(util::celsius_t ambient);

    /// Adds a node with the given heat capacity [J/K] (> 0), initialized to
    /// ambient temperature.  Returns its handle.
    node_id add_node(std::string name, double heat_capacity_j_per_k);

    /// Adds a conductive edge between two distinct nodes [W/K] (>= 0).
    edge_id add_edge(node_id a, node_id b, double conductance_w_per_k);

    /// Adds a coupling from a node to the ambient [W/K] (>= 0).
    edge_id add_ambient_edge(node_id n, double conductance_w_per_k);

    /// Updates an edge conductance (e.g. convection at a new fan speed).
    void set_conductance(edge_id e, double conductance_w_per_k);

    /// Sets the heat injected at a node [W]; may be negative (a sink).
    void set_power(node_id n, util::watts_t power);

    /// Changes the ambient temperature.
    void set_ambient(util::celsius_t ambient);

    /// Overwrites one node's temperature state.
    void set_temperature(node_id n, util::celsius_t t);

    /// Resets every node to the given temperature (defaults to ambient).
    void reset_temperatures();
    void reset_temperatures(util::celsius_t t);

    [[nodiscard]] std::size_t node_count() const { return capacities_.size(); }
    [[nodiscard]] util::celsius_t ambient() const { return util::celsius_t{ambient_}; }
    [[nodiscard]] util::celsius_t temperature(node_id n) const;
    [[nodiscard]] util::watts_t power(node_id n) const;
    [[nodiscard]] const std::string& name(node_id n) const;
    [[nodiscard]] double heat_capacity(node_id n) const;

    /// All node temperatures in node order [degC].
    [[nodiscard]] const std::vector<double>& temperatures() const { return temps_; }

    /// Overwrites all node temperatures (size must match node_count()).
    void set_temperatures(const std::vector<double>& temps);

    /// Time derivatives dT/dt [K/s] at the given state vector.
    [[nodiscard]] std::vector<double> derivatives(const std::vector<double>& temps) const;

    /// Conductance (Laplacian + ambient) matrix L such that the heat-flow
    /// balance is L * T = P + G_amb * T_amb at steady state.
    [[nodiscard]] util::matrix conductance_matrix() const;

    /// Right-hand side P + G_amb * T_amb of the steady-state system.
    [[nodiscard]] std::vector<double> source_vector() const;

    /// Monotonically increasing revision counter bumped whenever topology
    /// or a conductance changes; solvers use it to invalidate caches.
    [[nodiscard]] std::uint64_t structure_revision() const { return revision_; }

private:
    struct edge {
        std::size_t a = 0;
        std::size_t b = 0;       ///< Ignored for ambient edges.
        bool to_ambient = false;
        double conductance = 0.0;
    };

    double ambient_;
    std::vector<double> capacities_;
    std::vector<double> temps_;
    std::vector<double> powers_;
    std::vector<std::string> names_;
    std::vector<edge> edges_;
    std::uint64_t revision_ = 0;
};

}  // namespace ltsc::thermal
