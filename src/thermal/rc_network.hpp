// Lumped RC thermal network (HotSpot-style compact model).
//
// Nodes carry a heat capacity and a temperature state; edges carry thermal
// conductance between nodes or from a node to the fixed-temperature ambient.
// Power sources inject heat at nodes.  The network evolves by
//
//   C_i dT_i/dt = sum_j G_ij (T_j - T_i) + G_amb_i (T_amb - T_i) + P_i
//
// Conductances may vary at run time (fan-speed-dependent convection), which
// is the mechanism behind the paper's fan-speed-dependent time constants.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/matrix.hpp"
#include "util/units.hpp"

namespace ltsc::thermal {

/// Opaque node handle.
struct node_id {
    std::size_t index = 0;
    friend bool operator==(node_id a, node_id b) { return a.index == b.index; }
    friend bool operator!=(node_id a, node_id b) { return !(a == b); }
};

/// Opaque edge handle (also used for node-to-ambient couplings).
struct edge_id {
    std::size_t index = 0;
    friend bool operator==(edge_id a, edge_id b) { return a.index == b.index; }
    friend bool operator!=(edge_id a, edge_id b) { return !(a == b); }
};

/// Complete dynamic state of one thermal plant over a fixed topology:
/// node temperatures and power injections (node order), edge
/// conductances (insertion order), and the ambient temperature.  The
/// unit of the save/restore API shared by rc_network (scalar) and
/// rc_batch (one lane) — a state saved from either side restores into
/// the other bitwise, which is what lets a rollout engine clone a live
/// plant across candidate lanes.  Reusable: save_state overwrites in
/// place, so a scratch rc_state amortizes to zero allocations.
struct rc_state {
    std::vector<double> temps;   ///< Node temperatures [degC], node order.
    std::vector<double> powers;  ///< Node power injections [W], node order.
    std::vector<double> edge_g;  ///< Edge conductances [W/K], insertion order.
    double ambient_c = 0.0;      ///< Ambient temperature [degC].
};

/// Lumped thermal network with mutable conductances and power injections.
class rc_network {
public:
    /// Creates an empty network with the given ambient temperature.
    explicit rc_network(util::celsius_t ambient);

    // Copies carry the physical state but not the assembly cache (it is
    // rebuilt lazily on first use).
    rc_network(const rc_network& other);
    rc_network& operator=(const rc_network& other);
    rc_network(rc_network&&) = default;
    rc_network& operator=(rc_network&&) = default;
    ~rc_network() = default;

    /// Adds a node with the given heat capacity [J/K] (> 0), initialized to
    /// ambient temperature.  Returns its handle.
    node_id add_node(std::string name, double heat_capacity_j_per_k);

    /// Adds a conductive edge between two distinct nodes [W/K] (>= 0).
    edge_id add_edge(node_id a, node_id b, double conductance_w_per_k);

    /// Adds a coupling from a node to the ambient [W/K] (>= 0).
    edge_id add_ambient_edge(node_id n, double conductance_w_per_k);

    /// Updates an edge conductance (e.g. convection at a new fan speed).
    void set_conductance(edge_id e, double conductance_w_per_k);

    /// Current conductance of an edge (internal or ambient).
    [[nodiscard]] double conductance(edge_id e) const;

    /// Sets the heat injected at a node [W]; may be negative (a sink).
    /// Inline: called for every heat source every simulation step.
    void set_power(node_id n, util::watts_t power) {
        util::ensure(n.index < powers_.size(), "rc_network::set_power: node out of range");
        util::ensure(std::isfinite(power.value()), "rc_network::set_power: non-finite power");
        powers_[n.index] = power.value();
    }

    /// Changes the ambient temperature.
    void set_ambient(util::celsius_t ambient);

    /// Overwrites one node's temperature state.
    void set_temperature(node_id n, util::celsius_t t);

    /// Resets every node to the given temperature (defaults to ambient).
    void reset_temperatures();
    void reset_temperatures(util::celsius_t t);

    [[nodiscard]] std::size_t node_count() const { return capacities_.size(); }
    [[nodiscard]] util::celsius_t ambient() const { return util::celsius_t{ambient_}; }
    [[nodiscard]] const std::string& name(node_id n) const;

    // Hot accessors, inline: the simulator and telemetry layers read node
    // temperatures a dozen-plus times per step.
    [[nodiscard]] util::celsius_t temperature(node_id n) const {
        util::ensure(n.index < temps_.size(), "rc_network::temperature: node out of range");
        return util::celsius_t{temps_[n.index]};
    }
    [[nodiscard]] util::watts_t power(node_id n) const {
        util::ensure(n.index < powers_.size(), "rc_network::power: node out of range");
        return util::watts_t{powers_[n.index]};
    }
    [[nodiscard]] double heat_capacity(node_id n) const {
        util::ensure(n.index < capacities_.size(), "rc_network::heat_capacity: node out of range");
        return capacities_[n.index];
    }

    /// All node temperatures in node order [degC].
    [[nodiscard]] const std::vector<double>& temperatures() const { return temps_; }

    /// Overwrites all node temperatures (size must match node_count()).
    void set_temperatures(const std::vector<double>& temps);

    /// Swaps `temps` into the network state without per-element validation
    /// (sizes must match).  Fast path for the transient solvers, which own
    /// the buffer and validate via their own step check; `temps` receives
    /// the previous state vector.
    void adopt_temperatures(std::vector<double>& temps);

    /// Time derivatives dT/dt [K/s] at the given state vector.
    [[nodiscard]] std::vector<double> derivatives(const std::vector<double>& temps) const;

    /// In-place variant of derivatives(): writes dT/dt into `out` (resized
    /// to node_count()) without allocating once `out` has capacity.
    /// `temps` and `out` must be distinct vectors.
    ///
    /// Summation order: internal edges accumulate before ambient edges
    /// (each group in insertion order).  This matches the seed's
    /// declaration-order walk bitwise whenever every node's internal
    /// edges were added before its ambient edges — true for all builders
    /// in this repo and enforced for the paper server by the equivalence
    /// suite.  A topology that adds an ambient edge before an internal
    /// edge on the same node may differ from the seed at ULP level.
    void derivatives_into(const std::vector<double>& temps, std::vector<double>& out) const;

    /// Conductance (Laplacian + ambient) matrix L such that the heat-flow
    /// balance is L * T = P + G_amb * T_amb at steady state.
    [[nodiscard]] util::matrix conductance_matrix() const;

    /// Reference to the cached assembled conductance matrix; rebuilt only
    /// when the structure revision changes.  Invalidated by any topology
    /// or conductance mutation (not by power/temperature/ambient updates).
    [[nodiscard]] const util::matrix& cached_conductance_matrix() const;

    /// Largest forward-Euler step that stays stable for the current
    /// conductances: 0.9 * 2 * min_i(C_i / L_ii).  Cached with the matrix.
    [[nodiscard]] double stable_explicit_dt() const;

    /// Cached LU factorization of the conductance matrix, shared by the
    /// steady-state solver and characterization sweeps; built lazily and
    /// invalidated with the structure revision.  Throws numeric_error for
    /// singular systems (a node isolated from ambient).
    [[nodiscard]] const util::lu_decomposition& steady_factorization() const;

    /// Right-hand side P + G_amb * T_amb of the steady-state system.
    [[nodiscard]] std::vector<double> source_vector() const;

    /// In-place variant of source_vector().
    void source_vector_into(std::vector<double>& out) const;

    /// Monotonically increasing revision counter bumped whenever topology
    /// or a conductance changes; solvers use it to invalidate caches.
    [[nodiscard]] std::uint64_t structure_revision() const { return revision_; }

    // --- state save/restore ------------------------------------------------
    /// Writes the complete dynamic state (temperatures, powers, edge
    /// conductances, ambient) into `out`, overwriting its contents.
    void save_state(rc_state& out) const;

    /// Restores a state previously saved from this network (or from an
    /// rc_batch lane over the same topology).  Vector sizes must match
    /// the topology.  Only conductances that actually change bump the
    /// structure revision, so restoring a state captured at the current
    /// conductances leaves the assembly cache intact.
    void restore_state(const rc_state& state);

    // --- batch entry points (structure-of-arrays lanes) --------------------
    //
    // These step N independent "lanes" (servers) through this network's
    // *topology* with one instruction stream.  The lane state lives in
    // caller-owned flat arrays:
    //   node quantity  q of node i, lane l  ->  q[i * lanes + l]
    //   conductance    g of edge e, lane l  ->  edge_g[e.index * lanes + l]
    // (edge indices are the insertion-order edge_id indices, covering
    // internal and ambient edges alike).  Per lane, every kernel performs
    // the exact floating-point operation sequence of its scalar
    // counterpart, so a lane stepped here is bitwise-identical to the same
    // schedule applied to a scalar rc_network (the batch-equivalence suite
    // pins this).  This network's own conductances/temperatures/powers are
    // ignored; only the topology (and flattened edge order) is shared.

    /// Number of edges (internal + ambient) in insertion order.
    [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

    // Flattened, pre-resolved edge layout (assembly-cache order: the
    // order batch_derivatives_into accumulates in).  `g` is this
    // network's own conductance — batch kernels ignore it and read the
    // per-lane value at `edge_g[src * lanes + lane]` instead.
    struct flat_internal_edge {
        std::size_t a = 0;
        std::size_t b = 0;
        double g = 0.0;
        std::size_t src = 0;  ///< Insertion-order edge index (batch g lookup).
    };
    struct flat_ambient_edge {
        std::size_t n = 0;
        double g = 0.0;
        std::size_t src = 0;  ///< Insertion-order edge index (batch g lookup).
    };

    /// Cached flattened views of the internal / ambient edges, rebuilt
    /// with the structure revision.  External batch kernels (the
    /// relaxed-tier SIMD TU) iterate these instead of re-resolving the
    /// edge list.
    [[nodiscard]] const std::vector<flat_internal_edge>& flat_internal_edges() const;
    [[nodiscard]] const std::vector<flat_ambient_edge>& flat_ambient_edges() const;

    /// Batched derivatives_into: writes dT/dt for every lane into `out`
    /// (size node_count() * lanes).  Matches derivatives_into() per lane:
    /// internal edges accumulate before ambient edges, then the
    /// (flow + power) / capacity division runs per node.
    void batch_derivatives_into(std::size_t lanes, const double* temps, const double* powers,
                                const double* capacities, const double* ambient,
                                const double* edge_g, double* out) const;

    /// Conductance-matrix diagonal of one lane, accumulated in edge
    /// insertion order (bitwise-matching the cached assembly's diagonal).
    /// `diag` receives node_count() values.
    void lane_diagonal_into(std::size_t lanes, std::size_t lane, const double* edge_g,
                            double* diag) const;

    /// Full conductance (Laplacian + ambient) matrix of one lane,
    /// accumulated in edge insertion order like conductance_matrix().
    void lane_conductance_matrix_into(std::size_t lanes, std::size_t lane, const double* edge_g,
                                      util::matrix& out) const;

    /// Steady-state right-hand side P + G_amb * T_amb of one lane,
    /// matching source_vector_into() per lane.
    void lane_source_vector_into(std::size_t lanes, std::size_t lane, const double* powers,
                                 double ambient_c, const double* edge_g,
                                 std::vector<double>& out) const;

private:
    struct edge {
        std::size_t a = 0;
        std::size_t b = 0;       ///< Ignored for ambient edges.
        bool to_ambient = false;
        double conductance = 0.0;
    };

    // Derived quantities that depend only on topology/conductances,
    // plus the flattened edges declared above.  Rebuilt lazily whenever
    // `revision_` moves; power, temperature, and ambient updates leave it
    // untouched, so the per-substep hot path never re-assembles anything.
    struct assembly {
        std::uint64_t revision = 0;
        bool valid = false;
        std::vector<flat_internal_edge> internal;
        std::vector<flat_ambient_edge> ambient;
        util::matrix cond;
        double stable_dt = 0.0;
        std::unique_ptr<util::lu_decomposition> lu;  ///< Lazy; may stay null.
    };
    const assembly& assembled() const;

    double ambient_;
    std::vector<double> capacities_;
    std::vector<double> temps_;
    std::vector<double> powers_;
    std::vector<std::string> names_;
    std::vector<edge> edges_;
    std::uint64_t revision_ = 0;
    mutable assembly cache_;
};

}  // namespace ltsc::thermal
