// Relaxed-tier SIMD batch kernels.  This TU is compiled with the
// widest arch flags the build allows (see LTSC_SIMD_NATIVE in the root
// CMakeLists) plus -ffp-contract=off, so the only fused operations are
// the explicit pack::madd calls — a requirement of the packing
// invariance contract (util/simd.hpp).
//
// Structure: lanes are processed in blocks of pack width W (scalar tail
// with pack<1>).  Because lane arithmetic never crosses lanes, the
// *entire* substep loop runs block-locally: each block gathers its
// lanes' state into a tiny [node][W] working set, integrates all
// substeps there, and scatters the result back.  One streaming pass
// over the batch arrays per macro step regardless of substep count.
#include "thermal/rc_batch_kernels.hpp"

#include <algorithm>
#include <limits>

#include "thermal/rc_network.hpp"
#include "util/simd.hpp"

namespace ltsc::thermal::relaxed {
namespace {

namespace simd = ltsc::util::simd;

struct topo_view {
    const rc_network::flat_internal_edge* internal = nullptr;
    std::size_t internal_count = 0;
    const rc_network::flat_ambient_edge* ambient = nullptr;
    std::size_t ambient_count = 0;
};

topo_view make_view(const rc_network& topo) {
    const auto& in = topo.flat_internal_edges();
    const auto& am = topo.flat_ambient_edges();
    return topo_view{in.data(), in.size(), am.data(), am.size()};
}

// Block-local working set carved out of the caller's scratch.  All
// buffers are [slot][W] with W the block width.
struct block_buffers {
    double* t = nullptr;    ///< [node][W] lane temperatures (the state).
    double* tmp = nullptr;  ///< [node][W] RK4 stage temperatures.
    double* k1 = nullptr;   ///< [node][W] stage slopes (k1..k4).
    double* k2 = nullptr;
    double* k3 = nullptr;
    double* k4 = nullptr;
    double* p = nullptr;    ///< [node][W] powers.
    double* ic = nullptr;   ///< [node][W] reciprocal capacities.
    double* gi = nullptr;   ///< [internal edge][W] conductances.
    double* ga = nullptr;   ///< [ambient edge][W] conductances.
    double* amb = nullptr;  ///< [W] ambients.
    double* hb = nullptr;   ///< [W] substep h.
    double* h2 = nullptr;   ///< [W] 0.5 * h.
    double* h6 = nullptr;   ///< [W] h / 6 (as h * (1/6)).
    double* subd = nullptr; ///< [W] substep counts as doubles (mask compare).
};

template <std::size_t W>
block_buffers carve(double* s, std::size_t nodes, std::size_t ei, std::size_t ea) {
    block_buffers b;
    const auto grab = [&s](std::size_t n) {
        double* p = s;
        s += n;
        return p;
    };
    b.t = grab(nodes * W);
    b.tmp = grab(nodes * W);
    b.k1 = grab(nodes * W);
    b.k2 = grab(nodes * W);
    b.k3 = grab(nodes * W);
    b.k4 = grab(nodes * W);
    b.p = grab(nodes * W);
    b.ic = grab(nodes * W);
    b.gi = grab(ei * W);
    b.ga = grab(ea * W);
    b.amb = grab(W);
    b.hb = grab(W);
    b.h2 = grab(W);
    b.h6 = grab(W);
    b.subd = grab(W);
    return b;
}

/// Raw heat flow at block temperatures `at` into `k`: internal edges
/// then ambient edges, same accumulation order as the bitwise kernel.
/// The (flow + power) * inv_cap finish is fused into the stage updates.
template <typename P>
inline void flow_into(const topo_view& tv, std::size_t nodes, const block_buffers& b,
                      const double* at, double* k) {
    constexpr std::size_t W = P::width;
    const P zero = P::broadcast(0.0);
    for (std::size_t i = 0; i < nodes; ++i) {
        zero.store(k + i * W);
    }
    for (std::size_t e = 0; e < tv.internal_count; ++e) {
        const auto& ed = tv.internal[e];
        const P g = P::load(b.gi + e * W);
        const P q = g * (P::load(at + ed.b * W) - P::load(at + ed.a * W));
        (P::load(k + ed.a * W) + q).store(k + ed.a * W);
        (P::load(k + ed.b * W) - q).store(k + ed.b * W);
    }
    const P amb = P::load(b.amb);
    for (std::size_t e = 0; e < tv.ambient_count; ++e) {
        const auto& ed = tv.ambient[e];
        const P g = P::load(b.ga + e * W);
        P::madd(g, amb - P::load(at + ed.n * W), P::load(k + ed.n * W)).store(k + ed.n * W);
    }
}

/// Finishes a stage: k <- (k + p) * ic, tmp <- t + f * k (blended where
/// masked so finished lanes' stage state stays frozen).
template <typename P, bool Masked>
inline void stage_update(std::size_t nodes, const block_buffers& b, double* k, const double* f,
                         typename P::mask m) {
    constexpr std::size_t W = P::width;
    const P fv = P::load(f);
    for (std::size_t i = 0; i < nodes; ++i) {
        const P kv = (P::load(k + i * W) + P::load(b.p + i * W)) * P::load(b.ic + i * W);
        kv.store(k + i * W);
        P up = P::madd(kv, fv, P::load(b.t + i * W));
        if constexpr (Masked) {
            up = P::select(m, up, P::load(b.tmp + i * W));
        }
        up.store(b.tmp + i * W);
    }
}

/// Final RK4 combine: t <- t + h/6 * (k1 + k4 + 2*(k2 + k3)); k4 is
/// finished inline.
template <typename P, bool Masked>
inline void final_update(std::size_t nodes, const block_buffers& b, typename P::mask m) {
    constexpr std::size_t W = P::width;
    const P h6 = P::load(b.h6);
    const P two = P::broadcast(2.0);
    for (std::size_t i = 0; i < nodes; ++i) {
        const P k4v = (P::load(b.k4 + i * W) + P::load(b.p + i * W)) * P::load(b.ic + i * W);
        const P sum =
            (P::load(b.k1 + i * W) + k4v) + two * (P::load(b.k2 + i * W) + P::load(b.k3 + i * W));
        const P told = P::load(b.t + i * W);
        P tn = P::madd(sum, h6, told);
        if constexpr (Masked) {
            tn = P::select(m, tn, told);
        }
        tn.store(b.t + i * W);
    }
}

template <typename P, bool Masked>
inline void rk4_substeps(const topo_view& tv, std::size_t nodes, const block_buffers& b,
                         int block_max) {
    const P subp = P::load(b.subd);
    for (int s = 0; s < block_max; ++s) {
        typename P::mask m{};
        if constexpr (Masked) {
            m = P::less(P::broadcast(static_cast<double>(s)), subp);
        }
        flow_into<P>(tv, nodes, b, b.t, b.k1);
        stage_update<P, Masked>(nodes, b, b.k1, b.h2, m);
        flow_into<P>(tv, nodes, b, b.tmp, b.k2);
        stage_update<P, Masked>(nodes, b, b.k2, b.h2, m);
        flow_into<P>(tv, nodes, b, b.tmp, b.k3);
        stage_update<P, Masked>(nodes, b, b.k3, b.hb, m);
        flow_into<P>(tv, nodes, b, b.tmp, b.k4);
        final_update<P, Masked>(nodes, b, m);
    }
}

template <typename P, bool Masked>
inline void euler_substeps(const topo_view& tv, std::size_t nodes, const block_buffers& b,
                           int block_max) {
    constexpr std::size_t W = P::width;
    const P subp = P::load(b.subd);
    const P hb = P::load(b.hb);
    for (int s = 0; s < block_max; ++s) {
        typename P::mask m{};
        if constexpr (Masked) {
            m = P::less(P::broadcast(static_cast<double>(s)), subp);
        }
        flow_into<P>(tv, nodes, b, b.t, b.k1);
        for (std::size_t i = 0; i < nodes; ++i) {
            const P d = (P::load(b.k1 + i * W) + P::load(b.p + i * W)) * P::load(b.ic + i * W);
            const P told = P::load(b.t + i * W);
            P tn = P::madd(d, hb, told);
            if constexpr (Masked) {
                tn = P::select(m, tn, told);
            }
            tn.store(b.t + i * W);
        }
    }
}

/// Gathers one block, runs all substeps block-locally, scatters back.
template <typename P, bool Rk4>
void step_block(const step_args& a, const topo_view& tv, const block_buffers& b,
                std::size_t lane0) {
    constexpr std::size_t W = P::width;
    const std::size_t L = a.lanes;
    const std::size_t N = a.nodes;

    int block_max = 0;
    int block_min = std::numeric_limits<int>::max();
    for (std::size_t w = 0; w < W; ++w) {
        const int s = a.substeps[lane0 + w];
        b.subd[w] = static_cast<double>(s);
        block_max = std::max(block_max, s);
        block_min = std::min(block_min, s);
    }
    if (block_max == 0) {
        return;  // Whole block masked out; state left untouched.
    }

    for (std::size_t i = 0; i < N; ++i) {
        P::load(a.temps + i * L + lane0).store(b.t + i * W);
        P::load(a.powers + i * L + lane0).store(b.p + i * W);
        P::load(a.inv_caps + i * L + lane0).store(b.ic + i * W);
        if constexpr (Rk4) {
            // Stage temps start at the lane state so masked lanes hold
            // deterministic values.
            P::load(a.temps + i * L + lane0).store(b.tmp + i * W);
        }
    }
    for (std::size_t e = 0; e < tv.internal_count; ++e) {
        P::load(a.edge_g + tv.internal[e].src * L + lane0).store(b.gi + e * W);
    }
    for (std::size_t e = 0; e < tv.ambient_count; ++e) {
        P::load(a.edge_g + tv.ambient[e].src * L + lane0).store(b.ga + e * W);
    }
    P::load(a.ambient + lane0).store(b.amb);
    const P hb = P::load(a.h + lane0);
    hb.store(b.hb);
    (P::broadcast(0.5) * hb).store(b.h2);
    (P::broadcast(1.0 / 6.0) * hb).store(b.h6);

    if (block_min == block_max) {
        if constexpr (Rk4) {
            rk4_substeps<P, false>(tv, N, b, block_max);
        } else {
            euler_substeps<P, false>(tv, N, b, block_max);
        }
    } else {
        if constexpr (Rk4) {
            rk4_substeps<P, true>(tv, N, b, block_max);
        } else {
            euler_substeps<P, true>(tv, N, b, block_max);
        }
    }

    for (std::size_t i = 0; i < N; ++i) {
        P::load(b.t + i * W).store(a.temps + i * L + lane0);
    }
}

template <bool Rk4>
void step_impl(const step_args& a) {
    const topo_view tv = make_view(*a.topo);
    constexpr std::size_t W = simd::native_width;
    std::size_t l = 0;
    if constexpr (W > 1) {
        const block_buffers bw = carve<W>(a.scratch, a.nodes, tv.internal_count, tv.ambient_count);
        for (; l + W <= a.lanes; l += W) {
            step_block<simd::pack<W>, Rk4>(a, tv, bw, l);
        }
    }
    const block_buffers b1 = carve<1>(a.scratch, a.nodes, tv.internal_count, tv.ambient_count);
    for (; l < a.lanes; ++l) {
        step_block<simd::pack<1>, Rk4>(a, tv, b1, l);
    }
}

}  // namespace

std::size_t simd_width() { return simd::native_width; }

bool fused_madd() { return simd::fused_madd; }

std::size_t scratch_doubles(std::size_t nodes, std::size_t internal_edges,
                            std::size_t ambient_edges) {
    return (8 * nodes + internal_edges + ambient_edges + 5) * simd::native_width;
}

void step_rk4(const step_args& a) { step_impl<true>(a); }

void step_euler(const step_args& a) { step_impl<false>(a); }

}  // namespace ltsc::thermal::relaxed
