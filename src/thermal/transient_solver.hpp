// Transient integration of an rc_network.
//
// Three schemes are provided:
//  - explicit Euler with automatic sub-stepping (robust default for the
//    second-scale steps the simulator takes),
//  - classic RK4 (higher accuracy at the same step),
//  - backward Euler (unconditionally stable; refactors its LU only when the
//    network structure changes, e.g. on a fan-speed update).
//
// All schemes step without heap allocation: the solver keeps persistent
// scratch buffers, the network hands out its cached assembly (flattened
// edges, conductance matrix, stable substep), and the new state is swapped
// in rather than copied.
//
// The fan-speed-dependent thermal time constants in Fig. 1(a) of the paper
// emerge from integrating the network as convective conductances change.
#pragma once

#include <memory>
#include <optional>

#include "thermal/rc_network.hpp"
#include "util/matrix.hpp"

namespace ltsc::thermal {

/// Integration scheme selector.
enum class integration_scheme {
    explicit_euler,  ///< Sub-stepped forward Euler.
    rk4,             ///< Classic 4th-order Runge-Kutta.
    implicit_euler,  ///< Backward Euler with cached LU factorization.
};

/// Advances an rc_network in time.  The solver does not own the network.
class transient_solver {
public:
    /// Creates a solver using the given scheme.
    explicit transient_solver(integration_scheme scheme = integration_scheme::rk4);

    // Copying a solver copies only the scheme and validation flag; the
    // cached factorization and scratch buffers are rebuilt lazily (they
    // are keyed to a specific network).
    transient_solver(const transient_solver& other)
        : scheme_(other.scheme_), validate_(other.validate_) {}
    transient_solver& operator=(const transient_solver& other) {
        scheme_ = other.scheme_;
        validate_ = other.validate_;
        cache_ = implicit_cache{};
        return *this;
    }
    transient_solver(transient_solver&&) = default;
    transient_solver& operator=(transient_solver&&) = default;
    ~transient_solver() = default;

    /// Advances `net` by `dt` seconds and writes the new state back into
    /// the network.  Throws when dt <= 0, or (with validation enabled)
    /// when the state becomes non-finite.
    void step(rc_network& net, util::seconds_t dt);

    /// Advances by repeated steps of at most `max_dt` until `duration`
    /// has elapsed.
    void advance(rc_network& net, util::seconds_t duration, util::seconds_t max_dt);

    [[nodiscard]] integration_scheme scheme() const { return scheme_; }

    /// Enables/disables the per-step finite-temperature scan.  On by
    /// default in Debug builds and off in Release (it visits every node
    /// every step); tests that integrate hostile inputs turn it on
    /// explicitly.
    void set_validate_steps(bool on) { validate_ = on; }
    [[nodiscard]] bool validate_steps() const { return validate_; }

    /// Largest explicit step that keeps forward Euler stable for the
    /// network's current conductances (0.9 * 2 * min_i C_i / L_ii).
    [[nodiscard]] static double stable_explicit_step(const rc_network& net);

private:
    static constexpr bool default_validate() {
#ifdef NDEBUG
        return false;
#else
        return true;
#endif
    }

    void step_explicit(rc_network& net, double dt);
    void step_rk4(rc_network& net, double dt);
    void step_implicit(rc_network& net, double dt);

    integration_scheme scheme_;
    bool validate_ = default_validate();

    // Cached backward-Euler factorization, invalidated when the network's
    // structure revision or the step size changes.
    struct implicit_cache {
        std::uint64_t revision = 0;
        double dt = 0.0;
        std::unique_ptr<util::lu_decomposition> lu;
    };
    implicit_cache cache_;

    // Persistent scratch buffers so stepping never allocates after the
    // first call (sizes track the stepped network's node count).
    struct scratch_buffers {
        std::vector<double> t;    ///< Working state vector.
        std::vector<double> tmp;  ///< RK4 stage evaluation point.
        std::vector<double> k1;
        std::vector<double> k2;
        std::vector<double> k3;
        std::vector<double> k4;
        std::vector<double> rhs;  ///< Backward-Euler right-hand side.
    };
    scratch_buffers scratch_;
};

}  // namespace ltsc::thermal
