#include "thermal/rc_network.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ltsc::thermal {

rc_network::rc_network(util::celsius_t ambient) : ambient_(ambient.value()) {
    util::ensure(std::isfinite(ambient_), "rc_network: non-finite ambient");
}

rc_network::rc_network(const rc_network& other)
    : ambient_(other.ambient_),
      capacities_(other.capacities_),
      temps_(other.temps_),
      powers_(other.powers_),
      names_(other.names_),
      edges_(other.edges_),
      revision_(other.revision_) {}

rc_network& rc_network::operator=(const rc_network& other) {
    if (this != &other) {
        ambient_ = other.ambient_;
        capacities_ = other.capacities_;
        temps_ = other.temps_;
        powers_ = other.powers_;
        names_ = other.names_;
        edges_ = other.edges_;
        revision_ = other.revision_;
        cache_ = assembly{};
    }
    return *this;
}

node_id rc_network::add_node(std::string name, double heat_capacity_j_per_k) {
    util::ensure(heat_capacity_j_per_k > 0.0, "rc_network::add_node: non-positive heat capacity");
    capacities_.push_back(heat_capacity_j_per_k);
    temps_.push_back(ambient_);
    powers_.push_back(0.0);
    names_.push_back(std::move(name));
    ++revision_;
    return node_id{capacities_.size() - 1};
}

edge_id rc_network::add_edge(node_id a, node_id b, double conductance_w_per_k) {
    util::ensure(a.index < capacities_.size() && b.index < capacities_.size(),
                 "rc_network::add_edge: node out of range");
    util::ensure(a.index != b.index, "rc_network::add_edge: self edge");
    util::ensure(conductance_w_per_k >= 0.0, "rc_network::add_edge: negative conductance");
    edges_.push_back(edge{a.index, b.index, false, conductance_w_per_k});
    ++revision_;
    return edge_id{edges_.size() - 1};
}

edge_id rc_network::add_ambient_edge(node_id n, double conductance_w_per_k) {
    util::ensure(n.index < capacities_.size(), "rc_network::add_ambient_edge: node out of range");
    util::ensure(conductance_w_per_k >= 0.0, "rc_network::add_ambient_edge: negative conductance");
    edges_.push_back(edge{n.index, 0, true, conductance_w_per_k});
    ++revision_;
    return edge_id{edges_.size() - 1};
}

void rc_network::set_conductance(edge_id e, double conductance_w_per_k) {
    util::ensure(e.index < edges_.size(), "rc_network::set_conductance: edge out of range");
    util::ensure(conductance_w_per_k >= 0.0, "rc_network::set_conductance: negative conductance");
    if (edges_[e.index].conductance != conductance_w_per_k) {
        edges_[e.index].conductance = conductance_w_per_k;
        ++revision_;
    }
}

double rc_network::conductance(edge_id e) const {
    util::ensure(e.index < edges_.size(), "rc_network::conductance: edge out of range");
    return edges_[e.index].conductance;
}

void rc_network::set_ambient(util::celsius_t ambient) {
    util::ensure(std::isfinite(ambient.value()), "rc_network::set_ambient: non-finite ambient");
    ambient_ = ambient.value();
}

void rc_network::set_temperature(node_id n, util::celsius_t t) {
    util::ensure(n.index < temps_.size(), "rc_network::set_temperature: node out of range");
    util::ensure(std::isfinite(t.value()), "rc_network::set_temperature: non-finite temperature");
    temps_[n.index] = t.value();
}

void rc_network::reset_temperatures() { reset_temperatures(util::celsius_t{ambient_}); }

void rc_network::reset_temperatures(util::celsius_t t) {
    for (double& temp : temps_) {
        temp = t.value();
    }
}

const std::string& rc_network::name(node_id n) const {
    util::ensure(n.index < names_.size(), "rc_network::name: node out of range");
    return names_[n.index];
}

void rc_network::set_temperatures(const std::vector<double>& temps) {
    util::ensure(temps.size() == temps_.size(), "rc_network::set_temperatures: size mismatch");
    for (double t : temps) {
        util::ensure(std::isfinite(t), "rc_network::set_temperatures: non-finite temperature");
    }
    temps_ = temps;
}

void rc_network::save_state(rc_state& out) const {
    out.temps.assign(temps_.begin(), temps_.end());
    out.powers.assign(powers_.begin(), powers_.end());
    out.edge_g.resize(edges_.size());
    for (std::size_t e = 0; e < edges_.size(); ++e) {
        out.edge_g[e] = edges_[e].conductance;
    }
    out.ambient_c = ambient_;
}

void rc_network::restore_state(const rc_state& state) {
    util::ensure(state.temps.size() == temps_.size() && state.powers.size() == powers_.size() &&
                     state.edge_g.size() == edges_.size(),
                 "rc_network::restore_state: state does not match topology");
    set_temperatures(state.temps);
    for (std::size_t i = 0; i < powers_.size(); ++i) {
        set_power(node_id{i}, util::watts_t{state.powers[i]});
    }
    for (std::size_t e = 0; e < edges_.size(); ++e) {
        set_conductance(edge_id{e}, state.edge_g[e]);
    }
    set_ambient(util::celsius_t{state.ambient_c});
}

void rc_network::adopt_temperatures(std::vector<double>& temps) {
    util::ensure(temps.size() == temps_.size(), "rc_network::adopt_temperatures: size mismatch");
    temps_.swap(temps);
}

const rc_network::assembly& rc_network::assembled() const {
    util::ensure(!capacities_.empty(), "rc_network: empty network");
    if (cache_.valid && cache_.revision == revision_) {
        return cache_;
    }
    const std::size_t n = capacities_.size();
    cache_.valid = false;
    cache_.lu.reset();
    cache_.internal.clear();
    cache_.ambient.clear();
    cache_.cond = util::matrix(n, n);
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        const edge& e = edges_[i];
        if (e.to_ambient) {
            cache_.ambient.push_back(flat_ambient_edge{e.a, e.conductance, i});
            cache_.cond(e.a, e.a) += e.conductance;
        } else {
            cache_.internal.push_back(flat_internal_edge{e.a, e.b, e.conductance, i});
            cache_.cond(e.a, e.a) += e.conductance;
            cache_.cond(e.b, e.b) += e.conductance;
            cache_.cond(e.a, e.b) -= e.conductance;
            cache_.cond(e.b, e.a) -= e.conductance;
        }
    }
    // Forward Euler on dT/dt = -T/tau is stable for dt < 2*tau; keep a
    // 10 % safety margin (tau_i = C_i / L_ii).
    double min_ratio = 1e30;
    for (std::size_t i = 0; i < n; ++i) {
        const double g = cache_.cond(i, i);
        if (g > 0.0) {
            min_ratio = std::min(min_ratio, capacities_[i] / g);
        }
    }
    cache_.stable_dt = 0.9 * 2.0 * min_ratio;
    cache_.revision = revision_;
    cache_.valid = true;
    return cache_;
}

const std::vector<rc_network::flat_internal_edge>& rc_network::flat_internal_edges() const {
    return assembled().internal;
}

const std::vector<rc_network::flat_ambient_edge>& rc_network::flat_ambient_edges() const {
    return assembled().ambient;
}

std::vector<double> rc_network::derivatives(const std::vector<double>& temps) const {
    std::vector<double> flow;
    derivatives_into(temps, flow);
    return flow;
}

void rc_network::derivatives_into(const std::vector<double>& temps,
                                  std::vector<double>& out) const {
    util::ensure(temps.size() == capacities_.size(), "rc_network::derivatives: size mismatch");
    util::ensure(&temps != &out, "rc_network::derivatives_into: aliased vectors");
    if (capacities_.empty()) {
        out.clear();
        return;
    }
    const assembly& a = assembled();
    const std::size_t n = capacities_.size();
    out.assign(n, 0.0);
    for (const flat_internal_edge& e : a.internal) {
        const double q = e.g * (temps[e.b] - temps[e.a]);
        out[e.a] += q;
        out[e.b] -= q;
    }
    for (const flat_ambient_edge& e : a.ambient) {
        out[e.n] += e.g * (ambient_ - temps[e.n]);
    }
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = (out[i] + powers_[i]) / capacities_[i];
    }
}

void rc_network::batch_derivatives_into(std::size_t lanes, const double* temps,
                                        const double* powers, const double* capacities,
                                        const double* ambient, const double* edge_g,
                                        double* out) const {
    util::ensure(lanes > 0, "rc_network::batch_derivatives_into: zero lanes");
    const assembly& a = assembled();
    const std::size_t n = capacities_.size();
    for (std::size_t i = 0; i < n * lanes; ++i) {
        out[i] = 0.0;
    }
    for (const flat_internal_edge& e : a.internal) {
        const double* g = edge_g + e.src * lanes;
        const double* ta = temps + e.a * lanes;
        const double* tb = temps + e.b * lanes;
        double* oa = out + e.a * lanes;
        double* ob = out + e.b * lanes;
        for (std::size_t l = 0; l < lanes; ++l) {
            const double q = g[l] * (tb[l] - ta[l]);
            oa[l] += q;
            ob[l] -= q;
        }
    }
    for (const flat_ambient_edge& e : a.ambient) {
        const double* g = edge_g + e.src * lanes;
        const double* tn = temps + e.n * lanes;
        double* on = out + e.n * lanes;
        for (std::size_t l = 0; l < lanes; ++l) {
            on[l] += g[l] * (ambient[l] - tn[l]);
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        const double* p = powers + i * lanes;
        const double* c = capacities + i * lanes;
        double* o = out + i * lanes;
        for (std::size_t l = 0; l < lanes; ++l) {
            o[l] = (o[l] + p[l]) / c[l];
        }
    }
}

void rc_network::lane_diagonal_into(std::size_t lanes, std::size_t lane, const double* edge_g,
                                    double* diag) const {
    util::ensure(lane < lanes, "rc_network::lane_diagonal_into: lane out of range");
    const std::size_t n = capacities_.size();
    for (std::size_t i = 0; i < n; ++i) {
        diag[i] = 0.0;
    }
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        const edge& e = edges_[i];
        const double g = edge_g[i * lanes + lane];
        diag[e.a] += g;
        if (!e.to_ambient) {
            diag[e.b] += g;
        }
    }
}

void rc_network::lane_conductance_matrix_into(std::size_t lanes, std::size_t lane,
                                              const double* edge_g, util::matrix& out) const {
    util::ensure(lane < lanes, "rc_network::lane_conductance_matrix_into: lane out of range");
    util::ensure(!capacities_.empty(), "rc_network: empty network");
    const std::size_t n = capacities_.size();
    out = util::matrix(n, n);
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        const edge& e = edges_[i];
        const double g = edge_g[i * lanes + lane];
        if (e.to_ambient) {
            out(e.a, e.a) += g;
        } else {
            out(e.a, e.a) += g;
            out(e.b, e.b) += g;
            out(e.a, e.b) -= g;
            out(e.b, e.a) -= g;
        }
    }
}

void rc_network::lane_source_vector_into(std::size_t lanes, std::size_t lane,
                                         const double* powers, double ambient_c,
                                         const double* edge_g, std::vector<double>& out) const {
    util::ensure(lane < lanes, "rc_network::lane_source_vector_into: lane out of range");
    const assembly& a = assembled();
    const std::size_t n = capacities_.size();
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = powers[i * lanes + lane];
    }
    for (const flat_ambient_edge& e : a.ambient) {
        out[e.n] += edge_g[e.src * lanes + lane] * ambient_c;
    }
}

util::matrix rc_network::conductance_matrix() const { return assembled().cond; }

const util::matrix& rc_network::cached_conductance_matrix() const { return assembled().cond; }

double rc_network::stable_explicit_dt() const { return assembled().stable_dt; }

const util::lu_decomposition& rc_network::steady_factorization() const {
    const assembly& a = assembled();
    if (!a.lu) {
        cache_.lu = std::make_unique<util::lu_decomposition>(a.cond);
    }
    return *cache_.lu;
}

std::vector<double> rc_network::source_vector() const {
    std::vector<double> rhs;
    source_vector_into(rhs);
    return rhs;
}

void rc_network::source_vector_into(std::vector<double>& out) const {
    if (capacities_.empty()) {
        out.clear();
        return;
    }
    const assembly& a = assembled();
    out = powers_;
    for (const flat_ambient_edge& e : a.ambient) {
        out[e.n] += e.g * ambient_;
    }
}

}  // namespace ltsc::thermal
