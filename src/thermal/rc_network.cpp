#include "thermal/rc_network.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ltsc::thermal {

rc_network::rc_network(util::celsius_t ambient) : ambient_(ambient.value()) {
    util::ensure(std::isfinite(ambient_), "rc_network: non-finite ambient");
}

node_id rc_network::add_node(std::string name, double heat_capacity_j_per_k) {
    util::ensure(heat_capacity_j_per_k > 0.0, "rc_network::add_node: non-positive heat capacity");
    capacities_.push_back(heat_capacity_j_per_k);
    temps_.push_back(ambient_);
    powers_.push_back(0.0);
    names_.push_back(std::move(name));
    ++revision_;
    return node_id{capacities_.size() - 1};
}

edge_id rc_network::add_edge(node_id a, node_id b, double conductance_w_per_k) {
    util::ensure(a.index < capacities_.size() && b.index < capacities_.size(),
                 "rc_network::add_edge: node out of range");
    util::ensure(a.index != b.index, "rc_network::add_edge: self edge");
    util::ensure(conductance_w_per_k >= 0.0, "rc_network::add_edge: negative conductance");
    edges_.push_back(edge{a.index, b.index, false, conductance_w_per_k});
    ++revision_;
    return edge_id{edges_.size() - 1};
}

edge_id rc_network::add_ambient_edge(node_id n, double conductance_w_per_k) {
    util::ensure(n.index < capacities_.size(), "rc_network::add_ambient_edge: node out of range");
    util::ensure(conductance_w_per_k >= 0.0, "rc_network::add_ambient_edge: negative conductance");
    edges_.push_back(edge{n.index, 0, true, conductance_w_per_k});
    ++revision_;
    return edge_id{edges_.size() - 1};
}

void rc_network::set_conductance(edge_id e, double conductance_w_per_k) {
    util::ensure(e.index < edges_.size(), "rc_network::set_conductance: edge out of range");
    util::ensure(conductance_w_per_k >= 0.0, "rc_network::set_conductance: negative conductance");
    if (edges_[e.index].conductance != conductance_w_per_k) {
        edges_[e.index].conductance = conductance_w_per_k;
        ++revision_;
    }
}

void rc_network::set_power(node_id n, util::watts_t power) {
    util::ensure(n.index < powers_.size(), "rc_network::set_power: node out of range");
    util::ensure(std::isfinite(power.value()), "rc_network::set_power: non-finite power");
    powers_[n.index] = power.value();
}

void rc_network::set_ambient(util::celsius_t ambient) {
    util::ensure(std::isfinite(ambient.value()), "rc_network::set_ambient: non-finite ambient");
    ambient_ = ambient.value();
}

void rc_network::set_temperature(node_id n, util::celsius_t t) {
    util::ensure(n.index < temps_.size(), "rc_network::set_temperature: node out of range");
    util::ensure(std::isfinite(t.value()), "rc_network::set_temperature: non-finite temperature");
    temps_[n.index] = t.value();
}

void rc_network::reset_temperatures() { reset_temperatures(util::celsius_t{ambient_}); }

void rc_network::reset_temperatures(util::celsius_t t) {
    for (double& temp : temps_) {
        temp = t.value();
    }
}

util::celsius_t rc_network::temperature(node_id n) const {
    util::ensure(n.index < temps_.size(), "rc_network::temperature: node out of range");
    return util::celsius_t{temps_[n.index]};
}

util::watts_t rc_network::power(node_id n) const {
    util::ensure(n.index < powers_.size(), "rc_network::power: node out of range");
    return util::watts_t{powers_[n.index]};
}

const std::string& rc_network::name(node_id n) const {
    util::ensure(n.index < names_.size(), "rc_network::name: node out of range");
    return names_[n.index];
}

double rc_network::heat_capacity(node_id n) const {
    util::ensure(n.index < capacities_.size(), "rc_network::heat_capacity: node out of range");
    return capacities_[n.index];
}

void rc_network::set_temperatures(const std::vector<double>& temps) {
    util::ensure(temps.size() == temps_.size(), "rc_network::set_temperatures: size mismatch");
    for (double t : temps) {
        util::ensure(std::isfinite(t), "rc_network::set_temperatures: non-finite temperature");
    }
    temps_ = temps;
}

std::vector<double> rc_network::derivatives(const std::vector<double>& temps) const {
    util::ensure(temps.size() == capacities_.size(), "rc_network::derivatives: size mismatch");
    std::vector<double> flow(capacities_.size(), 0.0);
    for (const edge& e : edges_) {
        if (e.to_ambient) {
            flow[e.a] += e.conductance * (ambient_ - temps[e.a]);
        } else {
            const double q = e.conductance * (temps[e.b] - temps[e.a]);
            flow[e.a] += q;
            flow[e.b] -= q;
        }
    }
    for (std::size_t i = 0; i < flow.size(); ++i) {
        flow[i] = (flow[i] + powers_[i]) / capacities_[i];
    }
    return flow;
}

util::matrix rc_network::conductance_matrix() const {
    util::ensure(!capacities_.empty(), "rc_network::conductance_matrix: empty network");
    util::matrix l(capacities_.size(), capacities_.size());
    for (const edge& e : edges_) {
        if (e.to_ambient) {
            l(e.a, e.a) += e.conductance;
        } else {
            l(e.a, e.a) += e.conductance;
            l(e.b, e.b) += e.conductance;
            l(e.a, e.b) -= e.conductance;
            l(e.b, e.a) -= e.conductance;
        }
    }
    return l;
}

std::vector<double> rc_network::source_vector() const {
    std::vector<double> rhs = powers_;
    for (const edge& e : edges_) {
        if (e.to_ambient) {
            rhs[e.a] += e.conductance * ambient_;
        }
    }
    return rhs;
}

}  // namespace ltsc::thermal
