// Thermal sensor models.
//
// The paper's CSTH reports 4 CPU temperatures (2 sensors per die) and 32
// DIMM temperatures (1 per module).  Real sensors carry placement bias,
// noise and ADC quantization; modelling those keeps the controllers honest
// (the bang-bang controller reacts to *sensor* readings, not to the plant
// state).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace ltsc::thermal {

/// One temperature sensor attached to a plant quantity.
class temperature_sensor {
public:
    /// `source` returns the true temperature at read time; `bias` models
    /// placement offset, `noise_sigma` Gaussian read noise, `quantum` the
    /// ADC step (0 disables quantization).
    temperature_sensor(std::string name, std::function<util::celsius_t()> source,
                       util::celsius_t bias, double noise_sigma, double quantum,
                       util::pcg32& rng);

    /// Takes a reading (bias + noise + quantization applied).
    [[nodiscard]] util::celsius_t read();

    [[nodiscard]] const std::string& name() const { return name_; }

private:
    std::string name_;
    std::function<util::celsius_t()> source_;
    double bias_c_;
    double noise_sigma_;
    double quantum_;
    util::pcg32* rng_;
};

/// Builds the paper's sensor complement for a server thermal model:
/// 2 sensors per CPU die (+/- 1 degC placement spread) and `dimm_count`
/// DIMM sensors spread around the bank temperature by a positional
/// gradient.  The returned sensors keep references to `cpu_temp(s)` /
/// `dimm_temp()` sources and to `rng`; both must outlive them.
struct server_sensor_suite {
    std::vector<temperature_sensor> cpu;   ///< 4 sensors: cpu0_a, cpu0_b, cpu1_a, cpu1_b.
    std::vector<temperature_sensor> dimm;  ///< One per DIMM module.
};

[[nodiscard]] server_sensor_suite make_server_sensors(
    const std::function<util::celsius_t(std::size_t)>& cpu_temp,
    const std::function<util::celsius_t()>& dimm_temp, std::size_t dimm_count, util::pcg32& rng,
    double noise_sigma = 0.15, double quantum = 0.25);

}  // namespace ltsc::thermal
