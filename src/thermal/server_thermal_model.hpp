// Compact thermal model of the paper's target server.
//
// Topology (airflow left to right; 3 fan pairs drive the stream):
//
//   ambient -> [DIMM field, 32 modules] -> [CPU0 sink]  -> exhaust
//                                       -> [CPU1 sink]  ->
//
// Five thermal nodes: two CPU dies, two CPU heatsinks, one aggregated DIMM
// bank.  Convective conductances scale linearly with airflow (and hence
// with RPM, via the fan affinity laws), which reproduces both the steady
// temperatures and the fan-speed-dependent time constants of Fig. 1(a):
// ~15 min to settle at 1800 RPM vs. ~5 min at 4200 RPM.
//
// Calibration anchors (100 % utilization, 24 degC ambient):
//   1800 RPM -> ~85 degC, 2400 -> ~70, 3000 -> ~63, 3600 -> ~57, 4200 -> ~54.
#pragma once

#include <cstddef>
#include <vector>

#include "thermal/rc_network.hpp"
#include "thermal/transient_solver.hpp"
#include "util/units.hpp"

namespace ltsc::thermal {

/// Calibrated physical parameters of the server thermal model.  Defaults
/// reproduce the paper's SPARC T3 server (see file comment).
struct server_thermal_config {
    double ambient_c = 24.0;            ///< Room temperature [degC].
    std::size_t fan_zones = 3;          ///< Independently driven fan pairs.
    double r_junction_sink = 0.13;      ///< Die -> heatsink conduction [K/W].
    double c_die = 60.0;                ///< Die + spreader capacity [J/K].
    double c_sink = 600.0;              ///< Heatsink capacity [J/K].
    double c_dimm = 800.0;              ///< DIMM bank capacity [J/K].
    double g_sink_ref = 2.857;          ///< Sink convection at ref airflow [W/K].
    double g_dimm_ref = 5.26;           ///< DIMM convection at ref airflow [W/K].
    double ref_airflow_cfm = 65.57;     ///< All pairs at 1800 RPM [CFM].
    double airflow_exponent = 1.0;      ///< G ~ (Q/Q_ref)^exponent.
    double zone_mixing = 0.3;           ///< Plenum mixing between fan zones.
};

/// Server thermal plant: owns the RC network, maps fan-zone airflow to
/// convective conductances, and applies DIMM-to-CPU preheat.  Heat inputs
/// are set by the caller each step (the sim module couples this model with
/// the power models).
class server_thermal_model {
public:
    explicit server_thermal_model(const server_thermal_config& config = {},
                                  integration_scheme scheme = integration_scheme::rk4);

    /// Number of CPU sockets (fixed at 2 for the target server).
    [[nodiscard]] static constexpr std::size_t socket_count() { return 2; }

    /// Sets per-zone airflow (vector size must equal fan_zones).  Zone 0
    /// predominantly cools CPU0, zone 1 CPU1, zone 2 the shared plenum; the
    /// zone_mixing fraction models cross-flow in the plenum.
    void set_zone_airflow(const std::vector<util::cfm_t>& per_zone);

    /// Total heat dissipated in socket `s`'s die (idle + active + leakage
    /// share), applied until the next call.
    void set_cpu_heat(std::size_t s, util::watts_t w);

    /// Total heat dissipated across the DIMM field.
    void set_dimm_heat(util::watts_t w);

    /// Heat dissipated downstream of the CPUs (I/O, VRs); only affects the
    /// exhaust temperature.
    void set_other_heat(util::watts_t w);

    /// Changes the room temperature.
    void set_ambient(util::celsius_t t);

    /// Advances the plant by `dt`.
    void step(util::seconds_t dt);

    /// Solves for the steady state of the current inputs and adopts it.
    void settle_to_steady_state();

    /// Resets all node temperatures to ambient (cold start).
    void reset();

    /// Saves / restores the underlying network's dynamic state (node
    /// temperatures and powers, edge conductances, ambient).  The heat
    /// inputs (set_cpu_heat / set_dimm_heat / set_other_heat) and zone
    /// airflow remain the caller's per-step responsibility, exactly as
    /// in normal stepping — the simulator reapplies both before the
    /// first step after a restore.
    void save_state(rc_state& out) const { net_.save_state(out); }
    void restore_state(const rc_state& state) { net_.restore_state(state); }

    // Inline: the telemetry channels, leakage model, and trace recorder
    // read these every simulation step.
    [[nodiscard]] util::celsius_t cpu_die_temp(std::size_t s) const {
        util::ensure(s < socket_count(), "server_thermal_model::cpu_die_temp: bad socket");
        return net_.temperature(die_[s]);
    }
    [[nodiscard]] util::celsius_t cpu_sink_temp(std::size_t s) const {
        util::ensure(s < socket_count(), "server_thermal_model::cpu_sink_temp: bad socket");
        return net_.temperature(sink_[s]);
    }
    [[nodiscard]] util::celsius_t dimm_temp() const { return net_.temperature(dimm_); }
    /// Average of the two die temperatures (the quantity the paper's
    /// leakage model is expressed in).
    [[nodiscard]] util::celsius_t average_cpu_temp() const {
        return util::celsius_t{0.5 * (cpu_die_temp(0).value() + cpu_die_temp(1).value())};
    }
    /// Effective air temperature at the CPU heatsink inlet (ambient plus
    /// DIMM preheat).
    [[nodiscard]] util::celsius_t cpu_inlet_temp() const;
    /// Chassis exhaust air temperature.
    [[nodiscard]] util::celsius_t exhaust_temp() const;
    [[nodiscard]] util::celsius_t ambient() const { return net_.ambient(); }

    [[nodiscard]] const server_thermal_config& config() const { return config_; }

    /// Read-only access to the underlying network (tests, visualization).
    [[nodiscard]] const rc_network& network() const { return net_; }

    // Node/edge handles of the fixed topology, exposed so batched plants
    // (thermal::rc_batch lanes built over network()) and tests can address
    // the same nodes and mutable convective edges the scalar model drives.
    [[nodiscard]] node_id die_node(std::size_t s) const {
        util::ensure(s < socket_count(), "server_thermal_model::die_node: bad socket");
        return die_[s];
    }
    [[nodiscard]] node_id sink_node(std::size_t s) const {
        util::ensure(s < socket_count(), "server_thermal_model::sink_node: bad socket");
        return sink_[s];
    }
    [[nodiscard]] node_id dimm_node() const { return dimm_; }
    [[nodiscard]] edge_id die_sink_edge(std::size_t s) const {
        util::ensure(s < socket_count(), "server_thermal_model::die_sink_edge: bad socket");
        return die_sink_edge_[s];
    }
    [[nodiscard]] edge_id sink_ambient_edge(std::size_t s) const {
        util::ensure(s < socket_count(), "server_thermal_model::sink_ambient_edge: bad socket");
        return sink_amb_edge_[s];
    }
    [[nodiscard]] edge_id dimm_ambient_edge() const { return dimm_amb_edge_; }

private:
    void update_conductances();
    void update_preheat();
    [[nodiscard]] double effective_airflow_cfm(std::size_t component_zone) const;
    [[nodiscard]] double total_airflow_cfm() const;

    server_thermal_config config_;
    rc_network net_;
    transient_solver solver_;

    node_id die_[2];
    node_id sink_[2];
    node_id dimm_;
    edge_id die_sink_edge_[2];
    edge_id sink_amb_edge_[2];
    edge_id dimm_amb_edge_;

    std::vector<double> zone_airflow_cfm_;
    double cpu_heat_w_[2] = {0.0, 0.0};
    double dimm_heat_w_ = 0.0;
    double other_heat_w_ = 0.0;

    // Airflow-derived quantities cached by update_conductances() so the
    // per-step preheat update does not re-evaluate pow() or the airstream
    // capacity; they only change when the zone airflow changes.
    double sink_g_w_per_k_[2] = {0.0, 0.0};
    double stream_capacity_w_per_k_ = 0.0;
};

}  // namespace ltsc::thermal
