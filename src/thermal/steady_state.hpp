// Steady-state solution of an rc_network.
//
// Solves L * T = P + G_amb * T_amb directly; used by the characterization
// pipeline to sweep fan speeds without integrating transients, and by tests
// as the ground truth the transient solvers must converge to.
#pragma once

#include <vector>

#include "thermal/rc_network.hpp"

namespace ltsc::thermal {

/// Returns the steady-state temperatures for the network's current
/// conductances and power injections, without modifying its state.
/// Throws numeric_error when a node is isolated from the ambient (the
/// steady system is singular in that case).
[[nodiscard]] std::vector<double> steady_state(const rc_network& net);

/// Solves the steady state and writes it into the network's state.
void settle(rc_network& net);

}  // namespace ltsc::thermal
