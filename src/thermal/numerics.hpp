// The tiered-equivalence contract for batch thermal kernels.
//
// Every batch plant in this repo steps N lanes through one instruction
// stream.  The *numerics tier* picks the floating-point contract those
// kernels honour:
//
//  - `bitwise` (default): every lane performs the exact operation
//    sequence of its scalar twin (rc_network + transient_solver driven
//    through the same schedule).  Pinned by the batch-equivalence,
//    golden-trace, and determinism suites; any result obtained in this
//    tier is bitwise-reproducible against the scalar plant.
//
//  - `relaxed`: kernels may reorder, fuse (FMA), and vectorize lane
//    arithmetic — reciprocal-multiply instead of per-node division,
//    fused stage updates, explicit SIMD widths over lanes.  Results
//    stay deterministic for a given build, and are *packing-invariant*:
//    a lane's trajectory does not depend on its position in the batch,
//    the batch's lane count, shard assignment, or thread count (the
//    kernels use identical elementwise op sequences in vector bodies
//    and scalar tails).  Divergence from the bitwise tier is bounded by
//    the relaxed-equivalence suite (ULP/absolute tolerance vs scalar
//    twins), not pinned bitwise.
#pragma once

namespace ltsc::thermal {

/// Floating-point contract for batch lane kernels.
enum class numerics_tier {
    bitwise,  ///< Per-lane bitwise equality with the scalar plant.
    relaxed,  ///< Vectorized/fused; deterministic + packing-invariant.
};

}  // namespace ltsc::thermal
