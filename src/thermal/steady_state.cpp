#include "thermal/steady_state.hpp"

#include "util/matrix.hpp"

namespace ltsc::thermal {

std::vector<double> steady_state(const rc_network& net) {
    return util::solve(net.conductance_matrix(), net.source_vector());
}

void settle(rc_network& net) { net.set_temperatures(steady_state(net)); }

}  // namespace ltsc::thermal
