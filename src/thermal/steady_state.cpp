#include "thermal/steady_state.hpp"

#include "util/matrix.hpp"

namespace ltsc::thermal {

std::vector<double> steady_state(const rc_network& net) {
    // The factorization is cached inside the network and keyed to its
    // structure revision, so repeated solves (settle fixed points,
    // characterization sweeps) only factor once per conductance change.
    const util::lu_decomposition& lu = net.steady_factorization();
    return lu.solve(net.source_vector());
}

void settle(rc_network& net) { net.set_temperatures(steady_state(net)); }

}  // namespace ltsc::thermal
