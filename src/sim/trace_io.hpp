// Export of simulation traces for offline analysis and plotting.
//
// Every figure in the paper is a plot over a recorded run; these helpers
// turn a `simulation_trace` into named series / CSV so any external tool
// can regenerate the plots from the bench binaries' data.
#pragma once

#include <iosfwd>
#include <vector>

#include "sim/server_simulator.hpp"
#include "util/time_series.hpp"

namespace ltsc::sim {

/// Flattens a trace into named, unit-tagged series (one per channel).
[[nodiscard]] std::vector<util::named_series> to_named_series(const simulation_trace& trace);

/// Writes the trace as long-format CSV (series, time_s, value, unit).
void write_trace_csv(std::ostream& os, const simulation_trace& trace);

/// Writes the trace as wide-format CSV: one row per sample time of the
/// power series, one column per channel (values linearly interpolated
/// onto that time base).  Easier to load into spreadsheets.
void write_trace_csv_wide(std::ostream& os, const simulation_trace& trace,
                          double sample_period_s = 10.0);

}  // namespace ltsc::sim
