// Export / import of simulation traces for offline analysis and plotting.
//
// Every figure in the paper is a plot over a recorded run; these helpers
// turn a trace into named series / CSV so any external tool can
// regenerate the plots from the bench binaries' data, and read a dumped
// run back into a `simulation_trace` for fleet post-processing.
//
// The canonical on-disk layout is columnar, matching the storage: one
// `time_s` column plus one column per channel, one row per recorded
// step.  The reader additionally accepts the legacy long format
// (`series,time_s,value,unit`) written by earlier versions.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/simulation_trace.hpp"
#include "util/time_series.hpp"

namespace ltsc::sim {

/// Materializes a trace into named, unit-tagged series (one per channel).
[[nodiscard]] std::vector<util::named_series> to_named_series(const trace_view& trace);

/// Writes the trace as columnar CSV: header `time_s,<channel>...`, one
/// row per recorded step (the single shared time axis appears once).
void write_trace_csv(std::ostream& os, const trace_view& trace);

/// Parses a trace dumped by `write_trace_csv` — or by the legacy
/// long-format writer (`series,time_s,value,unit`) — back into an owning
/// trace.  Throws util::parse_error on duplicate channel names, unknown
/// or missing channels, channels out of step, or malformed cells.
[[nodiscard]] simulation_trace read_trace_csv(const std::string& text);

/// Writes the trace as wide-format CSV: one row per `sample_period_s` of
/// the power series' span, one column per channel (values linearly
/// interpolated onto that grid).  Easier to load into spreadsheets.
void write_trace_csv_wide(std::ostream& os, const trace_view& trace,
                          double sample_period_s = 10.0);

}  // namespace ltsc::sim
