// Concurrent execution of independent simulation scenarios.
//
// Every figure/table harness boils down to a list of independent
// (config, workload, controller) runs whose results are read in a fixed
// order.  parallel_runner fans those runs out over a util::thread_pool:
// each scenario constructs its own server_simulator (and its own
// controller via the factory), so runs share no mutable state, and the
// result vector is indexed by scenario position — the output is
// bitwise-deterministic regardless of thread count or scheduling.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/controller_runtime.hpp"
#include "sim/metrics.hpp"
#include "sim/server_config.hpp"
#include "util/thread_pool.hpp"
#include "workload/profile.hpp"

namespace ltsc::sim {

/// One independent closed-loop experiment.  The controller is supplied as
/// a factory so each run owns a fresh instance (controllers carry state).
struct scenario {
    std::string name;                       ///< Row label for reports.
    server_config config = paper_server();  ///< Plant configuration.
    workload::utilization_profile profile;  ///< Workload to drive.
    std::function<std::unique_ptr<core::fan_controller>()> make_controller;
    core::runtime_config runtime{};         ///< Controller cadence etc.
};

/// Runs scenario lists and generic index-addressed jobs concurrently with
/// deterministic result ordering.
class parallel_runner {
public:
    /// `threads` = 0 uses one thread per hardware thread; 1 runs serially
    /// on the calling thread.
    explicit parallel_runner(std::size_t threads = 0);

    [[nodiscard]] std::size_t thread_count() const;

    /// Thread count requested via the LTSC_THREADS environment variable;
    /// 0 (also when unset/invalid) means one per hardware thread.  The
    /// bench harnesses pass this to the constructor so sweeps can be
    /// pinned serial (LTSC_THREADS=1) for timing or debugging.
    [[nodiscard]] static std::size_t threads_from_env();

    /// Runs every scenario on a fresh simulator and returns the Table-I
    /// metrics in scenario order.  Scenarios must have a controller
    /// factory; exceptions from any run propagate to the caller.
    [[nodiscard]] std::vector<run_metrics> run(const std::vector<scenario>& scenarios);

    /// Generic deterministic fan-out: returns {fn(0), ..., fn(count-1)}
    /// with fn invocations distributed across the pool.  Result must be
    /// default-constructible; fn must be safe to call concurrently.
    template <typename Result>
    [[nodiscard]] std::vector<Result> map(std::size_t count,
                                          const std::function<Result(std::size_t)>& fn) {
        std::vector<Result> out(count);
        pool_.run_indexed(count, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

private:
    util::thread_pool pool_;
};

}  // namespace ltsc::sim
