// The paper's experimental protocol (Section IV) as reusable runners.
//
// Every characterization experiment follows the same conditions:
//   (i)   isolated environment at 24 degC ambient;
//   (ii)  cold start forced by >= 10 min of idle with fans at 3600 RPM;
//   (iii) at t = 0 the fans are set to the target speed and the machine
//         idles 5 more minutes for stabilization;
//   (iv)  the last 10 minutes run with the CPUs idle.
//
// `run_protocol_experiment` reproduces that timeline (Fig. 1's 45-minute
// x-axis: 5 min idle + 30 min load + 10 min idle); `run_steady_sweep`
// jumps straight to the steady state of each (utilization, RPM) pair,
// which is what the leakage fitting and LUT generation consume.
#pragma once

#include <vector>

#include "sim/server_simulator.hpp"
#include "workload/loadgen.hpp"

namespace ltsc::sim {

/// Timing of the Section-IV protocol.
struct protocol_timing {
    util::seconds_t stabilization{5.0 * 60.0};  ///< Idle head after fan set.
    util::seconds_t load_window{30.0 * 60.0};   ///< LoadGen active window.
    util::seconds_t cooldown{10.0 * 60.0};      ///< Idle tail.

    [[nodiscard]] util::seconds_t total() const {
        return stabilization + load_window + cooldown;
    }
};

/// Runs one protocol experiment on `sim`: cold start, fans to `fan_rpm`,
/// 5 min idle, `duty_pct` load for the load window, 10 min idle.  The
/// simulator's trace afterwards covers the full timeline.
void run_protocol_experiment(server_simulator& sim, util::rpm_t fan_rpm, double duty_pct,
                             const protocol_timing& timing = {},
                             const workload::loadgen_config& lg = {});

/// One steady-state operating point of the plant.
struct steady_point {
    double utilization_pct = 0.0;  ///< Constant (PWM-average) utilization.
    double fan_rpm = 0.0;          ///< All pairs at this speed.
    double avg_cpu_temp_c = 0.0;   ///< Steady mean die temperature.
    double dimm_temp_c = 0.0;      ///< Steady DIMM bank temperature.
    double fan_power_w = 0.0;      ///< Fan bank electrical power.
    double leakage_power_w = 0.0;  ///< Ground-truth leakage power.
    double active_power_w = 0.0;   ///< Active power.
    double total_power_w = 0.0;    ///< Wall power.
};

/// Evaluates the steady state at one (utilization, RPM) pair.
[[nodiscard]] steady_point measure_steady_point(server_simulator& sim, double utilization_pct,
                                                util::rpm_t fan_rpm);

/// Full characterization sweep over the cross product of utilization
/// levels and fan speeds (the paper sweeps U in {10, 25, 40, 50, 60, 75,
/// 90, 100} and RPM in {1800 ... 4200}).
[[nodiscard]] std::vector<steady_point> run_steady_sweep(server_simulator& sim,
                                                         const std::vector<double>& utilizations,
                                                         const std::vector<util::rpm_t>& fan_speeds);

/// The utilization levels of the paper's characterization (Section IV).
[[nodiscard]] std::vector<double> paper_utilization_levels();

}  // namespace ltsc::sim
