#include "sim/trace_io.hpp"

#include <array>
#include <cmath>
#include <ostream>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace ltsc::sim {

namespace {

[[nodiscard]] bool channel_from_name(const std::string& name, trace_channel& out) {
    for (std::size_t c = 0; c < trace_channel_count; ++c) {
        if (name == trace_channel_name(static_cast<trace_channel>(c))) {
            out = static_cast<trace_channel>(c);
            return true;
        }
    }
    return false;
}

[[nodiscard]] double parse_cell(const std::string& cell) {
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(cell, &pos);
    } catch (const std::exception&) {
        throw util::parse_error("read_trace_csv: unparseable number: " + cell);
    }
    // std::stod happily parses "nan"/"inf"; a trace cell holding one is
    // a corrupted dump, which is the reader's (parse_error) domain.
    if (pos != cell.size() || !std::isfinite(v)) {
        throw util::parse_error("read_trace_csv: unparseable number: " + cell);
    }
    return v;
}

/// Appends a parsed row, translating the store's precondition failures
/// (e.g. a non-monotonic time column) into the documented parse_error.
void append_parsed(simulation_trace& out, double t, const trace_row& row) {
    try {
        out.append(t, row);
    } catch (const util::precondition_error& e) {
        throw util::parse_error(std::string("read_trace_csv: ") + e.what());
    }
}

[[nodiscard]] simulation_trace read_columnar(const util::csv_document& doc) {
    if (doc.header.size() != 1 + trace_channel_count) {
        throw util::parse_error("read_trace_csv: columnar header must be time_s + 16 channels");
    }
    std::array<std::size_t, trace_channel_count> column_of{};  // channel -> CSV column
    std::array<bool, trace_channel_count> seen{};
    for (std::size_t j = 1; j < doc.header.size(); ++j) {
        trace_channel c{};
        if (!channel_from_name(doc.header[j], c)) {
            throw util::parse_error("read_trace_csv: unknown channel " + doc.header[j]);
        }
        const auto i = static_cast<std::size_t>(c);
        if (seen[i]) {
            throw util::parse_error("read_trace_csv: duplicate channel " + doc.header[j]);
        }
        seen[i] = true;
        column_of[i] = j;
    }
    simulation_trace out;
    trace_row row;
    for (const auto& cells : doc.rows) {
        const double t = parse_cell(cells[0]);
        for (std::size_t c = 0; c < trace_channel_count; ++c) {
            row.values[c] = parse_cell(cells[column_of[c]]);
        }
        append_parsed(out, t, row);
    }
    return out;
}

[[nodiscard]] simulation_trace read_legacy_long(const util::csv_document& doc) {
    const std::size_t series_col = util::column_index(doc, "series");
    const std::size_t time_col = util::column_index(doc, "time_s");
    const std::size_t value_col = util::column_index(doc, "value");

    // The legacy writer emits each channel as one contiguous block; a
    // channel name that re-appears after its block closed is a duplicate.
    std::array<std::vector<util::sample>, trace_channel_count> channels;
    std::array<bool, trace_channel_count> completed{};
    bool any = false;
    trace_channel current{};
    for (const auto& cells : doc.rows) {
        const std::string& name = cells[series_col];
        if (!any || name != trace_channel_name(current)) {
            trace_channel next{};
            if (!channel_from_name(name, next)) {
                throw util::parse_error("read_trace_csv: unknown channel " + name);
            }
            if (any) {
                completed[static_cast<std::size_t>(current)] = true;
            }
            if (completed[static_cast<std::size_t>(next)] ||
                !channels[static_cast<std::size_t>(next)].empty()) {
                throw util::parse_error("read_trace_csv: duplicate channel " + name);
            }
            current = next;
            any = true;
        }
        channels[static_cast<std::size_t>(current)].push_back(
            util::sample{parse_cell(cells[time_col]), parse_cell(cells[value_col])});
    }

    simulation_trace out;
    if (!any) {
        return out;  // header-only dump: an empty trace
    }
    const std::size_t rows = channels[0].size();
    for (std::size_t c = 0; c < trace_channel_count; ++c) {
        if (channels[c].empty()) {
            throw util::parse_error(std::string("read_trace_csv: missing channel ") +
                                    trace_channel_name(static_cast<trace_channel>(c)));
        }
        if (channels[c].size() != rows) {
            throw util::parse_error(std::string("read_trace_csv: channel out of step: ") +
                                    trace_channel_name(static_cast<trace_channel>(c)));
        }
    }
    trace_row row;
    for (std::size_t i = 0; i < rows; ++i) {
        const double t = channels[0][i].t;
        for (std::size_t c = 0; c < trace_channel_count; ++c) {
            if (channels[c][i].t != t) {
                throw util::parse_error("read_trace_csv: channels disagree on the time axis");
            }
            row.values[c] = channels[c][i].v;
        }
        append_parsed(out, t, row);
    }
    return out;
}

}  // namespace

std::vector<util::named_series> to_named_series(const trace_view& trace) {
    std::vector<util::named_series> out;
    out.reserve(trace_channel_count);
    for (std::size_t c = 0; c < trace_channel_count; ++c) {
        const auto ch = static_cast<trace_channel>(c);
        out.push_back(util::named_series{trace_channel_name(ch), trace_channel_unit(ch),
                                         trace.channel(ch).to_series()});
    }
    return out;
}

void write_trace_csv(std::ostream& os, const trace_view& trace) {
    util::csv_writer w(os);
    std::vector<std::string> header{"time_s"};
    for (std::size_t c = 0; c < trace_channel_count; ++c) {
        header.push_back(trace_channel_name(static_cast<trace_channel>(c)));
    }
    w.write_header(header);

    const util::column_view time = trace.channel(trace_channel::target_util);
    std::vector<double> row(1 + trace_channel_count);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        row[0] = time.t(i);
        for (std::size_t c = 0; c < trace_channel_count; ++c) {
            row[1 + c] = trace.channel(static_cast<trace_channel>(c)).v(i);
        }
        w.write_row(row);
    }
}

simulation_trace read_trace_csv(const std::string& text) {
    const util::csv_document doc = util::parse_csv(text);
    util::ensure_rectangular(doc);
    if (doc.header.empty()) {
        throw util::parse_error("read_trace_csv: empty document");
    }
    if (doc.header.front() == "time_s") {
        return read_columnar(doc);
    }
    if (doc.header == std::vector<std::string>{"series", "time_s", "value", "unit"}) {
        return read_legacy_long(doc);
    }
    throw util::parse_error("read_trace_csv: unrecognized trace layout");
}

void write_trace_csv_wide(std::ostream& os, const trace_view& trace, double sample_period_s) {
    util::ensure(sample_period_s > 0.0, "write_trace_csv_wide: non-positive period");
    util::ensure(!trace.empty(), "write_trace_csv_wide: empty trace");

    util::csv_writer w(os);
    std::vector<std::string> header{"time_s"};
    for (std::size_t c = 0; c < trace_channel_count; ++c) {
        header.push_back(trace_channel_name(static_cast<trace_channel>(c)));
    }
    w.write_header(header);

    const util::column_view power = trace.total_power();
    const double t0 = power.front().t;
    const double t1 = power.back().t;
    for (double t = t0; t <= t1 + 1e-9; t += sample_period_s) {
        std::vector<double> row{t};
        for (std::size_t c = 0; c < trace_channel_count; ++c) {
            row.push_back(trace.channel(static_cast<trace_channel>(c)).value_at(t));
        }
        w.write_row(row);
    }
}

}  // namespace ltsc::sim
