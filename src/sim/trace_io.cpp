#include "sim/trace_io.hpp"

#include <ostream>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace ltsc::sim {

std::vector<util::named_series> to_named_series(const simulation_trace& trace) {
    return {
        util::named_series{"target_util", "pct", trace.target_util},
        util::named_series{"instant_util", "pct", trace.instant_util},
        util::named_series{"cpu0_temp", "degC", trace.cpu0_temp},
        util::named_series{"cpu1_temp", "degC", trace.cpu1_temp},
        util::named_series{"avg_cpu_temp", "degC", trace.avg_cpu_temp},
        util::named_series{"max_sensor_temp", "degC", trace.max_sensor_temp},
        util::named_series{"dimm_temp", "degC", trace.dimm_temp},
        util::named_series{"total_power", "W", trace.total_power},
        util::named_series{"fan_power", "W", trace.fan_power},
        util::named_series{"leakage_power", "W", trace.leakage_power},
        util::named_series{"active_power", "W", trace.active_power},
        util::named_series{"avg_fan_rpm", "RPM", trace.avg_fan_rpm},
    };
}

void write_trace_csv(std::ostream& os, const simulation_trace& trace) {
    util::write_series_csv(os, to_named_series(trace));
}

void write_trace_csv_wide(std::ostream& os, const simulation_trace& trace,
                          double sample_period_s) {
    util::ensure(sample_period_s > 0.0, "write_trace_csv_wide: non-positive period");
    util::ensure(!trace.total_power.empty(), "write_trace_csv_wide: empty trace");
    const auto series = to_named_series(trace);

    util::csv_writer w(os);
    std::vector<std::string> header{"time_s"};
    for (const auto& s : series) {
        header.push_back(s.name);
    }
    w.write_header(header);

    const double t0 = trace.total_power.front().t;
    const double t1 = trace.total_power.back().t;
    for (double t = t0; t <= t1 + 1e-9; t += sample_period_s) {
        std::vector<double> row{t};
        for (const auto& s : series) {
            row.push_back(s.data.empty() ? 0.0 : s.data.value_at(t));
        }
        w.write_row(row);
    }
}

}  // namespace ltsc::sim
