// The coupled server plant: workload -> power -> thermal -> telemetry.
//
// This class stands in for the paper's physical testbed.  Its *control
// surface* is exactly what the paper's DLC-PC had: per-pair fan speed
// commands (the Agilent supplies) and `sar`-style utilization polling.
// Its *observation surface* is what CSTH reported: 4 CPU temperature
// sensors, 32 DIMM sensors, and whole-system power.  Plant internals
// (true die temperatures, exact power breakdown) are exposed separately
// for analysis, clearly marked as ground truth the real controllers could
// not see.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "core/fault_monitor.hpp"
#include "power/fan_model.hpp"
#include "power/leakage_model.hpp"
#include "power/server_power_model.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/server_config.hpp"
#include "sim/server_state.hpp"
#include "sim/simulation_trace.hpp"
#include "telemetry/harness.hpp"
#include "thermal/sensors.hpp"
#include "thermal/server_thermal_model.hpp"
#include "util/rng.hpp"
#include "util/time_series.hpp"
#include "workload/loadgen.hpp"

namespace ltsc::sim {

/// Simulated enterprise server.
class server_simulator {
public:
    /// Builds the plant from a configuration (validated on entry).
    explicit server_simulator(const server_config& config = paper_server());

    // Telemetry sources capture `this`; the plant is pinned in memory.
    server_simulator(const server_simulator&) = delete;
    server_simulator& operator=(const server_simulator&) = delete;
    server_simulator(server_simulator&&) = delete;
    server_simulator& operator=(server_simulator&&) = delete;

    // --- workload binding -------------------------------------------------
    /// Installs the workload; resets simulation time to 0.
    void bind_workload(workload::loadgen generator);
    /// Convenience: binds a profile with default LoadGen settings.
    void bind_workload(const workload::utilization_profile& profile);

    /// Skews how the CPU-bound load splits across the two sockets:
    /// socket 0 receives `fraction_socket0` of the CPU heat (0.5 =
    /// balanced, the paper's LoadGen default).  Utilization telemetry is
    /// skewed to match.
    void set_load_imbalance(double fraction_socket0);
    [[nodiscard]] double load_imbalance() const { return imbalance_; }

    /// Per-socket `sar` utilization: the socket's share of the measured
    /// load expressed against one socket's capacity (can exceed the
    /// system-level number under imbalance).
    [[nodiscard]] double measured_socket_utilization(std::size_t socket,
                                                     util::seconds_t window) const;

    // --- fault injection ----------------------------------------------------
    /// Installs a fault campaign (copied).  Events fire at the top of the
    /// step whose start time reaches them; any live effects from a
    /// previous binding clear.  force_cold_start rewinds the campaign to
    /// its first event along with the clock.  Targets are validated
    /// against this plant's fan and sensor counts.  At least one fan
    /// pair must stay healthy at all times — a schedule failing every
    /// pair at once trips the plant's airflow precondition when it fires.
    void bind_fault_schedule(fault_schedule schedule);
    /// Removes the campaign and clears every live effect.
    void clear_fault_schedule();
    /// The bound campaign, or nullptr (predictive controllers bind it to
    /// their rollout lanes like the workload preview).
    [[nodiscard]] const fault_schedule* bound_fault_schedule() const {
        return fault_schedule_ ? &*fault_schedule_ : nullptr;
    }
    /// Live fault effects (which fans/sensors are degraded right now).
    [[nodiscard]] const fault_state& current_fault_state() const { return fault_; }

    /// The residual monitor, or nullptr when config().monitor.enabled is
    /// false.  Read-only: the monitor is a passive observer of the plant
    /// (it never perturbs dynamics or the sensor RNG stream).
    [[nodiscard]] const core::fault_monitor* monitor() const {
        return monitor_ ? &*monitor_ : nullptr;
    }

    /// Age of the last telemetry poll: now minus the last poll time, or
    /// +infinity before the first poll.  Under telemetry loss this grows
    /// past the poll period — the failsafe controller's trigger.
    [[nodiscard]] double telemetry_age_s() const {
        return telemetry_.ever_polled() ? now_s_ - telemetry_.last_poll_time()
                                        : std::numeric_limits<double>::infinity();
    }

    // --- control surface (what the DLC-PC could actuate/poll) -------------
    /// Commands one fan pair; the plant clamps to the legal RPM range.
    /// A pair under a fan fault latches the command without actuating it
    /// (applied on recovery, like re-plugging a PWM line); latched
    /// commands do not count as fan-speed changes.
    void set_fan_speed(std::size_t pair_index, util::rpm_t rpm);
    /// Commands all pairs at once (counts as a single fan-speed change).
    void set_all_fans(util::rpm_t rpm);
    /// Tachometer reading of one pair: the commanded speed, or 0 while
    /// the pair's rotor is failed.
    [[nodiscard]] util::rpm_t fan_speed(std::size_t pair_index) const;
    [[nodiscard]] util::rpm_t average_fan_rpm() const;
    /// Cumulative number of commands that actually changed a speed.
    [[nodiscard]] std::size_t fan_change_count() const { return fan_changes_; }
    /// Zeroes the fan-change counter (e.g. after applying a run's initial
    /// speed, which Table I does not count as a controller action).
    void reset_fan_change_counter() { fan_changes_ = 0; }

    /// `sar`-style utilization: mean instantaneous utilization over the
    /// trailing `window` (the DLC-PC polls this every second).
    [[nodiscard]] double measured_utilization(util::seconds_t window) const;

    // --- observation surface (what CSTH reported) --------------------------
    /// Latest CPU sensor readings (4 values), from the last telemetry poll.
    [[nodiscard]] std::vector<double> cpu_sensor_temps() const;
    /// Maximum of the CPU sensor readings at the last telemetry poll.
    [[nodiscard]] util::celsius_t max_cpu_sensor_temp() const;
    /// Whole-system power as the power sensor reports it.
    [[nodiscard]] util::watts_t system_power_reading() const;
    /// The underlying telemetry harness (channel access, CSV export).
    [[nodiscard]] const telemetry::harness& telemetry() const { return telemetry_; }

    // --- ground truth (plant internals; not visible to real controllers) ---
    [[nodiscard]] util::celsius_t true_cpu_temp(std::size_t socket) const;
    [[nodiscard]] util::celsius_t true_avg_cpu_temp() const;
    [[nodiscard]] util::celsius_t true_dimm_temp() const;
    [[nodiscard]] power::power_breakdown current_power() const;

    // --- time ---------------------------------------------------------------
    /// Advances the plant by `dt` (default cadence 1 s).
    void step(util::seconds_t dt = util::seconds_t{1.0});
    /// Repeatedly steps until `duration` has elapsed.
    void advance(util::seconds_t duration, util::seconds_t dt = util::seconds_t{1.0});
    [[nodiscard]] util::seconds_t now() const { return util::seconds_t{now_s_}; }

    /// Applies the paper's cold-start protocol: temperatures settle to the
    /// idle steady state with fans at the cold-start speed; time rewinds
    /// to 0 and the trace clears.
    void force_cold_start();

    /// Jumps the plant to the self-consistent steady state of a constant
    /// utilization at the current fan speeds (characterization sweeps use
    /// this instead of integrating long transients).  Does not touch the
    /// trace or simulation time.
    void settle_at(double u_pct);

    /// Steady-state idle wall power at the given fan speed (the quantity
    /// the paper subtracts to compute net savings).
    [[nodiscard]] util::watts_t idle_power(util::rpm_t fan_rpm) const;

    /// Changes the room (inlet) temperature mid-run; takes effect through
    /// the plant dynamics on subsequent steps (ambient sweeps and aisle
    /// drift studies mutate this while a run is in flight).
    void set_ambient(util::celsius_t t);
    [[nodiscard]] util::celsius_t ambient() const { return thermal_.ambient(); }

    // --- state save/restore --------------------------------------------------
    /// Writes the plant's complete dynamic state into `out` (overwriting
    /// it; see server_state for exactly what that covers).  Pure read:
    /// the plant is left untouched, so interleaving snapshots with
    /// stepping cannot perturb a run.
    void snapshot_state(server_state& out) const;
    [[nodiscard]] server_state snapshot_state() const;

    /// Rewinds the plant to a snapshot taken from this simulator (or any
    /// plant built from the same configuration).  The workload binding
    /// is left as-is — bind the matching workload first; restore after,
    /// since binding resets the clock this call sets.  Recording
    /// restarts: the trace and telemetry histories clear and refill from
    /// the snapshot instant.  Subsequent stepping is bitwise-identical
    /// to the source plant's (snapshot_roundtrip suite).
    void restore_state(const server_state& state);

    /// The bound workload, or nullptr before any bind_workload call
    /// (read-only; predictive controllers use it as the rollout preview).
    [[nodiscard]] const workload::loadgen* workload() const {
        return workload_ ? &*workload_ : nullptr;
    }

    // --- recording -----------------------------------------------------------
    [[nodiscard]] const simulation_trace& trace() const { return trace_; }
    void clear_trace();

    [[nodiscard]] const server_config& config() const { return config_; }

private:
    void apply_airflow();
    void apply_heat(double u_inst);
    [[nodiscard]] power::power_breakdown breakdown_at(double u_inst) const;
    void record(double u_target, double u_inst);
    void register_telemetry();
    void apply_due_faults();
    void apply_fault_event(const fault_event& event);
    void clear_fault_effects();
    [[nodiscard]] double corrupt_sensor_reading(std::size_t sensor, double raw) const;

    server_config config_;
    util::pcg32 rng_;
    power::fan_bank fans_;
    power::leakage_model leakage_;
    power::active_model active_;
    thermal::server_thermal_model thermal_;
    thermal::server_sensor_suite sensors_;
    telemetry::harness telemetry_;
    std::optional<workload::loadgen> workload_;

    double now_s_ = 0.0;
    double imbalance_ = 0.5;
    std::size_t fan_changes_ = 0;
    simulation_trace trace_;

    std::optional<fault_schedule> fault_schedule_;
    fault_state fault_;  ///< Always sized, so snapshots are always valid.
    std::optional<core::fault_monitor> monitor_;  ///< Present iff config.monitor.enabled.

    // Cached latest sensor readings (refreshed at each telemetry poll).
    std::vector<double> last_cpu_sensor_reads_;
};

/// Steady-state idle wall power of a server described by `config` with
/// every fan pair at `fan_rpm`.  Shared by server_simulator::idle_power
/// and server_batch::idle_power so both report the same accounting floor.
[[nodiscard]] util::watts_t steady_idle_power(const server_config& config, util::rpm_t fan_rpm);

}  // namespace ltsc::sim
