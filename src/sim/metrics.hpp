// Table-I metrics: the quantities the paper reports per test and
// controller.
//
//   Test | Control | Energy (kWh) | Net Savings | Peak Pwr (W) |
//   Max Temp (degC) | #fan changes | Avg RPM
//
// "Net savings" follow the paper's definition: idle energy (idle power
// times test duration) is subtracted from both the controller's and the
// baseline's energy before comparing, because the idle floor cannot be
// influenced by fan control.
#pragma once

#include <cstddef>
#include <string>

#include "sim/fault_schedule.hpp"
#include "sim/server_simulator.hpp"
#include "util/units.hpp"

namespace ltsc::sim {

/// One row of Table I.
struct run_metrics {
    std::string test_name;        ///< "Test-1" ... "Test-4".
    std::string controller_name;  ///< "Default", "Bang", "LUT", ...
    double energy_kwh = 0.0;      ///< Integral of wall power over the run.
    double peak_power_w = 0.0;    ///< Maximum instantaneous wall power.
    double max_temp_c = 0.0;      ///< Maximum CPU sensor reading.
    std::size_t fan_changes = 0;  ///< Fan speed changes issued.
    double avg_rpm = 0.0;         ///< Time-average commanded RPM.
    double avg_cpu_temp_c = 0.0;  ///< Time-average of the die mean.
    double duration_s = 0.0;      ///< Trace span.
};

class server_batch;

/// Extracts the metrics from a finished run's trace view (the core
/// shared by the scalar and batched plants — a `simulation_trace`
/// converts implicitly).  `fan_changes` is the plant's counter at
/// extraction time.  Throws precondition_error when the trace has fewer
/// than 2 samples.  Channels cannot drift out of step: the columnar
/// store appends every channel in one row.
[[nodiscard]] run_metrics compute_metrics(const trace_view& trace, std::size_t fan_changes,
                                          std::string test_name, std::string controller_name);

/// Extracts the metrics from a finished run's trace.
[[nodiscard]] run_metrics compute_metrics(const server_simulator& sim, std::string test_name,
                                          std::string controller_name);

/// Extracts the metrics of one server_batch lane.
[[nodiscard]] run_metrics compute_metrics(const server_batch& batch, std::size_t lane,
                                          std::string test_name, std::string controller_name);

/// Fault-detection quality of one recorded run, extracted from the
/// monitor health channels the plant records every step.  Over a
/// *healthy* run (no schedule) any alarm step is a false positive; over
/// a faulted run, pass the campaign so each onset gets a time-to-detect
/// against the matching health channel.
struct detection_summary {
    std::size_t samples = 0;            ///< Trace rows inspected.
    std::size_t alarm_steps = 0;        ///< Rows with any verdict >= suspect.
    std::size_t sensor_alarm_steps = 0; ///< Rows with worst sensor verdict >= suspect.
    std::size_t fan_alarm_steps = 0;    ///< Rows with worst fan verdict >= suspect.
    double first_sensor_alarm_s = -1.0; ///< Time of the first sensor alarm (-1 = none).
    double first_fan_alarm_s = -1.0;    ///< Time of the first fan alarm (-1 = none).

    // Campaign-relative detection (zero without a schedule).  Telemetry
    // losses are excluded: staleness is the failsafe watchdog's domain,
    // not the residual monitor's.
    std::size_t fault_onsets = 0;           ///< Fan/sensor onsets considered.
    std::size_t detected = 0;               ///< Onsets alarmed before recovery.
    double mean_time_to_detect_s = 0.0;     ///< Over detected onsets.
    double max_time_to_detect_s = 0.0;

    // Drift-specific latency (subset of the counts above): sensor_drift
    // onsets ramp from zero error, so their time-to-detect measures the
    // CUSUM's accumulation latency rather than the instantaneous
    // threshold's poll alignment.
    std::size_t drift_onsets = 0;            ///< sensor_drift onsets considered.
    std::size_t drift_detected = 0;          ///< Drift onsets alarmed before recovery.
    double mean_drift_time_to_detect_s = 0.0;  ///< Over detected drift onsets.
    double max_drift_time_to_detect_s = 0.0;

    /// Fraction of rows carrying any alarm (the healthy-run false-positive
    /// rate when no faults were injected).
    [[nodiscard]] double alarm_fraction() const {
        return samples == 0 ? 0.0
                            : static_cast<double>(alarm_steps) / static_cast<double>(samples);
    }
};

/// Extracts the detection summary from a recorded trace.  `schedule`
/// (optional) attributes alarms to fault onsets: for each fan/sensor
/// onset the matching health channel is scanned from the onset to the
/// component's recovery (or the trace end) for the first suspect-or-worse
/// verdict.  Works on monitor-off traces too (all-zero channels — no
/// alarms, nothing detected).
[[nodiscard]] detection_summary compute_detection_summary(const trace_view& trace,
                                                          const fault_schedule* schedule = nullptr);

/// Net energy savings of `candidate` vs. `baseline` per the paper's
/// definition.  `idle_power` is the steady idle wall power; the idle
/// energy over the run duration is subtracted from both sides.  Returns a
/// fraction (0.087 = 8.7 %).  Throws when the baseline's net energy is
/// not positive.
[[nodiscard]] double net_savings(const run_metrics& candidate, const run_metrics& baseline,
                                 util::watts_t idle_power);

}  // namespace ltsc::sim
