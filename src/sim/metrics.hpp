// Table-I metrics: the quantities the paper reports per test and
// controller.
//
//   Test | Control | Energy (kWh) | Net Savings | Peak Pwr (W) |
//   Max Temp (degC) | #fan changes | Avg RPM
//
// "Net savings" follow the paper's definition: idle energy (idle power
// times test duration) is subtracted from both the controller's and the
// baseline's energy before comparing, because the idle floor cannot be
// influenced by fan control.
#pragma once

#include <string>

#include "sim/server_simulator.hpp"
#include "util/units.hpp"

namespace ltsc::sim {

/// One row of Table I.
struct run_metrics {
    std::string test_name;        ///< "Test-1" ... "Test-4".
    std::string controller_name;  ///< "Default", "Bang", "LUT", ...
    double energy_kwh = 0.0;      ///< Integral of wall power over the run.
    double peak_power_w = 0.0;    ///< Maximum instantaneous wall power.
    double max_temp_c = 0.0;      ///< Maximum CPU sensor reading.
    std::size_t fan_changes = 0;  ///< Fan speed changes issued.
    double avg_rpm = 0.0;         ///< Time-average commanded RPM.
    double avg_cpu_temp_c = 0.0;  ///< Time-average of the die mean.
    double duration_s = 0.0;      ///< Trace span.
};

class server_batch;

/// Extracts the metrics from a finished run's trace view (the core
/// shared by the scalar and batched plants — a `simulation_trace`
/// converts implicitly).  `fan_changes` is the plant's counter at
/// extraction time.  Throws precondition_error when the trace has fewer
/// than 2 samples.  Channels cannot drift out of step: the columnar
/// store appends every channel in one row.
[[nodiscard]] run_metrics compute_metrics(const trace_view& trace, std::size_t fan_changes,
                                          std::string test_name, std::string controller_name);

/// Extracts the metrics from a finished run's trace.
[[nodiscard]] run_metrics compute_metrics(const server_simulator& sim, std::string test_name,
                                          std::string controller_name);

/// Extracts the metrics of one server_batch lane.
[[nodiscard]] run_metrics compute_metrics(const server_batch& batch, std::size_t lane,
                                          std::string test_name, std::string controller_name);

/// Net energy savings of `candidate` vs. `baseline` per the paper's
/// definition.  `idle_power` is the steady idle wall power; the idle
/// energy over the run duration is subtracted from both sides.  Returns a
/// fraction (0.087 = 8.7 %).  Throws when the baseline's net energy is
/// not positive.
[[nodiscard]] double net_savings(const run_metrics& candidate, const run_metrics& baseline,
                                 util::watts_t idle_power);

}  // namespace ltsc::sim
