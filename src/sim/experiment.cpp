#include "sim/experiment.hpp"

#include "util/error.hpp"
#include "workload/profile.hpp"

namespace ltsc::sim {

void run_protocol_experiment(server_simulator& sim, util::rpm_t fan_rpm, double duty_pct,
                             const protocol_timing& timing, const workload::loadgen_config& lg) {
    util::ensure(duty_pct >= 0.0 && duty_pct <= 100.0,
                 "run_protocol_experiment: duty out of [0, 100]");
    workload::utilization_profile profile("protocol");
    profile.idle(timing.stabilization);
    if (duty_pct > 0.0) {
        profile.constant(duty_pct, timing.load_window);
    } else {
        profile.idle(timing.load_window);
    }
    profile.idle(timing.cooldown);

    sim.bind_workload(workload::loadgen(std::move(profile), lg));
    sim.force_cold_start();
    sim.set_all_fans(fan_rpm);
    sim.advance(timing.total());
}

steady_point measure_steady_point(server_simulator& sim, double utilization_pct,
                                  util::rpm_t fan_rpm) {
    util::ensure(utilization_pct >= 0.0 && utilization_pct <= 100.0,
                 "measure_steady_point: utilization out of [0, 100]");
    sim.set_all_fans(fan_rpm);
    sim.settle_at(utilization_pct);

    steady_point p;
    p.utilization_pct = utilization_pct;
    p.fan_rpm = sim.average_fan_rpm().value();
    p.avg_cpu_temp_c = sim.true_avg_cpu_temp().value();
    p.dimm_temp_c = sim.true_dimm_temp().value();

    // Build the breakdown at the settled temperatures.  The simulator's
    // breakdown uses the bound workload's instantaneous utilization, so we
    // assemble the steady numbers from the component models directly.
    const power::power_breakdown live = sim.current_power();
    p.fan_power_w = live.fan.value();
    p.leakage_power_w = live.leakage.value();
    p.active_power_w = sim.config().active_coeff_w_per_pct * utilization_pct;
    p.total_power_w = sim.config().base_power_w + p.active_power_w + p.leakage_power_w +
                      p.fan_power_w;
    return p;
}

std::vector<steady_point> run_steady_sweep(server_simulator& sim,
                                           const std::vector<double>& utilizations,
                                           const std::vector<util::rpm_t>& fan_speeds) {
    util::ensure(!utilizations.empty() && !fan_speeds.empty(),
                 "run_steady_sweep: empty sweep axes");
    std::vector<steady_point> out;
    out.reserve(utilizations.size() * fan_speeds.size());
    for (double u : utilizations) {
        for (util::rpm_t rpm : fan_speeds) {
            out.push_back(measure_steady_point(sim, u, rpm));
        }
    }
    return out;
}

std::vector<double> paper_utilization_levels() {
    return {10.0, 25.0, 40.0, 50.0, 60.0, 75.0, 90.0, 100.0};
}

}  // namespace ltsc::sim
