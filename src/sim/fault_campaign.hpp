// Chaos-sweep harness: one randomized fault campaign, end to end.
//
// A campaign run is a controlled experiment with a twin: the same plant,
// workload, and controller stack — Failsafe(Bang), the hardened reactive
// baseline — is driven twice from the same cold start, once healthy and
// once with a seeded random fault schedule bound.  Comparing the pair
// turns "the controller survived" into quantitative invariants:
//
//   * thermal envelope — the *true* die temperatures (not the possibly
//     lying sensors) of the faulted run stay under a cap.  The generator
//     keeps the guard truthful (each die retains one unfaulted sensor;
//     biases are non-negative by default), so the controller always has
//     an honest worst-case reading to act on;
//   * bounded energy regret — surviving faults costs fan power (failsafe
//     overrides, failed-pair compensation), but only a bounded factor
//     over the healthy twin;
//   * bitwise replayability — the same campaign seed reproduces the
//     faulted run exactly, every field of the outcome included.
//
// The sweep (bench/fault_campaign, tests/fault_campaign_test) runs this
// over hundreds of seeds.  Campaigns with a fan failure are judged
// against a wider envelope: a dead pair leaves its zone only the mixed
// 30 % share of the survivors' airflow, which physically raises the
// reachable steady temperature no controller can undo.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/failsafe_controller.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/metrics.hpp"

namespace ltsc::sim {

/// Which campaign generator a sweep draws from.
enum class campaign_class : int {
    /// The original survivable class: one fault at a time, truthful
    /// guard (each die keeps an honest sensor, biases non-negative).
    survivable = 0,
    /// One sustained negative-bias episode covering a whole die's (or
    /// every) CPU sensor — the guard-defeating failure only a residual
    /// monitor catches.  Judged under sustained 90 % load (the square
    /// wave's 150 s halves are shorter than the plant's thermal time
    /// constant, masking the hidden excursion).  Judge with
    /// `monitored = true`: unmitigated, the class breaches its envelope.
    lying_sensor,
    /// Rack-level correlated PSU events: several fan pairs die at the
    /// same instant (up to fan_pairs - 1), recovering together.
    correlated,
    /// Slow negative sensor drifts (0.02-0.1 degC/s ramps) on one die's
    /// or every CPU sensor, optionally overlapped by an intermittent
    /// burst bias on the other die — the sub-threshold classes only the
    /// CUSUM accumulator catches.  Judged under sustained 90 % load with
    /// `monitored = true`, like lying_sensor: unmitigated, a matured
    /// drift parks the fans at minimum and the die runs away.
    drifting_sensor,
};

/// Human-readable class name ("survivable", ...).
[[nodiscard]] const char* to_string(campaign_class c);

/// Fixed (non-seed) parameters of a campaign run.
struct fault_campaign_options {
    /// Run length; also the window faults are drawn over.
    double duration_s = 900.0;
    /// Plant seed (sensor-noise stream); independent of the campaign seed.
    std::uint64_t plant_seed = 0x5eed;
    /// Fault-generator shape (duration_s inside is overridden to match;
    /// the correlated class also overrides the correlation knobs).
    fault_campaign_config faults{};
    /// Failsafe wrapper tunables for the controller under test.
    core::failsafe_config failsafe{};
    /// Generator class the campaign seed is drawn through.
    campaign_class fault_class = campaign_class::survivable;
    /// Run both legs with the residual monitor enabled (the failsafe
    /// then overrides distrusted sensors with model-backed estimates).
    bool monitored = false;
};

/// Everything a sweep needs to judge one campaign.
struct fault_campaign_result {
    fault_schedule schedule;        ///< The generated campaign.
    run_metrics healthy;            ///< Twin run, no faults bound.
    run_metrics faulted;            ///< Same stack with the campaign bound.
    double healthy_max_die_c = 0.0; ///< Max true die temp, healthy trace.
    double faulted_max_die_c = 0.0; ///< Max true die temp, faulted trace.
    double energy_ratio = 0.0;      ///< faulted energy / healthy energy.
    bool fan_fault = false;         ///< Campaign includes a fan failure/stuck.
    campaign_class fault_class = campaign_class::survivable;  ///< Generator used.
    bool monitored = false;         ///< Legs ran with the residual monitor on.
    /// Monitor-channel summaries of both legs (all-zero when not
    /// monitored).  Healthy-leg alarms are false positives; the faulted
    /// leg carries the per-onset time-to-detect stats.
    detection_summary healthy_detection;
    detection_summary faulted_detection;
};

/// Runs the healthy/faulted twin pair for one campaign seed.
[[nodiscard]] fault_campaign_result run_fault_campaign(std::uint64_t campaign_seed,
                                                       const fault_campaign_options& options = {});

/// Acceptance thresholds for a campaign outcome.  Defaults are calibrated
/// against the paper plant under the sweep's 30/90 % square workload over
/// a 5000-seed sweep of the default generator class:
///  * no fan fault: worst observed true-die max 75.6 degC (the truthful
///    guard holds the bang-bang band; its hard ceiling is the 80 degC
///    jump-to-max threshold) — cap 82;
///  * fan fault: worst observed 98.3 degC — a dead pair's zone keeps
///    only the 30 % mixed share of the survivors' airflow, a rise no
///    controller can undo — cap 101;
///  * energy: worst observed regret 3.2 % (failsafe overrides plus
///    failed-pair compensation) — cap 15 %.
struct fault_campaign_limits {
    /// True-die cap when every fan pair works (sensor/telemetry faults only).
    double envelope_c = 82.0;
    /// True-die cap when the campaign kills or sticks a fan pair.
    double fan_fault_envelope_c = 101.0;
    /// Max faulted/healthy energy ratio (regret bound).
    double max_energy_ratio = 1.15;
    /// True-die cap for the lying-sensor class judged *with* the
    /// monitor-backed failsafe (1000-seed calibration: worst observed
    /// 75.4 degC — detection lands within ~2 polls and the override
    /// steers on the model estimate, so the excursion never leaves the
    /// bang-bang band).  The cap is deliberately below the *unmitigated*
    /// worst (81.5 degC over the same seeds with the monitor off): the
    /// gate fails if the mitigation stops carrying its weight.
    double lying_sensor_envelope_c = 78.0;
    /// True-die cap for the correlated class: with up to fan_pairs - 1
    /// pairs dead at once only one pair's airflow (plus 30 % mixing)
    /// cools the dead zones (1000-seed calibration: worst observed
    /// 120.2 degC).
    double correlated_envelope_c = 124.0;
    /// True-die cap for the drifting-sensor class judged *with* the
    /// monitor (1000-seed calibration: worst observed 76.4 degC — the
    /// CUSUM alarms while the instantaneous error is still small, so the
    /// override lands before the excursion grows; zero healthy-leg false
    /// alarms over the same seeds).  Deliberately below the *unmitigated*
    /// worst (80.3 degC, with 223/1000 seeds over this cap when the
    /// monitor is off): the gate fails if the CUSUM stops carrying its
    /// weight.
    double drifting_sensor_envelope_c = 78.0;
    /// Energy-regret cap for the correlated class (1000-seed worst
    /// observed 3.7 %: compensating several dead pairs simultaneously
    /// stays within the single-fault regret bound).
    double correlated_max_energy_ratio = 1.15;
};

/// Checks one outcome against the limits; returns a human-readable
/// violation description, or nullopt when every invariant holds.
[[nodiscard]] std::optional<std::string> campaign_violation(
    const fault_campaign_result& result, const fault_campaign_limits& limits = {});

}  // namespace ltsc::sim
