// Deterministic, replayable fault injection for the server plant.
//
// ROADMAP item 5: every scenario so far assumes healthy hardware, but
// the paper's claim — keep the fleet inside the 75 degC envelope while
// shaving energy — only means something when fans stick, sensors lie,
// and telemetry drops.  A fault_schedule is an immutable, time-sorted
// list of fault events a plant binds like a workload; the plant fires
// every due event at the top of each step, mutating a small per-plant
// fault_state.  Because the schedule is plain data and the randomized
// campaign generator draws from its own seeded PCG32 stream, any
// campaign replays bitwise from its seed — on any thread count — and an
// *empty* schedule leaves every plant path bitwise-identical to the
// healthy build (pinned by the golden/equivalence suites).
//
// Fault classes:
//  * fan_failure       — a fan pair's rotor dies: 0 RPM, 0 W, 0 CFM; the
//                        pair ignores commands until fan_recover.
//  * fan_stuck_pwm     — the pair's PWM input dies: the pair keeps
//                        spinning at its current (or event-given) speed
//                        and ignores commands until fan_recover.
//  * fan_recover       — the pair resumes following the *last commanded*
//                        speed (commands issued during the outage were
//                        latched, exactly like re-plugging a PWM line).
//  * fan_tach_stuck    — the pair's rotor dies like fan_failure, but the
//                        tachometer keeps reporting the commanded speed:
//                        a lying tach that defeats command/tach residual
//                        monitoring.  Cleared by fan_recover.
//  * sensor_stuck      — a CPU sensor freezes at its current (or given)
//                        reading until sensor_recover.
//  * sensor_bias       — additive offset on one CPU sensor's readings
//                        (a lying sensor; positive = conservative).
//  * sensor_dropout    — readings lost for duration_s: the last
//                        delivered value is held.
//  * sensor_drift      — slow additive ramp on one sensor: the bias
//                        grows value degC per second from the onset
//                        until sensor_recover.  Walks under any fixed
//                        residual threshold; CUSUM territory.
//  * sensor_intermittent — burst on/off bias for duration_s: the offset
//                        `value` is applied during the on-phase of a
//                        fixed square wave (k_intermittent_* below), so
//                        no single poll streak stays bad long enough to
//                        trip consecutive-poll hysteresis.
//  * sensor_recover    — clears stuck/bias/dropout/drift/intermittent
//                        on one sensor.
//  * telemetry_loss    — the CSTH poller drops every poll for
//                        duration_s; controllers see stale observations
//                        (core::failsafe_controller reacts to the
//                        resulting sensor age).
//
// The runtime fault_state is part of sim::server_state, so snapshots of
// a degraded plant clone the degradation into rollout lanes
// (server_batch::load_lane_state) and restore it on rewind — the PR 5
// lookahead sees the same broken fans the committed trajectory does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ltsc::util {
class pcg32;
}  // namespace ltsc::util

namespace ltsc::sim {

/// Kind of one injected fault event.
enum class fault_kind : int {
    fan_failure = 0,
    fan_stuck_pwm,
    fan_recover,
    sensor_stuck,
    sensor_bias,
    sensor_dropout,
    sensor_recover,
    telemetry_loss,
    fan_tach_stuck,
    sensor_drift,
    sensor_intermittent,
};

/// Square-wave timing of sensor_intermittent bursts: the bias is live
/// while fmod(now - onset, period) < duty * period.  Fixed constants so
/// every plant (scalar and batch lanes) agrees bitwise.
inline constexpr double k_intermittent_period_s = 30.0;
inline constexpr double k_intermittent_duty = 0.5;

/// Human-readable kind name ("fan_failure", ...).
[[nodiscard]] const char* to_string(fault_kind kind);

/// One time-stamped fault.  `value` carries the stuck RPM / stuck
/// temperature / bias degC / drift rate degC-per-s depending on kind;
/// NaN means "at the current value" for the stuck kinds.  `duration_s`
/// spans the dropout / intermittent / loss kinds; every other kind
/// persists until its recover event.
struct fault_event {
    double t_s = 0.0;                        ///< Fire time (plant clock) [s].
    fault_kind kind = fault_kind::fan_failure;
    std::size_t target = 0;                  ///< Fan pair / CPU sensor index.
    double value = 0.0;                      ///< Stuck RPM / stuck degC / bias degC.
    double duration_s = 0.0;                 ///< Dropout / telemetry-loss span [s].
};

/// Immutable, time-sorted fault event list.  Bind one to a plant
/// (server_simulator::bind_fault_schedule / server_batch lane binding)
/// before the run; the plant validates targets against its own fan and
/// sensor counts at bind time.
class fault_schedule {
public:
    fault_schedule() = default;

    /// Takes any event order; stable-sorts by fire time (ties keep the
    /// caller's order).  Rejects negative times/durations and
    /// non-finite values other than the "at current" NaN convention.
    /// Also rejects incoherent campaigns: a recover event with no
    /// outstanding fault on its component (recover-before-fail), and two
    /// same-tick events on one component (or two same-tick telemetry
    /// losses), whose firing order the tie-break would silently decide.
    explicit fault_schedule(std::vector<fault_event> events);

    [[nodiscard]] const std::vector<fault_event>& events() const { return events_; }
    [[nodiscard]] bool empty() const { return events_.empty(); }
    [[nodiscard]] std::size_t size() const { return events_.size(); }

    /// Largest fan-pair / CPU-sensor index any event targets (0 when no
    /// event of that class exists); bind-time validation helpers.
    [[nodiscard]] std::size_t max_fan_target() const;
    [[nodiscard]] std::size_t max_sensor_target() const;

private:
    std::vector<fault_event> events_;
};

/// Knobs of the randomized campaign generator.  The defaults describe
/// the *survivable, truthful-guard* class the chaos sweep asserts the
/// envelope invariant over: at most one fan pair degraded at a time, at
/// most one CPU sensor per die faulted at a time (so the max-sensor
/// guard always has a truthful reading of the hottest die), and only
/// non-negative sensor bias (a sensor lying *hot* makes the controller
/// conservative; lying *cool* defeats any guard steering on raw
/// readings — FaultInjection.NegativeBiasDefeatsTheGuardWithoutMonitor
/// pins the defeat, and the residual monitor plus failsafe override is
/// the mitigation, exercised by make_lying_sensor_campaign).
struct fault_campaign_config {
    double duration_s = 900.0;        ///< Campaign span the events land in.
    std::size_t fan_pairs = 3;        ///< Plant fan-pair count.
    std::size_t cpu_sensors = 4;      ///< Plant CPU-sensor count (2 per die).
    std::size_t max_faults = 6;       ///< Fault onsets per campaign (>= 1).
    bool allow_fan_faults = true;
    bool allow_sensor_faults = true;
    bool allow_telemetry_loss = true;
    /// Negative bias = sensor lying cool; off for envelope campaigns.
    bool allow_negative_bias = false;
    double max_bias_c = 4.0;             ///< |bias| upper bound [degC].
    double min_fan_outage_s = 60.0;      ///< Fan fault span bounds [s].
    double max_fan_outage_s = 240.0;
    double max_sensor_outage_s = 120.0;  ///< Stuck/bias/dropout span cap [s].
    double max_telemetry_loss_s = 90.0;  ///< Poll-loss span cap [s].
    std::size_t max_concurrent_fan_faults = 1;  ///< Keeps >= 1 pair healthy.

    /// Correlated (rack-level) fan events: with probability
    /// `correlated_probability`, a drawn fan fault takes out up to
    /// `max_correlated_pairs` pairs *at the same instant* — one PSU rail
    /// dropping several fans at once — recovering together too.  The
    /// group is still capped by `max_concurrent_fan_faults`, so raise
    /// that cap alongside (the correlated campaign class uses
    /// fan_pairs - 1).  Off by default: with the flag false the
    /// generator's RNG stream is bitwise-identical to earlier revisions,
    /// preserving every calibrated campaign.
    bool correlated_fan_events = false;
    double correlated_probability = 0.6;   ///< P(group event | fan fault drawn).
    std::size_t max_correlated_pairs = 2;  ///< Pairs per correlated group.
};

/// Draws a randomized campaign from a dedicated PCG32 stream seeded
/// with `seed`: same seed, same schedule, bitwise, on every platform.
/// Generated campaigns respect the config's concurrency constraints
/// (fan faults never overlap beyond the cap, at most one sensor per die
/// is faulted at a time) and always emit recovery events that land
/// inside `duration_s` when the drawn outage fits.
[[nodiscard]] fault_schedule make_random_campaign(std::uint64_t seed,
                                                  const fault_campaign_config& config = {});

/// Draws a *lying-sensor* campaign from the same dedicated stream: one
/// sustained negative-bias episode (12–25 degC cool) covering every CPU
/// sensor of one die — or all of them — for 35–60% of the campaign,
/// starting 15–40% in.  This is the failure mode that defeats any
/// guard steering on raw sensor maxima (no truthful partner survives on
/// the lied-about die); only a model-based monitor catches it.  Uses
/// `duration_s` and `cpu_sensors` from the config; the other knobs are
/// ignored.
[[nodiscard]] fault_schedule make_lying_sensor_campaign(std::uint64_t seed,
                                                        const fault_campaign_config& config = {});

/// Draws a *drifting-sensor* campaign: one sustained sensor_drift
/// episode lying progressively *cool* (0.02–0.1 degC/s ramps — always
/// at or above the 0.02 degC/s detection floor the CUSUM sweep asserts
/// over) covering one die's full sensor complement — or every sensor —
/// for 30–50% of the campaign starting 15–35% in, plus (when the drift
/// spares a die) an optional sensor_intermittent burst episode on the
/// other die.  Every error here walks under the instantaneous residual
/// threshold for minutes; only accumulated-residual (CUSUM) detection
/// catches the onset.  Uses `duration_s` and `cpu_sensors` from the
/// config; the other knobs are ignored.
[[nodiscard]] fault_schedule make_drifting_sensor_campaign(
    std::uint64_t seed, const fault_campaign_config& config = {});

/// Per-plant dynamic fault state: which effects are live *now*, plus
/// the schedule cursor.  Part of sim::server_state, so degraded plants
/// snapshot/restore bitwise (snapshot_roundtrip + fault suites).
struct fault_state {
    static constexpr unsigned char fan_ok = 0;
    static constexpr unsigned char fan_failed = 1;
    static constexpr unsigned char fan_stuck = 2;
    static constexpr unsigned char fan_tach = 3;  ///< Rotor dead, tach lying.

    std::size_t next_event = 0;  ///< Index of the next unfired schedule event.

    std::vector<unsigned char> fan_mode;    ///< fan_ok / fan_failed / fan_stuck / fan_tach.
    std::vector<double> fan_commanded_rpm;  ///< Last command latched per pair.

    std::vector<unsigned char> sensor_stuck;      ///< 1 = frozen.
    std::vector<double> sensor_stuck_c;           ///< Frozen reading [degC].
    std::vector<double> sensor_bias_c;            ///< Additive bias [degC].
    std::vector<double> sensor_dropout_until_s;   ///< Dropout active while now < this.
    std::vector<double> sensor_drift_c_per_s;     ///< Ramp rate; 0 = no drift.
    std::vector<double> sensor_drift_start_s;     ///< Ramp anchor (onset time).
    std::vector<double> sensor_intermittent_c;    ///< Burst bias; 0 = none.
    std::vector<double> sensor_intermittent_start_s;  ///< Burst phase anchor.
    std::vector<double> sensor_intermittent_until_s;  ///< Bursts while now < this.

    double telemetry_lost_until_s = 0.0;  ///< Polls suppressed while now < this.

    /// Clears every effect and sizes the per-pair / per-sensor arrays.
    void reset(std::size_t fan_pairs, std::size_t cpu_sensors);

    [[nodiscard]] bool sized_for(std::size_t fan_pairs, std::size_t cpu_sensors) const {
        return fan_mode.size() == fan_pairs && fan_commanded_rpm.size() == fan_pairs &&
               sensor_stuck.size() == cpu_sensors && sensor_stuck_c.size() == cpu_sensors &&
               sensor_bias_c.size() == cpu_sensors &&
               sensor_dropout_until_s.size() == cpu_sensors &&
               sensor_drift_c_per_s.size() == cpu_sensors &&
               sensor_drift_start_s.size() == cpu_sensors &&
               sensor_intermittent_c.size() == cpu_sensors &&
               sensor_intermittent_start_s.size() == cpu_sensors &&
               sensor_intermittent_until_s.size() == cpu_sensors;
    }

    [[nodiscard]] bool any_fan_fault() const;
    [[nodiscard]] bool sensor_faulted(std::size_t sensor, double now_s) const;
    [[nodiscard]] bool any_sensor_fault(double now_s) const;
    /// Whether an intermittent episode's square wave is in its on-phase
    /// for this sensor right now (shared by scalar and batch plants so
    /// their corruption arithmetic agrees bitwise).
    [[nodiscard]] bool intermittent_burst_live(std::size_t sensor, double now_s) const;
    [[nodiscard]] bool telemetry_lost(double now_s) const {
        return now_s < telemetry_lost_until_s - 1e-9;
    }

    /// Any effect live at `now_s` (what rollout_controller checks to
    /// degrade to its baseline: an active fault means the rollout's
    /// model of the control surface is compromised).
    [[nodiscard]] bool any_active(double now_s) const;
};

}  // namespace ltsc::sim
