// Columnar per-step recording of a simulated server.
//
// Every plant step records the same 16 quantities at one timestamp.  The
// trace is therefore a frame — one shared, monotonic time column plus 16
// contiguous value columns — not 16 independent series: an append is a
// single timestamp check and one row write, channels can never drift out
// of step, and readers get cache-friendly contiguous columns.
//
// Three types cooperate:
//  * `trace_channel` / `trace_row` — the typed channel set and one step's
//    values.
//  * `trace_view` — a non-owning, read-only window exposing every channel
//    with the `time_series` read API (works over both the scalar frame
//    and `batch_trace`'s lane-major arena).
//  * `simulation_trace` — the owning store used by `server_simulator`.
#pragma once

#include <array>
#include <cstddef>

#include "util/frame.hpp"
#include "util/time_series.hpp"

namespace ltsc::sim {

/// Recorded channels, in recording/export order.
enum class trace_channel : std::size_t {
    target_util = 0,  ///< Commanded utilization [%].
    instant_util,     ///< PWM instantaneous utilization [%].
    cpu0_temp,        ///< True die temperature, socket 0 [degC].
    cpu1_temp,        ///< True die temperature, socket 1 [degC].
    avg_cpu_temp,     ///< Mean of the two dies [degC].
    max_sensor_temp,  ///< Max of the 4 CPU sensor readings [degC].
    dimm_temp,        ///< DIMM bank temperature [degC].
    total_power,      ///< System wall power [W].
    fan_power,        ///< Fan bank power [W].
    leakage_power,    ///< Leakage component [W].
    active_power,     ///< Active component [W].
    avg_fan_rpm,      ///< Mean commanded RPM.
    sensor_age,       ///< Age of the newest telemetry poll [s].
    monitor_sensor_health,  ///< Worst monitor sensor verdict (0/1/2); 0 when off.
    monitor_fan_health,     ///< Worst monitor fan-pair verdict (0/1/2); 0 when off.
    monitor_die_estimate,   ///< Monitor's max modeled die temp [degC]; 0 when off.
};

inline constexpr std::size_t trace_channel_count = 16;

/// Export name / unit label of a channel (e.g. "total_power" / "W").
[[nodiscard]] const char* trace_channel_name(trace_channel c);
[[nodiscard]] const char* trace_channel_unit(trace_channel c);

/// One step's values for every channel (the unit of appending).
struct trace_row {
    std::array<double, trace_channel_count> values{};

    [[nodiscard]] double& operator[](trace_channel c) {
        return values[static_cast<std::size_t>(c)];
    }
    [[nodiscard]] double operator[](trace_channel c) const {
        return values[static_cast<std::size_t>(c)];
    }
};

/// Read-only view of a recorded trace: the 16 channels over one shared
/// time axis.  Cheap to copy; invalidated by any mutation of the store
/// it was taken from (append/clear/destruction).
class trace_view {
public:
    trace_view() = default;

    [[nodiscard]] std::size_t size() const { return channels_[0].size(); }
    [[nodiscard]] bool empty() const { return channels_[0].empty(); }

    [[nodiscard]] util::column_view channel(trace_channel c) const {
        return channels_[static_cast<std::size_t>(c)];
    }

    // Named channel accessors (the 16 recorded quantities).
    [[nodiscard]] util::column_view target_util() const {
        return channel(trace_channel::target_util);
    }
    [[nodiscard]] util::column_view instant_util() const {
        return channel(trace_channel::instant_util);
    }
    [[nodiscard]] util::column_view cpu0_temp() const { return channel(trace_channel::cpu0_temp); }
    [[nodiscard]] util::column_view cpu1_temp() const { return channel(trace_channel::cpu1_temp); }
    [[nodiscard]] util::column_view avg_cpu_temp() const {
        return channel(trace_channel::avg_cpu_temp);
    }
    [[nodiscard]] util::column_view max_sensor_temp() const {
        return channel(trace_channel::max_sensor_temp);
    }
    [[nodiscard]] util::column_view dimm_temp() const { return channel(trace_channel::dimm_temp); }
    [[nodiscard]] util::column_view total_power() const {
        return channel(trace_channel::total_power);
    }
    [[nodiscard]] util::column_view fan_power() const { return channel(trace_channel::fan_power); }
    [[nodiscard]] util::column_view leakage_power() const {
        return channel(trace_channel::leakage_power);
    }
    [[nodiscard]] util::column_view active_power() const {
        return channel(trace_channel::active_power);
    }
    [[nodiscard]] util::column_view avg_fan_rpm() const {
        return channel(trace_channel::avg_fan_rpm);
    }
    [[nodiscard]] util::column_view sensor_age() const {
        return channel(trace_channel::sensor_age);
    }
    [[nodiscard]] util::column_view monitor_sensor_health() const {
        return channel(trace_channel::monitor_sensor_health);
    }
    [[nodiscard]] util::column_view monitor_fan_health() const {
        return channel(trace_channel::monitor_fan_health);
    }
    [[nodiscard]] util::column_view monitor_die_estimate() const {
        return channel(trace_channel::monitor_die_estimate);
    }

private:
    friend class simulation_trace;
    friend class batch_trace;

    std::array<util::column_view, trace_channel_count> channels_{};
};

/// Owning columnar trace of one plant: a typed facade over one
/// util::frame.  Copyable (plain columnar data).
class simulation_trace {
public:
    simulation_trace();

    /// Deep copy of a view (e.g. snapshotting a fleet lane before the
    /// batch records the next run).
    explicit simulation_trace(const trace_view& v);

    /// Records one step: a single timestamp check and one row append.
    void append(double t, const trace_row& row) {
        frame_.append(t, row.values.data(), trace_channel_count);
    }

    void clear() { frame_.clear(); }

    /// Pre-allocates storage for `rows` recorded steps.
    void reserve(std::size_t rows) { frame_.reserve(rows); }

    [[nodiscard]] std::size_t size() const { return frame_.size(); }
    [[nodiscard]] bool empty() const { return frame_.empty(); }

    [[nodiscard]] util::column_view channel(trace_channel c) const {
        return frame_.column(static_cast<std::size_t>(c));
    }

    /// View of every channel (valid until the next append/clear).
    [[nodiscard]] trace_view view() const;
    operator trace_view() const { return view(); }  // NOLINT(google-explicit-constructor)

    // Named channel accessors, mirroring trace_view.
    [[nodiscard]] util::column_view target_util() const {
        return channel(trace_channel::target_util);
    }
    [[nodiscard]] util::column_view instant_util() const {
        return channel(trace_channel::instant_util);
    }
    [[nodiscard]] util::column_view cpu0_temp() const { return channel(trace_channel::cpu0_temp); }
    [[nodiscard]] util::column_view cpu1_temp() const { return channel(trace_channel::cpu1_temp); }
    [[nodiscard]] util::column_view avg_cpu_temp() const {
        return channel(trace_channel::avg_cpu_temp);
    }
    [[nodiscard]] util::column_view max_sensor_temp() const {
        return channel(trace_channel::max_sensor_temp);
    }
    [[nodiscard]] util::column_view dimm_temp() const { return channel(trace_channel::dimm_temp); }
    [[nodiscard]] util::column_view total_power() const {
        return channel(trace_channel::total_power);
    }
    [[nodiscard]] util::column_view fan_power() const { return channel(trace_channel::fan_power); }
    [[nodiscard]] util::column_view leakage_power() const {
        return channel(trace_channel::leakage_power);
    }
    [[nodiscard]] util::column_view active_power() const {
        return channel(trace_channel::active_power);
    }
    [[nodiscard]] util::column_view avg_fan_rpm() const {
        return channel(trace_channel::avg_fan_rpm);
    }
    [[nodiscard]] util::column_view sensor_age() const {
        return channel(trace_channel::sensor_age);
    }
    [[nodiscard]] util::column_view monitor_sensor_health() const {
        return channel(trace_channel::monitor_sensor_health);
    }
    [[nodiscard]] util::column_view monitor_fan_health() const {
        return channel(trace_channel::monitor_fan_health);
    }
    [[nodiscard]] util::column_view monitor_die_estimate() const {
        return channel(trace_channel::monitor_die_estimate);
    }

    /// The underlying columnar storage.
    [[nodiscard]] const util::frame& data() const { return frame_; }

private:
    util::frame frame_;
};

}  // namespace ltsc::sim
