#include "sim/fault_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ltsc::sim {

namespace {

// Dedicated stream constant for campaign generation, distinct from the
// plants' sensor-noise stream so a campaign seed can never correlate
// with a plant seed.
constexpr std::uint64_t k_campaign_stream = 0x9e3779b97f4a7c15ULL;

// Shortest degradation window the generators will emit.  A drawn span
// below this (possible only with sub-10 s outage caps) would put an
// onset and its recover on the same tick, which the schedule
// constructor rightly rejects; flooring the span keeps tiny-cap
// configs generating valid campaigns.  Defaults draw spans >= 10 s, so
// the floor is bitwise-invisible to every calibrated campaign.
constexpr double k_min_fault_span_s = 1e-3;

bool takes_nan_value(fault_kind kind) {
    return kind == fault_kind::fan_stuck_pwm || kind == fault_kind::sensor_stuck;
}

bool is_fan_kind(fault_kind kind) {
    return kind == fault_kind::fan_failure || kind == fault_kind::fan_stuck_pwm ||
           kind == fault_kind::fan_tach_stuck || kind == fault_kind::fan_recover;
}

bool is_sensor_kind(fault_kind kind) {
    return kind == fault_kind::sensor_stuck || kind == fault_kind::sensor_bias ||
           kind == fault_kind::sensor_dropout || kind == fault_kind::sensor_drift ||
           kind == fault_kind::sensor_intermittent || kind == fault_kind::sensor_recover;
}

}  // namespace

const char* to_string(fault_kind kind) {
    switch (kind) {
        case fault_kind::fan_failure: return "fan_failure";
        case fault_kind::fan_stuck_pwm: return "fan_stuck_pwm";
        case fault_kind::fan_recover: return "fan_recover";
        case fault_kind::sensor_stuck: return "sensor_stuck";
        case fault_kind::sensor_bias: return "sensor_bias";
        case fault_kind::sensor_dropout: return "sensor_dropout";
        case fault_kind::sensor_recover: return "sensor_recover";
        case fault_kind::telemetry_loss: return "telemetry_loss";
        case fault_kind::fan_tach_stuck: return "fan_tach_stuck";
        case fault_kind::sensor_drift: return "sensor_drift";
        case fault_kind::sensor_intermittent: return "sensor_intermittent";
    }
    return "unknown";
}

fault_schedule::fault_schedule(std::vector<fault_event> events) : events_(std::move(events)) {
    for (const fault_event& e : events_) {
        util::ensure(std::isfinite(e.t_s) && e.t_s >= 0.0,
                     "fault_schedule: event time must be finite and non-negative");
        util::ensure(std::isfinite(e.duration_s) && e.duration_s >= 0.0,
                     "fault_schedule: event duration must be finite and non-negative");
        util::ensure(std::isfinite(e.value) || takes_nan_value(e.kind),
                     "fault_schedule: non-finite event value (NaN is only the "
                     "'at current' convention for the stuck kinds)");
    }
    std::stable_sort(events_.begin(), events_.end(),
                     [](const fault_event& a, const fault_event& b) { return a.t_s < b.t_s; });

    // Coherence: a recover must have an outstanding fault to clear, and
    // no two events may land on one component at the same tick (their
    // firing order would be decided by the tie-break, silently).
    std::vector<char> fan_latched(events_.empty() ? 0 : max_fan_target() + 1, 0);
    std::vector<char> sensor_latched(events_.empty() ? 0 : max_sensor_target() + 1, 0);
    std::vector<double> sensor_dropout_until(sensor_latched.size(), 0.0);
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const fault_event& e = events_[i];
        for (std::size_t j = i + 1;
             j < events_.size() && events_[j].t_s - e.t_s < 1e-9; ++j) {
            const fault_event& o = events_[j];
            const bool same_fan =
                is_fan_kind(e.kind) && is_fan_kind(o.kind) && e.target == o.target;
            const bool same_sensor =
                is_sensor_kind(e.kind) && is_sensor_kind(o.kind) && e.target == o.target;
            const bool same_telemetry = e.kind == fault_kind::telemetry_loss &&
                                        o.kind == fault_kind::telemetry_loss;
            util::ensure(!same_fan && !same_sensor && !same_telemetry,
                         "fault_schedule: two same-tick events on one component");
        }
        switch (e.kind) {
            case fault_kind::fan_failure:
            case fault_kind::fan_stuck_pwm:
            case fault_kind::fan_tach_stuck:
                fan_latched[e.target] = 1;
                break;
            case fault_kind::fan_recover:
                util::ensure(fan_latched[e.target] != 0,
                             "fault_schedule: fan_recover without an outstanding fan fault");
                fan_latched[e.target] = 0;
                break;
            case fault_kind::sensor_stuck:
            case fault_kind::sensor_bias:
            case fault_kind::sensor_drift:
                sensor_latched[e.target] = 1;
                break;
            case fault_kind::sensor_dropout:
            case fault_kind::sensor_intermittent:
                sensor_dropout_until[e.target] =
                    std::max(sensor_dropout_until[e.target], e.t_s + e.duration_s);
                break;
            case fault_kind::sensor_recover:
                util::ensure(sensor_latched[e.target] != 0 ||
                                 e.t_s < sensor_dropout_until[e.target] - 1e-9,
                             "fault_schedule: sensor_recover without an outstanding "
                             "sensor fault");
                sensor_latched[e.target] = 0;
                sensor_dropout_until[e.target] = 0.0;
                break;
            case fault_kind::telemetry_loss:
                break;
        }
    }
}

std::size_t fault_schedule::max_fan_target() const {
    std::size_t out = 0;
    for (const fault_event& e : events_) {
        if (is_fan_kind(e.kind)) {
            out = std::max(out, e.target);
        }
    }
    return out;
}

std::size_t fault_schedule::max_sensor_target() const {
    std::size_t out = 0;
    for (const fault_event& e : events_) {
        if (is_sensor_kind(e.kind)) {
            out = std::max(out, e.target);
        }
    }
    return out;
}

fault_schedule make_random_campaign(std::uint64_t seed, const fault_campaign_config& config) {
    util::ensure(config.duration_s > 0.0, "make_random_campaign: non-positive duration");
    util::ensure(config.fan_pairs >= 1, "make_random_campaign: need at least one fan pair");
    util::ensure(config.cpu_sensors >= 1, "make_random_campaign: need at least one sensor");
    util::ensure(config.max_faults >= 1, "make_random_campaign: need at least one fault");
    util::ensure(config.min_fan_outage_s > 0.0 &&
                     config.max_fan_outage_s >= config.min_fan_outage_s,
                 "make_random_campaign: bad fan outage bounds");
    util::ensure(config.max_sensor_outage_s > 0.0,
                 "make_random_campaign: bad sensor outage bound");
    util::ensure(config.max_telemetry_loss_s > 0.0,
                 "make_random_campaign: bad telemetry loss bound");
    util::ensure(config.max_bias_c >= 0.0, "make_random_campaign: negative bias bound");
    util::ensure(config.max_concurrent_fan_faults >= 1 &&
                     config.max_concurrent_fan_faults < config.fan_pairs,
                 "make_random_campaign: concurrent fan faults must leave a healthy pair");
    util::ensure(config.correlated_probability >= 0.0 && config.correlated_probability <= 1.0,
                 "make_random_campaign: correlated probability out of [0, 1]");
    util::ensure(config.max_correlated_pairs >= 1,
                 "make_random_campaign: correlated group must hold at least one pair");
    util::ensure(config.allow_fan_faults || config.allow_sensor_faults ||
                     config.allow_telemetry_loss,
                 "make_random_campaign: every fault class disabled");

    util::pcg32 rng(seed, k_campaign_stream);
    std::vector<fault_event> events;

    // Walk onsets forward so the generator never has to back-patch: an
    // effect's busy-until window is known the moment it is drawn, and
    // eligibility at each later onset is a plain comparison.
    std::vector<double> fan_busy_until(config.fan_pairs, 0.0);
    std::vector<double> sensor_busy_until(config.cpu_sensors, 0.0);
    double telemetry_busy_until = 0.0;

    const double mean_gap = config.duration_s / static_cast<double>(config.max_faults + 1);
    double t = 0.0;
    for (std::size_t i = 0; i < config.max_faults; ++i) {
        t += rng.uniform(0.5 * mean_gap, 1.5 * mean_gap);
        if (t >= config.duration_s) {
            break;
        }

        // Class selection draws run unconditionally so the stream layout
        // stays simple; an ineligible class just skips this onset.
        const double class_draw = rng.next_double();
        const double sub_draw = rng.next_double();
        const std::size_t target_draw = rng.next_u32();
        const double span_draw = rng.next_double();
        const double value_draw = rng.next_double();
        // The correlated draw only exists when the feature is on, so the
        // default stream stays bitwise-identical to earlier revisions.
        const double corr_draw =
            config.correlated_fan_events ? rng.next_double() : 1.0;

        double weight_fan = config.allow_fan_faults ? 1.0 : 0.0;
        double weight_sensor = config.allow_sensor_faults ? 1.0 : 0.0;
        double weight_tel = config.allow_telemetry_loss ? 1.0 : 0.0;
        const double total = weight_fan + weight_sensor + weight_tel;
        const double pick = class_draw * total;

        if (pick < weight_fan) {
            std::size_t active = 0;
            std::vector<std::size_t> eligible;
            for (std::size_t p = 0; p < config.fan_pairs; ++p) {
                if (fan_busy_until[p] > t) {
                    ++active;
                } else {
                    eligible.push_back(p);
                }
            }
            if (eligible.empty() || active >= config.max_concurrent_fan_faults) {
                continue;
            }
            const double outage = std::max(
                config.min_fan_outage_s +
                    span_draw * (config.max_fan_outage_s - config.min_fan_outage_s),
                k_min_fault_span_s);
            const double recover_at = t + outage;
            if (config.correlated_fan_events && corr_draw < config.correlated_probability) {
                // One PSU rail drops a whole group of pairs at the same
                // instant; they recover together when the rail returns.
                std::size_t group = std::min(config.max_correlated_pairs, eligible.size());
                group = std::min(group, config.max_concurrent_fan_faults - active);
                group = std::max<std::size_t>(group, 1);
                const std::size_t start = target_draw % eligible.size();
                for (std::size_t g = 0; g < group; ++g) {
                    const std::size_t pair = eligible[(start + g) % eligible.size()];
                    events.push_back({t, fault_kind::fan_failure, pair, 0.0, 0.0});
                    if (recover_at < config.duration_s) {
                        events.push_back(
                            {recover_at, fault_kind::fan_recover, pair, 0.0, 0.0});
                        fan_busy_until[pair] = recover_at;
                    } else {
                        fan_busy_until[pair] = config.duration_s;
                    }
                }
                continue;
            }
            const std::size_t pair = eligible[target_draw % eligible.size()];
            fault_event onset;
            onset.t_s = t;
            onset.target = pair;
            if (sub_draw < 0.5) {
                onset.kind = fault_kind::fan_failure;
            } else {
                onset.kind = fault_kind::fan_stuck_pwm;
                onset.value = std::numeric_limits<double>::quiet_NaN();  // stick at current
            }
            events.push_back(onset);
            if (recover_at < config.duration_s) {
                events.push_back({recover_at, fault_kind::fan_recover, pair, 0.0, 0.0});
                fan_busy_until[pair] = recover_at;
            } else {
                fan_busy_until[pair] = config.duration_s;  // persists to the end
            }
        } else if (pick < weight_fan + weight_sensor) {
            // A die's sensors are 2s and 2s+1: faulting one requires its
            // partner healthy so every die keeps a truthful reading.
            std::vector<std::size_t> eligible;
            for (std::size_t s = 0; s < config.cpu_sensors; ++s) {
                const std::size_t partner = s ^ 1U;
                const bool partner_busy =
                    partner < config.cpu_sensors && sensor_busy_until[partner] > t;
                if (sensor_busy_until[s] <= t && !partner_busy) {
                    eligible.push_back(s);
                }
            }
            if (eligible.empty()) {
                continue;
            }
            const std::size_t sensor = eligible[target_draw % eligible.size()];
            // The 10 s preferred minimum must yield to a smaller cap:
            // the un-clamped form quietly drew spans *above*
            // max_sensor_outage_s whenever the cap sat below 10 s.
            const double lo = std::min(10.0, config.max_sensor_outage_s);
            const double span = std::max(
                lo + span_draw * (config.max_sensor_outage_s - lo), k_min_fault_span_s);
            fault_event onset;
            onset.t_s = t;
            onset.target = sensor;
            bool needs_recover = true;
            if (sub_draw < 1.0 / 3.0) {
                onset.kind = fault_kind::sensor_stuck;
                onset.value = std::numeric_limits<double>::quiet_NaN();  // freeze at current
            } else if (sub_draw < 2.0 / 3.0) {
                onset.kind = fault_kind::sensor_bias;
                const double magnitude = value_draw * config.max_bias_c;
                // sub_draw sits in [1/3, 2/3); its position inside that
                // band doubles as the sign draw when negative bias is on.
                const bool negative =
                    config.allow_negative_bias && (sub_draw - 1.0 / 3.0) * 3.0 >= 0.5;
                onset.value = negative ? -magnitude : magnitude;
            } else {
                onset.kind = fault_kind::sensor_dropout;
                onset.duration_s = span;
                needs_recover = false;  // dropout self-expires
            }
            events.push_back(onset);
            const double recover_at = t + span;
            if (needs_recover && recover_at < config.duration_s) {
                events.push_back({recover_at, fault_kind::sensor_recover, sensor, 0.0, 0.0});
                sensor_busy_until[sensor] = recover_at;
            } else {
                sensor_busy_until[sensor] = std::min(recover_at, config.duration_s);
            }
        } else {
            if (telemetry_busy_until > t) {
                continue;
            }
            const double lo = std::min(10.0, config.max_telemetry_loss_s);
            const double span = std::max(
                lo + span_draw * (config.max_telemetry_loss_s - lo), k_min_fault_span_s);
            events.push_back({t, fault_kind::telemetry_loss, 0, 0.0, span});
            telemetry_busy_until = t + span;
        }
    }
    return fault_schedule(std::move(events));
}

fault_schedule make_lying_sensor_campaign(std::uint64_t seed,
                                          const fault_campaign_config& config) {
    util::ensure(config.duration_s > 0.0, "make_lying_sensor_campaign: non-positive duration");
    util::ensure(config.cpu_sensors >= 2 && config.cpu_sensors % 2 == 0,
                 "make_lying_sensor_campaign: need an even CPU-sensor count");

    util::pcg32 rng(seed, k_campaign_stream);
    const double onset = rng.uniform(0.15, 0.4) * config.duration_s;
    const double span = rng.uniform(0.35, 0.6) * config.duration_s;
    const double magnitude = rng.uniform(12.0, 25.0);
    const std::size_t dies = config.cpu_sensors / 2;
    // Scope: one whole die's sensor complement, or every sensor — in
    // both cases no truthful reading survives on the lied-about die(s).
    const std::size_t scope = rng.next_u32() % (dies + 1);

    std::vector<fault_event> events;
    const double recover_at = onset + span;
    for (std::size_t s = 0; s < config.cpu_sensors; ++s) {
        if (scope < dies && s / 2 != scope) {
            continue;
        }
        events.push_back({onset, fault_kind::sensor_bias, s, -magnitude, 0.0});
        if (recover_at < config.duration_s) {
            events.push_back({recover_at, fault_kind::sensor_recover, s, 0.0, 0.0});
        }
    }
    return fault_schedule(std::move(events));
}

fault_schedule make_drifting_sensor_campaign(std::uint64_t seed,
                                             const fault_campaign_config& config) {
    util::ensure(config.duration_s > 0.0, "make_drifting_sensor_campaign: non-positive duration");
    util::ensure(config.cpu_sensors >= 2 && config.cpu_sensors % 2 == 0,
                 "make_drifting_sensor_campaign: need an even CPU-sensor count");

    util::pcg32 rng(seed, k_campaign_stream);
    // Drawn unconditionally in a fixed order so the stream layout never
    // depends on earlier draws (same discipline as the other
    // generators: bitwise replay from the seed alone).
    const double onset = rng.uniform(0.15, 0.35) * config.duration_s;
    const double span = rng.uniform(0.3, 0.5) * config.duration_s;
    // Always at or above the 0.02 degC/s floor the detection sweep
    // asserts 95% onset coverage over; negative = lying cool, the
    // direction that hides a real excursion.
    const double rate = rng.uniform(0.02, 0.1);
    const std::size_t dies = config.cpu_sensors / 2;
    // Scope: one die's whole sensor complement, or every sensor — no
    // truthful partner survives on a drifting die either way.
    const std::size_t scope = rng.next_u32() % (dies + 1);
    const double intermittent_draw = rng.next_double();
    const double intermittent_bias = rng.uniform(4.0, 8.0);
    const double intermittent_start_frac = rng.uniform(0.45, 0.6);
    const double intermittent_span_frac = rng.uniform(0.15, 0.25);

    std::vector<fault_event> events;
    const double recover_at = onset + span;
    for (std::size_t s = 0; s < config.cpu_sensors; ++s) {
        if (scope < dies && s / 2 != scope) {
            continue;
        }
        events.push_back({onset, fault_kind::sensor_drift, s, -rate, 0.0});
        if (recover_at < config.duration_s) {
            events.push_back({recover_at, fault_kind::sensor_recover, s, 0.0, 0.0});
        }
    }
    // When the drift spares a die, half the campaigns add a cool-lying
    // burst episode there: sub-threshold per-streak, so consecutive-poll
    // hysteresis alone never latches — accumulation has to.
    if (scope < dies && dies >= 2 && intermittent_draw < 0.5) {
        const std::size_t burst_die = (scope + 1) % dies;
        const double burst_at = intermittent_start_frac * config.duration_s;
        const double burst_span = intermittent_span_frac * config.duration_s;
        for (std::size_t s = 2 * burst_die; s < 2 * burst_die + 2 && s < config.cpu_sensors;
             ++s) {
            events.push_back(
                {burst_at, fault_kind::sensor_intermittent, s, -intermittent_bias, burst_span});
        }
    }
    return fault_schedule(std::move(events));
}

void fault_state::reset(std::size_t fan_pairs, std::size_t cpu_sensors) {
    next_event = 0;
    fan_mode.assign(fan_pairs, fan_ok);
    fan_commanded_rpm.assign(fan_pairs, 0.0);
    sensor_stuck.assign(cpu_sensors, 0);
    sensor_stuck_c.assign(cpu_sensors, 0.0);
    sensor_bias_c.assign(cpu_sensors, 0.0);
    sensor_dropout_until_s.assign(cpu_sensors, 0.0);
    sensor_drift_c_per_s.assign(cpu_sensors, 0.0);
    sensor_drift_start_s.assign(cpu_sensors, 0.0);
    sensor_intermittent_c.assign(cpu_sensors, 0.0);
    sensor_intermittent_start_s.assign(cpu_sensors, 0.0);
    sensor_intermittent_until_s.assign(cpu_sensors, 0.0);
    telemetry_lost_until_s = 0.0;
}

bool fault_state::any_fan_fault() const {
    for (unsigned char m : fan_mode) {
        if (m != fan_ok) {
            return true;
        }
    }
    return false;
}

bool fault_state::sensor_faulted(std::size_t sensor, double now_s) const {
    return sensor_stuck[sensor] != 0 || sensor_bias_c[sensor] != 0.0 ||
           now_s < sensor_dropout_until_s[sensor] - 1e-9 ||
           sensor_drift_c_per_s[sensor] != 0.0 ||
           now_s < sensor_intermittent_until_s[sensor] - 1e-9;
}

bool fault_state::intermittent_burst_live(std::size_t sensor, double now_s) const {
    if (sensor_intermittent_c[sensor] == 0.0 ||
        now_s >= sensor_intermittent_until_s[sensor] - 1e-9) {
        return false;
    }
    const double phase =
        std::fmod(now_s - sensor_intermittent_start_s[sensor], k_intermittent_period_s);
    return phase < k_intermittent_duty * k_intermittent_period_s;
}

bool fault_state::any_sensor_fault(double now_s) const {
    for (std::size_t s = 0; s < sensor_stuck.size(); ++s) {
        if (sensor_faulted(s, now_s)) {
            return true;
        }
    }
    return false;
}

bool fault_state::any_active(double now_s) const {
    return any_fan_fault() || any_sensor_fault(now_s) || telemetry_lost(now_s);
}

}  // namespace ltsc::sim
