// Lane-major columnar recorder for fleet plants.
//
// `server_batch` steps all lanes together, so per-step recording is the
// fleet's dominant memory traffic.  A batch_trace stores every lane's
// channels in ONE arena laid out row-group-major: each plant step
// appends one row-group of `lanes * (1 + channels)` doubles, with each
// lane's block (its timestamp + 12 channel values) contiguous inside the
// group.  Appending a step therefore writes one contiguous span instead
// of touching `lanes * channels` independently reallocating vectors.
//
// Lanes keep independent time axes: each lane tracks the contiguous
// range of row-groups it has recorded (`first`, `count`).  A lane that
// goes inert (ragged fleets) simply stops consuming group slots and can
// resume later by filling the historical slots it skipped; a cleared
// lane restarts at the current group.  Reads are `trace_view`s whose
// column_views stride over the arena (stride = one row-group), so every
// `time_series` statistic works unchanged — and bitwise-identically —
// over lane-major storage.  Views are invalidated by append/clear.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/simulation_trace.hpp"
#include "util/time_series.hpp"

namespace ltsc::sim {

/// One columnar arena recording N lanes' traces.
class batch_trace {
public:
    explicit batch_trace(std::size_t lanes);

    [[nodiscard]] std::size_t lane_count() const { return lanes_; }

    /// Appends one step's row for `lane`.  Throws precondition_error on a
    /// non-monotonic per-lane timestamp or non-finite values.
    void append(std::size_t lane, double t, const trace_row& row);

    /// Drops one lane's recording; the lane restarts at the current
    /// row-group.  When every lane is empty the arena itself is released.
    void clear(std::size_t lane);

    /// Rows recorded for `lane`.
    [[nodiscard]] std::size_t size(std::size_t lane) const;

    /// Read view of one lane's trace (strided over the arena; valid
    /// until the next append/clear).
    [[nodiscard]] trace_view lane(std::size_t lane) const;

    /// Pre-allocates arena capacity for `steps` row-groups.
    void reserve_steps(std::size_t steps);

    /// Row-groups allocated so far (monotone except for the all-empty
    /// arena reset); exposed for storage accounting and tests.
    [[nodiscard]] std::size_t group_count() const { return groups_; }

    /// Doubles per (group, lane) slot: the lane's timestamp followed by
    /// its channel values in `trace_channel` order.
    static constexpr std::size_t slot_doubles = 1 + trace_channel_count;

    /// Lifetime count of row-groups ever opened, monotone across the
    /// all-empty arena reset that `group_count()` is subject to.  A
    /// publisher comparing this against its last-seen value can tell
    /// whether a step actually appended a group (all-inert steps do
    /// not) without being confused by clears.
    [[nodiscard]] std::uint64_t appended_groups() const { return appended_groups_; }

    /// Raw storage of one row-group: `lane_count() * slot_doubles`
    /// doubles, lane-major ([lane][t, channels...]).  Slots of lanes
    /// that did not record in this group hold stale data — check
    /// `lane_in_group`.  Invalidated by append/clear.
    [[nodiscard]] const double* group_data(std::size_t group) const;

    /// Whether `lane` recorded a row in row-group `group`.
    [[nodiscard]] bool lane_in_group(std::size_t lane, std::size_t group) const;

private:
    /// Backward-compatible internal alias.
    static constexpr std::size_t slot_doubles_ = slot_doubles;

    [[nodiscard]] double* slot(std::size_t group, std::size_t lane) {
        return arena_.data() + (group * lanes_ + lane) * slot_doubles_;
    }
    [[nodiscard]] const double* slot(std::size_t group, std::size_t lane) const {
        return arena_.data() + (group * lanes_ + lane) * slot_doubles_;
    }

    std::size_t lanes_ = 0;
    std::size_t groups_ = 0;           ///< Row-groups written into the arena.
    std::uint64_t appended_groups_ = 0;  ///< Lifetime row-groups opened (never resets).
    std::vector<double> arena_;        ///< [group][lane][1 + channels].
    std::vector<std::size_t> first_;   ///< [lane] group index of row 0.
    std::vector<std::size_t> count_;   ///< [lane] recorded rows.
};

}  // namespace ltsc::sim
