#include "sim/server_config.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ltsc::sim {

server_config paper_server() {
    return server_config{};  // defaults are the paper calibration
}

server_config validated(const server_config& config) {
    validate(config);
    return config;
}

void validate(const server_config& config) {
    util::ensure(config.sockets == 2, "server_config: thermal model assumes 2 sockets");
    util::ensure(config.dimm_count >= 1, "server_config: need at least one DIMM");
    util::ensure(config.fan_pairs >= 1, "server_config: need at least one fan pair");
    util::ensure(config.fan_pairs == config.thermal.fan_zones,
                 "server_config: fan_pairs must match thermal fan_zones");
    util::ensure(config.base_power_w >= 0.0, "server_config: negative base power");
    util::ensure(config.cpu_idle_each_w >= 0.0, "server_config: negative CPU idle power");
    util::ensure(config.dimm_idle_total_w >= 0.0, "server_config: negative DIMM idle power");
    util::ensure(config.base_power_w >=
                     config.cpu_idle_each_w * static_cast<double>(config.sockets) +
                         config.dimm_idle_total_w,
                 "server_config: component idle power exceeds base power");
    util::ensure(config.active_coeff_w_per_pct >= 0.0, "server_config: negative active slope");
    util::ensure(std::fabs(config.split.cpu + config.split.memory + config.split.other - 1.0) <
                     1e-6,
                 "server_config: active split must sum to 1");
    util::ensure(config.cpu_heat_shape_exponent > 0.0 && config.cpu_heat_shape_exponent <= 1.0,
                 "server_config: cpu_heat_shape_exponent out of (0, 1]");
    util::ensure(config.telemetry_period_s > 0.0, "server_config: bad telemetry period");
    util::ensure(config.sensor_noise_sigma >= 0.0, "server_config: negative sensor noise");
    util::ensure(config.sensor_quantum >= 0.0, "server_config: negative sensor quantum");
    util::ensure(config.monitor.sensor_residual_c > 0.0,
                 "server_config: monitor sensor threshold must be positive");
    util::ensure(config.monitor.fan_residual_rpm > 0.0,
                 "server_config: monitor fan threshold must be positive");
    util::ensure(config.monitor.sensor_suspect_polls >= 1 &&
                     config.monitor.sensor_fail_polls >= config.monitor.sensor_suspect_polls &&
                     config.monitor.sensor_clear_polls >= 1,
                 "server_config: bad monitor sensor hysteresis depths");
    util::ensure(config.monitor.fan_suspect_steps >= 1 &&
                     config.monitor.fan_fail_steps >= config.monitor.fan_suspect_steps &&
                     config.monitor.fan_clear_steps >= 1,
                 "server_config: bad monitor fan hysteresis depths");
    util::ensure(config.monitor.sensor_cusum_k_c > 0.0 && config.monitor.sensor_cusum_h_c > 0.0,
                 "server_config: monitor CUSUM parameters must be positive");
    util::ensure(config.monitor.fan_command_grace_steps >= 0,
                 "server_config: negative monitor fan command grace");
    util::ensure(config.monitor.fan_thermal_residual_c > 0.0,
                 "server_config: monitor fan thermal threshold must be positive");
    util::ensure(config.monitor.fan_thermal_suspect_polls >= 1 &&
                     config.monitor.fan_thermal_fail_polls >=
                         config.monitor.fan_thermal_suspect_polls &&
                     config.monitor.fan_thermal_clear_polls >= 1,
                 "server_config: bad monitor fan thermal hysteresis depths");
}

core::fault_monitor_plant monitor_plant_for(const server_config& config) {
    core::fault_monitor_plant plant;
    plant.thermal = config.thermal;
    plant.fan = config.fan;
    plant.fan_pairs = config.fan_pairs;
    plant.leakage = config.leakage;
    plant.active_coeff_w_per_pct = config.active_coeff_w_per_pct;
    plant.split = config.split;
    plant.cpu_heat_shape_exponent = config.cpu_heat_shape_exponent;
    plant.cpu_idle_each_w = config.cpu_idle_each_w;
    plant.dimm_idle_total_w = config.dimm_idle_total_w;
    plant.cpu_sensors = 2 * config.sockets;  // two CSTH sensors per die
    return plant;
}

}  // namespace ltsc::sim
