#include "sim/parallel_runner.hpp"

#include <cstdlib>

#include "sim/server_simulator.hpp"
#include "util/error.hpp"

namespace ltsc::sim {

parallel_runner::parallel_runner(std::size_t threads) : pool_(threads) {}

std::size_t parallel_runner::thread_count() const { return pool_.thread_count(); }

std::size_t parallel_runner::threads_from_env() {
    const char* env = std::getenv("LTSC_THREADS");
    if (env == nullptr) {
        return 0;
    }
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed > 0 ? static_cast<std::size_t>(parsed) : 0;
}

std::vector<run_metrics> parallel_runner::run(const std::vector<scenario>& scenarios) {
    for (const scenario& s : scenarios) {
        util::ensure(s.make_controller != nullptr,
                     "parallel_runner::run: scenario without controller factory");
    }
    std::vector<run_metrics> out(scenarios.size());
    pool_.run_indexed(scenarios.size(), [&](std::size_t i) {
        const scenario& s = scenarios[i];
        server_simulator sim(s.config);
        const std::unique_ptr<core::fan_controller> controller = s.make_controller();
        util::ensure(controller != nullptr,
                     "parallel_runner::run: controller factory returned null");
        out[i] = core::run_controlled(sim, *controller, s.profile, s.runtime);
        if (!s.name.empty()) {
            out[i].test_name = s.name;
        }
    });
    return out;
}

}  // namespace ltsc::sim
