#include "sim/parallel_runner.hpp"

#include <cerrno>
#include <cstdlib>

#include "sim/server_simulator.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ltsc::sim {

parallel_runner::parallel_runner(std::size_t threads) : pool_(threads) {}

std::size_t parallel_runner::thread_count() const { return pool_.thread_count(); }

std::size_t parallel_runner::threads_from_env() {
    const char* env = std::getenv("LTSC_THREADS");
    if (env == nullptr || *env == '\0') {
        return 0;
    }
    // strtol alone silently accepts trailing garbage ("4x" -> 4) and
    // saturates on overflow with only errno to show for it; a malformed
    // LTSC_THREADS must fall back to hardware concurrency loudly, not
    // half-parse.
    errno = 0;
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || parsed < 0 || parsed > 4096) {
        util::log_warn() << "LTSC_THREADS=\"" << env
                         << "\" is not a thread count (expected an integer in [0, 4096]); "
                            "using hardware concurrency";
        return 0;
    }
    return static_cast<std::size_t>(parsed);
}

std::vector<run_metrics> parallel_runner::run(const std::vector<scenario>& scenarios) {
    for (const scenario& s : scenarios) {
        util::ensure(s.make_controller != nullptr,
                     "parallel_runner::run: scenario without controller factory");
    }
    std::vector<run_metrics> out(scenarios.size());
    pool_.run_indexed(scenarios.size(), [&](std::size_t i) {
        const scenario& s = scenarios[i];
        server_simulator sim(s.config);
        const std::unique_ptr<core::fan_controller> controller = s.make_controller();
        util::ensure(controller != nullptr,
                     "parallel_runner::run: controller factory returned null");
        out[i] = core::run_controlled(sim, *controller, s.profile, s.runtime);
        if (!s.name.empty()) {
            out[i].test_name = s.name;
        }
    });
    return out;
}

}  // namespace ltsc::sim
