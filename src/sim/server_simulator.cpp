#include "sim/server_simulator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ltsc::sim {

server_simulator::server_simulator(const server_config& config)
    : config_(validated(config)),
      rng_(config.seed, 0xda3e39cb94b95bdbULL),
      fans_(config.fan_pairs, config.fan, config.default_fan_rpm),
      leakage_(config.leakage),
      active_(config.active_coeff_w_per_pct, config.split, config.cpu_heat_shape_exponent),
      thermal_(config.thermal),
      sensors_(thermal::make_server_sensors(
          [this](std::size_t s) { return thermal_.cpu_die_temp(s); },
          [this] { return thermal_.dimm_temp(); }, config.dimm_count, rng_,
          config.sensor_noise_sigma, config.sensor_quantum)),
      telemetry_(util::seconds_t{config.telemetry_period_s}) {
    last_cpu_sensor_reads_.assign(sensors_.cpu.size(), config.thermal.ambient_c);
    register_telemetry();
    apply_airflow();
    apply_heat(0.0);
}

void server_simulator::register_telemetry() {
    for (std::size_t i = 0; i < sensors_.cpu.size(); ++i) {
        telemetry_.add_channel(sensors_.cpu[i].name(), "degC", [this, i] {
            const double v = sensors_.cpu[i].read().value();
            last_cpu_sensor_reads_[i] = v;
            return v;
        });
    }
    for (std::size_t i = 0; i < sensors_.dimm.size(); ++i) {
        telemetry_.add_channel(sensors_.dimm[i].name(), "degC",
                               [this, i] { return sensors_.dimm[i].read().value(); },
                               /*ring_capacity=*/512, /*record_history=*/false);
    }
    // Per-socket rail telemetry (the paper collects per-core V/I; the
    // aggregate per-socket rail carries the same information here).
    for (std::size_t s = 0; s < thermal::server_thermal_model::socket_count(); ++s) {
        telemetry_.add_channel("cpu" + std::to_string(s) + "_voltage", "V",
                               [] { return 1.0; }, 16, false);
        telemetry_.add_channel("cpu" + std::to_string(s) + "_current", "A", [this, s] {
            const double u = workload_ ? workload_->instantaneous_utilization(now()) : 0.0;
            const double share = s == 0 ? imbalance_ : 1.0 - imbalance_;
            const double rail_w = config_.cpu_idle_each_w +
                                  active_.cpu(u).value() * share +
                                  leakage_.share_at(thermal_.cpu_die_temp(s), 2).value();
            return rail_w / 1.0;
        });
    }
    telemetry_.add_channel("system_power", "W", [this] {
        const double u = workload_ ? workload_->instantaneous_utilization(now()) : 0.0;
        return breakdown_at(u).total().value();
    });
    telemetry_.add_channel("fan_power", "W", [this] { return fans_.total_power().value(); });
}

void server_simulator::bind_workload(workload::loadgen generator) {
    workload_ = std::move(generator);
    now_s_ = 0.0;
    clear_trace();
}

void server_simulator::bind_workload(const workload::utilization_profile& profile) {
    bind_workload(workload::loadgen(profile));
}

void server_simulator::set_fan_speed(std::size_t pair_index, util::rpm_t rpm) {
    const util::rpm_t before = fans_.speed(pair_index);
    fans_.set_speed(pair_index, rpm);
    if (fans_.speed(pair_index).value() != before.value()) {
        ++fan_changes_;
        apply_airflow();
    }
}

void server_simulator::set_all_fans(util::rpm_t rpm) {
    // Clamp once, detect a change in the same pass, and skip the airflow
    // (and conductance) update entirely when every pair already runs at
    // the commanded speed.
    const double target = fans_.pair().clamp(rpm).value();
    bool changed = false;
    for (std::size_t i = 0; i < fans_.pair_count() && !changed; ++i) {
        changed = fans_.speed(i).value() != target;
    }
    if (!changed) {
        return;
    }
    fans_.set_all(rpm);
    ++fan_changes_;
    apply_airflow();
}

util::rpm_t server_simulator::fan_speed(std::size_t pair_index) const {
    return fans_.speed(pair_index);
}

util::rpm_t server_simulator::average_fan_rpm() const { return fans_.average_speed(); }

double server_simulator::measured_utilization(util::seconds_t window) const {
    if (!workload_) {
        return 0.0;
    }
    return workload_->measured_utilization(now(), window);
}

std::vector<double> server_simulator::cpu_sensor_temps() const { return last_cpu_sensor_reads_; }

util::celsius_t server_simulator::max_cpu_sensor_temp() const {
    util::ensure(!last_cpu_sensor_reads_.empty(), "server_simulator: no CPU sensors");
    return util::celsius_t{*std::max_element(last_cpu_sensor_reads_.begin(),
                                             last_cpu_sensor_reads_.end())};
}

util::watts_t server_simulator::system_power_reading() const {
    const double u = workload_ ? workload_->instantaneous_utilization(now()) : 0.0;
    return breakdown_at(u).total();
}

util::celsius_t server_simulator::true_cpu_temp(std::size_t socket) const {
    return thermal_.cpu_die_temp(socket);
}

util::celsius_t server_simulator::true_avg_cpu_temp() const { return thermal_.average_cpu_temp(); }

util::celsius_t server_simulator::true_dimm_temp() const { return thermal_.dimm_temp(); }

power::power_breakdown server_simulator::current_power() const {
    const double u = workload_ ? workload_->instantaneous_utilization(now()) : 0.0;
    return breakdown_at(u);
}

power::power_breakdown server_simulator::breakdown_at(double u_inst) const {
    power::power_breakdown out;
    out.base = util::watts_t{config_.base_power_w};
    out.active = active_.total(u_inst);
    util::watts_t leak{0.0};
    for (std::size_t s = 0; s < thermal::server_thermal_model::socket_count(); ++s) {
        leak += leakage_.share_at(thermal_.cpu_die_temp(s), 2);
    }
    out.leakage = leak;
    out.fan = fans_.total_power();
    return out;
}

void server_simulator::apply_airflow() {
    std::vector<util::cfm_t> per_zone;
    per_zone.reserve(fans_.pair_count());
    for (std::size_t i = 0; i < fans_.pair_count(); ++i) {
        per_zone.push_back(fans_.pair().airflow(fans_.speed(i)));
    }
    thermal_.set_zone_airflow(per_zone);
}

void server_simulator::set_load_imbalance(double fraction_socket0) {
    util::ensure(fraction_socket0 >= 0.0 && fraction_socket0 <= 1.0,
                 "server_simulator::set_load_imbalance: fraction out of [0, 1]");
    imbalance_ = fraction_socket0;
}

double server_simulator::measured_socket_utilization(std::size_t socket,
                                                     util::seconds_t window) const {
    util::ensure(socket < thermal::server_thermal_model::socket_count(),
                 "server_simulator::measured_socket_utilization: bad socket");
    const double share = socket == 0 ? imbalance_ : 1.0 - imbalance_;
    // System utilization counts both sockets; one socket carrying `share`
    // of it runs at 2 * share of its own capacity.
    return std::min(100.0, measured_utilization(window) * 2.0 * share);
}

void server_simulator::apply_heat(double u_inst) {
    const double shares[2] = {imbalance_, 1.0 - imbalance_};
    for (std::size_t s = 0; s < thermal::server_thermal_model::socket_count(); ++s) {
        const util::watts_t die_heat =
            util::watts_t{config_.cpu_idle_each_w} + active_.cpu(u_inst) * shares[s] +
            leakage_.share_at(thermal_.cpu_die_temp(s), 2);
        thermal_.set_cpu_heat(s, die_heat);
    }
    thermal_.set_dimm_heat(util::watts_t{config_.dimm_idle_total_w} + active_.memory(u_inst));
    thermal_.set_other_heat(active_.other(u_inst));
}

void server_simulator::step(util::seconds_t dt) {
    util::ensure(dt.value() > 0.0, "server_simulator::step: non-positive dt");
    const double u_target = workload_ ? workload_->target_utilization(now()) : 0.0;
    const double u_inst = workload_ ? workload_->instantaneous_utilization(now()) : 0.0;
    apply_heat(u_inst);
    thermal_.step(dt);
    now_s_ += dt.value();
    record(u_target, u_inst);
    telemetry_.poll_due(now());
}

void server_simulator::advance(util::seconds_t duration, util::seconds_t dt) {
    util::ensure(duration.value() >= 0.0, "server_simulator::advance: negative duration");
    double remaining = duration.value();
    while (remaining > 1e-9) {
        const double h = std::min(remaining, dt.value());
        step(util::seconds_t{h});
        remaining -= h;
    }
}

void server_simulator::force_cold_start() {
    fans_.set_all(config_.cold_start_fan_rpm);
    apply_airflow();
    // Leakage depends on temperature, which depends on leakage; iterate
    // the outer fixed point until the idle state is self-consistent.
    for (int i = 0; i < 12; ++i) {
        apply_heat(0.0);
        thermal_.settle_to_steady_state();
    }
    now_s_ = 0.0;
    fan_changes_ = 0;
    clear_trace();
    telemetry_.reset();
    telemetry_.poll_now(now());
}

void server_simulator::settle_at(double u_pct) {
    for (int i = 0; i < 12; ++i) {
        apply_heat(u_pct);
        thermal_.settle_to_steady_state();
    }
}

util::watts_t server_simulator::idle_power(util::rpm_t fan_rpm) const {
    return steady_idle_power(config_, fan_rpm);
}

void server_simulator::set_ambient(util::celsius_t t) { thermal_.set_ambient(t); }

void server_simulator::snapshot_state(server_state& out) const {
    out.now_s = now_s_;
    out.imbalance = imbalance_;
    out.fan_changes = fan_changes_;
    out.fan_rpm.resize(fans_.pair_count());
    for (std::size_t i = 0; i < fans_.pair_count(); ++i) {
        out.fan_rpm[i] = fans_.speed(i).value();
    }
    out.rng = rng_;
    thermal_.save_state(out.thermal);
    out.sensor_reads = last_cpu_sensor_reads_;
    out.telemetry_last_poll_s = telemetry_.last_poll_time();
    out.telemetry_polled = telemetry_.ever_polled();
}

server_state server_simulator::snapshot_state() const {
    server_state out;
    snapshot_state(out);
    return out;
}

void server_simulator::restore_state(const server_state& state) {
    util::ensure(state.fan_rpm.size() == fans_.pair_count(),
                 "server_simulator::restore_state: fan pair count mismatch");
    util::ensure(state.sensor_reads.size() == last_cpu_sensor_reads_.size(),
                 "server_simulator::restore_state: sensor count mismatch");
    now_s_ = state.now_s;
    imbalance_ = state.imbalance;
    fan_changes_ = state.fan_changes;
    rng_ = state.rng;
    for (std::size_t i = 0; i < fans_.pair_count(); ++i) {
        fans_.set_speed(i, util::rpm_t{state.fan_rpm[i]});
    }
    // Airflow-derived conductances recompute from the restored speeds to
    // the exact values the snapshot carries; restore_state then reloads
    // them (a no-op value-wise) along with temperatures and powers.
    apply_airflow();
    thermal_.restore_state(state.thermal);
    last_cpu_sensor_reads_ = state.sensor_reads;
    clear_trace();
    telemetry_.reset();
    telemetry_.restore_poll_clock(state.telemetry_last_poll_s, state.telemetry_polled);
}

util::watts_t steady_idle_power(const server_config& config, util::rpm_t fan_rpm) {
    // Build a scratch plant so the query does not disturb any live one.
    const power::leakage_model leakage(config.leakage);
    thermal::server_thermal_model scratch(config.thermal);
    power::fan_bank scratch_fans(config.fan_pairs, config.fan, fan_rpm);
    std::vector<util::cfm_t> per_zone;
    for (std::size_t i = 0; i < scratch_fans.pair_count(); ++i) {
        per_zone.push_back(scratch_fans.pair().airflow(scratch_fans.speed(i)));
    }
    scratch.set_zone_airflow(per_zone);
    for (int i = 0; i < 12; ++i) {
        for (std::size_t s = 0; s < thermal::server_thermal_model::socket_count(); ++s) {
            scratch.set_cpu_heat(s, util::watts_t{config.cpu_idle_each_w} +
                                        leakage.share_at(scratch.cpu_die_temp(s), 2));
        }
        scratch.set_dimm_heat(util::watts_t{config.dimm_idle_total_w});
        scratch.set_other_heat(util::watts_t{0.0});
        scratch.settle_to_steady_state();
    }
    util::watts_t leak{0.0};
    for (std::size_t s = 0; s < thermal::server_thermal_model::socket_count(); ++s) {
        leak += leakage.share_at(scratch.cpu_die_temp(s), 2);
    }
    return util::watts_t{config.base_power_w} + leak + scratch_fans.total_power();
}

void server_simulator::record(double u_target, double u_inst) {
    const power::power_breakdown p = breakdown_at(u_inst);
    trace_row row;
    row[trace_channel::target_util] = u_target;
    row[trace_channel::instant_util] = u_inst;
    row[trace_channel::cpu0_temp] = thermal_.cpu_die_temp(0).value();
    row[trace_channel::cpu1_temp] = thermal_.cpu_die_temp(1).value();
    row[trace_channel::avg_cpu_temp] = thermal_.average_cpu_temp().value();
    double max_sensor = last_cpu_sensor_reads_.empty() ? thermal_.average_cpu_temp().value()
                                                       : last_cpu_sensor_reads_[0];
    for (double v : last_cpu_sensor_reads_) {
        max_sensor = std::max(max_sensor, v);
    }
    row[trace_channel::max_sensor_temp] = max_sensor;
    row[trace_channel::dimm_temp] = thermal_.dimm_temp().value();
    row[trace_channel::total_power] = p.total().value();
    row[trace_channel::fan_power] = p.fan.value();
    row[trace_channel::leakage_power] = p.leakage.value();
    row[trace_channel::active_power] = p.active.value();
    row[trace_channel::avg_fan_rpm] = fans_.average_speed().value();
    trace_.append(now_s_, row);
}

void server_simulator::clear_trace() { trace_.clear(); }

}  // namespace ltsc::sim
