#include "sim/server_simulator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ltsc::sim {

server_simulator::server_simulator(const server_config& config)
    : config_(validated(config)),
      rng_(config.seed, 0xda3e39cb94b95bdbULL),
      fans_(config.fan_pairs, config.fan, config.default_fan_rpm),
      leakage_(config.leakage),
      active_(config.active_coeff_w_per_pct, config.split, config.cpu_heat_shape_exponent),
      thermal_(config.thermal),
      sensors_(thermal::make_server_sensors(
          [this](std::size_t s) { return thermal_.cpu_die_temp(s); },
          [this] { return thermal_.dimm_temp(); }, config.dimm_count, rng_,
          config.sensor_noise_sigma, config.sensor_quantum)),
      telemetry_(util::seconds_t{config.telemetry_period_s}) {
    last_cpu_sensor_reads_.assign(sensors_.cpu.size(), config.thermal.ambient_c);
    fault_.reset(fans_.pair_count(), sensors_.cpu.size());
    register_telemetry();
    apply_airflow();
    apply_heat(0.0);
    if (config_.monitor.enabled) {
        monitor_.emplace(config_.monitor, monitor_plant_for(config_));
        monitor_->reset(fans_, thermal_.ambient());
    }
}

void server_simulator::register_telemetry() {
    for (std::size_t i = 0; i < sensors_.cpu.size(); ++i) {
        telemetry_.add_channel(sensors_.cpu[i].name(), "degC", [this, i] {
            // The true sensor is always read first so the noise stream
            // stays aligned with a healthy run; corruption (stuck, bias,
            // dropout) applies between the sensor and the delivered value.
            const double raw = sensors_.cpu[i].read().value();
            const double v = corrupt_sensor_reading(i, raw);
            last_cpu_sensor_reads_[i] = v;
            return v;
        });
    }
    for (std::size_t i = 0; i < sensors_.dimm.size(); ++i) {
        telemetry_.add_channel(sensors_.dimm[i].name(), "degC",
                               [this, i] { return sensors_.dimm[i].read().value(); },
                               /*ring_capacity=*/512, /*record_history=*/false);
    }
    // Per-socket rail telemetry (the paper collects per-core V/I; the
    // aggregate per-socket rail carries the same information here).
    for (std::size_t s = 0; s < thermal::server_thermal_model::socket_count(); ++s) {
        telemetry_.add_channel("cpu" + std::to_string(s) + "_voltage", "V",
                               [] { return 1.0; }, 16, false);
        telemetry_.add_channel("cpu" + std::to_string(s) + "_current", "A", [this, s] {
            const double u = workload_ ? workload_->instantaneous_utilization(now()) : 0.0;
            const double share = s == 0 ? imbalance_ : 1.0 - imbalance_;
            const double rail_w = config_.cpu_idle_each_w +
                                  active_.cpu(u).value() * share +
                                  leakage_.share_at(thermal_.cpu_die_temp(s), 2).value();
            return rail_w / 1.0;
        });
    }
    telemetry_.add_channel("system_power", "W", [this] {
        const double u = workload_ ? workload_->instantaneous_utilization(now()) : 0.0;
        return breakdown_at(u).total().value();
    });
    telemetry_.add_channel("fan_power", "W", [this] { return fans_.total_power().value(); });
}

void server_simulator::bind_workload(workload::loadgen generator) {
    workload_ = std::move(generator);
    now_s_ = 0.0;
    clear_trace();
}

void server_simulator::bind_workload(const workload::utilization_profile& profile) {
    bind_workload(workload::loadgen(profile));
}

void server_simulator::set_fan_speed(std::size_t pair_index, util::rpm_t rpm) {
    if (monitor_) {
        // Capture the command at the actuation boundary, before any
        // degraded pair latches it: the command/tach residual is the
        // monitor's view of what the controller *asked for*.
        monitor_->observe_fan_command(pair_index, fans_.pair().clamp(rpm));
    }
    if (fault_.fan_mode[pair_index] != fault_state::fan_ok) {
        // The pair's rotor no longer answers: latch the command for
        // recovery, deliver nothing physically, count nothing.  A
        // tach-stuck pair still updates its (lying) tach readout so the
        // tachometer keeps agreeing with whatever is commanded — the
        // blind spot only the thermal cross-check can see.
        fault_.fan_commanded_rpm[pair_index] = fans_.pair().clamp(rpm).value();
        if (fault_.fan_mode[pair_index] == fault_state::fan_tach) {
            fans_.set_speed(pair_index, rpm);
        }
        return;
    }
    const util::rpm_t before = fans_.speed(pair_index);
    fans_.set_speed(pair_index, rpm);
    if (fans_.speed(pair_index).value() != before.value()) {
        ++fan_changes_;
        apply_airflow();
    }
}

void server_simulator::set_all_fans(util::rpm_t rpm) {
    if (monitor_) {
        monitor_->observe_all_fan_commands(fans_.pair().clamp(rpm));
    }
    if (!fault_.any_fan_fault()) {
        // Clamp once, detect a change in the same pass, and skip the
        // airflow (and conductance) update entirely when every pair
        // already runs at the commanded speed.
        const double target = fans_.pair().clamp(rpm).value();
        bool changed = false;
        for (std::size_t i = 0; i < fans_.pair_count() && !changed; ++i) {
            changed = fans_.speed(i).value() != target;
        }
        if (!changed) {
            return;
        }
        fans_.set_all(rpm);
        ++fan_changes_;
        apply_airflow();
        return;
    }
    // Degraded path: healthy pairs actuate, faulted pairs latch.  Any
    // physical change counts as one command, like the healthy path.
    const double target = fans_.pair().clamp(rpm).value();
    bool changed = false;
    for (std::size_t i = 0; i < fans_.pair_count(); ++i) {
        if (fault_.fan_mode[i] != fault_state::fan_ok) {
            fault_.fan_commanded_rpm[i] = target;
            if (fault_.fan_mode[i] == fault_state::fan_tach) {
                fans_.set_speed(i, rpm);  // lying tach tracks the command
            }
            continue;
        }
        if (fans_.speed(i).value() != target) {
            fans_.set_speed(i, rpm);
            changed = true;
        }
    }
    if (changed) {
        ++fan_changes_;
        apply_airflow();
    }
}

util::rpm_t server_simulator::fan_speed(std::size_t pair_index) const {
    return fans_.effective_speed(pair_index);
}

util::rpm_t server_simulator::average_fan_rpm() const { return fans_.average_speed(); }

double server_simulator::measured_utilization(util::seconds_t window) const {
    if (!workload_) {
        return 0.0;
    }
    return workload_->measured_utilization(now(), window);
}

std::vector<double> server_simulator::cpu_sensor_temps() const { return last_cpu_sensor_reads_; }

util::celsius_t server_simulator::max_cpu_sensor_temp() const {
    util::ensure(!last_cpu_sensor_reads_.empty(), "server_simulator: no CPU sensors");
    return util::celsius_t{*std::max_element(last_cpu_sensor_reads_.begin(),
                                             last_cpu_sensor_reads_.end())};
}

util::watts_t server_simulator::system_power_reading() const {
    const double u = workload_ ? workload_->instantaneous_utilization(now()) : 0.0;
    return breakdown_at(u).total();
}

util::celsius_t server_simulator::true_cpu_temp(std::size_t socket) const {
    return thermal_.cpu_die_temp(socket);
}

util::celsius_t server_simulator::true_avg_cpu_temp() const { return thermal_.average_cpu_temp(); }

util::celsius_t server_simulator::true_dimm_temp() const { return thermal_.dimm_temp(); }

power::power_breakdown server_simulator::current_power() const {
    const double u = workload_ ? workload_->instantaneous_utilization(now()) : 0.0;
    return breakdown_at(u);
}

power::power_breakdown server_simulator::breakdown_at(double u_inst) const {
    power::power_breakdown out;
    out.base = util::watts_t{config_.base_power_w};
    out.active = active_.total(u_inst);
    util::watts_t leak{0.0};
    for (std::size_t s = 0; s < thermal::server_thermal_model::socket_count(); ++s) {
        leak += leakage_.share_at(thermal_.cpu_die_temp(s), 2);
    }
    out.leakage = leak;
    out.fan = fans_.total_power();
    return out;
}

void server_simulator::apply_airflow() {
    std::vector<util::cfm_t> per_zone;
    per_zone.reserve(fans_.pair_count());
    for (std::size_t i = 0; i < fans_.pair_count(); ++i) {
        // pair_airflow is the healthy airflow unless the pair's rotor
        // failed, in which case its zone sees zero direct flow (the
        // plenum cross-mixing still shares the other zones' air).
        per_zone.push_back(fans_.pair_airflow(i));
    }
    thermal_.set_zone_airflow(per_zone);
}

void server_simulator::set_load_imbalance(double fraction_socket0) {
    util::ensure(fraction_socket0 >= 0.0 && fraction_socket0 <= 1.0,
                 "server_simulator::set_load_imbalance: fraction out of [0, 1]");
    imbalance_ = fraction_socket0;
}

double server_simulator::measured_socket_utilization(std::size_t socket,
                                                     util::seconds_t window) const {
    util::ensure(socket < thermal::server_thermal_model::socket_count(),
                 "server_simulator::measured_socket_utilization: bad socket");
    const double share = socket == 0 ? imbalance_ : 1.0 - imbalance_;
    // System utilization counts both sockets; one socket carrying `share`
    // of it runs at 2 * share of its own capacity.
    return std::min(100.0, measured_utilization(window) * 2.0 * share);
}

void server_simulator::apply_heat(double u_inst) {
    const double shares[2] = {imbalance_, 1.0 - imbalance_};
    for (std::size_t s = 0; s < thermal::server_thermal_model::socket_count(); ++s) {
        const util::watts_t die_heat =
            util::watts_t{config_.cpu_idle_each_w} + active_.cpu(u_inst) * shares[s] +
            leakage_.share_at(thermal_.cpu_die_temp(s), 2);
        thermal_.set_cpu_heat(s, die_heat);
    }
    thermal_.set_dimm_heat(util::watts_t{config_.dimm_idle_total_w} + active_.memory(u_inst));
    thermal_.set_other_heat(active_.other(u_inst));
}

void server_simulator::step(util::seconds_t dt) {
    util::ensure(dt.value() > 0.0, "server_simulator::step: non-positive dt");
    if (fault_schedule_) {
        apply_due_faults();
    }
    const double u_target = workload_ ? workload_->target_utilization(now()) : 0.0;
    const double u_inst = workload_ ? workload_->instantaneous_utilization(now()) : 0.0;
    apply_heat(u_inst);
    thermal_.step(dt);
    now_s_ += dt.value();
    if (monitor_) {
        monitor_->step(dt, u_inst, imbalance_, thermal_.ambient(), fans_);
    }
    record(u_target, u_inst);
    telemetry_.set_poll_suppressed(fault_.telemetry_lost(now_s_));
    if (telemetry_.poll_due(now()) && monitor_) {
        monitor_->on_poll(last_cpu_sensor_reads_);
    }
}

void server_simulator::advance(util::seconds_t duration, util::seconds_t dt) {
    util::ensure(duration.value() >= 0.0, "server_simulator::advance: negative duration");
    double remaining = duration.value();
    while (remaining > 1e-9) {
        const double h = std::min(remaining, dt.value());
        step(util::seconds_t{h});
        remaining -= h;
    }
}

void server_simulator::force_cold_start() {
    // Faults are part of the run being restarted: clear live effects and
    // rewind the campaign cursor with the clock.
    clear_fault_effects();
    fans_.set_all(config_.cold_start_fan_rpm);
    apply_airflow();
    // Leakage depends on temperature, which depends on leakage; iterate
    // the outer fixed point until the idle state is self-consistent.
    for (int i = 0; i < 12; ++i) {
        apply_heat(0.0);
        thermal_.settle_to_steady_state();
    }
    if (monitor_) {
        // The twin restarts with the plant: re-latch the cold-start
        // commands, clear verdicts, and settle to the same idle state.
        monitor_->reset(fans_, thermal_.ambient());
        monitor_->settle(0.0, imbalance_, thermal_.ambient(), fans_);
    }
    now_s_ = 0.0;
    fan_changes_ = 0;
    clear_trace();
    telemetry_.reset();
    telemetry_.poll_now(now());
    if (monitor_) {
        monitor_->on_poll(last_cpu_sensor_reads_);
    }
}

void server_simulator::settle_at(double u_pct) {
    for (int i = 0; i < 12; ++i) {
        apply_heat(u_pct);
        thermal_.settle_to_steady_state();
    }
    if (monitor_) {
        monitor_->settle(u_pct, imbalance_, thermal_.ambient(), fans_);
    }
}

util::watts_t server_simulator::idle_power(util::rpm_t fan_rpm) const {
    return steady_idle_power(config_, fan_rpm);
}

void server_simulator::set_ambient(util::celsius_t t) { thermal_.set_ambient(t); }

void server_simulator::snapshot_state(server_state& out) const {
    out.now_s = now_s_;
    out.imbalance = imbalance_;
    out.fan_changes = fan_changes_;
    out.fan_rpm.resize(fans_.pair_count());
    for (std::size_t i = 0; i < fans_.pair_count(); ++i) {
        // Commanded (raw) speeds: a failed pair's tach reads 0, but the
        // restore path must re-latch the command, not clamp the zero.
        out.fan_rpm[i] = fans_.speed(i).value();
    }
    out.rng = rng_;
    thermal_.save_state(out.thermal);
    out.sensor_reads = last_cpu_sensor_reads_;
    out.telemetry_last_poll_s = telemetry_.last_poll_time();
    out.telemetry_polled = telemetry_.ever_polled();
    out.fault = fault_;
    if (monitor_) {
        monitor_->save_state(out.monitor);
    } else {
        out.monitor = core::fault_monitor_state{};
    }
}

server_state server_simulator::snapshot_state() const {
    server_state out;
    snapshot_state(out);
    return out;
}

void server_simulator::restore_state(const server_state& state) {
    util::ensure(state.fan_rpm.size() == fans_.pair_count(),
                 "server_simulator::restore_state: fan pair count mismatch");
    util::ensure(state.sensor_reads.size() == last_cpu_sensor_reads_.size(),
                 "server_simulator::restore_state: sensor count mismatch");
    util::ensure(state.fault.sized_for(fans_.pair_count(), sensors_.cpu.size()),
                 "server_simulator::restore_state: fault state shape mismatch");
    now_s_ = state.now_s;
    imbalance_ = state.imbalance;
    fan_changes_ = state.fan_changes;
    rng_ = state.rng;
    fault_ = state.fault;
    for (std::size_t i = 0; i < fans_.pair_count(); ++i) {
        fans_.set_speed(i, util::rpm_t{state.fan_rpm[i]});
        fans_.set_failed(i, fault_.fan_mode[i] == fault_state::fan_failed);
        fans_.set_tach_stuck(i, fault_.fan_mode[i] == fault_state::fan_tach);
    }
    // Airflow-derived conductances recompute from the restored speeds to
    // the exact values the snapshot carries; restore_state then reloads
    // them (a no-op value-wise) along with temperatures and powers.
    apply_airflow();
    thermal_.restore_state(state.thermal);
    last_cpu_sensor_reads_ = state.sensor_reads;
    clear_trace();
    telemetry_.reset();
    telemetry_.restore_poll_clock(state.telemetry_last_poll_s, state.telemetry_polled);
    if (monitor_) {
        monitor_->restore_state(state.monitor, fans_);
    }
}

util::watts_t steady_idle_power(const server_config& config, util::rpm_t fan_rpm) {
    // Build a scratch plant so the query does not disturb any live one.
    const power::leakage_model leakage(config.leakage);
    thermal::server_thermal_model scratch(config.thermal);
    power::fan_bank scratch_fans(config.fan_pairs, config.fan, fan_rpm);
    std::vector<util::cfm_t> per_zone;
    for (std::size_t i = 0; i < scratch_fans.pair_count(); ++i) {
        per_zone.push_back(scratch_fans.pair().airflow(scratch_fans.speed(i)));
    }
    scratch.set_zone_airflow(per_zone);
    for (int i = 0; i < 12; ++i) {
        for (std::size_t s = 0; s < thermal::server_thermal_model::socket_count(); ++s) {
            scratch.set_cpu_heat(s, util::watts_t{config.cpu_idle_each_w} +
                                        leakage.share_at(scratch.cpu_die_temp(s), 2));
        }
        scratch.set_dimm_heat(util::watts_t{config.dimm_idle_total_w});
        scratch.set_other_heat(util::watts_t{0.0});
        scratch.settle_to_steady_state();
    }
    util::watts_t leak{0.0};
    for (std::size_t s = 0; s < thermal::server_thermal_model::socket_count(); ++s) {
        leak += leakage.share_at(scratch.cpu_die_temp(s), 2);
    }
    return util::watts_t{config.base_power_w} + leak + scratch_fans.total_power();
}

void server_simulator::record(double u_target, double u_inst) {
    const power::power_breakdown p = breakdown_at(u_inst);
    trace_row row;
    row[trace_channel::target_util] = u_target;
    row[trace_channel::instant_util] = u_inst;
    row[trace_channel::cpu0_temp] = thermal_.cpu_die_temp(0).value();
    row[trace_channel::cpu1_temp] = thermal_.cpu_die_temp(1).value();
    row[trace_channel::avg_cpu_temp] = thermal_.average_cpu_temp().value();
    double max_sensor = last_cpu_sensor_reads_.empty() ? thermal_.average_cpu_temp().value()
                                                       : last_cpu_sensor_reads_[0];
    for (double v : last_cpu_sensor_reads_) {
        max_sensor = std::max(max_sensor, v);
    }
    row[trace_channel::max_sensor_temp] = max_sensor;
    row[trace_channel::dimm_temp] = thermal_.dimm_temp().value();
    row[trace_channel::total_power] = p.total().value();
    row[trace_channel::fan_power] = p.fan.value();
    row[trace_channel::leakage_power] = p.leakage.value();
    row[trace_channel::active_power] = p.active.value();
    row[trace_channel::avg_fan_rpm] = fans_.average_speed().value();
    // record() runs before the step's poll check, so the age here is
    // always finite after a cold start and grows to the poll period.
    row[trace_channel::sensor_age] =
        telemetry_.ever_polled() ? now_s_ - telemetry_.last_poll_time() : now_s_;
    row[trace_channel::monitor_sensor_health] =
        monitor_ ? static_cast<double>(static_cast<int>(monitor_->worst_sensor_health())) : 0.0;
    row[trace_channel::monitor_fan_health] =
        monitor_ ? static_cast<double>(static_cast<int>(monitor_->worst_fan_health())) : 0.0;
    row[trace_channel::monitor_die_estimate] = monitor_ ? monitor_->max_die_estimate_c() : 0.0;
    trace_.append(now_s_, row);
}

void server_simulator::clear_trace() { trace_.clear(); }

void server_simulator::bind_fault_schedule(fault_schedule schedule) {
    if (!schedule.empty()) {
        util::ensure(schedule.max_fan_target() < fans_.pair_count(),
                     "server_simulator::bind_fault_schedule: fan target out of range");
        util::ensure(schedule.max_sensor_target() < sensors_.cpu.size(),
                     "server_simulator::bind_fault_schedule: sensor target out of range");
    }
    fault_schedule_ = std::move(schedule);
    clear_fault_effects();
}

void server_simulator::clear_fault_schedule() {
    fault_schedule_.reset();
    clear_fault_effects();
}

void server_simulator::clear_fault_effects() {
    fault_.reset(fans_.pair_count(), sensors_.cpu.size());
    for (std::size_t i = 0; i < fans_.pair_count(); ++i) {
        fans_.set_failed(i, false);
        fans_.set_tach_stuck(i, false);
    }
    telemetry_.set_poll_suppressed(false);
}

void server_simulator::apply_due_faults() {
    const std::vector<fault_event>& events = fault_schedule_->events();
    while (fault_.next_event < events.size() &&
           events[fault_.next_event].t_s <= now_s_ + 1e-9) {
        apply_fault_event(events[fault_.next_event]);
        ++fault_.next_event;
    }
}

void server_simulator::apply_fault_event(const fault_event& event) {
    switch (event.kind) {
        case fault_kind::fan_failure:
            fault_.fan_commanded_rpm[event.target] = fans_.speed(event.target).value();
            fault_.fan_mode[event.target] = fault_state::fan_failed;
            fans_.set_failed(event.target, true);
            apply_airflow();
            break;
        case fault_kind::fan_stuck_pwm:
            fault_.fan_commanded_rpm[event.target] = fans_.speed(event.target).value();
            fault_.fan_mode[event.target] = fault_state::fan_stuck;
            if (!std::isnan(event.value)) {
                fans_.set_speed(event.target, util::rpm_t{event.value});
                apply_airflow();
            }
            break;
        case fault_kind::fan_tach_stuck:
            fault_.fan_commanded_rpm[event.target] = fans_.speed(event.target).value();
            fault_.fan_mode[event.target] = fault_state::fan_tach;
            fans_.set_tach_stuck(event.target, true);
            apply_airflow();
            break;
        case fault_kind::fan_recover:
            fault_.fan_mode[event.target] = fault_state::fan_ok;
            fans_.set_failed(event.target, false);
            fans_.set_tach_stuck(event.target, false);
            // Resume the last latched command (faults and latched
            // commands are not controller actions, so no count).
            fans_.set_speed(event.target, util::rpm_t{fault_.fan_commanded_rpm[event.target]});
            apply_airflow();
            break;
        case fault_kind::sensor_stuck:
            fault_.sensor_stuck[event.target] = 1;
            fault_.sensor_stuck_c[event.target] = std::isnan(event.value)
                                                      ? last_cpu_sensor_reads_[event.target]
                                                      : event.value;
            break;
        case fault_kind::sensor_bias:
            fault_.sensor_bias_c[event.target] = event.value;
            break;
        case fault_kind::sensor_dropout:
            // Windows anchor on the scheduled time, not the (step-
            // quantized) fire time, so replays at a different sim_dt see
            // the same span.
            fault_.sensor_dropout_until_s[event.target] = event.t_s + event.duration_s;
            break;
        case fault_kind::sensor_drift:
            // The ramp anchors on the scheduled onset, like dropout
            // windows, so the grown bias is dt-invariant.
            fault_.sensor_drift_c_per_s[event.target] = event.value;
            fault_.sensor_drift_start_s[event.target] = event.t_s;
            break;
        case fault_kind::sensor_intermittent:
            fault_.sensor_intermittent_c[event.target] = event.value;
            fault_.sensor_intermittent_start_s[event.target] = event.t_s;
            fault_.sensor_intermittent_until_s[event.target] = event.t_s + event.duration_s;
            break;
        case fault_kind::sensor_recover:
            fault_.sensor_stuck[event.target] = 0;
            fault_.sensor_bias_c[event.target] = 0.0;
            fault_.sensor_dropout_until_s[event.target] = 0.0;
            fault_.sensor_drift_c_per_s[event.target] = 0.0;
            fault_.sensor_drift_start_s[event.target] = 0.0;
            fault_.sensor_intermittent_c[event.target] = 0.0;
            fault_.sensor_intermittent_start_s[event.target] = 0.0;
            fault_.sensor_intermittent_until_s[event.target] = 0.0;
            break;
        case fault_kind::telemetry_loss:
            fault_.telemetry_lost_until_s = event.t_s + event.duration_s;
            break;
    }
}

double server_simulator::corrupt_sensor_reading(std::size_t sensor, double raw) const {
    if (fault_.sensor_stuck[sensor] != 0) {
        return fault_.sensor_stuck_c[sensor];
    }
    if (now_s_ < fault_.sensor_dropout_until_s[sensor] - 1e-9) {
        return last_cpu_sensor_reads_[sensor];  // hold the last delivered value
    }
    double offset = fault_.sensor_bias_c[sensor];
    if (fault_.sensor_drift_c_per_s[sensor] != 0.0) {
        offset += fault_.sensor_drift_c_per_s[sensor] *
                  (now_s_ - fault_.sensor_drift_start_s[sensor]);
    }
    if (fault_.intermittent_burst_live(sensor, now_s_)) {
        offset += fault_.sensor_intermittent_c[sensor];
    }
    // Exact pass-through when unbiased, so healthy runs stay bitwise.
    return offset == 0.0 ? raw : raw + offset;
}

}  // namespace ltsc::sim
