#include "sim/rollout_engine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ltsc::sim {

rollout_engine::rollout_engine(const server_config& config, std::size_t max_candidates)
    : batch_(config, max_candidates) {
    util::ensure(max_candidates >= 1, "rollout_engine: need at least one candidate lane");
}

void rollout_engine::bind_workload(const workload::loadgen& workload) {
    for (std::size_t l = 0; l < batch_.lane_count(); ++l) {
        batch_.bind_workload(l, workload);
    }
    workload_bound_ = true;
}

const rollout_result& rollout_engine::evaluate(const server_state& start,
                                               const std::vector<fan_schedule>& candidates,
                                               const rollout_options& options) {
    const std::size_t k = candidates.size();
    util::ensure(k >= 1, "rollout_engine::evaluate: no candidates");
    util::ensure(k <= batch_.lane_count(), "rollout_engine::evaluate: more candidates than lanes");
    util::ensure(workload_bound_, "rollout_engine::evaluate: no workload bound");
    util::ensure(options.horizon.value() > 0.0, "rollout_engine::evaluate: non-positive horizon");
    util::ensure(options.epoch.value() > 0.0, "rollout_engine::evaluate: non-positive epoch");
    util::ensure(options.sim_dt.value() > 0.0, "rollout_engine::evaluate: non-positive sim_dt");
    for (const fan_schedule& c : candidates) {
        util::ensure(!c.moves.empty(), "rollout_engine::evaluate: empty candidate schedule");
    }

    // Clone the plant across the candidate lanes; park the rest.
    for (std::size_t l = 0; l < k; ++l) {
        batch_.load_lane_state(l, start);
    }
    for (std::size_t l = k; l < batch_.lane_count(); ++l) {
        batch_.set_lane_active(l, false);
    }

    rollout_result& out = result_;
    out.best = 0;
    out.scores.assign(k, candidate_score{});

    const double dt = options.sim_dt.value();
    const double horizon = options.horizon.value();
    const double epoch = options.epoch.value();
    // Same loop shape as run_controlled: step until the horizon has
    // elapsed, applying the next schedule move at each epoch boundary.
    double elapsed = 0.0;
    double next_move_at = 0.0;
    std::size_t move_idx = 0;
    std::size_t live = k;
    while (elapsed < horizon - 1e-9 && live > 0) {
        if (elapsed + 1e-9 >= next_move_at) {
            for (std::size_t l = 0; l < k; ++l) {
                if (out.scores[l].guarded) {
                    continue;
                }
                const std::vector<util::rpm_t>& moves = candidates[l].moves;
                batch_.set_all_fans(l, moves[std::min(move_idx, moves.size() - 1)]);
            }
            ++move_idx;
            next_move_at += epoch;
        }
        batch_.step(util::seconds_t{dt});
        elapsed += dt;
        for (std::size_t l = 0; l < k; ++l) {
            candidate_score& sc = out.scores[l];
            if (sc.guarded) {
                continue;
            }
            ++sc.steps;
            const double t_max = std::max(batch_.true_cpu_temp(l, 0).value(),
                                          batch_.true_cpu_temp(l, 1).value());
            sc.peak_temp_c = std::max(sc.peak_temp_c, t_max);
            if (t_max > options.guard_temp_c) {
                // Disqualified: stop spending substeps on this lane.
                sc.guarded = true;
                batch_.set_lane_active(l, false);
                --live;
            }
        }
    }

    for (std::size_t l = 0; l < k; ++l) {
        candidate_score& sc = out.scores[l];
        const util::column_view power = batch_.trace(l).total_power();
        double energy = 0.0;
        for (std::size_t i = 0; i < power.size(); ++i) {
            energy += power.v(i) * dt;
        }
        sc.energy_j = energy;
        sc.score_j = energy;
        if (sc.guarded) {
            sc.score_j += options.guard_penalty_j +
                          options.overshoot_weight_j_per_k *
                              (sc.peak_temp_c - options.guard_temp_c);
        }
        if (sc.score_j < out.scores[out.best].score_j) {
            out.best = l;
        }
    }
    return out;
}

}  // namespace ltsc::sim
