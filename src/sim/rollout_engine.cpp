#include "sim/rollout_engine.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ltsc::sim {

rollout_engine::rollout_engine(const server_config& config, std::size_t max_candidates)
    : batch_(config, max_candidates) {
    util::ensure(max_candidates >= 1, "rollout_engine: need at least one candidate lane");
}

void rollout_engine::bind_workload(const workload::loadgen& workload) {
    for (std::size_t l = 0; l < batch_.lane_count(); ++l) {
        batch_.bind_workload(l, workload);
    }
    workload_bound_ = true;
}

void rollout_engine::bind_fault_schedule(const fault_schedule& schedule) {
    for (std::size_t l = 0; l < batch_.lane_count(); ++l) {
        batch_.bind_fault_schedule(l, schedule);
    }
}

void rollout_engine::clear_fault_schedule() {
    for (std::size_t l = 0; l < batch_.lane_count(); ++l) {
        batch_.clear_fault_schedule(l);
    }
}

const rollout_result& rollout_engine::evaluate(const server_state& start,
                                               const std::vector<fan_schedule>& candidates,
                                               const rollout_options& options) {
    const std::size_t k = candidates.size();
    util::ensure(k >= 1, "rollout_engine::evaluate: no candidates");
    util::ensure(k <= batch_.lane_count(), "rollout_engine::evaluate: more candidates than lanes");
    util::ensure(workload_bound_, "rollout_engine::evaluate: no workload bound");
    util::ensure(options.horizon.value() > 0.0, "rollout_engine::evaluate: non-positive horizon");
    util::ensure(options.epoch.value() > 0.0, "rollout_engine::evaluate: non-positive epoch");
    util::ensure(options.sim_dt.value() > 0.0, "rollout_engine::evaluate: non-positive sim_dt");
    for (const fan_schedule& c : candidates) {
        util::ensure(!c.moves.empty(), "rollout_engine::evaluate: empty candidate schedule");
    }

    // Clone the plant across the candidate lanes; park the rest.
    for (std::size_t l = 0; l < k; ++l) {
        batch_.load_lane_state(l, start);
    }
    for (std::size_t l = k; l < batch_.lane_count(); ++l) {
        batch_.set_lane_active(l, false);
    }

    rollout_result& out = result_;
    out.best = 0;
    out.scores.assign(k, candidate_score{});

    const double dt = options.sim_dt.value();
    const double horizon = options.horizon.value();
    const double epoch = options.epoch.value();
    // Same loop shape as run_controlled, but scheduled on integer step
    // counts: accumulating `elapsed += dt` drifts by an ulp per step, and
    // over a long horizon the drifted comparison against the next epoch
    // boundary can skip or double-apply a move.  Both the step budget and
    // the move instants are derived from the step index instead, so move
    // placement is exact for any horizon/epoch/dt combination.
    const long total_steps = static_cast<long>(std::ceil(horizon / dt - 1e-9));
    long next_move_step = 0;
    std::size_t move_idx = 0;
    std::size_t live = k;
    for (long step = 0; step < total_steps && live > 0; ++step) {
        if (step >= next_move_step) {
            for (std::size_t l = 0; l < k; ++l) {
                if (out.scores[l].guarded) {
                    continue;
                }
                const std::vector<util::rpm_t>& moves = candidates[l].moves;
                batch_.set_all_fans(l, moves[std::min(move_idx, moves.size() - 1)]);
            }
            ++move_idx;
            next_move_step = static_cast<long>(
                std::ceil(static_cast<double>(move_idx) * epoch / dt - 1e-9));
        }
        batch_.step(util::seconds_t{dt});
        for (std::size_t l = 0; l < k; ++l) {
            candidate_score& sc = out.scores[l];
            if (sc.guarded) {
                continue;
            }
            ++sc.steps;
            const double t_max = std::max(batch_.true_cpu_temp(l, 0).value(),
                                          batch_.true_cpu_temp(l, 1).value());
            sc.peak_temp_c = std::max(sc.peak_temp_c, t_max);
            if (t_max > options.guard_temp_c) {
                // Disqualified: stop spending substeps on this lane.
                sc.guarded = true;
                batch_.set_lane_active(l, false);
                --live;
            }
        }
    }

    for (std::size_t l = 0; l < k; ++l) {
        candidate_score& sc = out.scores[l];
        const util::column_view power = batch_.trace(l).total_power();
        double energy = 0.0;
        for (std::size_t i = 0; i < power.size(); ++i) {
            energy += power.v(i) * dt;
        }
        sc.energy_j = energy;
        sc.score_j = energy;
        if (sc.guarded) {
            sc.score_j += options.guard_penalty_j +
                          options.overshoot_weight_j_per_k *
                              (sc.peak_temp_c - options.guard_temp_c);
        }
        if (sc.score_j < out.scores[out.best].score_j) {
            out.best = l;
        }
    }
    return out;
}

}  // namespace ltsc::sim
