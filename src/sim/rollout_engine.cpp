#include "sim/rollout_engine.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ltsc::sim {

rollout_engine::rollout_engine(const server_config& config, std::size_t max_candidates,
                               rollout_engine_config engine_config)
    : max_candidates_(max_candidates), pool_(engine_config.threads) {
    util::ensure(max_candidates >= 1, "rollout_engine: need at least one candidate lane");
    const std::size_t shards =
        std::clamp<std::size_t>(engine_config.shards, 1, max_candidates_);
    const std::size_t base = max_candidates_ / shards;
    const std::size_t rem = max_candidates_ % shards;
    offsets_.resize(shards + 1);
    offsets_[0] = 0;
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t count = base + (s < rem ? 1 : 0);
        offsets_[s + 1] = offsets_[s] + count;
        shards_.push_back(std::make_unique<server_batch>(config, count, engine_config.tier));
    }
}

std::size_t rollout_engine::shard_of(std::size_t candidate) const {
    const std::size_t shards = shards_.size();
    const std::size_t base = max_candidates_ / shards;
    const std::size_t rem = max_candidates_ % shards;
    const std::size_t big = rem * (base + 1);
    if (candidate < big) {
        return candidate / (base + 1);
    }
    return rem + (candidate - big) / base;
}

trace_view rollout_engine::candidate_trace(std::size_t l) const {
    util::ensure(l < max_candidates_, "rollout_engine::candidate_trace: out of range");
    const std::size_t s = shard_of(l);
    return shards_[s]->trace(l - offsets_[s]);
}

void rollout_engine::bind_workload(const workload::loadgen& workload) {
    for (auto& shard : shards_) {
        for (std::size_t l = 0; l < shard->lane_count(); ++l) {
            shard->bind_workload(l, workload);
        }
    }
    workload_bound_ = true;
}

void rollout_engine::bind_fault_schedule(const fault_schedule& schedule) {
    for (auto& shard : shards_) {
        for (std::size_t l = 0; l < shard->lane_count(); ++l) {
            shard->bind_fault_schedule(l, schedule);
        }
    }
}

void rollout_engine::clear_fault_schedule() {
    for (auto& shard : shards_) {
        for (std::size_t l = 0; l < shard->lane_count(); ++l) {
            shard->clear_fault_schedule(l);
        }
    }
}

/// Rolls one shard's candidate block over the horizon.  This is the
/// whole single-batch evaluation loop restricted to the shard's lanes,
/// so a single-shard engine reproduces the pre-sharding sequence
/// exactly, and per-candidate trajectories/scores cannot depend on how
/// candidates are split across shards.
void rollout_engine::evaluate_shard(std::size_t s, std::size_t k, const server_state& start,
                                    const std::vector<fan_schedule>& candidates,
                                    const rollout_options& options) {
    server_batch& batch = *shards_[s];
    const std::size_t lo = offsets_[s];
    const std::size_t hi = std::min(offsets_[s + 1], k);
    const std::size_t count = hi > lo ? hi - lo : 0;

    // Clone the plant across this shard's candidate lanes; park the rest.
    for (std::size_t l = 0; l < count; ++l) {
        batch.load_lane_state(l, start);
    }
    for (std::size_t l = count; l < batch.lane_count(); ++l) {
        batch.set_lane_active(l, false);
    }
    if (count == 0) {
        return;
    }

    rollout_result& out = result_;
    const double dt = options.sim_dt.value();
    const double horizon = options.horizon.value();
    const double epoch = options.epoch.value();
    // Same loop shape as run_controlled, but scheduled on integer step
    // counts: accumulating `elapsed += dt` drifts by an ulp per step, and
    // over a long horizon the drifted comparison against the next epoch
    // boundary can skip or double-apply a move.  Both the step budget and
    // the move instants are derived from the step index instead, so move
    // placement is exact for any horizon/epoch/dt combination.
    const long total_steps = static_cast<long>(std::ceil(horizon / dt - 1e-9));
    long next_move_step = 0;
    std::size_t move_idx = 0;
    std::size_t live = count;
    for (long step = 0; step < total_steps && live > 0; ++step) {
        if (step >= next_move_step) {
            for (std::size_t l = 0; l < count; ++l) {
                if (out.scores[lo + l].guarded) {
                    continue;
                }
                const std::vector<util::rpm_t>& moves = candidates[lo + l].moves;
                batch.set_all_fans(l, moves[std::min(move_idx, moves.size() - 1)]);
            }
            ++move_idx;
            next_move_step =
                static_cast<long>(std::ceil(static_cast<double>(move_idx) * epoch / dt - 1e-9));
        }
        batch.step(util::seconds_t{dt});
        for (std::size_t l = 0; l < count; ++l) {
            candidate_score& sc = out.scores[lo + l];
            if (sc.guarded) {
                continue;
            }
            ++sc.steps;
            const double t_max = std::max(batch.true_cpu_temp(l, 0).value(),
                                          batch.true_cpu_temp(l, 1).value());
            sc.peak_temp_c = std::max(sc.peak_temp_c, t_max);
            if (t_max > options.guard_temp_c) {
                // Disqualified: stop spending substeps on this lane.
                sc.guarded = true;
                batch.set_lane_active(l, false);
                --live;
            }
        }
    }

    for (std::size_t l = 0; l < count; ++l) {
        candidate_score& sc = out.scores[lo + l];
        const util::column_view power = batch.trace(l).total_power();
        double energy = 0.0;
        for (std::size_t i = 0; i < power.size(); ++i) {
            energy += power.v(i) * dt;
        }
        sc.energy_j = energy;
        sc.score_j = energy;
        if (sc.guarded) {
            sc.score_j +=
                options.guard_penalty_j +
                options.overshoot_weight_j_per_k * (sc.peak_temp_c - options.guard_temp_c);
        }
    }
}

const rollout_result& rollout_engine::evaluate(const server_state& start,
                                               const std::vector<fan_schedule>& candidates,
                                               const rollout_options& options) {
    const std::size_t k = candidates.size();
    util::ensure(k >= 1, "rollout_engine::evaluate: no candidates");
    util::ensure(k <= max_candidates_, "rollout_engine::evaluate: more candidates than lanes");
    util::ensure(workload_bound_, "rollout_engine::evaluate: no workload bound");
    util::ensure(options.horizon.value() > 0.0, "rollout_engine::evaluate: non-positive horizon");
    util::ensure(options.epoch.value() > 0.0, "rollout_engine::evaluate: non-positive epoch");
    util::ensure(options.sim_dt.value() > 0.0, "rollout_engine::evaluate: non-positive sim_dt");
    for (const fan_schedule& c : candidates) {
        util::ensure(!c.moves.empty(), "rollout_engine::evaluate: empty candidate schedule");
    }

    rollout_result& out = result_;
    out.best = 0;
    out.scores.assign(k, candidate_score{});

    // Shards touch disjoint score ranges and their own lanes only, so
    // the fan-out is deterministic regardless of scheduling.
    pool_.run_indexed(shards_.size(), [&](std::size_t s) {
        evaluate_shard(s, k, start, candidates, options);
    });

    for (std::size_t l = 0; l < k; ++l) {
        if (out.scores[l].score_j < out.scores[out.best].score_j) {
            out.best = l;
        }
    }
    return out;
}

}  // namespace ltsc::sim
