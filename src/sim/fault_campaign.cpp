#include "sim/fault_campaign.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "core/bang_bang_controller.hpp"
#include "core/controller_runtime.hpp"
#include "sim/server_simulator.hpp"
#include "util/error.hpp"
#include "workload/profile.hpp"

namespace ltsc::sim {

namespace {

/// The sweep's workload: a 30/90 % square wave (150 s half-period) that
/// keeps crossing the bang-bang band, so faults land on heating flanks,
/// cooling flanks, and steady plateaus alike.
workload::utilization_profile sweep_profile(double duration_s) {
    workload::utilization_profile profile("FaultSweep");
    const double cycle_s = 300.0;
    const int cycles = static_cast<int>(duration_s / cycle_s);
    if (cycles > 0) {
        profile.square(90.0, 30.0, util::seconds_t{cycle_s / 2.0}, cycles);
    }
    const double remainder = duration_s - cycles * cycle_s;
    if (remainder > 1e-9) {
        profile.constant(90.0, util::seconds_t{remainder});
    }
    return profile;
}

/// One leg of the twin pair: fresh plant, fresh Failsafe(Bang), optional
/// campaign bound, full run.  Returns the Table-I row plus the maximum
/// *true* die temperature over the trace (the envelope is judged on
/// physics, not on the possibly faulted sensors).
std::pair<run_metrics, double> run_leg(const fault_campaign_options& options,
                                       const fault_schedule* campaign, const char* label) {
    server_config config;  // paper plant
    config.seed = options.plant_seed;
    server_simulator sim(config);
    if (campaign != nullptr) {
        sim.bind_fault_schedule(*campaign);
    }
    core::failsafe_controller controller(std::make_unique<core::bang_bang_controller>(),
                                         options.failsafe);
    const workload::utilization_profile profile = sweep_profile(options.duration_s);
    run_metrics metrics = core::run_controlled(sim, controller, profile);
    metrics.controller_name = label;
    const trace_view trace = sim.trace().view();
    const double max_die = std::max(trace.cpu0_temp().max(), trace.cpu1_temp().max());
    return {std::move(metrics), max_die};
}

}  // namespace

fault_campaign_result run_fault_campaign(std::uint64_t campaign_seed,
                                         const fault_campaign_options& options) {
    util::ensure(options.duration_s > 0.0, "run_fault_campaign: non-positive duration");
    fault_campaign_config generator = options.faults;
    generator.duration_s = options.duration_s;

    fault_campaign_result result;
    result.schedule = make_random_campaign(campaign_seed, generator);
    for (const fault_event& event : result.schedule.events()) {
        result.fan_fault = result.fan_fault || event.kind == fault_kind::fan_failure ||
                           event.kind == fault_kind::fan_stuck_pwm;
    }

    std::tie(result.healthy, result.healthy_max_die_c) = run_leg(options, nullptr, "Healthy");
    std::tie(result.faulted, result.faulted_max_die_c) =
        run_leg(options, &result.schedule, "Faulted");
    util::ensure(result.healthy.energy_kwh > 0.0, "run_fault_campaign: zero healthy energy");
    result.energy_ratio = result.faulted.energy_kwh / result.healthy.energy_kwh;
    return result;
}

std::optional<std::string> campaign_violation(const fault_campaign_result& result,
                                              const fault_campaign_limits& limits) {
    const double envelope =
        result.fan_fault ? limits.fan_fault_envelope_c : limits.envelope_c;
    std::ostringstream msg;
    if (result.faulted_max_die_c > envelope) {
        msg << "thermal envelope exceeded: max true die temp " << result.faulted_max_die_c
            << " degC > " << envelope << " degC ("
            << (result.fan_fault ? "fan-fault" : "no-fan-fault") << " cap)";
        return msg.str();
    }
    if (result.energy_ratio > limits.max_energy_ratio) {
        msg << "energy regret exceeded: faulted/healthy ratio " << result.energy_ratio << " > "
            << limits.max_energy_ratio;
        return msg.str();
    }
    return std::nullopt;
}

}  // namespace ltsc::sim
