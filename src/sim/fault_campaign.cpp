#include "sim/fault_campaign.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "core/bang_bang_controller.hpp"
#include "core/controller_runtime.hpp"
#include "sim/server_simulator.hpp"
#include "util/error.hpp"
#include "workload/profile.hpp"

namespace ltsc::sim {

namespace {

/// The sweep's workload: a 30/90 % square wave (150 s half-period) that
/// keeps crossing the bang-bang band, so faults land on heating flanks,
/// cooling flanks, and steady plateaus alike.
workload::utilization_profile sweep_profile(double duration_s) {
    workload::utilization_profile profile("FaultSweep");
    const double cycle_s = 300.0;
    const int cycles = static_cast<int>(duration_s / cycle_s);
    if (cycles > 0) {
        profile.square(90.0, 30.0, util::seconds_t{cycle_s / 2.0}, cycles);
    }
    const double remainder = duration_s - cycles * cycle_s;
    if (remainder > 1e-9) {
        profile.constant(90.0, util::seconds_t{remainder});
    }
    return profile;
}

/// The lying-sensor class is judged at *sustained* 90 % load instead:
/// a cool-lying sensor parks the fans at minimum, and only a dwell
/// longer than the plant's thermal time constant lets the hidden
/// excursion actually develop (the square wave's 150 s halves mask it).
workload::utilization_profile sustained_profile(double duration_s) {
    workload::utilization_profile profile("FaultSoak");
    profile.constant(90.0, util::seconds_t{duration_s});
    return profile;
}

/// What one leg of the twin pair yields beyond the Table-I row: the
/// maximum *true* die temperature over the trace (the envelope is
/// judged on physics, not on the possibly faulted sensors) and the
/// monitor-channel detection summary.
struct leg_outcome {
    run_metrics metrics;
    double max_die_c = 0.0;
    detection_summary detection;
};

/// One leg: fresh plant, fresh Failsafe(Bang), optional campaign bound,
/// full run.
leg_outcome run_leg(const fault_campaign_options& options, const fault_schedule* campaign,
                    const char* label) {
    server_config config;  // paper plant
    config.seed = options.plant_seed;
    config.monitor.enabled = options.monitored;
    server_simulator sim(config);
    if (campaign != nullptr) {
        sim.bind_fault_schedule(*campaign);
    }
    core::failsafe_controller controller(std::make_unique<core::bang_bang_controller>(),
                                         options.failsafe);
    const workload::utilization_profile profile =
        options.fault_class == campaign_class::lying_sensor ||
                options.fault_class == campaign_class::drifting_sensor
            ? sustained_profile(options.duration_s)
            : sweep_profile(options.duration_s);
    leg_outcome out;
    out.metrics = core::run_controlled(sim, controller, profile);
    out.metrics.controller_name = label;
    const trace_view trace = sim.trace().view();
    out.max_die_c = std::max(trace.cpu0_temp().max(), trace.cpu1_temp().max());
    out.detection = compute_detection_summary(trace, campaign);
    return out;
}

}  // namespace

const char* to_string(campaign_class c) {
    switch (c) {
        case campaign_class::survivable: return "survivable";
        case campaign_class::lying_sensor: return "lying_sensor";
        case campaign_class::correlated: return "correlated";
        case campaign_class::drifting_sensor: return "drifting_sensor";
    }
    return "unknown";
}

fault_campaign_result run_fault_campaign(std::uint64_t campaign_seed,
                                         const fault_campaign_options& options) {
    util::ensure(options.duration_s > 0.0, "run_fault_campaign: non-positive duration");
    fault_campaign_config generator = options.faults;
    generator.duration_s = options.duration_s;

    fault_campaign_result result;
    result.fault_class = options.fault_class;
    result.monitored = options.monitored;
    switch (options.fault_class) {
        case campaign_class::survivable:
            result.schedule = make_random_campaign(campaign_seed, generator);
            break;
        case campaign_class::lying_sensor:
            result.schedule = make_lying_sensor_campaign(campaign_seed, generator);
            break;
        case campaign_class::correlated:
            // Rack-level PSU events: groups of pairs at once, so the
            // concurrency cap opens to "one pair must survive".
            generator.correlated_fan_events = true;
            generator.max_concurrent_fan_faults = generator.fan_pairs - 1;
            result.schedule = make_random_campaign(campaign_seed, generator);
            break;
        case campaign_class::drifting_sensor:
            result.schedule = make_drifting_sensor_campaign(campaign_seed, generator);
            break;
    }
    for (const fault_event& event : result.schedule.events()) {
        result.fan_fault = result.fan_fault || event.kind == fault_kind::fan_failure ||
                           event.kind == fault_kind::fan_stuck_pwm ||
                           event.kind == fault_kind::fan_tach_stuck;
    }

    leg_outcome healthy = run_leg(options, nullptr, "Healthy");
    leg_outcome faulted = run_leg(options, &result.schedule, "Faulted");
    result.healthy = std::move(healthy.metrics);
    result.healthy_max_die_c = healthy.max_die_c;
    result.healthy_detection = healthy.detection;
    result.faulted = std::move(faulted.metrics);
    result.faulted_max_die_c = faulted.max_die_c;
    result.faulted_detection = faulted.detection;
    util::ensure(result.healthy.energy_kwh > 0.0, "run_fault_campaign: zero healthy energy");
    result.energy_ratio = result.faulted.energy_kwh / result.healthy.energy_kwh;
    return result;
}

std::optional<std::string> campaign_violation(const fault_campaign_result& result,
                                              const fault_campaign_limits& limits) {
    double envelope = result.fan_fault ? limits.fan_fault_envelope_c : limits.envelope_c;
    double energy_cap = limits.max_energy_ratio;
    const char* cap_name = result.fan_fault ? "fan-fault" : "no-fan-fault";
    if (result.fault_class == campaign_class::lying_sensor) {
        envelope = limits.lying_sensor_envelope_c;
        cap_name = "lying-sensor";
    } else if (result.fault_class == campaign_class::drifting_sensor) {
        envelope = limits.drifting_sensor_envelope_c;
        cap_name = "drifting-sensor";
    } else if (result.fault_class == campaign_class::correlated && result.fan_fault) {
        envelope = limits.correlated_envelope_c;
        energy_cap = limits.correlated_max_energy_ratio;
        cap_name = "correlated";
    }
    std::ostringstream msg;
    if (result.faulted_max_die_c > envelope) {
        msg << "thermal envelope exceeded: max true die temp " << result.faulted_max_die_c
            << " degC > " << envelope << " degC (" << cap_name << " cap)";
        return msg.str();
    }
    if (result.energy_ratio > energy_cap) {
        msg << "energy regret exceeded: faulted/healthy ratio " << result.energy_ratio << " > "
            << energy_cap;
        return msg.str();
    }
    return std::nullopt;
}

}  // namespace ltsc::sim
