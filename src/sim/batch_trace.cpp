#include "sim/batch_trace.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ltsc::sim {

batch_trace::batch_trace(std::size_t lanes) : lanes_(lanes) {
    util::ensure(lanes_ > 0, "batch_trace: need at least one lane");
    first_.assign(lanes_, 0);
    count_.assign(lanes_, 0);
}

void batch_trace::append(std::size_t lane, double t, const trace_row& row) {
    util::ensure(lane < lanes_, "batch_trace::append: lane out of range");
    util::ensure(std::isfinite(t), "batch_trace::append: non-finite time stamp");
    for (double v : row.values) {
        util::ensure(std::isfinite(v), "batch_trace::append: non-finite value");
    }
    const std::size_t target = first_[lane] + count_[lane];
    if (count_[lane] > 0) {
        util::ensure(t >= slot(target - 1, lane)[0],
                     "batch_trace::append: non-monotonic time stamp");
    }
    if (target == groups_) {
        arena_.resize(arena_.size() + lanes_ * slot_doubles_);
        ++groups_;
        ++appended_groups_;
    }
    double* dst = slot(target, lane);
    dst[0] = t;
    for (std::size_t c = 0; c < trace_channel_count; ++c) {
        dst[1 + c] = row.values[c];
    }
    ++count_[lane];
}

void batch_trace::clear(std::size_t lane) {
    util::ensure(lane < lanes_, "batch_trace::clear: lane out of range");
    count_[lane] = 0;
    first_[lane] = groups_;
    for (std::size_t l = 0; l < lanes_; ++l) {
        if (count_[l] != 0) {
            return;
        }
    }
    // Every lane empty: restart group numbering so per-run rebinding
    // does not accumulate dead row-groups.  Capacity is kept — the next
    // run records into the same arena without re-growing it.
    arena_.clear();
    groups_ = 0;
    first_.assign(lanes_, 0);
}

std::size_t batch_trace::size(std::size_t lane) const {
    util::ensure(lane < lanes_, "batch_trace::size: lane out of range");
    return count_[lane];
}

trace_view batch_trace::lane(std::size_t lane) const {
    util::ensure(lane < lanes_, "batch_trace::lane: lane out of range");
    trace_view out;
    if (count_[lane] == 0) {
        return out;
    }
    const double* base = slot(first_[lane], lane);
    const std::size_t stride_bytes = lanes_ * slot_doubles_ * sizeof(double);
    for (std::size_t c = 0; c < trace_channel_count; ++c) {
        out.channels_[c] = util::column_view(base, base + 1 + c, count_[lane], stride_bytes);
    }
    return out;
}

const double* batch_trace::group_data(std::size_t group) const {
    util::ensure(group < groups_, "batch_trace::group_data: group out of range");
    return slot(group, 0);
}

bool batch_trace::lane_in_group(std::size_t lane, std::size_t group) const {
    util::ensure(lane < lanes_, "batch_trace::lane_in_group: lane out of range");
    util::ensure(group < groups_, "batch_trace::lane_in_group: group out of range");
    return group >= first_[lane] && group < first_[lane] + count_[lane];
}

void batch_trace::reserve_steps(std::size_t steps) {
    arena_.reserve((groups_ + steps) * lanes_ * slot_doubles_);
}

}  // namespace ltsc::sim
