// Structure-of-arrays fleet plant: N servers stepped through one
// instruction stream.
//
// A server_batch is the data-center-scale counterpart of
// server_simulator: every lane is a full plant (workload synthesis,
// power models, sensors with their own seeded RNG stream, telemetry
// harness, trace), but the thermal state lives in lane-contiguous flat
// arrays (thermal::rc_batch) and all lanes integrate through one batched
// RK4 kernel per step.  Power evaluation (active + leakage + fan) and
// controller decisions run as flat per-lane passes around the thermal
// kernel.
//
// Contract: every lane is *bitwise-identical* to an independent scalar
// server_simulator driven through the same schedule — same trace, same
// sensor noise stream, same metrics.  The batch_equivalence suite pins
// this, including mid-run fan-speed and ambient mutations.  Lanes may
// differ in configuration (ambient, seed, calibration), workload,
// controller, and fan commands; only the thermal network topology is
// shared.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/fault_monitor.hpp"
#include "power/fan_model.hpp"
#include "power/leakage_model.hpp"
#include "power/server_power_model.hpp"
#include "sim/batch_trace.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/server_config.hpp"
#include "sim/server_simulator.hpp"
#include "sim/server_state.hpp"
#include "sim/simulation_trace.hpp"
#include "telemetry/harness.hpp"
#include "thermal/rc_batch.hpp"
#include "thermal/sensors.hpp"
#include "thermal/server_thermal_model.hpp"
#include "util/rng.hpp"
#include "workload/loadgen.hpp"

namespace ltsc::sim {

/// N simulated servers in one structure-of-arrays plant.
class server_batch {
public:
    /// One lane per configuration (each validated on entry).  `tier`
    /// picks the thermal-kernel numerics (thermal/numerics.hpp): the
    /// bitwise default keeps the scalar-twin contract above; relaxed
    /// steps lanes through the vectorized kernels, which are
    /// deterministic and packing-invariant but only tolerance-equal to
    /// scalar twins.  Everything outside the thermal integration
    /// (power, sensors, RNG streams, telemetry, faults) is
    /// tier-independent.
    explicit server_batch(std::vector<server_config> configs,
                          thermal::numerics_tier tier = thermal::numerics_tier::bitwise);

    /// N identical lanes from one configuration.
    server_batch(const server_config& config, std::size_t lanes,
                 thermal::numerics_tier tier = thermal::numerics_tier::bitwise);

    // Sensor/telemetry closures capture lane addresses; the batch is
    // pinned in memory like the scalar plant.
    server_batch(const server_batch&) = delete;
    server_batch& operator=(const server_batch&) = delete;
    server_batch(server_batch&&) = delete;
    server_batch& operator=(server_batch&&) = delete;

    [[nodiscard]] std::size_t lane_count() const { return lanes_.size(); }
    [[nodiscard]] thermal::numerics_tier tier() const { return batch_.tier(); }

    // --- workload binding (per lane) ---------------------------------------
    void bind_workload(std::size_t lane, workload::loadgen generator);
    void bind_workload(std::size_t lane, const workload::utilization_profile& profile);

    void set_load_imbalance(std::size_t lane, double fraction_socket0);
    [[nodiscard]] double load_imbalance(std::size_t lane) const;
    [[nodiscard]] double measured_socket_utilization(std::size_t lane, std::size_t socket,
                                                     util::seconds_t window) const;

    // --- fault injection (per lane; see server_simulator) -------------------
    void bind_fault_schedule(std::size_t lane, fault_schedule schedule);
    void clear_fault_schedule(std::size_t lane);
    [[nodiscard]] const fault_schedule* bound_fault_schedule(std::size_t lane) const {
        const auto& f = at(lane).faults;
        return f ? &*f : nullptr;
    }
    [[nodiscard]] const fault_state& current_fault_state(std::size_t lane) const {
        return at(lane).fault;
    }

    /// The lane's residual monitor, or nullptr when the lane's
    /// config.monitor.enabled is false (see server_simulator::monitor).
    [[nodiscard]] const core::fault_monitor* monitor(std::size_t lane) const {
        const auto& m = at(lane).monitor;
        return m ? &*m : nullptr;
    }

    /// Age of the lane's last telemetry poll (+infinity before any).
    [[nodiscard]] double telemetry_age_s(std::size_t lane) const;

    // --- control surface (per lane) ----------------------------------------
    void set_fan_speed(std::size_t lane, std::size_t pair_index, util::rpm_t rpm);
    void set_all_fans(std::size_t lane, util::rpm_t rpm);
    [[nodiscard]] util::rpm_t fan_speed(std::size_t lane, std::size_t pair_index) const;
    [[nodiscard]] util::rpm_t average_fan_rpm(std::size_t lane) const;
    [[nodiscard]] std::size_t fan_change_count(std::size_t lane) const;
    void reset_fan_change_counter(std::size_t lane);

    [[nodiscard]] double measured_utilization(std::size_t lane, util::seconds_t window) const;

    // --- observation surface (per lane) ------------------------------------
    [[nodiscard]] std::vector<double> cpu_sensor_temps(std::size_t lane) const;
    [[nodiscard]] util::celsius_t max_cpu_sensor_temp(std::size_t lane) const;
    [[nodiscard]] util::watts_t system_power_reading(std::size_t lane) const;
    [[nodiscard]] const telemetry::harness& telemetry(std::size_t lane) const;

    // --- ground truth (per lane) -------------------------------------------
    [[nodiscard]] util::celsius_t true_cpu_temp(std::size_t lane, std::size_t socket) const;
    [[nodiscard]] util::celsius_t true_avg_cpu_temp(std::size_t lane) const;
    [[nodiscard]] util::celsius_t true_dimm_temp(std::size_t lane) const;
    [[nodiscard]] power::power_breakdown current_power(std::size_t lane) const;

    /// Changes one lane's room temperature mid-run (aisle gradients,
    /// setpoint drift).
    void set_ambient(std::size_t lane, util::celsius_t t);
    [[nodiscard]] util::celsius_t ambient(std::size_t lane) const;

    // --- lane state save/restore --------------------------------------------
    /// Writes one lane's complete dynamic state into `out` (overwriting
    /// it).  Pure read; interchangeable with
    /// server_simulator::snapshot_state for same-config plants.
    void snapshot_lane_state(std::size_t lane, server_state& out) const;

    /// Clones a snapshot (from a scalar plant or any same-config lane)
    /// into one lane: the rollout primitive.  The lane's workload
    /// binding is left as-is — bind first, load after, since binding
    /// resets the clock this call sets.  The lane's trace and telemetry
    /// histories clear (recording restarts at the snapshot instant) and
    /// the lane reactivates if it was inert.  Subsequent stepping is
    /// bitwise-identical to the snapshot's source plant.
    void load_lane_state(std::size_t lane, const server_state& state);

    /// The lane's bound workload, or nullptr before any bind_workload.
    [[nodiscard]] const workload::loadgen* workload(std::size_t lane) const {
        const auto& w = at(lane).workload;
        return w ? &*w : nullptr;
    }

    // --- time ---------------------------------------------------------------
    /// Advances every *active* lane by `dt` through the batched thermal
    /// kernel.  Inert lanes (see set_lane_active) are left bitwise
    /// untouched: no heat update, no integration, no time advance, no
    /// recording, no telemetry poll.  A step with every lane inert is a
    /// no-op.
    void step(util::seconds_t dt = util::seconds_t{1.0});
    void advance(util::seconds_t duration, util::seconds_t dt = util::seconds_t{1.0});
    [[nodiscard]] util::seconds_t now(std::size_t lane) const;

    /// Ragged fleets: marks one lane (in)active for subsequent steps.
    /// Lanes whose workload finishes early go inert while the rest of
    /// the fleet keeps stepping; binding a workload or forcing a cold
    /// start reactivates the lane.
    void set_lane_active(std::size_t lane, bool active);
    [[nodiscard]] bool lane_active(std::size_t lane) const;

    /// Paper cold-start protocol on one lane / every lane.
    void force_cold_start(std::size_t lane);
    void force_cold_start();

    /// Jumps one lane to the steady state of a constant utilization.
    void settle_at(std::size_t lane, double u_pct);

    [[nodiscard]] util::watts_t idle_power(std::size_t lane, util::rpm_t fan_rpm) const;

    // --- recording (per lane) -----------------------------------------------
    /// View of one lane's recording in the shared lane-major arena
    /// (invalidated by the next step/clear; materialize with
    /// `simulation_trace{batch.trace(l)}` to keep it).
    [[nodiscard]] trace_view trace(std::size_t lane) const;
    void clear_trace(std::size_t lane);

    /// The shared lane-major recording arena (row-group publication for
    /// the streaming telemetry service reads it directly).
    [[nodiscard]] const batch_trace& traces() const { return traces_; }

    [[nodiscard]] const server_config& config(std::size_t lane) const;

private:
    struct lane_state {
        explicit lane_state(const server_config& cfg)
            : config(cfg),
              rng(cfg.seed, 0xda3e39cb94b95bdbULL),
              fans(cfg.fan_pairs, cfg.fan, cfg.default_fan_rpm),
              leakage(cfg.leakage),
              active(cfg.active_coeff_w_per_pct, cfg.split, cfg.cpu_heat_shape_exponent),
              telemetry(util::seconds_t{cfg.telemetry_period_s}) {}

        server_config config;
        util::pcg32 rng;
        power::fan_bank fans;
        power::leakage_model leakage;
        power::active_model active;
        thermal::server_sensor_suite sensors;
        telemetry::harness telemetry;
        std::optional<workload::loadgen> workload;

        double now_s = 0.0;
        double imbalance = 0.5;
        std::size_t fan_changes = 0;
        std::vector<double> last_cpu_sensor_reads;

        std::optional<fault_schedule> faults;
        fault_state fault;  ///< Always sized, so snapshots are always valid.
        std::optional<core::fault_monitor> monitor;  ///< Present iff config.monitor.enabled.

        // Mirror of server_thermal_model's per-plant scalar state; the
        // node/edge state itself lives in the shared rc_batch lanes.
        std::vector<double> zone_airflow_cfm;
        double cpu_heat_w[2] = {0.0, 0.0};
        double dimm_heat_w = 0.0;
        double sink_g_w_per_k[2] = {0.0, 0.0};
        double stream_capacity_w_per_k = 0.0;
    };

    void init_lane(std::size_t lane, const server_config& config);
    void register_telemetry(std::size_t lane);
    void apply_due_faults(std::size_t lane);
    void apply_fault_event(std::size_t lane, const fault_event& event);
    void clear_fault_effects(std::size_t lane);
    [[nodiscard]] double corrupt_sensor_reading(std::size_t lane, std::size_t sensor,
                                                double raw) const;
    void apply_airflow(std::size_t lane);
    void update_conductances(std::size_t lane);
    void update_preheat(std::size_t lane);
    void apply_heat(std::size_t lane, double u_inst);
    void settle_to_steady_state(std::size_t lane);
    void record(std::size_t lane, double u_target, double u_inst);
    [[nodiscard]] power::power_breakdown breakdown_at(std::size_t lane, double u_inst) const;
    [[nodiscard]] double total_airflow_cfm(std::size_t lane) const;
    [[nodiscard]] double effective_airflow_cfm(std::size_t lane, std::size_t component_zone) const;
    [[nodiscard]] double die_temp(std::size_t lane, std::size_t socket) const;

    [[nodiscard]] lane_state& at(std::size_t lane);
    [[nodiscard]] const lane_state& at(std::size_t lane) const;

    // Topology prototype (node/edge handles) shared by every lane.
    thermal::server_thermal_model proto_;
    thermal::rc_batch batch_;
    std::vector<std::unique_ptr<lane_state>> lanes_;

    // Lane-major columnar recording: all lanes of a step append into one
    // contiguous arena row-group.
    batch_trace traces_;

    // Per-lane active flags (ragged fleets); inert_count_ keeps the
    // all-active hot path on the unmasked kernel.
    std::vector<unsigned char> active_;
    std::size_t inert_count_ = 0;

    // Per-step scratch so stepping does not allocate.
    std::vector<double> u_target_scratch_;
    std::vector<double> u_inst_scratch_;
};

}  // namespace ltsc::sim
