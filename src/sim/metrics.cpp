#include "sim/metrics.hpp"

#include "sim/server_batch.hpp"
#include "util/error.hpp"

namespace ltsc::sim {

run_metrics compute_metrics(const trace_view& tr, std::size_t fan_changes,
                            std::string test_name, std::string controller_name) {
    util::ensure(tr.size() >= 2, "compute_metrics: trace too short");
    run_metrics m;
    m.test_name = std::move(test_name);
    m.controller_name = std::move(controller_name);
    m.duration_s = tr.total_power().duration();
    m.energy_kwh = util::to_kwh(util::joules_t{tr.total_power().integrate()});
    m.peak_power_w = tr.total_power().max();
    m.max_temp_c = tr.max_sensor_temp().max();
    m.fan_changes = fan_changes;
    m.avg_rpm = tr.avg_fan_rpm().mean();
    m.avg_cpu_temp_c = tr.avg_cpu_temp().mean();
    return m;
}

run_metrics compute_metrics(const server_simulator& sim, std::string test_name,
                            std::string controller_name) {
    return compute_metrics(sim.trace(), sim.fan_change_count(), std::move(test_name),
                           std::move(controller_name));
}

run_metrics compute_metrics(const server_batch& batch, std::size_t lane, std::string test_name,
                            std::string controller_name) {
    return compute_metrics(batch.trace(lane), batch.fan_change_count(lane), std::move(test_name),
                           std::move(controller_name));
}

double net_savings(const run_metrics& candidate, const run_metrics& baseline,
                   util::watts_t idle_power) {
    util::ensure(idle_power.value() >= 0.0, "net_savings: negative idle power");
    const double idle_kwh =
        util::to_kwh(idle_power * util::seconds_t{baseline.duration_s});
    const double base_net = baseline.energy_kwh - idle_kwh;
    util::ensure(base_net > 0.0, "net_savings: baseline net energy not positive");
    const double cand_net = candidate.energy_kwh - idle_kwh;
    return (base_net - cand_net) / base_net;
}

}  // namespace ltsc::sim
