#include "sim/metrics.hpp"

#include <algorithm>
#include <vector>

#include "sim/server_batch.hpp"
#include "util/error.hpp"

namespace ltsc::sim {

run_metrics compute_metrics(const trace_view& tr, std::size_t fan_changes,
                            std::string test_name, std::string controller_name) {
    util::ensure(tr.size() >= 2, "compute_metrics: trace too short");
    run_metrics m;
    m.test_name = std::move(test_name);
    m.controller_name = std::move(controller_name);
    m.duration_s = tr.total_power().duration();
    m.energy_kwh = util::to_kwh(util::joules_t{tr.total_power().integrate()});
    m.peak_power_w = tr.total_power().max();
    m.max_temp_c = tr.max_sensor_temp().max();
    m.fan_changes = fan_changes;
    m.avg_rpm = tr.avg_fan_rpm().mean();
    m.avg_cpu_temp_c = tr.avg_cpu_temp().mean();
    return m;
}

run_metrics compute_metrics(const server_simulator& sim, std::string test_name,
                            std::string controller_name) {
    return compute_metrics(sim.trace(), sim.fan_change_count(), std::move(test_name),
                           std::move(controller_name));
}

run_metrics compute_metrics(const server_batch& batch, std::size_t lane, std::string test_name,
                            std::string controller_name) {
    return compute_metrics(batch.trace(lane), batch.fan_change_count(lane), std::move(test_name),
                           std::move(controller_name));
}

detection_summary compute_detection_summary(const trace_view& tr,
                                            const fault_schedule* schedule) {
    detection_summary out;
    const util::column_view sensor_health = tr.monitor_sensor_health();
    const util::column_view fan_health = tr.monitor_fan_health();
    out.samples = tr.size();
    for (std::size_t i = 0; i < tr.size(); ++i) {
        const bool sensor_alarm = sensor_health.v(i) >= 1.0;
        const bool fan_alarm = fan_health.v(i) >= 1.0;
        if (sensor_alarm) {
            ++out.sensor_alarm_steps;
            if (out.first_sensor_alarm_s < 0.0) {
                out.first_sensor_alarm_s = sensor_health.t(i);
            }
        }
        if (fan_alarm) {
            ++out.fan_alarm_steps;
            if (out.first_fan_alarm_s < 0.0) {
                out.first_fan_alarm_s = fan_health.t(i);
            }
        }
        if (sensor_alarm || fan_alarm) {
            ++out.alarm_steps;
        }
    }
    if (schedule == nullptr || schedule->empty() || tr.empty()) {
        return out;
    }

    // Attribute alarms to onsets: scan the matching health channel from
    // the onset to the component's recovery (or the trace end) for the
    // first suspect-or-worse verdict.  The channels are worst-over-
    // components, so overlapping faults of one class share alarms — fine
    // for a summary whose job is latency percentiles, not diagnosis.
    const std::vector<fault_event>& events = schedule->events();
    double total_latency = 0.0;
    double total_drift_latency = 0.0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const fault_event& e = events[i];
        const bool fan_onset = e.kind == fault_kind::fan_failure ||
                               e.kind == fault_kind::fan_stuck_pwm ||
                               e.kind == fault_kind::fan_tach_stuck;
        const bool sensor_onset = e.kind == fault_kind::sensor_stuck ||
                                  e.kind == fault_kind::sensor_bias ||
                                  e.kind == fault_kind::sensor_dropout ||
                                  e.kind == fault_kind::sensor_drift ||
                                  e.kind == fault_kind::sensor_intermittent;
        if (!fan_onset && !sensor_onset) {
            continue;
        }
        double until = sensor_health.t(tr.size() - 1);
        if (e.kind == fault_kind::sensor_dropout || e.kind == fault_kind::sensor_intermittent) {
            until = std::min(until, e.t_s + e.duration_s);
        } else {
            const fault_kind recover_kind =
                fan_onset ? fault_kind::fan_recover : fault_kind::sensor_recover;
            for (std::size_t j = i + 1; j < events.size(); ++j) {
                if (events[j].kind == recover_kind && events[j].target == e.target) {
                    until = std::min(until, events[j].t_s);
                    break;
                }
            }
        }
        ++out.fault_onsets;
        const bool drift = e.kind == fault_kind::sensor_drift;
        if (drift) {
            ++out.drift_onsets;
        }
        const util::column_view& channel = fan_onset ? fan_health : sensor_health;
        for (std::size_t k = 0; k < tr.size(); ++k) {
            const double t = channel.t(k);
            if (t < e.t_s || t > until + 1e-9) {
                continue;
            }
            if (channel.v(k) >= 1.0) {
                const double latency = t - e.t_s;
                ++out.detected;
                total_latency += latency;
                out.max_time_to_detect_s = std::max(out.max_time_to_detect_s, latency);
                if (drift) {
                    ++out.drift_detected;
                    total_drift_latency += latency;
                    out.max_drift_time_to_detect_s =
                        std::max(out.max_drift_time_to_detect_s, latency);
                }
                break;
            }
        }
    }
    if (out.detected > 0) {
        out.mean_time_to_detect_s = total_latency / static_cast<double>(out.detected);
    }
    if (out.drift_detected > 0) {
        out.mean_drift_time_to_detect_s =
            total_drift_latency / static_cast<double>(out.drift_detected);
    }
    return out;
}

double net_savings(const run_metrics& candidate, const run_metrics& baseline,
                   util::watts_t idle_power) {
    util::ensure(idle_power.value() >= 0.0, "net_savings: negative idle power");
    const double idle_kwh =
        util::to_kwh(idle_power * util::seconds_t{baseline.duration_s});
    const double base_net = baseline.energy_kwh - idle_kwh;
    util::ensure(base_net > 0.0, "net_savings: baseline net energy not positive");
    const double cand_net = candidate.energy_kwh - idle_kwh;
    return (base_net - cand_net) / base_net;
}

}  // namespace ltsc::sim
