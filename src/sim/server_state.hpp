// Complete dynamic state of one simulated server.
//
// A server_state is everything a plant needs to continue stepping
// bitwise-identically from a point in time: simulation clock, workload
// split, fan commands, the sensor RNG stream, the thermal network state,
// the last sensor readings the controllers saw, and the telemetry poll
// clock.  It deliberately excludes three things:
//  * the configuration — states only move between plants built from the
//    same server_config (the snapshot APIs validate the shapes);
//  * the workload binding — the profile is immutable during a run, so
//    receivers bind it once (see rollout_engine) instead of copying it
//    into every snapshot;
//  * the recordings (trace, telemetry histories) — those describe the
//    past, not the dynamics; a restored plant records a fresh trace
//    from the snapshot instant.
//
// Snapshots are the substrate of the receding-horizon rollout family:
// server_simulator::snapshot_state / server_batch::snapshot_lane_state
// save a live plant, server_batch::load_lane_state clones it across the
// candidate lanes of a rollout batch, and
// server_simulator::restore_state rewinds a scalar plant (round-trip
// pinned bitwise by the snapshot_roundtrip suite).  A server_state is
// reusable: saving overwrites in place, so a per-epoch scratch snapshot
// amortizes to zero allocations.
#pragma once

#include <cstddef>
#include <vector>

#include "core/fault_monitor.hpp"
#include "sim/fault_schedule.hpp"
#include "thermal/rc_network.hpp"
#include "util/rng.hpp"

namespace ltsc::sim {

/// Everything needed to resume a server bitwise from an instant.
struct server_state {
    double now_s = 0.0;              ///< Simulation clock [s].
    double imbalance = 0.5;          ///< Socket-0 share of the CPU load.
    std::size_t fan_changes = 0;     ///< Counted fan-speed changes so far.
    std::vector<double> fan_rpm;     ///< Commanded speed per fan pair.
    util::pcg32 rng;                 ///< Sensor-noise stream, mid-sequence.
    thermal::rc_state thermal;       ///< Node temps/powers, edge g, ambient.
    std::vector<double> sensor_reads;  ///< Last CPU sensor readings [degC].
    double telemetry_last_poll_s = -1.0;  ///< Telemetry poll clock.
    bool telemetry_polled = false;        ///< Whether a poll ever happened.
    /// Live fault effects + schedule cursor, so a degraded plant clones
    /// into rollout lanes degraded (the schedule itself is bound like
    /// the workload, not copied per snapshot).
    fault_state fault;
    /// Residual-monitor state (twin thermal state, latched commands,
    /// hysteresis counters); empty when the plant's monitor is disabled.
    /// Mid-hysteresis verdicts restore bitwise — a sensor snapshotted
    /// "suspect" resumes its escalation exactly where it stopped.
    core::fault_monitor_state monitor;
};

}  // namespace ltsc::sim
