#include "sim/server_batch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "thermal/airflow.hpp"
#include "util/error.hpp"

namespace ltsc::sim {

namespace {

const server_config& front_checked(const std::vector<server_config>& configs) {
    util::ensure(!configs.empty(), "server_batch: need at least one lane");
    return configs.front();
}

}  // namespace

server_batch::server_batch(std::vector<server_config> configs, thermal::numerics_tier tier)
    : proto_(front_checked(configs).thermal),
      batch_(proto_.network(), configs.size(), thermal::integration_scheme::rk4, tier),
      traces_(configs.size()),
      active_(configs.size(), 1) {
    lanes_.reserve(configs.size());
    for (std::size_t l = 0; l < configs.size(); ++l) {
        init_lane(l, validated(configs[l]));
    }
}

server_batch::server_batch(const server_config& config, std::size_t lanes,
                           thermal::numerics_tier tier)
    : server_batch(std::vector<server_config>(lanes, config), tier) {}

server_batch::lane_state& server_batch::at(std::size_t lane) {
    util::ensure(lane < lanes_.size(), "server_batch: lane out of range");
    return *lanes_[lane];
}

const server_batch::lane_state& server_batch::at(std::size_t lane) const {
    util::ensure(lane < lanes_.size(), "server_batch: lane out of range");
    return *lanes_[lane];
}

double server_batch::die_temp(std::size_t lane, std::size_t socket) const {
    return batch_.temperature(proto_.die_node(socket), lane).value();
}

void server_batch::init_lane(std::size_t lane, const server_config& config) {
    const thermal::server_thermal_config& th = config.thermal;
    // Same invariants server_thermal_model enforces for the scalar plant.
    util::ensure(th.fan_zones >= 1, "server_batch: need at least one fan zone");
    util::ensure(th.r_junction_sink > 0.0, "server_batch: bad junction resistance");
    util::ensure(th.zone_mixing >= 0.0 && th.zone_mixing <= 1.0,
                 "server_batch: zone_mixing out of [0, 1]");
    util::ensure(th.ref_airflow_cfm > 0.0, "server_batch: bad reference airflow");

    lanes_.push_back(std::make_unique<lane_state>(config));
    lane_state& ln = *lanes_[lane];

    // Thermal lane state, mirroring the server_thermal_model constructor:
    // nodes start at ambient, convective edges at their reference values.
    batch_.set_ambient(lane, util::celsius_t{th.ambient_c});
    for (std::size_t s = 0; s < thermal::server_thermal_model::socket_count(); ++s) {
        batch_.set_heat_capacity(proto_.die_node(s), lane, th.c_die);
        batch_.set_heat_capacity(proto_.sink_node(s), lane, th.c_sink);
        batch_.set_temperature(proto_.die_node(s), lane, util::celsius_t{th.ambient_c});
        batch_.set_temperature(proto_.sink_node(s), lane, util::celsius_t{th.ambient_c});
        batch_.set_conductance(proto_.die_sink_edge(s), lane, 1.0 / th.r_junction_sink);
        batch_.set_conductance(proto_.sink_ambient_edge(s), lane, th.g_sink_ref);
    }
    batch_.set_heat_capacity(proto_.dimm_node(), lane, th.c_dimm);
    batch_.set_temperature(proto_.dimm_node(), lane, util::celsius_t{th.ambient_c});
    batch_.set_conductance(proto_.dimm_ambient_edge(), lane, th.g_dimm_ref);

    ln.zone_airflow_cfm.assign(th.fan_zones, th.ref_airflow_cfm / th.fan_zones);
    update_conductances(lane);
    update_preheat(lane);

    // Sensor complement and telemetry, mirroring the server_simulator
    // constructor (channel registration order fixes the RNG draw order).
    ln.sensors = thermal::make_server_sensors(
        [this, lane](std::size_t s) { return batch_.temperature(proto_.die_node(s), lane); },
        [this, lane] { return batch_.temperature(proto_.dimm_node(), lane); }, config.dimm_count,
        ln.rng, config.sensor_noise_sigma, config.sensor_quantum);
    ln.last_cpu_sensor_reads.assign(ln.sensors.cpu.size(), config.thermal.ambient_c);
    ln.fault.reset(ln.fans.pair_count(), ln.sensors.cpu.size());
    register_telemetry(lane);
    apply_airflow(lane);
    apply_heat(lane, 0.0);
    if (config.monitor.enabled) {
        ln.monitor.emplace(config.monitor, monitor_plant_for(config));
        ln.monitor->reset(ln.fans, batch_.ambient(lane));
    }
}

void server_batch::register_telemetry(std::size_t lane) {
    lane_state& ln = *lanes_[lane];
    for (std::size_t i = 0; i < ln.sensors.cpu.size(); ++i) {
        ln.telemetry.add_channel(ln.sensors.cpu[i].name(), "degC", [this, lane, i] {
            // Mirror of the scalar channel: true read first (keeps the
            // noise stream aligned), corruption between sensor and value.
            const double raw = lanes_[lane]->sensors.cpu[i].read().value();
            const double v = corrupt_sensor_reading(lane, i, raw);
            lanes_[lane]->last_cpu_sensor_reads[i] = v;
            return v;
        });
    }
    for (std::size_t i = 0; i < ln.sensors.dimm.size(); ++i) {
        ln.telemetry.add_channel(ln.sensors.dimm[i].name(), "degC",
                                 [this, lane, i] {
                                     return lanes_[lane]->sensors.dimm[i].read().value();
                                 },
                                 /*ring_capacity=*/512, /*record_history=*/false);
    }
    for (std::size_t s = 0; s < thermal::server_thermal_model::socket_count(); ++s) {
        ln.telemetry.add_channel("cpu" + std::to_string(s) + "_voltage", "V",
                                 [] { return 1.0; }, 16, false);
        ln.telemetry.add_channel("cpu" + std::to_string(s) + "_current", "A", [this, lane, s] {
            const lane_state& l = *lanes_[lane];
            const double u =
                l.workload ? l.workload->instantaneous_utilization(now(lane)) : 0.0;
            const double share = s == 0 ? l.imbalance : 1.0 - l.imbalance;
            const double rail_w =
                l.config.cpu_idle_each_w + l.active.cpu(u).value() * share +
                l.leakage.share_at(util::celsius_t{die_temp(lane, s)}, 2).value();
            return rail_w / 1.0;
        });
    }
    ln.telemetry.add_channel("system_power", "W", [this, lane] {
        const lane_state& l = *lanes_[lane];
        const double u = l.workload ? l.workload->instantaneous_utilization(now(lane)) : 0.0;
        return breakdown_at(lane, u).total().value();
    });
    ln.telemetry.add_channel("fan_power", "W",
                             [this, lane] { return lanes_[lane]->fans.total_power().value(); });
}

void server_batch::bind_workload(std::size_t lane, workload::loadgen generator) {
    lane_state& ln = at(lane);
    ln.workload = std::move(generator);
    ln.now_s = 0.0;
    clear_trace(lane);
    set_lane_active(lane, true);
}

void server_batch::bind_workload(std::size_t lane, const workload::utilization_profile& profile) {
    bind_workload(lane, workload::loadgen(profile));
}

void server_batch::set_load_imbalance(std::size_t lane, double fraction_socket0) {
    util::ensure(fraction_socket0 >= 0.0 && fraction_socket0 <= 1.0,
                 "server_batch::set_load_imbalance: fraction out of [0, 1]");
    at(lane).imbalance = fraction_socket0;
}

double server_batch::load_imbalance(std::size_t lane) const { return at(lane).imbalance; }

double server_batch::measured_socket_utilization(std::size_t lane, std::size_t socket,
                                                 util::seconds_t window) const {
    util::ensure(socket < thermal::server_thermal_model::socket_count(),
                 "server_batch::measured_socket_utilization: bad socket");
    const lane_state& ln = at(lane);
    const double share = socket == 0 ? ln.imbalance : 1.0 - ln.imbalance;
    return std::min(100.0, measured_utilization(lane, window) * 2.0 * share);
}

void server_batch::set_fan_speed(std::size_t lane, std::size_t pair_index, util::rpm_t rpm) {
    lane_state& ln = at(lane);
    if (ln.monitor) {
        // Capture the command at the actuation boundary, before any
        // degraded pair latches it (see server_simulator::set_fan_speed).
        ln.monitor->observe_fan_command(pair_index, ln.fans.pair().clamp(rpm));
    }
    if (ln.fault.fan_mode[pair_index] != fault_state::fan_ok) {
        ln.fault.fan_commanded_rpm[pair_index] = ln.fans.pair().clamp(rpm).value();
        if (ln.fault.fan_mode[pair_index] == fault_state::fan_tach) {
            ln.fans.set_speed(pair_index, rpm);  // lying tach tracks the command
        }
        return;
    }
    const util::rpm_t before = ln.fans.speed(pair_index);
    ln.fans.set_speed(pair_index, rpm);
    if (ln.fans.speed(pair_index).value() != before.value()) {
        ++ln.fan_changes;
        apply_airflow(lane);
    }
}

void server_batch::set_all_fans(std::size_t lane, util::rpm_t rpm) {
    lane_state& ln = at(lane);
    if (ln.monitor) {
        ln.monitor->observe_all_fan_commands(ln.fans.pair().clamp(rpm));
    }
    if (!ln.fault.any_fan_fault()) {
        const double target = ln.fans.pair().clamp(rpm).value();
        bool changed = false;
        for (std::size_t i = 0; i < ln.fans.pair_count() && !changed; ++i) {
            changed = ln.fans.speed(i).value() != target;
        }
        if (!changed) {
            return;
        }
        ln.fans.set_all(rpm);
        ++ln.fan_changes;
        apply_airflow(lane);
        return;
    }
    const double target = ln.fans.pair().clamp(rpm).value();
    bool changed = false;
    for (std::size_t i = 0; i < ln.fans.pair_count(); ++i) {
        if (ln.fault.fan_mode[i] != fault_state::fan_ok) {
            ln.fault.fan_commanded_rpm[i] = target;
            if (ln.fault.fan_mode[i] == fault_state::fan_tach) {
                ln.fans.set_speed(i, rpm);  // lying tach tracks the command
            }
            continue;
        }
        if (ln.fans.speed(i).value() != target) {
            ln.fans.set_speed(i, rpm);
            changed = true;
        }
    }
    if (changed) {
        ++ln.fan_changes;
        apply_airflow(lane);
    }
}

util::rpm_t server_batch::fan_speed(std::size_t lane, std::size_t pair_index) const {
    return at(lane).fans.effective_speed(pair_index);
}

util::rpm_t server_batch::average_fan_rpm(std::size_t lane) const {
    return at(lane).fans.average_speed();
}

std::size_t server_batch::fan_change_count(std::size_t lane) const {
    return at(lane).fan_changes;
}

void server_batch::reset_fan_change_counter(std::size_t lane) { at(lane).fan_changes = 0; }

double server_batch::measured_utilization(std::size_t lane, util::seconds_t window) const {
    const lane_state& ln = at(lane);
    if (!ln.workload) {
        return 0.0;
    }
    return ln.workload->measured_utilization(now(lane), window);
}

std::vector<double> server_batch::cpu_sensor_temps(std::size_t lane) const {
    return at(lane).last_cpu_sensor_reads;
}

util::celsius_t server_batch::max_cpu_sensor_temp(std::size_t lane) const {
    const lane_state& ln = at(lane);
    util::ensure(!ln.last_cpu_sensor_reads.empty(), "server_batch: no CPU sensors");
    return util::celsius_t{*std::max_element(ln.last_cpu_sensor_reads.begin(),
                                             ln.last_cpu_sensor_reads.end())};
}

util::watts_t server_batch::system_power_reading(std::size_t lane) const {
    const lane_state& ln = at(lane);
    const double u = ln.workload ? ln.workload->instantaneous_utilization(now(lane)) : 0.0;
    return breakdown_at(lane, u).total();
}

const telemetry::harness& server_batch::telemetry(std::size_t lane) const {
    return at(lane).telemetry;
}

util::celsius_t server_batch::true_cpu_temp(std::size_t lane, std::size_t socket) const {
    util::ensure(socket < thermal::server_thermal_model::socket_count(),
                 "server_batch::true_cpu_temp: bad socket");
    return batch_.temperature(proto_.die_node(socket), lane);
}

util::celsius_t server_batch::true_avg_cpu_temp(std::size_t lane) const {
    return util::celsius_t{0.5 * (die_temp(lane, 0) + die_temp(lane, 1))};
}

util::celsius_t server_batch::true_dimm_temp(std::size_t lane) const {
    return batch_.temperature(proto_.dimm_node(), lane);
}

power::power_breakdown server_batch::current_power(std::size_t lane) const {
    const lane_state& ln = at(lane);
    const double u = ln.workload ? ln.workload->instantaneous_utilization(now(lane)) : 0.0;
    return breakdown_at(lane, u);
}

void server_batch::set_ambient(std::size_t lane, util::celsius_t t) {
    static_cast<void>(at(lane));
    batch_.set_ambient(lane, t);
}

util::celsius_t server_batch::ambient(std::size_t lane) const {
    static_cast<void>(at(lane));
    return batch_.ambient(lane);
}

void server_batch::snapshot_lane_state(std::size_t lane, server_state& out) const {
    const lane_state& ln = at(lane);
    out.now_s = ln.now_s;
    out.imbalance = ln.imbalance;
    out.fan_changes = ln.fan_changes;
    out.fan_rpm.resize(ln.fans.pair_count());
    for (std::size_t i = 0; i < ln.fans.pair_count(); ++i) {
        out.fan_rpm[i] = ln.fans.speed(i).value();
    }
    out.rng = ln.rng;
    batch_.save_lane_state(lane, out.thermal);
    out.sensor_reads = ln.last_cpu_sensor_reads;
    out.telemetry_last_poll_s = ln.telemetry.last_poll_time();
    out.telemetry_polled = ln.telemetry.ever_polled();
    out.fault = ln.fault;
    if (ln.monitor) {
        ln.monitor->save_state(out.monitor);
    } else {
        out.monitor = core::fault_monitor_state{};
    }
}

void server_batch::load_lane_state(std::size_t lane, const server_state& state) {
    lane_state& ln = at(lane);
    util::ensure(state.fan_rpm.size() == ln.fans.pair_count(),
                 "server_batch::load_lane_state: fan pair count mismatch");
    util::ensure(state.sensor_reads.size() == ln.last_cpu_sensor_reads.size(),
                 "server_batch::load_lane_state: sensor count mismatch");
    util::ensure(state.fault.sized_for(ln.fans.pair_count(), ln.sensors.cpu.size()),
                 "server_batch::load_lane_state: fault state shape mismatch");
    ln.now_s = state.now_s;
    ln.imbalance = state.imbalance;
    ln.fan_changes = state.fan_changes;
    ln.rng = state.rng;
    ln.fault = state.fault;
    for (std::size_t i = 0; i < ln.fans.pair_count(); ++i) {
        ln.fans.set_speed(i, util::rpm_t{state.fan_rpm[i]});
        ln.fans.set_failed(i, ln.fault.fan_mode[i] == fault_state::fan_failed);
        ln.fans.set_tach_stuck(i, ln.fault.fan_mode[i] == fault_state::fan_tach);
    }
    // Recompute airflow-derived conductances/stream capacity from the
    // restored speeds (bitwise-identical to the snapshot's), then reload
    // the thermal lane on top.
    apply_airflow(lane);
    batch_.load_lane_state(lane, state.thermal);
    ln.last_cpu_sensor_reads = state.sensor_reads;
    clear_trace(lane);
    ln.telemetry.reset();
    ln.telemetry.restore_poll_clock(state.telemetry_last_poll_s, state.telemetry_polled);
    if (ln.monitor) {
        ln.monitor->restore_state(state.monitor, ln.fans);
    }
    set_lane_active(lane, true);
}

power::power_breakdown server_batch::breakdown_at(std::size_t lane, double u_inst) const {
    const lane_state& ln = *lanes_[lane];
    power::power_breakdown out;
    out.base = util::watts_t{ln.config.base_power_w};
    out.active = ln.active.total(u_inst);
    util::watts_t leak{0.0};
    for (std::size_t s = 0; s < thermal::server_thermal_model::socket_count(); ++s) {
        leak += ln.leakage.share_at(util::celsius_t{die_temp(lane, s)}, 2);
    }
    out.leakage = leak;
    out.fan = ln.fans.total_power();
    return out;
}

double server_batch::total_airflow_cfm(std::size_t lane) const {
    double acc = 0.0;
    for (double q : lanes_[lane]->zone_airflow_cfm) {
        acc += q;
    }
    return acc;
}

double server_batch::effective_airflow_cfm(std::size_t lane, std::size_t component_zone) const {
    const lane_state& ln = *lanes_[lane];
    const double total = total_airflow_cfm(lane);
    const double zones = static_cast<double>(ln.zone_airflow_cfm.size());
    if (component_zone >= ln.zone_airflow_cfm.size()) {
        return total;
    }
    const double own = ln.zone_airflow_cfm[component_zone] * zones;
    return (1.0 - ln.config.thermal.zone_mixing) * own + ln.config.thermal.zone_mixing * total;
}

void server_batch::apply_airflow(std::size_t lane) {
    lane_state& ln = *lanes_[lane];
    util::ensure(ln.fans.pair_count() == ln.zone_airflow_cfm.size(),
                 "server_batch::apply_airflow: zone count mismatch");
    for (std::size_t i = 0; i < ln.fans.pair_count(); ++i) {
        const double q = ln.fans.pair_airflow(i).value();
        util::ensure(q >= 0.0, "server_batch::apply_airflow: negative airflow");
        ln.zone_airflow_cfm[i] = q;
    }
    util::ensure(total_airflow_cfm(lane) > 0.0,
                 "server_batch::apply_airflow: zero total airflow");
    update_conductances(lane);
}

void server_batch::update_conductances(std::size_t lane) {
    lane_state& ln = *lanes_[lane];
    const thermal::server_thermal_config& th = ln.config.thermal;
    const double q_ref = th.ref_airflow_cfm;
    for (std::size_t s = 0; s < thermal::server_thermal_model::socket_count(); ++s) {
        const double q = effective_airflow_cfm(lane, s);
        const double scale = std::pow(q / q_ref, th.airflow_exponent);
        ln.sink_g_w_per_k[s] = th.g_sink_ref * scale;
        batch_.set_conductance(proto_.sink_ambient_edge(s), lane, ln.sink_g_w_per_k[s]);
    }
    const double q_dimm = total_airflow_cfm(lane);
    const double scale = std::pow(q_dimm / q_ref, th.airflow_exponent);
    batch_.set_conductance(proto_.dimm_ambient_edge(), lane, th.g_dimm_ref * scale);
    ln.stream_capacity_w_per_k =
        q_dimm > 0.0 ? thermal::stream_capacity_w_per_k(util::cfm_t{q_dimm}) : 0.0;
}

void server_batch::update_preheat(std::size_t lane) {
    lane_state& ln = *lanes_[lane];
    const double q_total = total_airflow_cfm(lane);
    double preheat_c = 0.0;
    if (q_total > 0.0) {
        const double dimm_to_air =
            batch_.diagonal(proto_.dimm_node(), lane) *
            (batch_.temperature(proto_.dimm_node(), lane).value() -
             batch_.ambient(lane).value());
        const double picked_up = std::max(0.0, dimm_to_air);
        preheat_c = picked_up / ln.stream_capacity_w_per_k;
    }
    for (std::size_t s = 0; s < thermal::server_thermal_model::socket_count(); ++s) {
        batch_.set_power(proto_.sink_node(s), lane,
                         util::watts_t{ln.sink_g_w_per_k[s] * preheat_c});
        batch_.set_power(proto_.die_node(s), lane, util::watts_t{ln.cpu_heat_w[s]});
    }
    batch_.set_power(proto_.dimm_node(), lane, util::watts_t{ln.dimm_heat_w});
}

void server_batch::apply_heat(std::size_t lane, double u_inst) {
    lane_state& ln = *lanes_[lane];
    const double shares[2] = {ln.imbalance, 1.0 - ln.imbalance};
    for (std::size_t s = 0; s < thermal::server_thermal_model::socket_count(); ++s) {
        const util::watts_t die_heat =
            util::watts_t{ln.config.cpu_idle_each_w} + ln.active.cpu(u_inst) * shares[s] +
            ln.leakage.share_at(util::celsius_t{die_temp(lane, s)}, 2);
        util::ensure(die_heat.value() >= 0.0, "server_batch::apply_heat: negative heat");
        ln.cpu_heat_w[s] = die_heat.value();
    }
    const util::watts_t dimm_heat =
        util::watts_t{ln.config.dimm_idle_total_w} + ln.active.memory(u_inst);
    util::ensure(dimm_heat.value() >= 0.0, "server_batch::apply_heat: negative heat");
    ln.dimm_heat_w = dimm_heat.value();
    // "Other" heat only influences the exhaust-air query, which the
    // batch does not expose; validate it like the scalar plant does but
    // carry no state for it.
    util::ensure(ln.active.other(u_inst).value() >= 0.0,
                 "server_batch::apply_heat: negative heat");
}

void server_batch::step(util::seconds_t dt) {
    util::ensure(dt.value() > 0.0, "server_batch::step: non-positive dt");
    const std::size_t n = lanes_.size();
    if (inert_count_ == n) {
        return;
    }
    u_target_scratch_.resize(n);
    u_inst_scratch_.resize(n);
    for (std::size_t l = 0; l < n; ++l) {
        if (active_[l] == 0) {
            continue;
        }
        lane_state& ln = *lanes_[l];
        if (ln.faults) {
            apply_due_faults(l);
        }
        u_target_scratch_[l] =
            ln.workload ? ln.workload->target_utilization(now(l)) : 0.0;
        u_inst_scratch_[l] =
            ln.workload ? ln.workload->instantaneous_utilization(now(l)) : 0.0;
        apply_heat(l, u_inst_scratch_[l]);
        update_preheat(l);
    }
    batch_.step(dt, inert_count_ == 0 ? nullptr : active_.data());
    for (std::size_t l = 0; l < n; ++l) {
        if (active_[l] == 0) {
            continue;
        }
        lane_state& ln = *lanes_[l];
        ln.now_s += dt.value();
        if (ln.monitor) {
            ln.monitor->step(dt, u_inst_scratch_[l], ln.imbalance, batch_.ambient(l), ln.fans);
        }
        record(l, u_target_scratch_[l], u_inst_scratch_[l]);
        ln.telemetry.set_poll_suppressed(ln.fault.telemetry_lost(ln.now_s));
        if (ln.telemetry.poll_due(now(l)) && ln.monitor) {
            ln.monitor->on_poll(ln.last_cpu_sensor_reads);
        }
    }
}

void server_batch::set_lane_active(std::size_t lane, bool active) {
    static_cast<void>(at(lane));
    const unsigned char flag = active ? 1 : 0;
    if (active_[lane] == flag) {
        return;
    }
    active_[lane] = flag;
    if (active) {
        --inert_count_;
    } else {
        ++inert_count_;
    }
}

bool server_batch::lane_active(std::size_t lane) const {
    static_cast<void>(at(lane));
    return active_[lane] != 0;
}

void server_batch::advance(util::seconds_t duration, util::seconds_t dt) {
    util::ensure(duration.value() >= 0.0, "server_batch::advance: negative duration");
    double remaining = duration.value();
    while (remaining > 1e-9) {
        const double h = std::min(remaining, dt.value());
        step(util::seconds_t{h});
        remaining -= h;
    }
}

void server_batch::settle_to_steady_state(std::size_t lane) {
    for (int i = 0; i < 8; ++i) {
        update_preheat(lane);
        batch_.settle_lane(lane);
    }
}

void server_batch::force_cold_start(std::size_t lane) {
    lane_state& ln = at(lane);
    clear_fault_effects(lane);
    ln.fans.set_all(ln.config.cold_start_fan_rpm);
    apply_airflow(lane);
    for (int i = 0; i < 12; ++i) {
        apply_heat(lane, 0.0);
        settle_to_steady_state(lane);
    }
    if (ln.monitor) {
        // The twin restarts with the plant (see server_simulator).
        ln.monitor->reset(ln.fans, batch_.ambient(lane));
        ln.monitor->settle(0.0, ln.imbalance, batch_.ambient(lane), ln.fans);
    }
    ln.now_s = 0.0;
    ln.fan_changes = 0;
    clear_trace(lane);
    set_lane_active(lane, true);
    ln.telemetry.reset();
    ln.telemetry.poll_now(now(lane));
    if (ln.monitor) {
        ln.monitor->on_poll(ln.last_cpu_sensor_reads);
    }
}

void server_batch::force_cold_start() {
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
        force_cold_start(l);
    }
}

void server_batch::settle_at(std::size_t lane, double u_pct) {
    lane_state& ln = at(lane);
    for (int i = 0; i < 12; ++i) {
        apply_heat(lane, u_pct);
        settle_to_steady_state(lane);
    }
    if (ln.monitor) {
        ln.monitor->settle(u_pct, ln.imbalance, batch_.ambient(lane), ln.fans);
    }
}

util::watts_t server_batch::idle_power(std::size_t lane, util::rpm_t fan_rpm) const {
    return steady_idle_power(at(lane).config, fan_rpm);
}

util::seconds_t server_batch::now(std::size_t lane) const {
    return util::seconds_t{at(lane).now_s};
}

void server_batch::record(std::size_t lane, double u_target, double u_inst) {
    lane_state& ln = *lanes_[lane];
    const power::power_breakdown p = breakdown_at(lane, u_inst);
    trace_row row;
    row[trace_channel::target_util] = u_target;
    row[trace_channel::instant_util] = u_inst;
    row[trace_channel::cpu0_temp] = die_temp(lane, 0);
    row[trace_channel::cpu1_temp] = die_temp(lane, 1);
    row[trace_channel::avg_cpu_temp] = true_avg_cpu_temp(lane).value();
    double max_sensor = ln.last_cpu_sensor_reads.empty() ? true_avg_cpu_temp(lane).value()
                                                         : ln.last_cpu_sensor_reads[0];
    for (double v : ln.last_cpu_sensor_reads) {
        max_sensor = std::max(max_sensor, v);
    }
    row[trace_channel::max_sensor_temp] = max_sensor;
    row[trace_channel::dimm_temp] = true_dimm_temp(lane).value();
    row[trace_channel::total_power] = p.total().value();
    row[trace_channel::fan_power] = p.fan.value();
    row[trace_channel::leakage_power] = p.leakage.value();
    row[trace_channel::active_power] = p.active.value();
    row[trace_channel::avg_fan_rpm] = ln.fans.average_speed().value();
    // record() runs before the step's poll check, so the age here is
    // always finite after a cold start and grows to the poll period.
    row[trace_channel::sensor_age] = ln.telemetry.ever_polled()
                                         ? ln.now_s - ln.telemetry.last_poll_time()
                                         : ln.now_s;
    row[trace_channel::monitor_sensor_health] =
        ln.monitor ? static_cast<double>(static_cast<int>(ln.monitor->worst_sensor_health()))
                   : 0.0;
    row[trace_channel::monitor_fan_health] =
        ln.monitor ? static_cast<double>(static_cast<int>(ln.monitor->worst_fan_health())) : 0.0;
    row[trace_channel::monitor_die_estimate] = ln.monitor ? ln.monitor->max_die_estimate_c() : 0.0;
    traces_.append(lane, ln.now_s, row);
}

trace_view server_batch::trace(std::size_t lane) const {
    static_cast<void>(at(lane));
    return traces_.lane(lane);
}

void server_batch::clear_trace(std::size_t lane) {
    static_cast<void>(at(lane));
    traces_.clear(lane);
}

const server_config& server_batch::config(std::size_t lane) const { return at(lane).config; }

void server_batch::bind_fault_schedule(std::size_t lane, fault_schedule schedule) {
    lane_state& ln = at(lane);
    if (!schedule.empty()) {
        util::ensure(schedule.max_fan_target() < ln.fans.pair_count(),
                     "server_batch::bind_fault_schedule: fan target out of range");
        util::ensure(schedule.max_sensor_target() < ln.sensors.cpu.size(),
                     "server_batch::bind_fault_schedule: sensor target out of range");
    }
    ln.faults = std::move(schedule);
    clear_fault_effects(lane);
}

void server_batch::clear_fault_schedule(std::size_t lane) {
    at(lane).faults.reset();
    clear_fault_effects(lane);
}

void server_batch::clear_fault_effects(std::size_t lane) {
    lane_state& ln = *lanes_[lane];
    ln.fault.reset(ln.fans.pair_count(), ln.sensors.cpu.size());
    for (std::size_t i = 0; i < ln.fans.pair_count(); ++i) {
        ln.fans.set_failed(i, false);
        ln.fans.set_tach_stuck(i, false);
    }
    ln.telemetry.set_poll_suppressed(false);
}

double server_batch::telemetry_age_s(std::size_t lane) const {
    const lane_state& ln = at(lane);
    return ln.telemetry.ever_polled() ? ln.now_s - ln.telemetry.last_poll_time()
                                      : std::numeric_limits<double>::infinity();
}

void server_batch::apply_due_faults(std::size_t lane) {
    lane_state& ln = *lanes_[lane];
    const std::vector<fault_event>& events = ln.faults->events();
    while (ln.fault.next_event < events.size() &&
           events[ln.fault.next_event].t_s <= ln.now_s + 1e-9) {
        apply_fault_event(lane, events[ln.fault.next_event]);
        ++ln.fault.next_event;
    }
}

void server_batch::apply_fault_event(std::size_t lane, const fault_event& event) {
    lane_state& ln = *lanes_[lane];
    switch (event.kind) {
        case fault_kind::fan_failure:
            ln.fault.fan_commanded_rpm[event.target] = ln.fans.speed(event.target).value();
            ln.fault.fan_mode[event.target] = fault_state::fan_failed;
            ln.fans.set_failed(event.target, true);
            apply_airflow(lane);
            break;
        case fault_kind::fan_stuck_pwm:
            ln.fault.fan_commanded_rpm[event.target] = ln.fans.speed(event.target).value();
            ln.fault.fan_mode[event.target] = fault_state::fan_stuck;
            if (!std::isnan(event.value)) {
                ln.fans.set_speed(event.target, util::rpm_t{event.value});
                apply_airflow(lane);
            }
            break;
        case fault_kind::fan_tach_stuck:
            ln.fault.fan_commanded_rpm[event.target] = ln.fans.speed(event.target).value();
            ln.fault.fan_mode[event.target] = fault_state::fan_tach;
            ln.fans.set_tach_stuck(event.target, true);
            apply_airflow(lane);
            break;
        case fault_kind::fan_recover:
            ln.fault.fan_mode[event.target] = fault_state::fan_ok;
            ln.fans.set_failed(event.target, false);
            ln.fans.set_tach_stuck(event.target, false);
            ln.fans.set_speed(event.target,
                              util::rpm_t{ln.fault.fan_commanded_rpm[event.target]});
            apply_airflow(lane);
            break;
        case fault_kind::sensor_stuck:
            ln.fault.sensor_stuck[event.target] = 1;
            ln.fault.sensor_stuck_c[event.target] =
                std::isnan(event.value) ? ln.last_cpu_sensor_reads[event.target] : event.value;
            break;
        case fault_kind::sensor_bias:
            ln.fault.sensor_bias_c[event.target] = event.value;
            break;
        case fault_kind::sensor_dropout:
            ln.fault.sensor_dropout_until_s[event.target] = event.t_s + event.duration_s;
            break;
        case fault_kind::sensor_drift:
            ln.fault.sensor_drift_c_per_s[event.target] = event.value;
            ln.fault.sensor_drift_start_s[event.target] = event.t_s;
            break;
        case fault_kind::sensor_intermittent:
            ln.fault.sensor_intermittent_c[event.target] = event.value;
            ln.fault.sensor_intermittent_start_s[event.target] = event.t_s;
            ln.fault.sensor_intermittent_until_s[event.target] = event.t_s + event.duration_s;
            break;
        case fault_kind::sensor_recover:
            ln.fault.sensor_stuck[event.target] = 0;
            ln.fault.sensor_bias_c[event.target] = 0.0;
            ln.fault.sensor_dropout_until_s[event.target] = 0.0;
            ln.fault.sensor_drift_c_per_s[event.target] = 0.0;
            ln.fault.sensor_drift_start_s[event.target] = 0.0;
            ln.fault.sensor_intermittent_c[event.target] = 0.0;
            ln.fault.sensor_intermittent_start_s[event.target] = 0.0;
            ln.fault.sensor_intermittent_until_s[event.target] = 0.0;
            break;
        case fault_kind::telemetry_loss:
            ln.fault.telemetry_lost_until_s = event.t_s + event.duration_s;
            break;
    }
}

double server_batch::corrupt_sensor_reading(std::size_t lane, std::size_t sensor,
                                            double raw) const {
    const lane_state& ln = *lanes_[lane];
    if (ln.fault.sensor_stuck[sensor] != 0) {
        return ln.fault.sensor_stuck_c[sensor];
    }
    if (ln.now_s < ln.fault.sensor_dropout_until_s[sensor] - 1e-9) {
        return ln.last_cpu_sensor_reads[sensor];
    }
    double offset = ln.fault.sensor_bias_c[sensor];
    if (ln.fault.sensor_drift_c_per_s[sensor] != 0.0) {
        offset += ln.fault.sensor_drift_c_per_s[sensor] *
                  (ln.now_s - ln.fault.sensor_drift_start_s[sensor]);
    }
    if (ln.fault.intermittent_burst_live(sensor, ln.now_s)) {
        offset += ln.fault.sensor_intermittent_c[sensor];
    }
    return offset == 0.0 ? raw : raw + offset;
}

}  // namespace ltsc::sim
