// Hardware description of the simulated enterprise server.
//
// Defaults describe the paper's machine: a presently-shipping (in 2013)
// enterprise server with two 16-core/128-thread SPARC T3 CPUs, 32 8-GB
// DIMMs, and 6 fans in 3 rows of 2.  The power calibration reproduces the
// figures implied by Table I: ~366 W idle, ~720 W peak at 100 % load with
// the default cooling policy, and a 30 W fan-power span across the
// 1800-4200 RPM range.
#pragma once

#include <cstdint>

#include "core/fault_monitor.hpp"
#include "power/active_model.hpp"
#include "power/fan_model.hpp"
#include "power/leakage_model.hpp"
#include "thermal/server_thermal_model.hpp"
#include "util/units.hpp"

namespace ltsc::sim {

/// Full plant description; every knob a study might vary lives here.
struct server_config {
    // --- topology ------------------------------------------------------
    std::size_t sockets = 2;            ///< CPU packages.
    std::size_t cores_per_socket = 16;  ///< SPARC T3 core count.
    std::size_t threads_per_core = 8;   ///< Hardware strands per core.
    std::size_t dimm_count = 32;        ///< Memory modules.
    std::size_t fan_pairs = 3;          ///< Independently driven fan pairs.

    // --- power calibration ----------------------------------------------
    /// Wall power that no control knob can influence; includes the CPUs'
    /// utilization-independent (clock/uncore) power and DIMM standby power.
    double base_power_w = 331.6;
    /// Share of base power dissipated in each CPU die (thermally relevant).
    double cpu_idle_each_w = 45.0;
    /// Share of base power dissipated across the DIMM field.
    double dimm_idle_total_w = 40.0;
    /// Whole-system active slope [W per utilization %] (see active_model).
    double active_coeff_w_per_pct = power::active_model::system_k1_w_per_pct;
    /// How active power splits across heat sources.
    power::active_split split{0.35, 0.30, 0.35};
    /// Duty-cycle shaping of the CPU heat share (see active_model).
    double cpu_heat_shape_exponent = power::active_model::default_cpu_shape_exponent;
    /// Leakage model parameters (paper's published fit).
    power::leakage_params leakage = power::leakage_params::paper_fit();
    /// Fan pair spec (RPM limits, affinity-law reference point).
    power::fan_spec fan{};

    // --- thermal calibration ---------------------------------------------
    thermal::server_thermal_config thermal{};

    // --- telemetry / sensors ---------------------------------------------
    double telemetry_period_s = 10.0;  ///< CSTH polling cadence.
    double sensor_noise_sigma = 0.15;  ///< Gaussian sensor noise [degC].
    double sensor_quantum = 0.25;      ///< Sensor ADC quantization [degC].
    std::uint64_t seed = 0x5eed;       ///< RNG seed for sensor noise.

    // --- fault detection ---------------------------------------------------
    /// Residual-monitor configuration.  Disabled by default; the monitor
    /// is a passive observer, so enabling it changes no plant dynamics —
    /// monitor-off runs are bitwise the pre-monitor build.
    core::fault_monitor_config monitor{};

    // --- defaults ---------------------------------------------------------
    /// Fixed speed of the server's stock fan policy (Table I baseline).
    util::rpm_t default_fan_rpm{3300.0};
    /// Fan speed the paper's protocol uses to force the cold start.
    util::rpm_t cold_start_fan_rpm{3600.0};

    /// Total hardware threads (256 on the target machine).
    [[nodiscard]] std::size_t hardware_threads() const {
        return sockets * cores_per_socket * threads_per_core;
    }
};

/// The paper's server, exactly as described in Section III.
[[nodiscard]] server_config paper_server();

/// Validates invariants (positive capacities, split sums to 1, ...).
/// Throws precondition_error when the configuration is inconsistent.
void validate(const server_config& config);

/// Validates and returns the configuration (for member-initializer use).
[[nodiscard]] server_config validated(const server_config& config);

/// The healthy-twin description the residual monitor needs, extracted
/// from a full plant configuration (shared by the scalar plant and every
/// batch lane so twin arithmetic is identical everywhere).
[[nodiscard]] core::fault_monitor_plant monitor_plant_for(const server_config& config);

}  // namespace ltsc::sim
