// Batched receding-horizon rollout evaluation.
//
// A rollout_engine answers one question: *given the live plant's state,
// which of K candidate fan schedules costs the least energy over the
// next H seconds?*  It owns a dedicated K-lane server_batch built from
// the plant's configuration; every evaluation clones the snapshot
// across the candidate lanes (server_batch::load_lane_state), applies
// each candidate's moves at the decision-epoch cadence, integrates all
// candidates together through the batched thermal kernel, and scores
// each lane by predicted energy plus a constraint penalty.  Lanes whose
// predicted die temperature trips the guard terminate early through the
// per-lane active masks (the ragged-fleet machinery) — a doomed
// candidate stops consuming substeps the moment it disqualifies.
//
// Because the rollout lanes are bitwise twins of the plant (snapshot
// round-trip contract) and the workload preview is the plant's own
// loadgen, the prediction for the schedule that is ultimately committed
// is exactly the trajectory the plant will realize.  Evaluation is a
// pure function of (state, candidates, options): it touches only
// engine-owned lanes, never the live plant, and allocates nothing after
// the first call (trace arena and snapshot buffers are reused).
// Candidate lanes can additionally be sharded across a thread pool and
// stepped under the relaxed numerics tier (rollout_engine_config):
// shards own contiguous candidate blocks and share no mutable state, so
// scores — and the argmin — are invariant under shard count and thread
// count.  The defaults (one shard, serial, bitwise) preserve the exact
// behavior above.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "sim/server_batch.hpp"
#include "sim/server_config.hpp"
#include "sim/server_state.hpp"
#include "thermal/numerics.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"
#include "workload/loadgen.hpp"

namespace ltsc::sim {

/// One candidate fan schedule: the speed commanded at each decision
/// epoch of the horizon (all pairs together).  moves[0] is the move a
/// controller commits if the schedule wins; a schedule shorter than the
/// horizon holds its last speed.
struct fan_schedule {
    std::vector<util::rpm_t> moves;
};

/// Per-evaluation tunables.
struct rollout_options {
    util::seconds_t horizon{180.0};  ///< Lookahead H (> 0).
    util::seconds_t epoch{30.0};     ///< Cadence at which schedule moves apply.
    util::seconds_t sim_dt{1.0};     ///< Rollout integration step.
    /// Predicted-temperature guard: a lane whose max *true* die
    /// temperature exceeds this terminates early and is penalized.
    double guard_temp_c = 85.0;
    /// Penalty added to a guarded lane's score [J]; large enough that
    /// any guarded candidate loses to any unguarded one.
    double guard_penalty_j = 1e9;
    /// Additional penalty per degC of peak overshoot [J/K], so among
    /// all-guarded candidate sets the least-violating one wins.
    double overshoot_weight_j_per_k = 1e6;
};

/// Outcome of one candidate's rollout.
struct candidate_score {
    double score_j = 0.0;    ///< energy_j + guard penalties (the ranking key).
    double energy_j = 0.0;   ///< Predicted wall energy over the steps taken.
    double peak_temp_c = 0.0;  ///< Peak predicted true die temperature.
    long steps = 0;          ///< Steps integrated (horizon steps unless guarded).
    bool guarded = false;    ///< Tripped the temperature guard.
};

/// Result of one decision epoch's evaluation.
struct rollout_result {
    std::size_t best = 0;  ///< Argmin score; ties break to the lowest index.
    std::vector<candidate_score> scores;  ///< One per candidate, in order.
};

/// Engine topology/numerics knobs (see the header comment; the
/// defaults reproduce the single-shard bitwise engine exactly).
struct rollout_engine_config {
    /// Candidate-lane shards, each its own server_batch (>= 1, clamped
    /// to the candidate count).
    std::size_t shards = 1;
    /// Pool width for stepping shards; 1 runs serially on the caller,
    /// 0 means one thread per hardware thread.
    std::size_t threads = 1;
    /// Thermal-kernel numerics of the candidate lanes.  Relaxed trades
    /// the bitwise prediction == realization contract for vector-speed
    /// integration (predictions stay tolerance-close to the plant).
    thermal::numerics_tier tier = thermal::numerics_tier::bitwise;
};

/// K-lane rollout evaluator over one plant configuration.
class rollout_engine {
public:
    /// Builds the candidate lanes.  `config` must equal the controlled
    /// plant's configuration (the snapshot APIs validate the shapes).
    rollout_engine(const server_config& config, std::size_t max_candidates,
                   rollout_engine_config engine_config = {});

    [[nodiscard]] std::size_t max_candidates() const { return max_candidates_; }
    [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
    [[nodiscard]] thermal::numerics_tier tier() const { return shards_.front()->tier(); }

    /// Installs the workload preview every rollout lane steps against
    /// (the plant's own loadgen — the paper's profiles are known in
    /// advance, so the preview is perfect).  Call once per run; the
    /// binding persists across evaluations.
    void bind_workload(const workload::loadgen& workload);
    [[nodiscard]] bool workload_bound() const { return workload_bound_; }

    /// Installs the plant's fault campaign on every rollout lane, so the
    /// lookahead replays the scheduled faults the committed trajectory
    /// will hit (load_lane_state carries the plant's fault *state*; the
    /// schedule supplies the *future* events past the snapshot instant).
    /// Like the workload preview, the binding persists across
    /// evaluations; clear_fault_schedule returns the lanes to healthy.
    void bind_fault_schedule(const fault_schedule& schedule);
    void clear_fault_schedule();

    /// Rolls every candidate out from `start` and scores it.  Requires
    /// 1 <= candidates.size() <= max_candidates(), a bound workload,
    /// and positive horizon/epoch/sim_dt.  Deterministic: same
    /// (state, candidates, options) in, same result out, on any thread.
    /// The returned reference is into engine-owned scratch (reused so
    /// evaluation stays allocation-free at steady state) and is
    /// overwritten by the next evaluate().
    [[nodiscard]] const rollout_result& evaluate(const server_state& start,
                                                 const std::vector<fan_schedule>& candidates,
                                                 const rollout_options& options);

    /// The first shard's lane batch (tests inspect traces of the last
    /// evaluation; with the default single-shard config this is every
    /// candidate lane).  For sharded engines use candidate_trace().
    [[nodiscard]] const server_batch& lanes() const { return *shards_.front(); }

    /// Trace of candidate `l`'s last rollout, addressed across shards.
    [[nodiscard]] trace_view candidate_trace(std::size_t l) const;

private:
    [[nodiscard]] std::size_t shard_of(std::size_t candidate) const;
    void evaluate_shard(std::size_t s, std::size_t k, const server_state& start,
                        const std::vector<fan_schedule>& candidates,
                        const rollout_options& options);

    std::size_t max_candidates_ = 0;
    std::vector<std::unique_ptr<server_batch>> shards_;
    std::vector<std::size_t> offsets_;  ///< [shard_count + 1] candidate offsets.
    util::thread_pool pool_;
    bool workload_bound_ = false;
    rollout_result result_;  ///< Reused per-evaluation scratch.
};

}  // namespace ltsc::sim
