#include "sim/fleet.hpp"

#include <algorithm>
#include <utility>

#include "sim/parallel_runner.hpp"
#include "util/error.hpp"

namespace ltsc::sim {

namespace {

std::size_t resolve_threads(std::size_t threads) {
    return threads != 0 ? threads : parallel_runner::threads_from_env();
}

std::size_t resolve_shards(std::size_t shards, std::size_t lanes, std::size_t pool_threads) {
    const std::size_t want = shards != 0 ? shards : pool_threads;
    return std::clamp<std::size_t>(want, 1, lanes);
}

}  // namespace

fleet::fleet(const server_config& config, std::size_t lanes, fleet_config cfg)
    : fleet(std::vector<server_config>(lanes, config), cfg) {}

fleet::fleet(std::vector<server_config> configs, fleet_config cfg)
    : lanes_(configs.size()), tier_(cfg.tier), pool_(resolve_threads(cfg.threads)) {
    util::ensure(lanes_ > 0, "fleet: need at least one lane");
    const std::size_t shards = resolve_shards(cfg.shards, lanes_, pool_.thread_count());
    const std::size_t base = lanes_ / shards;
    const std::size_t rem = lanes_ % shards;
    offsets_.resize(shards + 1);
    offsets_[0] = 0;
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t count = base + (s < rem ? 1 : 0);
        offsets_[s + 1] = offsets_[s] + count;
        shards_.push_back(std::make_unique<server_batch>(
            std::vector<server_config>(configs.begin() + static_cast<std::ptrdiff_t>(offsets_[s]),
                                       configs.begin() +
                                           static_cast<std::ptrdiff_t>(offsets_[s + 1])),
            tier_));
    }
}

server_batch& fleet::shard(std::size_t s) {
    util::ensure(s < shards_.size(), "fleet::shard: out of range");
    return *shards_[s];
}

const server_batch& fleet::shard(std::size_t s) const {
    util::ensure(s < shards_.size(), "fleet::shard: out of range");
    return *shards_[s];
}

std::size_t fleet::shard_of(std::size_t lane) const {
    util::ensure(lane < lanes_, "fleet: lane out of range");
    // Shards are balanced blocks, so the owner is found directly: the
    // first `rem` shards hold base+1 lanes each.
    const std::size_t shards = shards_.size();
    const std::size_t base = lanes_ / shards;
    const std::size_t rem = lanes_ % shards;
    const std::size_t big = rem * (base + 1);
    if (lane < big) {
        return lane / (base + 1);
    }
    return rem + (lane - big) / base;
}

std::size_t fleet::local_lane(std::size_t lane) const { return lane - offsets_[shard_of(lane)]; }

std::size_t fleet::shard_offset(std::size_t s) const {
    util::ensure(s < offsets_.size(), "fleet::shard_offset: out of range");
    return offsets_[s];
}

void fleet::for_each_shard(const std::function<void(std::size_t)>& fn) {
    pool_.run_indexed(shards_.size(), fn);
}

void fleet::bind_workload(std::size_t lane, const workload::utilization_profile& profile) {
    shard(shard_of(lane)).bind_workload(local_lane(lane), profile);
}

void fleet::bind_workload(std::size_t lane, workload::loadgen generator) {
    shard(shard_of(lane)).bind_workload(local_lane(lane), std::move(generator));
}

void fleet::bind_fault_schedule(std::size_t lane, fault_schedule schedule) {
    shard(shard_of(lane)).bind_fault_schedule(local_lane(lane), std::move(schedule));
}

void fleet::set_fan_speed(std::size_t lane, std::size_t pair_index, util::rpm_t rpm) {
    shard(shard_of(lane)).set_fan_speed(local_lane(lane), pair_index, rpm);
}

void fleet::set_all_fans(std::size_t lane, util::rpm_t rpm) {
    shard(shard_of(lane)).set_all_fans(local_lane(lane), rpm);
}

util::rpm_t fleet::average_fan_rpm(std::size_t lane) const {
    return shard(shard_of(lane)).average_fan_rpm(local_lane(lane));
}

double fleet::measured_utilization(std::size_t lane, util::seconds_t window) const {
    return shard(shard_of(lane)).measured_utilization(local_lane(lane), window);
}

util::celsius_t fleet::max_cpu_sensor_temp(std::size_t lane) const {
    return shard(shard_of(lane)).max_cpu_sensor_temp(local_lane(lane));
}

util::watts_t fleet::system_power_reading(std::size_t lane) const {
    return shard(shard_of(lane)).system_power_reading(local_lane(lane));
}

util::celsius_t fleet::true_avg_cpu_temp(std::size_t lane) const {
    return shard(shard_of(lane)).true_avg_cpu_temp(local_lane(lane));
}

power::power_breakdown fleet::current_power(std::size_t lane) const {
    return shard(shard_of(lane)).current_power(local_lane(lane));
}

void fleet::set_ambient(std::size_t lane, util::celsius_t t) {
    shard(shard_of(lane)).set_ambient(local_lane(lane), t);
}

util::celsius_t fleet::ambient(std::size_t lane) const {
    return shard(shard_of(lane)).ambient(local_lane(lane));
}

util::seconds_t fleet::now(std::size_t lane) const {
    return shard(shard_of(lane)).now(local_lane(lane));
}

void fleet::set_lane_active(std::size_t lane, bool active) {
    shard(shard_of(lane)).set_lane_active(local_lane(lane), active);
}

bool fleet::lane_active(std::size_t lane) const {
    return shard(shard_of(lane)).lane_active(local_lane(lane));
}

void fleet::force_cold_start(std::size_t lane) {
    shard(shard_of(lane)).force_cold_start(local_lane(lane));
}

void fleet::force_cold_start() {
    for (auto& s : shards_) {
        s->force_cold_start();
    }
}

void fleet::settle_at(std::size_t lane, double u_pct) {
    shard(shard_of(lane)).settle_at(local_lane(lane), u_pct);
}

trace_view fleet::trace(std::size_t lane) const {
    return shard(shard_of(lane)).trace(local_lane(lane));
}

void fleet::clear_trace(std::size_t lane) {
    shard(shard_of(lane)).clear_trace(local_lane(lane));
}

const server_config& fleet::config(std::size_t lane) const {
    return shard(shard_of(lane)).config(local_lane(lane));
}

void fleet::step(util::seconds_t dt) {
    // The epoch is stamped before the fan-out so every shard of this
    // step publishes the same value; the pool barrier then orders this
    // step's publications before the next step's for every shard.
    const std::uint64_t epoch = ++epoch_;
    fleet_sink* const sink = sink_;
    pool_.run_indexed(shards_.size(), [&](std::size_t s) {
        shards_[s]->step(dt);
        if (sink != nullptr) {
            sink->on_shard_step(s, epoch, *shards_[s]);
        }
    });
}

void fleet::advance(util::seconds_t duration, util::seconds_t dt) {
    // Fans each macro step out shard-wise rather than calling
    // server_batch::advance per shard, keeping shards in loose lockstep;
    // the step sequence matches server_batch::advance exactly.
    util::ensure(duration.value() >= 0.0, "fleet::advance: negative duration");
    double remaining = duration.value();
    while (remaining > 1e-9) {
        const double h = std::min(remaining, dt.value());
        step(util::seconds_t{h});
        remaining -= h;
    }
}

}  // namespace ltsc::sim
