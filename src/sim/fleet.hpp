// Sharded fleet plant: N lanes partitioned across K server_batch
// shards stepped concurrently on a util::thread_pool.
//
// Lanes are assigned to shards in contiguous balanced blocks (shard 0
// gets lanes [0, n0), shard 1 gets [n0, n0+n1), ...), so shard-major
// result assembly *is* lane order and every per-lane result is
// independent of the shard count and thread count: lanes never share
// mutable state across shards, each shard owns its own batch_trace
// arena, and within a shard the server_batch numerics are already
// packing-invariant (bitwise tier: scalar-twin equality; relaxed tier:
// the SIMD kernel contract in thermal/numerics.hpp).  Stepping fans the
// K shards out over the pool exactly like parallel_runner fans out
// scenarios — an atomic index handout whose schedule cannot affect
// results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/server_batch.hpp"
#include "thermal/numerics.hpp"
#include "util/thread_pool.hpp"

namespace ltsc::sim {

/// Fleet topology/numerics knobs.
struct fleet_config {
    /// Shard count; 0 means one shard per pool thread.  Clamped to the
    /// lane count.
    std::size_t shards = 0;
    /// Pool width (including the calling thread); 0 defers to
    /// LTSC_THREADS, falling back to one per hardware thread
    /// (parallel_runner::threads_from_env semantics).
    std::size_t threads = 0;
    /// Thermal-kernel numerics of every shard (thermal/numerics.hpp).
    thermal::numerics_tier tier = thermal::numerics_tier::bitwise;
};

/// Observer of fleet stepping, called per shard per step.
///
/// Publication hook for the streaming telemetry service: after shard
/// `s` finishes a step, `on_shard_step` runs *on the pool thread that
/// stepped the shard*, before the step's barrier.  Calls for one shard
/// are serialized across steps by that barrier (a happens-before edge
/// even when the stepping thread changes), so a per-shard SPSC ring is
/// a valid sink.  Implementations must not touch other shards or the
/// fleet itself from the callback.
class fleet_sink {
public:
    virtual ~fleet_sink() = default;
    virtual void on_shard_step(std::size_t shard, std::uint64_t epoch,
                               const server_batch& batch) = 0;
};

/// N simulated servers as K concurrently stepped server_batch shards.
class fleet {
public:
    /// N identical lanes from one configuration.
    fleet(const server_config& config, std::size_t lanes, fleet_config cfg = {});

    /// One lane per configuration (contiguous blocks per shard).
    explicit fleet(std::vector<server_config> configs, fleet_config cfg = {});

    fleet(const fleet&) = delete;
    fleet& operator=(const fleet&) = delete;

    [[nodiscard]] std::size_t lane_count() const { return lanes_; }
    [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
    [[nodiscard]] std::size_t thread_count() const { return pool_.thread_count(); }
    [[nodiscard]] thermal::numerics_tier tier() const { return tier_; }

    // --- shard addressing ---------------------------------------------------
    [[nodiscard]] server_batch& shard(std::size_t s);
    [[nodiscard]] const server_batch& shard(std::size_t s) const;
    /// Shard owning global lane `lane`.
    [[nodiscard]] std::size_t shard_of(std::size_t lane) const;
    /// Lane index within its shard.
    [[nodiscard]] std::size_t local_lane(std::size_t lane) const;
    /// First global lane of shard `s` (offset(shard_count()) == lane_count()).
    [[nodiscard]] std::size_t shard_offset(std::size_t s) const;

    /// Runs `fn(s)` for every shard on the pool (deterministic result
    /// placement is the caller's job, as with thread_pool::run_indexed).
    void for_each_shard(const std::function<void(std::size_t)>& fn);

    // --- per-lane surface (global lane indices) -----------------------------
    void bind_workload(std::size_t lane, const workload::utilization_profile& profile);
    void bind_workload(std::size_t lane, workload::loadgen generator);
    void bind_fault_schedule(std::size_t lane, fault_schedule schedule);

    void set_fan_speed(std::size_t lane, std::size_t pair_index, util::rpm_t rpm);
    void set_all_fans(std::size_t lane, util::rpm_t rpm);
    [[nodiscard]] util::rpm_t average_fan_rpm(std::size_t lane) const;

    [[nodiscard]] double measured_utilization(std::size_t lane, util::seconds_t window) const;
    [[nodiscard]] util::celsius_t max_cpu_sensor_temp(std::size_t lane) const;
    [[nodiscard]] util::watts_t system_power_reading(std::size_t lane) const;
    [[nodiscard]] util::celsius_t true_avg_cpu_temp(std::size_t lane) const;
    [[nodiscard]] power::power_breakdown current_power(std::size_t lane) const;

    void set_ambient(std::size_t lane, util::celsius_t t);
    [[nodiscard]] util::celsius_t ambient(std::size_t lane) const;

    [[nodiscard]] util::seconds_t now(std::size_t lane) const;
    void set_lane_active(std::size_t lane, bool active);
    [[nodiscard]] bool lane_active(std::size_t lane) const;

    void force_cold_start(std::size_t lane);
    /// Cold-starts every lane (serial; cold start is setup, not stepping).
    void force_cold_start();
    void settle_at(std::size_t lane, double u_pct);

    [[nodiscard]] trace_view trace(std::size_t lane) const;
    void clear_trace(std::size_t lane);
    [[nodiscard]] const server_config& config(std::size_t lane) const;

    // --- time ---------------------------------------------------------------
    /// Advances every shard by `dt` concurrently on the pool.
    void step(util::seconds_t dt = util::seconds_t{1.0});
    void advance(util::seconds_t duration, util::seconds_t dt = util::seconds_t{1.0});

    // --- streaming publication ----------------------------------------------
    /// Attaches a per-shard-step publication sink (nullptr detaches).
    /// With no sink attached stepping is bitwise-identical to a fleet
    /// that never had one: the hook is a single branch per shard step
    /// and touches no plant state.  Attach/detach only while the fleet
    /// is quiescent (no step in flight).
    void attach_sink(fleet_sink* sink) { sink_ = sink; }
    [[nodiscard]] fleet_sink* sink() const { return sink_; }

    /// Completed fleet steps (the epoch stamped onto published
    /// row-groups; 0 before the first step).
    [[nodiscard]] std::uint64_t step_epoch() const { return epoch_; }

private:
    std::size_t lanes_ = 0;
    thermal::numerics_tier tier_ = thermal::numerics_tier::bitwise;
    util::thread_pool pool_;
    std::vector<std::unique_ptr<server_batch>> shards_;
    std::vector<std::size_t> offsets_;  ///< [shard_count + 1] lane offsets.
    fleet_sink* sink_ = nullptr;        ///< Optional row-group publication hook.
    std::uint64_t epoch_ = 0;           ///< Completed fleet steps.
};

}  // namespace ltsc::sim
