#include "sim/simulation_trace.hpp"

#include "util/error.hpp"

namespace ltsc::sim {

namespace {

constexpr const char* kChannelNames[trace_channel_count] = {
    "target_util", "instant_util",  "cpu0_temp", "cpu1_temp",     "avg_cpu_temp",
    "max_sensor_temp", "dimm_temp", "total_power", "fan_power",   "leakage_power",
    "active_power", "avg_fan_rpm",  "sensor_age", "monitor_sensor_health",
    "monitor_fan_health", "monitor_die_estimate",
};

constexpr const char* kChannelUnits[trace_channel_count] = {
    "pct", "pct", "degC", "degC", "degC", "degC",  "degC", "W",
    "W",   "W",   "W",    "RPM",  "s",    "level", "level", "degC",
};

}  // namespace

const char* trace_channel_name(trace_channel c) {
    const auto i = static_cast<std::size_t>(c);
    util::ensure(i < trace_channel_count, "trace_channel_name: bad channel");
    return kChannelNames[i];
}

const char* trace_channel_unit(trace_channel c) {
    const auto i = static_cast<std::size_t>(c);
    util::ensure(i < trace_channel_count, "trace_channel_unit: bad channel");
    return kChannelUnits[i];
}

simulation_trace::simulation_trace() {
    for (std::size_t c = 0; c < trace_channel_count; ++c) {
        frame_.add_channel(kChannelNames[c]);
    }
}

simulation_trace::simulation_trace(const trace_view& v) : simulation_trace() {
    trace_row row;
    for (std::size_t i = 0; i < v.size(); ++i) {
        for (std::size_t c = 0; c < trace_channel_count; ++c) {
            row.values[c] = v.channel(static_cast<trace_channel>(c)).v(i);
        }
        append(v.channel(trace_channel::target_util).t(i), row);
    }
}

trace_view simulation_trace::view() const {
    trace_view out;
    for (std::size_t c = 0; c < trace_channel_count; ++c) {
        out.channels_[c] = frame_.column(c);
    }
    return out;
}

}  // namespace ltsc::sim
