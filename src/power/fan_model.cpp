#include "power/fan_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ltsc::power {

fan_pair::fan_pair(const fan_spec& spec) : spec_(spec) {
    util::ensure(spec.min_rpm.value() > 0.0, "fan_pair: non-positive minimum RPM");
    util::ensure(spec.max_rpm >= spec.min_rpm, "fan_pair: max RPM below min RPM");
    util::ensure(spec.ref_rpm.value() > 0.0, "fan_pair: non-positive reference RPM");
    util::ensure(spec.ref_power.value() >= 0.0, "fan_pair: negative reference power");
    util::ensure(spec.ref_airflow.value() >= 0.0, "fan_pair: negative reference airflow");
}

util::rpm_t fan_pair::clamp(util::rpm_t rpm) const {
    return util::rpm_t{std::clamp(rpm.value(), spec_.min_rpm.value(), spec_.max_rpm.value())};
}

util::watts_t fan_pair::power(util::rpm_t rpm) const {
    const double ratio = clamp(rpm).value() / spec_.ref_rpm.value();
    return util::watts_t{spec_.ref_power.value() * ratio * ratio * ratio};
}

util::cfm_t fan_pair::airflow(util::rpm_t rpm) const {
    const double ratio = clamp(rpm).value() / spec_.ref_rpm.value();
    return util::cfm_t{spec_.ref_airflow.value() * ratio};
}

tabulated_fan_model::tabulated_fan_model(std::vector<fan_calibration_point> points) {
    util::ensure(points.size() >= 2, "tabulated_fan_model: need >= 2 calibration points");
    std::vector<double> x;
    std::vector<double> y;
    x.reserve(points.size());
    y.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (i > 0) {
            util::ensure(points[i].rpm > points[i - 1].rpm,
                         "tabulated_fan_model: RPM points not strictly increasing");
            util::ensure(points[i].power >= points[i - 1].power,
                         "tabulated_fan_model: fan power must be non-decreasing in RPM");
        }
        x.push_back(points[i].rpm.value());
        y.push_back(points[i].power.value());
    }
    interp_ = util::pchip_interpolator(std::move(x), std::move(y));
}

util::watts_t tabulated_fan_model::power(util::rpm_t rpm) const {
    return util::watts_t{interp_(rpm.value())};
}

fan_bank::fan_bank(std::size_t pair_count, const fan_spec& spec, util::rpm_t initial)
    : pair_(spec),
      speeds_(pair_count, util::rpm_t{0.0}),
      failed_(pair_count, 0),
      tach_stuck_(pair_count, 0) {
    util::ensure(pair_count >= 1, "fan_bank: need at least one fan pair");
    set_all(initial);
}

fan_bank::fan_bank() : fan_bank(3, fan_spec{}, util::rpm_t{3600.0}) {}

void fan_bank::set_speed(std::size_t pair_index, util::rpm_t rpm) {
    util::ensure(pair_index < speeds_.size(), "fan_bank::set_speed: pair index out of range");
    speeds_[pair_index] = pair_.clamp(rpm);
}

void fan_bank::set_all(util::rpm_t rpm) {
    const util::rpm_t clamped = pair_.clamp(rpm);
    std::fill(speeds_.begin(), speeds_.end(), clamped);
}

util::rpm_t fan_bank::speed(std::size_t pair_index) const {
    util::ensure(pair_index < speeds_.size(), "fan_bank::speed: pair index out of range");
    return speeds_[pair_index];
}

void fan_bank::set_failed(std::size_t pair_index, bool failed) {
    util::ensure(pair_index < failed_.size(), "fan_bank::set_failed: pair index out of range");
    failed_[pair_index] = failed ? 1 : 0;
}

bool fan_bank::failed(std::size_t pair_index) const {
    util::ensure(pair_index < failed_.size(), "fan_bank::failed: pair index out of range");
    return failed_[pair_index] != 0;
}

bool fan_bank::any_failed() const {
    for (unsigned char f : failed_) {
        if (f != 0) {
            return true;
        }
    }
    return false;
}

void fan_bank::set_tach_stuck(std::size_t pair_index, bool stuck) {
    util::ensure(pair_index < tach_stuck_.size(),
                 "fan_bank::set_tach_stuck: pair index out of range");
    tach_stuck_[pair_index] = stuck ? 1 : 0;
}

bool fan_bank::tach_stuck(std::size_t pair_index) const {
    util::ensure(pair_index < tach_stuck_.size(),
                 "fan_bank::tach_stuck: pair index out of range");
    return tach_stuck_[pair_index] != 0;
}

util::rpm_t fan_bank::effective_speed(std::size_t pair_index) const {
    util::ensure(pair_index < speeds_.size(),
                 "fan_bank::effective_speed: pair index out of range");
    return failed_[pair_index] != 0 ? util::rpm_t{0.0} : speeds_[pair_index];
}

util::watts_t fan_bank::pair_power(std::size_t pair_index) const {
    util::ensure(pair_index < speeds_.size(), "fan_bank::pair_power: pair index out of range");
    return failed_[pair_index] != 0 || tach_stuck_[pair_index] != 0
               ? util::watts_t{0.0}
               : pair_.power(speeds_[pair_index]);
}

util::cfm_t fan_bank::pair_airflow(std::size_t pair_index) const {
    util::ensure(pair_index < speeds_.size(), "fan_bank::pair_airflow: pair index out of range");
    return failed_[pair_index] != 0 || tach_stuck_[pair_index] != 0
               ? util::cfm_t{0.0}
               : pair_.airflow(speeds_[pair_index]);
}

util::rpm_t fan_bank::average_speed() const {
    double acc = 0.0;
    for (std::size_t i = 0; i < speeds_.size(); ++i) {
        acc += effective_speed(i).value();
    }
    return util::rpm_t{acc / static_cast<double>(speeds_.size())};
}

util::watts_t fan_bank::total_power() const {
    util::watts_t acc{0.0};
    for (std::size_t i = 0; i < speeds_.size(); ++i) {
        acc += pair_power(i);
    }
    return acc;
}

util::cfm_t fan_bank::total_airflow() const {
    util::cfm_t acc{0.0};
    for (std::size_t i = 0; i < speeds_.size(); ++i) {
        acc += pair_airflow(i);
    }
    return acc;
}

std::vector<util::rpm_t> paper_rpm_settings() {
    return {util::rpm_t{1800.0}, util::rpm_t{2400.0}, util::rpm_t{3000.0}, util::rpm_t{3600.0},
            util::rpm_t{4200.0}};
}

}  // namespace ltsc::power
