#include "power/server_power_model.hpp"

#include "util/error.hpp"

namespace ltsc::power {

server_power_model::server_power_model(util::watts_t base, active_model active,
                                       leakage_model leakage)
    : base_(base), active_(active), leakage_(leakage) {
    util::ensure(base.value() >= 0.0, "server_power_model: negative base power");
}

server_power_model::server_power_model()
    : server_power_model(util::watts_t{calibrated_base_w}, active_model{}, leakage_model{}) {}

power_breakdown server_power_model::at(double u_pct, util::celsius_t cpu_temp,
                                       util::watts_t fan_power) const {
    util::ensure(fan_power.value() >= 0.0, "server_power_model: negative fan power");
    power_breakdown out;
    out.base = base_;
    out.active = active_.total(u_pct);
    out.leakage = leakage_.at(cpu_temp);
    out.fan = fan_power;
    return out;
}

}  // namespace ltsc::power
