// Fan power, airflow, and the 3-pair fan bank of the target server.
//
// The paper's server has 6 fans in 3 rows of 2, each pair driven by its own
// external power supply.  Fan affinity laws give airflow proportional to
// RPM and power proportional to RPM^3; the paper measures the power at each
// RPM setting during characterization.  This module provides both the pure
// fan-law model and a tabulated model built from measured points.
#pragma once

#include <cstddef>
#include <vector>

#include "util/interpolate.hpp"
#include "util/units.hpp"

namespace ltsc::power {

/// Physical limits and reference point of one fan pair.
struct fan_spec {
    util::rpm_t min_rpm{1800.0};   ///< Lowest controllable speed.
    util::rpm_t max_rpm{4200.0};   ///< Highest controllable speed.
    util::rpm_t ref_rpm{4200.0};   ///< Reference speed of the affinity law.
    util::watts_t ref_power{16.7}; ///< Pair power at the reference speed.
    util::cfm_t ref_airflow{51.0}; ///< Pair airflow at the reference speed.
};

/// One pair of fans obeying the fan affinity laws:
///   P(rpm) = ref_power * (rpm / ref_rpm)^3
///   Q(rpm) = ref_airflow * (rpm / ref_rpm)
class fan_pair {
public:
    fan_pair() = default;
    explicit fan_pair(const fan_spec& spec);

    /// Electrical power drawn at `rpm` (clamped into the legal range).
    [[nodiscard]] util::watts_t power(util::rpm_t rpm) const;

    /// Airflow delivered at `rpm` (clamped into the legal range).
    [[nodiscard]] util::cfm_t airflow(util::rpm_t rpm) const;

    /// Clamps a commanded speed into [min_rpm, max_rpm].
    [[nodiscard]] util::rpm_t clamp(util::rpm_t rpm) const;

    [[nodiscard]] const fan_spec& spec() const { return spec_; }

private:
    fan_spec spec_{};
};

/// Measured (RPM, Watts) calibration point for the tabulated model.
struct fan_calibration_point {
    util::rpm_t rpm{0.0};
    util::watts_t power{0.0};
};

/// Fan power model built from measured calibration points (monotone cubic
/// interpolation), as produced by the paper's vibration-sensor fan
/// characterization.  Falls back to cubic extrapolation via clamping.
class tabulated_fan_model {
public:
    /// Builds the model from at least two points with strictly increasing
    /// RPM and non-decreasing power.
    explicit tabulated_fan_model(std::vector<fan_calibration_point> points);

    /// Interpolated pair power at `rpm`.
    [[nodiscard]] util::watts_t power(util::rpm_t rpm) const;

private:
    util::pchip_interpolator interp_;
};

/// The server's bank of 3 independently controllable fan pairs.
///
/// Each pair carries a failure flag (fault injection): a failed pair's
/// rotor is stopped, so its *effective* speed, power, and airflow are
/// zero while its commanded speed stays latched.  `speed()` always
/// reports the commanded value — that is what snapshots must carry so a
/// restore never re-clamps a stopped rotor — while `effective_speed()`
/// and the aggregate queries report what the chassis physically does.
/// With every flag clear (the default) the two surfaces coincide
/// bitwise, which is what keeps healthy-plant runs pinned to the
/// pre-fault goldens.
///
/// A second, nastier flag models a *lying tachometer*: a tach-stuck
/// pair's rotor is just as dead (no power draw, no airflow) but
/// `effective_speed()` — the tach surface every observer reads — keeps
/// reporting the commanded value.  Command/tach residual monitoring is
/// blind to it by construction; only thermal-response cross-checking
/// (core::fault_monitor's tach-distrust path) can catch it.
class fan_bank {
public:
    /// Builds a bank of `pair_count` identical pairs, all initially at
    /// `initial` RPM.
    fan_bank(std::size_t pair_count, const fan_spec& spec, util::rpm_t initial);

    /// Paper configuration: 3 pairs, 1800-4200 RPM, all at 3600 RPM.
    fan_bank();

    [[nodiscard]] std::size_t pair_count() const { return speeds_.size(); }

    /// Commands one pair; the speed is clamped to the legal range.
    void set_speed(std::size_t pair_index, util::rpm_t rpm);

    /// Commands all pairs to the same speed.
    void set_all(util::rpm_t rpm);

    /// Commanded speed of one pair (unaffected by failure flags).
    [[nodiscard]] util::rpm_t speed(std::size_t pair_index) const;

    /// Marks one pair (un)failed; the commanded speed is untouched.
    void set_failed(std::size_t pair_index, bool failed);
    [[nodiscard]] bool failed(std::size_t pair_index) const;
    [[nodiscard]] bool any_failed() const;

    /// Marks one pair's tachometer stuck: the rotor stops (no power, no
    /// airflow) but the tach keeps reporting the commanded speed.
    void set_tach_stuck(std::size_t pair_index, bool stuck);
    [[nodiscard]] bool tach_stuck(std::size_t pair_index) const;

    /// Tachometer reading of one pair: the commanded speed, or 0 when
    /// failed.  A tach-stuck pair *lies* here — its rotor is stopped but
    /// the reading stays at the commanded value.
    [[nodiscard]] util::rpm_t effective_speed(std::size_t pair_index) const;

    /// Electrical power of one pair: 0 when the rotor is stopped
    /// (failed or tach-stuck).
    [[nodiscard]] util::watts_t pair_power(std::size_t pair_index) const;

    /// Airflow of one pair: 0 when the rotor is stopped (failed or
    /// tach-stuck).
    [[nodiscard]] util::cfm_t pair_airflow(std::size_t pair_index) const;

    /// Mean tach reading across pairs (the "Avg RPM" column of Table I;
    /// a failed pair contributes 0, a tach-stuck pair lies high).
    [[nodiscard]] util::rpm_t average_speed() const;

    /// Total electrical power of the bank (failed pairs draw nothing).
    [[nodiscard]] util::watts_t total_power() const;

    /// Total airflow through the chassis (failed pairs move nothing).
    [[nodiscard]] util::cfm_t total_airflow() const;

    [[nodiscard]] const fan_pair& pair() const { return pair_; }

private:
    fan_pair pair_;
    std::vector<util::rpm_t> speeds_;
    std::vector<unsigned char> failed_;
    std::vector<unsigned char> tach_stuck_;
};

/// The discrete RPM settings explored in the paper's characterization
/// (Fig. 1(a)): 1800 to 4200 in 600 RPM steps.
[[nodiscard]] std::vector<util::rpm_t> paper_rpm_settings();

}  // namespace ltsc::power
