// Utilization-dependent active (dynamic) power model.
//
// Eqn. 2 of the paper models active power as linear in utilization,
// P_active = k1 * U.  The paper's k1 = 0.4452 W/% is fitted on the per-core
// voltage/current rail sensors; the whole-system active swing implied by
// Table I (idle 366 W -> peak 720 W) is ~3.5 W/%.  Both views live here:
// the plant uses the system-level coefficient, split across subsystems so
// the thermal model can heat CPUs and DIMMs separately.
//
// The *split* is not linear in U: LoadGen synthesizes a target utilization
// by duty-cycling a maximal-switching stress kernel, so at mid duty the
// CPUs alternate between full-tilt switching and idle.  The time-average
// CPU heat therefore falls off slower than U (modelled as U^gamma with
// gamma < 1), while the electrical total remains k1 * U.  This shaping is
// what makes mid-utilization die temperatures on the real machine (Fig.
// 1(b), Fig. 3) run hotter than a proportional split predicts.
#pragma once

#include "util/units.hpp"

namespace ltsc::power {

/// Fraction of the active power swing at 100 % utilization attributed to
/// each heat source.
struct active_split {
    double cpu = 0.35;     ///< Both sockets combined.
    double memory = 0.30;  ///< All 32 DIMMs combined.
    double other = 0.35;   ///< I/O, VRs, interconnect (heats exhaust air only).
};

/// Linear active power model with a duty-cycle-shaped subsystem split.
class active_model {
public:
    /// Constructs the model.  `coeff_w_per_pct` is the whole-system slope
    /// in Watts per utilization percent; the split fractions must be
    /// non-negative and sum to 1 within 1e-6; `cpu_shape_exponent` is the
    /// gamma of the CPU-heat duty-cycle shaping (1.0 = proportional).
    active_model(double coeff_w_per_pct, const active_split& split,
                 double cpu_shape_exponent = default_cpu_shape_exponent);

    /// Default model calibrated against Table I of the paper.
    active_model() : active_model(system_k1_w_per_pct, active_split{}) {}

    /// Total active power at utilization `u_pct` in [0, 100].
    [[nodiscard]] util::watts_t total(double u_pct) const;

    /// CPU-attributed active heat (both sockets combined):
    /// min(total, split.cpu * coeff * 100 * (u/100)^gamma).
    [[nodiscard]] util::watts_t cpu(double u_pct) const;

    /// Memory-attributed active heat (all DIMMs combined); shares the
    /// non-CPU remainder with `other` in proportion to the split.
    [[nodiscard]] util::watts_t memory(double u_pct) const;

    /// Remaining active heat (dissipated downstream of the CPUs).
    [[nodiscard]] util::watts_t other(double u_pct) const;

    [[nodiscard]] double coefficient() const { return coeff_; }
    [[nodiscard]] const active_split& split() const { return split_; }
    [[nodiscard]] double cpu_shape_exponent() const { return gamma_; }

    /// Whole-system active slope implied by Table I of the paper [W/%].
    static constexpr double system_k1_w_per_pct = 3.5;

    /// Per-rail slope published in the paper's Eqn. 2 fitting [W/%].
    static constexpr double paper_rail_k1_w_per_pct = 0.4452;

    /// Default shaping: proportional.  The PWM duty cycling of the plant
    /// models the busy/idle alternation explicitly, so the time-average
    /// heat is already correct; sublinear exponents exist for ablation
    /// studies of machines whose stress kernels behave differently.
    static constexpr double default_cpu_shape_exponent = 1.0;

private:
    double coeff_;
    active_split split_;
    double gamma_;
};

}  // namespace ltsc::power
