// Whole-server power aggregation (Eqn. 1 of the paper):
//
//   P_total = P_base + P_active(U) + P_leak(T) + P_fan(RPM)
//
// P_base collects everything the fan controller cannot influence (idle
// logic power of CPUs/DIMMs/disks, service processor, PSU overhead); it is
// calibrated so that the simulated server reproduces the idle power implied
// by Table I (366 W) and the observed peak (710-720 W).
#pragma once

#include "power/active_model.hpp"
#include "power/leakage_model.hpp"
#include "util/units.hpp"

namespace ltsc::power {

/// Instantaneous power breakdown of the server.
struct power_breakdown {
    util::watts_t base{0.0};     ///< Utilization/temperature-independent floor.
    util::watts_t active{0.0};   ///< Dynamic power, linear in utilization.
    util::watts_t leakage{0.0};  ///< Temperature-dependent leakage.
    util::watts_t fan{0.0};      ///< Fan electrical power.

    /// Sum of all components (the system power sensor reading).
    [[nodiscard]] util::watts_t total() const { return base + active + leakage + fan; }
};

/// Aggregates the component models into the paper's Eqn. 1.
class server_power_model {
public:
    /// Builds the aggregate from component models and the calibrated base.
    server_power_model(util::watts_t base, active_model active, leakage_model leakage);

    /// Default model calibrated against the paper's server.
    server_power_model();

    /// Breakdown at utilization `u_pct`, average CPU temperature `cpu_temp`
    /// and measured fan power `fan_power`.
    [[nodiscard]] power_breakdown at(double u_pct, util::celsius_t cpu_temp,
                                     util::watts_t fan_power) const;

    [[nodiscard]] const active_model& active() const { return active_; }
    [[nodiscard]] const leakage_model& leakage() const { return leakage_; }
    [[nodiscard]] util::watts_t base() const { return base_; }

    /// Base power calibrated from Table I: idle wall power 366 W minus the
    /// default-policy fan power (~24 W at 3300 RPM) and idle leakage.
    static constexpr double calibrated_base_w = 331.0;

private:
    util::watts_t base_{calibrated_base_w};
    active_model active_;
    leakage_model leakage_;
};

}  // namespace ltsc::power
