#include "power/leakage_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ltsc::power {

leakage_model::leakage_model(const leakage_params& params) : params_(params) {
    util::ensure(params.k2 >= 0.0, "leakage_model: negative exponential prefactor");
    util::ensure(std::isfinite(params.k3), "leakage_model: non-finite k3");
    util::ensure(params.offset_w >= 0.0, "leakage_model: negative static offset");
}

util::watts_t leakage_model::at(util::celsius_t t) const {
    return util::watts_t{params_.offset_w + params_.k2 * std::exp(params_.k3 * t.value())};
}

util::watts_t leakage_model::share_at(util::celsius_t t, int share_count) const {
    util::ensure(share_count >= 1, "leakage_model::share_at: bad share count");
    const double inv = 1.0 / static_cast<double>(share_count);
    return util::watts_t{inv * (params_.offset_w + params_.k2 * std::exp(params_.k3 * t.value()))};
}

double leakage_model::slope_at(util::celsius_t t) const {
    return params_.k2 * params_.k3 * std::exp(params_.k3 * t.value());
}

}  // namespace ltsc::power
