#include "power/psu_model.hpp"

#include "util/error.hpp"

namespace ltsc::power {

psu_model::psu_model()
    : psu_model(util::watts_t{2000.0}, {0.05, 0.10, 0.20, 0.50, 0.80, 1.00},
                {0.70, 0.82, 0.90, 0.92, 0.90, 0.88}) {}

psu_model::psu_model(util::watts_t rated_output, std::vector<double> load_fractions,
                     std::vector<double> efficiencies)
    : rated_(rated_output) {
    util::ensure(rated_output.value() > 0.0, "psu_model: non-positive rating");
    util::ensure(load_fractions.size() == efficiencies.size() && load_fractions.size() >= 2,
                 "psu_model: need >= 2 curve points");
    for (std::size_t i = 0; i < load_fractions.size(); ++i) {
        util::ensure(load_fractions[i] > 0.0 && load_fractions[i] <= 1.0,
                     "psu_model: load fraction out of (0, 1]");
        util::ensure(efficiencies[i] > 0.0 && efficiencies[i] <= 1.0,
                     "psu_model: efficiency out of (0, 1]");
    }
    eff_ = util::linear_interpolator(std::move(load_fractions), std::move(efficiencies));
}

double psu_model::efficiency(util::watts_t dc_load) const {
    util::ensure(dc_load.value() >= 0.0, "psu_model: negative load");
    return eff_(dc_load.value() / rated_.value());
}

util::watts_t psu_model::ac_input(util::watts_t dc_load) const {
    if (dc_load.value() == 0.0) {
        return util::watts_t{0.0};
    }
    return util::watts_t{dc_load.value() / efficiency(dc_load)};
}

util::watts_t psu_model::loss(util::watts_t dc_load) const { return ac_input(dc_load) - dc_load; }

void psu_model::ac_input_into(const std::vector<double>& dc_w, std::vector<double>& ac_w) const {
    ac_w.resize(dc_w.size());
    for (std::size_t i = 0; i < dc_w.size(); ++i) {
        ac_w[i] = ac_input(util::watts_t{dc_w[i]}).value();
    }
}

}  // namespace ltsc::power
