// Temperature-dependent leakage power model (Eqn. 2 of the paper).
//
//   P_leak(T) = C + k2 * e^(k3 * T)
//
// The paper fits k2 = 0.3231 and k3 = 0.04749 on a SPARC T3 server (2.243 W
// RMS error, 98 % accuracy); those published constants are embedded here as
// `leakage_params::paper_fit()` and drive the simulated plant.  The
// characterization pipeline (core/characterization.hpp) re-derives them
// from sweep data to close the reproduction loop.
#pragma once

#include "util/units.hpp"

namespace ltsc::power {

/// Parameters of the exponential leakage model P = C + k2 * e^(k3 * T).
struct leakage_params {
    double offset_w = 0.0;  ///< Temperature-independent component C [W].
    double k2 = 0.0;        ///< Exponential prefactor [W].
    double k3 = 0.0;        ///< Exponential temperature coefficient [1/degC].

    /// The constants published in the paper (Section IV).  The paper does
    /// not report C; 8 W reproduces the magnitude of the leakage curve in
    /// Fig. 2(a).
    static leakage_params paper_fit() { return leakage_params{8.0, 0.3231, 0.04749}; }
};

/// Whole-server leakage power as a function of average CPU temperature.
class leakage_model {
public:
    leakage_model() : leakage_model(leakage_params::paper_fit()) {}

    /// Builds the model; k2 must be non-negative and k3 finite.
    explicit leakage_model(const leakage_params& params);

    /// Leakage power at average CPU temperature `t`.
    [[nodiscard]] util::watts_t at(util::celsius_t t) const;

    /// Leakage contributed by one of `share_count` identical dies at its
    /// own temperature; the shares sum to `at(t)` when all dies run at the
    /// same temperature.  Used by the plant to model per-socket leakage.
    [[nodiscard]] util::watts_t share_at(util::celsius_t t, int share_count) const;

    /// d P_leak / dT at temperature `t` [W per degC], used by tests and
    /// by the extremum-seeking controller's sensitivity estimate.
    [[nodiscard]] double slope_at(util::celsius_t t) const;

    [[nodiscard]] const leakage_params& params() const { return params_; }

private:
    leakage_params params_;
};

}  // namespace ltsc::power
