// Power supply unit efficiency model.
//
// The target server's PSUs sit outside the airflow path, but their
// conversion losses show up in wall power.  The default reproduction folds
// PSU losses into the calibrated base power (the paper's sensors report
// wall power directly); this explicit model exists for the data-center
// rack example and for studies that separate DC load from AC draw.
#pragma once

#include "util/interpolate.hpp"
#include "util/units.hpp"

namespace ltsc::power {

/// Load-dependent PSU efficiency curve.  Efficiency is tabulated against
/// load fraction (DC output / rated output) and interpolated monotonically.
class psu_model {
public:
    /// A typical 80 PLUS Gold curve for a 2000 W supply.
    psu_model();

    /// Builds a PSU with the given rated DC output and efficiency curve
    /// tabulated at the given load fractions (ascending, within (0, 1]).
    psu_model(util::watts_t rated_output, std::vector<double> load_fractions,
              std::vector<double> efficiencies);

    /// Efficiency at a DC load (clamped to the tabulated range).
    [[nodiscard]] double efficiency(util::watts_t dc_load) const;

    /// AC input power required to supply `dc_load`.
    [[nodiscard]] util::watts_t ac_input(util::watts_t dc_load) const;

    /// Batched AC-draw evaluation over a fleet: ac_w[i] = ac_input(dc_w[i])
    /// for every lane (ac_w is resized to match dc_w).
    void ac_input_into(const std::vector<double>& dc_w, std::vector<double>& ac_w) const;

    /// Conversion loss at `dc_load` (AC input minus DC output).
    [[nodiscard]] util::watts_t loss(util::watts_t dc_load) const;

    [[nodiscard]] util::watts_t rated_output() const { return rated_; }

private:
    util::watts_t rated_{2000.0};
    util::linear_interpolator eff_;
};

}  // namespace ltsc::power
