#include "power/active_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ltsc::power {

active_model::active_model(double coeff_w_per_pct, const active_split& split,
                           double cpu_shape_exponent)
    : coeff_(coeff_w_per_pct), split_(split), gamma_(cpu_shape_exponent) {
    util::ensure(coeff_w_per_pct >= 0.0, "active_model: negative coefficient");
    util::ensure(split.cpu >= 0.0 && split.memory >= 0.0 && split.other >= 0.0,
                 "active_model: negative split fraction");
    util::ensure(std::fabs(split.cpu + split.memory + split.other - 1.0) < 1e-6,
                 "active_model: split fractions must sum to 1");
    util::ensure(cpu_shape_exponent > 0.0 && cpu_shape_exponent <= 1.0,
                 "active_model: shape exponent out of (0, 1]");
}

util::watts_t active_model::total(double u_pct) const {
    util::ensure(u_pct >= 0.0 && u_pct <= 100.0, "active_model: utilization out of [0, 100]");
    return util::watts_t{coeff_ * u_pct};
}

util::watts_t active_model::cpu(double u_pct) const {
    const double total_w = total(u_pct).value();
    if (u_pct <= 0.0) {
        return util::watts_t{0.0};
    }
    // gamma == 1 (the default, proportional shaping) bypasses pow();
    // IEEE 754 guarantees pow(x, 1.0) == x, so the result is identical.
    const double frac = u_pct / 100.0;
    const double shape = gamma_ == 1.0 ? frac : std::pow(frac, gamma_);
    const double shaped = split_.cpu * coeff_ * 100.0 * shape;
    return util::watts_t{std::min(total_w, shaped)};
}

util::watts_t active_model::memory(double u_pct) const {
    const double rest = total(u_pct).value() - cpu(u_pct).value();
    const double denom = split_.memory + split_.other;
    if (denom <= 0.0) {
        return util::watts_t{0.0};
    }
    return util::watts_t{rest * split_.memory / denom};
}

util::watts_t active_model::other(double u_pct) const {
    return total(u_pct) - cpu(u_pct) - memory(u_pct);
}

}  // namespace ltsc::power
