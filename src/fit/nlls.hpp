// Levenberg-Marquardt nonlinear least squares.
//
// The paper's leakage model P_leak = C + k2 * e^(k3 * T) is nonlinear in
// k3; the characterization pipeline recovers (C, k2, k3) from sweep data
// with this solver.  The residual interface is generic: the caller closes
// over its data set and returns one residual per observation.
#pragma once

#include <functional>
#include <vector>

namespace ltsc::fit {

/// Residual function: maps a parameter vector to one residual per
/// observation (model(params, x_i) - y_i).
using residual_fn = std::function<std::vector<double>(const std::vector<double>&)>;

/// Options controlling the Levenberg-Marquardt iteration.
struct nlls_options {
    int max_iterations = 200;      ///< Outer iteration cap.
    double gradient_tol = 1e-10;   ///< Stop when ||J^T r||_inf falls below.
    double step_tol = 1e-12;       ///< Stop when the relative step falls below.
    double initial_lambda = 1e-3;  ///< Initial damping factor.
    double lambda_up = 10.0;       ///< Damping multiplier on rejected steps.
    double lambda_down = 0.5;      ///< Damping multiplier on accepted steps.
    double jacobian_step = 1e-6;   ///< Relative finite-difference step.
};

/// Result of a nonlinear fit.
struct nlls_result {
    std::vector<double> parameters;  ///< Best parameters found.
    double rmse = 0.0;               ///< Root-mean-square residual at the optimum.
    double initial_rmse = 0.0;       ///< RMSE at the starting point.
    int iterations = 0;              ///< Outer iterations performed.
    bool converged = false;          ///< Whether a stopping criterion fired.
};

/// Minimizes 0.5 * ||r(p)||^2 starting from `initial`.  The Jacobian is
/// computed by forward finite differences.  Throws when the residual
/// vector is empty, its size changes between calls, or numerics break down.
[[nodiscard]] nlls_result levenberg_marquardt(const residual_fn& residuals,
                                              std::vector<double> initial,
                                              const nlls_options& options = {});

}  // namespace ltsc::fit
