#include "fit/linreg.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ltsc::fit {

linreg_result least_squares(const util::matrix& design, const std::vector<double>& y) {
    util::ensure(design.rows() == y.size(), "least_squares: row count mismatch");
    util::ensure(design.rows() >= design.cols(), "least_squares: underdetermined system");
    const util::matrix xt = design.transposed();
    const util::matrix xtx = xt * design;
    const std::vector<double> xty = xt * y;
    linreg_result out;
    out.coefficients = util::solve(xtx, xty);

    std::vector<double> predicted(y.size(), 0.0);
    for (std::size_t r = 0; r < design.rows(); ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < design.cols(); ++c) {
            acc += design(r, c) * out.coefficients[c];
        }
        predicted[r] = acc;
    }
    out.rmse = util::rmse(y, predicted);
    // R^2 is undefined for constant targets; report 1.0 when the fit is
    // exact and 0.0 otherwise rather than throwing.
    double ss_tot = 0.0;
    const double m = util::mean(y);
    for (double v : y) {
        ss_tot += (v - m) * (v - m);
    }
    if (ss_tot > 0.0) {
        out.r_squared = util::r_squared(y, predicted);
    } else {
        out.r_squared = out.rmse == 0.0 ? 1.0 : 0.0;
    }
    return out;
}

linreg_result fit_line(const std::vector<double>& x, const std::vector<double>& y) {
    util::ensure(x.size() == y.size() && x.size() >= 2, "fit_line: need >= 2 points");
    util::matrix design(x.size(), 2);
    for (std::size_t i = 0; i < x.size(); ++i) {
        design(i, 0) = x[i];
        design(i, 1) = 1.0;
    }
    return least_squares(design, y);
}

linreg_result fit_proportional(const std::vector<double>& x, const std::vector<double>& y) {
    util::ensure(x.size() == y.size() && !x.empty(), "fit_proportional: empty input");
    util::matrix design(x.size(), 1);
    for (std::size_t i = 0; i < x.size(); ++i) {
        design(i, 0) = x[i];
    }
    return least_squares(design, y);
}

}  // namespace ltsc::fit
