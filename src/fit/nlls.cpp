#include "fit/nlls.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/matrix.hpp"

namespace ltsc::fit {

namespace {

/// Sum of squared residuals; +infinity when any residual is non-finite
/// (an overflowing trial step must be rejected, not fatal).
double sum_squares_or_inf(const std::vector<double>& r) {
    double acc = 0.0;
    for (double v : r) {
        if (!std::isfinite(v)) {
            return std::numeric_limits<double>::infinity();
        }
        acc += v * v;
    }
    return acc;
}

double sum_squares(const std::vector<double>& r) {
    const double acc = sum_squares_or_inf(r);
    util::ensure_numeric(std::isfinite(acc), "levenberg_marquardt: non-finite residual");
    return acc;
}

/// Forward-difference Jacobian: J(i, j) = d r_i / d p_j.
util::matrix numeric_jacobian(const residual_fn& residuals, const std::vector<double>& p,
                              const std::vector<double>& r0, double rel_step) {
    util::matrix jac(r0.size(), p.size());
    std::vector<double> probe = p;
    for (std::size_t j = 0; j < p.size(); ++j) {
        const double h = rel_step * std::max(1.0, std::fabs(p[j]));
        probe[j] = p[j] + h;
        const std::vector<double> r1 = residuals(probe);
        util::ensure(r1.size() == r0.size(), "levenberg_marquardt: residual size changed");
        for (std::size_t i = 0; i < r0.size(); ++i) {
            jac(i, j) = (r1[i] - r0[i]) / h;
        }
        probe[j] = p[j];
    }
    return jac;
}

}  // namespace

nlls_result levenberg_marquardt(const residual_fn& residuals, std::vector<double> initial,
                                const nlls_options& options) {
    util::ensure(!initial.empty(), "levenberg_marquardt: empty parameter vector");
    std::vector<double> p = std::move(initial);
    std::vector<double> r = residuals(p);
    util::ensure(!r.empty(), "levenberg_marquardt: empty residual vector");
    util::ensure(r.size() >= p.size(), "levenberg_marquardt: fewer residuals than parameters");

    double cost = sum_squares(r);
    const std::size_t n = p.size();
    double lambda = options.initial_lambda;

    nlls_result out;
    out.initial_rmse = std::sqrt(cost / static_cast<double>(r.size()));

    for (int iter = 0; iter < options.max_iterations; ++iter) {
        out.iterations = iter + 1;
        const util::matrix jac = numeric_jacobian(residuals, p, r, options.jacobian_step);
        const util::matrix jt = jac.transposed();
        const util::matrix jtj = jt * jac;
        const std::vector<double> grad = jt * r;

        double grad_inf = 0.0;
        for (double g : grad) {
            grad_inf = std::max(grad_inf, std::fabs(g));
        }
        if (grad_inf < options.gradient_tol) {
            out.converged = true;
            break;
        }

        bool step_accepted = false;
        for (int attempt = 0; attempt < 30 && !step_accepted; ++attempt) {
            // (J^T J + lambda * diag(J^T J)) delta = -J^T r
            util::matrix damped = jtj;
            for (std::size_t i = 0; i < n; ++i) {
                const double d = jtj(i, i);
                damped(i, i) = d + lambda * std::max(d, 1e-12);
            }
            std::vector<double> rhs(n);
            for (std::size_t i = 0; i < n; ++i) {
                rhs[i] = -grad[i];
            }
            std::vector<double> delta;
            try {
                delta = util::solve(damped, rhs);
            } catch (const util::numeric_error&) {
                lambda *= options.lambda_up;
                continue;
            }

            std::vector<double> candidate = p;
            double step_norm = 0.0;
            double p_norm = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                candidate[i] += delta[i];
                step_norm += delta[i] * delta[i];
                p_norm += p[i] * p[i];
            }
            const std::vector<double> r_new = residuals(candidate);
            util::ensure(r_new.size() == r.size(), "levenberg_marquardt: residual size changed");
            const double cost_new = sum_squares_or_inf(r_new);
            if (cost_new < cost) {
                p = std::move(candidate);
                r = r_new;
                cost = cost_new;
                lambda = std::max(1e-12, lambda * options.lambda_down);
                step_accepted = true;
                if (std::sqrt(step_norm) < options.step_tol * (std::sqrt(p_norm) + options.step_tol)) {
                    out.converged = true;
                }
            } else {
                lambda *= options.lambda_up;
            }
        }
        if (!step_accepted || out.converged) {
            out.converged = out.converged || !step_accepted;
            break;
        }
    }

    out.parameters = std::move(p);
    out.rmse = std::sqrt(cost / static_cast<double>(r.size()));
    return out;
}

}  // namespace ltsc::fit
