// Ordinary least squares over an explicit design matrix.
//
// Used to fit the linear active-power model P_active = k1 * U (Eqn. 2 of
// the paper) and as the inner solver of the Levenberg-Marquardt updates.
#pragma once

#include <vector>

#include "util/matrix.hpp"

namespace ltsc::fit {

/// Result of a least-squares fit.
struct linreg_result {
    std::vector<double> coefficients;  ///< One per design-matrix column.
    double rmse = 0.0;                 ///< Root-mean-square residual.
    double r_squared = 0.0;            ///< Coefficient of determination.
};

/// Solves min ||X beta - y||_2 via the normal equations (the design
/// matrices in this library are tiny and well-conditioned).  Throws when
/// dimensions are inconsistent or the normal matrix is singular.
[[nodiscard]] linreg_result least_squares(const util::matrix& design, const std::vector<double>& y);

/// Fits y = a * x + b.  Returns {a, b}.
[[nodiscard]] linreg_result fit_line(const std::vector<double>& x, const std::vector<double>& y);

/// Fits y = a * x through the origin.  Returns {a}.
[[nodiscard]] linreg_result fit_proportional(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace ltsc::fit
