// Temperature-tracking PID fan controller (ablation).
//
// A continuous alternative to the bang-bang policy: regulate the maximum
// CPU temperature to a setpoint (the energy-optimal ~70 degC of Fig. 2(a))
// by proportional-integral-derivative action on the fan speed.  Like the
// bang-bang controller it is reactive — it cannot anticipate load changes
// — but it avoids the bang-bang's oscillation between discrete steps.
#pragma once

#include "core/controller.hpp"

namespace ltsc::core {

/// PID gains and limits.  Positive error (too hot) must raise RPM, so the
/// gains act on (T - setpoint).
struct pid_config {
    double setpoint_c = 70.0;        ///< Target max CPU temperature.
    double kp = 120.0;               ///< RPM per degC.
    double ki = 2.0;                 ///< RPM per degC-second.
    double kd = 300.0;               ///< RPM per degC/second.
    util::seconds_t period{10.0};    ///< Decision cadence (CSTH polling).
    util::rpm_t min_rpm{1800.0};
    util::rpm_t max_rpm{4200.0};
    /// Deadband: command changes smaller than this are suppressed to keep
    /// the fan-change count sane.
    util::rpm_t deadband{150.0};
};

/// PID regulator on max CPU temperature.
class pid_controller final : public fan_controller {
public:
    explicit pid_controller(const pid_config& config = {});

    [[nodiscard]] util::seconds_t polling_period() const override;
    [[nodiscard]] std::optional<util::rpm_t> decide(const controller_inputs& in) override;
    [[nodiscard]] std::string name() const override { return "PID"; }
    void reset() override;

    [[nodiscard]] const pid_config& config() const { return config_; }

private:
    pid_config config_;
    double integral_ = 0.0;
    double prev_error_ = 0.0;
    bool has_prev_ = false;
    double prev_time_s_ = 0.0;
};

}  // namespace ltsc::core
