// Section-IV pipeline: from sweep measurements to a fitted power model
// and the controller LUT.
//
// The paper's methodology, reproduced end to end:
//   1. Sweep utilization x fan speed and measure steady operating points
//      (sim/experiment.hpp provides the sweep).
//   2. Fit  P - P_fan = c0 + k1 * U + k2 * e^(k3 * T)  by nonlinear least
//      squares.  c0 absorbs the base power plus the leakage offset C; k2
//      and k3 are directly comparable with the paper's published 0.3231
//      and 0.04749.
//   3. For each utilization level, pick the fan speed minimizing measured
//      fan power plus *model-predicted* leakage, subject to the 75 degC
//      reliability cap -> the LUT the runtime controller uses.
#pragma once

#include <vector>

#include "core/fan_lut.hpp"
#include "sim/experiment.hpp"

namespace ltsc::core {

/// Fitted parameters of the paper's Eqn. 1/2 power decomposition.
struct power_model_fit {
    double c0_w = 0.0;        ///< Utilization/temperature-independent offset.
    double k1_w_per_pct = 0;  ///< Active power slope (system-level).
    double k2_w = 0.0;        ///< Leakage exponential prefactor.
    double k3_per_c = 0.0;    ///< Leakage exponential temperature coefficient.
    double rmse_w = 0.0;      ///< Fit residual (the paper reports 2.243 W).
    double r_squared = 0.0;   ///< Goodness of fit (the paper reports 98 %).
    bool converged = false;   ///< Solver status.

    /// Model prediction of P_total - P_fan at a given point.
    [[nodiscard]] double predict(double utilization_pct, double cpu_temp_c) const;

    /// Leakage component (relative to its value at `ref_temp_c`).
    [[nodiscard]] double leakage_at(double cpu_temp_c) const;
};

/// Fits the power model to sweep data.  Requires points spanning at least
/// two distinct utilizations and two distinct temperatures.
[[nodiscard]] power_model_fit fit_power_model(const std::vector<sim::steady_point>& points);

/// Options for LUT generation.
struct lut_build_options {
    double max_cpu_temp_c = 75.0;  ///< Reliability cap (paper Section IV).
    /// Candidate fan speeds (defaults to the paper's 1800..4200 grid when
    /// empty).
    std::vector<util::rpm_t> candidate_rpms;
};

/// Builds the LUT from sweep data and a fitted model: for each utilization
/// level present in `points`, selects the candidate RPM minimizing
/// (measured fan power + fitted leakage at the measured steady
/// temperature), subject to the temperature cap.  When every candidate
/// violates the cap the fastest fan wins.
[[nodiscard]] fan_lut build_lut(const std::vector<sim::steady_point>& points,
                                const power_model_fit& fit, const lut_build_options& options = {});

/// Convenience: sweep + fit + LUT in one call against a simulator.
struct characterization_result {
    std::vector<sim::steady_point> sweep;
    power_model_fit fit;
    fan_lut lut;
};

[[nodiscard]] characterization_result characterize(sim::server_simulator& sim,
                                                   const lut_build_options& options = {});

/// The *measured* characterization path: instead of jumping to analytic
/// steady states, runs the paper's full Section-IV protocol for every
/// (utilization, fan-speed) pair and extracts the operating point from
/// CSTH telemetry averaged over the last 10 minutes of the load window —
/// sensor noise, quantization and 10 s sampling included.  Slower than
/// `run_steady_sweep` but validates that the shortcut agrees with what a
/// real measurement campaign would produce.
///
/// Only externally measurable fields are populated: utilization, fan RPM,
/// CPU/DIMM temperatures, fan power and total power.  The leakage and
/// active components are not separately observable on the real machine
/// (that separation is exactly what the model fit provides) and are left
/// at zero.
[[nodiscard]] std::vector<sim::steady_point> measure_protocol_sweep(
    sim::server_simulator& sim, const std::vector<double>& utilizations,
    const std::vector<util::rpm_t>& fan_speeds, const sim::protocol_timing& timing = {});

}  // namespace ltsc::core
