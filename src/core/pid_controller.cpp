#include "core/pid_controller.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ltsc::core {

pid_controller::pid_controller(const pid_config& config) : config_(config) {
    util::ensure(config.period.value() > 0.0, "pid_controller: bad period");
    util::ensure(config.max_rpm > config.min_rpm, "pid_controller: bad RPM range");
    util::ensure(config.kp >= 0.0 && config.ki >= 0.0 && config.kd >= 0.0,
                 "pid_controller: negative gain");
    util::ensure(config.deadband.value() >= 0.0, "pid_controller: negative deadband");
}

util::seconds_t pid_controller::polling_period() const { return config_.period; }

std::optional<util::rpm_t> pid_controller::decide(const controller_inputs& in) {
    const double error = in.max_cpu_temp.value() - config_.setpoint_c;
    const double dt = has_prev_ ? std::max(1e-6, in.now.value() - prev_time_s_)
                                : config_.period.value();

    // Conditional integration: freeze the integral while the actuator is
    // saturated in the direction of the error (anti-windup).
    const double rpm = in.current_rpm.value();
    const bool sat_high = rpm >= config_.max_rpm.value() && error > 0.0;
    const bool sat_low = rpm <= config_.min_rpm.value() && error < 0.0;
    if (!sat_high && !sat_low) {
        integral_ += error * dt;
    }
    const double derivative = has_prev_ ? (error - prev_error_) / dt : 0.0;
    prev_error_ = error;
    prev_time_s_ = in.now.value();
    has_prev_ = true;

    const double target_raw = config_.min_rpm.value() + config_.kp * error +
                              config_.ki * integral_ + config_.kd * derivative;
    const double target =
        std::clamp(target_raw, config_.min_rpm.value(), config_.max_rpm.value());
    if (std::fabs(target - rpm) < config_.deadband.value()) {
        return std::nullopt;
    }
    return util::rpm_t{target};
}

void pid_controller::reset() {
    integral_ = 0.0;
    prev_error_ = 0.0;
    has_prev_ = false;
    prev_time_s_ = 0.0;
}

}  // namespace ltsc::core
