#include "core/characterization.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "fit/nlls.hpp"
#include "power/fan_model.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace ltsc::core {

double power_model_fit::predict(double utilization_pct, double cpu_temp_c) const {
    return c0_w + k1_w_per_pct * utilization_pct + k2_w * std::exp(k3_per_c * cpu_temp_c);
}

double power_model_fit::leakage_at(double cpu_temp_c) const {
    return k2_w * std::exp(k3_per_c * cpu_temp_c);
}

power_model_fit fit_power_model(const std::vector<sim::steady_point>& points) {
    util::ensure(points.size() >= 8, "fit_power_model: need >= 8 sweep points");
    {
        double u_min = points.front().utilization_pct;
        double u_max = u_min;
        double t_min = points.front().avg_cpu_temp_c;
        double t_max = t_min;
        for (const auto& p : points) {
            u_min = std::min(u_min, p.utilization_pct);
            u_max = std::max(u_max, p.utilization_pct);
            t_min = std::min(t_min, p.avg_cpu_temp_c);
            t_max = std::max(t_max, p.avg_cpu_temp_c);
        }
        util::ensure(u_max - u_min > 1.0, "fit_power_model: no utilization spread");
        util::ensure(t_max - t_min > 1.0, "fit_power_model: no temperature spread");
    }

    // Residuals of P_total - P_fan against c0 + k1 U + k2 e^(k3 T).
    const auto residuals = [&points](const std::vector<double>& p) {
        std::vector<double> r;
        r.reserve(points.size());
        for (const auto& pt : points) {
            const double target = pt.total_power_w - pt.fan_power_w;
            const double model = p[0] + p[1] * pt.utilization_pct + p[2] * std::exp(p[3] * pt.avg_cpu_temp_c);
            r.push_back(model - target);
        }
        return r;
    };

    // Starting point: slope from the utilization extremes, a small
    // exponential seed; LM handles the rest.
    const std::vector<double> initial{300.0, 2.0, 0.1, 0.03};
    const fit::nlls_result res = fit::levenberg_marquardt(residuals, initial);

    power_model_fit out;
    out.c0_w = res.parameters[0];
    out.k1_w_per_pct = res.parameters[1];
    out.k2_w = res.parameters[2];
    out.k3_per_c = res.parameters[3];
    out.rmse_w = res.rmse;
    out.converged = res.converged;

    std::vector<double> actual;
    std::vector<double> predicted;
    actual.reserve(points.size());
    predicted.reserve(points.size());
    for (const auto& pt : points) {
        actual.push_back(pt.total_power_w - pt.fan_power_w);
        predicted.push_back(out.predict(pt.utilization_pct, pt.avg_cpu_temp_c));
    }
    out.r_squared = util::r_squared(actual, predicted);
    return out;
}

fan_lut build_lut(const std::vector<sim::steady_point>& points, const power_model_fit& fit,
                  const lut_build_options& options) {
    util::ensure(!points.empty(), "build_lut: no sweep points");
    const std::vector<util::rpm_t> candidates =
        options.candidate_rpms.empty() ? power::paper_rpm_settings() : options.candidate_rpms;
    util::ensure(!candidates.empty(), "build_lut: no candidate RPMs");

    // Group the sweep by utilization level.
    std::map<double, std::vector<const sim::steady_point*>> by_util;
    for (const auto& p : points) {
        by_util[p.utilization_pct].push_back(&p);
    }

    std::vector<lut_entry> entries;
    for (const auto& [util_pct, group] : by_util) {
        const sim::steady_point* best = nullptr;
        double best_cost = 0.0;
        const sim::steady_point* fastest = nullptr;
        for (util::rpm_t rpm : candidates) {
            // Find the sweep point at this (utilization, rpm).
            const sim::steady_point* match = nullptr;
            for (const sim::steady_point* p : group) {
                if (std::fabs(p->fan_rpm - rpm.value()) < 1.0) {
                    match = p;
                    break;
                }
            }
            if (match == nullptr) {
                continue;
            }
            if (fastest == nullptr || match->fan_rpm > fastest->fan_rpm) {
                fastest = match;
            }
            if (match->avg_cpu_temp_c > options.max_cpu_temp_c) {
                continue;  // violates the reliability cap
            }
            const double cost = match->fan_power_w + fit.leakage_at(match->avg_cpu_temp_c);
            if (best == nullptr || cost < best_cost) {
                best = match;
                best_cost = cost;
            }
        }
        const sim::steady_point* chosen = best != nullptr ? best : fastest;
        util::ensure(chosen != nullptr, "build_lut: no candidate matched the sweep grid");
        lut_entry e;
        e.utilization_pct = util_pct;
        e.rpm = util::rpm_t{chosen->fan_rpm};
        e.expected_cpu_temp_c = chosen->avg_cpu_temp_c;
        e.expected_fan_leak_w = chosen->fan_power_w + fit.leakage_at(chosen->avg_cpu_temp_c);
        entries.push_back(e);
    }
    return fan_lut(std::move(entries));
}

std::vector<sim::steady_point> measure_protocol_sweep(sim::server_simulator& sim,
                                                      const std::vector<double>& utilizations,
                                                      const std::vector<util::rpm_t>& fan_speeds,
                                                      const sim::protocol_timing& timing) {
    util::ensure(!utilizations.empty() && !fan_speeds.empty(),
                 "measure_protocol_sweep: empty sweep axes");
    const workload::loadgen_config lg{};
    std::vector<sim::steady_point> out;
    out.reserve(utilizations.size() * fan_speeds.size());
    for (double u : utilizations) {
        for (util::rpm_t rpm : fan_speeds) {
            sim::run_protocol_experiment(sim, rpm, u, timing, lg);
            // Measurement window: the settled tail of the load phase.  The
            // span must be an integer number of LoadGen PWM periods or the
            // duty-cycle average is biased by the partial period.
            const double w1 = timing.stabilization.value() + timing.load_window.value();
            const double periods =
                std::floor(std::min(600.0, timing.load_window.value() * 0.4) /
                           lg.pwm_period.value());
            const double span = std::max(1.0, periods) * lg.pwm_period.value();
            const double w0 = std::max(timing.stabilization.value(), w1 - span);

            const auto channel_mean = [&](const std::string& name) {
                const util::column_view h = sim.telemetry().by_name(name).history();
                return h.mean(w0, w1);
            };
            sim::steady_point p;
            p.utilization_pct = u;
            p.fan_rpm = rpm.value();
            p.avg_cpu_temp_c = 0.25 * (channel_mean("cpu0_temp_a") + channel_mean("cpu0_temp_b") +
                                       channel_mean("cpu1_temp_a") + channel_mean("cpu1_temp_b"));
            p.dimm_temp_c = sim.trace().dimm_temp().mean(w0, w1);
            p.fan_power_w = channel_mean("fan_power");
            p.total_power_w = channel_mean("system_power");
            out.push_back(p);
        }
    }
    return out;
}

characterization_result characterize(sim::server_simulator& sim,
                                     const lut_build_options& options) {
    characterization_result out;
    std::vector<double> utils = sim::paper_utilization_levels();
    // Include idle so the LUT has an entry for near-zero utilization.
    utils.insert(utils.begin(), 0.0);
    const std::vector<util::rpm_t> rpms =
        options.candidate_rpms.empty() ? power::paper_rpm_settings() : options.candidate_rpms;
    out.sweep = sim::run_steady_sweep(sim, utils, rpms);
    out.fit = fit_power_model(out.sweep);
    out.lut = build_lut(out.sweep, out.fit, options);
    return out;
}

}  // namespace ltsc::core
