// Runtime that wires a controller to the simulated server.
//
// Plays the DLC-PC's role: polls the utilization (sar/mpstat emulation)
// and the CSTH sensor snapshot at the controller's cadence, forwards the
// observations, and actuates the returned fan commands.  Also owns the
// end-to-end "run a test" flow used by Table I: bind workload, force the
// cold start, let the controller drive, then extract metrics.
#pragma once

#include <string>
#include <vector>

#include "core/controller.hpp"
#include "sim/fleet.hpp"
#include "sim/metrics.hpp"
#include "sim/server_batch.hpp"
#include "sim/server_simulator.hpp"
#include "workload/profile.hpp"

namespace ltsc::core {

/// plant_access over a scalar server_simulator (what run_controlled
/// attaches; public so benches/tests can drive predictive controllers
/// outside the runtime loop).
class simulator_plant_view final : public plant_access {
public:
    explicit simulator_plant_view(const sim::server_simulator& sim) : sim_(&sim) {}

    void snapshot_into(sim::server_state& out) const override { sim_->snapshot_state(out); }
    [[nodiscard]] const sim::server_config& plant_config() const override {
        return sim_->config();
    }
    [[nodiscard]] const workload::loadgen* plant_workload() const override {
        return sim_->workload();
    }
    [[nodiscard]] const sim::fault_schedule* plant_fault_schedule() const override {
        return sim_->bound_fault_schedule();
    }

private:
    const sim::server_simulator* sim_;
};

/// plant_access over one server_batch lane (what run_controlled_batch
/// attaches per lane, so fleets of predictive controllers work).
class batch_lane_plant_view final : public plant_access {
public:
    batch_lane_plant_view(const sim::server_batch& batch, std::size_t lane)
        : batch_(&batch), lane_(lane) {}

    void snapshot_into(sim::server_state& out) const override {
        batch_->snapshot_lane_state(lane_, out);
    }
    [[nodiscard]] const sim::server_config& plant_config() const override {
        return batch_->config(lane_);
    }
    [[nodiscard]] const workload::loadgen* plant_workload() const override {
        return batch_->workload(lane_);
    }
    [[nodiscard]] const sim::fault_schedule* plant_fault_schedule() const override {
        return batch_->bound_fault_schedule(lane_);
    }

private:
    const sim::server_batch* batch_;
    std::size_t lane_;
};

/// Runtime tunables.
struct runtime_config {
    util::seconds_t sim_dt{1.0};         ///< Plant integration step.
    util::seconds_t util_window{240.0};  ///< Averaging window of the
                                         ///< utilization measurement; spans
                                         ///< one LoadGen PWM period so the
                                         ///< duty cycling reads as its level.
    util::rpm_t initial_rpm{3300.0};     ///< Fan speed at t = 0 (the stock
                                         ///< default, as on a real machine).
};

/// Runs `controller` against `sim` for the whole `profile` and returns the
/// Table-I metrics row.  The simulator's trace is left in place for
/// figure-level inspection (Fig. 3 uses it).
[[nodiscard]] sim::run_metrics run_controlled(sim::server_simulator& sim,
                                              fan_controller& controller,
                                              const workload::utilization_profile& profile,
                                              const runtime_config& config = {});

/// Batched analog of run_controlled: drives every server_batch lane with
/// its own controller and profile through the shared time base, and
/// returns one Table-I metrics row per lane.  Per lane the observation /
/// decision / actuation sequence is identical to run_controlled, so a
/// lane's metrics are bitwise-identical to an independent scalar run.
/// Controllers are borrowed (one per lane, each owning its state).
/// Profiles may span different durations (ragged fleets): a lane whose
/// profile finishes goes inert — no stepping, recording, or controller
/// polling — while the remaining lanes run to completion.
[[nodiscard]] std::vector<sim::run_metrics> run_controlled_batch(
    sim::server_batch& batch, const std::vector<fan_controller*>& controllers,
    const std::vector<workload::utilization_profile>& profiles,
    const runtime_config& config = {});

/// Sharded analog of run_controlled_batch: each fleet shard runs its
/// lane block as an independent run_controlled_batch on the fleet's
/// thread pool, and the metrics are assembled shard-major — which is
/// global lane order, since shards own contiguous lane blocks.  Shards
/// share no mutable state, so results are invariant under shard count
/// and thread count (per-lane they match a plain run_controlled_batch
/// of the same tier).  Controllers and profiles are indexed by global
/// lane.
[[nodiscard]] std::vector<sim::run_metrics> run_controlled_fleet(
    sim::fleet& fleet, const std::vector<fan_controller*>& controllers,
    const std::vector<workload::utilization_profile>& profiles,
    const runtime_config& config = {});

}  // namespace ltsc::core
