// Runtime that wires a controller to the simulated server.
//
// Plays the DLC-PC's role: polls the utilization (sar/mpstat emulation)
// and the CSTH sensor snapshot at the controller's cadence, forwards the
// observations, and actuates the returned fan commands.  Also owns the
// end-to-end "run a test" flow used by Table I: bind workload, force the
// cold start, let the controller drive, then extract metrics.
#pragma once

#include <string>
#include <vector>

#include "core/controller.hpp"
#include "sim/metrics.hpp"
#include "sim/server_batch.hpp"
#include "sim/server_simulator.hpp"
#include "workload/profile.hpp"

namespace ltsc::core {

/// Runtime tunables.
struct runtime_config {
    util::seconds_t sim_dt{1.0};         ///< Plant integration step.
    util::seconds_t util_window{240.0};  ///< Averaging window of the
                                         ///< utilization measurement; spans
                                         ///< one LoadGen PWM period so the
                                         ///< duty cycling reads as its level.
    util::rpm_t initial_rpm{3300.0};     ///< Fan speed at t = 0 (the stock
                                         ///< default, as on a real machine).
};

/// Runs `controller` against `sim` for the whole `profile` and returns the
/// Table-I metrics row.  The simulator's trace is left in place for
/// figure-level inspection (Fig. 3 uses it).
[[nodiscard]] sim::run_metrics run_controlled(sim::server_simulator& sim,
                                              fan_controller& controller,
                                              const workload::utilization_profile& profile,
                                              const runtime_config& config = {});

/// Batched analog of run_controlled: drives every server_batch lane with
/// its own controller and profile through the shared time base, and
/// returns one Table-I metrics row per lane.  Per lane the observation /
/// decision / actuation sequence is identical to run_controlled, so a
/// lane's metrics are bitwise-identical to an independent scalar run.
/// Controllers are borrowed (one per lane, each owning its state).
/// Profiles may span different durations (ragged fleets): a lane whose
/// profile finishes goes inert — no stepping, recording, or controller
/// polling — while the remaining lanes run to completion.
[[nodiscard]] std::vector<sim::run_metrics> run_controlled_batch(
    sim::server_batch& batch, const std::vector<fan_controller*>& controllers,
    const std::vector<workload::utilization_profile>& profiles,
    const runtime_config& config = {});

}  // namespace ltsc::core
