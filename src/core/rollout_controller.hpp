// Receding-horizon rollout controller (Ogura et al. / Van Damme et al.
// style MPC, specialized to fan-speed control).
//
// Wraps any reactive baseline policy (LUT, bang-bang, ...) and upgrades
// it to a predictive one: at every decision epoch the controller asks
// the baseline for its proposal, surrounds it with a lattice of
// alternatives (hold the current speed, proposal, proposal +/- i*step),
// rolls every candidate out over an H-second horizon on a private
// sim::rollout_engine seeded with a bitwise snapshot of the live plant,
// and commits the first move of the schedule with the lowest predicted
// energy + constraint penalty.  The baseline is consulted (and its
// internal state advanced) exactly once per epoch whether or not its
// proposal wins, so the wrapped policy behaves as it would alone.
//
// Scope: the rollout searches *uniform* (all-pairs) fan schedules and
// consults the baseline through its single-speed decide() surface.  A
// baseline that overrides decide_zones (e.g. zone_lut_controller) has
// its per-zone behavior collapsed through the default zone adapter —
// wrap single-speed policies here; per-zone candidate schedules are a
// ROADMAP follow-on.
//
// Degenerate contract, pinned by the rollout suite: with a zero
// horizon, a single candidate (lattice_radius = 0, include_hold =
// false), no attached plant, or no bound workload, decide() returns the
// baseline's decision untouched — the whole closed-loop trajectory is
// bitwise-identical to running the wrapped controller directly.  A
// rollout decision is a pure function of (plant state, candidate set):
// rollouts run on engine-owned lanes and never perturb the live plant.
//
// Fault handling, pinned by the fault-injection suite: while the plant
// reports an *active* fault (dead fan pair, faulted sensor, telemetry
// outage) and no residual monitor is running, the controller degrades
// to the wrapped baseline — survival beats optimization when the fault
// is uncharacterized.  When the plant runs a fault monitor
// (controller_inputs::monitor_valid) the rollout keeps planning through
// active faults instead: the snapshot carries the degraded fan/sensor
// state into the lanes, so candidates are scored against the crippled
// plant as it actually is, and the lookahead re-plans around a
// known-dead fan rather than abandoning the horizon.  *Scheduled*
// future faults are previewed either way: the plant's bound fault
// campaign is installed on the rollout lanes, so the lookahead replays
// the faults the committed trajectory will hit.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "sim/rollout_engine.hpp"

namespace ltsc::core {

/// Tunables of the rollout controller.
struct rollout_controller_config {
    /// Decision cadence; 0 (the default) inherits the baseline's
    /// polling period, which the degenerate-equivalence contract needs.
    util::seconds_t decision_period{0.0};
    util::seconds_t horizon{180.0};  ///< Lookahead H; 0 disables rollouts.
    util::rpm_t lattice_step{300.0};  ///< Spacing of the candidate lattice.
    std::size_t lattice_radius = 2;   ///< Candidates at proposal +/- 1..radius steps.
    bool include_hold = true;         ///< Also try keeping the current speed.
    util::rpm_t min_rpm{1800.0};      ///< Lattice clamp (legal fan range).
    util::rpm_t max_rpm{4200.0};
    /// Rollout integration/scoring knobs (epoch defaults to the
    /// decision cadence; see rollout_options for the guard semantics).
    util::seconds_t sim_dt{1.0};
    double guard_temp_c = 85.0;
    double guard_penalty_j = 1e9;
    double overshoot_weight_j_per_k = 1e6;
    /// Engine lane budget (extra user-supplied candidates beyond the
    /// lattice must fit too; excess candidates are an error).
    std::size_t max_candidates = 16;
    /// Engine topology/numerics (sharding, pool width, numerics tier).
    /// The defaults keep the engine single-shard, serial, and bitwise —
    /// the degenerate and prediction == realization contracts above
    /// hold only in the bitwise tier (relaxed predictions are
    /// tolerance-close, not bitwise, to the realized trajectory).
    sim::rollout_engine_config engine;
};

/// Hook for user-supplied candidates: called once per decision with the
/// observations and the baseline's proposal; append schedules to `out`
/// (after the built-in lattice, so built-ins win ties).
using candidate_generator = std::function<void(
    const controller_inputs& in, std::optional<util::rpm_t> baseline_cmd,
    std::vector<sim::fan_schedule>& out)>;

/// Predictive fan controller: baseline proposal + lattice + rollout.
class rollout_controller final : public fan_controller {
public:
    explicit rollout_controller(std::unique_ptr<fan_controller> baseline,
                                const rollout_controller_config& config = {},
                                candidate_generator extra_candidates = {});

    [[nodiscard]] util::seconds_t polling_period() const override;
    [[nodiscard]] std::optional<util::rpm_t> decide(const controller_inputs& in) override;
    [[nodiscard]] std::string name() const override;
    void reset() override;
    void attach_plant(const plant_access* plant) override;

    [[nodiscard]] const rollout_controller_config& config() const { return config_; }
    [[nodiscard]] const fan_controller& baseline() const { return *baseline_; }
    /// Scores of the most recent decision's rollout — empty when that
    /// decision was degenerate (no rollout ran); benches report them
    /// for ablation tables.
    [[nodiscard]] const sim::rollout_result& last_rollout() const { return last_; }

private:
    void build_candidates(const controller_inputs& in, std::optional<util::rpm_t> baseline_cmd);

    std::unique_ptr<fan_controller> baseline_;
    rollout_controller_config config_;
    candidate_generator extra_;

    const plant_access* plant_ = nullptr;
    std::unique_ptr<sim::rollout_engine> engine_;
    const workload::loadgen* bound_from_ = nullptr;
    // Fault-campaign sync: which schedule (possibly nullptr = healthy)
    // the engine lanes currently carry.  A separate validity flag keeps
    // "synced to no campaign" distinct from "never synced".
    const sim::fault_schedule* fault_bound_from_ = nullptr;
    bool fault_sync_valid_ = false;

    // Per-decision scratch, reused so deciding does not allocate.
    sim::server_state snapshot_;
    std::vector<sim::fan_schedule> candidates_;
    sim::rollout_result last_;
};

}  // namespace ltsc::core
