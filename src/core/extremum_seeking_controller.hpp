// Model-free extremum-seeking fan controller (ablation).
//
// The LUT controller needs an offline characterization; this ablation asks
// what happens without one.  Extremum seeking performs online
// perturb-and-observe on the fan speed: periodically nudge the RPM one
// step, wait for the plant to settle, compare the measured system power,
// and keep moving in the direction that lowered it.  A temperature guard
// overrides the search above the reliability cap.  It converges to the
// same fan-plus-leakage minimum the LUT encodes — but only after minutes
// of dithering per operating point, which is the argument for the LUT.
#pragma once

#include "core/controller.hpp"

namespace ltsc::core {

/// Tunables of the extremum-seeking policy.
struct extremum_seeking_config {
    util::seconds_t decision_period{120.0};  ///< Settle time between probes.
    util::rpm_t step{600.0};                 ///< Probe step size.
    util::rpm_t min_rpm{1800.0};
    util::rpm_t max_rpm{4200.0};
    double max_cpu_temp_c = 75.0;            ///< Reliability guard.
    /// Utilization change (percent points) that restarts the search; a new
    /// operating point invalidates the previous power comparison.
    double util_restart_delta_pct = 15.0;
};

/// Perturb-and-observe power minimizer.  Uses the wall-power reading in
/// `controller_inputs::system_power` to compare consecutive settled
/// operating points.
class extremum_seeking_controller final : public fan_controller {
public:
    explicit extremum_seeking_controller(const extremum_seeking_config& config = {});

    [[nodiscard]] util::seconds_t polling_period() const override;
    [[nodiscard]] std::optional<util::rpm_t> decide(const controller_inputs& in) override;
    [[nodiscard]] std::string name() const override { return "ExtremumSeek"; }
    void reset() override;

    [[nodiscard]] const extremum_seeking_config& config() const { return config_; }

private:
    extremum_seeking_config config_;
    double direction_ = -1.0;       ///< Current search direction (start downward:
                                    ///< stock speed over-cools).
    bool has_baseline_ = false;
    double baseline_power_w_ = 0.0;
    double last_util_pct_ = 0.0;
    bool has_util_ = false;
};

}  // namespace ltsc::core
