#include "core/lut_controller.hpp"

#include "util/error.hpp"

namespace ltsc::core {

lut_controller::lut_controller(fan_lut table, const lut_controller_config& config)
    : table_(std::move(table)), config_(config) {
    util::ensure(!table_.empty(), "lut_controller: empty LUT");
    util::ensure(config.polling_period.value() > 0.0, "lut_controller: bad polling period");
    util::ensure(config.min_hold.value() >= 0.0, "lut_controller: negative hold time");
    util::ensure(config.emergency_temp_c > 0.0, "lut_controller: bad emergency threshold");
}

util::seconds_t lut_controller::polling_period() const { return config_.polling_period; }

std::optional<util::rpm_t> lut_controller::decide(const controller_inputs& in) {
    // Safety override first: it ignores the rate limiter by design.
    if (in.max_cpu_temp.value() > config_.emergency_temp_c) {
        if (in.current_rpm.value() != config_.emergency_rpm.value()) {
            has_changed_ = true;
            last_change_s_ = in.now.value();
            return config_.emergency_rpm;
        }
        return std::nullopt;
    }

    const util::rpm_t target = table_.lookup(in.utilization_pct);
    if (target.value() == in.current_rpm.value()) {
        return std::nullopt;
    }
    // Rate limit: react immediately to the first change, then lock the
    // speed for min_hold to bound the change frequency.
    if (has_changed_ && in.now.value() - last_change_s_ < config_.min_hold.value()) {
        return std::nullopt;
    }
    has_changed_ = true;
    last_change_s_ = in.now.value();
    return target;
}

void lut_controller::reset() {
    has_changed_ = false;
    last_change_s_ = 0.0;
}

}  // namespace ltsc::core
