#include "core/bang_bang_controller.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ltsc::core {

bang_bang_controller::bang_bang_controller(const bang_bang_thresholds& thresholds, util::rpm_t step,
                                           util::rpm_t min_rpm, util::rpm_t max_rpm)
    : thresholds_(thresholds), step_(step), min_rpm_(min_rpm), max_rpm_(max_rpm) {
    util::ensure(thresholds.floor_c < thresholds.low_c && thresholds.low_c < thresholds.high_c &&
                     thresholds.high_c < thresholds.ceiling_c,
                 "bang_bang_controller: thresholds not strictly ordered");
    util::ensure(step.value() > 0.0, "bang_bang_controller: non-positive step");
    util::ensure(min_rpm.value() > 0.0 && max_rpm > min_rpm,
                 "bang_bang_controller: invalid RPM range");
}

// The paper notes "the time between two consecutive actions of the
// controller is longer than the time it takes for the temperature values
// to cross thresholds": the bang-bang policy acts on a slower clock than
// the 10 s CSTH sampling underneath it.
util::seconds_t bang_bang_controller::polling_period() const { return util::seconds_t{30.0}; }

std::optional<util::rpm_t> bang_bang_controller::decide(const controller_inputs& in) {
    const double t = in.max_cpu_temp.value();
    const double rpm = in.current_rpm.value();

    double target = rpm;
    if (t > thresholds_.ceiling_c) {
        target = max_rpm_.value();
    } else if (t > thresholds_.high_c) {
        target = rpm + step_.value();
    } else if (t < thresholds_.floor_c) {
        target = min_rpm_.value();
    } else if (t < thresholds_.low_c) {
        target = rpm - step_.value();
    } else {
        return std::nullopt;  // inside the 65-75 band: hold
    }
    target = std::clamp(target, min_rpm_.value(), max_rpm_.value());
    if (target == rpm) {
        return std::nullopt;
    }
    return util::rpm_t{target};
}

}  // namespace ltsc::core
