#include "core/fault_monitor.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ltsc::core {

namespace {

// Shared hysteresis: consecutive out-of-band observations escalate
// healthy -> suspect -> failed; consecutive in-band ones clear back to
// healthy.  Counters saturate so snapshots stay bounded.
void update_health(std::uint8_t& health, int& bad, int& good, bool out_of_band, int suspect_after,
                   int fail_after, int clear_after) {
    if (out_of_band) {
        bad = std::min(bad + 1, fail_after);
        good = 0;
    } else {
        good = std::min(good + 1, clear_after);
        bad = 0;
    }
    if (bad >= fail_after) {
        health = static_cast<std::uint8_t>(component_health::failed);
    } else if (bad >= suspect_after && health == static_cast<std::uint8_t>(component_health::healthy)) {
        health = static_cast<std::uint8_t>(component_health::suspect);
    }
    if (good >= clear_after) {
        health = static_cast<std::uint8_t>(component_health::healthy);
    }
}

}  // namespace

const char* to_string(component_health health) {
    switch (health) {
        case component_health::healthy:
            return "healthy";
        case component_health::suspect:
            return "suspect";
        case component_health::failed:
            return "failed";
    }
    return "unknown";
}

fault_monitor::fault_monitor(const fault_monitor_config& config, const fault_monitor_plant& plant)
    : config_(config),
      cpu_idle_each_w_(plant.cpu_idle_each_w),
      dimm_idle_total_w_(plant.dimm_idle_total_w),
      leakage_(plant.leakage),
      active_(plant.active_coeff_w_per_pct, plant.split, plant.cpu_heat_shape_exponent),
      tach_pair_(plant.fan),
      twin_(plant.thermal) {
    util::ensure(config_.sensor_residual_c > 0.0, "fault_monitor: non-positive sensor threshold");
    util::ensure(config_.fan_residual_rpm > 0.0, "fault_monitor: non-positive fan threshold");
    util::ensure(config_.sensor_suspect_polls >= 1 &&
                     config_.sensor_fail_polls >= config_.sensor_suspect_polls &&
                     config_.sensor_clear_polls >= 1,
                 "fault_monitor: bad sensor hysteresis depths");
    util::ensure(config_.fan_suspect_steps >= 1 &&
                     config_.fan_fail_steps >= config_.fan_suspect_steps &&
                     config_.fan_clear_steps >= 1,
                 "fault_monitor: bad fan hysteresis depths");
    util::ensure(config_.sensor_cusum_k_c > 0.0 && config_.sensor_cusum_h_c > 0.0,
                 "fault_monitor: non-positive CUSUM parameters");
    util::ensure(config_.fan_command_grace_steps >= 0,
                 "fault_monitor: negative fan command grace");
    util::ensure(config_.fan_thermal_residual_c > 0.0,
                 "fault_monitor: non-positive fan thermal threshold");
    util::ensure(config_.fan_thermal_suspect_polls >= 1 &&
                     config_.fan_thermal_fail_polls >= config_.fan_thermal_suspect_polls &&
                     config_.fan_thermal_clear_polls >= 1,
                 "fault_monitor: bad fan thermal hysteresis depths");
    util::ensure(plant.fan_pairs == plant.thermal.fan_zones,
                 "fault_monitor: fan pair / zone count mismatch");
    util::ensure(plant.cpu_sensors >= 2 && plant.cpu_sensors % 2 == 0,
                 "fault_monitor: sensors must pair up per die");
    const util::rpm_t floor = tach_pair_.clamp(util::rpm_t{0.0});
    commanded_rpm_.assign(plant.fan_pairs, floor.value());
    fan_prev_rpm_.assign(plant.fan_pairs, floor.value());
    fan_grace_steps_.assign(plant.fan_pairs, 0);
    fan_health_.assign(plant.fan_pairs, 0);
    fan_bad_steps_.assign(plant.fan_pairs, 0);
    fan_good_steps_.assign(plant.fan_pairs, 0);
    fan_thermal_health_.assign(plant.fan_pairs, 0);
    fan_thermal_bad_polls_.assign(plant.fan_pairs, 0);
    fan_thermal_good_polls_.assign(plant.fan_pairs, 0);
    sensor_health_.assign(plant.cpu_sensors, 0);
    sensor_bad_polls_.assign(plant.cpu_sensors, 0);
    sensor_good_polls_.assign(plant.cpu_sensors, 0);
    sensor_residual_.assign(plant.cpu_sensors, 0.0);
    sensor_cusum_pos_.assign(plant.cpu_sensors, 0.0);
    sensor_cusum_neg_.assign(plant.cpu_sensors, 0.0);
    effective_rpm_cache_.assign(plant.fan_pairs, -1.0);
    zone_airflow_scratch_.resize(plant.fan_pairs);
    die_hot_scratch_.assign(plant.cpu_sensors / 2, 0);
}

void fault_monitor::reset(const power::fan_bank& fans, util::celsius_t ambient) {
    util::ensure(fans.pair_count() == commanded_rpm_.size(),
                 "fault_monitor::reset: fan pair count mismatch");
    for (std::size_t i = 0; i < commanded_rpm_.size(); ++i) {
        commanded_rpm_[i] = fans.speed(i).value();
        fan_prev_rpm_[i] = commanded_rpm_[i];
    }
    clear_health();
    sync_ambient(ambient);
    twin_.reset();
    sync_airflow(fans, /*force=*/true);
}

void fault_monitor::settle(double u_pct, double imbalance, util::celsius_t ambient,
                           const power::fan_bank& fans) {
    sync_ambient(ambient);
    sync_airflow(fans, /*force=*/true);
    // Mirrors the plant's settle loops: leakage couples heat to the die
    // temperature, so alternate heat refresh and steady solve until the
    // fixed point (the plant uses the same iteration count).
    for (int i = 0; i < 12; ++i) {
        apply_twin_heat(u_pct, imbalance);
        twin_.settle_to_steady_state();
    }
}

void fault_monitor::observe_fan_command(std::size_t pair_index, util::rpm_t clamped) {
    util::ensure(pair_index < commanded_rpm_.size(),
                 "fault_monitor::observe_fan_command: bad pair");
    if (clamped.value() != commanded_rpm_[pair_index]) {
        fan_prev_rpm_[pair_index] = commanded_rpm_[pair_index];
        fan_grace_steps_[pair_index] = config_.fan_command_grace_steps;
    }
    commanded_rpm_[pair_index] = clamped.value();
}

void fault_monitor::observe_all_fan_commands(util::rpm_t clamped) {
    for (std::size_t i = 0; i < commanded_rpm_.size(); ++i) {
        observe_fan_command(i, clamped);
    }
}

void fault_monitor::step(util::seconds_t dt, double u_inst, double imbalance,
                         util::celsius_t ambient, const power::fan_bank& fans) {
    sync_ambient(ambient);
    sync_airflow(fans, /*force=*/false);
    apply_twin_heat(u_inst, imbalance);
    twin_.step(dt);
    for (std::size_t i = 0; i < fan_health_.size(); ++i) {
        const double tach = fans.effective_speed(i).value();
        double residual = std::fabs(commanded_rpm_[i] - tach);
        // During the grace window after a command change, a tach still
        // reporting the previous command is lag, not a fault.  A rotor
        // matching neither command (dead) keeps counting bad.
        if (fan_grace_steps_[i] > 0) {
            --fan_grace_steps_[i];
            residual = std::min(residual, std::fabs(fan_prev_rpm_[i] - tach));
        }
        update_health(fan_health_[i], fan_bad_steps_[i], fan_good_steps_[i],
                      residual > config_.fan_residual_rpm, config_.fan_suspect_steps,
                      config_.fan_fail_steps, config_.fan_clear_steps);
    }
}

void fault_monitor::on_poll(const std::vector<double>& delivered) {
    util::ensure(delivered.size() == sensor_health_.size(),
                 "fault_monitor::on_poll: sensor count mismatch");
    // Pass 1: residuals and CUSUM accumulation.  Update-then-test with
    // sums clamped to [0, h]: healthy polls (|residual| < k) drain the
    // sums, sustained drifts fill them, and the clamp bounds both the
    // snapshot payload and the post-recovery clear latency.
    const double k = config_.sensor_cusum_k_c;
    const double h = config_.sensor_cusum_h_c;
    for (std::size_t s = 0; s < sensor_health_.size(); ++s) {
        const double residual = delivered[s] - twin_.cpu_die_temp(s / 2).value();
        sensor_residual_[s] = residual;
        sensor_cusum_pos_[s] = std::clamp(sensor_cusum_pos_[s] + residual - k, 0.0, h);
        sensor_cusum_neg_[s] = std::clamp(sensor_cusum_neg_[s] - residual - k, 0.0, h);
    }
    // Pass 2: tach-distrust cross-check.  The twin follows the
    // *tach-reported* airflow, so on honest hardware it tracks the true
    // die bitwise and a die-wide hot divergence can only mean lost
    // cooling a tach failed to report.  When such a die coexists with a
    // command-quiet pair (tach residual currently clean), the monitor
    // blames the quiet pairs — the tach cannot localize which one lies —
    // and leaves the truth-telling sensors alone.
    const std::size_t dies = sensor_health_.size() / 2;
    bool any_die_hot = false;
    for (std::size_t d = 0; d < dies; ++d) {
        die_hot_scratch_[d] =
            std::min(sensor_residual_[2 * d], sensor_residual_[2 * d + 1]) >
                    config_.fan_thermal_residual_c
                ? 1
                : 0;
        any_die_hot = any_die_hot || die_hot_scratch_[d] != 0;
    }
    bool any_quiet_pair = false;
    for (std::size_t i = 0; i < fan_health_.size() && !any_quiet_pair; ++i) {
        any_quiet_pair = fan_bad_steps_[i] == 0;
    }
    const bool attribute_to_fans = any_die_hot && any_quiet_pair;
    // Pass 3: verdicts.  A sensor is out of band on an instantaneous
    // threshold crossing or a CUSUM alarm — unless the divergence is
    // being charged to the fans, in which case every *hot-direction*
    // residual is trusted: once a tach is known to lie, the twin's
    // airflow picture is wrong plant-wide (the dead zone's heat couples
    // into its neighbours through mixing and conduction), so a sensor
    // reading hotter than the twin is corroborating the fan fault, not
    // lying.  Cool-direction residuals — the dangerous lie — are never
    // suppressed.  Attribution can only fire when a tach lies: an
    // honestly-dead pair reads 0 on the tach and the twin models its
    // zone correctly, so this suppression is inert on honest hardware.
    for (std::size_t s = 0; s < sensor_health_.size(); ++s) {
        const bool cusum_alarm = sensor_cusum_pos_[s] >= h || sensor_cusum_neg_[s] >= h;
        bool out_of_band =
            std::fabs(sensor_residual_[s]) > config_.sensor_residual_c || cusum_alarm;
        if (attribute_to_fans && sensor_residual_[s] > 0.0 && sensor_cusum_neg_[s] < h) {
            out_of_band = false;
        }
        update_health(sensor_health_[s], sensor_bad_polls_[s], sensor_good_polls_[s],
                      out_of_band, config_.sensor_suspect_polls, config_.sensor_fail_polls,
                      config_.sensor_clear_polls);
    }
    for (std::size_t i = 0; i < fan_health_.size(); ++i) {
        const bool thermal_bad = attribute_to_fans && fan_bad_steps_[i] == 0;
        update_health(fan_thermal_health_[i], fan_thermal_bad_polls_[i],
                      fan_thermal_good_polls_[i], thermal_bad,
                      config_.fan_thermal_suspect_polls, config_.fan_thermal_fail_polls,
                      config_.fan_thermal_clear_polls);
    }
}

component_health fault_monitor::sensor_health(std::size_t sensor) const {
    util::ensure(sensor < sensor_health_.size(), "fault_monitor::sensor_health: bad sensor");
    return static_cast<component_health>(sensor_health_[sensor]);
}

component_health fault_monitor::fan_health(std::size_t pair_index) const {
    util::ensure(pair_index < fan_health_.size(), "fault_monitor::fan_health: bad pair");
    return static_cast<component_health>(
        std::max(fan_health_[pair_index], fan_thermal_health_[pair_index]));
}

component_health fault_monitor::worst_sensor_health() const {
    std::uint8_t worst = 0;
    for (const std::uint8_t h : sensor_health_) {
        worst = std::max(worst, h);
    }
    return static_cast<component_health>(worst);
}

component_health fault_monitor::worst_fan_health() const {
    std::uint8_t worst = 0;
    for (std::size_t i = 0; i < fan_health_.size(); ++i) {
        worst = std::max({worst, fan_health_[i], fan_thermal_health_[i]});
    }
    return static_cast<component_health>(worst);
}

double fault_monitor::sensor_residual_c(std::size_t sensor) const {
    util::ensure(sensor < sensor_residual_.size(), "fault_monitor::sensor_residual_c: bad sensor");
    return sensor_residual_[sensor];
}

double fault_monitor::sensor_cusum_pos_c(std::size_t sensor) const {
    util::ensure(sensor < sensor_cusum_pos_.size(),
                 "fault_monitor::sensor_cusum_pos_c: bad sensor");
    return sensor_cusum_pos_[sensor];
}

double fault_monitor::sensor_cusum_neg_c(std::size_t sensor) const {
    util::ensure(sensor < sensor_cusum_neg_.size(),
                 "fault_monitor::sensor_cusum_neg_c: bad sensor");
    return sensor_cusum_neg_[sensor];
}

double fault_monitor::die_estimate_c(std::size_t die) const {
    return twin_.cpu_die_temp(die).value();
}

double fault_monitor::max_die_estimate_c() const {
    return std::max(twin_.cpu_die_temp(0).value(), twin_.cpu_die_temp(1).value());
}

void fault_monitor::save_state(fault_monitor_state& out) const {
    twin_.save_state(out.twin);
    out.commanded_rpm = commanded_rpm_;
    out.fan_prev_rpm = fan_prev_rpm_;
    out.fan_grace_steps = fan_grace_steps_;
    out.fan_health = fan_health_;
    out.fan_bad_steps = fan_bad_steps_;
    out.fan_good_steps = fan_good_steps_;
    out.fan_thermal_health = fan_thermal_health_;
    out.fan_thermal_bad_polls = fan_thermal_bad_polls_;
    out.fan_thermal_good_polls = fan_thermal_good_polls_;
    out.sensor_health = sensor_health_;
    out.sensor_bad_polls = sensor_bad_polls_;
    out.sensor_good_polls = sensor_good_polls_;
    out.sensor_residual_c = sensor_residual_;
    out.sensor_cusum_pos_c = sensor_cusum_pos_;
    out.sensor_cusum_neg_c = sensor_cusum_neg_;
}

void fault_monitor::restore_state(const fault_monitor_state& state, const power::fan_bank& fans) {
    util::ensure(state.commanded_rpm.size() == commanded_rpm_.size() &&
                     state.fan_prev_rpm.size() == fan_prev_rpm_.size() &&
                     state.fan_grace_steps.size() == fan_grace_steps_.size() &&
                     state.fan_health.size() == fan_health_.size() &&
                     state.fan_bad_steps.size() == fan_bad_steps_.size() &&
                     state.fan_good_steps.size() == fan_good_steps_.size() &&
                     state.fan_thermal_health.size() == fan_thermal_health_.size() &&
                     state.fan_thermal_bad_polls.size() == fan_thermal_bad_polls_.size() &&
                     state.fan_thermal_good_polls.size() == fan_thermal_good_polls_.size(),
                 "fault_monitor::restore_state: fan state shape mismatch");
    util::ensure(state.sensor_health.size() == sensor_health_.size() &&
                     state.sensor_bad_polls.size() == sensor_bad_polls_.size() &&
                     state.sensor_good_polls.size() == sensor_good_polls_.size() &&
                     state.sensor_residual_c.size() == sensor_residual_.size() &&
                     state.sensor_cusum_pos_c.size() == sensor_cusum_pos_.size() &&
                     state.sensor_cusum_neg_c.size() == sensor_cusum_neg_.size(),
                 "fault_monitor::restore_state: sensor state shape mismatch");
    commanded_rpm_ = state.commanded_rpm;
    fan_prev_rpm_ = state.fan_prev_rpm;
    fan_grace_steps_ = state.fan_grace_steps;
    fan_health_ = state.fan_health;
    fan_bad_steps_ = state.fan_bad_steps;
    fan_good_steps_ = state.fan_good_steps;
    fan_thermal_health_ = state.fan_thermal_health;
    fan_thermal_bad_polls_ = state.fan_thermal_bad_polls;
    fan_thermal_good_polls_ = state.fan_thermal_good_polls;
    sensor_health_ = state.sensor_health;
    sensor_bad_polls_ = state.sensor_bad_polls;
    sensor_good_polls_ = state.sensor_good_polls;
    sensor_residual_ = state.sensor_residual_c;
    sensor_cusum_pos_ = state.sensor_cusum_pos_c;
    sensor_cusum_neg_ = state.sensor_cusum_neg_c;
    // Re-derive airflow from the restored actuators first (the same
    // values the snapshot saw), then overwrite with the exact saved
    // twin state — conductances included — so the round trip is bitwise.
    sync_airflow(fans, /*force=*/true);
    twin_.restore_state(state.twin);
}

void fault_monitor::clear_health() {
    std::fill(fan_grace_steps_.begin(), fan_grace_steps_.end(), 0);
    std::fill(fan_health_.begin(), fan_health_.end(), std::uint8_t{0});
    std::fill(fan_bad_steps_.begin(), fan_bad_steps_.end(), 0);
    std::fill(fan_good_steps_.begin(), fan_good_steps_.end(), 0);
    std::fill(fan_thermal_health_.begin(), fan_thermal_health_.end(), std::uint8_t{0});
    std::fill(fan_thermal_bad_polls_.begin(), fan_thermal_bad_polls_.end(), 0);
    std::fill(fan_thermal_good_polls_.begin(), fan_thermal_good_polls_.end(), 0);
    std::fill(sensor_health_.begin(), sensor_health_.end(), std::uint8_t{0});
    std::fill(sensor_bad_polls_.begin(), sensor_bad_polls_.end(), 0);
    std::fill(sensor_good_polls_.begin(), sensor_good_polls_.end(), 0);
    std::fill(sensor_residual_.begin(), sensor_residual_.end(), 0.0);
    std::fill(sensor_cusum_pos_.begin(), sensor_cusum_pos_.end(), 0.0);
    std::fill(sensor_cusum_neg_.begin(), sensor_cusum_neg_.end(), 0.0);
}

void fault_monitor::sync_ambient(util::celsius_t ambient) {
    if (ambient.value() != twin_.ambient().value()) {
        twin_.set_ambient(ambient);
    }
}

void fault_monitor::sync_airflow(const power::fan_bank& fans, bool force) {
    util::ensure(fans.pair_count() == effective_rpm_cache_.size(),
                 "fault_monitor::sync_airflow: fan pair count mismatch");
    bool changed = force;
    for (std::size_t i = 0; i < effective_rpm_cache_.size() && !changed; ++i) {
        changed = fans.effective_speed(i).value() != effective_rpm_cache_[i];
    }
    if (!changed) {
        return;
    }
    // The twin's airflow comes from the TACH reading, not the plant's
    // true delivery: on honest tachs the two are identical (a stopped
    // rotor reads 0 -> 0 CFM; a spinning one reads its clamped speed),
    // but a lying tach feeds the twin phantom airflow — which is exactly
    // the divergence the thermal cross-check in on_poll() detects.
    for (std::size_t i = 0; i < effective_rpm_cache_.size(); ++i) {
        const double tach = fans.effective_speed(i).value();
        effective_rpm_cache_[i] = tach;
        zone_airflow_scratch_[i] =
            tach == 0.0 ? util::cfm_t{0.0} : tach_pair_.airflow(util::rpm_t{tach});
    }
    twin_.set_zone_airflow(zone_airflow_scratch_);
}

void fault_monitor::apply_twin_heat(double u_pct, double imbalance) {
    const double share[2] = {imbalance, 1.0 - imbalance};
    const util::watts_t cpu_active = active_.cpu(u_pct);
    for (std::size_t s = 0; s < thermal::server_thermal_model::socket_count(); ++s) {
        const util::watts_t die_heat{cpu_idle_each_w_ + cpu_active.value() * share[s] +
                                     leakage_.share_at(twin_.cpu_die_temp(s), 2).value()};
        twin_.set_cpu_heat(s, die_heat);
    }
    twin_.set_dimm_heat(util::watts_t{dimm_idle_total_w_ + active_.memory(u_pct).value()});
    twin_.set_other_heat(active_.other(u_pct));
}

}  // namespace ltsc::core
