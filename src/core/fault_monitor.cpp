#include "core/fault_monitor.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ltsc::core {

namespace {

// Shared hysteresis: consecutive out-of-band observations escalate
// healthy -> suspect -> failed; consecutive in-band ones clear back to
// healthy.  Counters saturate so snapshots stay bounded.
void update_health(std::uint8_t& health, int& bad, int& good, bool out_of_band, int suspect_after,
                   int fail_after, int clear_after) {
    if (out_of_band) {
        bad = std::min(bad + 1, fail_after);
        good = 0;
    } else {
        good = std::min(good + 1, clear_after);
        bad = 0;
    }
    if (bad >= fail_after) {
        health = static_cast<std::uint8_t>(component_health::failed);
    } else if (bad >= suspect_after && health == static_cast<std::uint8_t>(component_health::healthy)) {
        health = static_cast<std::uint8_t>(component_health::suspect);
    }
    if (good >= clear_after) {
        health = static_cast<std::uint8_t>(component_health::healthy);
    }
}

}  // namespace

const char* to_string(component_health health) {
    switch (health) {
        case component_health::healthy:
            return "healthy";
        case component_health::suspect:
            return "suspect";
        case component_health::failed:
            return "failed";
    }
    return "unknown";
}

fault_monitor::fault_monitor(const fault_monitor_config& config, const fault_monitor_plant& plant)
    : config_(config),
      cpu_idle_each_w_(plant.cpu_idle_each_w),
      dimm_idle_total_w_(plant.dimm_idle_total_w),
      leakage_(plant.leakage),
      active_(plant.active_coeff_w_per_pct, plant.split, plant.cpu_heat_shape_exponent),
      twin_(plant.thermal) {
    util::ensure(config_.sensor_residual_c > 0.0, "fault_monitor: non-positive sensor threshold");
    util::ensure(config_.fan_residual_rpm > 0.0, "fault_monitor: non-positive fan threshold");
    util::ensure(config_.sensor_suspect_polls >= 1 &&
                     config_.sensor_fail_polls >= config_.sensor_suspect_polls &&
                     config_.sensor_clear_polls >= 1,
                 "fault_monitor: bad sensor hysteresis depths");
    util::ensure(config_.fan_suspect_steps >= 1 &&
                     config_.fan_fail_steps >= config_.fan_suspect_steps &&
                     config_.fan_clear_steps >= 1,
                 "fault_monitor: bad fan hysteresis depths");
    util::ensure(plant.fan_pairs == plant.thermal.fan_zones,
                 "fault_monitor: fan pair / zone count mismatch");
    util::ensure(plant.cpu_sensors >= 2 && plant.cpu_sensors % 2 == 0,
                 "fault_monitor: sensors must pair up per die");
    const util::rpm_t floor = power::fan_pair(plant.fan).clamp(util::rpm_t{0.0});
    commanded_rpm_.assign(plant.fan_pairs, floor.value());
    fan_health_.assign(plant.fan_pairs, 0);
    fan_bad_steps_.assign(plant.fan_pairs, 0);
    fan_good_steps_.assign(plant.fan_pairs, 0);
    sensor_health_.assign(plant.cpu_sensors, 0);
    sensor_bad_polls_.assign(plant.cpu_sensors, 0);
    sensor_good_polls_.assign(plant.cpu_sensors, 0);
    sensor_residual_.assign(plant.cpu_sensors, 0.0);
    effective_rpm_cache_.assign(plant.fan_pairs, -1.0);
    zone_airflow_scratch_.resize(plant.fan_pairs);
}

void fault_monitor::reset(const power::fan_bank& fans, util::celsius_t ambient) {
    util::ensure(fans.pair_count() == commanded_rpm_.size(),
                 "fault_monitor::reset: fan pair count mismatch");
    for (std::size_t i = 0; i < commanded_rpm_.size(); ++i) {
        commanded_rpm_[i] = fans.speed(i).value();
    }
    clear_health();
    sync_ambient(ambient);
    twin_.reset();
    sync_airflow(fans, /*force=*/true);
}

void fault_monitor::settle(double u_pct, double imbalance, util::celsius_t ambient,
                           const power::fan_bank& fans) {
    sync_ambient(ambient);
    sync_airflow(fans, /*force=*/true);
    // Mirrors the plant's settle loops: leakage couples heat to the die
    // temperature, so alternate heat refresh and steady solve until the
    // fixed point (the plant uses the same iteration count).
    for (int i = 0; i < 12; ++i) {
        apply_twin_heat(u_pct, imbalance);
        twin_.settle_to_steady_state();
    }
}

void fault_monitor::observe_fan_command(std::size_t pair_index, util::rpm_t clamped) {
    util::ensure(pair_index < commanded_rpm_.size(),
                 "fault_monitor::observe_fan_command: bad pair");
    commanded_rpm_[pair_index] = clamped.value();
}

void fault_monitor::observe_all_fan_commands(util::rpm_t clamped) {
    for (double& rpm : commanded_rpm_) {
        rpm = clamped.value();
    }
}

void fault_monitor::step(util::seconds_t dt, double u_inst, double imbalance,
                         util::celsius_t ambient, const power::fan_bank& fans) {
    sync_ambient(ambient);
    sync_airflow(fans, /*force=*/false);
    apply_twin_heat(u_inst, imbalance);
    twin_.step(dt);
    for (std::size_t i = 0; i < fan_health_.size(); ++i) {
        const double residual = std::fabs(commanded_rpm_[i] - fans.effective_speed(i).value());
        update_health(fan_health_[i], fan_bad_steps_[i], fan_good_steps_[i],
                      residual > config_.fan_residual_rpm, config_.fan_suspect_steps,
                      config_.fan_fail_steps, config_.fan_clear_steps);
    }
}

void fault_monitor::on_poll(const std::vector<double>& delivered) {
    util::ensure(delivered.size() == sensor_health_.size(),
                 "fault_monitor::on_poll: sensor count mismatch");
    for (std::size_t s = 0; s < sensor_health_.size(); ++s) {
        const double residual = delivered[s] - twin_.cpu_die_temp(s / 2).value();
        sensor_residual_[s] = residual;
        update_health(sensor_health_[s], sensor_bad_polls_[s], sensor_good_polls_[s],
                      std::fabs(residual) > config_.sensor_residual_c,
                      config_.sensor_suspect_polls, config_.sensor_fail_polls,
                      config_.sensor_clear_polls);
    }
}

component_health fault_monitor::sensor_health(std::size_t sensor) const {
    util::ensure(sensor < sensor_health_.size(), "fault_monitor::sensor_health: bad sensor");
    return static_cast<component_health>(sensor_health_[sensor]);
}

component_health fault_monitor::fan_health(std::size_t pair_index) const {
    util::ensure(pair_index < fan_health_.size(), "fault_monitor::fan_health: bad pair");
    return static_cast<component_health>(fan_health_[pair_index]);
}

component_health fault_monitor::worst_sensor_health() const {
    std::uint8_t worst = 0;
    for (const std::uint8_t h : sensor_health_) {
        worst = std::max(worst, h);
    }
    return static_cast<component_health>(worst);
}

component_health fault_monitor::worst_fan_health() const {
    std::uint8_t worst = 0;
    for (const std::uint8_t h : fan_health_) {
        worst = std::max(worst, h);
    }
    return static_cast<component_health>(worst);
}

double fault_monitor::sensor_residual_c(std::size_t sensor) const {
    util::ensure(sensor < sensor_residual_.size(), "fault_monitor::sensor_residual_c: bad sensor");
    return sensor_residual_[sensor];
}

double fault_monitor::die_estimate_c(std::size_t die) const {
    return twin_.cpu_die_temp(die).value();
}

double fault_monitor::max_die_estimate_c() const {
    return std::max(twin_.cpu_die_temp(0).value(), twin_.cpu_die_temp(1).value());
}

void fault_monitor::save_state(fault_monitor_state& out) const {
    twin_.save_state(out.twin);
    out.commanded_rpm = commanded_rpm_;
    out.fan_health = fan_health_;
    out.fan_bad_steps = fan_bad_steps_;
    out.fan_good_steps = fan_good_steps_;
    out.sensor_health = sensor_health_;
    out.sensor_bad_polls = sensor_bad_polls_;
    out.sensor_good_polls = sensor_good_polls_;
    out.sensor_residual_c = sensor_residual_;
}

void fault_monitor::restore_state(const fault_monitor_state& state, const power::fan_bank& fans) {
    util::ensure(state.commanded_rpm.size() == commanded_rpm_.size() &&
                     state.fan_health.size() == fan_health_.size() &&
                     state.fan_bad_steps.size() == fan_bad_steps_.size() &&
                     state.fan_good_steps.size() == fan_good_steps_.size(),
                 "fault_monitor::restore_state: fan state shape mismatch");
    util::ensure(state.sensor_health.size() == sensor_health_.size() &&
                     state.sensor_bad_polls.size() == sensor_bad_polls_.size() &&
                     state.sensor_good_polls.size() == sensor_good_polls_.size() &&
                     state.sensor_residual_c.size() == sensor_residual_.size(),
                 "fault_monitor::restore_state: sensor state shape mismatch");
    commanded_rpm_ = state.commanded_rpm;
    fan_health_ = state.fan_health;
    fan_bad_steps_ = state.fan_bad_steps;
    fan_good_steps_ = state.fan_good_steps;
    sensor_health_ = state.sensor_health;
    sensor_bad_polls_ = state.sensor_bad_polls;
    sensor_good_polls_ = state.sensor_good_polls;
    sensor_residual_ = state.sensor_residual_c;
    // Re-derive airflow from the restored actuators first (the same
    // values the snapshot saw), then overwrite with the exact saved
    // twin state — conductances included — so the round trip is bitwise.
    sync_airflow(fans, /*force=*/true);
    twin_.restore_state(state.twin);
}

void fault_monitor::clear_health() {
    std::fill(fan_health_.begin(), fan_health_.end(), std::uint8_t{0});
    std::fill(fan_bad_steps_.begin(), fan_bad_steps_.end(), 0);
    std::fill(fan_good_steps_.begin(), fan_good_steps_.end(), 0);
    std::fill(sensor_health_.begin(), sensor_health_.end(), std::uint8_t{0});
    std::fill(sensor_bad_polls_.begin(), sensor_bad_polls_.end(), 0);
    std::fill(sensor_good_polls_.begin(), sensor_good_polls_.end(), 0);
    std::fill(sensor_residual_.begin(), sensor_residual_.end(), 0.0);
}

void fault_monitor::sync_ambient(util::celsius_t ambient) {
    if (ambient.value() != twin_.ambient().value()) {
        twin_.set_ambient(ambient);
    }
}

void fault_monitor::sync_airflow(const power::fan_bank& fans, bool force) {
    util::ensure(fans.pair_count() == effective_rpm_cache_.size(),
                 "fault_monitor::sync_airflow: fan pair count mismatch");
    bool changed = force;
    for (std::size_t i = 0; i < effective_rpm_cache_.size() && !changed; ++i) {
        changed = fans.effective_speed(i).value() != effective_rpm_cache_[i];
    }
    if (!changed) {
        return;
    }
    for (std::size_t i = 0; i < effective_rpm_cache_.size(); ++i) {
        effective_rpm_cache_[i] = fans.effective_speed(i).value();
        zone_airflow_scratch_[i] = fans.pair_airflow(i);
    }
    twin_.set_zone_airflow(zone_airflow_scratch_);
}

void fault_monitor::apply_twin_heat(double u_pct, double imbalance) {
    const double share[2] = {imbalance, 1.0 - imbalance};
    const util::watts_t cpu_active = active_.cpu(u_pct);
    for (std::size_t s = 0; s < thermal::server_thermal_model::socket_count(); ++s) {
        const util::watts_t die_heat{cpu_idle_each_w_ + cpu_active.value() * share[s] +
                                     leakage_.share_at(twin_.cpu_die_temp(s), 2).value()};
        twin_.set_cpu_heat(s, die_heat);
    }
    twin_.set_dimm_heat(util::watts_t{dimm_idle_total_w_ + active_.memory(u_pct).value()});
    twin_.set_other_heat(active_.other(u_pct));
}

}  // namespace ltsc::core
