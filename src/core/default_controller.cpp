#include "core/default_controller.hpp"

#include "util/error.hpp"

namespace ltsc::core {

default_controller::default_controller() : default_controller(util::rpm_t{3300.0}) {}

default_controller::default_controller(util::rpm_t fixed_rpm) : rpm_(fixed_rpm) {
    util::ensure(fixed_rpm.value() > 0.0, "default_controller: non-positive RPM");
}

util::seconds_t default_controller::polling_period() const { return util::seconds_t{10.0}; }

std::optional<util::rpm_t> default_controller::decide(const controller_inputs& in) {
    if (in.current_rpm.value() == rpm_.value()) {
        return std::nullopt;
    }
    return rpm_;
}

}  // namespace ltsc::core
