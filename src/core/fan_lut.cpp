#include "core/fan_lut.hpp"

#include <algorithm>
#include <ostream>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace ltsc::core {

fan_lut::fan_lut(std::vector<lut_entry> entries) : entries_(std::move(entries)) {
    util::ensure(!entries_.empty(), "fan_lut: empty table");
    std::sort(entries_.begin(), entries_.end(),
              [](const lut_entry& a, const lut_entry& b) {
                  return a.utilization_pct < b.utilization_pct;
              });
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        util::ensure(entries_[i].utilization_pct >= 0.0 && entries_[i].utilization_pct <= 100.0,
                     "fan_lut: utilization out of [0, 100]");
        util::ensure(entries_[i].rpm.value() > 0.0, "fan_lut: non-positive RPM");
        if (i > 0) {
            util::ensure(entries_[i].utilization_pct > entries_[i - 1].utilization_pct,
                         "fan_lut: duplicate utilization level");
        }
    }
}

const lut_entry& fan_lut::entry_for(double utilization_pct) const {
    util::ensure(!entries_.empty(), "fan_lut::entry_for: empty table");
    util::ensure(utilization_pct >= 0.0, "fan_lut::entry_for: negative utilization");
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), utilization_pct,
        [](const lut_entry& e, double u) { return e.utilization_pct < u; });
    if (it == entries_.end()) {
        return entries_.back();
    }
    return *it;
}

util::rpm_t fan_lut::lookup(double utilization_pct) const { return entry_for(utilization_pct).rpm; }

void fan_lut::write_csv(std::ostream& os) const {
    util::csv_writer w(os);
    w.write_header({"utilization_pct", "rpm", "expected_cpu_temp_c", "expected_fan_leak_w"});
    for (const lut_entry& e : entries_) {
        w.write_row({e.utilization_pct, e.rpm.value(), e.expected_cpu_temp_c,
                     e.expected_fan_leak_w});
    }
}

fan_lut fan_lut::from_csv(const std::string& text) {
    const util::csv_document doc = util::parse_csv(text);
    util::ensure(doc.header.size() >= 2, "fan_lut::from_csv: bad header");
    std::vector<lut_entry> entries;
    for (const auto& row : doc.rows) {
        util::ensure(row.size() >= 2, "fan_lut::from_csv: short row");
        lut_entry e;
        e.utilization_pct = std::stod(row[0]);
        e.rpm = util::rpm_t{std::stod(row[1])};
        if (row.size() >= 3) {
            e.expected_cpu_temp_c = std::stod(row[2]);
        }
        if (row.size() >= 4) {
            e.expected_fan_leak_w = std::stod(row[3]);
        }
        entries.push_back(e);
    }
    return fan_lut(std::move(entries));
}

}  // namespace ltsc::core
