// The server's stock cooling policy: a fixed fan speed.
//
// Table I's baseline keeps the fans "close to a fixed speed of 3300 RPM",
// a conservative margin for worst-case ambient/altitude that over-cools
// the machine in normal conditions — exactly the inefficiency the paper
// attacks.
#pragma once

#include "core/controller.hpp"

namespace ltsc::core {

/// Fixed-speed baseline controller.
class default_controller final : public fan_controller {
public:
    /// Uses the paper's 3300 RPM default.
    default_controller();
    /// Fixed speed variant for ablations.
    explicit default_controller(util::rpm_t fixed_rpm);

    [[nodiscard]] util::seconds_t polling_period() const override;
    [[nodiscard]] std::optional<util::rpm_t> decide(const controller_inputs& in) override;
    [[nodiscard]] std::string name() const override { return "Default"; }

    [[nodiscard]] util::rpm_t fixed_rpm() const { return rpm_; }

private:
    util::rpm_t rpm_;
};

}  // namespace ltsc::core
