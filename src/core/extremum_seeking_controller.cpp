#include "core/extremum_seeking_controller.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ltsc::core {

extremum_seeking_controller::extremum_seeking_controller(const extremum_seeking_config& config)
    : config_(config) {
    util::ensure(config.decision_period.value() > 0.0,
                 "extremum_seeking_controller: bad decision period");
    util::ensure(config.step.value() > 0.0, "extremum_seeking_controller: bad step");
    util::ensure(config.max_rpm > config.min_rpm, "extremum_seeking_controller: bad RPM range");
}

util::seconds_t extremum_seeking_controller::polling_period() const {
    return config_.decision_period;
}

std::optional<util::rpm_t> extremum_seeking_controller::decide(const controller_inputs& in) {
    const double rpm = in.current_rpm.value();
    const double power = in.system_power.value();

    // Reliability guard dominates everything.
    if (in.max_cpu_temp.value() > config_.max_cpu_temp_c) {
        has_baseline_ = false;
        const double target = std::min(config_.max_rpm.value(), rpm + config_.step.value());
        if (target != rpm) {
            return util::rpm_t{target};
        }
        return std::nullopt;
    }

    // A large utilization move lands us on a new power curve; previous
    // comparisons are meaningless.
    if (has_util_ &&
        std::fabs(in.utilization_pct - last_util_pct_) > config_.util_restart_delta_pct) {
        has_baseline_ = false;
    }
    last_util_pct_ = in.utilization_pct;
    has_util_ = true;

    if (!has_baseline_) {
        // First settled observation at this operating point: record it and
        // probe downward (the stock policy over-cools, so down is the
        // better first guess).
        has_baseline_ = true;
        baseline_power_w_ = power;
        direction_ = -1.0;
        const double target = std::clamp(rpm + direction_ * config_.step.value(),
                                         config_.min_rpm.value(), config_.max_rpm.value());
        if (target == rpm) {
            direction_ = -direction_;
            return std::nullopt;
        }
        return util::rpm_t{target};
    }

    // Compare the settled power against the pre-move baseline.
    if (power > baseline_power_w_) {
        direction_ = -direction_;  // got worse: turn around
    }
    baseline_power_w_ = power;
    const double target = std::clamp(rpm + direction_ * config_.step.value(),
                                     config_.min_rpm.value(), config_.max_rpm.value());
    if (target == rpm) {
        direction_ = -direction_;  // pinned at a rail: try the other way next time
        return std::nullopt;
    }
    return util::rpm_t{target};
}

void extremum_seeking_controller::reset() {
    direction_ = -1.0;
    has_baseline_ = false;
    has_util_ = false;
    baseline_power_w_ = 0.0;
    last_util_pct_ = 0.0;
}

}  // namespace ltsc::core
