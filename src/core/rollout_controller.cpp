#include "core/rollout_controller.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ltsc::core {

rollout_controller::rollout_controller(std::unique_ptr<fan_controller> baseline,
                                       const rollout_controller_config& config,
                                       candidate_generator extra_candidates)
    : baseline_(std::move(baseline)), config_(config), extra_(std::move(extra_candidates)) {
    util::ensure(baseline_ != nullptr, "rollout_controller: null baseline");
    util::ensure(config_.horizon.value() >= 0.0, "rollout_controller: negative horizon");
    util::ensure(config_.sim_dt.value() > 0.0, "rollout_controller: non-positive sim_dt");
    util::ensure(config_.lattice_radius == 0 || config_.lattice_step.value() > 0.0,
                 "rollout_controller: non-positive lattice step");
    util::ensure(config_.min_rpm.value() <= config_.max_rpm.value(),
                 "rollout_controller: inverted RPM clamp");
    const std::size_t lattice =
        1 + (config_.include_hold ? 1 : 0) + 2 * config_.lattice_radius;
    util::ensure(config_.max_candidates >= lattice,
                 "rollout_controller: max_candidates smaller than the lattice");
}

util::seconds_t rollout_controller::polling_period() const {
    return config_.decision_period.value() > 0.0 ? config_.decision_period
                                                 : baseline_->polling_period();
}

std::string rollout_controller::name() const { return "Rollout(" + baseline_->name() + ")"; }

void rollout_controller::reset() {
    baseline_->reset();
    bound_from_ = nullptr;
    fault_sync_valid_ = false;
    last_ = sim::rollout_result{};
}

void rollout_controller::attach_plant(const plant_access* plant) {
    if (plant == plant_) {
        return;
    }
    plant_ = plant;
    bound_from_ = nullptr;
    fault_sync_valid_ = false;
    // The engine models the plant it was built from, so attaching a
    // different window discards it — reusing one controller across
    // differently-calibrated plants can never silently predict with the
    // wrong model.  Rebuild cost is a K-lane server_batch construction,
    // negligible against a run; a caller holding one window across many
    // decide() calls (the decision benchmark) still pays it once.
    if (plant != nullptr) {
        engine_.reset();
    }
}

void rollout_controller::build_candidates(const controller_inputs& in,
                                          std::optional<util::rpm_t> baseline_cmd) {
    std::size_t n = 0;
    const auto add = [&](double rpm) {
        rpm = std::min(std::max(rpm, config_.min_rpm.value()), config_.max_rpm.value());
        for (std::size_t j = 0; j < n; ++j) {
            if (candidates_[j].moves.size() == 1 && candidates_[j].moves[0].value() == rpm) {
                return;  // lattice duplicate (clamping collapses the edges)
            }
        }
        if (n == candidates_.size()) {
            candidates_.emplace_back();
        }
        candidates_[n].moves.assign(1, util::rpm_t{rpm});
        ++n;
    };
    // Baseline proposal first: ties in the rollout break to the lowest
    // index, so "do what the wrapped controller would have done" wins
    // unless an alternative is strictly better.
    const double base = baseline_cmd.has_value() ? baseline_cmd->value() : in.current_rpm.value();
    add(base);
    if (config_.include_hold) {
        add(in.current_rpm.value());
    }
    for (std::size_t i = 1; i <= config_.lattice_radius; ++i) {
        const double offset = static_cast<double>(i) * config_.lattice_step.value();
        add(base + offset);
        add(base - offset);
    }
    candidates_.resize(n);
    if (extra_) {
        extra_(in, baseline_cmd, candidates_);
    }
}

std::optional<util::rpm_t> rollout_controller::decide(const controller_inputs& in) {
    // Empty unless this decision actually rolls out (capacity is kept,
    // so clearing allocates nothing).
    last_.best = 0;
    last_.scores.clear();
    // The baseline is consulted unconditionally so its internal state
    // (hold timers, integrators) evolves exactly as it would alone.
    std::optional<util::rpm_t> baseline_cmd = baseline_->decide(in);

    const workload::loadgen* workload = plant_ != nullptr ? plant_->plant_workload() : nullptr;
    if (plant_ == nullptr || workload == nullptr || config_.horizon.value() <= 0.0) {
        return baseline_cmd;  // degenerate: bitwise the wrapped controller
    }
    build_candidates(in, baseline_cmd);
    if (candidates_.size() == 1) {
        return baseline_cmd;  // K = 1: the only candidate is the baseline's
    }

    plant_->snapshot_into(snapshot_);
    // Degrade under an active fault only when flying blind: without a
    // residual monitor the optimization's energy margin is noise against
    // the survival problem at hand, so the decision goes to the wrapped
    // reactive baseline (hardened by its own guard band / failsafe
    // wrapper) until the plant is whole again.  With a monitor the fault
    // is *characterized* — the snapshot carries the degraded fan/sensor
    // state, the rollout lanes replay it faithfully, and re-planning
    // around a known-dead fan beats abandoning the lookahead (pinned by
    // the fault-injection suite's energy comparison).  *Scheduled*
    // future faults are previewed either way through the fault-campaign
    // binding below.
    if (snapshot_.fault.any_active(in.now.value()) && !in.monitor_valid) {
        return baseline_cmd;
    }

    if (engine_ == nullptr) {
        engine_ = std::make_unique<sim::rollout_engine>(plant_->plant_config(),
                                                        config_.max_candidates, config_.engine);
    }
    if (bound_from_ != workload) {
        engine_->bind_workload(*workload);
        bound_from_ = workload;
    }
    const sim::fault_schedule* faults = plant_->plant_fault_schedule();
    if (!fault_sync_valid_ || fault_bound_from_ != faults) {
        if (faults != nullptr) {
            engine_->bind_fault_schedule(*faults);
        } else {
            engine_->clear_fault_schedule();
        }
        fault_bound_from_ = faults;
        fault_sync_valid_ = true;
    }

    sim::rollout_options options;
    options.horizon = config_.horizon;
    options.epoch = polling_period();
    options.sim_dt = config_.sim_dt;
    options.guard_temp_c = config_.guard_temp_c;
    options.guard_penalty_j = config_.guard_penalty_j;
    options.overshoot_weight_j_per_k = config_.overshoot_weight_j_per_k;
    last_ = engine_->evaluate(snapshot_, candidates_, options);
    return candidates_[last_.best].moves.front();
}

}  // namespace ltsc::core
