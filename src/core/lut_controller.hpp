// The paper's LUT-based fan controller (Section V).
//
// Polls utilization every second, looks the level up in the offline-built
// LUT, and commands the optimal fan speed — *proactively*, before any
// thermal event, because utilization leads temperature by the thermal time
// constant.  To protect fan reliability under unstable workloads, speed
// changes are rate-limited: after a change the controller holds the new
// speed for one minute (the paper's tradeoff between change count and
// tolerable temperature overshoot).
#pragma once

#include "core/controller.hpp"
#include "core/fan_lut.hpp"

namespace ltsc::core {

/// Tunables of the LUT controller.
struct lut_controller_config {
    util::seconds_t polling_period{1.0};  ///< Utilization poll cadence.
    util::seconds_t min_hold{60.0};       ///< Lockout after an RPM change.
    /// Emergency override: if the max CPU sensor exceeds this, command max
    /// RPM regardless of the lockout (safety net; never triggers in the
    /// paper's tests because the LUT keeps temperature low).
    double emergency_temp_c = 85.0;
    util::rpm_t emergency_rpm{4200.0};
};

/// LUT-addressed, utilization-driven fan controller.
class lut_controller final : public fan_controller {
public:
    lut_controller(fan_lut table, const lut_controller_config& config = {});

    [[nodiscard]] util::seconds_t polling_period() const override;
    [[nodiscard]] std::optional<util::rpm_t> decide(const controller_inputs& in) override;
    [[nodiscard]] std::string name() const override { return "LUT"; }
    void reset() override;

    [[nodiscard]] const fan_lut& table() const { return table_; }
    [[nodiscard]] const lut_controller_config& config() const { return config_; }

private:
    fan_lut table_;
    lut_controller_config config_;
    bool has_changed_ = false;
    double last_change_s_ = 0.0;
};

}  // namespace ltsc::core
