// The lookup table at the heart of the paper's controller.
//
// The LUT maps a workload utilization level to the fan speed that
// minimizes fan-plus-leakage power at that level's steady state, subject
// to a maximum operational temperature (75 degC for reliability).  It is
// generated offline by the characterization pipeline and addressed at run
// time by the measured utilization.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace ltsc::core {

/// One LUT row: for utilization levels up to `utilization_pct`, use
/// `rpm` (staircase semantics, see fan_lut::lookup).
struct lut_entry {
    double utilization_pct = 0.0;
    util::rpm_t rpm{0.0};
    double expected_cpu_temp_c = 0.0;      ///< Predicted steady temperature.
    double expected_fan_leak_w = 0.0;      ///< Predicted fan + leakage power.
};

/// Utilization-indexed fan speed table.
class fan_lut {
public:
    fan_lut() = default;

    /// Builds from rows; they are sorted by utilization and must have
    /// strictly increasing utilization levels in [0, 100].
    explicit fan_lut(std::vector<lut_entry> entries);

    /// Fan speed for a measured utilization: the entry with the smallest
    /// level >= `utilization_pct` (conservative rounding up: between two
    /// characterized levels the table assumes the hotter one).  Above the
    /// last level the last entry applies.  Throws on an empty table.
    [[nodiscard]] util::rpm_t lookup(double utilization_pct) const;

    /// The full entry selected for a utilization (for diagnostics).
    [[nodiscard]] const lut_entry& entry_for(double utilization_pct) const;

    [[nodiscard]] const std::vector<lut_entry>& entries() const { return entries_; }
    [[nodiscard]] bool empty() const { return entries_.empty(); }
    [[nodiscard]] std::size_t size() const { return entries_.size(); }

    /// Serializes as CSV (utilization_pct, rpm, expected_temp_c,
    /// expected_fan_leak_w).
    void write_csv(std::ostream& os) const;

    /// Parses the CSV produced by write_csv.
    [[nodiscard]] static fan_lut from_csv(const std::string& text);

private:
    std::vector<lut_entry> entries_;
};

}  // namespace ltsc::core
