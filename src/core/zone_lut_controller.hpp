// Per-zone LUT fan control (extension).
//
// The paper's server drives its 3 fan pairs from independent supplies but
// the evaluated controller commands them in lockstep.  When the load is
// skewed across sockets (virtualized consolidation, NUMA-pinned jobs),
// lockstep control must spin *all* fans for the hottest socket.  This
// extension addresses each pair separately: zone 0 serves socket 0,
// zone 1 serves socket 1 — each looked up in the same LUT with its own
// socket's utilization — and zone 2 (the shared/DIMM zone) follows the
// cooler of the two.  A per-zone temperature guard and the 1-minute rate
// limit carry over from the baseline controller.
#pragma once

#include "core/controller.hpp"
#include "core/fan_lut.hpp"
#include "core/lut_controller.hpp"

namespace ltsc::core {

/// Differential, per-fan-pair LUT controller.
class zone_lut_controller final : public fan_controller {
public:
    /// Shares the single-speed controller's configuration; `table` is the
    /// same utilization-indexed LUT (addressed per socket).
    zone_lut_controller(fan_lut table, const lut_controller_config& config = {});

    [[nodiscard]] util::seconds_t polling_period() const override;

    /// Single-speed view: the mean of the per-zone decision (exists so
    /// the controller can also run through the scalar interface).
    [[nodiscard]] std::optional<util::rpm_t> decide(const controller_inputs& in) override;

    [[nodiscard]] std::optional<std::vector<util::rpm_t>> decide_zones(
        const controller_inputs& in) override;

    [[nodiscard]] std::string name() const override { return "ZoneLUT"; }
    void reset() override;

    [[nodiscard]] const fan_lut& table() const { return table_; }

private:
    [[nodiscard]] util::rpm_t zone_target(double socket_util_pct, double socket_temp_c) const;

    fan_lut table_;
    lut_controller_config config_;
    bool has_changed_ = false;
    double last_change_s_ = 0.0;
};

}  // namespace ltsc::core
