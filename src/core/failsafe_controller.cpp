#include "core/failsafe_controller.hpp"

#include "util/error.hpp"

namespace ltsc::core {

failsafe_controller::failsafe_controller(std::unique_ptr<fan_controller> baseline,
                                         const failsafe_config& config)
    : baseline_(std::move(baseline)), config_(config) {
    util::ensure(baseline_ != nullptr, "failsafe_controller: null baseline");
    util::ensure(config_.stale_after_s > 0.0,
                 "failsafe_controller: non-positive staleness budget");
    util::ensure(config_.failsafe_rpm.value() > 0.0,
                 "failsafe_controller: non-positive failsafe speed");
}

util::seconds_t failsafe_controller::polling_period() const {
    return baseline_->polling_period();
}

std::string failsafe_controller::name() const { return "Failsafe(" + baseline_->name() + ")"; }

void failsafe_controller::reset() {
    baseline_->reset();
    engaged_ = false;
}

void failsafe_controller::attach_plant(const plant_access* plant) {
    baseline_->attach_plant(plant);
}

std::optional<util::rpm_t> failsafe_controller::decide(const controller_inputs& in) {
    // The baseline always sees the observations (stale or not) so its
    // internal state tracks the run; only its command is overridden.
    const std::optional<util::rpm_t> baseline_cmd = baseline_->decide(in);
    if (in.sensor_age_s > config_.stale_after_s) {
        engaged_ = true;
        return config_.failsafe_rpm;
    }
    engaged_ = false;
    return baseline_cmd;
}

}  // namespace ltsc::core
