#include "core/failsafe_controller.hpp"

#include <algorithm>

#include "core/fault_monitor.hpp"
#include "util/error.hpp"

namespace ltsc::core {

namespace {

/// Whether the monitor distrusts any CPU sensor on this plant.
[[nodiscard]] bool any_sensor_distrusted(const controller_inputs& in) {
    if (!in.monitor_valid) {
        return false;
    }
    for (const std::uint8_t h : in.sensor_health) {
        if (h != static_cast<std::uint8_t>(component_health::healthy)) {
            return true;
        }
    }
    return false;
}

/// Whether the monitor marks any fan pair failed on this plant.
[[nodiscard]] bool any_fan_failed(const controller_inputs& in) {
    if (!in.monitor_valid) {
        return false;
    }
    for (const std::uint8_t h : in.fan_health) {
        if (h == static_cast<std::uint8_t>(component_health::failed)) {
            return true;
        }
    }
    return false;
}

/// The die temperature worth trusting: the hottest *healthy* sensor on
/// the die, or the monitor's model estimate when the die has none left.
[[nodiscard]] double trusted_die_temp_c(const controller_inputs& in, std::size_t die) {
    bool any_healthy = false;
    double best = 0.0;
    for (std::size_t s = 2 * die; s < 2 * die + 2 && s < in.sensor_health.size(); ++s) {
        if (in.sensor_health[s] == static_cast<std::uint8_t>(component_health::healthy)) {
            best = any_healthy ? std::max(best, in.cpu_sensor_c[s]) : in.cpu_sensor_c[s];
            any_healthy = true;
        }
    }
    return any_healthy ? best : in.model_die_c[die];
}

}  // namespace

failsafe_controller::failsafe_controller(std::unique_ptr<fan_controller> baseline,
                                         const failsafe_config& config)
    : baseline_(std::move(baseline)), config_(config) {
    util::ensure(baseline_ != nullptr, "failsafe_controller: null baseline");
    util::ensure(config_.stale_after_s > 0.0,
                 "failsafe_controller: non-positive staleness budget");
    util::ensure(config_.failsafe_rpm.value() > 0.0,
                 "failsafe_controller: non-positive failsafe speed");
}

util::seconds_t failsafe_controller::polling_period() const {
    return baseline_->polling_period();
}

std::string failsafe_controller::name() const { return "Failsafe(" + baseline_->name() + ")"; }

void failsafe_controller::reset() {
    baseline_->reset();
    engaged_ = false;
    sensor_override_ = false;
    fan_override_ = false;
}

void failsafe_controller::attach_plant(const plant_access* plant) {
    baseline_->attach_plant(plant);
}

std::optional<util::rpm_t> failsafe_controller::decide(const controller_inputs& in) {
    // The baseline always sees the observations (stale or not) so its
    // internal state tracks the run; only its command is overridden.
    // When the monitor distrusts a sensor, the temperatures the baseline
    // steers on are rebuilt from the sensors still worth believing — a
    // lying-low reading must not be allowed to idle the fans.
    sensor_override_ = any_sensor_distrusted(in);
    std::optional<util::rpm_t> baseline_cmd;
    if (sensor_override_) {
        controller_inputs eff = in;
        for (std::size_t d = 0; d < eff.socket_temp_c.size(); ++d) {
            eff.socket_temp_c[d] = trusted_die_temp_c(in, d);
        }
        eff.max_cpu_temp =
            util::celsius_t{std::max(eff.socket_temp_c[0], eff.socket_temp_c[1])};
        baseline_cmd = baseline_->decide(eff);
    } else {
        baseline_cmd = baseline_->decide(in);
    }
    fan_override_ = config_.fan_override && any_fan_failed(in);
    if (in.sensor_age_s > config_.stale_after_s || fan_override_) {
        engaged_ = true;
        return config_.failsafe_rpm;
    }
    engaged_ = false;
    return baseline_cmd;
}

}  // namespace ltsc::core
