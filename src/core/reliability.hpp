// Thermal-cycling reliability metrics.
//
// The paper caps operating temperature at 75 degC "for reliability
// purposes" and warns that wide bang-bang bands "lead to ... larger
// thermal cycles".  This module quantifies that: it extracts temperature
// cycles from a trace (rainflow counting) and scores them with a
// Coffin-Manson-style damage index, so controller comparisons can report
// wear-out pressure next to energy.
#pragma once

#include <vector>

#include "util/time_series.hpp"

namespace ltsc::core {

/// One counted thermal cycle.
struct thermal_cycle {
    double amplitude_c = 0.0;  ///< Peak-to-valley temperature delta.
    double mean_c = 0.0;       ///< Cycle mean temperature.
    double count = 1.0;        ///< 1.0 for full cycles, 0.5 for half cycles.
};

/// Result of cycle counting over a temperature trace.
struct cycling_report {
    std::vector<thermal_cycle> cycles;  ///< All counted (half-)cycles.
    double max_amplitude_c = 0.0;       ///< Largest cycle amplitude.
    double damage_index = 0.0;          ///< Sum of count * (dT/10)^exponent.
    std::size_t significant_cycles = 0; ///< (Half-)cycles with amplitude >= threshold.
};

/// Options for cycle extraction.
struct cycling_options {
    double hysteresis_c = 1.0;          ///< Reversals smaller than this are noise.
    double significant_amplitude_c = 5.0;  ///< Threshold for the cycle count.
    double coffin_manson_exponent = 2.35;  ///< Solder-joint fatigue exponent.
};

/// Runs rainflow counting (ASTM E1049 four-point method) on a temperature
/// trace and scores the cycles.  Accepts a view so columnar trace
/// channels feed in without copies; a `time_series` converts via the
/// inline overload.  Throws on traces with fewer than 2 samples.
[[nodiscard]] cycling_report count_thermal_cycles(const util::column_view& temps,
                                                  const cycling_options& options = {});
[[nodiscard]] inline cycling_report count_thermal_cycles(const util::time_series& temps,
                                                         const cycling_options& options = {}) {
    return count_thermal_cycles(temps.view(), options);
}

/// Extracts the alternating peak/valley sequence of a trace after
/// hysteresis filtering (exposed for tests and plotting).
[[nodiscard]] std::vector<double> peak_valley_sequence(const util::column_view& temps,
                                                       double hysteresis_c);
[[nodiscard]] inline std::vector<double> peak_valley_sequence(const util::time_series& temps,
                                                              double hysteresis_c) {
    return peak_valley_sequence(temps.view(), hysteresis_c);
}

}  // namespace ltsc::core
