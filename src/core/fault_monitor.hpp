// Model-based fault detection: a healthy-twin residual monitor.
//
// The monitor steps a cheap twin of the server's thermal plant alongside
// the real one, driven ONLY by quantities a real BMC could observe:
// commanded fan speeds, tachometer readings, the host utilization
// counter, and ambient.  Two residual families fall out:
//
//   * sensor residual  = delivered CSTH reading - twin die temperature.
//     The twin integrates the same heat/airflow arithmetic as the plant,
//     so on this simulated server it tracks the *true* die temperature
//     and the residual isolates the sensor error exactly: placement
//     spread (±1 degC), read noise (3σ ≈ 0.45 degC) and quantization
//     (0.25 degC) bound the honest residual well under the 3 degC
//     threshold, which makes false positives structurally impossible
//     here.  (On real hardware the threshold additionally absorbs model
//     error; the hysteresis knobs below exist for exactly that.)
//   * fan residual = |last commanded RPM - tachometer RPM| per pair.
//     A healthy pair tracks its command exactly; a failed rotor reads 0.
//     For `fan_command_grace_steps` after a command *change* the residual
//     also accepts the previous command, so tach-reporting lag during a
//     legitimate ramp never counts as a fault — while a rotor matching
//     neither command (dead) keeps counting through the grace window.
//   * sensor CUSUM = one-sided accumulated residual per sensor.  Each
//     poll adds `residual - sensor_cusum_k_c` to a positive sum and
//     `-residual - sensor_cusum_k_c` to a negative one, both clamped to
//     [0, sensor_cusum_h_c]; reaching the bound is an alarm.  The drift
//     allowance `k` sits above the honest-residual envelope, so healthy
//     noise never accumulates, while a sustained sub-threshold drift of
//     rate r crosses the bound about h/(r - k_excess) polls after the
//     drift clears the allowance — bounded latency for faults the
//     instantaneous threshold is structurally blind to.
//   * fan thermal cross-check = tach-distrust.  The twin follows the
//     *tach-reported* airflow, so on honest hardware it tracks the true
//     die exactly.  When every sensor of a die runs persistently hotter
//     than the twin (lost-cooling direction) while some fan pair's tach
//     still agrees with its command, the tach is the liar: the monitor
//     attributes the divergence to the command-quiet pairs (suspect ->
//     failed through `fan_thermal_*_polls` hysteresis) instead of
//     flagging sensors that are telling the truth.  While the
//     attribution is live, *hot-direction* sensor verdicts are
//     suppressed plant-wide — a lying tach makes the twin's airflow
//     picture wrong everywhere (the dead zone's heat couples into its
//     neighbours), so hotter-than-twin readings corroborate the fan
//     fault.  Cool-direction residuals, the dangerous lie, are never
//     suppressed.
//
// Residuals feed per-component health verdicts through hysteresis
// counters: `sensor_suspect_polls` consecutive out-of-band polls flag a
// sensor suspect, `sensor_fail_polls` fail it, `sensor_clear_polls`
// clean polls clear it (fans likewise, counted in plant steps).  A
// pair's reported health is the worst of its tach-residual and thermal
// cross-check verdicts.
//
// What the monitor can catch: stuck/biased/dropout-held sensor readings
// once they diverge from the modeled die by more than the threshold,
// slow drifts and intermittent biases once their accumulated residual
// crosses the CUSUM bound, dead fan pairs, stuck-PWM pairs *once the
// controller commands a different speed*, and tach-stuck pairs whose
// lying tachometer masks a lost rotor (via the thermal cross-check).
// Remaining blind spots: sensor errors whose accumulated drift stays
// under the CUSUM allowance, and faults in the utilization counter or
// ambient feed.
//
// The monitor is a passive observer: it never touches the plant's RNG
// or dynamics, so a monitor-on run records the same plant trajectory
// bitwise as a monitor-off run.  Its full state (twin thermal state via
// the PR 5 rc_state layer, latched commands, hysteresis counters) rides
// `fault_monitor_state` through plant snapshot/restore bitwise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "power/active_model.hpp"
#include "power/fan_model.hpp"
#include "power/leakage_model.hpp"
#include "thermal/server_thermal_model.hpp"
#include "util/units.hpp"

namespace ltsc::core {

/// Verdict of the residual monitor for one monitored component.
enum class component_health : std::uint8_t { healthy = 0, suspect = 1, failed = 2 };

[[nodiscard]] const char* to_string(component_health health);

/// Thresholds and hysteresis depths of the residual monitor.
struct fault_monitor_config {
    bool enabled = false;  ///< Off by default: monitor-off == healthy build bitwise.

    double sensor_residual_c = 3.0;  ///< |reading - modeled die| alarm threshold [degC].
    int sensor_suspect_polls = 2;    ///< Consecutive bad polls before "suspect".
    int sensor_fail_polls = 4;       ///< Consecutive bad polls before "failed".
    int sensor_clear_polls = 2;      ///< Consecutive good polls before "healthy".

    /// CUSUM drift allowance per poll [degC].  Sits above the honest
    /// residual envelope (±1 placement + 3σ ≈ 0.45 noise + 0.25
    /// quantization ≈ 1.7), so healthy polls drive the sums to zero.
    double sensor_cusum_k_c = 1.75;
    /// CUSUM decision bound [degC·polls].  Sums clamp to [0, h]; an
    /// update landing on the bound is the alarm.  The clamp caps the
    /// post-recovery decay at ~h/k polls, keeping clear latency bounded.
    double sensor_cusum_h_c = 5.0;

    double fan_residual_rpm = 60.0;  ///< |commanded - tach| alarm threshold [RPM].
    int fan_suspect_steps = 2;       ///< Consecutive bad steps before "suspect".
    int fan_fail_steps = 5;          ///< Consecutive bad steps before "failed".
    int fan_clear_steps = 2;         ///< Consecutive good steps before "healthy".
    /// Steps after a command *change* during which the fan residual also
    /// accepts the previous command (tach-reporting lag on a ramp is not
    /// a fault; a rotor matching neither command still counts bad).
    int fan_command_grace_steps = 2;

    /// Die-wide positive sensor/twin divergence [degC] that triggers the
    /// tach-distrust cross-check when some pair's tach agrees with its
    /// command (lost cooling the tach residual cannot see).
    double fan_thermal_residual_c = 3.0;
    int fan_thermal_suspect_polls = 2;  ///< Bad polls before thermal "suspect".
    int fan_thermal_fail_polls = 4;     ///< Bad polls before thermal "failed".
    int fan_thermal_clear_polls = 2;    ///< Good polls before thermal "healthy".
};

/// Everything the twin needs to replicate the plant's heat arithmetic;
/// built from a sim::server_config by sim::monitor_plant_for().
struct fault_monitor_plant {
    thermal::server_thermal_config thermal{};
    power::fan_spec fan{};
    std::size_t fan_pairs = 3;
    power::leakage_params leakage = power::leakage_params::paper_fit();
    double active_coeff_w_per_pct = power::active_model::system_k1_w_per_pct;
    power::active_split split{};
    double cpu_heat_shape_exponent = power::active_model::default_cpu_shape_exponent;
    double cpu_idle_each_w = 45.0;
    double dimm_idle_total_w = 40.0;
    std::size_t cpu_sensors = 4;  ///< CSTH sensors, 2 per die (sensor s reads die s/2).
};

/// Snapshot of the monitor: twin thermal state plus every latched
/// command and hysteresis counter.  Plain data; rides sim::server_state.
struct fault_monitor_state {
    thermal::rc_state twin;
    std::vector<double> commanded_rpm;
    std::vector<double> fan_prev_rpm;
    std::vector<int> fan_grace_steps;
    std::vector<std::uint8_t> fan_health;
    std::vector<int> fan_bad_steps;
    std::vector<int> fan_good_steps;
    std::vector<std::uint8_t> fan_thermal_health;
    std::vector<int> fan_thermal_bad_polls;
    std::vector<int> fan_thermal_good_polls;
    std::vector<std::uint8_t> sensor_health;
    std::vector<int> sensor_bad_polls;
    std::vector<int> sensor_good_polls;
    std::vector<double> sensor_residual_c;
    std::vector<double> sensor_cusum_pos_c;
    std::vector<double> sensor_cusum_neg_c;
};

class fault_monitor {
public:
    fault_monitor(const fault_monitor_config& config, const fault_monitor_plant& plant);

    /// Re-arms the monitor against the plant's current actuator state:
    /// latches the commanded speeds, clears every verdict, and resets
    /// the twin to ambient (the plant's cold state).
    void reset(const power::fan_bank& fans, util::celsius_t ambient);

    /// Teleports the twin to the steady state of (u_pct, imbalance,
    /// ambient, current airflow) — the monitor-side mirror of the
    /// plant's force_cold_start / settle_at jumps.
    void settle(double u_pct, double imbalance, util::celsius_t ambient,
                const power::fan_bank& fans);

    /// Records a controller fan command (already clamped to the legal
    /// range).  Called at the plant's actuation entry points so the
    /// command is captured even when a degraded pair latches it.
    void observe_fan_command(std::size_t pair_index, util::rpm_t clamped);
    void observe_all_fan_commands(util::rpm_t clamped);

    /// Advances the twin by one plant step and refreshes the fan
    /// command/tach residuals.  `u_inst` is the instantaneous host
    /// utilization the plant heated with this step.
    void step(util::seconds_t dt, double u_inst, double imbalance, util::celsius_t ambient,
              const power::fan_bank& fans);

    /// Scores one telemetry poll: `delivered` are the (possibly
    /// corrupted) CSTH readings, compared against the twin's dies.
    void on_poll(const std::vector<double>& delivered);

    [[nodiscard]] std::size_t sensor_count() const { return sensor_health_.size(); }
    [[nodiscard]] std::size_t fan_pair_count() const { return fan_health_.size(); }
    [[nodiscard]] component_health sensor_health(std::size_t sensor) const;
    /// Worst of the pair's tach-residual and thermal cross-check verdicts.
    [[nodiscard]] component_health fan_health(std::size_t pair_index) const;
    [[nodiscard]] component_health worst_sensor_health() const;
    [[nodiscard]] component_health worst_fan_health() const;
    /// Signed residual of the last scored poll for one sensor [degC].
    [[nodiscard]] double sensor_residual_c(std::size_t sensor) const;
    /// Current one-sided CUSUM sums for one sensor [degC·polls], clamped
    /// to [0, sensor_cusum_h_c].  Exposed for tests and calibration.
    [[nodiscard]] double sensor_cusum_pos_c(std::size_t sensor) const;
    [[nodiscard]] double sensor_cusum_neg_c(std::size_t sensor) const;
    /// The twin's modeled die temperature [degC] — the trusted stand-in
    /// for a die whose sensors are flagged.
    [[nodiscard]] double die_estimate_c(std::size_t die) const;
    [[nodiscard]] double max_die_estimate_c() const;

    [[nodiscard]] const fault_monitor_config& config() const { return config_; }

    void save_state(fault_monitor_state& out) const;
    /// Restores a snapshot; `fans` must already hold the restored
    /// actuator state (the twin's airflow is re-derived from it).
    void restore_state(const fault_monitor_state& state, const power::fan_bank& fans);

private:
    void clear_health();
    void sync_ambient(util::celsius_t ambient);
    void sync_airflow(const power::fan_bank& fans, bool force);
    void apply_twin_heat(double u_pct, double imbalance);

    fault_monitor_config config_;
    double cpu_idle_each_w_;
    double dimm_idle_total_w_;
    power::leakage_model leakage_;
    power::active_model active_;
    power::fan_pair tach_pair_;  ///< Converts tach readings to twin airflow.
    thermal::server_thermal_model twin_;

    std::vector<double> commanded_rpm_;
    std::vector<double> fan_prev_rpm_;
    std::vector<int> fan_grace_steps_;
    std::vector<std::uint8_t> fan_health_;
    std::vector<int> fan_bad_steps_;
    std::vector<int> fan_good_steps_;
    std::vector<std::uint8_t> fan_thermal_health_;
    std::vector<int> fan_thermal_bad_polls_;
    std::vector<int> fan_thermal_good_polls_;
    std::vector<std::uint8_t> sensor_health_;
    std::vector<int> sensor_bad_polls_;
    std::vector<int> sensor_good_polls_;
    std::vector<double> sensor_residual_;
    std::vector<double> sensor_cusum_pos_;
    std::vector<double> sensor_cusum_neg_;

    // Airflow cache: twin conductances are recomputed only when a tach
    // reading moves, mirroring the plant's apply-on-change policy.  The
    // airflow is derived from the *tach reading* (not the plant's true
    // delivery), which is exactly what makes a lying tach visible as a
    // thermal divergence.
    std::vector<double> effective_rpm_cache_;
    std::vector<util::cfm_t> zone_airflow_scratch_;
    std::vector<unsigned char> die_hot_scratch_;  ///< Per-die hot flag, reused each poll.
};

}  // namespace ltsc::core
