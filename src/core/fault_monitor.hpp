// Model-based fault detection: a healthy-twin residual monitor.
//
// The monitor steps a cheap twin of the server's thermal plant alongside
// the real one, driven ONLY by quantities a real BMC could observe:
// commanded fan speeds, tachometer readings, the host utilization
// counter, and ambient.  Two residual families fall out:
//
//   * sensor residual  = delivered CSTH reading - twin die temperature.
//     The twin integrates the same heat/airflow arithmetic as the plant,
//     so on this simulated server it tracks the *true* die temperature
//     and the residual isolates the sensor error exactly: placement
//     spread (±1 degC), read noise (3σ ≈ 0.45 degC) and quantization
//     (0.25 degC) bound the honest residual well under the 3 degC
//     threshold, which makes false positives structurally impossible
//     here.  (On real hardware the threshold additionally absorbs model
//     error; the hysteresis knobs below exist for exactly that.)
//   * fan residual = |last commanded RPM - tachometer RPM| per pair.
//     A healthy pair tracks its command exactly; a failed rotor reads 0.
//
// Residuals feed per-component health verdicts through hysteresis
// counters: `sensor_suspect_polls` consecutive out-of-band polls flag a
// sensor suspect, `sensor_fail_polls` fail it, `sensor_clear_polls`
// clean polls clear it (fans likewise, counted in plant steps).
//
// What the monitor can catch: stuck/biased/dropout-held sensor readings
// once they diverge from the modeled die by more than the threshold,
// dead fan pairs, and stuck-PWM pairs *once the controller commands a
// different speed* (a rotor stuck exactly at its commanded speed is
// observationally healthy — inherent to command/tach residuals).  What
// it cannot catch: sensor errors below the threshold, and faults in the
// quantities it trusts (utilization counter, ambient, tachometers).
//
// The monitor is a passive observer: it never touches the plant's RNG
// or dynamics, so a monitor-on run records the same plant trajectory
// bitwise as a monitor-off run.  Its full state (twin thermal state via
// the PR 5 rc_state layer, latched commands, hysteresis counters) rides
// `fault_monitor_state` through plant snapshot/restore bitwise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "power/active_model.hpp"
#include "power/fan_model.hpp"
#include "power/leakage_model.hpp"
#include "thermal/server_thermal_model.hpp"
#include "util/units.hpp"

namespace ltsc::core {

/// Verdict of the residual monitor for one monitored component.
enum class component_health : std::uint8_t { healthy = 0, suspect = 1, failed = 2 };

[[nodiscard]] const char* to_string(component_health health);

/// Thresholds and hysteresis depths of the residual monitor.
struct fault_monitor_config {
    bool enabled = false;  ///< Off by default: monitor-off == healthy build bitwise.

    double sensor_residual_c = 3.0;  ///< |reading - modeled die| alarm threshold [degC].
    int sensor_suspect_polls = 2;    ///< Consecutive bad polls before "suspect".
    int sensor_fail_polls = 4;       ///< Consecutive bad polls before "failed".
    int sensor_clear_polls = 2;      ///< Consecutive good polls before "healthy".

    double fan_residual_rpm = 60.0;  ///< |commanded - tach| alarm threshold [RPM].
    int fan_suspect_steps = 2;       ///< Consecutive bad steps before "suspect".
    int fan_fail_steps = 5;          ///< Consecutive bad steps before "failed".
    int fan_clear_steps = 2;         ///< Consecutive good steps before "healthy".
};

/// Everything the twin needs to replicate the plant's heat arithmetic;
/// built from a sim::server_config by sim::monitor_plant_for().
struct fault_monitor_plant {
    thermal::server_thermal_config thermal{};
    power::fan_spec fan{};
    std::size_t fan_pairs = 3;
    power::leakage_params leakage = power::leakage_params::paper_fit();
    double active_coeff_w_per_pct = power::active_model::system_k1_w_per_pct;
    power::active_split split{};
    double cpu_heat_shape_exponent = power::active_model::default_cpu_shape_exponent;
    double cpu_idle_each_w = 45.0;
    double dimm_idle_total_w = 40.0;
    std::size_t cpu_sensors = 4;  ///< CSTH sensors, 2 per die (sensor s reads die s/2).
};

/// Snapshot of the monitor: twin thermal state plus every latched
/// command and hysteresis counter.  Plain data; rides sim::server_state.
struct fault_monitor_state {
    thermal::rc_state twin;
    std::vector<double> commanded_rpm;
    std::vector<std::uint8_t> fan_health;
    std::vector<int> fan_bad_steps;
    std::vector<int> fan_good_steps;
    std::vector<std::uint8_t> sensor_health;
    std::vector<int> sensor_bad_polls;
    std::vector<int> sensor_good_polls;
    std::vector<double> sensor_residual_c;
};

class fault_monitor {
public:
    fault_monitor(const fault_monitor_config& config, const fault_monitor_plant& plant);

    /// Re-arms the monitor against the plant's current actuator state:
    /// latches the commanded speeds, clears every verdict, and resets
    /// the twin to ambient (the plant's cold state).
    void reset(const power::fan_bank& fans, util::celsius_t ambient);

    /// Teleports the twin to the steady state of (u_pct, imbalance,
    /// ambient, current airflow) — the monitor-side mirror of the
    /// plant's force_cold_start / settle_at jumps.
    void settle(double u_pct, double imbalance, util::celsius_t ambient,
                const power::fan_bank& fans);

    /// Records a controller fan command (already clamped to the legal
    /// range).  Called at the plant's actuation entry points so the
    /// command is captured even when a degraded pair latches it.
    void observe_fan_command(std::size_t pair_index, util::rpm_t clamped);
    void observe_all_fan_commands(util::rpm_t clamped);

    /// Advances the twin by one plant step and refreshes the fan
    /// command/tach residuals.  `u_inst` is the instantaneous host
    /// utilization the plant heated with this step.
    void step(util::seconds_t dt, double u_inst, double imbalance, util::celsius_t ambient,
              const power::fan_bank& fans);

    /// Scores one telemetry poll: `delivered` are the (possibly
    /// corrupted) CSTH readings, compared against the twin's dies.
    void on_poll(const std::vector<double>& delivered);

    [[nodiscard]] std::size_t sensor_count() const { return sensor_health_.size(); }
    [[nodiscard]] std::size_t fan_pair_count() const { return fan_health_.size(); }
    [[nodiscard]] component_health sensor_health(std::size_t sensor) const;
    [[nodiscard]] component_health fan_health(std::size_t pair_index) const;
    [[nodiscard]] component_health worst_sensor_health() const;
    [[nodiscard]] component_health worst_fan_health() const;
    /// Signed residual of the last scored poll for one sensor [degC].
    [[nodiscard]] double sensor_residual_c(std::size_t sensor) const;
    /// The twin's modeled die temperature [degC] — the trusted stand-in
    /// for a die whose sensors are flagged.
    [[nodiscard]] double die_estimate_c(std::size_t die) const;
    [[nodiscard]] double max_die_estimate_c() const;

    [[nodiscard]] const fault_monitor_config& config() const { return config_; }

    void save_state(fault_monitor_state& out) const;
    /// Restores a snapshot; `fans` must already hold the restored
    /// actuator state (the twin's airflow is re-derived from it).
    void restore_state(const fault_monitor_state& state, const power::fan_bank& fans);

private:
    void clear_health();
    void sync_ambient(util::celsius_t ambient);
    void sync_airflow(const power::fan_bank& fans, bool force);
    void apply_twin_heat(double u_pct, double imbalance);

    fault_monitor_config config_;
    double cpu_idle_each_w_;
    double dimm_idle_total_w_;
    power::leakage_model leakage_;
    power::active_model active_;
    thermal::server_thermal_model twin_;

    std::vector<double> commanded_rpm_;
    std::vector<std::uint8_t> fan_health_;
    std::vector<int> fan_bad_steps_;
    std::vector<int> fan_good_steps_;
    std::vector<std::uint8_t> sensor_health_;
    std::vector<int> sensor_bad_polls_;
    std::vector<int> sensor_good_polls_;
    std::vector<double> sensor_residual_;

    // Airflow cache: twin conductances are recomputed only when a tach
    // reading moves, mirroring the plant's apply-on-change policy.
    std::vector<double> effective_rpm_cache_;
    std::vector<util::cfm_t> zone_airflow_scratch_;
};

}  // namespace ltsc::core
