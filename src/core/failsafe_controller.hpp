// Sensor-loss failsafe wrapper: fall back to maximum fans when the
// telemetry behind the observations goes stale.
//
// Every policy in this repo steers off CSTH sensor readings.  When the
// poller dies (telemetry_loss faults), those readings freeze while the
// plant keeps heating — a controller trusting them can idle the fans
// through a thermal excursion it cannot see.  The paper's DLC-PC answer
// (and every production BMC's) is a watchdog: if the newest poll behind
// the observations is older than a staleness budget, stop optimizing
// and command maximum cooling until data returns.
//
// This wrapper implements that watchdog around any baseline policy.
// The baseline is consulted on every decision whether or not the
// failsafe overrides it, so its internal state (hold timers,
// integrators) evolves exactly as it would alone and control hands back
// seamlessly when telemetry recovers.  With fresh telemetry the wrapper
// is transparent: decisions are bitwise the baseline's.
//
// Scope: wraps the single-speed decide() surface (like
// rollout_controller); the default zone adapter replicates the failsafe
// speed across pairs.
//
// Staleness catches *absent* data, not *lying* data: a sensor stuck low
// or biased cold looks fresh and healthy.  Against that failure the
// wrapper leans on the plant's residual monitor when one is present
// (controller_inputs::monitor_valid): readings from sensors the monitor
// marks suspect/failed are excluded from the temperatures the baseline
// sees, replaced by the healthy sensors on the same die or — when a die
// has none left — by the monitor's model estimate.  When the monitor
// marks a *fan pair* failed (a dead rotor, or a lying tach unmasked by
// the thermal cross-check), the wrapper commands maximum cooling from
// the surviving pairs: lost airflow cannot be reasoned around, only
// compensated.  With every component healthy (or without a monitor)
// decisions are bitwise the baseline's; the unmonitored defeat is
// pinned in FaultInjection.NegativeBiasDefeatsTheGuardWithoutMonitor
// and the monitored mitigation in
// FaultInjection.NegativeBiasContainedWithMonitor.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/controller.hpp"

namespace ltsc::core {

/// Tunables of the sensor-loss failsafe.
struct failsafe_config {
    /// Staleness budget: override when the newest poll is older than
    /// this.  The default is 2.5 CSTH periods — one missed poll is
    /// scheduling jitter, two is an outage.
    double stale_after_s = 25.0;
    /// Speed commanded while engaged (maximum cooling).
    util::rpm_t failsafe_rpm{4200.0};
    /// Command `failsafe_rpm` while the residual monitor marks any fan
    /// pair failed: a dead or lying pair starves its zone of airflow,
    /// and the surviving pairs' 30 % mixing share is all that cools it.
    bool fan_override = true;
};

/// Failsafe wrapper around any baseline fan controller.
class failsafe_controller final : public fan_controller {
public:
    explicit failsafe_controller(std::unique_ptr<fan_controller> baseline,
                                 const failsafe_config& config = {});

    [[nodiscard]] util::seconds_t polling_period() const override;
    [[nodiscard]] std::optional<util::rpm_t> decide(const controller_inputs& in) override;
    [[nodiscard]] std::string name() const override;
    void reset() override;
    void attach_plant(const plant_access* plant) override;

    [[nodiscard]] const failsafe_config& config() const { return config_; }
    [[nodiscard]] const fan_controller& baseline() const { return *baseline_; }
    /// Whether the last decision was a failsafe override.
    [[nodiscard]] bool engaged() const { return engaged_; }
    /// Whether the last decision replaced distrusted sensor readings
    /// with monitor-backed estimates before consulting the baseline.
    [[nodiscard]] bool sensor_override() const { return sensor_override_; }
    /// Whether the last decision forced maximum cooling because the
    /// monitor marked a fan pair failed.
    [[nodiscard]] bool fan_override() const { return fan_override_; }

private:
    std::unique_ptr<fan_controller> baseline_;
    failsafe_config config_;
    bool engaged_ = false;
    bool sensor_override_ = false;
    bool fan_override_ = false;
};

}  // namespace ltsc::core
