// The paper's bang-bang (threshold) controller.
//
// Tracks only the maximum CPU temperature through CSTH and nudges the fan
// speed to keep it inside a 65-75 degC band.  Five actions (Section V):
//   T < 60          -> set 1800 RPM (the minimum)
//   60 <= T < 65    -> lower speed by 600 RPM
//   65 <= T <= 75   -> hold
//   75 < T <= 80    -> raise speed by 600 RPM
//   T > 80          -> set 4200 RPM (the maximum)
//
// It is reactive: by the time it responds, the thermal (and hence leakage)
// event has already happened — the weakness the LUT controller fixes.
#pragma once

#include "core/controller.hpp"

namespace ltsc::core {

/// Threshold set of the bang-bang policy.
struct bang_bang_thresholds {
    double floor_c = 60.0;    ///< Below: jump to min RPM.
    double low_c = 65.0;      ///< Below (but above floor): step down.
    double high_c = 75.0;     ///< Above: step up.
    double ceiling_c = 80.0;  ///< Above: jump to max RPM.
};

/// Bang-bang fan controller with the paper's thresholds.
class bang_bang_controller final : public fan_controller {
public:
    /// `step` is the RPM increment (600 in the paper); `min_rpm`/`max_rpm`
    /// bound the commanded range.
    bang_bang_controller(const bang_bang_thresholds& thresholds = {},
                         util::rpm_t step = util::rpm_t{600.0},
                         util::rpm_t min_rpm = util::rpm_t{1800.0},
                         util::rpm_t max_rpm = util::rpm_t{4200.0});

    /// Rides the CSTH telemetry cadence (10 s).
    [[nodiscard]] util::seconds_t polling_period() const override;
    [[nodiscard]] std::optional<util::rpm_t> decide(const controller_inputs& in) override;
    [[nodiscard]] std::string name() const override { return "Bang"; }

    [[nodiscard]] const bang_bang_thresholds& thresholds() const { return thresholds_; }

private:
    bang_bang_thresholds thresholds_;
    util::rpm_t step_;
    util::rpm_t min_rpm_;
    util::rpm_t max_rpm_;
};

}  // namespace ltsc::core
