#include "core/reliability.hpp"

#include <cmath>
#include <deque>

#include "util/error.hpp"

namespace ltsc::core {

std::vector<double> peak_valley_sequence(const util::column_view& temps, double hysteresis_c) {
    util::ensure(temps.size() >= 2, "peak_valley_sequence: trace too short");
    util::ensure(hysteresis_c >= 0.0, "peak_valley_sequence: negative hysteresis");

    std::vector<double> seq{temps.v(0)};
    double candidate = temps.v(0);
    int direction = 0;  // +1 rising, -1 falling, 0 undetermined
    for (std::size_t i = 1; i < temps.size(); ++i) {
        const double v = temps.v(i);
        switch (direction) {
            case 0:
                if (v > candidate + hysteresis_c) {
                    direction = 1;
                    candidate = v;
                } else if (v < candidate - hysteresis_c) {
                    direction = -1;
                    candidate = v;
                }
                break;
            case 1:
                if (v >= candidate) {
                    candidate = v;
                } else if (v < candidate - hysteresis_c) {
                    seq.push_back(candidate);  // confirmed peak
                    candidate = v;
                    direction = -1;
                }
                break;
            default:
                if (v <= candidate) {
                    candidate = v;
                } else if (v > candidate + hysteresis_c) {
                    seq.push_back(candidate);  // confirmed valley
                    candidate = v;
                    direction = 1;
                }
                break;
        }
    }
    seq.push_back(candidate);
    return seq;
}

cycling_report count_thermal_cycles(const util::column_view& temps,
                                    const cycling_options& options) {
    const std::vector<double> reversals = peak_valley_sequence(temps, options.hysteresis_c);
    cycling_report report;

    // ASTM E1049 rainflow: compare consecutive ranges; equal-or-larger
    // following range closes the inner cycle.
    std::deque<double> stack;
    const auto emit = [&](double a, double b, double count) {
        const double amplitude = std::fabs(a - b);
        if (amplitude <= 0.0) {
            return;
        }
        thermal_cycle c;
        c.amplitude_c = amplitude;
        c.mean_c = 0.5 * (a + b);
        c.count = count;
        report.cycles.push_back(c);
    };

    for (double r : reversals) {
        stack.push_back(r);
        while (stack.size() >= 3) {
            const double x = std::fabs(stack[stack.size() - 1] - stack[stack.size() - 2]);
            const double y = std::fabs(stack[stack.size() - 2] - stack[stack.size() - 3]);
            if (x < y) {
                break;
            }
            if (stack.size() == 3) {
                // Range Y contains the load history start: half cycle.
                emit(stack[0], stack[1], 0.5);
                stack.pop_front();
            } else {
                // Inner full cycle Y.
                const double a = stack[stack.size() - 2];
                const double b = stack[stack.size() - 3];
                emit(a, b, 1.0);
                stack.erase(stack.end() - 3, stack.end() - 1);
            }
        }
    }
    // Remaining reversals are half cycles.
    for (std::size_t i = 0; i + 1 < stack.size(); ++i) {
        emit(stack[i], stack[i + 1], 0.5);
    }

    for (const thermal_cycle& c : report.cycles) {
        report.max_amplitude_c = std::max(report.max_amplitude_c, c.amplitude_c);
        report.damage_index +=
            c.count * std::pow(c.amplitude_c / 10.0, options.coffin_manson_exponent);
        if (c.amplitude_c >= options.significant_amplitude_c) {
            ++report.significant_cycles;  // halves count: they are real swings
        }
    }
    return report;
}

}  // namespace ltsc::core
