// Fan controller interface.
//
// A controller plays the role of the paper's DLC-PC software: it
// periodically observes the signals a real deployment could see (polled
// utilization, CSTH sensor temperatures, its own last command) and decides
// a fan speed.  Controllers never touch plant internals; the runtime
// (controller_runtime.hpp) mediates between controller and simulator.
#pragma once

#include <algorithm>
#include <array>
#include <optional>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace ltsc::core {

/// Observations available to a controller at a decision instant.
struct controller_inputs {
    util::seconds_t now{0.0};            ///< Simulation time.
    double utilization_pct = 0.0;        ///< `sar`-style measured utilization.
    util::celsius_t max_cpu_temp{0.0};   ///< Max CPU sensor reading (CSTH).
    util::rpm_t current_rpm{0.0};        ///< Currently commanded speed (mean).
    util::watts_t system_power{0.0};     ///< Wall power reading (CSTH).

    // Per-zone observability (the extension surface for differential
    // control; single-speed controllers ignore these).
    std::array<double, 2> socket_util_pct{0.0, 0.0};  ///< Per-socket load.
    std::array<double, 2> socket_temp_c{0.0, 0.0};    ///< Max sensor per die.
    std::vector<util::rpm_t> zone_rpm;                ///< Per-pair speeds.
};

/// Abstract fan-speed policy.
class fan_controller {
public:
    virtual ~fan_controller() = default;

    /// How often the runtime calls `decide` (the LUT controller polls
    /// utilization every 1 s; the bang-bang controller rides the 10 s CSTH
    /// cadence).
    [[nodiscard]] virtual util::seconds_t polling_period() const = 0;

    /// Returns the new fan speed for all pairs, or std::nullopt to keep
    /// the current speed.
    [[nodiscard]] virtual std::optional<util::rpm_t> decide(const controller_inputs& in) = 0;

    /// Per-zone decision surface: returns one speed per fan pair, or
    /// std::nullopt to keep all speeds.  The default adapter replicates
    /// `decide` across zones, so single-speed policies need not override.
    [[nodiscard]] virtual std::optional<std::vector<util::rpm_t>> decide_zones(
        const controller_inputs& in) {
        const auto cmd = decide(in);
        if (!cmd.has_value()) {
            return std::nullopt;
        }
        return std::vector<util::rpm_t>(std::max<std::size_t>(1, in.zone_rpm.size()), *cmd);
    }

    /// Policy name for reports ("Default", "Bang", "LUT", ...).
    [[nodiscard]] virtual std::string name() const = 0;

    /// Clears internal state between runs.
    virtual void reset() {}
};

}  // namespace ltsc::core
