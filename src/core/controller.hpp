// Fan controller interface.
//
// A controller plays the role of the paper's DLC-PC software: it
// periodically observes the signals a real deployment could see (polled
// utilization, CSTH sensor temperatures, its own last command) and decides
// a fan speed.  Controllers never mutate plant internals; the runtime
// (controller_runtime.hpp) mediates between controller and simulator.
// Predictive controllers additionally get a *read-only* window onto the
// plant (plant_access) so they can clone its state into private rollout
// lanes — the live plant is still only actuated through the runtime.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace ltsc::sim {
struct server_state;
struct server_config;
class fault_schedule;
}  // namespace ltsc::sim

namespace ltsc::workload {
class loadgen;
}  // namespace ltsc::workload

namespace ltsc::core {

/// Read-only window onto a controlled plant, handed to controllers by
/// the runtime (run_controlled / run_controlled_batch) for the duration
/// of a run.  Reactive policies ignore it; predictive policies snapshot
/// through it to seed model rollouts.  Nothing here can mutate the
/// plant.
class plant_access {
public:
    virtual ~plant_access() = default;

    /// Snapshots the plant's complete dynamic state into `out`
    /// (overwriting it; zero-allocation once `out` has capacity).
    virtual void snapshot_into(sim::server_state& out) const = 0;

    /// The plant's configuration (to build matching rollout lanes).
    [[nodiscard]] virtual const sim::server_config& plant_config() const = 0;

    /// The bound workload — the rollout's load preview — or nullptr.
    [[nodiscard]] virtual const workload::loadgen* plant_workload() const = 0;

    /// The plant's bound fault campaign, or nullptr when healthy.  Like
    /// the workload preview, a predictive controller binds it to its
    /// rollout lanes so the lookahead replays the scheduled faults the
    /// committed trajectory will hit.
    [[nodiscard]] virtual const sim::fault_schedule* plant_fault_schedule() const {
        return nullptr;
    }
};

/// Observations available to a controller at a decision instant.
struct controller_inputs {
    util::seconds_t now{0.0};            ///< Simulation time.
    double utilization_pct = 0.0;        ///< `sar`-style measured utilization.
    util::celsius_t max_cpu_temp{0.0};   ///< Max CPU sensor reading (CSTH).
    util::rpm_t current_rpm{0.0};        ///< Currently commanded speed (mean).
    util::watts_t system_power{0.0};     ///< Wall power reading (CSTH).
    /// Age of the newest CSTH poll behind the sensor readings [s]
    /// (+infinity before the first poll).  Healthy runs see at most one
    /// poll period; under telemetry loss it grows without bound — the
    /// failsafe controller's staleness trigger.
    double sensor_age_s = 0.0;

    // Per-zone observability (the extension surface for differential
    // control; single-speed controllers ignore these).
    std::array<double, 2> socket_util_pct{0.0, 0.0};  ///< Per-socket load.
    std::array<double, 2> socket_temp_c{0.0, 0.0};    ///< Max sensor per die.
    std::vector<util::rpm_t> zone_rpm;                ///< Per-pair speeds.

    // Fault-monitor observability.  Valid only when the plant runs a
    // residual monitor (config.monitor.enabled); controllers must treat
    // the raw sensor readings as the sole truth otherwise.  Health codes
    // are core::component_health values (0 healthy / 1 suspect / 2
    // failed).
    bool monitor_valid = false;                 ///< Monitor present on this plant.
    std::array<std::uint8_t, 4> sensor_health{};  ///< Per-CPU-sensor verdict.
    std::vector<std::uint8_t> fan_health;       ///< Per-fan-pair verdict.
    std::array<double, 2> model_die_c{};        ///< Monitor's modeled die temps.
    std::array<double, 4> cpu_sensor_c{};       ///< Individual CSTH CPU readings.
};

/// Abstract fan-speed policy.
class fan_controller {
public:
    virtual ~fan_controller() = default;

    /// How often the runtime calls `decide` (the LUT controller polls
    /// utilization every 1 s; the bang-bang controller rides the 10 s CSTH
    /// cadence).
    [[nodiscard]] virtual util::seconds_t polling_period() const = 0;

    /// Returns the new fan speed for all pairs, or std::nullopt to keep
    /// the current speed.
    [[nodiscard]] virtual std::optional<util::rpm_t> decide(const controller_inputs& in) = 0;

    /// Per-zone decision surface: returns one speed per fan pair, or
    /// std::nullopt to keep all speeds.  The default adapter replicates
    /// `decide` across zones, so single-speed policies need not override.
    [[nodiscard]] virtual std::optional<std::vector<util::rpm_t>> decide_zones(
        const controller_inputs& in) {
        const auto cmd = decide(in);
        if (!cmd.has_value()) {
            return std::nullopt;
        }
        return std::vector<util::rpm_t>(std::max<std::size_t>(1, in.zone_rpm.size()), *cmd);
    }

    /// Policy name for reports ("Default", "Bang", "LUT", ...).
    [[nodiscard]] virtual std::string name() const = 0;

    /// Clears internal state between runs.
    virtual void reset() {}

    /// Runtime hook: a read-only window onto the controlled plant,
    /// attached for the duration of a run (and detached with nullptr
    /// afterwards).  The default ignores it — only predictive policies
    /// (rollout_controller) override.
    virtual void attach_plant(const plant_access* plant) { static_cast<void>(plant); }
};

}  // namespace ltsc::core
