#include "core/controller_runtime.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace ltsc::core {

namespace {

/// One controller decision against any plant exposing the scalar
/// observation/actuation surface: gathers the controller_inputs, asks
/// the policy, and actuates the returned fan commands.  Shared by the
/// scalar runtime (on server_simulator directly) and the batched
/// runtime (through a lane view), so the two cannot drift apart.
template <typename Plant>
void poll_and_actuate(Plant& plant, fan_controller& controller, const runtime_config& config,
                      const char* zone_count_msg) {
    controller_inputs in;
    in.now = plant.now();
    in.utilization_pct = plant.measured_utilization(config.util_window);
    in.max_cpu_temp = plant.max_cpu_sensor_temp();
    in.current_rpm = plant.average_fan_rpm();
    in.system_power = plant.system_power_reading();
    in.sensor_age_s = plant.telemetry_age_s();
    const std::vector<double> sensors = plant.cpu_sensor_temps();
    for (std::size_t s = 0; s < 2; ++s) {
        in.socket_util_pct[s] = plant.measured_socket_utilization(s, config.util_window);
        // Sensors 2s and 2s+1 sit on die s; the policy sees the max.
        in.socket_temp_c[s] = std::max(sensors[2 * s], sensors[2 * s + 1]);
    }
    for (std::size_t s = 0; s < sensors.size() && s < in.cpu_sensor_c.size(); ++s) {
        in.cpu_sensor_c[s] = sensors[s];
    }
    for (std::size_t z = 0; z < plant.config().fan_pairs; ++z) {
        in.zone_rpm.push_back(plant.fan_speed(z));
    }
    if (const core::fault_monitor* mon = plant.monitor()) {
        in.monitor_valid = true;
        for (std::size_t s = 0; s < mon->sensor_count() && s < in.sensor_health.size(); ++s) {
            in.sensor_health[s] = static_cast<std::uint8_t>(mon->sensor_health(s));
        }
        in.fan_health.reserve(mon->fan_pair_count());
        for (std::size_t p = 0; p < mon->fan_pair_count(); ++p) {
            in.fan_health.push_back(static_cast<std::uint8_t>(mon->fan_health(p)));
        }
        for (std::size_t d = 0; d < in.model_die_c.size(); ++d) {
            in.model_die_c[d] = mon->die_estimate_c(d);
        }
    }
    if (const auto cmds = controller.decide_zones(in)) {
        util::ensure(cmds->size() == plant.config().fan_pairs, zone_count_msg);
        bool uniform = true;
        for (const util::rpm_t r : *cmds) {
            uniform = uniform && r.value() == cmds->front().value();
        }
        if (uniform) {
            plant.set_all_fans(cmds->front());  // one counted change
        } else {
            for (std::size_t z = 0; z < cmds->size(); ++z) {
                plant.set_fan_speed(z, (*cmds)[z]);
            }
        }
    }
}

/// Detaches controllers' plant windows on every exit path (including
/// exception unwind), so a predictive controller can never be left
/// dangling into a destroyed stack-allocated plant view.
class plant_attachments {
public:
    explicit plant_attachments(std::vector<fan_controller*> controllers)
        : controllers_(std::move(controllers)) {}
    plant_attachments(const plant_attachments&) = delete;
    plant_attachments& operator=(const plant_attachments&) = delete;
    ~plant_attachments() {
        for (fan_controller* c : controllers_) {
            c->attach_plant(nullptr);
        }
    }

private:
    std::vector<fan_controller*> controllers_;
};

/// server_simulator's surface, re-addressed to one server_batch lane.
struct lane_view {
    sim::server_batch& batch;
    std::size_t lane;

    [[nodiscard]] util::seconds_t now() const { return batch.now(lane); }
    [[nodiscard]] double measured_utilization(util::seconds_t w) const {
        return batch.measured_utilization(lane, w);
    }
    [[nodiscard]] util::celsius_t max_cpu_sensor_temp() const {
        return batch.max_cpu_sensor_temp(lane);
    }
    [[nodiscard]] util::rpm_t average_fan_rpm() const { return batch.average_fan_rpm(lane); }
    [[nodiscard]] util::watts_t system_power_reading() const {
        return batch.system_power_reading(lane);
    }
    [[nodiscard]] std::vector<double> cpu_sensor_temps() const {
        return batch.cpu_sensor_temps(lane);
    }
    [[nodiscard]] double measured_socket_utilization(std::size_t s, util::seconds_t w) const {
        return batch.measured_socket_utilization(lane, s, w);
    }
    [[nodiscard]] double telemetry_age_s() const { return batch.telemetry_age_s(lane); }
    [[nodiscard]] const core::fault_monitor* monitor() const { return batch.monitor(lane); }
    [[nodiscard]] const sim::server_config& config() const { return batch.config(lane); }
    [[nodiscard]] util::rpm_t fan_speed(std::size_t z) const { return batch.fan_speed(lane, z); }
    void set_all_fans(util::rpm_t rpm) { batch.set_all_fans(lane, rpm); }
    void set_fan_speed(std::size_t z, util::rpm_t rpm) { batch.set_fan_speed(lane, z, rpm); }
};

}  // namespace

sim::run_metrics run_controlled(sim::server_simulator& sim, fan_controller& controller,
                                const workload::utilization_profile& profile,
                                const runtime_config& config) {
    util::ensure(config.sim_dt.value() > 0.0, "run_controlled: non-positive step");
    util::ensure(config.util_window.value() > 0.0, "run_controlled: non-positive window");

    sim.bind_workload(profile);
    sim.force_cold_start();
    sim.set_all_fans(config.initial_rpm);
    sim.reset_fan_change_counter();
    // Attach the read-only plant window before reset() so a predictive
    // controller starts the run with a fresh view of the fresh binding;
    // the guard detaches on every exit path (the view is stack-owned).
    const simulator_plant_view plant(sim);
    const plant_attachments attached({&controller});
    controller.attach_plant(&plant);
    controller.reset();

    const double duration = profile.duration().value();
    const double period = controller.polling_period().value();
    double next_decision = 0.0;

    while (sim.now().value() < duration - 1e-9) {
        if (sim.now().value() + 1e-9 >= next_decision) {
            poll_and_actuate(sim, controller, config,
                             "run_controlled: controller returned wrong zone count");
            next_decision += period;
        }
        sim.step(config.sim_dt);
    }
    return sim::compute_metrics(sim, profile.name(), controller.name());
}

std::vector<sim::run_metrics> run_controlled_batch(
    sim::server_batch& batch, const std::vector<fan_controller*>& controllers,
    const std::vector<workload::utilization_profile>& profiles, const runtime_config& config) {
    util::ensure(config.sim_dt.value() > 0.0, "run_controlled_batch: non-positive step");
    util::ensure(config.util_window.value() > 0.0, "run_controlled_batch: non-positive window");
    const std::size_t n = batch.lane_count();
    util::ensure(controllers.size() == n,
                 "run_controlled_batch: controller count != lane count");
    util::ensure(profiles.size() == n, "run_controlled_batch: profile count != lane count");
    util::ensure(n > 0, "run_controlled_batch: empty batch");
    // Number of plant steps the scalar loop would take for a duration
    // (durations may differ by segment-accumulation rounding; what
    // matters is where the scalar loop would stop).
    const auto steps_for = [&](double dur) {
        double now = 0.0;
        long k = 0;
        while (now < dur - 1e-9) {
            now += config.sim_dt.value();
            ++k;
        }
        return k;
    };
    // Lanes share one time base but may stop at different step counts: a
    // finished lane goes inert and the rest of the fleet keeps stepping.
    std::vector<long> steps(n);
    long max_steps = 0;
    for (std::size_t l = 0; l < n; ++l) {
        util::ensure(controllers[l] != nullptr, "run_controlled_batch: null controller");
        steps[l] = steps_for(profiles[l].duration().value());
        max_steps = std::max(max_steps, steps[l]);
    }

    std::vector<double> period(n);
    std::vector<double> next_decision(n, 0.0);
    for (std::size_t l = 0; l < n; ++l) {
        batch.bind_workload(l, profiles[l]);
    }
    batch.force_cold_start();
    // One plant window per lane (stable addresses for the whole run), so
    // fleets of predictive controllers each see their own lane; the
    // guard detaches every controller on any exit path.
    std::vector<batch_lane_plant_view> plant_views;
    plant_views.reserve(n);
    for (std::size_t l = 0; l < n; ++l) {
        plant_views.emplace_back(batch, l);
    }
    const plant_attachments attached(controllers);
    for (std::size_t l = 0; l < n; ++l) {
        batch.set_all_fans(l, config.initial_rpm);
        batch.reset_fan_change_counter(l);
        controllers[l]->attach_plant(&plant_views[l]);
        controllers[l]->reset();
        period[l] = controllers[l]->polling_period().value();
    }

    for (long k = 0; k < max_steps; ++k) {
        for (std::size_t l = 0; l < n; ++l) {
            if (k >= steps[l]) {
                batch.set_lane_active(l, false);
                continue;
            }
            if (batch.now(l).value() + 1e-9 < next_decision[l]) {
                continue;
            }
            lane_view lane{batch, l};
            poll_and_actuate(lane, *controllers[l], config,
                             "run_controlled_batch: controller returned wrong zone count");
            next_decision[l] += period[l];
        }
        batch.step(config.sim_dt);
    }

    std::vector<sim::run_metrics> out;
    out.reserve(n);
    for (std::size_t l = 0; l < n; ++l) {
        out.push_back(sim::compute_metrics(batch, l, profiles[l].name(), controllers[l]->name()));
        // The run borrows the batch: hand it back with every lane live
        // again, so follow-up stepping does not silently skip the lanes
        // whose profiles finished first.
        batch.set_lane_active(l, true);
    }
    return out;
}

std::vector<sim::run_metrics> run_controlled_fleet(
    sim::fleet& fleet, const std::vector<fan_controller*>& controllers,
    const std::vector<workload::utilization_profile>& profiles, const runtime_config& config) {
    const std::size_t n = fleet.lane_count();
    util::ensure(controllers.size() == n, "run_controlled_fleet: controller count != lane count");
    util::ensure(profiles.size() == n, "run_controlled_fleet: profile count != lane count");

    std::vector<sim::run_metrics> out(n);
    fleet.for_each_shard([&](std::size_t s) {
        const std::size_t lo = fleet.shard_offset(s);
        const std::size_t hi = fleet.shard_offset(s + 1);
        const std::vector<fan_controller*> shard_controllers(
            controllers.begin() + static_cast<std::ptrdiff_t>(lo),
            controllers.begin() + static_cast<std::ptrdiff_t>(hi));
        const std::vector<workload::utilization_profile> shard_profiles(
            profiles.begin() + static_cast<std::ptrdiff_t>(lo),
            profiles.begin() + static_cast<std::ptrdiff_t>(hi));
        std::vector<sim::run_metrics> metrics =
            run_controlled_batch(fleet.shard(s), shard_controllers, shard_profiles, config);
        std::move(metrics.begin(), metrics.end(), out.begin() + static_cast<std::ptrdiff_t>(lo));
    });
    return out;
}

}  // namespace ltsc::core
