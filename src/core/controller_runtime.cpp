#include "core/controller_runtime.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace ltsc::core {

sim::run_metrics run_controlled(sim::server_simulator& sim, fan_controller& controller,
                                const workload::utilization_profile& profile,
                                const runtime_config& config) {
    util::ensure(config.sim_dt.value() > 0.0, "run_controlled: non-positive step");
    util::ensure(config.util_window.value() > 0.0, "run_controlled: non-positive window");

    sim.bind_workload(profile);
    sim.force_cold_start();
    sim.set_all_fans(config.initial_rpm);
    sim.reset_fan_change_counter();
    controller.reset();

    const double duration = profile.duration().value();
    const double period = controller.polling_period().value();
    double next_decision = 0.0;

    while (sim.now().value() < duration - 1e-9) {
        if (sim.now().value() + 1e-9 >= next_decision) {
            controller_inputs in;
            in.now = sim.now();
            in.utilization_pct = sim.measured_utilization(config.util_window);
            in.max_cpu_temp = sim.max_cpu_sensor_temp();
            in.current_rpm = sim.average_fan_rpm();
            in.system_power = sim.system_power_reading();
            const std::vector<double> sensors = sim.cpu_sensor_temps();
            for (std::size_t s = 0; s < 2; ++s) {
                in.socket_util_pct[s] = sim.measured_socket_utilization(s, config.util_window);
                // Sensors 2s and 2s+1 sit on die s; the policy sees the max.
                in.socket_temp_c[s] = std::max(sensors[2 * s], sensors[2 * s + 1]);
            }
            for (std::size_t z = 0; z < sim.config().fan_pairs; ++z) {
                in.zone_rpm.push_back(sim.fan_speed(z));
            }
            if (const auto cmds = controller.decide_zones(in)) {
                util::ensure(cmds->size() == sim.config().fan_pairs,
                             "run_controlled: controller returned wrong zone count");
                bool uniform = true;
                for (const util::rpm_t r : *cmds) {
                    uniform = uniform && r.value() == cmds->front().value();
                }
                if (uniform) {
                    sim.set_all_fans(cmds->front());  // one counted change
                } else {
                    for (std::size_t z = 0; z < cmds->size(); ++z) {
                        sim.set_fan_speed(z, (*cmds)[z]);
                    }
                }
            }
            next_decision += period;
        }
        sim.step(config.sim_dt);
    }
    return sim::compute_metrics(sim, profile.name(), controller.name());
}

}  // namespace ltsc::core
