#include "core/zone_lut_controller.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ltsc::core {

zone_lut_controller::zone_lut_controller(fan_lut table, const lut_controller_config& config)
    : table_(std::move(table)), config_(config) {
    util::ensure(!table_.empty(), "zone_lut_controller: empty LUT");
    util::ensure(config.polling_period.value() > 0.0, "zone_lut_controller: bad polling period");
    util::ensure(config.min_hold.value() >= 0.0, "zone_lut_controller: negative hold time");
}

util::seconds_t zone_lut_controller::polling_period() const { return config_.polling_period; }

util::rpm_t zone_lut_controller::zone_target(double socket_util_pct,
                                             double socket_temp_c) const {
    if (socket_temp_c > config_.emergency_temp_c) {
        return config_.emergency_rpm;
    }
    return table_.lookup(std::clamp(socket_util_pct, 0.0, 100.0));
}

std::optional<std::vector<util::rpm_t>> zone_lut_controller::decide_zones(
    const controller_inputs& in) {
    util::ensure(in.zone_rpm.size() >= 1, "zone_lut_controller: no zone state");

    std::vector<util::rpm_t> target = in.zone_rpm;
    const util::rpm_t cpu0 = zone_target(in.socket_util_pct[0], in.socket_temp_c[0]);
    const util::rpm_t cpu1 = zone_target(in.socket_util_pct[1], in.socket_temp_c[1]);
    target[0] = cpu0;
    if (target.size() >= 2) {
        target[1] = cpu1;
    }
    if (target.size() >= 3) {
        // The shared/DIMM zone follows the lighter socket: the DIMM field
        // is cooled by the total flow and its own zone only tops it up.
        target[2] = util::rpm_t{std::min(cpu0.value(), cpu1.value())};
    }

    bool any_change = false;
    bool emergency = false;
    for (std::size_t z = 0; z < target.size(); ++z) {
        if (target[z].value() != in.zone_rpm[z].value()) {
            any_change = true;
        }
        if (target[z].value() == config_.emergency_rpm.value() &&
            (in.socket_temp_c[0] > config_.emergency_temp_c ||
             in.socket_temp_c[1] > config_.emergency_temp_c)) {
            emergency = true;
        }
    }
    if (!any_change) {
        return std::nullopt;
    }
    if (!emergency && has_changed_ &&
        in.now.value() - last_change_s_ < config_.min_hold.value()) {
        return std::nullopt;
    }
    has_changed_ = true;
    last_change_s_ = in.now.value();
    return target;
}

std::optional<util::rpm_t> zone_lut_controller::decide(const controller_inputs& in) {
    const auto zones = decide_zones(in);
    if (!zones.has_value()) {
        return std::nullopt;
    }
    double acc = 0.0;
    for (const util::rpm_t r : *zones) {
        acc += r.value();
    }
    return util::rpm_t{acc / static_cast<double>(zones->size())};
}

void zone_lut_controller::reset() {
    has_changed_ = false;
    last_change_s_ = 0.0;
}

}  // namespace ltsc::core
