// Quickstart: build the paper's server, characterize it, and run the
// LUT-based cooling controller on a simple step workload.
//
//   $ ./quickstart
//
// Walks through the library's core loop in ~30 lines of user code:
//   1. instantiate the simulated enterprise server (sim::server_simulator)
//   2. run the Section-IV characterization to obtain the fan LUT
//   3. define a workload profile
//   4. run the LUT controller against the stock policy and compare.
#include <cstdio>

#include "core/characterization.hpp"
#include "core/controller_runtime.hpp"
#include "core/default_controller.hpp"
#include "core/lut_controller.hpp"
#include "sim/metrics.hpp"
#include "sim/server_simulator.hpp"
#include "workload/profile.hpp"

int main() {
    using namespace ltsc;
    using namespace ltsc::util::literals;

    // 1. The plant: a 2-socket SPARC-T3-class server, calibrated to the
    //    DATE'13 paper (366 W idle, ~720 W peak, 6 fans in 3 pairs).
    sim::server_simulator server;

    // 2. Offline characterization: sweep utilization x fan speed, fit the
    //    leakage model, derive the optimal-RPM lookup table.
    const core::characterization_result ch = core::characterize(server);
    std::printf("fitted power model: P - Pfan = %.1f + %.3f*U + %.4f*e^(%.5f*T)  (R^2 = %.4f)\n",
                ch.fit.c0_w, ch.fit.k1_w_per_pct, ch.fit.k2_w, ch.fit.k3_per_c,
                ch.fit.r_squared);
    std::printf("LUT: utilization -> fan speed\n");
    for (const auto& e : ch.lut.entries()) {
        std::printf("  <= %5.1f %%  ->  %4.0f RPM  (expected %.1f degC)\n", e.utilization_pct,
                    e.rpm.value(), e.expected_cpu_temp_c);
    }

    // 3. A workload: 10 min idle, 25 min at 70 %, 10 min at 30 %, idle tail.
    workload::utilization_profile profile("quickstart");
    profile.idle(5.0_min)
        .constant(70.0, 25.0_min)
        .constant(30.0, 10.0_min)
        .idle(5.0_min);

    // 4. Run the stock fixed-speed policy and the LUT controller.
    core::default_controller stock;
    core::lut_controller lut(ch.lut);
    const sim::run_metrics m_stock = core::run_controlled(server, stock, profile);
    const sim::run_metrics m_lut = core::run_controlled(server, lut, profile);
    const util::watts_t idle = server.idle_power(3300_rpm);

    std::printf("\n%-8s %12s %10s %10s %12s %9s\n", "policy", "energy[kWh]", "peak[W]",
                "maxT[degC]", "fan changes", "avg RPM");
    for (const auto& m : {m_stock, m_lut}) {
        std::printf("%-8s %12.4f %10.1f %10.1f %12zu %9.0f\n", m.controller_name.c_str(),
                    m.energy_kwh, m.peak_power_w, m.max_temp_c, m.fan_changes, m.avg_rpm);
    }
    std::printf("\nnet savings (idle energy discounted): %.1f %%\n",
                100.0 * sim::net_savings(m_lut, m_stock, idle));
    return 0;
}
