// Implementing a custom policy against the public controller interface.
//
//   $ ./custom_controller
//
// Shows the extension point the library is built around: subclass
// core::fan_controller, and the runtime takes care of polling, actuation
// and metric extraction.  The custom policy here is a "utilization
// proportional" controller — a naive straw-man that maps utilization
// linearly onto the RPM range — compared against the paper's three.
#include <cstdio>

#include "core/bang_bang_controller.hpp"
#include "core/characterization.hpp"
#include "core/controller_runtime.hpp"
#include "core/default_controller.hpp"
#include "core/lut_controller.hpp"
#include "sim/metrics.hpp"
#include "sim/server_simulator.hpp"
#include "workload/paper_tests.hpp"

namespace {

using namespace ltsc;
using namespace ltsc::util::literals;

/// Straw-man policy: RPM linear in utilization.  Reasonable-looking, but
/// it ignores the convex fan-power/leakage tradeoff the LUT encodes: at
/// high load it overspends on airflow, at low load it can undercool warm
/// ambients.
class proportional_controller final : public core::fan_controller {
public:
    [[nodiscard]] util::seconds_t polling_period() const override { return 1.0_s; }

    [[nodiscard]] std::optional<util::rpm_t> decide(const core::controller_inputs& in) override {
        const double target = 1800.0 + (4200.0 - 1800.0) * in.utilization_pct / 100.0;
        // Quantize to 300 RPM steps and rate limit exactly like the LUT
        // controller, for a fair comparison.
        const double quantized = 1800.0 + 300.0 * std::round((target - 1800.0) / 300.0);
        if (quantized == in.current_rpm.value()) {
            return std::nullopt;
        }
        if (changed_ && in.now.value() - last_change_ < 60.0) {
            return std::nullopt;
        }
        changed_ = true;
        last_change_ = in.now.value();
        return util::rpm_t{quantized};
    }

    [[nodiscard]] std::string name() const override { return "Proportional"; }

    void reset() override {
        changed_ = false;
        last_change_ = 0.0;
    }

private:
    bool changed_ = false;
    double last_change_ = 0.0;
};

}  // namespace

int main() {
    sim::server_simulator server;
    const auto lut_table = core::characterize(server).lut;
    const util::watts_t idle = server.idle_power(3300_rpm);

    const auto profile = workload::make_paper_test(workload::paper_test::test3_frequent);

    core::default_controller stock;
    core::bang_bang_controller bang;
    core::lut_controller lut(lut_table);
    proportional_controller custom;

    std::printf("Test-3 (new utilization level every 5 minutes)\n");
    std::printf("%-14s %12s %9s %10s %12s %9s\n", "policy", "energy[kWh]", "net sav",
                "maxT[degC]", "fan changes", "avg RPM");

    const sim::run_metrics base = core::run_controlled(server, stock, profile);
    core::fan_controller* controllers[] = {&bang, &lut, &custom};
    std::printf("%-14s %12.4f %9s %10.1f %12zu %9.0f\n", base.controller_name.c_str(),
                base.energy_kwh, "--", base.max_temp_c, base.fan_changes, base.avg_rpm);
    for (core::fan_controller* c : controllers) {
        const sim::run_metrics m = core::run_controlled(server, *c, profile);
        std::printf("%-14s %12.4f %8.1f%% %10.1f %12zu %9.0f\n", m.controller_name.c_str(),
                    m.energy_kwh, 100.0 * sim::net_savings(m, base, idle), m.max_temp_c,
                    m.fan_changes, m.avg_rpm);
    }
    std::printf("\nThe LUT policy should come out ahead: proportional control spends\n"
                "cubic fan power where the leakage tradeoff does not justify it.\n");
    return 0;
}
