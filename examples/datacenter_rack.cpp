// Scale-out scenario: a rack of simulated servers under heterogeneous
// workloads, comparing cooling policies fleet-wide.
//
//   $ ./datacenter_rack [server_count]
//
// Each server gets its own workload mix (web-like diurnal ramps, batch
// plateaus, bursty shells).  The whole rack is one sim::server_batch:
// every server is a lane of the structure-of-arrays plant, all lanes
// step through one batched thermal kernel, and each lane's controller
// runs against its own telemetry.  The example reports per-policy fleet
// energy, the PSU conversion losses (power::psu_model evaluated over the
// fleet's DC draws as one flat array), and the aggregate heat the rack
// dumps into the hot aisle — the quantity a facility-level study would
// feed into a CRAC model.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/bang_bang_controller.hpp"
#include "core/characterization.hpp"
#include "core/controller_runtime.hpp"
#include "core/default_controller.hpp"
#include "core/lut_controller.hpp"
#include "power/psu_model.hpp"
#include "sim/metrics.hpp"
#include "sim/server_batch.hpp"
#include "sim/server_simulator.hpp"
#include "thermal/room_model.hpp"
#include "workload/profile.hpp"
#include "workload/queueing.hpp"

namespace {

using namespace ltsc;
using namespace ltsc::util::literals;

/// Builds the i-th server's workload: one of three archetypes.
workload::utilization_profile rack_workload(std::size_t i) {
    switch (i % 3) {
        case 0: {  // web front-end: diurnal ramp up and down
            workload::utilization_profile p("web");
            p.idle(4.0_min)
                .ramp(10.0, 85.0, 24.0_min)
                .constant(85.0, 8.0_min)
                .ramp(85.0, 10.0, 20.0_min)
                .idle(4.0_min);
            return p;
        }
        case 1: {  // batch: long plateaus
            workload::utilization_profile p("batch");
            p.idle(4.0_min)
                .constant(95.0, 22.0_min)
                .constant(35.0, 12.0_min)
                .constant(95.0, 18.0_min)
                .idle(4.0_min);
            return p;
        }
        default: {  // interactive shells: bursty M/M/c
            workload::mmc_config cfg;
            cfg.servers = 64;
            cfg.service_rate_hz = 1.0 / 20.0;
            cfg.arrival_rate_hz = 0.2 * 64.0 * cfg.service_rate_hz;
            cfg.modulation.enabled = true;
            cfg.modulation.burst_arrival_rate_hz = 0.9 * 64.0 * cfg.service_rate_hz;
            cfg.seed = 0xACE0 + i;
            return workload::mmc_profile("shell", cfg, 60.0_min);
        }
    }
}

std::unique_ptr<core::fan_controller> make_policy(const std::string& policy,
                                                  const core::fan_lut& lut_table) {
    if (policy == "Bang") {
        return std::make_unique<core::bang_bang_controller>();
    }
    if (policy == "LUT") {
        return std::make_unique<core::lut_controller>(lut_table);
    }
    return std::make_unique<core::default_controller>();
}

struct fleet_result {
    double energy_kwh = 0.0;
    double peak_w = 0.0;
    double max_temp_c = 0.0;
    double exhaust_heat_kwh = 0.0;  // heat into the hot aisle (= DC energy)
    double psu_loss_kwh = 0.0;      // conversion losses at the rack PDU
    double duration_s = 0.0;        // trace span of the runs
};

/// Runs one policy across the whole rack as a single batched plant and
/// folds the per-lane rows into fleet totals.
fleet_result run_fleet(const sim::server_config& cfg, std::size_t servers,
                       const std::string& policy, const core::fan_lut& lut_table,
                       const power::psu_model& psu) {
    sim::server_batch rack(cfg, servers);
    std::vector<workload::utilization_profile> profiles;
    std::vector<std::unique_ptr<core::fan_controller>> owned;
    std::vector<core::fan_controller*> controllers;
    for (std::size_t i = 0; i < servers; ++i) {
        profiles.push_back(rack_workload(i));
        owned.push_back(make_policy(policy, lut_table));
        controllers.push_back(owned.back().get());
    }
    const std::vector<sim::run_metrics> rows =
        core::run_controlled_batch(rack, controllers, profiles);

    fleet_result fleet;
    std::vector<double> dc_w(servers);
    for (std::size_t i = 0; i < servers; ++i) {
        const sim::run_metrics& m = rows[i];
        fleet.energy_kwh += m.energy_kwh;
        fleet.peak_w += m.peak_power_w;
        fleet.max_temp_c = std::max(fleet.max_temp_c, m.max_temp_c);
        fleet.exhaust_heat_kwh += m.energy_kwh;
        fleet.duration_s = m.duration_s;
        dc_w[i] = m.energy_kwh * 3.6e6 / m.duration_s;
    }
    // Everything a server draws ends up as heat in the aisle; the PSUs
    // add their conversion losses on top of the fleet's DC draws, which
    // are evaluated through the curve as one flat array.
    std::vector<double> ac_w;
    psu.ac_input_into(dc_w, ac_w);
    for (std::size_t i = 0; i < servers; ++i) {
        fleet.psu_loss_kwh += (ac_w[i] - dc_w[i]) * rows[i].duration_s / 3.6e6;
    }
    return fleet;
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t servers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
    std::printf("rack of %zu servers (one server_batch lane each), 60-minute "
                "heterogeneous workloads\n\n",
                servers);

    // Characterize once (all servers share the hardware model).
    sim::server_simulator reference;
    const core::fan_lut lut_table = core::characterize(reference).lut;
    const power::psu_model psu;  // 2 kW 80+ Gold supply per server

    const char* policies[] = {"Default", "Bang", "LUT"};
    std::printf("%-8s %14s %11s %12s %14s %14s\n", "policy", "energy[kWh]", "peak[W]",
                "maxT[degC]", "PSU loss[kWh]", "aisle heat[kWh]");
    for (const char* policy : policies) {
        const fleet_result fleet =
            run_fleet(sim::paper_server(), servers, policy, lut_table, psu);
        std::printf("%-8s %14.3f %11.0f %12.1f %14.3f %14.3f\n", policy, fleet.energy_kwh,
                    fleet.peak_w, fleet.max_temp_c, fleet.psu_loss_kwh,
                    fleet.exhaust_heat_kwh + fleet.psu_loss_kwh);
    }

    // --- facility view: server control x room setpoint -------------------
    // The CRAC's COP improves with warmer supply air, but warmer rooms
    // raise server leakage and fan effort.  Sweep the setpoint with the
    // LUT policy (recharacterized per ambient) to find the facility knee.
    std::printf("\nfacility view (LUT policy, rack IT power + CRAC compressor):\n");
    std::printf("%14s %10s %14s %16s %8s\n", "setpoint[degC]", "COP", "IT avg [W]",
                "facility avg [W]", "PUE");
    const thermal::crac_model crac;
    for (double setpoint : {16.0, 20.0, 24.0, 28.0}) {
        auto cfg = sim::paper_server();
        cfg.thermal.ambient_c = setpoint;
        sim::server_simulator probe(cfg);
        const core::fan_lut warm_lut = core::characterize(probe).lut;
        const fleet_result fleet = run_fleet(cfg, servers, "LUT", warm_lut, psu);
        const double it_avg_w = fleet.energy_kwh * 3.6e6 / fleet.duration_s;
        const auto facility =
            crac.facility(util::watts_t{it_avg_w}, util::celsius_t{setpoint});
        std::printf("%14.0f %10.2f %14.0f %16.0f %8.3f\n", setpoint,
                    crac.cop(util::celsius_t{setpoint}), facility.it.value(),
                    facility.total.value(), facility.pue);
    }

    std::printf("\nFleet-level takeaway: per-server savings compound linearly across the\n"
                "rack, lower peak power relaxes the rack's provisioned power budget, and\n"
                "leakage-aware server control shifts the facility-optimal setpoint.\n");
    return 0;
}
