// Scale-out scenario: a rack of simulated servers under heterogeneous
// workloads, comparing cooling policies fleet-wide.
//
//   $ ./datacenter_rack [server_count]
//
// Each server gets its own workload mix (web-like diurnal ramps, batch
// plateaus, bursty shells).  The example reports per-policy fleet energy,
// the PSU conversion losses (power::psu_model), and the aggregate heat the
// rack dumps into the hot aisle — the quantity a facility-level study
// would feed into a CRAC model.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/bang_bang_controller.hpp"
#include "core/characterization.hpp"
#include "core/controller_runtime.hpp"
#include "core/default_controller.hpp"
#include "core/lut_controller.hpp"
#include "power/psu_model.hpp"
#include "sim/metrics.hpp"
#include "sim/server_simulator.hpp"
#include "thermal/room_model.hpp"
#include "workload/profile.hpp"
#include "workload/queueing.hpp"

namespace {

using namespace ltsc;
using namespace ltsc::util::literals;

/// Builds the i-th server's workload: one of three archetypes.
workload::utilization_profile rack_workload(std::size_t i) {
    switch (i % 3) {
        case 0: {  // web front-end: diurnal ramp up and down
            workload::utilization_profile p("web");
            p.idle(4.0_min)
                .ramp(10.0, 85.0, 24.0_min)
                .constant(85.0, 8.0_min)
                .ramp(85.0, 10.0, 20.0_min)
                .idle(4.0_min);
            return p;
        }
        case 1: {  // batch: long plateaus
            workload::utilization_profile p("batch");
            p.idle(4.0_min)
                .constant(95.0, 22.0_min)
                .constant(35.0, 12.0_min)
                .constant(95.0, 18.0_min)
                .idle(4.0_min);
            return p;
        }
        default: {  // interactive shells: bursty M/M/c
            workload::mmc_config cfg;
            cfg.servers = 64;
            cfg.service_rate_hz = 1.0 / 20.0;
            cfg.arrival_rate_hz = 0.2 * 64.0 * cfg.service_rate_hz;
            cfg.modulation.enabled = true;
            cfg.modulation.burst_arrival_rate_hz = 0.9 * 64.0 * cfg.service_rate_hz;
            cfg.seed = 0xACE0 + i;
            return workload::mmc_profile("shell", cfg, 60.0_min);
        }
    }
}

struct fleet_result {
    double energy_kwh = 0.0;
    double peak_w = 0.0;
    double max_temp_c = 0.0;
    double exhaust_heat_kwh = 0.0;  // heat into the hot aisle (= DC energy)
    double psu_loss_kwh = 0.0;      // conversion losses at the rack PDU
};

}  // namespace

int main(int argc, char** argv) {
    const std::size_t servers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
    std::printf("rack of %zu servers, 60-minute heterogeneous workloads\n\n", servers);

    // Characterize once (all servers share the hardware model).
    sim::server_simulator reference;
    const core::fan_lut lut_table = core::characterize(reference).lut;
    const power::psu_model psu;  // 2 kW 80+ Gold supply per server

    const char* policies[] = {"Default", "Bang", "LUT"};
    std::printf("%-8s %14s %11s %12s %14s %14s\n", "policy", "energy[kWh]", "peak[W]",
                "maxT[degC]", "PSU loss[kWh]", "aisle heat[kWh]");
    for (const char* policy : policies) {
        fleet_result fleet;
        for (std::size_t i = 0; i < servers; ++i) {
            sim::server_simulator s;
            std::unique_ptr<core::fan_controller> controller;
            if (std::string(policy) == "Bang") {
                controller = std::make_unique<core::bang_bang_controller>();
            } else if (std::string(policy) == "LUT") {
                controller = std::make_unique<core::lut_controller>(lut_table);
            } else {
                controller = std::make_unique<core::default_controller>();
            }
            const sim::run_metrics m =
                core::run_controlled(s, *controller, rack_workload(i));
            fleet.energy_kwh += m.energy_kwh;
            fleet.peak_w += m.peak_power_w;
            fleet.max_temp_c = std::max(fleet.max_temp_c, m.max_temp_c);
            // Everything a server draws ends up as heat in the aisle; the
            // PSU adds its conversion loss on top of the DC draw.
            const double avg_dc_w = m.energy_kwh * 3.6e6 / s.trace().total_power.duration();
            const double loss_w = psu.loss(util::watts_t{avg_dc_w}).value();
            fleet.psu_loss_kwh +=
                loss_w * s.trace().total_power.duration() / 3.6e6;
            fleet.exhaust_heat_kwh += m.energy_kwh;
        }
        std::printf("%-8s %14.3f %11.0f %12.1f %14.3f %14.3f\n", policy, fleet.energy_kwh,
                    fleet.peak_w, fleet.max_temp_c, fleet.psu_loss_kwh,
                    fleet.exhaust_heat_kwh + fleet.psu_loss_kwh);
    }

    // --- facility view: server control x room setpoint -------------------
    // The CRAC's COP improves with warmer supply air, but warmer rooms
    // raise server leakage and fan effort.  Sweep the setpoint with the
    // LUT policy (recharacterized per ambient) to find the facility knee.
    std::printf("\nfacility view (LUT policy, rack IT power + CRAC compressor):\n");
    std::printf("%14s %10s %14s %16s %8s\n", "setpoint[degC]", "COP", "IT avg [W]",
                "facility avg [W]", "PUE");
    const thermal::crac_model crac;
    for (double setpoint : {16.0, 20.0, 24.0, 28.0}) {
        auto cfg = sim::paper_server();
        cfg.thermal.ambient_c = setpoint;
        sim::server_simulator probe(cfg);
        const core::fan_lut warm_lut = core::characterize(probe).lut;
        double it_avg_w = 0.0;
        for (std::size_t i = 0; i < servers; ++i) {
            sim::server_simulator s(cfg);
            core::lut_controller lut(warm_lut);
            const sim::run_metrics m = core::run_controlled(s, lut, rack_workload(i));
            it_avg_w += m.energy_kwh * 3.6e6 / m.duration_s;
        }
        const auto facility =
            crac.facility(util::watts_t{it_avg_w}, util::celsius_t{setpoint});
        std::printf("%14.0f %10.2f %14.0f %16.0f %8.3f\n", setpoint,
                    crac.cop(util::celsius_t{setpoint}), facility.it.value(),
                    facility.total.value(), facility.pue);
    }

    std::printf("\nFleet-level takeaway: per-server savings compound linearly across the\n"
                "rack, lower peak power relaxes the rack's provisioned power budget, and\n"
                "leakage-aware server control shifts the facility-optimal setpoint.\n");
    return 0;
}
