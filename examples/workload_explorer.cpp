// Workload playground: generates the paper's four controller benchmarks
// plus the building-block profiles, and dumps them as CSV for plotting.
//
//   $ ./workload_explorer            # summary table
//   $ ./workload_explorer --csv > workloads.csv
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>

#include "util/csv.hpp"
#include "workload/loadgen.hpp"
#include "workload/paper_tests.hpp"
#include "workload/queueing.hpp"

int main(int argc, char** argv) {
    using namespace ltsc;
    using namespace ltsc::util::literals;

    const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;

    const auto tests = workload::all_paper_tests();

    if (csv) {
        std::vector<util::named_series> series;
        for (const auto& t : tests) {
            series.push_back(util::named_series{t.name() + "_target", "pct",
                                                t.sampled(util::seconds_t{10.0})});
            // Include what the PWM synthesis actually plays on the CPUs.
            workload::loadgen lg(t);
            util::time_series inst;
            for (double x = 0.0; x < t.duration().value(); x += 10.0) {
                inst.push_back(x, lg.instantaneous_utilization(util::seconds_t{x}));
            }
            series.push_back(util::named_series{t.name() + "_pwm", "pct", inst});
        }
        util::write_series_csv(std::cout, series);
        return 0;
    }

    std::printf("%-8s %10s %12s %10s %10s\n", "test", "dur[min]", "avg util[%]", "segments",
                "peak[%]");
    for (const auto& t : tests) {
        double peak = 0.0;
        for (double x = 0.0; x < t.duration().value(); x += 5.0) {
            peak = std::max(peak, t.utilization_at(util::seconds_t{x}));
        }
        std::printf("%-8s %10.1f %12.1f %10zu %10.1f\n", t.name().c_str(),
                    t.duration().value() / 60.0, t.average_utilization(), t.segment_count(),
                    peak);
    }

    // Queueing statistics for the Test-4 generator, against Erlang theory.
    workload::mmc_config cfg;
    cfg.servers = 64;
    cfg.service_rate_hz = 1.0 / 20.0;
    cfg.arrival_rate_hz = 0.4 * 64.0 * cfg.service_rate_hz;
    const auto r = workload::simulate_mmc(cfg, util::seconds_t{20000.0});
    std::printf("\nM/M/64 sanity (rho = 0.4): measured util %.1f %%  "
                "mean queue %.3f  mean response %.1f s  completed %llu\n",
                r.stats.mean_utilization_pct, r.stats.mean_queue_length,
                r.stats.mean_response_time_s,
                static_cast<unsigned long long>(r.stats.completed_jobs));
    std::printf("Erlang-C wait probability at this load: %.4f\n",
                workload::erlang_c(64, 0.4 * 64.0));
    std::printf("\nRun with --csv to dump target and PWM traces for plotting.\n");
    return 0;
}
