// Full Section-IV walkthrough: experimental protocol, sweep, leakage
// model fitting, and LUT generation — with the intermediate data printed
// the way the paper reports it.
//
//   $ ./characterize_server [--csv]
//
// With --csv the raw sweep is dumped as CSV for external plotting.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/characterization.hpp"
#include "power/leakage_model.hpp"
#include "sim/experiment.hpp"
#include "sim/server_simulator.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
    using namespace ltsc;
    using namespace ltsc::util::literals;

    const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;
    sim::server_simulator server;

    // --- protocol experiment (Fig. 1 style) -----------------------------
    // Cold start, fans pinned, 5 min idle, 30 min full load, 10 min idle.
    std::printf("# protocol experiment: 100%% load at 2400 RPM (45 min timeline)\n");
    sim::run_protocol_experiment(server, 2400_rpm, 100.0);
    const auto& tr = server.trace();
    for (double t_min : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0}) {
        std::printf("  t=%4.0f min  Tcpu=%5.1f degC  P=%6.1f W\n", t_min,
                    tr.avg_cpu_temp().value_at(t_min * 60.0 - 1.0),
                    tr.total_power().value_at(t_min * 60.0 - 1.0));
    }

    // --- sweep + fit (Eqn. 1 / Eqn. 2) -----------------------------------
    const core::characterization_result ch = core::characterize(server);
    std::printf("\n# model fit (paper: k2 = 0.3231, k3 = 0.04749, err 2.243 W, acc 98%%)\n");
    std::printf("  c0 = %.3f W, k1 = %.4f W/%%, k2 = %.4f W, k3 = %.5f 1/degC\n", ch.fit.c0_w,
                ch.fit.k1_w_per_pct, ch.fit.k2_w, ch.fit.k3_per_c);
    std::printf("  rmse = %.3f W, R^2 = %.4f, converged = %s\n", ch.fit.rmse_w,
                ch.fit.r_squared, ch.fit.converged ? "yes" : "no");

    const auto paper = power::leakage_params::paper_fit();
    std::printf("  recovered-vs-paper: dk2 = %+.4f, dk3 = %+.5f\n", ch.fit.k2_w - paper.k2,
                ch.fit.k3_per_c - paper.k3);

    // --- LUT --------------------------------------------------------------
    std::printf("\n# generated LUT (cap 75 degC)\n");
    for (const auto& e : ch.lut.entries()) {
        std::printf("  U <= %5.1f %% -> %4.0f RPM   T = %4.1f degC   fan+leak = %5.1f W\n",
                    e.utilization_pct, e.rpm.value(), e.expected_cpu_temp_c,
                    e.expected_fan_leak_w);
    }

    if (csv) {
        std::printf("\n# sweep CSV\n");
        util::csv_writer w(std::cout);
        w.write_header({"utilization_pct", "fan_rpm", "avg_cpu_temp_c", "fan_power_w",
                        "leakage_power_w", "total_power_w"});
        for (const auto& p : ch.sweep) {
            w.write_row({p.utilization_pct, p.fan_rpm, p.avg_cpu_temp_c, p.fan_power_w,
                         p.leakage_power_w, p.total_power_w});
        }
    }
    return 0;
}
