// Ablation: robustness of the paper's conclusions to plant calibration.
//
// The reproduction's thermal/power constants were calibrated to the
// paper's anchors, but a reviewer should ask: do the conclusions (LUT
// saves energy, optimum near 2400 RPM, temperature under the cap) survive
// if the real machine's parameters are off?  This bench perturbs the key
// calibration constants by +-20-30 % and re-runs the Test-2 comparison.
//
// Every variant is a self-contained pipeline (characterize + two runs),
// so the whole sweep fans out over sim::parallel_runner::map; rows print
// in declaration order regardless of thread count (LTSC_THREADS=1 forces
// a serial sweep).
#include <cstdio>
#include <vector>

#include "core/bang_bang_controller.hpp"
#include "core/characterization.hpp"
#include "core/controller_runtime.hpp"
#include "core/default_controller.hpp"
#include "core/lut_controller.hpp"
#include "sim/metrics.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/server_simulator.hpp"
#include "workload/paper_tests.hpp"

namespace {

using namespace ltsc;
using namespace ltsc::util::literals;

struct variant {
    const char* label;
    sim::server_config config;
};

struct variant_row {
    double net_savings = 0.0;
    double lut_at_100_rpm = 0.0;
    double max_temp_c = 0.0;
    double avg_rpm = 0.0;
};

variant_row run_variant(const variant& v) {
    sim::server_simulator server(v.config);
    const core::fan_lut lut_table = core::characterize(server).lut;
    const util::watts_t idle = server.idle_power(3300_rpm);
    const auto profile = workload::make_paper_test(workload::paper_test::test2_periods);

    core::default_controller dflt;
    core::lut_controller lut(lut_table);
    const sim::run_metrics base = core::run_controlled(server, dflt, profile);
    const sim::run_metrics m = core::run_controlled(server, lut, profile);

    variant_row row;
    row.net_savings = sim::net_savings(m, base, idle);
    row.lut_at_100_rpm = lut_table.lookup(100.0).value();
    row.max_temp_c = m.max_temp_c;
    row.avg_rpm = m.avg_rpm;
    return row;
}

}  // namespace

int main() {
    std::printf("== Ablation: calibration sensitivity (Test-2, LUT vs default) ==\n\n");
    std::printf("%-28s %12s %12s %12s %14s\n", "plant variant", "net savings",
                "LUT@100%[rpm]", "maxT[degC]", "LUT avg RPM");

    std::vector<variant> variants;
    variants.push_back({"baseline (paper calib.)", sim::paper_server()});

    {
        auto c = sim::paper_server();
        c.thermal.g_sink_ref *= 1.2;
        variants.push_back({"+20% sink convection", c});
    }
    {
        auto c = sim::paper_server();
        c.thermal.g_sink_ref *= 0.8;
        variants.push_back({"-20% sink convection", c});
    }
    {
        auto c = sim::paper_server();
        c.thermal.c_sink *= 1.3;
        variants.push_back({"+30% sink capacity", c});
    }
    {
        auto c = sim::paper_server();
        c.leakage.k2 *= 1.3;
        variants.push_back({"+30% leakage prefactor", c});
    }
    {
        auto c = sim::paper_server();
        c.leakage.k2 *= 0.7;
        variants.push_back({"-30% leakage prefactor", c});
    }
    {
        auto c = sim::paper_server();
        c.fan.ref_power = util::watts_t{c.fan.ref_power.value() * 1.25};
        variants.push_back({"+25% fan power", c});
    }
    {
        auto c = sim::paper_server();
        c.thermal.ambient_c = 30.0;
        variants.push_back({"30 degC ambient", c});
    }

    sim::parallel_runner runner(sim::parallel_runner::threads_from_env());
    const std::vector<variant_row> rows = runner.map<variant_row>(
        variants.size(), [&](std::size_t i) { return run_variant(variants[i]); });
    for (std::size_t i = 0; i < variants.size(); ++i) {
        std::printf("%-28s %11.1f%% %12.0f %12.1f %14.0f\n", variants[i].label,
                    100.0 * rows[i].net_savings, rows[i].lut_at_100_rpm, rows[i].max_temp_c,
                    rows[i].avg_rpm);
    }

    std::printf("\nexpected: savings stay positive across every variant; hotter plants\n"
                "(weaker convection, more leakage, warm ambient) shift the LUT toward\n"
                "faster fans but never overturn the LUT-beats-default conclusion.\n");
    return 0;
}
