// Ablation: the LUT controller's rate-limit window (the paper fixes it at
// 1 minute as "a tradeoff between the maximum number of fan changes ...
// and the maximum temperature overshoot").
//
// The rate limiter earns its keep when the utilization estimate is fast
// enough to see LoadGen's PWM phases: a 30 s measurement window swings
// between 0 and 100 % within one PWM period, and an unthrottled LUT
// controller chases it.  Both the measurement window and the hold time
// are swept here; the paper's configuration is window >= PWM period plus
// a 60 s hold.  The 8 cells are independent fresh-plant runs fanned out
// through sim::parallel_runner (LTSC_THREADS=1 forces a serial sweep).
#include <cstdio>
#include <memory>
#include <vector>

#include "core/characterization.hpp"
#include "core/controller_runtime.hpp"
#include "core/lut_controller.hpp"
#include "sim/metrics.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/server_simulator.hpp"
#include "workload/paper_tests.hpp"

int main() {
    using namespace ltsc;

    sim::server_simulator server;
    const core::fan_lut lut_table = core::characterize(server).lut;
    const auto profile = workload::make_paper_test(workload::paper_test::test3_frequent);

    struct cell {
        double window_s = 0.0;
        double hold_s = 0.0;
    };
    std::vector<cell> cells;
    std::vector<sim::scenario> scenarios;
    for (double window_s : {30.0, 240.0}) {
        for (double hold_s : {0.0, 15.0, 60.0, 300.0}) {
            cells.push_back(cell{window_s, hold_s});
            sim::scenario sc;
            sc.profile = profile;
            sc.make_controller = [&lut_table, hold_s] {
                core::lut_controller_config cfg;
                cfg.min_hold = util::seconds_t{hold_s};
                return std::make_unique<core::lut_controller>(lut_table, cfg);
            };
            sc.runtime.util_window = util::seconds_t{window_s};
            scenarios.push_back(sc);
        }
    }

    sim::parallel_runner runner(sim::parallel_runner::threads_from_env());
    const std::vector<sim::run_metrics> rows = runner.run(scenarios);

    std::printf("== Ablation: LUT rate limit x utilization window on Test-3 (%zu threads) ==\n\n",
                runner.thread_count());
    std::printf("%12s %12s %13s %13s %12s %10s\n", "window [s]", "hold [s]", "energy[kWh]",
                "#fan changes", "maxT[degC]", "avg RPM");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const sim::run_metrics& m = rows[i];
        std::printf("%12.0f %12.0f %13.4f %13zu %12.1f %10.0f\n", cells[i].window_s,
                    cells[i].hold_s, m.energy_kwh, m.fan_changes, m.max_temp_c, m.avg_rpm);
    }
    std::printf("\nexpected: with a fast (30 s) utilization estimate and no hold, the\n"
                "controller chases the PWM phases (tens of changes, a fan-reliability\n"
                "hazard) for no energy gain; the 60 s hold caps the change rate.  With\n"
                "the PWM-period window (240 s) the estimate itself is stable and the\n"
                "hold has little left to do.\n");
    return 0;
}
