// Rollout-controller ablation on the Table-I workloads: how much does
// receding-horizon lookahead buy over the paper's reactive policies?
//
// For each of the four 80-minute tests, five controllers run as the
// five lanes of one sim::server_batch (one batched thermal kernel per
// test, tests fanned out across cores through sim::parallel_runner):
//
//   Default    — stock fixed-speed policy (the savings baseline)
//   Bang       — the paper's bang-bang threshold controller
//   LUT        — the paper's proactive LUT controller
//   Roll(Bang) — rollout wrapping Bang: the reactive proposal plus a
//                +/- lattice, evaluated over a 3-minute horizon
//   Roll(LUT)  — rollout wrapping LUT
//
// Every rollout decision clones the live lane across candidate lanes
// (snapshot/load round trip, pinned bitwise by the test suites) and
// commits the argmin-energy first move, so the numbers are exact
// predictions, not heuristics.  Expected shape: rollout never loses to
// its wrapped baseline by more than noise, beats Bang on the
// high-utilization tests (where reactive control overshoots and pays
// leakage), and approaches (or edges past) LUT by refining between the
// LUT's grid points.
#include <cstdio>
#include <iterator>
#include <memory>
#include <vector>

#include "core/bang_bang_controller.hpp"
#include "core/characterization.hpp"
#include "core/controller_runtime.hpp"
#include "core/default_controller.hpp"
#include "core/lut_controller.hpp"
#include "core/rollout_controller.hpp"
#include "sim/metrics.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/server_batch.hpp"
#include "sim/server_simulator.hpp"
#include "workload/paper_tests.hpp"

namespace {

ltsc::core::rollout_controller_config rollout_config() {
    using namespace ltsc::util::literals;
    ltsc::core::rollout_controller_config cfg;
    cfg.decision_period = 30_s;
    cfg.horizon = 180_s;
    cfg.lattice_step = 300_rpm;
    cfg.lattice_radius = 2;
    // Same thermal envelope as the bang-bang band ceiling, so the
    // energy comparison is between policies honoring the same limit
    // (with the default 85 degC guard the rollout would just ride the
    // minimum speed to ~85 degC and trivially win on fan power).
    cfg.guard_temp_c = 75.0;
    return cfg;
}

}  // namespace

int main() {
    using namespace ltsc;
    using namespace ltsc::util::literals;

    sim::server_simulator rig;
    const core::fan_lut lut_table = core::characterize(rig).lut;
    const util::watts_t idle_power = rig.idle_power(3300_rpm);

    const workload::paper_test tests[] = {
        workload::paper_test::test1_ramp,
        workload::paper_test::test2_periods,
        workload::paper_test::test3_frequent,
        workload::paper_test::test4_poisson,
    };
    constexpr std::size_t kControllers = 5;

    sim::parallel_runner runner(sim::parallel_runner::threads_from_env());
    const auto per_test =
        runner.map<std::vector<sim::run_metrics>>(std::size(tests), [&](std::size_t t) {
            const auto profile = workload::make_paper_test(tests[t]);
            sim::server_batch batch(sim::paper_server(), kControllers);
            core::default_controller dflt;
            core::bang_bang_controller bang;
            core::lut_controller lut(lut_table);
            core::rollout_controller roll_bang(std::make_unique<core::bang_bang_controller>(),
                                               rollout_config());
            core::rollout_controller roll_lut(
                std::make_unique<core::lut_controller>(lut_table), rollout_config());
            return core::run_controlled_batch(
                batch, {&dflt, &bang, &lut, &roll_bang, &roll_lut},
                {profile, profile, profile, profile, profile});
        });

    std::printf("== Rollout ablation: receding-horizon control vs the paper's policies ==\n");
    const auto cfg = rollout_config();
    std::printf("(horizon %.0f s, epoch %.0f s, lattice +/-%zu x %.0f RPM, guard %.0f degC; "
                "idle power %.1f W; %zu batched runs on %zu threads)\n\n",
                cfg.horizon.value(), cfg.decision_period.value(), cfg.lattice_radius,
                cfg.lattice_step.value(), cfg.guard_temp_c, idle_power.value(),
                kControllers * std::size(tests), runner.thread_count());
    std::printf("%-7s %-13s %13s %12s %10s %10s %13s %9s\n", "Test", "Control", "Energy[kWh]",
                "NetSavings", "PeakPwr[W]", "MaxT[degC]", "#fan changes", "Avg RPM");

    bool rollout_beats_bang_high_util = true;
    bool rollout_never_loses_to_baseline = true;
    for (std::size_t t = 0; t < std::size(tests); ++t) {
        const sim::run_metrics& m_d = per_test[t][0];
        for (std::size_t c = 0; c < kControllers; ++c) {
            const sim::run_metrics& m = per_test[t][c];
            char savings[16];
            if (c == 0) {
                std::snprintf(savings, sizeof savings, "%12s", "--");
            } else {
                std::snprintf(savings, sizeof savings, "%11.1f%%",
                              100.0 * sim::net_savings(m, m_d, idle_power));
            }
            std::printf("%-7s %-13s %13.4f %12s %10.0f %10.0f %13zu %9.0f\n",
                        m.test_name.c_str(), m.controller_name.c_str(), m.energy_kwh, savings,
                        m.peak_power_w, m.max_temp_c, m.fan_changes, m.avg_rpm);
        }
        // Tests 1 and 2 carry the long high-utilization plateaus — the
        // cells where reactive bang-bang control is weakest.  Both
        // rollout variants must beat plain Bang there.
        const bool high_util = t < 2;
        const double bang_kwh = per_test[t][1].energy_kwh;
        const double lut_kwh = per_test[t][2].energy_kwh;
        const double roll_bang_kwh = per_test[t][3].energy_kwh;
        const double roll_lut_kwh = per_test[t][4].energy_kwh;
        if (high_util && (roll_bang_kwh > bang_kwh || roll_lut_kwh > bang_kwh)) {
            rollout_beats_bang_high_util = false;
        }
        // On every test each Roll(x) must stay within noise of its own
        // wrapped baseline x (0.1% — candidate 0 *is* x's proposal, so
        // a real loss means the predictions are wrong).
        constexpr double kNoise = 1.001;
        if (roll_bang_kwh > bang_kwh * kNoise || roll_lut_kwh > lut_kwh * kNoise) {
            rollout_never_loses_to_baseline = false;
        }
        std::printf("\n");
    }

    std::printf("expected shape: Roll(x) energy <= x's energy on every test (lookahead can\n"
                "only reject a proposal for something predicted cheaper); rollout energy <=\n"
                "bang-bang on the high-utilization tests (Test-1/Test-2).\n");
    std::printf("rollout <= bang-bang on high-utilization cells: %s\n",
                rollout_beats_bang_high_util ? "yes" : "NO (regression)");
    std::printf("Roll(x) within noise of wrapped baseline on every test: %s\n",
                rollout_never_loses_to_baseline ? "yes" : "NO (regression)");
    return rollout_beats_bang_high_util && rollout_never_loses_to_baseline ? 0 : 1;
}
