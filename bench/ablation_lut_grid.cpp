// Ablation: LUT granularity and controller polling period.
//
// (a) How many utilization levels does the LUT need?  The paper
//     characterizes 8 levels; we compare 2/3/5/9-entry tables.
// (b) How fast must the DLC-PC poll utilization?  The paper polls every
//     second "to respond to sudden utilization spikes"; we compare 1 s
//     against slower polls.
//
// Every cell is an independent (fresh-plant) closed-loop run, so both
// sweeps fan out across cores through sim::parallel_runner; rows print
// in sweep order regardless of thread count (LTSC_THREADS=1 forces a
// serial sweep).
#include <cstdio>
#include <memory>
#include <vector>

#include "core/characterization.hpp"
#include "core/controller_runtime.hpp"
#include "core/lut_controller.hpp"
#include "sim/metrics.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/server_simulator.hpp"
#include "workload/paper_tests.hpp"

namespace {

using namespace ltsc;

core::fan_lut subsample(const core::fan_lut& full, std::size_t keep) {
    // Keep `keep` entries spread across the range, always including the
    // last (100 %) entry so high load is covered.
    const auto& entries = full.entries();
    std::vector<core::lut_entry> out;
    if (keep >= entries.size()) {
        return full;
    }
    for (std::size_t i = 0; i < keep - 1; ++i) {
        out.push_back(entries[i * (entries.size() - 1) / (keep - 1)]);
    }
    out.push_back(entries.back());
    return core::fan_lut(out);
}

}  // namespace

int main() {
    sim::server_simulator server;
    const core::fan_lut full_lut = core::characterize(server).lut;
    const auto profile = workload::make_paper_test(workload::paper_test::test3_frequent);

    sim::parallel_runner runner(sim::parallel_runner::threads_from_env());

    std::printf("== Ablation (a): LUT granularity on Test-3 (%zu threads) ==\n\n",
                runner.thread_count());
    std::vector<core::fan_lut> tables;
    std::vector<sim::scenario> granularity;
    for (std::size_t keep : {2U, 3U, 5U, 9U}) {
        tables.push_back(subsample(full_lut, keep));
        sim::scenario sc;
        sc.profile = profile;
        const core::fan_lut& table = tables.back();
        sc.make_controller = [table] { return std::make_unique<core::lut_controller>(table); };
        granularity.push_back(sc);
    }
    const std::vector<sim::run_metrics> by_entries = runner.run(granularity);
    std::printf("%10s %13s %13s %12s %10s\n", "entries", "energy[kWh]", "#fan changes",
                "maxT[degC]", "avg RPM");
    for (std::size_t i = 0; i < by_entries.size(); ++i) {
        const sim::run_metrics& m = by_entries[i];
        std::printf("%10zu %13.4f %13zu %12.1f %10.0f\n", tables[i].size(), m.energy_kwh,
                    m.fan_changes, m.max_temp_c, m.avg_rpm);
    }
    std::printf("\nexpected: a 2-entry table already captures most savings (the optimum\n"
                "is 1800-or-2400); finer tables refine the crossover point.\n");

    std::printf("\n== Ablation (b): utilization polling period on Test-2 ==\n\n");
    const auto spiky = workload::make_paper_test(workload::paper_test::test2_periods);
    const std::vector<double> periods{1.0, 10.0, 30.0, 120.0};
    std::vector<sim::scenario> polling;
    for (double period_s : periods) {
        sim::scenario sc;
        sc.profile = spiky;
        sc.make_controller = [&full_lut, period_s] {
            core::lut_controller_config cfg;
            cfg.polling_period = util::seconds_t{period_s};
            return std::make_unique<core::lut_controller>(full_lut, cfg);
        };
        polling.push_back(sc);
    }
    const std::vector<sim::run_metrics> by_period = runner.run(polling);
    std::printf("%12s %13s %13s %12s\n", "poll [s]", "energy[kWh]", "#fan changes",
                "maxT[degC]");
    for (std::size_t i = 0; i < by_period.size(); ++i) {
        const sim::run_metrics& m = by_period[i];
        std::printf("%12.0f %13.4f %13zu %12.1f\n", periods[i], m.energy_kwh, m.fan_changes,
                    m.max_temp_c);
    }
    std::printf("\nexpected: slower polling delays the reaction to load spikes, letting\n"
                "temperature (and leakage) overshoot before the fan catches up.\n");
    return 0;
}
