// Reproduces Table I: the full controller comparison across the four
// 80-minute tests.  Columns exactly as the paper reports them:
//
//   Test | Control scheme | Energy (kWh) | Net Savings | Peak Pwr (W) |
//   Max Temp (degC) | #fan changes | Avg RPM
//
// The twelve (test, controller) cells are independent closed-loop runs,
// so they execute concurrently on a sim::parallel_runner; each cell gets
// a fresh plant (the same methodology the golden-trace suite uses, so
// cells are independent of run order and RNG stream position).  Results
// are printed in table order regardless of thread count; set
// LTSC_THREADS=1 to force a serial sweep.
//
// Paper shape to verify: the default policy never changes speed and
// overcools (max temp ~60 degC); both controllers save energy; the LUT
// controller saves the most on every test, keeps temperature under ~75
// degC and reduces peak power by ~5-15 W.
#include <cstdio>
#include <iterator>
#include <memory>
#include <vector>

#include "core/bang_bang_controller.hpp"
#include "core/characterization.hpp"
#include "core/default_controller.hpp"
#include "core/lut_controller.hpp"
#include "sim/metrics.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/server_simulator.hpp"
#include "workload/paper_tests.hpp"

int main() {
    using namespace ltsc;
    using namespace ltsc::util::literals;

    sim::server_simulator rig;
    const core::fan_lut lut_table = core::characterize(rig).lut;
    const util::watts_t idle_power = rig.idle_power(3300_rpm);

    const workload::paper_test tests[] = {
        workload::paper_test::test1_ramp,
        workload::paper_test::test2_periods,
        workload::paper_test::test3_frequent,
        workload::paper_test::test4_poisson,
    };

    std::vector<sim::scenario> scenarios;
    for (const auto test : tests) {
        const auto profile = workload::make_paper_test(test);
        sim::scenario dflt;
        dflt.profile = profile;
        dflt.make_controller = [] { return std::make_unique<core::default_controller>(); };
        scenarios.push_back(dflt);

        sim::scenario bang;
        bang.profile = profile;
        bang.make_controller = [] { return std::make_unique<core::bang_bang_controller>(); };
        scenarios.push_back(bang);

        sim::scenario lut;
        lut.profile = profile;
        lut.make_controller = [&lut_table] {
            return std::make_unique<core::lut_controller>(lut_table);
        };
        scenarios.push_back(lut);
    }

    sim::parallel_runner runner(sim::parallel_runner::threads_from_env());
    const std::vector<sim::run_metrics> results = runner.run(scenarios);

    std::printf("== Table I: summary of controller properties ==\n");
    std::printf("(idle power for net-savings accounting: %.1f W; paper-implied: 366 W; "
                "%zu runs on %zu threads)\n\n",
                idle_power.value(), results.size(), runner.thread_count());
    std::printf("%-7s %-8s %13s %12s %10s %10s %13s %9s\n", "Test", "Control", "Energy[kWh]",
                "NetSavings", "PeakPwr[W]", "MaxT[degC]", "#fan changes", "Avg RPM");

    for (std::size_t t = 0; t < std::size(tests); ++t) {
        const sim::run_metrics& m_d = results[3 * t];
        const auto print_row = [&](const sim::run_metrics& m, bool baseline) {
            char savings[16];
            if (baseline) {
                std::snprintf(savings, sizeof savings, "%12s", "--");
            } else {
                std::snprintf(savings, sizeof savings, "%11.1f%%",
                              100.0 * sim::net_savings(m, m_d, idle_power));
            }
            std::printf("%-7s %-8s %13.4f %12s %10.0f %10.0f %13zu %9.0f\n",
                        m.test_name.c_str(), m.controller_name.c_str(), m.energy_kwh, savings,
                        m.peak_power_w, m.max_temp_c, m.fan_changes, m.avg_rpm);
        };
        print_row(m_d, true);
        print_row(results[3 * t + 1], false);
        print_row(results[3 * t + 2], false);
    }

    std::printf("\npaper reference (Table I):\n");
    std::printf("  Test-1: Default 0.6695 / Bang 0.6570 (6.8%%) / LUT 0.6556 (7.7%%)\n");
    std::printf("  Test-2: Default 0.6857 / Bang 0.6856 (0.05%%) / LUT 0.6685 (8.7%%)\n");
    std::printf("  Test-3: Default 0.6284 / Bang 0.6253 (2.0%%) / LUT 0.6226 (3.9%%)\n");
    std::printf("  Test-4: Default 0.6160 / Bang 0.6101 (4.7%%) / LUT 0.6071 (6.9%%)\n");
    std::printf("expected shape: LUT lowest energy on every test; default 0 changes at\n"
                "3300 RPM with max temp ~60 degC; controllers at ~1900-2200 avg RPM.\n");
    return 0;
}
