// Reproduces Table I: the full controller comparison across the four
// 80-minute tests.  Columns exactly as the paper reports them:
//
//   Test | Control scheme | Energy (kWh) | Net Savings | Peak Pwr (W) |
//   Max Temp (degC) | #fan changes | Avg RPM
//
// Each test's three controller cells run as the three lanes of one
// sim::server_batch (Default / Bang / LUT stepping through one batched
// thermal kernel), and the four tests fan out across cores through
// sim::parallel_runner::map.  Every lane is bitwise-identical to an
// independent fresh-plant scalar run (the batch-equivalence suite pins
// this), so the table matches the scalar methodology the golden-trace
// suite uses.  Results print in table order regardless of thread count;
// set LTSC_THREADS=1 to force a serial sweep.
//
// Paper shape to verify: the default policy never changes speed and
// overcools (max temp ~60 degC); both controllers save energy; the LUT
// controller saves the most on every test, keeps temperature under ~75
// degC and reduces peak power by ~5-15 W.
#include <cstdio>
#include <iterator>
#include <vector>

#include "core/bang_bang_controller.hpp"
#include "core/characterization.hpp"
#include "core/controller_runtime.hpp"
#include "core/default_controller.hpp"
#include "core/lut_controller.hpp"
#include "sim/metrics.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/server_batch.hpp"
#include "sim/server_simulator.hpp"
#include "workload/paper_tests.hpp"

int main() {
    using namespace ltsc;
    using namespace ltsc::util::literals;

    sim::server_simulator rig;
    const core::fan_lut lut_table = core::characterize(rig).lut;
    const util::watts_t idle_power = rig.idle_power(3300_rpm);

    const workload::paper_test tests[] = {
        workload::paper_test::test1_ramp,
        workload::paper_test::test2_periods,
        workload::paper_test::test3_frequent,
        workload::paper_test::test4_poisson,
    };

    sim::parallel_runner runner(sim::parallel_runner::threads_from_env());
    const auto per_test =
        runner.map<std::vector<sim::run_metrics>>(std::size(tests), [&](std::size_t t) {
            const auto profile = workload::make_paper_test(tests[t]);
            sim::server_batch batch(sim::paper_server(), 3);
            core::default_controller dflt;
            core::bang_bang_controller bang;
            core::lut_controller lut(lut_table);
            return core::run_controlled_batch(batch, {&dflt, &bang, &lut},
                                              {profile, profile, profile});
        });

    std::printf("== Table I: summary of controller properties ==\n");
    std::printf("(idle power for net-savings accounting: %.1f W; paper-implied: 366 W; "
                "%zu batched runs on %zu threads)\n\n",
                idle_power.value(), 3 * std::size(tests), runner.thread_count());
    std::printf("%-7s %-8s %13s %12s %10s %10s %13s %9s\n", "Test", "Control", "Energy[kWh]",
                "NetSavings", "PeakPwr[W]", "MaxT[degC]", "#fan changes", "Avg RPM");

    for (std::size_t t = 0; t < std::size(tests); ++t) {
        const sim::run_metrics& m_d = per_test[t][0];
        const auto print_row = [&](const sim::run_metrics& m, bool baseline) {
            char savings[16];
            if (baseline) {
                std::snprintf(savings, sizeof savings, "%12s", "--");
            } else {
                std::snprintf(savings, sizeof savings, "%11.1f%%",
                              100.0 * sim::net_savings(m, m_d, idle_power));
            }
            std::printf("%-7s %-8s %13.4f %12s %10.0f %10.0f %13zu %9.0f\n",
                        m.test_name.c_str(), m.controller_name.c_str(), m.energy_kwh, savings,
                        m.peak_power_w, m.max_temp_c, m.fan_changes, m.avg_rpm);
        };
        print_row(m_d, true);
        print_row(per_test[t][1], false);
        print_row(per_test[t][2], false);
    }

    std::printf("\npaper reference (Table I):\n");
    std::printf("  Test-1: Default 0.6695 / Bang 0.6570 (6.8%%) / LUT 0.6556 (7.7%%)\n");
    std::printf("  Test-2: Default 0.6857 / Bang 0.6856 (0.05%%) / LUT 0.6685 (8.7%%)\n");
    std::printf("  Test-3: Default 0.6284 / Bang 0.6253 (2.0%%) / LUT 0.6226 (3.9%%)\n");
    std::printf("  Test-4: Default 0.6160 / Bang 0.6101 (4.7%%) / LUT 0.6071 (6.9%%)\n");
    std::printf("expected shape: LUT lowest energy on every test; default 0 changes at\n"
                "3300 RPM with max temp ~60 degC; controllers at ~1900-2200 avg RPM.\n");
    return 0;
}
