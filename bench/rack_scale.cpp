// Rack-scale throughput sweep: how cheaply can the structure-of-arrays
// plant step N servers, and what does a closed-loop fleet run cost?
//
//   $ ./rack_scale                  # full sweep (the 100k rows allocate ~35 GB)
//   $ ./rack_scale smoke [N] [K]    # deterministic fleet checksum for CI
//
// The default sweep reports
//   - raw per-server stepping throughput of sim::server_batch (one
//     batched thermal kernel, lane-contiguous state) against the scalar
//     server_simulator baseline,
//   - the sharded sim::fleet at N in {1k, 10k, 100k} across shard
//     counts {1, 2, 4, 8} (threads = shards), and
//   - a closed-loop fleet run (every lane under its own bang-bang
//     controller on Test-3) with fleet energy, as an MPC-rollout-shaped
//     workload: many identical plants, one instruction stream.
//
// `smoke` steps an N-lane fleet (default 10000) for 120 plant seconds
// with per-lane heterogeneous workloads/ambients and prints a bitwise
// checksum of the fleet state.  Thread width defers to LTSC_THREADS, so
// CI can diff the output across thread counts: any divergence is a
// violation of the fleet's determinism contract.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/bang_bang_controller.hpp"
#include "core/controller_runtime.hpp"
#include "sim/fleet.hpp"
#include "sim/metrics.hpp"
#include "sim/server_batch.hpp"
#include "sim/server_simulator.hpp"
#include "workload/paper_tests.hpp"
#include "workload/profile.hpp"

namespace {

using namespace ltsc;
using namespace ltsc::util::literals;
using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}

workload::utilization_profile endless_profile() {
    workload::utilization_profile p("bench");
    p.constant(60.0, util::seconds_t{1e9});
    return p;
}

/// Fleet stepping throughput of an N-lane batch [server-steps/s]: every
/// batch step advances all N servers by one plant second.
double batch_throughput(std::size_t lanes, long total_server_steps) {
    sim::server_batch batch(sim::paper_server(), lanes);
    const auto profile = endless_profile();
    for (std::size_t l = 0; l < lanes; ++l) {
        batch.bind_workload(l, profile);
    }
    const long steps = std::max<long>(1, total_server_steps / static_cast<long>(lanes));
    const auto t0 = clock_type::now();
    for (long k = 0; k < steps; ++k) {
        batch.step(1_s);
    }
    const double wall = seconds_since(t0);
    return static_cast<double>(steps) * static_cast<double>(lanes) / wall;
}

/// Sharded fleet stepping throughput [server-steps/s].
double fleet_throughput(std::size_t lanes, std::size_t shards, long total_server_steps) {
    sim::fleet_config fc;
    fc.shards = shards;
    fc.threads = shards;
    sim::fleet fleet(sim::paper_server(), lanes, fc);
    const auto profile = endless_profile();
    for (std::size_t l = 0; l < lanes; ++l) {
        fleet.bind_workload(l, profile);
    }
    const long steps = std::max<long>(1, total_server_steps / static_cast<long>(lanes));
    const auto t0 = clock_type::now();
    for (long k = 0; k < steps; ++k) {
        fleet.step(1_s);
    }
    const double wall = seconds_since(t0);
    return static_cast<double>(steps) * static_cast<double>(lanes) / wall;
}

/// CI smoke: step a heterogeneous N-lane fleet and print a bitwise
/// state checksum.  Output must be identical for every LTSC_THREADS.
int run_smoke(std::size_t lanes, std::size_t shards) {
    sim::fleet_config fc;
    fc.shards = shards;
    fc.threads = 0;  // defer to LTSC_THREADS — the axis CI matrixes over
    sim::fleet fleet(sim::paper_server(), lanes, fc);
    const workload::utilization_profile profiles[3] = {
        workload::make_paper_test(workload::paper_test::test1_ramp),
        workload::make_paper_test(workload::paper_test::test2_periods),
        workload::make_paper_test(workload::paper_test::test3_frequent),
    };
    for (std::size_t l = 0; l < lanes; ++l) {
        fleet.bind_workload(l, profiles[l % 3]);
        fleet.set_ambient(l, util::celsius_t{22.0 + 0.5 * static_cast<double>(l % 7)});
    }
    fleet.force_cold_start();
    fleet.advance(util::seconds_t{120.0});

    double temp_sum = 0.0;
    double power_sum = 0.0;
    for (std::size_t l = 0; l < lanes; ++l) {
        temp_sum += fleet.max_cpu_sensor_temp(l).value();
        power_sum += fleet.system_power_reading(l).value();
    }
    std::printf("fleet-smoke lanes=%zu shards=%zu\n", lanes, fleet.shard_count());
    std::printf("temp_sum=%.17g\n", temp_sum);
    std::printf("power_sum=%.17g\n", power_sum);
    for (std::size_t l = 0; l < lanes; l += std::max<std::size_t>(1, lanes / 8)) {
        std::printf("lane %zu temp=%.17g\n", l, fleet.max_cpu_sensor_temp(l).value());
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc > 1 && std::strcmp(argv[1], "smoke") == 0) {
        const std::size_t lanes = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10000;
        const std::size_t shards = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;
        return run_smoke(lanes, shards);
    }
    std::printf("== rack_scale: SoA batch stepping vs the scalar plant ==\n\n");

    // Scalar baseline at the same per-plant work.
    constexpr long kServerSteps = 1000000;
    double scalar_rate = 0.0;
    {
        sim::server_simulator s;
        s.bind_workload(endless_profile());
        const auto t0 = clock_type::now();
        for (long k = 0; k < kServerSteps; ++k) {
            s.step(1_s);
        }
        scalar_rate = static_cast<double>(kServerSteps) / seconds_since(t0);
    }
    std::printf("scalar server_simulator: %.0f steps/s\n\n", scalar_rate);

    std::printf("%8s %22s %26s\n", "N", "server-steps/s", "per-server cost vs scalar");
    for (std::size_t lanes : {1UL, 8UL, 64UL, 256UL}) {
        const double fleet_rate = batch_throughput(lanes, kServerSteps);
        std::printf("%8zu %22.0f %25.2fx\n", lanes, fleet_rate, scalar_rate / fleet_rate);
    }

    std::printf("\n== sharded fleet: sim::fleet, threads = shards ==\n"
                "   (per-row budget ~%ld server-steps; the 100k rows allocate ~35 GB)\n\n",
                kServerSteps);
    std::printf("%8s %8s %22s %20s\n", "N", "shards", "server-steps/s", "vs 1-shard");
    for (std::size_t lanes : {1000UL, 10000UL, 100000UL}) {
        double one_shard_rate = 0.0;
        for (std::size_t shards : {1UL, 2UL, 4UL, 8UL}) {
            const double rate = fleet_throughput(lanes, shards, kServerSteps);
            if (shards == 1) {
                one_shard_rate = rate;
            }
            std::printf("%8zu %8zu %22.0f %19.2fx\n", lanes, shards, rate,
                        rate / one_shard_rate);
        }
        std::printf("\n");
    }

    std::printf("== closed-loop fleet: Test-3 under bang-bang control ==\n\n");
    const auto profile = workload::make_paper_test(workload::paper_test::test3_frequent);
    std::printf("%8s %14s %16s %20s\n", "N", "wall [s]", "fleet kWh", "lane-steps/s");
    for (std::size_t lanes : {1UL, 8UL, 64UL}) {
        sim::server_batch batch(sim::paper_server(), lanes);
        std::vector<core::bang_bang_controller> bang(lanes);
        std::vector<core::fan_controller*> controllers;
        std::vector<workload::utilization_profile> profiles;
        for (std::size_t l = 0; l < lanes; ++l) {
            controllers.push_back(&bang[l]);
            profiles.push_back(profile);
        }
        const auto t0 = clock_type::now();
        const auto rows = core::run_controlled_batch(batch, controllers, profiles);
        const double wall = seconds_since(t0);
        double fleet_kwh = 0.0;
        for (const auto& m : rows) {
            fleet_kwh += m.energy_kwh;
        }
        const double lane_steps =
            static_cast<double>(lanes) * rows.front().duration_s / wall;
        std::printf("%8zu %14.3f %16.4f %20.0f\n", lanes, wall, fleet_kwh, lane_steps);
    }

    std::printf("\nreading: per-server step cost should stay flat (within ~1.25x of the\n"
                "scalar plant) as N grows — the batch trades no per-lane fidelity for\n"
                "the shared instruction stream, which is what makes fleet sweeps and\n"
                "MPC-style many-rollout studies affordable.\n");
    return 0;
}
