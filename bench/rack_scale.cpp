// Rack-scale throughput sweep: how cheaply can the structure-of-arrays
// plant step N servers, and what does a closed-loop fleet run cost?
//
//   $ ./rack_scale
//
// For N in {1, 8, 64, 256} the sweep reports
//   - raw per-server stepping throughput of sim::server_batch (one
//     batched thermal kernel, lane-contiguous state) against the scalar
//     server_simulator baseline, and
//   - a closed-loop fleet run (every lane under its own bang-bang
//     controller on Test-3) with fleet energy, as an MPC-rollout-shaped
//     workload: many identical plants, one instruction stream.
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/bang_bang_controller.hpp"
#include "core/controller_runtime.hpp"
#include "sim/metrics.hpp"
#include "sim/server_batch.hpp"
#include "sim/server_simulator.hpp"
#include "workload/paper_tests.hpp"
#include "workload/profile.hpp"

namespace {

using namespace ltsc;
using namespace ltsc::util::literals;
using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}

workload::utilization_profile endless_profile() {
    workload::utilization_profile p("bench");
    p.constant(60.0, util::seconds_t{1e9});
    return p;
}

/// Fleet stepping throughput of an N-lane batch [server-steps/s]: every
/// batch step advances all N servers by one plant second.
double batch_throughput(std::size_t lanes, long total_server_steps) {
    sim::server_batch batch(sim::paper_server(), lanes);
    const auto profile = endless_profile();
    for (std::size_t l = 0; l < lanes; ++l) {
        batch.bind_workload(l, profile);
    }
    const long steps = std::max<long>(1, total_server_steps / static_cast<long>(lanes));
    const auto t0 = clock_type::now();
    for (long k = 0; k < steps; ++k) {
        batch.step(1_s);
    }
    const double wall = seconds_since(t0);
    return static_cast<double>(steps) * static_cast<double>(lanes) / wall;
}

}  // namespace

int main() {
    std::printf("== rack_scale: SoA batch stepping vs the scalar plant ==\n\n");

    // Scalar baseline at the same per-plant work.
    constexpr long kServerSteps = 1000000;
    double scalar_rate = 0.0;
    {
        sim::server_simulator s;
        s.bind_workload(endless_profile());
        const auto t0 = clock_type::now();
        for (long k = 0; k < kServerSteps; ++k) {
            s.step(1_s);
        }
        scalar_rate = static_cast<double>(kServerSteps) / seconds_since(t0);
    }
    std::printf("scalar server_simulator: %.0f steps/s\n\n", scalar_rate);

    std::printf("%8s %22s %26s\n", "N", "server-steps/s", "per-server cost vs scalar");
    for (std::size_t lanes : {1UL, 8UL, 64UL, 256UL}) {
        const double fleet_rate = batch_throughput(lanes, kServerSteps);
        std::printf("%8zu %22.0f %25.2fx\n", lanes, fleet_rate, scalar_rate / fleet_rate);
    }

    std::printf("\n== closed-loop fleet: Test-3 under bang-bang control ==\n\n");
    const auto profile = workload::make_paper_test(workload::paper_test::test3_frequent);
    std::printf("%8s %14s %16s %20s\n", "N", "wall [s]", "fleet kWh", "lane-steps/s");
    for (std::size_t lanes : {1UL, 8UL, 64UL}) {
        sim::server_batch batch(sim::paper_server(), lanes);
        std::vector<core::bang_bang_controller> bang(lanes);
        std::vector<core::fan_controller*> controllers;
        std::vector<workload::utilization_profile> profiles;
        for (std::size_t l = 0; l < lanes; ++l) {
            controllers.push_back(&bang[l]);
            profiles.push_back(profile);
        }
        const auto t0 = clock_type::now();
        const auto rows = core::run_controlled_batch(batch, controllers, profiles);
        const double wall = seconds_since(t0);
        double fleet_kwh = 0.0;
        for (const auto& m : rows) {
            fleet_kwh += m.energy_kwh;
        }
        const double lane_steps =
            static_cast<double>(lanes) * rows.front().duration_s / wall;
        std::printf("%8zu %14.3f %16.4f %20.0f\n", lanes, wall, fleet_kwh, lane_steps);
    }

    std::printf("\nreading: per-server step cost should stay flat (within ~1.25x of the\n"
                "scalar plant) as N grows — the batch trades no per-lane fidelity for\n"
                "the shared instruction stream, which is what makes fleet sweeps and\n"
                "MPC-style many-rollout studies affordable.\n");
    return 0;
}
