// Reproduces Fig. 1(a): average CPU0 temperature over the 45-minute
// protocol at 100 % utilization, one series per fan speed
// (1800/2400/3000/3600/4200 RPM).
//
// Paper shape to verify: steady temperatures ~85 degC (1800 RPM) down to
// ~55 degC (4200 RPM); settling after ~15 min at 1800 RPM vs ~5 min at
// 4200 RPM (fan-speed-dependent thermal time constants).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "power/fan_model.hpp"
#include "sim/experiment.hpp"
#include "sim/server_simulator.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
    using namespace ltsc;
    const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;

    std::printf("== Fig. 1(a): CPU temperature, 100%% utilization, per fan speed ==\n");
    std::printf("protocol: cold start, 5 min idle, 30 min LoadGen at 100%%, 10 min idle\n\n");

    const std::vector<util::rpm_t> speeds = power::paper_rpm_settings();
    std::vector<util::time_series> traces;
    std::vector<double> settle_min;

    for (util::rpm_t rpm : speeds) {
        sim::server_simulator s;
        sim::run_protocol_experiment(s, rpm, 100.0);
        traces.push_back(s.trace().avg_cpu_temp().to_series());

        // Time (from load onset at minute 5) to reach 95 % of the rise.
        const util::time_series& tr = traces.back();
        const double start = tr.value_at(5.0 * 60.0);
        const double steady = tr.value_at(34.5 * 60.0);
        double reached = 30.0;
        for (double t = 5.0 * 60.0; t <= 35.0 * 60.0; t += 5.0) {
            if (tr.value_at(t) >= start + 0.95 * (steady - start)) {
                reached = (t - 5.0 * 60.0) / 60.0;
                break;
            }
        }
        settle_min.push_back(reached);
    }

    // Series table: one row per minute, one column per fan speed.
    std::printf("%8s", "t[min]");
    for (util::rpm_t rpm : speeds) {
        std::printf("  %5.0frpm", rpm.value());
    }
    std::printf("\n");
    for (double t_min = 0.0; t_min <= 45.0; t_min += 1.0) {
        std::printf("%8.0f", t_min);
        for (const auto& tr : traces) {
            std::printf("  %8.1f", tr.value_at(t_min * 60.0));
        }
        std::printf("\n");
    }

    std::printf("\n%-12s %18s %22s\n", "fan [RPM]", "steady T [degC]", "95%-settle [min]");
    for (std::size_t i = 0; i < speeds.size(); ++i) {
        std::printf("%-12.0f %18.1f %22.1f\n", speeds[i].value(),
                    traces[i].value_at(34.5 * 60.0), settle_min[i]);
    }
    std::printf("\npaper anchors: 1800 RPM -> ~85 degC, settles ~15 min; "
                "4200 RPM -> ~55 degC, settles ~5 min\n");

    if (csv) {
        std::vector<util::named_series> series;
        for (std::size_t i = 0; i < speeds.size(); ++i) {
            series.push_back(util::named_series{
                "cpu_temp_" + std::to_string(static_cast<int>(speeds[i].value())) + "rpm",
                "degC", traces[i]});
        }
        util::write_series_csv(std::cout, series);
    }
    return 0;
}
