// Reproduces the Eqn. (1)/(2) model fitting of Section IV: sweeps the
// plant, fits P - P_fan = c0 + k1*U + k2*e^(k3*T), and compares the
// recovered constants with the paper's published values
// (k1 = 0.4452 per-rail / 3.5 system-level, k2 = 0.3231, k3 = 0.04749,
// 2.243 W fitting error, 98 % accuracy).
//
// Two fits are reported: one on the noise-free sweep (exact recovery) and
// one with realistic sensor noise injected, which lands the residual in
// the same band the paper reports.
#include <cstdio>

#include "core/characterization.hpp"
#include "power/active_model.hpp"
#include "power/leakage_model.hpp"
#include "sim/server_simulator.hpp"
#include "util/rng.hpp"

int main() {
    using namespace ltsc;

    sim::server_simulator server;
    core::characterization_result ch = core::characterize(server);

    std::printf("== Eqn. (1)/(2) model fit ==\n\n");
    std::printf("%-26s %12s %12s\n", "", "recovered", "paper");
    std::printf("%-26s %12.4f %12.4f\n", "k1 [W/% system-level]", ch.fit.k1_w_per_pct,
                power::active_model::system_k1_w_per_pct);
    std::printf("%-26s %12.4f %12.4f   (system k1 x cpu-rail share)\n",
                "k1 [W/% per-rail equiv.]", ch.fit.k1_w_per_pct / 8.0,
                power::active_model::paper_rail_k1_w_per_pct);
    std::printf("%-26s %12.4f %12.4f\n", "k2 [W]", ch.fit.k2_w,
                power::leakage_params::paper_fit().k2);
    std::printf("%-26s %12.5f %12.5f\n", "k3 [1/degC]", ch.fit.k3_per_c,
                power::leakage_params::paper_fit().k3);
    std::printf("%-26s %12.4f %12s\n", "c0 [W] (base + C)", ch.fit.c0_w, "n/a");
    std::printf("%-26s %12.4f %12.3f\n", "fit error (RMSE) [W]", ch.fit.rmse_w, 2.243);
    std::printf("%-26s %11.2f%% %11.0f%%\n", "accuracy (R^2)", 100.0 * ch.fit.r_squared, 98.0);

    // Noisy refit: the paper measured a real machine, so its 2.243 W error
    // is sensor/measurement noise; injecting ~2 W RMS on the power reading
    // and 0.5 degC on temperature reproduces that regime.
    util::pcg32 rng(0xF17);
    std::vector<sim::steady_point> noisy = ch.sweep;
    for (auto& p : noisy) {
        p.total_power_w += rng.normal(0.0, 2.0);
        p.avg_cpu_temp_c += rng.normal(0.0, 0.5);
    }
    const core::power_model_fit noisy_fit = core::fit_power_model(noisy);
    std::printf("\nwith measurement noise (2 W power, 0.5 degC temperature):\n");
    std::printf("  k2 = %.4f, k3 = %.5f, rmse = %.3f W, R^2 = %.4f\n", noisy_fit.k2_w,
                noisy_fit.k3_per_c, noisy_fit.rmse_w, noisy_fit.r_squared);

    std::printf("\nleakage curve from the fit (Fig. 2(a)'s leakage component):\n");
    std::printf("%8s %14s\n", "T[degC]", "P_leak[W]");
    for (double t = 45.0; t <= 85.0; t += 5.0) {
        std::printf("%8.0f %14.2f\n", t, ch.fit.c0_w - 331.6 + ch.fit.leakage_at(t));
    }
    return 0;
}
