// Reproduces Fig. 2(b): fan + leakage power versus average CPU
// temperature for duty cycles 25/50/60/75/90/100 %.
//
// Paper shape to verify: every utilization level traces a convex-like
// curve over temperature (swept via fan speed), so each level has its own
// optimal fan speed; optima sit at or below ~70 degC.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/characterization.hpp"
#include "sim/experiment.hpp"
#include "sim/server_simulator.hpp"

int main() {
    using namespace ltsc;

    sim::server_simulator server;
    // Sweep exactly the duty cycles Fig. 2(b) shows.
    const std::vector<double> duties = {25.0, 50.0, 60.0, 75.0, 90.0, 100.0};
    const auto rpms = power::paper_rpm_settings();
    const auto sweep = sim::run_steady_sweep(server, duties, rpms);
    const auto fit = core::fit_power_model(sweep);

    std::printf("== Fig. 2(b): fan + leakage vs avg CPU temperature, all duty cycles ==\n\n");
    std::printf("%-8s", "rpm");
    for (double d : duties) {
        std::printf("      %3.0f%% (T / W)", d);
    }
    std::printf("\n");
    for (util::rpm_t rpm : rpms) {
        std::printf("%-8.0f", rpm.value());
        for (double d : duties) {
            for (const auto& p : sweep) {
                if (p.utilization_pct == d && std::abs(p.fan_rpm - rpm.value()) < 1.0) {
                    const double leak = (fit.c0_w - 331.6) + fit.leakage_at(p.avg_cpu_temp_c);
                    std::printf("   %5.1f / %5.1f", p.avg_cpu_temp_c, p.fan_power_w + leak);
                }
            }
        }
        std::printf("\n");
    }

    std::printf("\nper-duty optimum (the LUT's raw material):\n");
    std::printf("%-10s %12s %14s %18s\n", "duty [%]", "best RPM", "T@best [degC]",
                "fan+leak@best [W]");
    for (double d : duties) {
        double best_sum = 1e18;
        double best_rpm = 0.0;
        double best_t = 0.0;
        for (const auto& p : sweep) {
            if (p.utilization_pct != d) {
                continue;
            }
            const double leak = (fit.c0_w - 331.6) + fit.leakage_at(p.avg_cpu_temp_c);
            const double sum = p.fan_power_w + leak;
            if (p.avg_cpu_temp_c <= 75.0 && sum < best_sum) {
                best_sum = sum;
                best_rpm = p.fan_rpm;
                best_t = p.avg_cpu_temp_c;
            }
        }
        std::printf("%-10.0f %12.0f %14.1f %18.1f\n", d, best_rpm, best_t, best_sum);
    }
    std::printf("\npaper shape: similar convex trend at every utilization level; optimum\n"
                "temperatures never above ~70 degC (cap 75 degC for reliability).\n");
    return 0;
}
