// Chaos sweep over randomized fault campaigns.
//
//   $ ./fault_campaign [campaigns] [base_seed]
//
// Runs `campaigns` seeded random fault campaigns (default 100, seeds
// base_seed..base_seed+campaigns-1) through sim::run_fault_campaign —
// each a healthy/faulted twin pair under Failsafe(Bang) — across
// parallel_runner's worker pool (LTSC_THREADS honored), and reports per
// campaign the schedule size, fault mix, max true die temperature of
// both twins, and the energy regret.  Exits nonzero if any campaign
// violates the calibrated invariants (thermal envelope, bounded energy
// regret) — the CI chaos gate.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/fault_campaign.hpp"
#include "sim/parallel_runner.hpp"
#include "util/log.hpp"

namespace {

using namespace ltsc;

long arg_or(int argc, char** argv, int index, long fallback) {
    if (argc <= index) {
        return fallback;
    }
    char* end = nullptr;
    const long v = std::strtol(argv[index], &end, 10);
    if (end == argv[index] || *end != '\0' || v < 0) {
        std::fprintf(stderr, "fault_campaign: bad argument '%s'\n", argv[index]);
        std::exit(2);
    }
    return v;
}

}  // namespace

int main(int argc, char** argv) {
    util::set_log_level(util::log_level::warn);
    const long campaigns = arg_or(argc, argv, 1, 100);
    const long base_seed = arg_or(argc, argv, 2, 1);

    sim::parallel_runner runner(sim::parallel_runner::threads_from_env());
    std::printf("# chaos sweep: %ld campaigns, seeds %ld..%ld, %zu threads\n", campaigns,
                base_seed, base_seed + campaigns - 1, runner.thread_count());
    const std::vector<sim::fault_campaign_result> results =
        runner.map<sim::fault_campaign_result>(
            static_cast<std::size_t>(campaigns), [&](std::size_t i) {
                return sim::run_fault_campaign(
                    static_cast<std::uint64_t>(base_seed + static_cast<long>(i)));
            });

    const sim::fault_campaign_limits limits;
    std::printf("%8s %7s %9s %14s %14s %12s %s\n", "seed", "events", "fan_fault",
                "healthy_max_C", "faulted_max_C", "energy_ratio", "verdict");
    long violations = 0;
    double worst_no_fan = 0.0;
    double worst_fan = 0.0;
    double worst_ratio = 0.0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const sim::fault_campaign_result& r = results[i];
        const auto violation = sim::campaign_violation(r, limits);
        if (violation.has_value()) {
            ++violations;
        }
        (r.fan_fault ? worst_fan : worst_no_fan) =
            std::max(r.fan_fault ? worst_fan : worst_no_fan, r.faulted_max_die_c);
        worst_ratio = std::max(worst_ratio, r.energy_ratio);
        std::printf("%8ld %7zu %9s %14.3f %14.3f %12.4f %s\n",
                    base_seed + static_cast<long>(i), r.schedule.size(),
                    r.fan_fault ? "yes" : "no", r.healthy_max_die_c, r.faulted_max_die_c,
                    r.energy_ratio, violation.has_value() ? violation->c_str() : "ok");
    }
    std::printf("# worst max die temp: %.3f degC (no fan fault, cap %.1f), "
                "%.3f degC (fan fault, cap %.1f)\n",
                worst_no_fan, limits.envelope_c, worst_fan, limits.fan_fault_envelope_c);
    std::printf("# worst energy ratio: %.4f (cap %.2f)\n", worst_ratio, limits.max_energy_ratio);
    if (violations > 0) {
        std::printf("# FAIL: %ld of %ld campaigns violated the invariants\n", violations,
                    campaigns);
        return 1;
    }
    std::printf("# OK: all %ld campaigns inside the envelope\n", campaigns);
    return 0;
}
