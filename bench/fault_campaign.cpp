// Chaos sweep over randomized fault campaigns.
//
//   $ ./fault_campaign [campaigns] [base_seed] [class] [monitored]
//
// Runs `campaigns` seeded random fault campaigns (default 100, seeds
// base_seed..base_seed+campaigns-1) through sim::run_fault_campaign —
// each a healthy/faulted twin pair under Failsafe(Bang) — across
// parallel_runner's worker pool (LTSC_THREADS honored), and reports per
// campaign the schedule size, fault mix, max true die temperature of
// both twins, the energy regret, and (when monitored) the detection
// stats.  `class` selects the generator: survivable (default),
// lying_sensor, correlated, or drifting_sensor; `monitored` (0/1) runs
// both legs with the residual monitor — it defaults on for the
// lying-sensor and drifting-sensor classes, whose envelopes are only
// defensible with the monitor-backed failsafe.
// Exits nonzero if any campaign violates the calibrated invariants
// (thermal envelope, bounded energy regret) — the CI chaos gates.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/fault_campaign.hpp"
#include "sim/parallel_runner.hpp"
#include "util/log.hpp"

namespace {

using namespace ltsc;

long arg_or(int argc, char** argv, int index, long fallback) {
    if (argc <= index) {
        return fallback;
    }
    char* end = nullptr;
    const long v = std::strtol(argv[index], &end, 10);
    if (end == argv[index] || *end != '\0' || v < 0) {
        std::fprintf(stderr, "fault_campaign: bad argument '%s'\n", argv[index]);
        std::exit(2);
    }
    return v;
}

sim::campaign_class class_arg(int argc, char** argv, int index) {
    if (argc <= index) {
        return sim::campaign_class::survivable;
    }
    for (const sim::campaign_class c :
         {sim::campaign_class::survivable, sim::campaign_class::lying_sensor,
          sim::campaign_class::correlated, sim::campaign_class::drifting_sensor}) {
        if (std::strcmp(argv[index], sim::to_string(c)) == 0) {
            return c;
        }
    }
    std::fprintf(stderr,
                 "fault_campaign: unknown class '%s' "
                 "(survivable|lying_sensor|correlated|drifting_sensor)\n",
                 argv[index]);
    std::exit(2);
}

double percentile(std::vector<double> xs, double p) {
    if (xs.empty()) {
        return 0.0;
    }
    std::sort(xs.begin(), xs.end());
    const double rank = p * static_cast<double>(xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

}  // namespace

int main(int argc, char** argv) {
    util::set_log_level(util::log_level::warn);
    const long campaigns = arg_or(argc, argv, 1, 100);
    const long base_seed = arg_or(argc, argv, 2, 1);
    const sim::campaign_class fault_class = class_arg(argc, argv, 3);
    const bool monitored =
        arg_or(argc, argv, 4,
               fault_class == sim::campaign_class::lying_sensor ||
                       fault_class == sim::campaign_class::drifting_sensor
                   ? 1
                   : 0) != 0;

    sim::fault_campaign_options options;
    options.fault_class = fault_class;
    options.monitored = monitored;

    sim::parallel_runner runner(sim::parallel_runner::threads_from_env());
    std::printf("# chaos sweep: %ld %s campaigns, seeds %ld..%ld, monitor %s, %zu threads\n",
                campaigns, sim::to_string(fault_class), base_seed,
                base_seed + campaigns - 1, monitored ? "on" : "off", runner.thread_count());
    const std::vector<sim::fault_campaign_result> results =
        runner.map<sim::fault_campaign_result>(
            static_cast<std::size_t>(campaigns), [&](std::size_t i) {
                return sim::run_fault_campaign(
                    static_cast<std::uint64_t>(base_seed + static_cast<long>(i)), options);
            });

    const sim::fault_campaign_limits limits;
    std::printf("%8s %7s %9s %14s %14s %12s %8s %10s %s\n", "seed", "events", "fan_fault",
                "healthy_max_C", "faulted_max_C", "energy_ratio", "detected", "ttd_mean_s",
                "verdict");
    long violations = 0;
    double worst_no_fan = 0.0;
    double worst_fan = 0.0;
    double worst_ratio = 0.0;
    std::size_t false_alarm_steps = 0;
    std::size_t onsets = 0;
    std::size_t detected = 0;
    std::vector<double> latencies;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const sim::fault_campaign_result& r = results[i];
        const auto violation = sim::campaign_violation(r, limits);
        if (violation.has_value()) {
            ++violations;
        }
        (r.fan_fault ? worst_fan : worst_no_fan) =
            std::max(r.fan_fault ? worst_fan : worst_no_fan, r.faulted_max_die_c);
        worst_ratio = std::max(worst_ratio, r.energy_ratio);
        false_alarm_steps += r.healthy_detection.alarm_steps;
        onsets += r.faulted_detection.fault_onsets;
        detected += r.faulted_detection.detected;
        if (r.faulted_detection.detected > 0) {
            latencies.push_back(r.faulted_detection.mean_time_to_detect_s);
        }
        std::printf("%8ld %7zu %9s %14.3f %14.3f %12.4f %8zu %10.2f %s\n",
                    base_seed + static_cast<long>(i), r.schedule.size(),
                    r.fan_fault ? "yes" : "no", r.healthy_max_die_c, r.faulted_max_die_c,
                    r.energy_ratio, r.faulted_detection.detected,
                    r.faulted_detection.mean_time_to_detect_s,
                    violation.has_value() ? violation->c_str() : "ok");
    }
    std::printf("# worst max die temp: %.3f degC (no fan fault), %.3f degC (fan fault)\n",
                worst_no_fan, worst_fan);
    std::printf("# worst energy ratio: %.4f\n", worst_ratio);
    if (monitored) {
        std::printf("# detection: %zu/%zu onsets detected; campaign-mean latency "
                    "p50 %.1f s, p90 %.1f s, max %.1f s; healthy-leg false-alarm steps %zu\n",
                    detected, onsets, percentile(latencies, 0.5), percentile(latencies, 0.9),
                    latencies.empty() ? 0.0
                                      : *std::max_element(latencies.begin(), latencies.end()),
                    false_alarm_steps);
    }
    if (violations > 0) {
        std::printf("# FAIL: %ld of %ld campaigns violated the invariants\n", violations,
                    campaigns);
        return 1;
    }
    std::printf("# OK: all %ld campaigns inside the envelope\n", campaigns);
    return 0;
}
