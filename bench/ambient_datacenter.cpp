// Reproduces the paper's closing observation on Fig. 3: "the machine is
// in a colder environment compared to the ambient of a data center", which
// is why the LUT controller only needed to alternate between two fan
// speeds.  Re-running the characterization and Test-3 at data-center
// ambients shows the LUT adapting: optima shift toward faster fans and
// the controller uses more of its table.
//
// Each ambient is an independent pipeline (characterize, then a 2-lane
// sim::server_batch stepping the Default baseline and the LUT run
// together through the batched thermal kernel); the five ambients
// execute concurrently through sim::parallel_runner::map, and rows print
// in sweep order regardless of thread count (LTSC_THREADS=1 forces a
// serial sweep).
#include <cstdio>
#include <set>
#include <vector>

#include "core/characterization.hpp"
#include "core/controller_runtime.hpp"
#include "core/default_controller.hpp"
#include "core/lut_controller.hpp"
#include "sim/metrics.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/server_batch.hpp"
#include "sim/server_simulator.hpp"
#include "workload/paper_tests.hpp"

namespace {

struct ambient_row {
    double ambient_c = 0.0;
    double lut_at_100_rpm = 0.0;
    double energy_kwh = 0.0;
    double net_savings = 0.0;
    double max_temp_c = 0.0;
    std::size_t distinct_speeds = 0;
    double avg_rpm = 0.0;
};

}  // namespace

int main() {
    using namespace ltsc;
    using namespace ltsc::util::literals;

    const std::vector<double> ambients{18.0, 24.0, 28.0, 32.0, 36.0};
    const auto profile = workload::make_paper_test(workload::paper_test::test3_frequent);

    sim::parallel_runner runner(sim::parallel_runner::threads_from_env());
    const std::vector<ambient_row> rows =
        runner.map<ambient_row>(ambients.size(), [&](std::size_t i) {
            auto cfg = sim::paper_server();
            cfg.thermal.ambient_c = ambients[i];
            sim::server_simulator probe(cfg);
            const auto ch = core::characterize(probe);
            const util::watts_t idle = probe.idle_power(3300_rpm);

            // Baseline and LUT run side by side as two lanes of one batch.
            sim::server_batch pair(cfg, 2);
            core::default_controller dflt;
            core::lut_controller lut(ch.lut);
            const auto results = core::run_controlled_batch(
                pair, {&dflt, &lut}, {profile, profile});
            const sim::run_metrics& base = results[0];
            const sim::run_metrics& m = results[1];

            std::set<double> speeds;
            for (const auto& s : pair.trace(1).avg_fan_rpm().samples()) {
                speeds.insert(s.v);
            }
            ambient_row row;
            row.ambient_c = ambients[i];
            row.lut_at_100_rpm = ch.lut.lookup(100.0).value();
            row.energy_kwh = m.energy_kwh;
            row.net_savings = sim::net_savings(m, base, idle);
            row.max_temp_c = m.max_temp_c;
            row.distinct_speeds = speeds.size();
            row.avg_rpm = m.avg_rpm;
            return row;
        });

    std::printf("== Ambient sweep: lab (24 degC) vs data-center aisles (%zu threads) ==\n\n",
                runner.thread_count());
    std::printf("%14s %14s %13s %9s %12s %15s %10s\n", "ambient[degC]", "LUT@100%[rpm]",
                "energy[kWh]", "net sav", "maxT[degC]", "distinct speeds", "avg RPM");
    for (const ambient_row& row : rows) {
        std::printf("%14.0f %14.0f %13.4f %8.1f%% %12.1f %15zu %10.0f\n", row.ambient_c,
                    row.lut_at_100_rpm, row.energy_kwh, 100.0 * row.net_savings, row.max_temp_c,
                    row.distinct_speeds, row.avg_rpm);
    }

    std::printf("\npaper claim reproduced: at the paper's cool lab ambient the LUT\n"
                "alternates between just two speeds; at data-center ambients the\n"
                "characterization pushes optima to faster fans, the controller uses\n"
                "more of its table, and savings shrink as the leakage-safe envelope\n"
                "tightens.\n");
    return 0;
}
