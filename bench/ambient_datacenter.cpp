// Reproduces the paper's closing observation on Fig. 3: "the machine is
// in a colder environment compared to the ambient of a data center", which
// is why the LUT controller only needed to alternate between two fan
// speeds.  Re-running the characterization and Test-3 at data-center
// ambients shows the LUT adapting: optima shift toward faster fans and
// the controller uses more of its table.
#include <cstdio>
#include <set>

#include "core/characterization.hpp"
#include "core/controller_runtime.hpp"
#include "core/default_controller.hpp"
#include "core/lut_controller.hpp"
#include "sim/metrics.hpp"
#include "sim/server_simulator.hpp"
#include "workload/paper_tests.hpp"

int main() {
    using namespace ltsc;
    using namespace ltsc::util::literals;

    std::printf("== Ambient sweep: lab (24 degC) vs data-center aisles ==\n\n");
    std::printf("%14s %14s %13s %9s %12s %15s %10s\n", "ambient[degC]", "LUT@100%[rpm]",
                "energy[kWh]", "net sav", "maxT[degC]", "distinct speeds", "avg RPM");

    const auto profile = workload::make_paper_test(workload::paper_test::test3_frequent);
    for (double ambient : {18.0, 24.0, 28.0, 32.0, 36.0}) {
        auto cfg = sim::paper_server();
        cfg.thermal.ambient_c = ambient;
        sim::server_simulator server(cfg);
        const auto ch = core::characterize(server);
        const util::watts_t idle = server.idle_power(3300_rpm);

        core::default_controller dflt;
        core::lut_controller lut(ch.lut);
        const sim::run_metrics base = core::run_controlled(server, dflt, profile);
        const sim::run_metrics m = core::run_controlled(server, lut, profile);

        std::set<double> speeds;
        for (const auto& s : server.trace().avg_fan_rpm.samples()) {
            speeds.insert(s.v);
        }
        std::printf("%14.0f %14.0f %13.4f %8.1f%% %12.1f %15zu %10.0f\n", ambient,
                    ch.lut.lookup(100.0).value(), m.energy_kwh,
                    100.0 * sim::net_savings(m, base, idle), m.max_temp_c, speeds.size(),
                    m.avg_rpm);
    }

    std::printf("\npaper claim reproduced: at the paper's cool lab ambient the LUT\n"
                "alternates between just two speeds; at data-center ambients the\n"
                "characterization pushes optima to faster fans, the controller uses\n"
                "more of its table, and savings shrink as the leakage-safe envelope\n"
                "tightens.\n");
    return 0;
}
