// Google-benchmark microbenchmarks: throughput of the library's hot
// paths.  These are engineering benchmarks (simulation speed), not paper
// reproductions — the figure/table harnesses live in the sibling
// binaries.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>

#include "core/bang_bang_controller.hpp"
#include "core/characterization.hpp"
#include "core/controller_runtime.hpp"
#include "core/lut_controller.hpp"
#include "core/rollout_controller.hpp"
#include "fit/nlls.hpp"
#include "sim/batch_trace.hpp"
#include "sim/fleet.hpp"
#include "sim/server_batch.hpp"
#include "sim/server_simulator.hpp"
#include "sim/simulation_trace.hpp"
#include "telemetry_service/online_metrics.hpp"
#include "telemetry_service/row_group.hpp"
#include "thermal/numerics.hpp"
#include "util/spsc_ring.hpp"
#include "thermal/server_thermal_model.hpp"
#include "thermal/steady_state.hpp"
#include "workload/paper_tests.hpp"
#include "workload/queueing.hpp"

namespace {

using namespace ltsc;
using namespace ltsc::util::literals;

void BM_ThermalStep(benchmark::State& state) {
    thermal::server_thermal_model m;
    m.set_cpu_heat(0, 115_W);
    m.set_cpu_heat(1, 115_W);
    m.set_dimm_heat(145_W);
    for (auto _ : state) {
        m.step(1_s);
        benchmark::DoNotOptimize(m.average_cpu_temp());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThermalStep);

void BM_ThermalStepImplicit(benchmark::State& state) {
    thermal::server_thermal_model m(thermal::server_thermal_config{},
                                    thermal::integration_scheme::implicit_euler);
    m.set_cpu_heat(0, 115_W);
    m.set_cpu_heat(1, 115_W);
    m.set_dimm_heat(145_W);
    for (auto _ : state) {
        m.step(1_s);
        benchmark::DoNotOptimize(m.average_cpu_temp());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThermalStepImplicit);

void BM_ThermalSteadyStateSolve(benchmark::State& state) {
    thermal::server_thermal_model m;
    m.set_cpu_heat(0, 115_W);
    m.set_cpu_heat(1, 115_W);
    m.set_dimm_heat(145_W);
    for (auto _ : state) {
        m.settle_to_steady_state();
        benchmark::DoNotOptimize(m.average_cpu_temp());
    }
}
BENCHMARK(BM_ThermalSteadyStateSolve);

void BM_SimulatorSecond(benchmark::State& state) {
    sim::server_simulator s;
    workload::utilization_profile p("bench");
    p.constant(60.0, util::seconds_t{1e9});
    s.bind_workload(p);
    for (auto _ : state) {
        s.step(1_s);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel("simulated seconds per wall second");
}
BENCHMARK(BM_SimulatorSecond);

void BM_SimulatorSecondMonitored(benchmark::State& state) {
    // Detection overhead: the same scalar plant second with the residual
    // monitor enabled (twin thermal step + fan residuals every step,
    // sensor residuals every poll).  Read against BM_SimulatorSecond for
    // the monitor's cost; the monitor is off by default, so only
    // fault-aware runs pay it.
    sim::server_config config = sim::paper_server();
    config.monitor.enabled = true;
    sim::server_simulator s(config);
    workload::utilization_profile p("bench");
    p.constant(60.0, util::seconds_t{1e9});
    s.bind_workload(p);
    for (auto _ : state) {
        s.step(1_s);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel("simulated seconds per wall second");
}
BENCHMARK(BM_SimulatorSecondMonitored);

void BM_BatchStep(benchmark::State& state) {
    // One batched plant second across N servers; items = server-steps, so
    // items/s is per-server throughput and can be read directly against
    // BM_SimulatorSecond (the scalar path).  The acceptance bar for the
    // SoA plant is N=64 per-server cost within 1.25x of scalar.
    const std::size_t lanes = static_cast<std::size_t>(state.range(0));
    sim::server_batch batch(sim::paper_server(), lanes);
    workload::utilization_profile p("bench");
    p.constant(60.0, util::seconds_t{1e9});
    for (std::size_t l = 0; l < lanes; ++l) {
        batch.bind_workload(l, p);
    }
    for (auto _ : state) {
        batch.step(1_s);
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(lanes));
    state.SetLabel("per-server simulated seconds per wall second");
}
BENCHMARK(BM_BatchStep)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

void BM_BatchStepSimd(benchmark::State& state) {
    // The same batched plant second under the relaxed numerics tier: the
    // thermal kernel runs the vectorized block-local integrator
    // (rc_batch_kernels) instead of the bitwise lane loop.  Read against
    // BM_BatchStep at the same N for the SIMD payoff; the acceptance bar
    // is N=256 per-server cost at or below the scalar plant.
    const std::size_t lanes = static_cast<std::size_t>(state.range(0));
    sim::server_batch batch(sim::paper_server(), lanes, thermal::numerics_tier::relaxed);
    workload::utilization_profile p("bench");
    p.constant(60.0, util::seconds_t{1e9});
    for (std::size_t l = 0; l < lanes; ++l) {
        batch.bind_workload(l, p);
    }
    for (auto _ : state) {
        batch.step(1_s);
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(lanes));
    state.SetLabel("per-server simulated seconds per wall second");
}
BENCHMARK(BM_BatchStepSimd)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

void BM_FleetStep(benchmark::State& state) {
    // Sharded fleet stepping: N lanes split across K server_batch shards
    // stepped on a K-wide thread pool (sim::fleet).  args = (lanes,
    // shards); items = server-steps, directly comparable to BM_BatchStep.
    // Shard results are bitwise invariant in K (the fleet suite pins
    // that), so this family measures pure partitioning/pool overhead or
    // payoff on the host at hand.
    const std::size_t lanes = static_cast<std::size_t>(state.range(0));
    const std::size_t shards = static_cast<std::size_t>(state.range(1));
    sim::fleet_config fc;
    fc.shards = shards;
    fc.threads = shards;
    sim::fleet fleet(sim::paper_server(), lanes, fc);
    workload::utilization_profile p("bench");
    p.constant(60.0, util::seconds_t{1e9});
    for (std::size_t l = 0; l < lanes; ++l) {
        fleet.bind_workload(l, p);
    }
    for (auto _ : state) {
        fleet.step(1_s);
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(lanes));
    state.SetLabel("per-server simulated seconds per wall second");
}
BENCHMARK(BM_FleetStep)
    ->Args({1024, 1})
    ->Args({1024, 4})
    ->Args({10240, 1})
    ->Args({10240, 4})
    ->Unit(benchmark::kMicrosecond);

void BM_TraceRecord(benchmark::State& state) {
    // Pure recording cost: one columnar row append (shared timestamp +
    // 12 channel values) per simulated step.  This is the storage layer
    // under BM_SimulatorSecond's record() call.
    // Cycle a pre-reserved working set so the number reflects
    // steady-state append cost (not first-touch vector growth) at any
    // --benchmark_min_time.
    constexpr std::size_t kRows = 1U << 16;
    sim::simulation_trace tr;
    tr.reserve(kRows);
    sim::trace_row row;
    for (std::size_t c = 0; c < sim::trace_channel_count; ++c) {
        row.values[c] = 40.0 + static_cast<double>(c);
    }
    double t = 0.0;
    for (auto _ : state) {
        if (tr.size() == kRows) {
            tr.clear();
            t = 0.0;
        }
        tr.append(t, row);
        t += 1.0;
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel("rows per second");
}
BENCHMARK(BM_TraceRecord);

void BM_TraceRecordBatch(benchmark::State& state) {
    // Fleet recording: one lane-major arena row-group per step (all N
    // lanes' rows land contiguously).  items = lane-rows, comparable to
    // BM_TraceRecord's per-row cost.
    const std::size_t lanes = static_cast<std::size_t>(state.range(0));
    const std::size_t steps = (1U << 20) / lanes;
    sim::batch_trace traces(lanes);
    traces.reserve_steps(steps);
    sim::trace_row row;
    for (std::size_t c = 0; c < sim::trace_channel_count; ++c) {
        row.values[c] = 40.0 + static_cast<double>(c);
    }
    double t = 0.0;
    for (auto _ : state) {
        if (traces.size(0) == steps) {
            for (std::size_t l = 0; l < lanes; ++l) {
                traces.clear(l);
            }
            t = 0.0;
        }
        for (std::size_t l = 0; l < lanes; ++l) {
            traces.append(l, t, row);
        }
        t += 1.0;
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(lanes));
    state.SetLabel("lane-rows per second");
}
BENCHMARK(BM_TraceRecordBatch)->Arg(64)->Arg(256);

void BM_LutDecision(benchmark::State& state) {
    sim::server_simulator s;
    core::lut_controller lut(core::characterize(s).lut);
    core::controller_inputs in;
    in.utilization_pct = 63.0;
    in.max_cpu_temp = 68_degC;
    in.current_rpm = 1800_rpm;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lut.decide(in));
    }
}
BENCHMARK(BM_LutDecision);

void BM_BangBangDecision(benchmark::State& state) {
    core::bang_bang_controller bang;
    core::controller_inputs in;
    in.max_cpu_temp = 72_degC;
    in.current_rpm = 2400_rpm;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bang.decide(in));
    }
}
BENCHMARK(BM_BangBangDecision);

void BM_RolloutDecision(benchmark::State& state) {
    // One full receding-horizon decision: snapshot the live plant, clone
    // it across the candidate lanes, integrate every candidate over the
    // horizon through the batched kernel, score, commit.  With the
    // lattice below each decision rolls ~5 candidates x 120 s, so one
    // decision costs ~600 batched lane-steps — the number to watch when
    // touching the snapshot/load path or the rollout loop.
    sim::server_simulator s;
    workload::utilization_profile p("bench");
    p.constant(60.0, util::seconds_t{1e9});
    s.bind_workload(p);
    s.force_cold_start();
    s.advance(300_s);

    core::rollout_controller_config cfg;
    cfg.horizon = 120_s;
    cfg.lattice_radius = 2;
    core::rollout_controller roll(std::make_unique<core::bang_bang_controller>(), cfg);
    const core::simulator_plant_view plant(s);
    roll.attach_plant(&plant);

    core::controller_inputs in;
    in.now = s.now();
    in.utilization_pct = s.measured_utilization(240_s);
    in.max_cpu_temp = s.max_cpu_sensor_temp();
    in.current_rpm = s.average_fan_rpm();
    in.system_power = s.system_power_reading();
    for (auto _ : state) {
        benchmark::DoNotOptimize(roll.decide(in));
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel("rollout decisions per second");
}
BENCHMARK(BM_RolloutDecision);

void BM_RolloutDecisionSharded(benchmark::State& state) {
    // The same decision with the engine's scale-out levers on: candidate
    // lanes under the relaxed (vectorized) numerics tier, split across
    // shards.  Scores and the argmin are shard/thread invariant (pinned
    // by the fleet suite), so the delta vs BM_RolloutDecision is pure
    // kernel speed plus partitioning overhead on this host.
    sim::server_simulator s;
    workload::utilization_profile p("bench");
    p.constant(60.0, util::seconds_t{1e9});
    s.bind_workload(p);
    s.force_cold_start();
    s.advance(300_s);

    core::rollout_controller_config cfg;
    cfg.horizon = 120_s;
    cfg.lattice_radius = 2;
    cfg.engine.shards = 4;
    cfg.engine.threads = 1;
    cfg.engine.tier = thermal::numerics_tier::relaxed;
    core::rollout_controller roll(std::make_unique<core::bang_bang_controller>(), cfg);
    const core::simulator_plant_view plant(s);
    roll.attach_plant(&plant);

    core::controller_inputs in;
    in.now = s.now();
    in.utilization_pct = s.measured_utilization(240_s);
    in.max_cpu_temp = s.max_cpu_sensor_temp();
    in.current_rpm = s.average_fan_rpm();
    in.system_power = s.system_power_reading();
    for (auto _ : state) {
        benchmark::DoNotOptimize(roll.decide(in));
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel("rollout decisions per second");
}
BENCHMARK(BM_RolloutDecisionSharded);

void BM_LeakageFit(benchmark::State& state) {
    sim::server_simulator s;
    const auto sweep =
        sim::run_steady_sweep(s, sim::paper_utilization_levels(), power::paper_rpm_settings());
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::fit_power_model(sweep));
    }
}
BENCHMARK(BM_LeakageFit);

void BM_MmcSimulation(benchmark::State& state) {
    workload::mmc_config cfg;
    cfg.servers = 64;
    cfg.service_rate_hz = 0.05;
    cfg.arrival_rate_hz = 1.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            workload::simulate_mmc(cfg, util::seconds_t{static_cast<double>(state.range(0))}));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MmcSimulation)->Arg(600)->Arg(4800);

void BM_FullTable1Cell(benchmark::State& state) {
    // One Table-I cell: an 80-minute closed-loop run.
    sim::server_simulator s;
    const auto lut_table = core::characterize(s).lut;
    const auto profile = workload::make_paper_test(workload::paper_test::test3_frequent);
    for (auto _ : state) {
        core::lut_controller lut(lut_table);
        benchmark::DoNotOptimize(core::run_controlled(s, lut, profile));
    }
    state.SetLabel("80 simulated minutes per iteration");
}
BENCHMARK(BM_FullTable1Cell);

void BM_TelemetryIngest(benchmark::State& state) {
    // The telemetry service's per-group ingestion pipeline, minus
    // threads: fill a ring slot with a 64-lane row-group (the publish
    // copy), drain it, and fold it into the online state (the
    // aggregator apply).  Items = lane-rows ingested.
    constexpr std::size_t lanes = 64;
    telemetry_service::row_group proto;
    proto.shard = 0;
    proto.lanes = lanes;
    proto.active.assign((lanes + 63) / 64, ~0ULL);
    proto.data.assign(lanes * telemetry_service::row_group::lane_doubles, 0.0);
    telemetry_service::online_state online(lanes);
    util::spsc_ring<telemetry_service::row_group> ring(8);
    telemetry_service::row_group scratch;
    double t = 0.0;
    std::uint64_t epoch = 0;
    for (auto _ : state) {
        t += 1.0;
        ++epoch;
        for (std::size_t l = 0; l < lanes; ++l) {
            double* slot = proto.data.data() +
                           l * telemetry_service::row_group::lane_doubles;
            slot[0] = t;
            slot[1 + static_cast<std::size_t>(sim::trace_channel::total_power)] =
                250.0 + static_cast<double>(l);
            slot[1 + static_cast<std::size_t>(sim::trace_channel::max_sensor_temp)] =
                60.0 + static_cast<double>(l % 7);
        }
        ring.try_push([&](telemetry_service::row_group& g) {
            g.epoch = epoch;
            g.shard = proto.shard;
            g.lanes = proto.lanes;
            g.active = proto.active;
            g.data = proto.data;
        });
        ring.try_pop([&](telemetry_service::row_group& g) { scratch = std::move(g); });
        online.apply_group(scratch, 0);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_TelemetryIngest);

void BM_OnlineMetricsWindow(benchmark::State& state) {
    // Pure online-engine row cost: one lane folding rows through whole
    // 60-row windows (trapezoids, extrema, histogram, window close).
    telemetry_service::online_state online(1);
    double channels[sim::trace_channel_count] = {};
    channels[static_cast<std::size_t>(sim::trace_channel::total_power)] = 250.0;
    channels[static_cast<std::size_t>(sim::trace_channel::avg_fan_rpm)] = 2100.0;
    channels[static_cast<std::size_t>(sim::trace_channel::avg_cpu_temp)] = 58.0;
    channels[static_cast<std::size_t>(sim::trace_channel::max_sensor_temp)] = 63.0;
    double t = 0.0;
    for (auto _ : state) {
        t += 1.0;
        channels[static_cast<std::size_t>(sim::trace_channel::total_power)] =
            250.0 + (t * 7.0 - static_cast<double>(static_cast<int>(t * 7.0 / 40.0)) * 40.0);
        online.apply_row(0, t, channels);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OnlineMetricsWindow);

}  // namespace

BENCHMARK_MAIN();
