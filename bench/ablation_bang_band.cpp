// Ablation: the bang-bang controller's temperature band.  The paper:
// "Smaller target temperature ranges (e.g., 70-75) increase fan speed
// change frequency whereas larger ranges (e.g., 60-75) create higher
// temperature overshoots and undershoots."
//
// Sweeps the band on Test-3 and reports change frequency, overshoot and
// energy, plus the thermal-cycling damage metric that motivates keeping
// cycles small.
#include <cstdio>

#include "core/bang_bang_controller.hpp"
#include "core/controller_runtime.hpp"
#include "core/reliability.hpp"
#include "sim/metrics.hpp"
#include "sim/server_simulator.hpp"
#include "workload/paper_tests.hpp"

int main() {
    using namespace ltsc;

    sim::server_simulator server;
    const auto profile = workload::make_paper_test(workload::paper_test::test3_frequent);

    struct band {
        double floor_c, low_c, high_c, ceiling_c;
        const char* label;
    };
    const band bands[] = {
        {65.0, 70.0, 75.0, 80.0, "70-75 (narrow)"},
        {60.0, 65.0, 75.0, 80.0, "65-75 (paper)"},
        {55.0, 60.0, 75.0, 80.0, "60-75 (wide)"},
        {50.0, 55.0, 75.0, 80.0, "55-75 (wider)"},
    };

    std::printf("== Ablation: bang-bang temperature band on Test-3 ==\n\n");
    std::printf("%-16s %13s %13s %12s %12s %15s\n", "band", "energy[kWh]", "#fan changes",
                "maxT[degC]", "minT@load", "cycle damage");
    for (const band& b : bands) {
        core::bang_bang_thresholds th;
        th.floor_c = b.floor_c;
        th.low_c = b.low_c;
        th.high_c = b.high_c;
        th.ceiling_c = b.ceiling_c;
        core::bang_bang_controller bang(th);
        const sim::run_metrics m = core::run_controlled(server, bang, profile);
        const auto& temp = server.trace().max_sensor_temp;
        // Undershoot during the loaded body (minutes 5-70).
        const double load_min = temp.min(5.0 * 60.0, 70.0 * 60.0);
        const auto cycles = core::count_thermal_cycles(temp);
        std::printf("%-16s %13.4f %13zu %12.1f %12.1f %15.2f\n", b.label, m.energy_kwh,
                    m.fan_changes, m.max_temp_c, load_min, cycles.damage_index);
    }
    std::printf("\nexpected: narrow bands -> more changes; wide bands -> larger thermal\n"
                "cycles (damage) and deeper undershoot.  The paper picks 65-75.\n");
    return 0;
}
