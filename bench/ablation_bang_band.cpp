// Ablation: the bang-bang controller's temperature band.  The paper:
// "Smaller target temperature ranges (e.g., 70-75) increase fan speed
// change frequency whereas larger ranges (e.g., 60-75) create higher
// temperature overshoots and undershoots."
//
// Sweeps the band on Test-3 and reports change frequency, overshoot and
// energy, plus the thermal-cycling damage metric that motivates keeping
// cycles small.  Each band is an independent fresh-plant run; the sweep
// fans out through sim::parallel_runner::map because the row needs the
// run's trace (undershoot, cycle counting), not just the metrics.
#include <cstdio>
#include <vector>

#include "core/bang_bang_controller.hpp"
#include "core/controller_runtime.hpp"
#include "core/reliability.hpp"
#include "sim/metrics.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/server_simulator.hpp"
#include "workload/paper_tests.hpp"

namespace {

struct band {
    double floor_c, low_c, high_c, ceiling_c;
    const char* label;
};

struct band_row {
    ltsc::sim::run_metrics metrics;
    double load_min_c = 0.0;
    double damage_index = 0.0;
};

}  // namespace

int main() {
    using namespace ltsc;

    const auto profile = workload::make_paper_test(workload::paper_test::test3_frequent);
    const band bands[] = {
        {65.0, 70.0, 75.0, 80.0, "70-75 (narrow)"},
        {60.0, 65.0, 75.0, 80.0, "65-75 (paper)"},
        {55.0, 60.0, 75.0, 80.0, "60-75 (wide)"},
        {50.0, 55.0, 75.0, 80.0, "55-75 (wider)"},
    };

    sim::parallel_runner runner(sim::parallel_runner::threads_from_env());
    const std::vector<band_row> rows =
        runner.map<band_row>(std::size(bands), [&](std::size_t i) {
            const band& b = bands[i];
            core::bang_bang_thresholds th;
            th.floor_c = b.floor_c;
            th.low_c = b.low_c;
            th.high_c = b.high_c;
            th.ceiling_c = b.ceiling_c;
            core::bang_bang_controller bang(th);
            sim::server_simulator server;
            band_row row;
            row.metrics = core::run_controlled(server, bang, profile);
            const util::column_view temp = server.trace().max_sensor_temp();
            // Undershoot during the loaded body (minutes 5-70).
            row.load_min_c = temp.min(5.0 * 60.0, 70.0 * 60.0);
            row.damage_index = core::count_thermal_cycles(temp).damage_index;
            return row;
        });

    std::printf("== Ablation: bang-bang temperature band on Test-3 (%zu threads) ==\n\n",
                runner.thread_count());
    std::printf("%-16s %13s %13s %12s %12s %15s\n", "band", "energy[kWh]", "#fan changes",
                "maxT[degC]", "minT@load", "cycle damage");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const band_row& row = rows[i];
        std::printf("%-16s %13.4f %13zu %12.1f %12.1f %15.2f\n", bands[i].label,
                    row.metrics.energy_kwh, row.metrics.fan_changes, row.metrics.max_temp_c,
                    row.load_min_c, row.damage_index);
    }
    std::printf("\nexpected: narrow bands -> more changes; wide bands -> larger thermal\n"
                "cycles (damage) and deeper undershoot.  The paper picks 65-75.\n");
    return 0;
}
