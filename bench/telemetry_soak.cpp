// Telemetry-service soak: a large fleet streaming into the service
// while a crowd of HTTP pollers hammers the query endpoints.
//
//   $ ./telemetry_soak [lanes] [pollers] [seconds] [json_out]
//     defaults: 10000 1000 60 (no JSON artifact)
//
// The driver steps a `lanes`-wide fleet flat out for `seconds` of wall
// clock with the service attached, while `pollers` concurrent
// keep-alive connections (multiplexed over a few client threads with
// nonblocking sockets) cycle /metrics, /health, and /lanes/<i>/window.
// Every response is verified end to end: HTTP 200, the body's FNV
// checksum recomputed, and `complete_epoch` monotone per connection.
//
// Exit status is the CI gate: nonzero when any row-group was dropped,
// any checksum mismatched (a torn read), any epoch went backwards, or
// any request failed.  Ingest throughput [rows/s] and query latency
// percentiles are printed and, with `json_out`, recorded for the bench
// artifact.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "sim/fleet.hpp"
#include "telemetry_service/service.hpp"
#include "workload/profile.hpp"

namespace {

using namespace ltsc;
using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}

/// Shared verdict counters across every client thread.
struct poll_stats {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> http_errors{0};
    std::atomic<std::uint64_t> torn_reads{0};
    std::atomic<std::uint64_t> epoch_regressions{0};
    std::atomic<std::uint64_t> connect_failures{0};
};

/// Recomputes the body's trailing FNV checksum field.
bool checksum_ok(const std::string& body) {
    const std::size_t pos = body.rfind(",\"checksum\":\"");
    if (pos == std::string::npos || body.size() < pos + 13 + 16 + 2) {
        return false;
    }
    char expect[24];
    std::snprintf(expect, sizeof(expect), "%016llx",
                  static_cast<unsigned long long>(
                      telemetry_service::service::fnv1a(body.substr(0, pos))));
    return body.compare(pos + 13, 16, expect) == 0;
}

/// Extracts `"complete_epoch":N` (0 when the field is absent).
std::uint64_t parse_epoch(const std::string& body) {
    const std::size_t pos = body.find("\"complete_epoch\":");
    if (pos == std::string::npos) {
        return 0;
    }
    return std::strtoull(body.c_str() + pos + 17, nullptr, 10);
}

/// One keep-alive poller connection's state machine.
struct poller_conn {
    int fd = -1;
    std::string inbuf;
    std::string outbuf;      ///< Unsent request bytes.
    bool in_flight = false;  ///< Awaiting a response.
    bool sees_epoch = false; ///< Current request's body carries complete_epoch.
    std::uint64_t last_epoch = 0;
    std::size_t endpoint = 0;
    clock_type::time_point sent_at;
};

/// A few of these threads multiplex `conns` nonblocking keep-alive
/// connections each — thousands of pollers without thousands of threads.
void poller_thread(std::uint16_t port, std::size_t conns, std::size_t lanes,
                   std::size_t thread_index, const std::atomic<bool>& stop,
                   poll_stats& stats, std::vector<double>& latencies_ms) {
    std::vector<poller_conn> cs(conns);
    for (std::size_t i = 0; i < conns; ++i) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
            stats.connect_failures.fetch_add(1, std::memory_order_relaxed);
            if (fd >= 0) {
                ::close(fd);
            }
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        const int flags = ::fcntl(fd, F_GETFL, 0);
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        cs[i].fd = fd;
        cs[i].endpoint = (thread_index + i) % 3;
    }
    cs.erase(std::remove_if(cs.begin(), cs.end(),
                            [](const poller_conn& c) { return c.fd < 0; }),
             cs.end());

    std::uint64_t lane_cursor = thread_index * 7919;
    const auto next_request = [&](poller_conn& c) {
        std::string path;
        switch (c.endpoint) {
            case 0: path = "/metrics"; c.sees_epoch = true; break;
            case 1: path = "/health"; c.sees_epoch = true; break;
            default:
                lane_cursor = lane_cursor * 6364136223846793005ULL + 1442695040888963407ULL;
                path = "/lanes/" + std::to_string(lane_cursor % lanes) + "/window";
                c.sees_epoch = false;
                break;
        }
        c.endpoint = (c.endpoint + 1) % 3;
        c.outbuf = "GET " + path + " HTTP/1.1\r\nHost: soak\r\n\r\n";
        c.in_flight = true;
        c.sent_at = clock_type::now();
    };
    for (auto& c : cs) {
        next_request(c);
    }

    std::vector<struct pollfd> pfds;
    while (!stop.load(std::memory_order_acquire) && !cs.empty()) {
        pfds.clear();
        for (const auto& c : cs) {
            short events = POLLIN;
            if (!c.outbuf.empty()) {
                events |= POLLOUT;
            }
            pfds.push_back({c.fd, events, 0});
        }
        if (::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 100) <= 0) {
            continue;
        }
        for (std::size_t i = cs.size(); i-- > 0;) {
            poller_conn& c = cs[i];
            const short revents = pfds[i].revents;
            bool dead = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
            if (!dead && (revents & POLLOUT) != 0 && !c.outbuf.empty()) {
                const ssize_t n =
                    ::send(c.fd, c.outbuf.data(), c.outbuf.size(), MSG_NOSIGNAL);
                if (n > 0) {
                    c.outbuf.erase(0, static_cast<std::size_t>(n));
                } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                           errno != EINTR) {
                    dead = true;
                }
            }
            if (!dead && (revents & POLLIN) != 0) {
                char buf[8192];
                for (;;) {
                    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
                    if (n > 0) {
                        c.inbuf.append(buf, static_cast<std::size_t>(n));
                        continue;
                    }
                    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                        break;
                    }
                    if (n < 0 && errno == EINTR) {
                        continue;
                    }
                    dead = true;
                    break;
                }
            }
            // Consume every complete response buffered so far.
            while (!dead && c.in_flight) {
                const std::size_t head_end = c.inbuf.find("\r\n\r\n");
                if (head_end == std::string::npos) {
                    break;
                }
                const std::size_t cl = c.inbuf.find("Content-Length: ");
                if (cl == std::string::npos || cl > head_end) {
                    dead = true;
                    break;
                }
                const std::size_t body_len =
                    std::strtoull(c.inbuf.c_str() + cl + 16, nullptr, 10);
                if (c.inbuf.size() < head_end + 4 + body_len) {
                    break;  // Body still streaming in.
                }
                const double ms = seconds_since(c.sent_at) * 1e3;
                const std::string body = c.inbuf.substr(head_end + 4, body_len);
                const bool ok200 = c.inbuf.compare(9, 3, "200") == 0;
                c.inbuf.erase(0, head_end + 4 + body_len);
                stats.requests.fetch_add(1, std::memory_order_relaxed);
                latencies_ms.push_back(ms);
                if (!ok200) {
                    stats.http_errors.fetch_add(1, std::memory_order_relaxed);
                } else if (!checksum_ok(body)) {
                    stats.torn_reads.fetch_add(1, std::memory_order_relaxed);
                } else if (c.sees_epoch) {
                    const std::uint64_t epoch = parse_epoch(body);
                    if (epoch < c.last_epoch) {
                        stats.epoch_regressions.fetch_add(1, std::memory_order_relaxed);
                    }
                    c.last_epoch = epoch;
                }
                c.in_flight = false;
                next_request(c);
            }
            if (dead) {
                ::close(c.fd);
                cs.erase(cs.begin() + static_cast<std::ptrdiff_t>(i));
                stats.connect_failures.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }
    for (const auto& c : cs) {
        ::close(c.fd);
    }
}

double percentile(std::vector<double>& v, double q) {
    if (v.empty()) {
        return 0.0;
    }
    const std::size_t k = std::min(
        v.size() - 1, static_cast<std::size_t>(q * static_cast<double>(v.size())));
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k), v.end());
    return v[k];
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t lanes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000;
    const std::size_t pollers = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1000;
    const double duration_s = argc > 3 ? std::strtod(argv[3], nullptr) : 60.0;
    const char* json_out = argc > 4 ? argv[4] : nullptr;

    std::printf("telemetry soak: %zu lanes, %zu pollers, %.0f s\n", lanes, pollers,
                duration_s);

    sim::fleet fleet(sim::paper_server(), lanes);
    workload::utilization_profile profile("soak");
    profile.constant(55.0, util::seconds_t{1e9});
    for (std::size_t l = 0; l < lanes; ++l) {
        fleet.bind_workload(l, profile);
    }
    fleet.force_cold_start();
    std::printf("fleet: %zu shards on %zu threads\n", fleet.shard_count(),
                fleet.thread_count());

    telemetry_service::service_config cfg;
    cfg.http_threads = 4;
    telemetry_service::service svc(fleet, cfg);

    const std::size_t client_threads =
        std::min<std::size_t>(8, std::max<std::size_t>(1, pollers / 128));
    poll_stats stats;
    std::atomic<bool> stop{false};
    std::vector<std::vector<double>> latencies(client_threads);
    std::vector<std::thread> clients;
    clients.reserve(client_threads);
    for (std::size_t t = 0; t < client_threads; ++t) {
        const std::size_t share =
            pollers / client_threads + (t < pollers % client_threads ? 1 : 0);
        clients.emplace_back(poller_thread, svc.http_port(), share, lanes, t,
                             std::cref(stop), std::ref(stats), std::ref(latencies[t]));
    }

    // Step the plant flat out for the soak window.  Lane traces are
    // cleared periodically so the arena stays bounded: the service
    // copies each row-group out at publish time, so the clears cannot
    // race the rings.
    const auto t0 = clock_type::now();
    std::uint64_t steps = 0;
    while (seconds_since(t0) < duration_s) {
        fleet.step(util::seconds_t{1.0});
        ++steps;
        if (steps % 64 == 0) {
            for (std::size_t l = 0; l < lanes; ++l) {
                fleet.clear_trace(l);
            }
        }
    }
    const double sim_elapsed = seconds_since(t0);
    stop.store(true, std::memory_order_release);
    for (auto& c : clients) {
        c.join();
    }
    svc.drain();

    const telemetry_service::ingest_stats ingest = svc.stats();
    const telemetry_service::fleet_snapshot snap = svc.metrics();
    std::vector<double> all;
    for (const auto& v : latencies) {
        all.insert(all.end(), v.begin(), v.end());
    }
    const double p50 = percentile(all, 0.50);
    const double p95 = percentile(all, 0.95);
    const double p99 = percentile(all, 0.99);
    const double rows_per_s = static_cast<double>(ingest.rows) / sim_elapsed;
    const double req_per_s = static_cast<double>(stats.requests.load()) / sim_elapsed;

    std::printf("steps             %llu (%.1f/s)\n",
                static_cast<unsigned long long>(steps),
                static_cast<double>(steps) / sim_elapsed);
    std::printf("ingest rows       %llu (%.3g rows/s)\n",
                static_cast<unsigned long long>(ingest.rows), rows_per_s);
    std::printf("row-groups        published=%llu applied=%llu dropped=%llu\n",
                static_cast<unsigned long long>(ingest.published_groups),
                static_cast<unsigned long long>(ingest.applied_groups),
                static_cast<unsigned long long>(ingest.dropped_groups));
    std::printf("complete_epoch    %llu\n",
                static_cast<unsigned long long>(snap.complete_epoch));
    std::printf("requests          %llu (%.1f/s), errors=%llu\n",
                static_cast<unsigned long long>(stats.requests.load()), req_per_s,
                static_cast<unsigned long long>(stats.http_errors.load()));
    std::printf("torn reads        %llu, epoch regressions %llu, conn failures %llu\n",
                static_cast<unsigned long long>(stats.torn_reads.load()),
                static_cast<unsigned long long>(stats.epoch_regressions.load()),
                static_cast<unsigned long long>(stats.connect_failures.load()));
    std::printf("query latency ms  p50=%.2f p95=%.2f p99=%.2f\n", p50, p95, p99);

    if (json_out != nullptr) {
        FILE* f = std::fopen(json_out, "w");
        if (f == nullptr) {
            std::fprintf(stderr, "error: cannot write %s\n", json_out);
            return 2;
        }
        std::fprintf(f,
                     "{\"lanes\":%zu,\"pollers\":%zu,\"duration_s\":%.3f,"
                     "\"steps\":%llu,\"ingest_rows_per_s\":%.1f,"
                     "\"published_groups\":%llu,\"applied_groups\":%llu,"
                     "\"dropped_groups\":%llu,\"requests\":%llu,"
                     "\"requests_per_s\":%.1f,\"http_errors\":%llu,"
                     "\"torn_reads\":%llu,\"epoch_regressions\":%llu,"
                     "\"connect_failures\":%llu,\"query_p50_ms\":%.3f,"
                     "\"query_p95_ms\":%.3f,\"query_p99_ms\":%.3f}\n",
                     lanes, pollers, sim_elapsed,
                     static_cast<unsigned long long>(steps), rows_per_s,
                     static_cast<unsigned long long>(ingest.published_groups),
                     static_cast<unsigned long long>(ingest.applied_groups),
                     static_cast<unsigned long long>(ingest.dropped_groups),
                     static_cast<unsigned long long>(stats.requests.load()), req_per_s,
                     static_cast<unsigned long long>(stats.http_errors.load()),
                     static_cast<unsigned long long>(stats.torn_reads.load()),
                     static_cast<unsigned long long>(stats.epoch_regressions.load()),
                     static_cast<unsigned long long>(stats.connect_failures.load()),
                     p50, p95, p99);
        std::fclose(f);
        std::printf("wrote %s\n", json_out);
    }

    const bool failed = ingest.dropped_groups > 0 || stats.torn_reads.load() > 0 ||
                        stats.epoch_regressions.load() > 0 ||
                        stats.http_errors.load() > 0 || stats.requests.load() == 0;
    if (failed) {
        std::fprintf(stderr, "SOAK FAILED\n");
        return 1;
    }
    std::printf("SOAK OK\n");
    return 0;
}
