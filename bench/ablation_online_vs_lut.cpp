// Ablation: offline LUT vs model-free online optimization (extremum
// seeking) vs temperature-tracking PID.
//
// The LUT needs an offline characterization campaign; the extremum seeker
// finds the same fan-plus-leakage minimum online but pays for the search
// with dithering; the PID needs no model but regulates temperature, not
// power.  This bench quantifies the cost of not having the LUT.
#include <cstdio>
#include <memory>

#include "core/characterization.hpp"
#include "core/controller_runtime.hpp"
#include "core/default_controller.hpp"
#include "core/extremum_seeking_controller.hpp"
#include "core/lut_controller.hpp"
#include "core/pid_controller.hpp"
#include "sim/metrics.hpp"
#include "sim/server_simulator.hpp"
#include "workload/paper_tests.hpp"
#include "workload/profile.hpp"

int main() {
    using namespace ltsc;
    using namespace ltsc::util::literals;

    sim::server_simulator server;
    const core::fan_lut lut_table = core::characterize(server).lut;
    const util::watts_t idle = server.idle_power(3300_rpm);

    const auto report = [&](const char* workload_name,
                            const workload::utilization_profile& profile) {
        core::default_controller dflt;
        core::lut_controller lut(lut_table);
        core::extremum_seeking_controller seeker;
        core::pid_controller pid;

        std::printf("%s\n", workload_name);
        std::printf("%-14s %13s %10s %12s %13s %10s\n", "policy", "energy[kWh]", "net sav",
                    "maxT[degC]", "#fan changes", "avg RPM");
        const sim::run_metrics base = core::run_controlled(server, dflt, profile);
        std::printf("%-14s %13.4f %10s %12.1f %13zu %10.0f\n", base.controller_name.c_str(),
                    base.energy_kwh, "--", base.max_temp_c, base.fan_changes, base.avg_rpm);
        core::fan_controller* cs[] = {&lut, &seeker, &pid};
        for (core::fan_controller* c : cs) {
            const sim::run_metrics m = core::run_controlled(server, *c, profile);
            std::printf("%-14s %13.4f %9.1f%% %12.1f %13zu %10.0f\n",
                        m.controller_name.c_str(), m.energy_kwh,
                        100.0 * sim::net_savings(m, base, idle), m.max_temp_c, m.fan_changes,
                        m.avg_rpm);
        }
        std::printf("\n");
    };

    std::printf("== Ablation: offline LUT vs online controllers ==\n\n");

    workload::utilization_profile steady("steady-75%");
    steady.idle(5.0_min).constant(75.0, 65.0_min).idle(10.0_min);
    report("steady 75 % plateau (best case for online search):", steady);

    report("Test-3 (frequent level changes — search never settles):",
           workload::make_paper_test(workload::paper_test::test3_frequent));

    std::printf("expected: on the plateau the seeker approaches the LUT's result after a\n"
                "transient; on Test-3 its comparisons are invalidated at every level\n"
                "change and the offline LUT wins clearly.  The PID holds ~70 degC, which\n"
                "is near-optimal only at high utilization.\n");
    return 0;
}
