// Ablation: lockstep vs per-zone (differential) LUT fan control under
// skewed socket load.
//
// The paper's server drives its 3 fan pairs from independent supplies but
// evaluates only lockstep control.  With the load pinned unevenly across
// sockets, lockstep must serve the hottest socket with all fans; the
// per-zone controller serves each socket with its own pair.  This bench
// sweeps the imbalance and reports the differential controller's edge.
// The 6 (imbalance, policy) cells are independent fresh-plant runs fanned
// out through sim::parallel_runner::map (the row needs per-socket trace
// maxima, not just the metrics).
#include <cstdio>
#include <memory>
#include <vector>

#include "core/characterization.hpp"
#include "core/controller_runtime.hpp"
#include "core/lut_controller.hpp"
#include "core/zone_lut_controller.hpp"
#include "sim/metrics.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/server_simulator.hpp"
#include "workload/profile.hpp"

namespace {

struct zone_row {
    ltsc::sim::run_metrics metrics;
    double max_t0_c = 0.0;
    double max_t1_c = 0.0;
};

}  // namespace

int main() {
    using namespace ltsc;
    using namespace ltsc::util::literals;

    sim::server_simulator probe;
    const core::fan_lut lut_table = core::characterize(probe).lut;

    // A sustained mixed workload; imbalance is applied on top.
    workload::utilization_profile profile("skewed");
    profile.idle(5.0_min).constant(80.0, 30.0_min).constant(40.0, 30.0_min).idle(10.0_min);

    const double imbalances[] = {0.50, 0.65, 0.80};
    constexpr std::size_t kPolicies = 2;

    sim::parallel_runner runner(sim::parallel_runner::threads_from_env());
    const std::vector<zone_row> rows =
        runner.map<zone_row>(std::size(imbalances) * kPolicies, [&](std::size_t i) {
            const double imbalance = imbalances[i / kPolicies];
            const std::size_t policy = i % kPolicies;
            sim::server_simulator server;
            server.set_load_imbalance(imbalance);
            std::unique_ptr<core::fan_controller> controller;
            if (policy == 0) {
                controller = std::make_unique<core::lut_controller>(lut_table);
            } else {
                controller = std::make_unique<core::zone_lut_controller>(lut_table);
            }
            zone_row row;
            row.metrics = core::run_controlled(server, *controller, profile);
            row.max_t0_c = server.trace().cpu0_temp().max();
            row.max_t1_c = server.trace().cpu1_temp().max();
            return row;
        });

    std::printf("== Ablation: lockstep LUT vs per-zone LUT under socket imbalance "
                "(%zu threads) ==\n\n",
                runner.thread_count());
    std::printf("%12s %-10s %13s %12s %12s %10s\n", "socket0 [%]", "policy", "energy[kWh]",
                "maxT0[degC]", "maxT1[degC]", "avg RPM");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const zone_row& row = rows[i];
        std::printf("%12.0f %-10s %13.4f %12.1f %12.1f %10.0f\n",
                    100.0 * imbalances[i / kPolicies], row.metrics.controller_name.c_str(),
                    row.metrics.energy_kwh, row.max_t0_c, row.max_t1_c, row.metrics.avg_rpm);
    }
    std::printf("\nexpected: at 50/50 both policies coincide; as the skew grows the\n"
                "zone controller keeps the idle socket's fans slow, saving energy at\n"
                "equal or lower hot-socket temperature.\n");
    return 0;
}
