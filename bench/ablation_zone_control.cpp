// Ablation: lockstep vs per-zone (differential) LUT fan control under
// skewed socket load.
//
// The paper's server drives its 3 fan pairs from independent supplies but
// evaluates only lockstep control.  With the load pinned unevenly across
// sockets, lockstep must serve the hottest socket with all fans; the
// per-zone controller serves each socket with its own pair.  This bench
// sweeps the imbalance and reports the differential controller's edge.
#include <cstdio>
#include <memory>

#include "core/characterization.hpp"
#include "core/controller_runtime.hpp"
#include "core/lut_controller.hpp"
#include "core/zone_lut_controller.hpp"
#include "sim/metrics.hpp"
#include "sim/server_simulator.hpp"
#include "workload/profile.hpp"

int main() {
    using namespace ltsc;
    using namespace ltsc::util::literals;

    sim::server_simulator server;
    const core::fan_lut lut_table = core::characterize(server).lut;

    // A sustained mixed workload; imbalance is applied on top.
    workload::utilization_profile profile("skewed");
    profile.idle(5.0_min).constant(80.0, 30.0_min).constant(40.0, 30.0_min).idle(10.0_min);

    std::printf("== Ablation: lockstep LUT vs per-zone LUT under socket imbalance ==\n\n");
    std::printf("%12s %-10s %13s %12s %12s %10s\n", "socket0 [%]", "policy", "energy[kWh]",
                "maxT0[degC]", "maxT1[degC]", "avg RPM");
    for (double imbalance : {0.50, 0.65, 0.80}) {
        for (int policy = 0; policy < 2; ++policy) {
            server.set_load_imbalance(imbalance);
            std::unique_ptr<core::fan_controller> controller;
            if (policy == 0) {
                controller = std::make_unique<core::lut_controller>(lut_table);
            } else {
                controller = std::make_unique<core::zone_lut_controller>(lut_table);
            }
            const sim::run_metrics m = core::run_controlled(server, *controller, profile);
            const double t0 = server.trace().cpu0_temp.max();
            const double t1 = server.trace().cpu1_temp.max();
            std::printf("%12.0f %-10s %13.4f %12.1f %12.1f %10.0f\n", 100.0 * imbalance,
                        m.controller_name.c_str(), m.energy_kwh, t0, t1, m.avg_rpm);
        }
    }
    server.set_load_imbalance(0.5);
    std::printf("\nexpected: at 50/50 both policies coincide; as the skew grows the\n"
                "zone controller keeps the idle socket's fans slow, saving energy at\n"
                "equal or lower hot-socket temperature.\n");
    return 0;
}
