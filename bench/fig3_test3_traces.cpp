// Reproduces Fig. 3: runtime temperature (and fan speed) traces of the
// three controllers on Test-3.
//
// Paper shape to verify: the default controller pins 3300 RPM and stays
// cold; the bang-bang controller lets temperature climb and oscillates
// with spikes toward ~77 degC; the LUT controller tracks utilization,
// changing between just two speeds, with lower and steadier temperature.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <set>

#include "core/bang_bang_controller.hpp"
#include "core/characterization.hpp"
#include "core/controller_runtime.hpp"
#include "core/default_controller.hpp"
#include "core/lut_controller.hpp"
#include "core/reliability.hpp"
#include "sim/metrics.hpp"
#include "sim/server_simulator.hpp"
#include "util/csv.hpp"
#include "workload/paper_tests.hpp"

int main(int argc, char** argv) {
    using namespace ltsc;
    const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;

    sim::server_simulator server;
    const core::fan_lut lut_table = core::characterize(server).lut;
    const auto profile = workload::make_paper_test(workload::paper_test::test3_frequent);

    core::default_controller dflt;
    core::bang_bang_controller bang;
    core::lut_controller lut(lut_table);

    struct run {
        const char* name;
        util::time_series temp;
        util::time_series rpm;
    };
    std::vector<run> runs;

    (void)core::run_controlled(server, dflt, profile);
    runs.push_back(run{"Default", server.trace().max_sensor_temp().to_series(),
                       server.trace().avg_fan_rpm().to_series()});
    (void)core::run_controlled(server, bang, profile);
    runs.push_back(run{"Bang", server.trace().max_sensor_temp().to_series(),
                       server.trace().avg_fan_rpm().to_series()});
    (void)core::run_controlled(server, lut, profile);
    runs.push_back(run{"LUT", server.trace().max_sensor_temp().to_series(),
                       server.trace().avg_fan_rpm().to_series()});

    std::printf("== Fig. 3: Test-3 runtime traces (max CPU sensor temp / avg RPM) ==\n\n");
    std::printf("%7s", "t[min]");
    for (const auto& r : runs) {
        std::printf("   %8s T/RPM", r.name);
    }
    std::printf("\n");
    for (double t_min = 0.0; t_min <= 80.0; t_min += 2.0) {
        std::printf("%7.0f", t_min);
        for (const auto& r : runs) {
            std::printf("   %7.1f/%-6.0f", r.temp.value_at(t_min * 60.0),
                        r.rpm.value_at(t_min * 60.0));
        }
        std::printf("\n");
    }

    std::printf("\nper-controller character of the traces:\n");
    std::printf("%-9s %12s %12s %12s %14s %15s\n", "control", "minT[degC]", "maxT[degC]",
                "T span", "distinct RPMs", "thermal damage");
    for (const auto& r : runs) {
        std::set<double> speeds;
        for (const auto& s : r.rpm.samples()) {
            speeds.insert(s.v);
        }
        const auto cycles = core::count_thermal_cycles(r.temp);
        std::printf("%-9s %12.1f %12.1f %12.1f %14zu %15.2f\n", r.name, r.temp.min(),
                    r.temp.max(), r.temp.max() - r.temp.min(), speeds.size(),
                    cycles.damage_index);
    }
    std::printf("\npaper shape: Default flat & cold at 3300 RPM; Bang oscillates with\n"
                "spikes to ~77 degC; LUT switches between two speeds with steadier,\n"
                "lower temperature (hence the lowest leakage).\n");

    if (csv) {
        std::vector<util::named_series> series;
        for (const auto& r : runs) {
            series.push_back(util::named_series{std::string(r.name) + "_temp", "degC", r.temp});
            series.push_back(util::named_series{std::string(r.name) + "_rpm", "RPM", r.rpm});
        }
        util::write_series_csv(std::cout, series);
    }
    return 0;
}
