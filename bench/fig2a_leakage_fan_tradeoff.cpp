// Reproduces Fig. 2(a): leakage power, fan power and their sum versus
// average CPU temperature at 100 % utilization.
//
// Paper shape to verify: the sum is convex with a minimum near 70 degC,
// corresponding to 2400 RPM; setting the fan optimally instead of at
// maximum saves up to ~30 W.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/characterization.hpp"
#include "sim/experiment.hpp"
#include "sim/server_simulator.hpp"

int main() {
    using namespace ltsc;

    sim::server_simulator server;
    const core::characterization_result ch = core::characterize(server);

    std::printf("== Fig. 2(a): leakage + fan power vs avg CPU temperature (100%% util) ==\n\n");
    std::printf("%8s %10s %12s %14s %14s\n", "rpm", "T[degC]", "P_fan[W]", "P_leak[W]",
                "fan+leak[W]");

    struct row {
        double rpm, t, fan, leak, sum;
    };
    std::vector<row> rows;
    for (const auto& p : ch.sweep) {
        if (p.utilization_pct != 100.0) {
            continue;
        }
        // Leakage as the fitted model reports it (offset C included), the
        // quantity Fig. 2(a) plots.
        const double leak = (ch.fit.c0_w - 331.6) + ch.fit.leakage_at(p.avg_cpu_temp_c);
        rows.push_back(row{p.fan_rpm, p.avg_cpu_temp_c, p.fan_power_w, leak,
                           p.fan_power_w + leak});
    }
    std::sort(rows.begin(), rows.end(), [](const row& a, const row& b) { return a.t < b.t; });
    for (const auto& r : rows) {
        std::printf("%8.0f %10.1f %12.2f %14.2f %14.2f\n", r.rpm, r.t, r.fan, r.leak, r.sum);
    }

    const auto best = std::min_element(rows.begin(), rows.end(),
                                       [](const row& a, const row& b) { return a.sum < b.sum; });
    const auto at_max_fan =
        std::max_element(rows.begin(), rows.end(),
                         [](const row& a, const row& b) { return a.rpm < b.rpm; });
    std::printf("\nminimum of fan+leak: %.1f W at %.0f RPM (T = %.1f degC)\n", best->sum,
                best->rpm, best->t);
    std::printf("savings vs max fan speed: %.1f W (paper: up to 30 W)\n",
                at_max_fan->sum - best->sum);
    std::printf("paper shape: convex sum, minimum near 70 degC <-> 2400 RPM\n");
    return 0;
}
