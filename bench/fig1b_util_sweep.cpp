// Reproduces Fig. 1(b): average CPU0 temperature at a fixed 1800 RPM for
// utilization levels 25/50/75/100 %.
//
// Paper shape to verify: higher duty -> hotter steady state; visible
// thermal oscillation at partial duty (LoadGen's PWM), with the fast
// transient raising the die 5-8 degC in under 30 s on load onset.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/server_simulator.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
    using namespace ltsc;
    using namespace ltsc::util::literals;
    const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;

    std::printf("== Fig. 1(b): CPU temperature at 1800 RPM per utilization level ==\n\n");

    const std::vector<double> duties = {25.0, 50.0, 75.0, 100.0};
    std::vector<util::time_series> traces;
    for (double duty : duties) {
        sim::server_simulator s;
        sim::run_protocol_experiment(s, 1800_rpm, duty);
        traces.push_back(s.trace().avg_cpu_temp().to_series());
    }

    std::printf("%8s", "t[min]");
    for (double duty : duties) {
        std::printf("  %6.0f%%", duty);
    }
    std::printf("\n");
    for (double t_min = 0.0; t_min <= 45.0; t_min += 1.0) {
        std::printf("%8.0f", t_min);
        for (const auto& tr : traces) {
            std::printf("  %7.1f", tr.value_at(t_min * 60.0));
        }
        std::printf("\n");
    }

    // Oscillation amplitude during the loaded window (PWM thermal ripple)
    // and the fast-transient magnitude at load onset.
    std::printf("\n%-10s %16s %22s %24s\n", "duty [%]", "T @30min[degC]",
                "PWM ripple p-p [degC]", "fast rise in 30 s [degC]");
    for (std::size_t i = 0; i < duties.size(); ++i) {
        const auto& tr = traces[i];
        const double ripple =
            tr.max(20.0 * 60.0, 34.0 * 60.0) - tr.min(20.0 * 60.0, 34.0 * 60.0);
        const double fast = tr.value_at(5.0 * 60.0 + 30.0) - tr.value_at(5.0 * 60.0);
        std::printf("%-10.0f %16.1f %22.1f %24.1f\n", duties[i], tr.value_at(30.0 * 60.0),
                    ripple, fast);
    }
    std::printf("\npaper shape: two transient trends — a fast 5-8 degC rise in <30 s on\n"
                "load changes, and the slow (up to 15 min) heatsink time constant;\n"
                "partial-duty traces oscillate with the PWM.\n");

    if (csv) {
        std::vector<util::named_series> series;
        for (std::size_t i = 0; i < duties.size(); ++i) {
            series.push_back(util::named_series{
                "cpu_temp_" + std::to_string(static_cast<int>(duties[i])) + "pct", "degC",
                traces[i]});
        }
        util::write_series_csv(std::cout, series);
    }
    return 0;
}
