// util::thread_pool: coverage of the index distribution contract that
// sim::parallel_runner's determinism rests on.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace {

using ltsc::util::thread_pool;

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        thread_pool pool(threads);
        EXPECT_EQ(pool.thread_count(), threads);
        std::vector<std::atomic<int>> hits(257);
        pool.run_indexed(hits.size(), [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < hits.size(); ++i) {
            EXPECT_EQ(hits[i].load(), 1) << "index " << i << ", threads " << threads;
        }
    }
}

TEST(ThreadPool, ReusableAcrossBatches) {
    thread_pool pool(3);
    std::atomic<int> total{0};
    for (int batch = 0; batch < 5; ++batch) {
        pool.run_indexed(10, [&](std::size_t) { ++total; });
    }
    EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPool, EmptyBatchIsANoOp) {
    thread_pool pool(2);
    pool.run_indexed(0, [](std::size_t) { FAIL() << "job ran for empty batch"; });
}

TEST(ThreadPool, MoreThreadsThanJobs) {
    thread_pool pool(8);
    std::vector<std::atomic<int>> hits(3);
    pool.run_indexed(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].load(), 1);
    }
}

TEST(ThreadPool, FirstExceptionPropagates) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        thread_pool pool(threads);
        EXPECT_THROW(
            pool.run_indexed(64,
                             [&](std::size_t i) {
                                 if (i % 7 == 3) {
                                     throw std::runtime_error("boom");
                                 }
                             }),
            std::runtime_error);
        // The pool stays usable after a failed batch.
        std::atomic<int> ok{0};
        pool.run_indexed(8, [&](std::size_t) { ++ok; });
        EXPECT_EQ(ok.load(), 8);
    }
}

TEST(ThreadPool, NullJobThrows) {
    thread_pool pool(2);
    EXPECT_THROW(pool.run_indexed(1, std::function<void(std::size_t)>{}),
                 ltsc::util::precondition_error);
}

}  // namespace
