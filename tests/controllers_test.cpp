// Unit tests for the fan controllers: default, bang-bang, LUT, PID and
// extremum-seeking.  These test the *decision logic* in isolation; the
// closed-loop behaviour is covered by integration_test.cpp.
#include <gtest/gtest.h>

#include <sstream>

#include "core/bang_bang_controller.hpp"
#include "core/default_controller.hpp"
#include "core/extremum_seeking_controller.hpp"
#include "core/fan_lut.hpp"
#include "core/lut_controller.hpp"
#include "core/pid_controller.hpp"
#include "util/error.hpp"

namespace {

using namespace ltsc;
using namespace ltsc::util::literals;
using core::controller_inputs;

controller_inputs at(double t_s, double util, double temp, double rpm) {
    controller_inputs in;
    in.now = util::seconds_t{t_s};
    in.utilization_pct = util;
    in.max_cpu_temp = util::celsius_t{temp};
    in.current_rpm = util::rpm_t{rpm};
    return in;
}

// --- default ----------------------------------------------------------------

TEST(DefaultController, CommandsFixedSpeedOnce) {
    core::default_controller c;
    auto cmd = c.decide(at(0.0, 0.0, 40.0, 3600.0));
    ASSERT_TRUE(cmd.has_value());
    EXPECT_DOUBLE_EQ(cmd->value(), 3300.0);
    // Already at speed: no further commands regardless of conditions.
    EXPECT_FALSE(c.decide(at(10.0, 100.0, 90.0, 3300.0)).has_value());
}

TEST(DefaultController, CustomSpeed) {
    core::default_controller c(3000_rpm);
    EXPECT_DOUBLE_EQ(c.decide(at(0.0, 0.0, 40.0, 3300.0))->value(), 3000.0);
    EXPECT_EQ(c.name(), "Default");
}

// --- bang-bang -----------------------------------------------------------------

TEST(BangBang, FiveActionTable) {
    core::bang_bang_controller c;
    // T < 60: minimum speed.
    EXPECT_DOUBLE_EQ(c.decide(at(0, 0, 55.0, 3300.0))->value(), 1800.0);
    // 60 <= T < 65: step down.
    EXPECT_DOUBLE_EQ(c.decide(at(0, 0, 62.0, 3000.0))->value(), 2400.0);
    // 65 <= T <= 75: hold.
    EXPECT_FALSE(c.decide(at(0, 0, 70.0, 2400.0)).has_value());
    // 75 < T <= 80: step up.
    EXPECT_DOUBLE_EQ(c.decide(at(0, 0, 77.0, 2400.0))->value(), 3000.0);
    // T > 80: maximum.
    EXPECT_DOUBLE_EQ(c.decide(at(0, 0, 82.0, 2400.0))->value(), 4200.0);
}

TEST(BangBang, ExactBandEdgesHold) {
    core::bang_bang_controller c;
    EXPECT_FALSE(c.decide(at(0, 0, 65.0, 2400.0)).has_value());
    EXPECT_FALSE(c.decide(at(0, 0, 75.0, 2400.0)).has_value());
}

TEST(BangBang, ClampsAtRails) {
    core::bang_bang_controller c;
    // Already at min and told to go lower: no command.
    EXPECT_FALSE(c.decide(at(0, 0, 62.0, 1800.0)).has_value());
    EXPECT_FALSE(c.decide(at(0, 0, 55.0, 1800.0)).has_value());
    // Already at max and told to go higher: no command.
    EXPECT_FALSE(c.decide(at(0, 0, 77.0, 4200.0)).has_value());
    EXPECT_FALSE(c.decide(at(0, 0, 85.0, 4200.0)).has_value());
}

TEST(BangBang, IgnoresUtilization) {
    core::bang_bang_controller c;
    const auto lo = c.decide(at(0, 0.0, 70.0, 2400.0));
    const auto hi = c.decide(at(0, 100.0, 70.0, 2400.0));
    EXPECT_EQ(lo.has_value(), hi.has_value());
}

TEST(BangBang, ActsSlowerThanCsth) {
    core::bang_bang_controller c;
    EXPECT_GE(c.polling_period().value(), 10.0);
}

TEST(BangBang, MisorderedThresholdsThrow) {
    core::bang_bang_thresholds t;
    t.low_c = 80.0;  // above high_c
    EXPECT_THROW(core::bang_bang_controller{t}, util::precondition_error);
}

// --- LUT table -------------------------------------------------------------------

core::fan_lut paper_like_lut() {
    std::vector<core::lut_entry> entries;
    for (double u : {0.0, 10.0, 25.0, 40.0, 50.0, 60.0}) {
        entries.push_back({u, 1800_rpm, 60.0, 10.0});
    }
    for (double u : {75.0, 90.0, 100.0}) {
        entries.push_back({u, 2400_rpm, 70.0, 18.0});
    }
    return core::fan_lut(entries);
}

TEST(FanLut, StaircaseLookupRoundsUp) {
    const auto lut = paper_like_lut();
    EXPECT_DOUBLE_EQ(lut.lookup(0.0).value(), 1800.0);
    EXPECT_DOUBLE_EQ(lut.lookup(55.0).value(), 1800.0);
    EXPECT_DOUBLE_EQ(lut.lookup(60.0).value(), 1800.0);
    // Between 60 and 75 the table assumes the hotter level.
    EXPECT_DOUBLE_EQ(lut.lookup(61.0).value(), 2400.0);
    EXPECT_DOUBLE_EQ(lut.lookup(100.0).value(), 2400.0);
    // Above the last level the last entry applies.
    EXPECT_DOUBLE_EQ(lut.lookup(150.0).value(), 2400.0);
}

TEST(FanLut, EntriesSortedOnConstruction) {
    std::vector<core::lut_entry> entries{{50.0, 2400_rpm, 0, 0}, {10.0, 1800_rpm, 0, 0}};
    const core::fan_lut lut(entries);
    EXPECT_DOUBLE_EQ(lut.entries().front().utilization_pct, 10.0);
}

TEST(FanLut, DuplicateLevelsRejected) {
    std::vector<core::lut_entry> entries{{50.0, 2400_rpm, 0, 0}, {50.0, 1800_rpm, 0, 0}};
    EXPECT_THROW(core::fan_lut{entries}, util::precondition_error);
}

TEST(FanLut, EmptyTableRejected) {
    EXPECT_THROW(core::fan_lut{std::vector<core::lut_entry>{}}, util::precondition_error);
}

TEST(FanLut, CsvRoundTrip) {
    const auto lut = paper_like_lut();
    std::ostringstream os;
    lut.write_csv(os);
    const auto parsed = core::fan_lut::from_csv(os.str());
    ASSERT_EQ(parsed.size(), lut.size());
    EXPECT_DOUBLE_EQ(parsed.lookup(80.0).value(), lut.lookup(80.0).value());
    EXPECT_DOUBLE_EQ(parsed.entries()[0].expected_cpu_temp_c,
                     lut.entries()[0].expected_cpu_temp_c);
}

// --- LUT controller ------------------------------------------------------------

TEST(LutController, PollsEverySecond) {
    core::lut_controller c(paper_like_lut());
    EXPECT_DOUBLE_EQ(c.polling_period().value(), 1.0);
}

TEST(LutController, CommandsLutSpeedOnUtilizationChange) {
    core::lut_controller c(paper_like_lut());
    const auto cmd = c.decide(at(0.0, 100.0, 50.0, 3300.0));
    ASSERT_TRUE(cmd.has_value());
    EXPECT_DOUBLE_EQ(cmd->value(), 2400.0);
}

TEST(LutController, RateLimitHoldsForOneMinute) {
    core::lut_controller c(paper_like_lut());
    ASSERT_TRUE(c.decide(at(0.0, 100.0, 50.0, 3300.0)).has_value());  // -> 2400
    // 10 s later the load drops; the LUT wants 1800 but the lockout holds.
    EXPECT_FALSE(c.decide(at(10.0, 10.0, 50.0, 2400.0)).has_value());
    EXPECT_FALSE(c.decide(at(59.0, 10.0, 50.0, 2400.0)).has_value());
    // After the minute the change goes through.
    const auto cmd = c.decide(at(61.0, 10.0, 50.0, 2400.0));
    ASSERT_TRUE(cmd.has_value());
    EXPECT_DOUBLE_EQ(cmd->value(), 1800.0);
}

TEST(LutController, NoCommandWhenAlreadyOptimal) {
    core::lut_controller c(paper_like_lut());
    EXPECT_FALSE(c.decide(at(0.0, 100.0, 50.0, 2400.0)).has_value());
}

TEST(LutController, EmergencyOverrideBypassesRateLimit) {
    core::lut_controller c(paper_like_lut());
    ASSERT_TRUE(c.decide(at(0.0, 10.0, 50.0, 3300.0)).has_value());  // -> 1800
    // 5 s later a runaway temperature: the override fires despite lockout.
    const auto cmd = c.decide(at(5.0, 10.0, 88.0, 1800.0));
    ASSERT_TRUE(cmd.has_value());
    EXPECT_DOUBLE_EQ(cmd->value(), 4200.0);
}

TEST(LutController, ResetClearsRateLimiter) {
    core::lut_controller c(paper_like_lut());
    ASSERT_TRUE(c.decide(at(0.0, 100.0, 50.0, 3300.0)).has_value());
    c.reset();
    // Fresh run at t=0: first change must not be blocked by stale state.
    EXPECT_TRUE(c.decide(at(0.0, 10.0, 50.0, 2400.0)).has_value());
}

TEST(LutController, ProactiveIgnoresTemperatureBelowEmergency) {
    core::lut_controller c(paper_like_lut());
    // Hot but below emergency: decision driven purely by utilization.
    const auto cmd = c.decide(at(0.0, 10.0, 74.0, 2400.0));
    ASSERT_TRUE(cmd.has_value());
    EXPECT_DOUBLE_EQ(cmd->value(), 1800.0);
}

// --- PID --------------------------------------------------------------------------

TEST(Pid, PushesUpWhenHot) {
    core::pid_controller c;
    const auto cmd = c.decide(at(0.0, 0.0, 85.0, 1800.0));
    ASSERT_TRUE(cmd.has_value());
    EXPECT_GT(cmd->value(), 1800.0);
}

TEST(Pid, StaysLowWhenCold) {
    core::pid_controller c;
    const auto cmd = c.decide(at(0.0, 0.0, 40.0, 3300.0));
    ASSERT_TRUE(cmd.has_value());
    EXPECT_DOUBLE_EQ(cmd->value(), 1800.0);
}

TEST(Pid, DeadbandSuppressesSmallMoves) {
    core::pid_controller c;
    // First decision establishes state near the current speed.
    (void)c.decide(at(0.0, 0.0, 70.0, 1800.0));
    // Tiny error: commanded move smaller than the deadband.
    EXPECT_FALSE(c.decide(at(10.0, 0.0, 70.2, 1800.0)).has_value());
}

TEST(Pid, OutputClampedToRange) {
    core::pid_controller c;
    for (int i = 0; i < 50; ++i) {
        const auto cmd = c.decide(at(i * 10.0, 0.0, 95.0, 4200.0));
        if (cmd.has_value()) {
            EXPECT_LE(cmd->value(), 4200.0);
            EXPECT_GE(cmd->value(), 1800.0);
        }
    }
}

TEST(Pid, AntiWindupFreezesIntegralAtRail) {
    core::pid_controller c;
    // Long saturation at max with persistent positive error.
    for (int i = 0; i < 100; ++i) {
        (void)c.decide(at(i * 10.0, 0.0, 90.0, 4200.0));
    }
    // Error flips: without anti-windup the integral would pin the output
    // high for a long time; with it, the command falls promptly.
    std::optional<util::rpm_t> cmd;
    for (int i = 100; i < 110 && !cmd.has_value(); ++i) {
        cmd = c.decide(at(i * 10.0, 0.0, 50.0, 4200.0));
    }
    ASSERT_TRUE(cmd.has_value());
    EXPECT_LT(cmd->value(), 4200.0);
}

// --- extremum seeking -----------------------------------------------------------

TEST(ExtremumSeek, ProbesDownFirst) {
    core::extremum_seeking_controller c;
    const auto cmd = c.decide(at(0.0, 50.0, 60.0, 3300.0));
    ASSERT_TRUE(cmd.has_value());
    EXPECT_DOUBLE_EQ(cmd->value(), 2700.0);
}

TEST(ExtremumSeek, KeepsDirectionWhileImproving) {
    core::extremum_seeking_controller c;
    controller_inputs in = at(0.0, 50.0, 60.0, 3300.0);
    in.system_power = 520_W;
    auto cmd = c.decide(in);  // baseline + probe down
    ASSERT_TRUE(cmd.has_value());
    in = at(120.0, 50.0, 60.0, cmd->value());
    in.system_power = 510_W;  // improved
    cmd = c.decide(in);
    ASSERT_TRUE(cmd.has_value());
    EXPECT_LT(cmd->value(), 2700.0);  // keeps descending
}

TEST(ExtremumSeek, ReversesWhenWorse) {
    core::extremum_seeking_controller c;
    controller_inputs in = at(0.0, 50.0, 60.0, 2400.0);
    in.system_power = 500_W;
    auto cmd = c.decide(in);  // probe down to 1800
    ASSERT_TRUE(cmd.has_value());
    EXPECT_DOUBLE_EQ(cmd->value(), 1800.0);
    in = at(120.0, 50.0, 60.0, 1800.0);
    in.system_power = 515_W;  // worse: leakage won
    cmd = c.decide(in);
    ASSERT_TRUE(cmd.has_value());
    EXPECT_DOUBLE_EQ(cmd->value(), 2400.0);  // turns around
}

TEST(ExtremumSeek, TemperatureGuardOverrides) {
    core::extremum_seeking_controller c;
    controller_inputs in = at(0.0, 50.0, 78.0, 2400.0);
    in.system_power = 500_W;
    const auto cmd = c.decide(in);
    ASSERT_TRUE(cmd.has_value());
    EXPECT_DOUBLE_EQ(cmd->value(), 3000.0);
}

TEST(ExtremumSeek, UtilizationJumpRestartsSearch) {
    core::extremum_seeking_controller c;
    controller_inputs in = at(0.0, 20.0, 60.0, 3300.0);
    in.system_power = 450_W;
    (void)c.decide(in);
    // Utilization leaps by 60 points: previous comparison is void; the
    // controller re-baselines and probes downward again.
    in = at(120.0, 80.0, 65.0, 2700.0);
    in.system_power = 600_W;
    const auto cmd = c.decide(in);
    ASSERT_TRUE(cmd.has_value());
    EXPECT_DOUBLE_EQ(cmd->value(), 2100.0);
}

}  // namespace
