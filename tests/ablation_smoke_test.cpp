// Smoke coverage for the ablation harnesses' parallel_runner ports: each
// harness's sweep shape (scenario lists through parallel_runner::run,
// trace-consuming cells through parallel_runner::map) is exercised at
// reduced scale and must produce nonempty, finite metric rows.  The full
// sweeps live in bench/ablation_*.cpp; this pins the pattern they rely
// on so a runner or controller regression fails fast in ctest instead of
// in a bench binary nobody runs.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/bang_bang_controller.hpp"
#include "core/characterization.hpp"
#include "core/controller_runtime.hpp"
#include "core/lut_controller.hpp"
#include "core/reliability.hpp"
#include "core/zone_lut_controller.hpp"
#include "sim/metrics.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/server_simulator.hpp"
#include "workload/profile.hpp"

namespace {

using namespace ltsc;
using namespace ltsc::util::literals;

workload::utilization_profile short_profile() {
    workload::utilization_profile p("smoke");
    p.idle(2.0_min).constant(80.0, 6.0_min).constant(40.0, 4.0_min).idle(2.0_min);
    return p;
}

void expect_row_sane(const sim::run_metrics& m) {
    EXPECT_TRUE(std::isfinite(m.energy_kwh));
    EXPECT_GT(m.energy_kwh, 0.0);
    EXPECT_TRUE(std::isfinite(m.peak_power_w));
    EXPECT_GT(m.peak_power_w, 0.0);
    EXPECT_TRUE(std::isfinite(m.max_temp_c));
    EXPECT_GT(m.max_temp_c, 0.0);
    EXPECT_LT(m.max_temp_c, 120.0);
    EXPECT_TRUE(std::isfinite(m.avg_rpm));
    EXPECT_GE(m.avg_rpm, 1800.0);
    EXPECT_LE(m.avg_rpm, 4200.0);
    EXPECT_GT(m.duration_s, 0.0);
}

const core::fan_lut& shared_lut() {
    static const core::fan_lut lut = [] {
        sim::server_simulator probe;
        return core::characterize(probe).lut;
    }();
    return lut;
}

TEST(AblationSmoke, LutGranularityAndPollingSweep) {
    const auto profile = short_profile();
    std::vector<sim::scenario> scenarios;
    for (double period_s : {1.0, 30.0}) {
        sim::scenario sc;
        sc.profile = profile;
        sc.make_controller = [period_s] {
            core::lut_controller_config cfg;
            cfg.polling_period = util::seconds_t{period_s};
            return std::make_unique<core::lut_controller>(shared_lut(), cfg);
        };
        scenarios.push_back(sc);
    }
    sim::parallel_runner runner(2);
    const auto rows = runner.run(scenarios);
    ASSERT_EQ(rows.size(), scenarios.size());
    for (const auto& m : rows) {
        expect_row_sane(m);
    }
}

TEST(AblationSmoke, RateLimitWindowSweep) {
    const auto profile = short_profile();
    std::vector<sim::scenario> scenarios;
    for (double window_s : {30.0, 240.0}) {
        for (double hold_s : {0.0, 60.0}) {
            sim::scenario sc;
            sc.profile = profile;
            sc.make_controller = [hold_s] {
                core::lut_controller_config cfg;
                cfg.min_hold = util::seconds_t{hold_s};
                return std::make_unique<core::lut_controller>(shared_lut(), cfg);
            };
            sc.runtime.util_window = util::seconds_t{window_s};
            scenarios.push_back(sc);
        }
    }
    sim::parallel_runner runner(2);
    const auto rows = runner.run(scenarios);
    ASSERT_EQ(rows.size(), scenarios.size());
    for (const auto& m : rows) {
        expect_row_sane(m);
    }
}

TEST(AblationSmoke, BangBandSweepWithTraceStats) {
    const auto profile = short_profile();
    struct row {
        sim::run_metrics metrics;
        double load_min_c = 0.0;
        double damage_index = 0.0;
    };
    const double lows[] = {70.0, 65.0};
    sim::parallel_runner runner(2);
    const auto rows = runner.map<row>(2, [&](std::size_t i) {
        core::bang_bang_thresholds th;
        th.floor_c = lows[i] - 5.0;
        th.low_c = lows[i];
        th.high_c = 75.0;
        th.ceiling_c = 80.0;
        core::bang_bang_controller bang(th);
        sim::server_simulator server;
        row r;
        r.metrics = core::run_controlled(server, bang, profile);
        const util::column_view temp = server.trace().max_sensor_temp();
        r.load_min_c = temp.min(2.0 * 60.0, 12.0 * 60.0);
        r.damage_index = core::count_thermal_cycles(temp).damage_index;
        return r;
    });
    ASSERT_EQ(rows.size(), 2U);
    for (const auto& r : rows) {
        expect_row_sane(r.metrics);
        EXPECT_TRUE(std::isfinite(r.load_min_c));
        EXPECT_TRUE(std::isfinite(r.damage_index));
        EXPECT_GE(r.damage_index, 0.0);
    }
}

TEST(AblationSmoke, ZoneControlSweepWithImbalance) {
    const auto profile = short_profile();
    struct row {
        sim::run_metrics metrics;
        double max_t0_c = 0.0;
        double max_t1_c = 0.0;
    };
    sim::parallel_runner runner(2);
    const auto rows = runner.map<row>(4, [&](std::size_t i) {
        const double imbalance = i / 2 == 0 ? 0.5 : 0.8;
        sim::server_simulator server;
        server.set_load_imbalance(imbalance);
        std::unique_ptr<core::fan_controller> controller;
        if (i % 2 == 0) {
            controller = std::make_unique<core::lut_controller>(shared_lut());
        } else {
            controller = std::make_unique<core::zone_lut_controller>(shared_lut());
        }
        row r;
        r.metrics = core::run_controlled(server, *controller, profile);
        r.max_t0_c = server.trace().cpu0_temp().max();
        r.max_t1_c = server.trace().cpu1_temp().max();
        return r;
    });
    ASSERT_EQ(rows.size(), 4U);
    for (const auto& r : rows) {
        expect_row_sane(r.metrics);
        EXPECT_TRUE(std::isfinite(r.max_t0_c));
        EXPECT_TRUE(std::isfinite(r.max_t1_c));
        EXPECT_GT(r.max_t0_c, 0.0);
        EXPECT_GT(r.max_t1_c, 0.0);
    }
}

}  // namespace
