// Equivalence suite for the optimized thermal hot path.
//
// The PR that introduced the rc_network assembly cache (flattened edge
// arrays, cached conductance matrix / stable substep / LU factorization)
// and the zero-allocation solver stepping promised *bitwise identical*
// numerics on the paper server network.  This suite holds it to that: a
// `reference` model carries verbatim copies of the seed algorithms
// (interleaved edge walk, per-step matrix assembly, per-step LU) and a
// `twin` applies every mutation to both the optimized rc_network and the
// reference.  Any divergence — including a stale cache after a mid-run
// conductance or ambient change — shows up as an exact-comparison
// failure.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "thermal/rc_network.hpp"
#include "thermal/steady_state.hpp"
#include "thermal/transient_solver.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"

namespace {

using namespace ltsc;
using thermal::integration_scheme;
using thermal::rc_network;
using thermal::transient_solver;

namespace reference {

// Seed data layout: one interleaved edge list, walked in insertion order.
struct edge {
    std::size_t a = 0;
    std::size_t b = 0;
    bool to_ambient = false;
    double conductance = 0.0;
};

// Verbatim port of the seed rc_network + transient_solver numerics.
struct model {
    double ambient = 0.0;
    std::vector<double> capacities;
    std::vector<double> temps;
    std::vector<double> powers;
    std::vector<edge> edges;

    [[nodiscard]] std::vector<double> derivatives(const std::vector<double>& t) const {
        std::vector<double> flow(capacities.size(), 0.0);
        for (const edge& e : edges) {
            if (e.to_ambient) {
                flow[e.a] += e.conductance * (ambient - t[e.a]);
            } else {
                const double q = e.conductance * (t[e.b] - t[e.a]);
                flow[e.a] += q;
                flow[e.b] -= q;
            }
        }
        for (std::size_t i = 0; i < flow.size(); ++i) {
            flow[i] = (flow[i] + powers[i]) / capacities[i];
        }
        return flow;
    }

    [[nodiscard]] util::matrix conductance_matrix() const {
        util::matrix l(capacities.size(), capacities.size());
        for (const edge& e : edges) {
            if (e.to_ambient) {
                l(e.a, e.a) += e.conductance;
            } else {
                l(e.a, e.a) += e.conductance;
                l(e.b, e.b) += e.conductance;
                l(e.a, e.b) -= e.conductance;
                l(e.b, e.a) -= e.conductance;
            }
        }
        return l;
    }

    [[nodiscard]] std::vector<double> source_vector() const {
        std::vector<double> rhs = powers;
        for (const edge& e : edges) {
            if (e.to_ambient) {
                rhs[e.a] += e.conductance * ambient;
            }
        }
        return rhs;
    }

    [[nodiscard]] double stable_explicit_step() const {
        const util::matrix l = conductance_matrix();
        double min_ratio = 1e30;
        for (std::size_t i = 0; i < capacities.size(); ++i) {
            const double g = l(i, i);
            if (g > 0.0) {
                min_ratio = std::min(min_ratio, capacities[i] / g);
            }
        }
        return 0.9 * 2.0 * min_ratio;
    }

    void step_explicit(double dt) {
        const double stable = stable_explicit_step();
        const int substeps = std::max(1, static_cast<int>(std::ceil(dt / stable)));
        const double h = dt / substeps;
        std::vector<double> t = temps;
        for (int s = 0; s < substeps; ++s) {
            const std::vector<double> dTdt = derivatives(t);
            for (std::size_t i = 0; i < t.size(); ++i) {
                t[i] += h * dTdt[i];
            }
        }
        temps = t;
    }

    void step_rk4(double dt) {
        const double stable = stable_explicit_step();
        const int substeps = std::max(1, static_cast<int>(std::ceil(dt / stable)));
        const double h = dt / substeps;
        std::vector<double> t0 = temps;
        const std::size_t n = t0.size();
        std::vector<double> tmp(n);
        for (int s = 0; s < substeps; ++s) {
            const std::vector<double> k1 = derivatives(t0);
            for (std::size_t i = 0; i < n; ++i) {
                tmp[i] = t0[i] + 0.5 * h * k1[i];
            }
            const std::vector<double> k2 = derivatives(tmp);
            for (std::size_t i = 0; i < n; ++i) {
                tmp[i] = t0[i] + 0.5 * h * k2[i];
            }
            const std::vector<double> k3 = derivatives(tmp);
            for (std::size_t i = 0; i < n; ++i) {
                tmp[i] = t0[i] + h * k3[i];
            }
            const std::vector<double> k4 = derivatives(tmp);
            for (std::size_t i = 0; i < n; ++i) {
                t0[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
            }
        }
        temps = t0;
    }

    void step_implicit(double dt) {
        // The seed cached the LU keyed on (revision, dt); factoring the
        // identical matrix anew every step is bitwise equivalent.
        const std::size_t n = capacities.size();
        util::matrix a = conductance_matrix();
        for (std::size_t i = 0; i < n; ++i) {
            a(i, i) += capacities[i] / dt;
        }
        const util::lu_decomposition lu(a);
        std::vector<double> rhs = source_vector();
        for (std::size_t i = 0; i < n; ++i) {
            rhs[i] += capacities[i] / dt * temps[i];
        }
        temps = lu.solve(rhs);
    }

    [[nodiscard]] std::vector<double> steady_state() const {
        return util::solve(conductance_matrix(), source_vector());
    }
};

}  // namespace reference

/// Applies every mutation to both the optimized network and the seed
/// reference so trajectories can be compared exactly.
struct twin {
    rc_network net;
    reference::model ref;
    std::vector<thermal::node_id> nodes;
    std::vector<thermal::edge_id> edges;

    explicit twin(double ambient_c) : net(util::celsius_t{ambient_c}) {
        ref.ambient = ambient_c;
    }

    std::size_t add_node(const std::string& name, double c) {
        nodes.push_back(net.add_node(name, c));
        ref.capacities.push_back(c);
        ref.temps.push_back(ref.ambient);
        ref.powers.push_back(0.0);
        return nodes.size() - 1;
    }

    std::size_t add_edge(std::size_t a, std::size_t b, double g) {
        edges.push_back(net.add_edge(nodes[a], nodes[b], g));
        ref.edges.push_back(reference::edge{a, b, false, g});
        return edges.size() - 1;
    }

    std::size_t add_ambient_edge(std::size_t n, double g) {
        edges.push_back(net.add_ambient_edge(nodes[n], g));
        ref.edges.push_back(reference::edge{n, 0, true, g});
        return edges.size() - 1;
    }

    void set_conductance(std::size_t e, double g) {
        net.set_conductance(edges[e], g);
        ref.edges[e].conductance = g;
    }

    void set_power(std::size_t n, double w) {
        net.set_power(nodes[n], util::watts_t{w});
        ref.powers[n] = w;
    }

    void set_ambient(double c) {
        net.set_ambient(util::celsius_t{c});
        ref.ambient = c;
    }
};

/// The paper server network (mirrors server_thermal_model's topology and
/// calibration constants): 2 dies, 2 sinks, 1 DIMM bank.  Internal edges
/// precede each node's ambient edge exactly as in the production builder.
twin make_paper_server_twin() {
    twin t(24.0);
    for (int s = 0; s < 2; ++s) {
        const std::size_t die = t.add_node("cpu" + std::to_string(s) + "_die", 60.0);
        const std::size_t sink = t.add_node("cpu" + std::to_string(s) + "_sink", 600.0);
        t.add_edge(die, sink, 1.0 / 0.13);
        t.add_ambient_edge(sink, 2.857);
    }
    const std::size_t dimm = t.add_node("dimm_bank", 800.0);
    t.add_ambient_edge(dimm, 5.26);
    return t;
}

void expect_states_identical(const twin& t, const std::string& where) {
    const std::vector<double>& actual = t.net.temperatures();
    ASSERT_EQ(actual.size(), t.ref.temps.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
        ASSERT_EQ(actual[i], t.ref.temps[i]) << where << ", node " << i;
    }
}

/// Drives both models through a hostile schedule: time-varying powers,
/// fan-speed-like conductance changes, and ambient drift, all mid-run so
/// every cache invalidation path is exercised.
void run_equivalence_schedule(integration_scheme scheme, double dt) {
    twin t = make_paper_server_twin();
    transient_solver optimized(scheme);
    optimized.set_validate_steps(true);

    for (int k = 0; k < 240; ++k) {
        // Power waveform (deterministic, same doubles on both sides).
        t.set_power(0, 80.0 + 40.0 * std::sin(0.11 * k));
        t.set_power(2, 75.0 + 35.0 * std::cos(0.07 * k));
        t.set_power(4, 120.0 + 20.0 * std::sin(0.05 * k));

        // "Fan speed change": rescale the convective conductances.
        if (k % 37 == 13) {
            const double scale = (k % 2 == 0) ? 1.4 : 0.8;
            t.set_conductance(1, 2.857 * scale);
            t.set_conductance(3, 2.857 * scale);
            t.set_conductance(4, 5.26 * scale);
        }
        // Room drift (does not bump the structure revision: the cached
        // matrix must stay valid while the derivative RHS tracks it).
        if (k % 53 == 20) {
            t.set_ambient(24.0 + 0.05 * k);
        }

        switch (scheme) {
            case integration_scheme::explicit_euler:
                t.ref.step_explicit(dt);
                break;
            case integration_scheme::rk4:
                t.ref.step_rk4(dt);
                break;
            case integration_scheme::implicit_euler:
                t.ref.step_implicit(dt);
                break;
        }
        optimized.step(t.net, util::seconds_t{dt});
        expect_states_identical(t, "step " + std::to_string(k));
        if (::testing::Test::HasFatalFailure()) {
            return;
        }
    }
}

TEST(ThermalEquivalence, ExplicitEulerBitwiseIdenticalToSeed) {
    run_equivalence_schedule(integration_scheme::explicit_euler, 2.0);
}

TEST(ThermalEquivalence, Rk4BitwiseIdenticalToSeed) {
    run_equivalence_schedule(integration_scheme::rk4, 5.0);
}

TEST(ThermalEquivalence, ImplicitEulerBitwiseIdenticalToSeed) {
    run_equivalence_schedule(integration_scheme::implicit_euler, 1.0);
}

TEST(ThermalEquivalence, ImplicitEulerStepSizeChangeRefactors) {
    // Alternating dt exercises the (revision, dt) key of the implicit
    // solver's cached factorization.
    twin t = make_paper_server_twin();
    transient_solver optimized(integration_scheme::implicit_euler);
    for (int k = 0; k < 60; ++k) {
        const double dt = (k / 29) % 2 == 0 ? 1.0 : 2.0;
        t.set_power(0, 100.0 + k);
        t.set_power(2, 90.0 + 2.0 * k);
        t.ref.step_implicit(dt);
        optimized.step(t.net, util::seconds_t{dt});
        expect_states_identical(t, "step " + std::to_string(k));
        if (::testing::Test::HasFatalFailure()) {
            return;
        }
    }
}

TEST(ThermalEquivalence, SteadyStateMatchesSeedSolve) {
    twin t = make_paper_server_twin();
    t.set_power(0, 115.0);
    t.set_power(2, 115.0);
    t.set_power(4, 145.0);
    for (int round = 0; round < 4; ++round) {
        const std::vector<double> optimized = thermal::steady_state(t.net);
        const std::vector<double> expected = t.ref.steady_state();
        ASSERT_EQ(optimized.size(), expected.size());
        for (std::size_t i = 0; i < optimized.size(); ++i) {
            ASSERT_EQ(optimized[i], expected[i]) << "round " << round << ", node " << i;
        }
        // Mutate between rounds: the cached factorization must refresh.
        t.set_conductance(1, 2.857 * (1.0 + 0.25 * (round + 1)));
        t.set_ambient(24.0 + round);
        t.set_power(4, 145.0 - 10.0 * round);
    }
}

TEST(ThermalEquivalence, CachedMatrixTracksConductanceMutation) {
    twin t = make_paper_server_twin();
    const util::matrix before = t.net.conductance_matrix();
    t.set_conductance(1, 9.99);
    const util::matrix after = t.net.cached_conductance_matrix();
    EXPECT_NE(before(1, 1), after(1, 1));
    const util::matrix expected = t.ref.conductance_matrix();
    for (std::size_t r = 0; r < expected.rows(); ++r) {
        for (std::size_t c = 0; c < expected.cols(); ++c) {
            ASSERT_EQ(after(r, c), expected(r, c)) << "(" << r << "," << c << ")";
        }
    }
    EXPECT_EQ(t.net.stable_explicit_dt(), t.ref.stable_explicit_step());
}

TEST(ThermalEquivalence, StepValidationFlagGatesNonFiniteCheck) {
    // With validation on, a state overflowing to infinity throws; with it
    // off, the (cheaper) step completes and the caller owns the check.
    const auto blow_up = [](bool validate) {
        rc_network net(util::celsius_t{25.0});
        const auto a = net.add_node("hot", 1.0);
        const auto b = net.add_node("cold", 1.0);
        net.add_edge(a, b, 10.0);
        net.add_ambient_edge(b, 1.0);
        // Near-DBL_MAX injection: the first substep stays finite, the
        // coupling flow then overflows to -inf.
        net.set_power(a, util::watts_t{1.7e308});
        transient_solver solver(integration_scheme::explicit_euler);
        solver.set_validate_steps(validate);
        for (int i = 0; i < 4; ++i) {
            solver.step(net, util::seconds_t{1.0});
        }
    };
    EXPECT_THROW(blow_up(true), util::numeric_error);
    EXPECT_NO_THROW(blow_up(false));
}

TEST(ThermalEquivalence, EmptyNetworkKeepsSeedContract) {
    // The seed returned empty vectors from derivatives()/source_vector()
    // on an empty network and only threw from conductance_matrix().
    rc_network net(util::celsius_t{25.0});
    EXPECT_TRUE(net.derivatives({}).empty());
    EXPECT_TRUE(net.source_vector().empty());
    EXPECT_THROW(static_cast<void>(net.conductance_matrix()), util::precondition_error);
}

TEST(ThermalEquivalence, DerivativesIntoRejectsAliasedVectors) {
    twin t = make_paper_server_twin();
    std::vector<double> v(t.net.node_count(), 30.0);
    EXPECT_THROW(t.net.derivatives_into(v, v), util::precondition_error);
}

TEST(ThermalEquivalence, AdoptTemperaturesSwapsState) {
    twin t = make_paper_server_twin();
    std::vector<double> state(t.net.node_count(), 42.0);
    t.net.adopt_temperatures(state);
    for (std::size_t i = 0; i < t.net.node_count(); ++i) {
        EXPECT_EQ(t.net.temperatures()[i], 42.0);
    }
    // The old state (all-ambient) came back in exchange.
    for (double v : state) {
        EXPECT_EQ(v, 24.0);
    }
    std::vector<double> wrong_size(t.net.node_count() + 1, 0.0);
    EXPECT_THROW(t.net.adopt_temperatures(wrong_size), util::precondition_error);
}

}  // namespace
