// Tests for the extensions: per-socket load imbalance, the per-zone LUT
// controller, and the CRAC room model.
#include <gtest/gtest.h>

#include "core/characterization.hpp"
#include "core/controller_runtime.hpp"
#include "core/lut_controller.hpp"
#include "core/zone_lut_controller.hpp"
#include "sim/metrics.hpp"
#include "sim/server_simulator.hpp"
#include "thermal/room_model.hpp"
#include "util/error.hpp"
#include "workload/profile.hpp"

namespace {

using namespace ltsc;
using namespace ltsc::util::literals;

// --- load imbalance ------------------------------------------------------------

TEST(Imbalance, DefaultIsBalanced) {
    sim::server_simulator s;
    EXPECT_DOUBLE_EQ(s.load_imbalance(), 0.5);
}

TEST(Imbalance, OutOfRangeThrows) {
    sim::server_simulator s;
    EXPECT_THROW(s.set_load_imbalance(-0.1), util::precondition_error);
    EXPECT_THROW(s.set_load_imbalance(1.1), util::precondition_error);
}

TEST(Imbalance, SkewHeatsTheLoadedSocket) {
    sim::server_simulator s;
    s.set_load_imbalance(0.8);
    const auto p = sim::measure_steady_point(s, 80.0, 2400_rpm);
    (void)p;
    EXPECT_GT(s.true_cpu_temp(0).value(), s.true_cpu_temp(1).value() + 5.0);
    s.set_load_imbalance(0.5);
}

TEST(Imbalance, TotalPowerUnaffectedBySkew) {
    // The split moves heat between sockets; the wall power stays put
    // (modulo the leakage convexity, which is small).
    sim::server_simulator a;
    sim::server_simulator b;
    b.set_load_imbalance(0.8);
    const auto pa = sim::measure_steady_point(a, 80.0, 2400_rpm);
    const auto pb = sim::measure_steady_point(b, 80.0, 2400_rpm);
    EXPECT_NEAR(pa.total_power_w, pb.total_power_w, 3.0);
}

TEST(Imbalance, SocketUtilizationTelemetry) {
    sim::server_simulator s;
    workload::utilization_profile p("x");
    p.constant(60.0, 30.0_min);
    s.bind_workload(p);
    s.force_cold_start();
    s.set_load_imbalance(0.75);
    s.advance(10.0_min);
    EXPECT_NEAR(s.measured_socket_utilization(0, util::seconds_t{240.0}), 90.0, 5.0);
    EXPECT_NEAR(s.measured_socket_utilization(1, util::seconds_t{240.0}), 30.0, 5.0);
}

TEST(Imbalance, SocketUtilizationClampsAt100) {
    sim::server_simulator s;
    workload::utilization_profile p("x");
    p.constant(90.0, 30.0_min);
    s.bind_workload(p);
    s.force_cold_start();
    s.set_load_imbalance(1.0);
    s.advance(10.0_min);
    EXPECT_LE(s.measured_socket_utilization(0, util::seconds_t{240.0}), 100.0);
}

// --- zone LUT controller -----------------------------------------------------------

core::fan_lut tiny_lut() {
    std::vector<core::lut_entry> rows{{60.0, 1800_rpm, 65.0, 12.0}, {100.0, 2400_rpm, 71.0, 19.0}};
    return core::fan_lut(rows);
}

core::controller_inputs zone_inputs(double u0, double u1, double t0, double t1) {
    core::controller_inputs in;
    in.now = util::seconds_t{0.0};
    in.socket_util_pct = {u0, u1};
    in.socket_temp_c = {t0, t1};
    in.zone_rpm = {3300_rpm, 3300_rpm, 3300_rpm};
    in.current_rpm = 3300_rpm;
    return in;
}

TEST(ZoneLut, BalancedLoadCommandsUniformSpeeds) {
    core::zone_lut_controller c(tiny_lut());
    const auto cmd = c.decide_zones(zone_inputs(80.0, 80.0, 60.0, 60.0));
    ASSERT_TRUE(cmd.has_value());
    ASSERT_EQ(cmd->size(), 3U);
    EXPECT_DOUBLE_EQ((*cmd)[0].value(), 2400.0);
    EXPECT_DOUBLE_EQ((*cmd)[1].value(), 2400.0);
    EXPECT_DOUBLE_EQ((*cmd)[2].value(), 2400.0);
}

TEST(ZoneLut, SkewedLoadCommandsDifferentialSpeeds) {
    core::zone_lut_controller c(tiny_lut());
    const auto cmd = c.decide_zones(zone_inputs(95.0, 20.0, 68.0, 50.0));
    ASSERT_TRUE(cmd.has_value());
    EXPECT_DOUBLE_EQ((*cmd)[0].value(), 2400.0);  // loaded socket
    EXPECT_DOUBLE_EQ((*cmd)[1].value(), 1800.0);  // light socket
    EXPECT_DOUBLE_EQ((*cmd)[2].value(), 1800.0);  // shared zone follows lighter
}

TEST(ZoneLut, PerZoneEmergencyOverride) {
    core::zone_lut_controller c(tiny_lut());
    const auto cmd = c.decide_zones(zone_inputs(20.0, 20.0, 88.0, 50.0));
    ASSERT_TRUE(cmd.has_value());
    EXPECT_DOUBLE_EQ((*cmd)[0].value(), 4200.0);  // runaway socket 0
    EXPECT_DOUBLE_EQ((*cmd)[1].value(), 1800.0);
}

TEST(ZoneLut, RateLimitAppliesAcrossZones) {
    core::zone_lut_controller c(tiny_lut());
    ASSERT_TRUE(c.decide_zones(zone_inputs(80.0, 80.0, 60.0, 60.0)).has_value());
    // 10 s later a new target appears, but the hold is active.
    auto in = zone_inputs(20.0, 20.0, 60.0, 60.0);
    in.now = util::seconds_t{10.0};
    in.zone_rpm = {2400_rpm, 2400_rpm, 2400_rpm};
    EXPECT_FALSE(c.decide_zones(in).has_value());
    in.now = util::seconds_t{70.0};
    EXPECT_TRUE(c.decide_zones(in).has_value());
}

TEST(ZoneLut, ScalarInterfaceReturnsMean) {
    core::zone_lut_controller c(tiny_lut());
    const auto cmd = c.decide(zone_inputs(95.0, 20.0, 68.0, 50.0));
    ASSERT_TRUE(cmd.has_value());
    EXPECT_NEAR(cmd->value(), (2400.0 + 1800.0 + 1800.0) / 3.0, 1e-9);
}

TEST(ZoneLut, ClosedLoopBeatsLockstepUnderSkew) {
    sim::server_simulator s;
    const core::fan_lut table = core::characterize(s).lut;
    workload::utilization_profile p("skew");
    p.idle(5.0_min).constant(80.0, 40.0_min).idle(5.0_min);

    s.set_load_imbalance(0.8);
    core::lut_controller lockstep(table);
    core::zone_lut_controller zones(table);
    const auto m_lock = core::run_controlled(s, lockstep, p);
    const auto m_zone = core::run_controlled(s, zones, p);
    s.set_load_imbalance(0.5);

    EXPECT_LT(m_zone.energy_kwh, m_lock.energy_kwh);
    // One socket carries 160 % of its balanced share: it briefly crosses
    // the 85 degC emergency threshold before the per-zone override fires,
    // but must stay clear of the 90 degC critical limit.
    EXPECT_LT(m_zone.max_temp_c, 88.0);
}

TEST(ZoneLut, ClosedLoopMatchesLockstepWhenBalanced) {
    sim::server_simulator s;
    const core::fan_lut table = core::characterize(s).lut;
    workload::utilization_profile p("bal");
    p.idle(5.0_min).constant(80.0, 30.0_min).idle(5.0_min);
    core::lut_controller lockstep(table);
    core::zone_lut_controller zones(table);
    const auto m_lock = core::run_controlled(s, lockstep, p);
    const auto m_zone = core::run_controlled(s, zones, p);
    EXPECT_NEAR(m_zone.energy_kwh, m_lock.energy_kwh, 0.003);
}

// --- CRAC room model -----------------------------------------------------------------

TEST(Crac, HpLabsCurveValues) {
    const thermal::crac_model crac;
    // COP at 15 degC supply: 0.0068*225 + 0.0008*15 + 0.458 = 2.0.
    EXPECT_NEAR(crac.cop(15_degC), 2.0, 0.01);
    // COP improves with warmer supply.
    EXPECT_GT(crac.cop(25_degC), crac.cop(15_degC));
}

TEST(Crac, CoolingPowerInverseInCop) {
    const thermal::crac_model crac;
    const double cold = crac.cooling_power(10000_W, 15_degC).value();
    const double warm = crac.cooling_power(10000_W, 25_degC).value();
    EXPECT_GT(cold, warm);
    EXPECT_NEAR(cold, 10000.0 / crac.cop(15_degC), 1e-9);
}

TEST(Crac, FacilityAccounting) {
    const thermal::crac_model crac;
    const auto f = crac.facility(50000_W, 20_degC);
    EXPECT_NEAR(f.total.value(), f.it.value() + f.cooling.value(), 1e-9);
    EXPECT_GT(f.pue, 1.0);
    EXPECT_LT(f.pue, 2.0);
    EXPECT_NEAR(f.pue, f.total.value() / f.it.value(), 1e-12);
}

TEST(Crac, ZeroItLoad) {
    const thermal::crac_model crac;
    const auto f = crac.facility(0_W, 20_degC);
    EXPECT_DOUBLE_EQ(f.total.value(), 0.0);
    EXPECT_DOUBLE_EQ(f.pue, 1.0);
}

TEST(Crac, NegativeLoadThrows) {
    const thermal::crac_model crac;
    EXPECT_THROW(static_cast<void>(crac.cooling_power(util::watts_t{-1.0}, 20_degC)), util::precondition_error);
}

TEST(Crac, DegenerateCurveThrows) {
    thermal::cop_curve curve;
    curve.a = 0.0;
    curve.b = 0.0;
    curve.c = -1.0;
    const thermal::crac_model crac(curve);
    EXPECT_THROW(static_cast<void>(crac.cop(20_degC)), util::numeric_error);
}

TEST(Crac, ServerPlusRoomTradeoff) {
    // Raising the room setpoint improves CRAC COP but heats the servers
    // (more leakage, more fan effort under a thermal-aware policy).  The
    // facility optimum is interior — exactly the motivation the paper's
    // introduction lays out.
    const thermal::crac_model crac;
    std::vector<double> totals;
    for (double setpoint : {16.0, 20.0, 24.0, 28.0, 32.0}) {
        auto cfg = sim::paper_server();
        cfg.thermal.ambient_c = setpoint;
        sim::server_simulator s(cfg);
        const auto p = sim::measure_steady_point(s, 70.0, 2400_rpm);
        const auto f = crac.facility(util::watts_t{p.total_power_w},
                                     util::celsius_t{setpoint});
        totals.push_back(f.total.value());
    }
    // Facility total at the coldest setpoint must exceed the best-found
    // total (over-cooling the room wastes compressor power).
    const double best = *std::min_element(totals.begin(), totals.end());
    EXPECT_GT(totals.front(), best);
}

}  // namespace
