// Unit tests for the CSTH-style telemetry harness and analytics.
#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/analytics.hpp"
#include "telemetry/channel.hpp"
#include "telemetry/harness.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace {

using namespace ltsc;
using namespace ltsc::util::literals;

// --- sample ring -----------------------------------------------------------

TEST(SampleRing, HoldsUpToCapacity) {
    telemetry::sample_ring ring(3);
    ring.push(0.0, 1.0);
    ring.push(1.0, 2.0);
    EXPECT_EQ(ring.size(), 2U);
    ring.push(2.0, 3.0);
    ring.push(3.0, 4.0);  // evicts the oldest
    EXPECT_EQ(ring.size(), 3U);
    EXPECT_DOUBLE_EQ(ring.recent(0).v, 4.0);
    EXPECT_DOUBLE_EQ(ring.recent(2).v, 2.0);
}

TEST(SampleRing, SnapshotOldestToNewest) {
    telemetry::sample_ring ring(4);
    for (int i = 0; i < 6; ++i) {
        ring.push(i, i * 10.0);
    }
    const auto snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 4U);
    EXPECT_DOUBLE_EQ(snap.front().v, 20.0);
    EXPECT_DOUBLE_EQ(snap.back().v, 50.0);
}

TEST(SampleRing, RecentOutOfRangeThrows) {
    telemetry::sample_ring ring(2);
    ring.push(0.0, 1.0);
    EXPECT_THROW(static_cast<void>(ring.recent(1)), util::precondition_error);
}

TEST(SampleRing, ClearEmpties) {
    telemetry::sample_ring ring(2);
    ring.push(0.0, 1.0);
    ring.clear();
    EXPECT_TRUE(ring.empty());
}

// --- channel -----------------------------------------------------------------

TEST(Channel, PollsSourceAndRecords) {
    // Histories live in the owning harness's shared columnar frame; the
    // channel exposes its column as a view.
    telemetry::harness h(10_s);
    double value = 42.0;
    h.add_channel("sig", "W", [&value] { return value; });
    h.poll_now(0_s);
    value = 43.0;
    h.poll_now(10_s);
    const telemetry::channel& ch = h.by_name("sig");
    ASSERT_TRUE(ch.latest().has_value());
    EXPECT_DOUBLE_EQ(ch.latest()->v, 43.0);
    EXPECT_EQ(ch.history().size(), 2U);
    EXPECT_DOUBLE_EQ(ch.history().at(0).v, 42.0);
    EXPECT_DOUBLE_EQ(ch.history().at(1).t, 10.0);
}

TEST(Channel, StandaloneChannelRecordsItsOwnHistory) {
    double value = 7.0;
    telemetry::channel ch("sig", "W", [&value] { return value; });
    EXPECT_DOUBLE_EQ(ch.poll(0.0), 7.0);
    value = 8.0;
    ch.poll(10.0);
    ASSERT_TRUE(ch.latest().has_value());
    EXPECT_EQ(ch.ring().size(), 2U);
    // No harness: the channel archives into its own columns.
    ASSERT_EQ(ch.history().size(), 2U);
    EXPECT_DOUBLE_EQ(ch.history().at(1).v, 8.0);
    EXPECT_THROW(ch.poll(5.0), util::precondition_error);  // time went backwards
    ch.clear();
    EXPECT_TRUE(ch.history().empty());
    telemetry::channel no_hist("sig", "W", [] { return 1.0; }, 8, false);
    no_hist.poll(0.0);
    EXPECT_TRUE(no_hist.history().empty());
}

TEST(Channel, HistoryCanBeDisabled) {
    telemetry::harness h;
    h.add_channel("sig", "W", [] { return 1.0; }, 8, false);
    h.poll_now(0_s);
    const telemetry::channel& ch = h.by_name("sig");
    EXPECT_TRUE(ch.history().empty());
    EXPECT_EQ(ch.ring().size(), 1U);
    EXPECT_EQ(h.history().channel_count(), 0U);
}

TEST(Channel, NamedSeriesExport) {
    telemetry::harness h;
    h.add_channel("cpu0_temp", "degC", [] { return 55.0; });
    h.poll_now(0_s);
    const auto ns = h.by_name("cpu0_temp").to_named_series();
    EXPECT_EQ(ns.name, "cpu0_temp");
    EXPECT_EQ(ns.unit, "degC");
    EXPECT_EQ(ns.data.size(), 1U);
}

TEST(Channel, NullSourceThrows) {
    EXPECT_THROW(telemetry::channel("x", "W", nullptr), util::precondition_error);
}

// --- harness -------------------------------------------------------------------

TEST(Harness, PollsAtConfiguredCadence) {
    telemetry::harness h(10_s);
    int polls = 0;
    h.add_channel("c", "u", [&polls] { return static_cast<double>(++polls); });
    EXPECT_TRUE(h.poll_due(0_s));
    EXPECT_FALSE(h.poll_due(5_s));
    EXPECT_FALSE(h.poll_due(9.5_s));
    EXPECT_TRUE(h.poll_due(10_s));
    EXPECT_EQ(polls, 2);
}

TEST(Harness, LatestByName) {
    telemetry::harness h;
    h.add_channel("power", "W", [] { return 500.0; });
    h.poll_now(0_s);
    EXPECT_DOUBLE_EQ(h.latest("power"), 500.0);
    EXPECT_THROW(static_cast<void>(h.latest("missing")), util::precondition_error);
}

TEST(Harness, DuplicateNameRejected) {
    telemetry::harness h;
    h.add_channel("a", "u", [] { return 0.0; });
    EXPECT_THROW(h.add_channel("a", "u", [] { return 0.0; }), util::precondition_error);
}

TEST(Harness, NeverPolledLatestThrows) {
    telemetry::harness h;
    h.add_channel("a", "u", [] { return 0.0; });
    EXPECT_THROW(static_cast<void>(h.latest("a")), util::precondition_error);
}

TEST(Harness, ResetClearsEverything) {
    telemetry::harness h(10_s);
    h.add_channel("a", "u", [] { return 1.0; });
    h.poll_now(0_s);
    h.poll_now(10_s);
    h.reset();
    EXPECT_FALSE(h.by_name("a").latest().has_value());
    // After reset, polling from t = 0 again is legal.
    EXPECT_TRUE(h.poll_due(0_s));
}

TEST(Harness, CsvExportParses) {
    telemetry::harness h;
    h.add_channel("t1", "degC", [] { return 60.0; });
    h.add_channel("p1", "W", [] { return 400.0; });
    h.poll_now(0_s);
    h.poll_now(10_s);
    std::ostringstream os;
    h.write_csv(os);
    const auto doc = util::parse_csv(os.str());
    EXPECT_EQ(doc.rows.size(), 4U);  // 2 channels x 2 polls
}

TEST(Harness, ByIndexBoundsChecked) {
    telemetry::harness h;
    h.add_channel("a", "u", [] { return 0.0; });
    EXPECT_EQ(h.by_index(0).name(), "a");
    EXPECT_THROW(static_cast<void>(h.by_index(1)), util::precondition_error);
}

// --- analytics --------------------------------------------------------------------

TEST(Ewma, ConvergesToConstant) {
    telemetry::ewma_filter f(0.2);
    for (int i = 0; i < 100; ++i) {
        f.update(10.0);
    }
    EXPECT_NEAR(f.value().value(), 10.0, 1e-6);
}

TEST(Ewma, FirstSampleInitializes) {
    telemetry::ewma_filter f(0.1);
    EXPECT_FALSE(f.value().has_value());
    EXPECT_DOUBLE_EQ(f.update(5.0), 5.0);
}

TEST(Ewma, SmoothsStep) {
    telemetry::ewma_filter f(0.5);
    f.update(0.0);
    const double after_one = f.update(10.0);
    EXPECT_DOUBLE_EQ(after_one, 5.0);
}

TEST(Ewma, BadAlphaThrows) {
    EXPECT_THROW(telemetry::ewma_filter(0.0), util::precondition_error);
    EXPECT_THROW(telemetry::ewma_filter(1.5), util::precondition_error);
}

TEST(RollingWindow, EvictsOldSamples) {
    telemetry::rolling_window w(10.0);
    w.push(0.0, 1.0);
    w.push(5.0, 2.0);
    w.push(12.0, 3.0);  // evicts t=0 (older than 12-10)
    EXPECT_EQ(w.size(), 2U);
    EXPECT_DOUBLE_EQ(w.mean(), 2.5);
    EXPECT_DOUBLE_EQ(w.min(), 2.0);
    EXPECT_DOUBLE_EQ(w.max(), 3.0);
}

TEST(RollingWindow, NonMonotonicTimeThrows) {
    telemetry::rolling_window w(10.0);
    w.push(5.0, 1.0);
    EXPECT_THROW(w.push(4.0, 1.0), util::precondition_error);
}

TEST(RollingWindow, EmptyStatsThrow) {
    telemetry::rolling_window w(10.0);
    EXPECT_THROW(static_cast<void>(w.mean()), util::precondition_error);
}

TEST(ThresholdAlarm, HysteresisBehaviour) {
    telemetry::threshold_alarm alarm(75.0, 70.0);
    EXPECT_FALSE(alarm.update(74.0));
    EXPECT_TRUE(alarm.update(76.0));   // set
    EXPECT_TRUE(alarm.update(72.0));   // still set (above clear)
    EXPECT_FALSE(alarm.update(69.0));  // cleared
    EXPECT_TRUE(alarm.update(80.0));   // set again
    EXPECT_EQ(alarm.trip_count(), 2U);
}

TEST(ThresholdAlarm, InvertedThresholdsThrow) {
    EXPECT_THROW(telemetry::threshold_alarm(70.0, 75.0), util::precondition_error);
}

TEST(Zscore, FlagsSpike) {
    telemetry::zscore_detector d(0.1, 4.0);
    for (int i = 0; i < 200; ++i) {
        EXPECT_FALSE(d.update(50.0 + 0.5 * ((i % 2 == 0) ? 1.0 : -1.0)));
    }
    EXPECT_TRUE(d.update(80.0));  // a stuck-sensor style spike
    EXPECT_EQ(d.anomaly_count(), 1U);
}

TEST(Zscore, SpikeDoesNotPoisonBaseline) {
    telemetry::zscore_detector d(0.1, 4.0);
    for (int i = 0; i < 200; ++i) {
        d.update(50.0 + 0.5 * ((i % 2 == 0) ? 1.0 : -1.0));
    }
    d.update(80.0);
    // Back to normal values: not anomalous, baseline unharmed.
    EXPECT_FALSE(d.update(50.2));
}

}  // namespace
