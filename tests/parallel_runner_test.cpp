// parallel_runner environment parsing and the shared-loadgen memo cache.
//
// threads_from_env: LTSC_THREADS must parse as a complete non-negative
// integer — strtol's silent acceptance of trailing garbage ("4x" -> 4)
// and its saturating overflow both previously leaked through as thread
// counts.  Malformed values fall back to hardware concurrency (0).
//
// LoadgenRace: one loadgen is shared by every rollout lane and every
// batch lane bound to it, so its measured_utilization memo cache mutates
// under `const` from many threads at once.  The hammer test drives that
// exact pattern; under ThreadSanitizer (LTSC_SANITIZE=thread) the
// pre-mutex cache reports a data race here.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/parallel_runner.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"
#include "workload/loadgen.hpp"
#include "workload/profile.hpp"

namespace {

using namespace ltsc;
using namespace ltsc::util::literals;

class ThreadsFromEnv : public ::testing::Test {
protected:
    void SetUp() override {
        const char* old = std::getenv("LTSC_THREADS");
        had_old_ = old != nullptr;
        if (had_old_) {
            old_ = old;
        }
    }
    void TearDown() override {
        if (had_old_) {
            setenv("LTSC_THREADS", old_.c_str(), 1);
        } else {
            unsetenv("LTSC_THREADS");
        }
    }
    static std::size_t with(const char* value) {
        setenv("LTSC_THREADS", value, 1);
        return sim::parallel_runner::threads_from_env();
    }

private:
    bool had_old_ = false;
    std::string old_;
};

TEST_F(ThreadsFromEnv, ParsesCompleteIntegers) {
    unsetenv("LTSC_THREADS");
    EXPECT_EQ(sim::parallel_runner::threads_from_env(), 0U);
    EXPECT_EQ(with("0"), 0U);
    EXPECT_EQ(with("1"), 1U);
    EXPECT_EQ(with("16"), 16U);
    EXPECT_EQ(with("  8"), 8U);  // strtol skips leading whitespace
}

TEST_F(ThreadsFromEnv, RejectsMalformedValuesToHardwareDefault) {
    EXPECT_EQ(with(""), 0U);
    EXPECT_EQ(with("4x"), 0U);          // trailing garbage, not 4
    EXPECT_EQ(with("4 "), 0U);          // trailing space counts too
    EXPECT_EQ(with("threads"), 0U);     // no digits at all
    EXPECT_EQ(with("-2"), 0U);          // negative
    EXPECT_EQ(with("1e3"), 0U);         // not integer syntax
    EXPECT_EQ(with("99999999999999999999"), 0U);  // ERANGE overflow
    EXPECT_EQ(with("5000"), 0U);        // over the sanity cap
}

TEST(LoadgenRace, SharedMemoCacheIsThreadSafeAndExact) {
    // The shape rollout evaluation produces: one shared loadgen, many
    // threads asking measured_utilization at a mix of repeated (cache
    // hit) and fresh (cache replace) instants, concurrently.
    workload::utilization_profile p("race");
    p.constant(40.0, 600_s).ramp(40.0, 95.0, 600_s).constant(95.0, 600_s);
    const workload::loadgen shared(p);

    // Serial ground truth via a private twin (same profile, own cache).
    const workload::loadgen twin(p);
    const auto instant = [](std::size_t i) {
        return util::seconds_t{250.0 + 7.0 * static_cast<double>(i % 13)};
    };
    std::vector<double> expected(13);
    for (std::size_t i = 0; i < expected.size(); ++i) {
        expected[i] = twin.measured_utilization(instant(i), 240_s);
    }

    constexpr std::size_t k_jobs = 256;
    std::vector<double> got(k_jobs, -1.0);
    util::thread_pool pool(8);
    pool.run_indexed(k_jobs, [&](std::size_t i) {
        got[i] = shared.measured_utilization(instant(i), 240_s);
    });
    for (std::size_t i = 0; i < k_jobs; ++i) {
        EXPECT_EQ(got[i], expected[i % 13]) << "job " << i;
    }
}

TEST(LoadgenRace, CopyAndAssignmentStartTheMemoCold) {
    workload::utilization_profile p("copy");
    p.constant(50.0, 600_s);
    workload::loadgen a(p);
    // Warm a's cache, then copy: the copy must produce the same values
    // from a cold cache (the memo is per-instance state, not data).
    const double warm = a.measured_utilization(300_s, 240_s);
    const workload::loadgen b(a);
    EXPECT_EQ(b.measured_utilization(300_s, 240_s), warm);
    workload::utilization_profile q("other");
    q.constant(90.0, 600_s);
    workload::loadgen c(q);
    c = a;
    EXPECT_EQ(c.measured_utilization(300_s, 240_s), warm);
}

}  // namespace
