// Unit tests for scalar optimization and root finding.
#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/optimize.hpp"

namespace {

using ltsc::util::brent_root;
using ltsc::util::fixed_point;
using ltsc::util::golden_section_minimize;
using ltsc::util::minimize_over;
using ltsc::util::precondition_error;

TEST(GoldenSection, FindsParabolaMinimum) {
    const auto r = golden_section_minimize([](double x) { return (x - 2.5) * (x - 2.5); }, 0.0,
                                           10.0, 1e-8);
    EXPECT_NEAR(r.x, 2.5, 1e-6);
    EXPECT_NEAR(r.value, 0.0, 1e-10);
}

TEST(GoldenSection, FindsMinimumAtBoundary) {
    const auto r = golden_section_minimize([](double x) { return x; }, 1.0, 5.0, 1e-8);
    EXPECT_NEAR(r.x, 1.0, 1e-6);
}

TEST(GoldenSection, FanLeakageShapedCurve) {
    // The paper's convex fan+leakage curve: cubic fan term decreasing with
    // temperature proxy, exponential leakage increasing.
    const auto cost = [](double t) {
        const double fan = 50.0 * std::pow(85.0 / t, 3.0) * 0.1;
        const double leak = 0.3231 * std::exp(0.04749 * t);
        return fan + leak;
    };
    const auto r = golden_section_minimize(cost, 50.0, 85.0, 1e-8);
    // Interior minimum with zero derivative.
    const double h = 1e-4;
    EXPECT_NEAR((cost(r.x + h) - cost(r.x - h)) / (2 * h), 0.0, 1e-3);
}

TEST(GoldenSection, InvalidIntervalThrows) {
    EXPECT_THROW(static_cast<void>(golden_section_minimize([](double x) { return x; }, 5.0, 1.0)), precondition_error);
    EXPECT_THROW(static_cast<void>(golden_section_minimize([](double x) { return x; }, 1.0, 5.0, 0.0)),
                 precondition_error);
}

TEST(MinimizeOver, PicksBestCandidate) {
    const auto r = minimize_over([](double x) { return std::fabs(x - 3.1); },
                                 {1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_DOUBLE_EQ(r.x, 3.0);
    EXPECT_EQ(r.evaluations, 5);
}

TEST(MinimizeOver, FirstWinsOnTie) {
    const auto r = minimize_over([](double) { return 1.0; }, {7.0, 8.0, 9.0});
    EXPECT_DOUBLE_EQ(r.x, 7.0);
}

TEST(MinimizeOver, EmptyThrows) {
    EXPECT_THROW(static_cast<void>(minimize_over([](double x) { return x; }, {})), precondition_error);
}

TEST(BrentRoot, FindsCosRoot) {
    const auto r = brent_root([](double x) { return std::cos(x); }, 1.0, 2.0, 1e-12);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x, 1.5707963267948966, 1e-9);
}

TEST(BrentRoot, FindsPolynomialRoot) {
    const auto r = brent_root([](double x) { return x * x * x - 2.0 * x - 5.0; }, 2.0, 3.0);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x, 2.0945514815423265, 1e-7);
}

TEST(BrentRoot, RootAtBracketEnd) {
    const auto r = brent_root([](double x) { return x; }, 0.0, 1.0);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x, 0.0, 1e-9);
}

TEST(BrentRoot, NonBracketingThrows) {
    EXPECT_THROW(static_cast<void>(brent_root([](double x) { return x * x + 1.0; }, -1.0, 1.0)), precondition_error);
}

TEST(FixedPoint, ConvergesForContraction) {
    // x = cos(x) has the Dottie number as fixed point.
    const auto r = fixed_point([](double x) { return std::cos(x); }, 0.5, 1.0, 1e-12, 1000);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x, 0.7390851332151607, 1e-8);
}

TEST(FixedPoint, DampingStabilizesOscillation) {
    // g(x) = -x oscillates undamped; damping 0.5 sends it to 0.
    const auto r = fixed_point([](double x) { return -x; }, 1.0, 0.5, 1e-12, 200);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x, 0.0, 1e-10);
}

TEST(FixedPoint, LeakageTemperatureSelfConsistency) {
    // The simulator's inner loop: T = T_inlet + R * (P0 + leak(T)).
    const auto g = [](double t) {
        const double leak = 8.0 + 0.3231 * std::exp(0.04749 * t);
        return 28.0 + 0.48 * (105.0 + 0.5 * leak);
    };
    const auto r = fixed_point(g, 40.0, 1.0, 1e-10, 500);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(g(r.x), r.x, 1e-8);
    EXPECT_GT(r.x, 70.0);
    EXPECT_LT(r.x, 95.0);
}

TEST(FixedPoint, BadDampingThrows) {
    EXPECT_THROW(static_cast<void>(fixed_point([](double x) { return x; }, 0.0, 0.0)), precondition_error);
    EXPECT_THROW(static_cast<void>(fixed_point([](double x) { return x; }, 0.0, 1.5)), precondition_error);
}

TEST(FixedPoint, ReportsNonConvergence) {
    const auto r = fixed_point([](double x) { return x + 1.0; }, 0.0, 1.0, 1e-9, 10);
    EXPECT_FALSE(r.converged);
}

}  // namespace
