// Tests of the Section-IV characterization pipeline: model fitting
// recovery of the paper's constants and LUT generation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/characterization.hpp"
#include "sim/server_simulator.hpp"
#include "util/error.hpp"

namespace {

using namespace ltsc;
using namespace ltsc::util::literals;

class CharacterizationFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        sim_ = new sim::server_simulator();
        result_ = new core::characterization_result(core::characterize(*sim_));
    }
    static void TearDownTestSuite() {
        delete result_;
        result_ = nullptr;
        delete sim_;
        sim_ = nullptr;
    }

    static sim::server_simulator* sim_;
    static core::characterization_result* result_;
};

sim::server_simulator* CharacterizationFixture::sim_ = nullptr;
core::characterization_result* CharacterizationFixture::result_ = nullptr;

TEST_F(CharacterizationFixture, SweepCoversPaperGrid) {
    // 9 utilization levels (paper's 8 plus idle) x 5 fan speeds.
    EXPECT_EQ(result_->sweep.size(), 45U);
}

TEST_F(CharacterizationFixture, FitRecoversPaperLeakageConstants) {
    // The plant embeds k2 = 0.3231, k3 = 0.04749; the pipeline must get
    // them back from sweep data alone.
    EXPECT_TRUE(result_->fit.converged);
    EXPECT_NEAR(result_->fit.k2_w, 0.3231, 0.02);
    EXPECT_NEAR(result_->fit.k3_per_c, 0.04749, 0.002);
}

TEST_F(CharacterizationFixture, FitRecoversSystemActiveSlope) {
    EXPECT_NEAR(result_->fit.k1_w_per_pct, 3.5, 0.05);
}

TEST_F(CharacterizationFixture, FitQualityAtLeastPaperLevel) {
    // The paper reports 2.243 W RMS error and 98 % accuracy; our sweep is
    // noise-free so the fit must do at least that well.
    EXPECT_LT(result_->fit.rmse_w, 2.243);
    EXPECT_GT(result_->fit.r_squared, 0.98);
}

TEST_F(CharacterizationFixture, LutHasEntryPerUtilizationLevel) {
    EXPECT_EQ(result_->lut.size(), 9U);
}

TEST_F(CharacterizationFixture, LutOptimumAt100PctIs2400Rpm) {
    // Fig. 2(a): the fan+leakage minimum at full load sits at 2400 RPM
    // (~70 degC).
    EXPECT_DOUBLE_EQ(result_->lut.lookup(100.0).value(), 2400.0);
    EXPECT_NEAR(result_->lut.entry_for(100.0).expected_cpu_temp_c, 71.0, 2.0);
}

TEST_F(CharacterizationFixture, LutUsesLowestSpeedAtLightLoad) {
    EXPECT_DOUBLE_EQ(result_->lut.lookup(10.0).value(), 1800.0);
    EXPECT_DOUBLE_EQ(result_->lut.lookup(0.0).value(), 1800.0);
}

TEST_F(CharacterizationFixture, LutMonotoneNonDecreasingInUtilization) {
    double prev = 0.0;
    for (const auto& e : result_->lut.entries()) {
        EXPECT_GE(e.rpm.value(), prev) << "at u=" << e.utilization_pct;
        prev = e.rpm.value();
    }
}

TEST_F(CharacterizationFixture, LutRespectsTemperatureCap) {
    for (const auto& e : result_->lut.entries()) {
        EXPECT_LE(e.expected_cpu_temp_c, 75.0 + 1e-9) << "at u=" << e.utilization_pct;
    }
}

TEST_F(CharacterizationFixture, OptimumNeverHotterThan70ishDegrees) {
    // Paper: "for all the optimum points, average temperature is never
    // higher than 70 degC" (we allow a small margin).
    for (const auto& e : result_->lut.entries()) {
        EXPECT_LE(e.expected_cpu_temp_c, 72.5) << "at u=" << e.utilization_pct;
    }
}

TEST_F(CharacterizationFixture, FanOnlySavingsReach30W) {
    // Abstract: "Power savings achieved only by setting the appropriate
    // fan speed can reach 30 W" — max fan speed vs. the optimum at 100 %.
    double cost_4200 = 0.0;
    double cost_best = 1e18;
    for (const auto& p : result_->sweep) {
        if (p.utilization_pct != 100.0) {
            continue;
        }
        const double cost = p.fan_power_w + result_->fit.leakage_at(p.avg_cpu_temp_c);
        if (std::fabs(p.fan_rpm - 4200.0) < 1.0) {
            cost_4200 = cost;
        }
        cost_best = std::min(cost_best, cost);
    }
    EXPECT_NEAR(cost_4200 - cost_best, 30.0, 6.0);
}

TEST_F(CharacterizationFixture, FanLeakSumConvexAt100Pct) {
    // Fig. 2(a): the fan+leakage sum dips at an interior fan speed.
    std::vector<double> costs;
    for (const auto& p : result_->sweep) {
        if (p.utilization_pct == 100.0) {
            costs.push_back(p.fan_power_w + result_->fit.leakage_at(p.avg_cpu_temp_c));
        }
    }
    ASSERT_EQ(costs.size(), 5U);  // one per RPM, ascending RPM order
    const double interior_min = *std::min_element(costs.begin() + 1, costs.end() - 1);
    EXPECT_LT(interior_min, costs.front());
    EXPECT_LT(interior_min, costs.back());
}

TEST(Characterization, PredictMatchesComponents) {
    core::power_model_fit fit;
    fit.c0_w = 339.6;
    fit.k1_w_per_pct = 3.5;
    fit.k2_w = 0.3231;
    fit.k3_per_c = 0.04749;
    EXPECT_NEAR(fit.predict(50.0, 60.0),
                339.6 + 175.0 + 0.3231 * std::exp(0.04749 * 60.0), 1e-9);
    EXPECT_NEAR(fit.leakage_at(60.0), 0.3231 * std::exp(0.04749 * 60.0), 1e-12);
}

TEST(Characterization, FitRejectsDegenerateSweeps) {
    std::vector<sim::steady_point> pts(10);
    for (std::size_t i = 0; i < pts.size(); ++i) {
        pts[i].utilization_pct = 50.0;  // no utilization spread
        pts[i].avg_cpu_temp_c = 40.0 + static_cast<double>(i);
        pts[i].total_power_w = 500.0;
    }
    EXPECT_THROW(static_cast<void>(core::fit_power_model(pts)), util::precondition_error);
}

TEST(Characterization, FitRejectsTooFewPoints) {
    std::vector<sim::steady_point> pts(3);
    EXPECT_THROW(static_cast<void>(core::fit_power_model(pts)), util::precondition_error);
}

TEST(Characterization, BuildLutFallsBackToFastestWhenAllViolateCap) {
    // Synthetic sweep where every candidate exceeds the cap at u=100.
    std::vector<sim::steady_point> pts;
    for (double rpm : {1800.0, 2400.0}) {
        sim::steady_point p;
        p.utilization_pct = 100.0;
        p.fan_rpm = rpm;
        p.avg_cpu_temp_c = 90.0;  // hotter than any cap
        p.fan_power_w = rpm / 100.0;
        p.total_power_w = 700.0;
        pts.push_back(p);
    }
    core::power_model_fit fit;
    fit.k2_w = 0.3231;
    fit.k3_per_c = 0.04749;
    core::lut_build_options opt;
    opt.max_cpu_temp_c = 75.0;
    opt.candidate_rpms = {util::rpm_t{1800.0}, util::rpm_t{2400.0}};
    const auto lut = core::build_lut(pts, fit, opt);
    EXPECT_DOUBLE_EQ(lut.lookup(100.0).value(), 2400.0);  // fastest fan wins
}

TEST(Characterization, BuildLutEmptySweepThrows) {
    core::power_model_fit fit;
    EXPECT_THROW(core::build_lut({}, fit), util::precondition_error);
}

}  // namespace
